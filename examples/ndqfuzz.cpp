// ndqfuzz — the differential query fuzzer's command line.
//
// Fuzzing mode (the default) runs seeded random cases through every
// engine in the repo and reports divergences, shrunk to minimal repros:
//
//   ndqfuzz --seed 42 --iters 500 --entries 80 --out /tmp/repros
//
// The same --seed and --iters always produce the same cases, checks and
// shrinks (keep --time-budget-s off when reproducing by seed).
//
// Corpus mode replays every .ndqrepro file in a directory through the
// full check suite; corpus files encode FIXED bugs, so any failure is a
// regression:
//
//   ndqfuzz --corpus tests/fuzz/corpus
//
// Exit status: 0 when every case/replay agreed, 1 on any divergence,
// 2 on usage or I/O errors.

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/fuzz.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: ndqfuzz [options]\n"
               "  --seed N           base seed (default 1)\n"
               "  --iters N          cases to run (default 50)\n"
               "  --entries N        entries per random instance (default "
               "60)\n"
               "  --max-lang L       highest language level: 0..3 "
               "(default 3)\n"
               "  --weird P          adversarial-RDN probability "
               "(default 0.15)\n"
               "  --extreme P        near-INT64_MAX attribute probability "
               "(default 0.05)\n"
               "  --out DIR          write .ndqrepro files for divergences\n"
               "  --corpus DIR       replay every .ndqrepro in DIR instead "
               "of fuzzing\n"
               "  --time-budget-s N  stop starting new cases after N "
               "seconds\n"
               "  --no-dist          skip the distributed oracles\n"
               "  --no-faults        skip the fault-injected oracle\n"
               "  --no-shrink       keep divergences unshrunk\n");
}

bool ParseU64(const char* s, uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (s[0] == '\0' || end == nullptr || *end != '\0' || errno != 0) {
    return false;
  }
  *out = v;
  return true;
}

int ReplayCorpus(const std::string& dir, const ndq::fuzz::FuzzOptions& opt) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> paths;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    if (de.path().extension() == ".ndqrepro") {
      paths.push_back(de.path().string());
    }
  }
  if (ec) {
    std::fprintf(stderr, "ndqfuzz: cannot read corpus dir '%s': %s\n",
                 dir.c_str(), ec.message().c_str());
    return 2;
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    std::fprintf(stderr, "ndqfuzz: no .ndqrepro files in '%s'\n",
                 dir.c_str());
    return 2;
  }
  int failures = 0;
  for (const std::string& path : paths) {
    ndq::Result<ndq::fuzz::Repro> repro =
        ndq::fuzz::Repro::LoadFrom(path);
    if (!repro.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                   repro.status().ToString().c_str());
      ++failures;
      continue;
    }
    ndq::Result<std::vector<ndq::fuzz::CheckFailure>> result =
        ndq::fuzz::ReplayRepro(*repro, opt);
    if (!result.ok()) {
      std::fprintf(stderr, "FAIL %s: replay error: %s\n", path.c_str(),
                   result.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (result->empty()) {
      std::printf("ok   %s (%s, %zu entries)\n", path.c_str(),
                  repro->check.c_str(), repro->entries.size());
      continue;
    }
    ++failures;
    for (const ndq::fuzz::CheckFailure& f : *result) {
      std::fprintf(stderr, "FAIL %s: %s: %s\n", path.c_str(),
                   f.check.c_str(), f.detail.c_str());
    }
  }
  std::printf("%zu repro(s) replayed, %d failing\n", paths.size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ndq::fuzz::FuzzOptions opt;
  std::string corpus_dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    uint64_t v = 0;
    if (arg == "--seed" && next() != nullptr && ParseU64(argv[i], &v)) {
      opt.seed = v;
    } else if (arg == "--iters" && next() != nullptr &&
               ParseU64(argv[i], &v)) {
      opt.iterations = v;
    } else if (arg == "--entries" && next() != nullptr &&
               ParseU64(argv[i], &v)) {
      opt.gen.num_entries = v;
    } else if (arg == "--max-lang" && next() != nullptr &&
               ParseU64(argv[i], &v) && v <= 3) {
      opt.gen.max_language = static_cast<ndq::Language>(
          static_cast<int>(ndq::Language::kL0) + static_cast<int>(v));
    } else if (arg == "--weird" && next() != nullptr) {
      opt.gen.weird_rdn_probability = std::atof(argv[i]);
    } else if (arg == "--extreme" && next() != nullptr) {
      opt.gen.extreme_int_probability = std::atof(argv[i]);
    } else if (arg == "--time-budget-s" && next() != nullptr &&
               ParseU64(argv[i], &v)) {
      opt.time_budget_ms = v * 1000;
    } else if (arg == "--out" && next() != nullptr) {
      opt.out_dir = argv[i];
    } else if (arg == "--corpus" && next() != nullptr) {
      corpus_dir = argv[i];
    } else if (arg == "--no-dist") {
      opt.with_distributed = false;
    } else if (arg == "--no-faults") {
      opt.with_faults = false;
    } else if (arg == "--no-shrink") {
      opt.shrink = false;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "ndqfuzz: bad argument '%s'\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  if (!corpus_dir.empty()) return ReplayCorpus(corpus_dir, opt);

  ndq::fuzz::FuzzReport report = ndq::fuzz::RunFuzz(opt);
  std::printf("ndqfuzz: %llu case(s), %llu check(s), %zu divergence(s)\n",
              static_cast<unsigned long long>(report.cases),
              static_cast<unsigned long long>(report.checks),
              report.divergences.size());
  for (const ndq::fuzz::Divergence& d : report.divergences) {
    std::fprintf(stderr,
                 "DIVERGENCE [%s] case seed %llu\n"
                 "  detail: %s\n"
                 "  query (original): %s\n"
                 "  query (shrunk):   %s\n"
                 "  entries: %zu -> %zu%s%s\n",
                 d.check.c_str(),
                 static_cast<unsigned long long>(d.case_seed),
                 d.detail.c_str(), d.original_query_text.c_str(),
                 d.repro.query_text.c_str(), d.original_entries,
                 d.repro.entries.size(),
                 d.saved_path.empty() ? "" : "\n  saved: ",
                 d.saved_path.c_str());
  }
  return report.divergences.empty() ? 0 : 1;
}
