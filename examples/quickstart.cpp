// Quickstart: build a directory, pose queries in L0-L3, read the answers.
//
// This walks the public API end to end:
//   1. define a schema (Def. 3.1) and an instance (Def. 3.2),
//   2. bulk-load it into the external-memory entry store,
//   3. open an ndq::Engine session over the store,
//   4. parse paper-syntax queries, evaluate them, inspect results and
//      I/O statistics.

#include <cstdio>

#include "engine/engine.h"
#include "testing_support.h"

namespace {

void RunQuery(ndq::Session* session, const char* title, const char* text) {
  std::printf("--- %s\n    %s\n", title, text);
  ndq::QueryOutcome outcome = session->Run(text);
  if (!outcome.ok()) {
    std::printf("    %s error: %s\n",
                outcome.plan == nullptr ? "parse" : "eval",
                outcome.status.ToString().c_str());
    return;
  }
  std::printf("    language: %s\n",
              ndq::LanguageToString(outcome.plan->MinimalLanguage()));
  std::printf("    %zu result(s):\n", outcome.entries.size());
  for (const ndq::Entry& e : outcome.entries) {
    std::printf("      %s\n", e.dn().ToString().c_str());
  }
}

}  // namespace

int main() {
  // The paper's own example data: Figures 1 (DNS levels), 11 (TOPS),
  // 12 (QoS policies).
  ndq::DirectoryInstance instance = ndq::gen::PaperInstance();
  std::printf("directory instance: %zu entries\n", instance.size());

  ndq::SimDisk disk;  // the simulated block device
  ndq::Result<ndq::EntryStore> store =
      ndq::EntryStore::BulkLoad(&disk, instance);
  if (!store.ok()) {
    std::printf("bulk load failed: %s\n", store.status().ToString().c_str());
    return 1;
  }
  std::printf("entry store: %llu entries on %llu pages\n\n",
              (unsigned long long)store->num_entries(),
              (unsigned long long)store->num_pages());

  // Borrowing-mode engine: evaluate the bulk-loaded store, using the same
  // disk for intermediates. One session submits every query.
  ndq::Engine engine(&disk, &*store);
  ndq::Session session = engine.OpenSession();

  RunQuery(&session, "Atomic query (LDAP-expressible)",
           "(dc=att, dc=com ? sub ? surName=jagadish)");

  RunQuery(&session, "L0: set difference across bases (Example 4.1)",
           "(- (dc=att, dc=com ? sub ? surName=jagadish)\n"
           "   (dc=research, dc=att, dc=com ? sub ? surName=jagadish))");

  RunQuery(&session, "L1: hierarchical selection (Example 5.1)",
           "(c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)\n"
           "   (dc=att, dc=com ? sub ? surName=jagadish))");

  RunQuery(&session, "L1: closest-subnet selection (Example 5.3)",
           "(dc (dc=att, dc=com ? sub ? objectClass=dcObject)\n"
           "    (& (dc=att, dc=com ? sub ? sourcePort=25)\n"
           "       (dc=att, dc=com ? sub ? objectClass=trafficProfile))\n"
           "    (dc=att, dc=com ? sub ? objectClass=dcObject))");

  RunQuery(&session, "L2: aggregate selection (Example 6.1)",
           "(g (dc=research, dc=att, dc=com ? sub ? "
           "objectClass=SLAPolicyRules)\n"
           "   count(SLAPVPRef) > 1)");

  RunQuery(&session,
           "L3: the Section 7 flagship — action of the highest-priority "
           "policy governing SMTP traffic",
           "(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)\n"
           "    (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)\n"
           "           (& (dc=att, dc=com ? sub ? sourcePort=25)\n"
           "              (dc=att, dc=com ? sub ? "
           "objectClass=trafficProfile))\n"
           "           SLATPRef)\n"
           "       min(SLARulePriority)=min(min(SLARulePriority)))\n"
           "    SLADSActRef)");

  std::printf("\ndisk I/O for the session: %s\n",
              disk.stats().ToString().c_str());
  return 0;
}
