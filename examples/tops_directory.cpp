// TOPS dial-by-name (Example 2.2 / Fig. 11): reach a subscriber by
// logical name; the directory picks the call appearances of the highest-
// priority query handling profile that admits the caller and time, and
// policies update dynamically through the mutable store.

#include <cstdio>

#include "apps/tops.h"
#include "engine/engine.h"
#include "store/directory_store.h"
#include "testing_support.h"

using ndq::apps::CallContext;
using ndq::apps::CallResolution;
using ndq::apps::TopsResolver;

namespace {

void Dial(TopsResolver* resolver, const char* what, const char* callee,
          const CallContext& ctx) {
  std::printf("--- dial %s (%s)\n", callee, what);
  ndq::Result<CallResolution> r = resolver->Resolve(callee, ctx);
  if (!r.ok()) {
    std::printf("    error: %s\n", r.status().ToString().c_str());
    return;
  }
  if (!r->subscriber_found) {
    std::printf("    no such subscriber\n");
    return;
  }
  if (!r->winning_qhp.has_value()) {
    std::printf("    no profile admits this call\n");
    return;
  }
  std::printf("    profile: %s\n",
              r->winning_qhp->Values("QHPName")->at(0).ToString().c_str());
  if (r->appearances.empty()) {
    std::printf("    (no call appearances: unreachable by this profile)\n");
  }
  for (const ndq::Entry& ca : r->appearances) {
    const std::vector<ndq::Value>* desc = ca.Values("description");
    std::printf("    ring %s%s%s\n",
                ca.Values("CANumber")->at(0).ToString().c_str(),
                desc != nullptr ? "  # " : "",
                desc != nullptr ? desc->at(0).ToString().c_str() : "");
  }
}

}  // namespace

int main() {
  // Load Fig. 11 into the *mutable* store: subscriber policies are
  // created and modified dynamically in TOPS.
  ndq::SimDisk disk, scratch;
  ndq::DirectoryStore store(&disk, ndq::gen::PaperSchema());
  ndq::DirectoryInstance inst = ndq::gen::PaperInstance();
  for (const auto& [key, entry] : inst) {
    (void)key;
    ndq::Status s = store.Add(entry);
    if (!s.ok()) {
      std::printf("load error: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  // One engine over the mutable store; the resolver opens a session on
  // it. Store mutations below are followed by InvalidateCaches().
  ndq::Engine engine(&scratch, &store, {}, &disk);
  TopsResolver resolver(&engine,
                        ndq::gen::MustDn("dc=research, dc=att, dc=com"));

  Dial(&resolver, "Wednesday 10:00", "jag", CallContext{"", 1000, 3});
  Dial(&resolver, "Saturday 12:00", "jag", CallContext{"", 1200, 6});
  Dial(&resolver, "Wednesday 05:00", "jag", CallContext{"", 500, 3});
  Dial(&resolver, "unknown name", "milo", CallContext{"", 1000, 3});

  // Dynamic update: jag enables do-not-disturb at top priority.
  std::printf("\n[jag adds a do-not-disturb profile]\n");
  ndq::Dn jag = ndq::gen::MustDn(
      "uid=jag, ou=userProfiles, dc=research, dc=att, dc=com");
  ndq::Dn dnd = jag.Child(ndq::Rdn::Single("QHPName", "dnd").TakeValue());
  ndq::Entry q(dnd);
  q.AddClass("QHP");
  q.AddString("QHPName", "dnd");
  q.AddInt("priority", 0);
  if (!store.Add(q).ok()) return 1;
  engine.InvalidateCaches();

  Dial(&resolver, "Wednesday 10:00, DND active", "jag",
       CallContext{"", 1000, 3});

  std::printf("\n[jag removes do-not-disturb]\n");
  if (!store.Remove(dnd).ok()) return 1;
  engine.InvalidateCaches();
  Dial(&resolver, "Wednesday 10:00 again", "jag", CallContext{"", 1000, 3});

  std::printf("\nstore: %llu entries, %zu segment(s), memtable %zu\n",
              (unsigned long long)store.num_entries(), store.num_segments(),
              store.memtable_size());
  return 0;
}
