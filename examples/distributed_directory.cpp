// Distributed evaluation (Sec. 8.3): the namespace is delegated across a
// fleet of directory servers DNS-style; atomic sub-queries run where the
// data lives and only their results travel to the coordinator.

#include <cstdio>

#include "dist/distributed.h"
#include "query/parser.h"
#include "testing_support.h"

namespace {

void RunDistributed(ndq::DistributedDirectory* fleet, const char* title,
                    const char* text) {
  std::printf("--- %s\n", title);
  fleet->ResetStats();
  ndq::Result<ndq::QueryPtr> q = ndq::ParseQuery(text);
  if (!q.ok()) {
    std::printf("    parse error: %s\n", q.status().ToString().c_str());
    return;
  }
  ndq::Result<std::vector<ndq::Entry>> r = fleet->Evaluate(**q);
  if (!r.ok()) {
    std::printf("    eval error: %s\n", r.status().ToString().c_str());
    return;
  }
  std::printf("    %zu result(s)\n", r->size());
  for (size_t i = 0; i < r->size() && i < 3; ++i) {
    std::printf("      %s\n", (*r)[i].dn().ToString().c_str());
  }
  if (r->size() > 3) std::printf("      ...\n");
  const ndq::NetStats& net = fleet->net_stats();
  std::printf(
      "    network: %llu messages, %llu records / %llu bytes shipped, "
      "%llu server contacts\n",
      (unsigned long long)net.messages,
      (unsigned long long)net.records_shipped,
      (unsigned long long)net.bytes_shipped,
      (unsigned long long)net.servers_contacted);
}

}  // namespace

int main() {
  // A synthetic multi-org directory, delegated along organizational
  // boundaries as Sec. 3.3 describes.
  ndq::gen::DifOptions opt;
  opt.num_orgs = 2;
  opt.subdomains_per_org = 2;
  opt.subscribers_per_domain = 20;
  ndq::DirectoryInstance global = ndq::gen::GenerateDif(opt);
  std::printf("global directory: %zu entries\n", global.size());

  ndq::Result<ndq::DistributedDirectory> fleet_r =
      ndq::DistributedDirectory::Build(
          global, {{"dc=com", "root"},
                   {"dc=org0, dc=com", "org0"},
                   {"dc=org1, dc=com", "org1"},
                   {"dc=sub0, dc=org0, dc=com", "sub0-delegate"}});
  if (!fleet_r.ok()) {
    std::printf("build error: %s\n", fleet_r.status().ToString().c_str());
    return 1;
  }
  ndq::DistributedDirectory& fleet = *fleet_r;
  for (const auto& server : fleet.servers()) {
    std::printf("  server %-14s context '%s': %zu entries\n",
                server->name().c_str(),
                server->context().ToString().c_str(),
                server->num_entries());
  }
  std::printf("\n");

  RunDistributed(&fleet, "local query: stays on one delegate",
                 "(dc=sub0, dc=org0, dc=com ? sub ? "
                 "objectClass=TOPSSubscriber)");

  RunDistributed(&fleet, "global query: fans out to the whole fleet",
                 "(dc=com ? sub ? objectClass=TOPSSubscriber)");

  RunDistributed(
      &fleet, "cross-server L2 query (subscribers with 3+ profiles)",
      "(c (dc=com ? sub ? objectClass=TOPSSubscriber)"
      "   (dc=com ? sub ? objectClass=QHP) count($2)>=3)");

  RunDistributed(
      &fleet, "cross-server L3 query (policies for SMTP traffic)",
      "(vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
      "    (& (dc=com ? sub ? sourcePort=25)"
      "       (dc=com ? sub ? objectClass=trafficProfile)) SLATPRef)");

  std::printf("\nper-server disk I/O:\n");
  for (const auto& server : fleet.servers()) {
    std::printf("  %-14s %s\n", server->name().c_str(),
                server->disk()->stats().ToString().c_str());
  }
  std::printf("  %-14s %s\n", "coordinator",
              fleet.coordinator_disk()->stats().ToString().c_str());
  return 0;
}
