// Distributed evaluation (Sec. 8.3): the namespace is delegated across a
// fleet of directory servers DNS-style; atomic sub-queries run where the
// data lives and only their results travel to the coordinator. The fleet
// sits behind the regular Engine/Session API — the only difference from a
// local engine is the EngineOptions backend.

#include <cstdio>

#include "engine/engine.h"
#include "testing_support.h"

namespace {

void RunOne(ndq::Session* session, ndq::Engine* engine, const char* title,
            const char* text) {
  std::printf("--- %s\n", title);
  ndq::DistributedDirectory* fleet = engine->fleet();
  fleet->ResetStats();
  ndq::QueryOutcome out = session->Run(text);
  if (!out.ok()) {
    std::printf("    error: %s\n", out.status.ToString().c_str());
    return;
  }
  std::printf("    %zu result(s)\n", out.entries.size());
  for (size_t i = 0; i < out.entries.size() && i < 3; ++i) {
    std::printf("      %s\n", out.entries[i].dn().ToString().c_str());
  }
  if (out.entries.size() > 3) std::printf("      ...\n");
  const ndq::NetStats& net = fleet->net_stats();
  std::printf(
      "    network: %llu messages, %llu records / %llu bytes shipped, "
      "%llu server contacts, %llu failovers\n",
      (unsigned long long)net.messages,
      (unsigned long long)net.records_shipped,
      (unsigned long long)net.bytes_shipped,
      (unsigned long long)net.servers_contacted,
      (unsigned long long)net.failovers);
}

}  // namespace

int main() {
  // A synthetic multi-org directory, delegated along organizational
  // boundaries as Sec. 3.3 describes, with two replicas per shard.
  ndq::gen::DifOptions opt;
  opt.num_orgs = 2;
  opt.subdomains_per_org = 2;
  opt.subscribers_per_domain = 20;
  ndq::DirectoryInstance global = ndq::gen::GenerateDif(opt);
  std::printf("global directory: %zu entries\n", global.size());

  ndq::Result<ndq::TopologyConfig> topology = ndq::TopologyConfig::Parse(
      "replicas 2\n"
      "shard root          dc=com\n"
      "shard org0          dc=org0, dc=com\n"
      "shard org1          dc=org1, dc=com\n"
      "shard sub0-delegate dc=sub0, dc=org0, dc=com\n");
  if (!topology.ok()) {
    std::printf("topology error: %s\n", topology.status().ToString().c_str());
    return 1;
  }

  ndq::EngineOptions eopt;
  eopt.backend = ndq::EngineBackend::kDistributed;
  eopt.topology = *topology;
  ndq::Engine engine(global, eopt);
  if (!engine.init_status().ok()) {
    std::printf("build error: %s\n",
                engine.init_status().ToString().c_str());
    return 1;
  }
  ndq::DistributedDirectory* fleet = engine.fleet();
  for (const auto& shard : fleet->shards()) {
    std::printf("  shard %-14s context '%-25s' %zu entries x%zu replicas\n",
                shard->name().c_str(), shard->context().ToString().c_str(),
                shard->num_entries(), shard->num_replicas());
  }
  std::printf("\n");

  ndq::Session session = engine.OpenSession();

  RunOne(&session, &engine, "local query: stays on one delegate",
         "(dc=sub0, dc=org0, dc=com ? sub ? "
         "objectClass=TOPSSubscriber)");

  RunOne(&session, &engine, "global query: fans out to the whole fleet",
         "(dc=com ? sub ? objectClass=TOPSSubscriber)");

  RunOne(&session, &engine,
         "cross-server L2 query (subscribers with 3+ profiles)",
         "(c (dc=com ? sub ? objectClass=TOPSSubscriber)"
         "   (dc=com ? sub ? objectClass=QHP) count($2)>=3)");

  RunOne(&session, &engine,
         "cross-server L3 query (policies for SMTP traffic)",
         "(vd (dc=com ? sub ? objectClass=SLAPolicyRules)"
         "    (& (dc=com ? sub ? sourcePort=25)"
         "       (dc=com ? sub ? objectClass=trafficProfile)) SLATPRef)");

  // Failover: take one replica of every shard down; the same global
  // query still returns every entry, served by the sibling replicas.
  for (const auto& shard : fleet->shards()) {
    shard->replica(0)->set_down(true);
  }
  RunOne(&session, &engine,
         "global query again, one replica down per shard (failover)",
         "(dc=com ? sub ? objectClass=TOPSSubscriber)");
  std::printf("    per-replica failovers:\n");
  for (const auto& [name, count] : fleet->ReplicaFailovers()) {
    std::printf("      %-18s %llu\n", name.c_str(),
                (unsigned long long)count);
  }
  for (const auto& shard : fleet->shards()) {
    shard->replica(0)->set_down(false);
  }

  std::printf("\nper-replica disk I/O:\n");
  for (const auto& server : fleet->servers()) {
    std::printf("  %-18s %s\n", server->name().c_str(),
                server->disk()->stats().ToString().c_str());
  }
  std::printf("  %-18s %s\n", "coordinator",
              fleet->coordinator_disk()->stats().ToString().c_str());
  return 0;
}
