// ndqsh — an interactive shell for querying network directories.
//
// Usage:
//   ndqsh [ldif-file]        load entries from LDIF (default: the paper's
//                            Figures 1/11/12 sample data)
//
// Commands (one per line; queries are the paper's syntax, Figs. 7-10):
//   (dc=att, dc=com ? sub ? surName=jagadish)      evaluate a query
//   .load <file>                                   load more LDIF
//   .add                                           read one LDIF record
//                                                  from following lines
//                                                  (end with a blank line)
//   .delete <dn>                                   remove an entry
//   .explain <query>                               classify + optimize
//   .stats                                         store and I/O counters
//   .help / .quit
//
// The shell is a thin frontend over ndq::Engine (engine/engine.h): one
// engine owns the disks, store, operand cache, thread pool and fault
// policy, and a single Session submits the queries. `.set parallelism`
// and `.set faults` are engine settings — they survive across queries and
// are reported by `.explain analyze` and `.stats`.
//
// `.topology <file>` rebuilds the engine over a fleet of replicated
// subtree shards (EngineBackend::kDistributed) loaded with the current
// entries; queries work unchanged and `.stats` shows the network
// counters. `.topology off` returns to the local mutable store.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/ldif.h"
#include "core/ldif_update.h"
#include "engine/engine.h"
#include "exec/cost.h"
#include "gen/paper_data.h"
#include "query/optimize.h"
#include "query/parser.h"
#include "query/rewrite.h"
#include "query/validate.h"
#include "storage/serde.h"

namespace {

struct Shell {
  ndq::Schema schema = ndq::gen::PaperSchema();
  // Behind a pointer so `.topology` can swap the whole backend.
  std::unique_ptr<ndq::Engine> engine =
      std::make_unique<ndq::Engine>(schema);
  ndq::Session session{engine->OpenSession()};
  // The active fault spec, remembered for display ("off" = none).
  std::string fault_spec = "off";
  // The active shard layout; meaningful when distributed() is true.
  ndq::TopologyConfig topology;

  bool distributed() const { return engine->fleet() != nullptr; }

  ndq::DirectoryStore& store() { return *engine->mutable_store(); }

  /// Every entry currently served, as an instance the next backend can
  /// load: the local store's merged view, or (distributed) each shard's
  /// partition off replica 0.
  ndq::Result<ndq::DirectoryInstance> CurrentInstance() {
    ndq::DirectoryInstance inst(schema, /*validate=*/false);
    auto add = [&inst](std::string_view record) -> ndq::Status {
      NDQ_ASSIGN_OR_RETURN(ndq::Entry e, ndq::DeserializeEntry(record));
      return inst.Add(e);
    };
    if (distributed()) {
      for (const auto& shard : engine->fleet()->shards()) {
        NDQ_RETURN_IF_ERROR(
            shard->replica(0)->store().ScanRange("", "", add));
      }
    } else {
      NDQ_RETURN_IF_ERROR(engine->store().ScanRange("", "", add));
    }
    return inst;
  }

  void TopologyOff() {
    if (!distributed()) {
      std::printf("already on the local backend\n");
      return;
    }
    ndq::Result<ndq::DirectoryInstance> inst = CurrentInstance();
    if (!inst.ok()) {
      std::printf("cannot read fleet entries: %s\n",
                  inst.status().ToString().c_str());
      return;
    }
    auto next = std::make_unique<ndq::Engine>(schema);
    ndq::Session next_session = next->OpenSession();
    ndq::UpdateBatch batch;
    for (const auto& [key, entry] : *inst) batch.Put(entry);
    ndq::UpdateResult res = next_session.Apply(batch);
    if (!res.ok()) {
      std::printf("reload failed: %s\n", res.status.ToString().c_str());
      return;
    }
    engine = std::move(next);
    session = std::move(next_session);
    fault_spec = "off";
    std::printf("local backend restored (%zu entries)\n", res.applied);
  }

  void TopologyLoad(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      std::printf("cannot open %s\n", path.c_str());
      return;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    ndq::Result<ndq::TopologyConfig> parsed =
        ndq::TopologyConfig::Parse(buf.str());
    if (!parsed.ok()) {
      std::printf("bad topology: %s\n", parsed.status().ToString().c_str());
      return;
    }
    ndq::Result<ndq::DirectoryInstance> inst = CurrentInstance();
    if (!inst.ok()) {
      std::printf("cannot snapshot entries: %s\n",
                  inst.status().ToString().c_str());
      return;
    }
    ndq::EngineOptions opt;
    opt.backend = ndq::EngineBackend::kDistributed;
    opt.topology = *parsed;
    auto next = std::make_unique<ndq::Engine>(*inst, opt);
    if (!next->init_status().ok()) {
      std::printf("fleet build failed: %s\n",
                  next->init_status().ToString().c_str());
      return;  // the current engine stays live
    }
    engine = std::move(next);
    session = engine->OpenSession();
    topology = *parsed;
    fault_spec = "off";
    std::printf("distributed backend up (read-only):\n");
    for (const auto& shard : engine->fleet()->shards()) {
      std::printf("  shard %-14s context '%-25s' %zu entries x%zu\n",
                  shard->name().c_str(),
                  shard->context().ToString().c_str(), shard->num_entries(),
                  shard->num_replicas());
    }
  }

  void TopologyShow() {
    if (!distributed()) {
      std::printf("backend: local (use .topology <file> to shard)\n");
      return;
    }
    std::printf("backend: distributed\n%s", topology.ToString().c_str());
  }

  void SetFaults(const std::string& spec) {
    ndq::Status s = engine->SetFaults(spec);
    if (!s.ok()) {
      std::printf("bad fault spec: %s\n", s.ToString().c_str());
      std::printf(
          "syntax: <rule>[;<rule>...], rule = ops[:field...]\n"
          "  ops:    read|write|alloc|free|any\n"
          "  fields: n=<k> (fail the k-th op), every=<k>, p=<prob>,\n"
          "          seed=<s>, page=<id>, sticky\n"
          "  e.g. .set faults read:n=3   .set faults any:p=0.01:seed=7\n");
      return;
    }
    fault_spec = (spec == "off" || spec.empty()) ? "off" : spec;
    if (fault_spec == "off") {
      std::printf("fault injection off\n");
    } else {
      std::printf("fault injection on: %s\n", fault_spec.c_str());
    }
  }

  void SetParallelism(size_t n) {
    if (n == 0) n = 1;
    engine->SetParallelism(n);
    std::printf(
        "parallelism set to %zu (operand cache: %zu pages, cleared on "
        "store updates)\n",
        engine->parallelism(),
        engine->cache() != nullptr ? engine->cache()->capacity_pages()
                                   : size_t{0});
  }

  void SetOptimize(const std::string& arg) {
    if (arg != "on" && arg != "off") {
      std::printf("usage: .set optimize on|off\n");
      return;
    }
    engine->SetOptimize(arg == "on");
    std::printf("cost-based optimizer %s\n", arg.c_str());
  }

  void SetIoDepth(size_t n) {
    engine->SetIoDepth(n);
    if (n == 0) {
      std::printf("async I/O off (synchronous page reads)\n");
    } else {
      std::printf(
          "io-depth set to %zu (run scans keep up to %zu page reads in "
          "flight; page accounting is unchanged)\n",
          engine->io_depth(), engine->io_depth());
    }
  }

  // Cached operand lists are snapshots of the store; drop them whenever
  // it mutates (.load/.apply/.add/.delete).
  void InvalidateCache() { engine->InvalidateCaches(); }

  int LoadLdifText(const std::string& text) {
    if (distributed()) {
      std::printf("distributed backend is read-only (.topology off first)\n");
      return -1;
    }
    ndq::Result<std::vector<ndq::Entry>> entries =
        ndq::ParseLdif(schema, text);
    if (!entries.ok()) {
      std::printf("parse error: %s\n", entries.status().ToString().c_str());
      return -1;
    }
    // Session::Apply: ops run through the engine's epoch-guarded write
    // path; in-flight queries keep their pinned snapshots and the operand
    // cache is invalidated for us.
    ndq::UpdateBatch batch;
    for (ndq::Entry& e : *entries) batch.Put(std::move(e));
    ndq::UpdateResult res = session.Apply(batch);
    for (const ndq::Status& s : res.op_status) {
      if (!s.ok()) std::printf("put error: %s\n", s.ToString().c_str());
    }
    return static_cast<int>(res.applied);
  }

  void ApplyFile(const std::string& path) {
    if (distributed()) {
      std::printf("distributed backend is read-only (.topology off first)\n");
      return;
    }
    std::ifstream in(path);
    if (!in) {
      std::printf("cannot open %s\n", path.c_str());
      return;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    ndq::Result<size_t> n =
        ndq::ApplyLdifChanges(schema, buf.str(), &store());
    if (!n.ok()) {
      std::printf("apply error: %s\n", n.status().ToString().c_str());
      return;
    }
    if (*n > 0) InvalidateCache();
    std::printf("applied %zu change record(s)\n", *n);
  }

  void LoadFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      std::printf("cannot open %s\n", path.c_str());
      return;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    int n = LoadLdifText(buf.str());
    if (n >= 0) std::printf("loaded %d entries from %s\n", n, path.c_str());
  }

  // Distinguishes "the text never parsed" from "the plan failed to
  // evaluate" in an outcome: rejected/unparsed outcomes carry no plan.
  static void PrintFailure(const ndq::QueryOutcome& outcome) {
    std::printf("%s error: %s\n",
                outcome.plan == nullptr ? "parse" : "eval",
                outcome.status.ToString().c_str());
    for (const ndq::DegradationWarning& w : outcome.warnings) {
      std::printf("warning: %s\n", w.ToString().c_str());
    }
  }

  void RunQuery(const std::string& text) {
    ndq::QueryOutcome outcome = session.Run(text);
    if (!outcome.ok()) {
      PrintFailure(outcome);
      return;
    }
    for (const ndq::Entry& e : outcome.entries) {
      std::printf("%s", e.ToString().c_str());
      std::printf("\n");
    }
    std::printf("# %zu entr%s  [%s]\n", outcome.entries.size(),
                outcome.entries.size() == 1 ? "y" : "ies",
                ndq::LanguageToString(outcome.plan->MinimalLanguage()));
  }

  void ExplainAnalyze(const std::string& text) {
    ndq::QueryOutcome outcome = session.Run(text);
    if (!outcome.ok()) {
      PrintFailure(outcome);
      return;
    }
    std::printf(
        "settings: parallelism=%zu iodepth=%zu optimize=%s faults=%s "
        "cache=%zu pages\n",
        engine->parallelism(), engine->io_depth(),
        engine->optimize() ? "on" : "off", fault_spec.c_str(),
        engine->cache() != nullptr ? engine->cache()->capacity_pages()
                                   : size_t{0});
    if (outcome.optimizer.Total() > 0) {
      std::printf("optimizer: %s\n", outcome.optimizer.ToString().c_str());
    }
    std::printf("%s", ndq::ExplainAnalyze(engine->store(), *outcome.plan,
                                          outcome.trace)
                          .c_str());
    std::printf(
        "total: %zu result entr%s; estimated ~%.0f pages, actual %llu "
        "transfers (%llu reads + %llu writes), %.1f ms\n",
        outcome.entries.size(), outcome.entries.size() == 1 ? "y" : "ies",
        outcome.estimated_pages,
        (unsigned long long)outcome.trace.io.TotalTransfers(),
        (unsigned long long)outcome.trace.io.page_reads,
        (unsigned long long)outcome.trace.io.page_writes,
        outcome.trace.wall_micros / 1000.0);
    for (const std::string& v : ndq::VerifyTheoremBounds(outcome.trace)) {
      std::printf("BOUND VIOLATION: %s\n", v.c_str());
    }
  }

  void Explain(const std::string& text) {
    ndq::Result<ndq::QueryPtr> q = ndq::ParseQuery(text);
    if (!q.ok()) {
      std::printf("parse error: %s\n", q.status().ToString().c_str());
      return;
    }
    std::printf("language: %s, %zu node(s)\n",
                ndq::LanguageToString((*q)->MinimalLanguage()),
                (*q)->NodeCount());
    for (const ndq::QueryIssue& issue :
         ndq::ValidateQuery(schema, **q)) {
      std::printf("%s: %s\n",
                  issue.severity == ndq::QueryIssue::Severity::kError
                      ? "error"
                      : "warning",
                  issue.message.c_str());
    }
    ndq::RewriteStats stats;
    ndq::QueryPtr r = ndq::RewriteQuery(*q, &stats);
    if (stats.Total() > 0) {
      std::printf("canonicalized (%zu rewrite(s)): %s\n", stats.Total(),
                  r->ToString().c_str());
    } else {
      std::printf("already canonical: %s\n", r->ToString().c_str());
    }
    if (engine->optimize()) {
      ndq::OptimizedPlan opt = ndq::OptimizeQuery(engine->store(), r);
      if (opt.stats.Total() > 0) {
        std::printf(
            "optimized (%s; est ~%.0f -> ~%.0f pages): %s\n",
            opt.stats.ToString().c_str(), opt.est_pages_before,
            opt.est_pages_after, opt.plan->ToString().c_str());
        r = opt.plan;
      } else {
        std::printf("optimizer: no profitable rewrite\n");
      }
    }
    std::printf("plan:\n%s", ndq::ExplainPlan(engine->store(), *r).c_str());
    ndq::CostEstimate est = ndq::EstimateCost(engine->store(), *r);
    std::printf("estimated cost: ~%.0f pages (%.0f leaf + %.0f operator)\n",
                est.TotalPages(), est.leaf_pages, est.operator_pages);
  }

  void Stats() {
    if (distributed()) {
      ndq::DistributedDirectory* fleet = engine->fleet();
      std::printf("backend: distributed (%zu shards)\n",
                  fleet->shards().size());
      for (const auto& server : fleet->servers()) {
        std::printf("  %-18s %llu entries, disk %s\n",
                    server->name().c_str(),
                    (unsigned long long)server->store().num_entries(),
                    server->disk()->stats().ToString().c_str());
      }
      const ndq::NetStats& net = fleet->net_stats();
      std::printf(
          "network: %llu messages, %llu records / %llu bytes shipped,\n"
          "         %llu server contacts, %llu retries, %llu failovers, "
          "%llu degraded\n",
          (unsigned long long)net.messages,
          (unsigned long long)net.records_shipped,
          (unsigned long long)net.bytes_shipped,
          (unsigned long long)net.servers_contacted,
          (unsigned long long)net.retries, (unsigned long long)net.failovers,
          (unsigned long long)net.degraded_results);
      std::printf("coordinator:  %s\n",
                  fleet->coordinator_disk()->stats().ToString().c_str());
    } else {
      std::printf("store: %llu entries, %zu segment(s), memtable %zu\n",
                  (unsigned long long)store().num_entries(),
                  store().num_segments(), store().memtable_size());
      std::printf("data disk:    %s\n",
                  engine->data_disk()->stats().ToString().c_str());
      std::printf("scratch disk: %s\n",
                  engine->scratch()->stats().ToString().c_str());
    }
    if (engine->cache() != nullptr) {
      ndq::OperandCacheStats cs = engine->cache()->stats();
      std::printf(
          "operand cache: %llu hit(s), %llu miss(es), %llu/%zu pages "
          "(%llu entr%s), %llu eviction(s); parallelism %zu\n",
          (unsigned long long)cs.hits, (unsigned long long)cs.misses,
          (unsigned long long)cs.resident_pages,
          engine->cache()->capacity_pages(),
          (unsigned long long)cs.resident_entries,
          cs.resident_entries == 1 ? "y" : "ies",
          (unsigned long long)cs.evictions, engine->parallelism());
      if (cs.copy_failures > 0) {
        std::printf("operand cache: %llu copy failure(s) absorbed\n",
                    (unsigned long long)cs.copy_failures);
      }
    }
    ndq::SessionStats ss = session.stats();
    std::printf("session: %llu submitted, %llu completed, %llu rejected\n",
                (unsigned long long)ss.submitted,
                (unsigned long long)ss.completed,
                (unsigned long long)ss.rejected);
    if (engine->fault_injector() != nullptr) {
      std::printf("fault injection: %llu of %llu eligible op(s) failed\n",
                  (unsigned long long)engine->fault_injector()->faults_fired(),
                  (unsigned long long)engine->fault_injector()->ops_seen());
    }
  }
};

const char* kHelp =
    "commands:\n"
    "  (<query>)           evaluate (paper syntax; try .help-examples)\n"
    "  .load <file>        load LDIF entries (online: queries in flight\n"
    "                      keep their snapshot; new queries see the load)\n"
    "  .apply <file>       apply LDIF change records (changetype:)\n"
    "  .add                read one LDIF record until a blank line\n"
    "  .delete <dn>        remove an entry (online, like .load)\n"
    "  .explain <query>    classify + show optimizer rewrites + cost\n"
    "  .explain analyze <query>\n"
    "                      evaluate with per-operator tracing: estimated\n"
    "                      vs actual pages/cardinality per plan node\n"
    "  .set parallelism <n>\n"
    "                      evaluate independent operand subtrees on up to\n"
    "                      n threads, with a sorted-operand cache for\n"
    "                      repeated atomic sub-queries (1 = sequential)\n"
    "  .set iodepth <n>    keep up to n async page reads in flight on\n"
    "                      sequential run scans (0 = synchronous, the\n"
    "                      default; page accounting is identical)\n"
    "  .set optimize on|off\n"
    "                      cost-based optimizer: short-circuit provably\n"
    "                      empty operands, reorder &/| by selectivity,\n"
    "                      push filters below hierarchy operators (on by\n"
    "                      default; .explain shows what it did)\n"
    "  .set faults <spec>  inject I/O faults on both disks; spec is\n"
    "                      rule[;rule...], rule = ops[:n=k|:every=k|:p=x\n"
    "                      |:seed=s|:page=id|:sticky], ops in\n"
    "                      read|write|alloc|free|any (.set faults off)\n"
    "  .topology <file>    reload the current entries into a fleet of\n"
    "                      replicated subtree shards and route queries\n"
    "                      through the coordinator (read-only); the file\n"
    "                      holds `replicas N`, `page_size N` and\n"
    "                      `shard <name> [replicas=K] <dn>` lines\n"
    "  .topology           show the active shard layout\n"
    "  .topology off       return to the local mutable store\n"
    "  .stats              store / I/O / operand-cache counters (network\n"
    "                      and per-replica counters when distributed)\n"
    "  .help-examples      sample queries\n"
    "  .quit\n";

const char* kExamples =
    "examples:\n"
    "  (dc=att, dc=com ? sub ? surName=jagadish)\n"
    "  (c (dc=com ? sub ? objectClass=organizationalUnit)\n"
    "     (dc=com ? sub ? surName=jagadish))\n"
    "  (g (dc=com ? sub ? objectClass=SLAPolicyRules)\n"
    "     count(SLAPVPRef) > 1)\n"
    "  (vd (dc=com ? sub ? objectClass=SLAPolicyRules)\n"
    "      (dc=com ? sub ? sourcePort=25) SLATPRef)\n"
    "  (ldap dc=com ? sub ? (&(objectClass=QHP)(priority<=1)))\n";

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  if (argc > 1) {
    shell.LoadFile(argv[1]);
  } else {
    int n = shell.LoadLdifText(
        ndq::WriteLdif(ndq::gen::PaperInstance()));
    std::printf("loaded %d entries (paper sample data)\n", n);
  }
  std::printf("ndqsh — type .help for commands\n");

  std::string line;
  bool interactive = true;
  while (interactive) {
    std::printf("ndq> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Trim.
    size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    size_t e = line.find_last_not_of(" \t");
    line = line.substr(b, e - b + 1);

    if (line == ".quit" || line == ".exit") break;
    if (line == ".help") {
      std::printf("%s", kHelp);
    } else if (line == ".help-examples") {
      std::printf("%s", kExamples);
    } else if (line == ".stats") {
      shell.Stats();
    } else if (line.rfind(".load ", 0) == 0) {
      shell.LoadFile(line.substr(6));
    } else if (line.rfind(".apply ", 0) == 0) {
      shell.ApplyFile(line.substr(7));
    } else if (line == ".add") {
      std::string record, rec_line;
      while (std::getline(std::cin, rec_line) && !rec_line.empty()) {
        record += rec_line;
        record += '\n';
      }
      int n = shell.LoadLdifText(record);
      if (n >= 0) std::printf("added %d entr%s\n", n, n == 1 ? "y" : "ies");
    } else if (line.rfind(".delete ", 0) == 0) {
      ndq::Result<ndq::Dn> dn = ndq::Dn::Parse(line.substr(8));
      if (!dn.ok()) {
        std::printf("bad dn: %s\n", dn.status().ToString().c_str());
        continue;
      }
      ndq::UpdateBatch batch;
      batch.Remove(*dn);
      ndq::UpdateResult res = shell.session.Apply(batch);
      std::printf("%s\n",
                  res.ok() ? "deleted" : res.status.ToString().c_str());
    } else if (line == ".topology") {
      shell.TopologyShow();
    } else if (line == ".topology off") {
      shell.TopologyOff();
    } else if (line.rfind(".topology ", 0) == 0) {
      shell.TopologyLoad(line.substr(10));
    } else if (line.rfind(".set faults ", 0) == 0) {
      shell.SetFaults(line.substr(12));
    } else if (line.rfind(".set parallelism ", 0) == 0) {
      char* end = nullptr;
      unsigned long n = std::strtoul(line.c_str() + 17, &end, 10);
      if (end == line.c_str() + 17 || (end != nullptr && *end != '\0')) {
        std::printf("usage: .set parallelism <n>\n");
        continue;
      }
      shell.SetParallelism(static_cast<size_t>(n));
    } else if (line.rfind(".set iodepth ", 0) == 0) {
      char* end = nullptr;
      unsigned long n = std::strtoul(line.c_str() + 13, &end, 10);
      if (end == line.c_str() + 13 || (end != nullptr && *end != '\0')) {
        std::printf("usage: .set iodepth <n>\n");
        continue;
      }
      shell.SetIoDepth(static_cast<size_t>(n));
    } else if (line.rfind(".set optimize ", 0) == 0) {
      shell.SetOptimize(line.substr(14));
    } else if (line.rfind(".explain analyze ", 0) == 0) {
      std::string q = line.substr(17);
      // Multi-line queries: keep reading while parens are unbalanced.
      while (std::count(q.begin(), q.end(), '(') >
             std::count(q.begin(), q.end(), ')')) {
        std::string more;
        if (!std::getline(std::cin, more)) break;
        q += ' ';
        q += more;
      }
      shell.ExplainAnalyze(q);
    } else if (line.rfind(".explain ", 0) == 0) {
      std::string q = line.substr(9);
      while (std::count(q.begin(), q.end(), '(') >
             std::count(q.begin(), q.end(), ')')) {
        std::string more;
        if (!std::getline(std::cin, more)) break;
        q += ' ';
        q += more;
      }
      shell.Explain(q);
    } else if (line[0] == '(') {
      std::string q = line;
      while (std::count(q.begin(), q.end(), '(') >
             std::count(q.begin(), q.end(), ')')) {
        std::string more;
        if (!std::getline(std::cin, more)) break;
        q += ' ';
        q += more;
      }
      shell.RunQuery(q);
    } else {
      std::printf("unknown command (try .help)\n");
    }
  }
  std::printf("\n");
  return 0;
}
