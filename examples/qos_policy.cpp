// QoS policy enforcement (Example 2.1 / Fig. 12): a router asks the
// directory which action applies to a packet, with priority and exception
// resolution, over a synthetic multi-domain policy directory.

#include <cstdio>

#include "apps/qos.h"
#include "engine/engine.h"
#include "testing_support.h"

using ndq::apps::PacketProfile;
using ndq::apps::PolicyDecision;
using ndq::apps::QosPolicyEngine;

namespace {

void Enforce(QosPolicyEngine* engine, const char* what,
             const PacketProfile& packet) {
  std::printf("--- packet: %s\n", what);
  std::printf("    src=%s port=%lld t=%lld dow=%lld\n",
              packet.source_address.c_str(),
              (long long)packet.source_port, (long long)packet.timestamp,
              (long long)packet.day_of_week);
  ndq::Result<PolicyDecision> d = engine->Match(packet);
  if (!d.ok()) {
    std::printf("    error: %s\n", d.status().ToString().c_str());
    return;
  }
  std::printf("    applicable policies: %zu, winners: %zu\n",
              d->applicable_policies, d->policies.size());
  for (const ndq::Entry& p : d->policies) {
    std::printf("    policy %s (priority %s)\n",
                p.Values("SLAPolicyName")->at(0).ToString().c_str(),
                p.Values("SLARulePriority")->at(0).ToString().c_str());
  }
  for (const ndq::Entry& a : d->actions) {
    std::printf("    => action %s: %s\n",
                a.Values("DSActionName")->at(0).ToString().c_str(),
                a.Values("DSPermission")->at(0).ToString().c_str());
  }
  if (d->actions.empty()) std::printf("    => default treatment\n");
}

}  // namespace

int main() {
  // The paper's own Fig. 12 fragment...
  {
    std::printf("== Figure 12 policy directory (dc=research) ==\n");
    ndq::DirectoryInstance inst = ndq::gen::PaperInstance();
    ndq::SimDisk disk, scratch;
    ndq::EntryStore store =
        ndq::EntryStore::BulkLoad(&disk, inst).TakeValue();
    ndq::Engine ndq_engine(&scratch, &store);
    QosPolicyEngine engine(
        &ndq_engine, ndq::gen::MustDn("dc=research, dc=att, dc=com"));

    PacketProfile weekend_packet;
    weekend_packet.source_address = "204.178.16.5";
    weekend_packet.timestamp = 19980606120000;
    weekend_packet.day_of_week = 6;
    Enforce(&engine, "weekend data traffic from the lsplitOff range",
            weekend_packet);

    PacketProfile weekday_packet = weekend_packet;
    weekday_packet.timestamp = 19990202120000;
    weekday_packet.day_of_week = 2;
    Enforce(&engine, "same source, outside every validity period",
            weekday_packet);
  }

  // ...and a larger synthetic deployment.
  {
    std::printf("\n== synthetic policy directory ==\n");
    ndq::gen::DifOptions opt;
    opt.num_orgs = 2;
    opt.subdomains_per_org = 2;
    opt.policies_per_domain = 20;
    opt.profiles_per_domain = 12;
    ndq::DirectoryInstance inst = ndq::gen::GenerateDif(opt);
    std::printf("directory: %zu entries\n", inst.size());
    ndq::SimDisk disk, scratch;
    ndq::EntryStore store =
        ndq::EntryStore::BulkLoad(&disk, inst).TakeValue();
    ndq::Engine ndq_engine(&scratch, &store);
    QosPolicyEngine engine(&ndq_engine,
                           ndq::gen::MustDn("dc=sub0, dc=org0, dc=com"));

    PacketProfile smtp;
    smtp.source_address = "205.44.3.2";
    smtp.source_port = 25;
    smtp.timestamp = 19980410120000;
    smtp.day_of_week = 5;
    Enforce(&engine, "SMTP traffic into dc=sub0", smtp);

    PacketProfile web = smtp;
    web.source_port = 443;
    Enforce(&engine, "HTTPS traffic into dc=sub0", web);
  }
  return 0;
}
