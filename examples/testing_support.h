// Shared includes for the example programs.

#ifndef NDQ_EXAMPLES_TESTING_SUPPORT_H_
#define NDQ_EXAMPLES_TESTING_SUPPORT_H_

#include "gen/dif_gen.h"
#include "gen/paper_data.h"
#include "store/entry_store.h"

#endif  // NDQ_EXAMPLES_TESTING_SUPPORT_H_
