file(REMOVE_RECURSE
  "CMakeFiles/evaluator_stats_test.dir/exec/evaluator_stats_test.cc.o"
  "CMakeFiles/evaluator_stats_test.dir/exec/evaluator_stats_test.cc.o.d"
  "evaluator_stats_test"
  "evaluator_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluator_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
