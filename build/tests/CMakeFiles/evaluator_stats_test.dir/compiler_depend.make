# Empty compiler generated dependencies file for evaluator_stats_test.
# This may be replaced when dependencies are built.
