
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dist/dist_property_test.cc" "tests/CMakeFiles/dist_property_test.dir/dist/dist_property_test.cc.o" "gcc" "tests/CMakeFiles/dist_property_test.dir/dist/dist_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/ndq_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/ndq_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ndq_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/ndq_store.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ndq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/ndq_query.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/ndq_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ndq_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
