# Empty dependencies file for dist_property_test.
# This may be replaced when dependencies are built.
