file(REMOVE_RECURSE
  "CMakeFiles/dist_property_test.dir/dist/dist_property_test.cc.o"
  "CMakeFiles/dist_property_test.dir/dist/dist_property_test.cc.o.d"
  "dist_property_test"
  "dist_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
