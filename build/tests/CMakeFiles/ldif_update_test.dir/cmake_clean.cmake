file(REMOVE_RECURSE
  "CMakeFiles/ldif_update_test.dir/core/ldif_update_test.cc.o"
  "CMakeFiles/ldif_update_test.dir/core/ldif_update_test.cc.o.d"
  "ldif_update_test"
  "ldif_update_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldif_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
