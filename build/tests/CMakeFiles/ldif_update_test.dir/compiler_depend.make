# Empty compiler generated dependencies file for ldif_update_test.
# This may be replaced when dependencies are built.
