file(REMOVE_RECURSE
  "CMakeFiles/attr_index_test.dir/index/attr_index_test.cc.o"
  "CMakeFiles/attr_index_test.dir/index/attr_index_test.cc.o.d"
  "attr_index_test"
  "attr_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attr_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
