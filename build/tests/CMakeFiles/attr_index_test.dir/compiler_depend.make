# Empty compiler generated dependencies file for attr_index_test.
# This may be replaced when dependencies are built.
