file(REMOVE_RECURSE
  "CMakeFiles/spill_stack_test.dir/storage/spill_stack_test.cc.o"
  "CMakeFiles/spill_stack_test.dir/storage/spill_stack_test.cc.o.d"
  "spill_stack_test"
  "spill_stack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spill_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
