# Empty compiler generated dependencies file for spill_stack_test.
# This may be replaced when dependencies are built.
