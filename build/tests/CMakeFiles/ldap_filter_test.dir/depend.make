# Empty dependencies file for ldap_filter_test.
# This may be replaced when dependencies are built.
