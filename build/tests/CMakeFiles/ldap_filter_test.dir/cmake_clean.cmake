file(REMOVE_RECURSE
  "CMakeFiles/ldap_filter_test.dir/filter/ldap_filter_test.cc.o"
  "CMakeFiles/ldap_filter_test.dir/filter/ldap_filter_test.cc.o.d"
  "ldap_filter_test"
  "ldap_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldap_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
