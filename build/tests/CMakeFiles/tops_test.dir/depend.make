# Empty dependencies file for tops_test.
# This may be replaced when dependencies are built.
