file(REMOVE_RECURSE
  "CMakeFiles/tops_test.dir/apps/tops_test.cc.o"
  "CMakeFiles/tops_test.dir/apps/tops_test.cc.o.d"
  "tops_test"
  "tops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
