file(REMOVE_RECURSE
  "CMakeFiles/reverse_run_test.dir/storage/reverse_run_test.cc.o"
  "CMakeFiles/reverse_run_test.dir/storage/reverse_run_test.cc.o.d"
  "reverse_run_test"
  "reverse_run_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_run_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
