# Empty compiler generated dependencies file for exec_io_test.
# This may be replaced when dependencies are built.
