file(REMOVE_RECURSE
  "CMakeFiles/exec_io_test.dir/exec/exec_io_test.cc.o"
  "CMakeFiles/exec_io_test.dir/exec/exec_io_test.cc.o.d"
  "exec_io_test"
  "exec_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
