# Empty dependencies file for entry_store_test.
# This may be replaced when dependencies are built.
