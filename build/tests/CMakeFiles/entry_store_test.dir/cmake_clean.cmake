file(REMOVE_RECURSE
  "CMakeFiles/entry_store_test.dir/store/entry_store_test.cc.o"
  "CMakeFiles/entry_store_test.dir/store/entry_store_test.cc.o.d"
  "entry_store_test"
  "entry_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entry_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
