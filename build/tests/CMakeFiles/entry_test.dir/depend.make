# Empty dependencies file for entry_test.
# This may be replaced when dependencies are built.
