# Empty dependencies file for lsm_oracle_test.
# This may be replaced when dependencies are built.
