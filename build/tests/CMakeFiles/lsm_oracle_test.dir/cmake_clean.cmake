file(REMOVE_RECURSE
  "CMakeFiles/lsm_oracle_test.dir/exec/lsm_oracle_test.cc.o"
  "CMakeFiles/lsm_oracle_test.dir/exec/lsm_oracle_test.cc.o.d"
  "lsm_oracle_test"
  "lsm_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
