file(REMOVE_RECURSE
  "CMakeFiles/string_index_test.dir/index/string_index_test.cc.o"
  "CMakeFiles/string_index_test.dir/index/string_index_test.cc.o.d"
  "string_index_test"
  "string_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
