# Empty compiler generated dependencies file for string_index_test.
# This may be replaced when dependencies are built.
