# Empty dependencies file for exec_oracle_test.
# This may be replaced when dependencies are built.
