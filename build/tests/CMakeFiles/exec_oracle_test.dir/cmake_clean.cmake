file(REMOVE_RECURSE
  "CMakeFiles/exec_oracle_test.dir/exec/exec_oracle_test.cc.o"
  "CMakeFiles/exec_oracle_test.dir/exec/exec_oracle_test.cc.o.d"
  "exec_oracle_test"
  "exec_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
