file(REMOVE_RECURSE
  "CMakeFiles/dn_test.dir/core/dn_test.cc.o"
  "CMakeFiles/dn_test.dir/core/dn_test.cc.o.d"
  "dn_test"
  "dn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
