# Empty compiler generated dependencies file for atomic_filter_test.
# This may be replaced when dependencies are built.
