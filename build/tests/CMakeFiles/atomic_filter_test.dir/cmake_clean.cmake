file(REMOVE_RECURSE
  "CMakeFiles/atomic_filter_test.dir/filter/atomic_filter_test.cc.o"
  "CMakeFiles/atomic_filter_test.dir/filter/atomic_filter_test.cc.o.d"
  "atomic_filter_test"
  "atomic_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
