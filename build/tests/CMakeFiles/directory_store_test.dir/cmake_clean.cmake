file(REMOVE_RECURSE
  "CMakeFiles/directory_store_test.dir/store/directory_store_test.cc.o"
  "CMakeFiles/directory_store_test.dir/store/directory_store_test.cc.o.d"
  "directory_store_test"
  "directory_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
