file(REMOVE_RECURSE
  "../bench/bench_query_plans"
  "../bench/bench_query_plans.pdb"
  "CMakeFiles/bench_query_plans.dir/bench_query_plans.cpp.o"
  "CMakeFiles/bench_query_plans.dir/bench_query_plans.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
