# Empty dependencies file for bench_aggregate.
# This may be replaced when dependencies are built.
