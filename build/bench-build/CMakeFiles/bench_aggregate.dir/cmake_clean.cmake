file(REMOVE_RECURSE
  "../bench/bench_aggregate"
  "../bench/bench_aggregate.pdb"
  "CMakeFiles/bench_aggregate.dir/bench_aggregate.cpp.o"
  "CMakeFiles/bench_aggregate.dir/bench_aggregate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
