# Empty compiler generated dependencies file for bench_operators_gbench.
# This may be replaced when dependencies are built.
