file(REMOVE_RECURSE
  "../bench/bench_operators_gbench"
  "../bench/bench_operators_gbench.pdb"
  "CMakeFiles/bench_operators_gbench.dir/bench_operators_gbench.cpp.o"
  "CMakeFiles/bench_operators_gbench.dir/bench_operators_gbench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_operators_gbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
