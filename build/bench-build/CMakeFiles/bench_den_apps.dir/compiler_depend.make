# Empty compiler generated dependencies file for bench_den_apps.
# This may be replaced when dependencies are built.
