file(REMOVE_RECURSE
  "../bench/bench_den_apps"
  "../bench/bench_den_apps.pdb"
  "CMakeFiles/bench_den_apps.dir/bench_den_apps.cpp.o"
  "CMakeFiles/bench_den_apps.dir/bench_den_apps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_den_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
