file(REMOVE_RECURSE
  "../bench/bench_atomic"
  "../bench/bench_atomic.pdb"
  "CMakeFiles/bench_atomic.dir/bench_atomic.cpp.o"
  "CMakeFiles/bench_atomic.dir/bench_atomic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
