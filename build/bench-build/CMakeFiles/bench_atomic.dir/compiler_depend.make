# Empty compiler generated dependencies file for bench_atomic.
# This may be replaced when dependencies are built.
