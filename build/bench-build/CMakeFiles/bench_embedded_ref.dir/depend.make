# Empty dependencies file for bench_embedded_ref.
# This may be replaced when dependencies are built.
