file(REMOVE_RECURSE
  "../bench/bench_embedded_ref"
  "../bench/bench_embedded_ref.pdb"
  "CMakeFiles/bench_embedded_ref.dir/bench_embedded_ref.cpp.o"
  "CMakeFiles/bench_embedded_ref.dir/bench_embedded_ref.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_embedded_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
