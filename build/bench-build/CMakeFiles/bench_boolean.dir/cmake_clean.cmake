file(REMOVE_RECURSE
  "../bench/bench_boolean"
  "../bench/bench_boolean.pdb"
  "CMakeFiles/bench_boolean.dir/bench_boolean.cpp.o"
  "CMakeFiles/bench_boolean.dir/bench_boolean.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_boolean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
