file(REMOVE_RECURSE
  "../bench/bench_expressiveness"
  "../bench/bench_expressiveness.pdb"
  "CMakeFiles/bench_expressiveness.dir/bench_expressiveness.cpp.o"
  "CMakeFiles/bench_expressiveness.dir/bench_expressiveness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expressiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
