# Empty compiler generated dependencies file for bench_expressiveness.
# This may be replaced when dependencies are built.
