file(REMOVE_RECURSE
  "CMakeFiles/distributed_directory.dir/distributed_directory.cpp.o"
  "CMakeFiles/distributed_directory.dir/distributed_directory.cpp.o.d"
  "distributed_directory"
  "distributed_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
