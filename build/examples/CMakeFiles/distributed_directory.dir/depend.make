# Empty dependencies file for distributed_directory.
# This may be replaced when dependencies are built.
