# Empty compiler generated dependencies file for tops_directory.
# This may be replaced when dependencies are built.
