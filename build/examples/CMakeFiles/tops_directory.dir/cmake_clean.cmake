file(REMOVE_RECURSE
  "CMakeFiles/tops_directory.dir/tops_directory.cpp.o"
  "CMakeFiles/tops_directory.dir/tops_directory.cpp.o.d"
  "tops_directory"
  "tops_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tops_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
