file(REMOVE_RECURSE
  "CMakeFiles/ndqsh.dir/ndqsh.cpp.o"
  "CMakeFiles/ndqsh.dir/ndqsh.cpp.o.d"
  "ndqsh"
  "ndqsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndqsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
