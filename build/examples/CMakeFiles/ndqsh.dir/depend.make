# Empty dependencies file for ndqsh.
# This may be replaced when dependencies are built.
