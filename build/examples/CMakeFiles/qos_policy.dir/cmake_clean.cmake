file(REMOVE_RECURSE
  "CMakeFiles/qos_policy.dir/qos_policy.cpp.o"
  "CMakeFiles/qos_policy.dir/qos_policy.cpp.o.d"
  "qos_policy"
  "qos_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
