# Empty compiler generated dependencies file for qos_policy.
# This may be replaced when dependencies are built.
