file(REMOVE_RECURSE
  "CMakeFiles/ndq_core.dir/dn.cc.o"
  "CMakeFiles/ndq_core.dir/dn.cc.o.d"
  "CMakeFiles/ndq_core.dir/entry.cc.o"
  "CMakeFiles/ndq_core.dir/entry.cc.o.d"
  "CMakeFiles/ndq_core.dir/instance.cc.o"
  "CMakeFiles/ndq_core.dir/instance.cc.o.d"
  "CMakeFiles/ndq_core.dir/ldif.cc.o"
  "CMakeFiles/ndq_core.dir/ldif.cc.o.d"
  "CMakeFiles/ndq_core.dir/ldif_update.cc.o"
  "CMakeFiles/ndq_core.dir/ldif_update.cc.o.d"
  "CMakeFiles/ndq_core.dir/schema.cc.o"
  "CMakeFiles/ndq_core.dir/schema.cc.o.d"
  "CMakeFiles/ndq_core.dir/status.cc.o"
  "CMakeFiles/ndq_core.dir/status.cc.o.d"
  "CMakeFiles/ndq_core.dir/value.cc.o"
  "CMakeFiles/ndq_core.dir/value.cc.o.d"
  "libndq_core.a"
  "libndq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
