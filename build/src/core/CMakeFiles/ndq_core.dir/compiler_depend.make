# Empty compiler generated dependencies file for ndq_core.
# This may be replaced when dependencies are built.
