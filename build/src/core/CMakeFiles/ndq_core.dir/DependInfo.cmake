
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dn.cc" "src/core/CMakeFiles/ndq_core.dir/dn.cc.o" "gcc" "src/core/CMakeFiles/ndq_core.dir/dn.cc.o.d"
  "/root/repo/src/core/entry.cc" "src/core/CMakeFiles/ndq_core.dir/entry.cc.o" "gcc" "src/core/CMakeFiles/ndq_core.dir/entry.cc.o.d"
  "/root/repo/src/core/instance.cc" "src/core/CMakeFiles/ndq_core.dir/instance.cc.o" "gcc" "src/core/CMakeFiles/ndq_core.dir/instance.cc.o.d"
  "/root/repo/src/core/ldif.cc" "src/core/CMakeFiles/ndq_core.dir/ldif.cc.o" "gcc" "src/core/CMakeFiles/ndq_core.dir/ldif.cc.o.d"
  "/root/repo/src/core/ldif_update.cc" "src/core/CMakeFiles/ndq_core.dir/ldif_update.cc.o" "gcc" "src/core/CMakeFiles/ndq_core.dir/ldif_update.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/core/CMakeFiles/ndq_core.dir/schema.cc.o" "gcc" "src/core/CMakeFiles/ndq_core.dir/schema.cc.o.d"
  "/root/repo/src/core/status.cc" "src/core/CMakeFiles/ndq_core.dir/status.cc.o" "gcc" "src/core/CMakeFiles/ndq_core.dir/status.cc.o.d"
  "/root/repo/src/core/value.cc" "src/core/CMakeFiles/ndq_core.dir/value.cc.o" "gcc" "src/core/CMakeFiles/ndq_core.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
