file(REMOVE_RECURSE
  "libndq_core.a"
)
