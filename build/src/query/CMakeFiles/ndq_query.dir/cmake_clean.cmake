file(REMOVE_RECURSE
  "CMakeFiles/ndq_query.dir/aggregate.cc.o"
  "CMakeFiles/ndq_query.dir/aggregate.cc.o.d"
  "CMakeFiles/ndq_query.dir/ast.cc.o"
  "CMakeFiles/ndq_query.dir/ast.cc.o.d"
  "CMakeFiles/ndq_query.dir/parser.cc.o"
  "CMakeFiles/ndq_query.dir/parser.cc.o.d"
  "CMakeFiles/ndq_query.dir/reference.cc.o"
  "CMakeFiles/ndq_query.dir/reference.cc.o.d"
  "CMakeFiles/ndq_query.dir/rewrite.cc.o"
  "CMakeFiles/ndq_query.dir/rewrite.cc.o.d"
  "CMakeFiles/ndq_query.dir/validate.cc.o"
  "CMakeFiles/ndq_query.dir/validate.cc.o.d"
  "libndq_query.a"
  "libndq_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndq_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
