file(REMOVE_RECURSE
  "libndq_query.a"
)
