
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/aggregate.cc" "src/query/CMakeFiles/ndq_query.dir/aggregate.cc.o" "gcc" "src/query/CMakeFiles/ndq_query.dir/aggregate.cc.o.d"
  "/root/repo/src/query/ast.cc" "src/query/CMakeFiles/ndq_query.dir/ast.cc.o" "gcc" "src/query/CMakeFiles/ndq_query.dir/ast.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/ndq_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/ndq_query.dir/parser.cc.o.d"
  "/root/repo/src/query/reference.cc" "src/query/CMakeFiles/ndq_query.dir/reference.cc.o" "gcc" "src/query/CMakeFiles/ndq_query.dir/reference.cc.o.d"
  "/root/repo/src/query/rewrite.cc" "src/query/CMakeFiles/ndq_query.dir/rewrite.cc.o" "gcc" "src/query/CMakeFiles/ndq_query.dir/rewrite.cc.o.d"
  "/root/repo/src/query/validate.cc" "src/query/CMakeFiles/ndq_query.dir/validate.cc.o" "gcc" "src/query/CMakeFiles/ndq_query.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ndq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/ndq_filter.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
