# Empty dependencies file for ndq_query.
# This may be replaced when dependencies are built.
