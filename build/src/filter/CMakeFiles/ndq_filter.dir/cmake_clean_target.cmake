file(REMOVE_RECURSE
  "libndq_filter.a"
)
