# Empty dependencies file for ndq_filter.
# This may be replaced when dependencies are built.
