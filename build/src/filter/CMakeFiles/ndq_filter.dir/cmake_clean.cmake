file(REMOVE_RECURSE
  "CMakeFiles/ndq_filter.dir/atomic_filter.cc.o"
  "CMakeFiles/ndq_filter.dir/atomic_filter.cc.o.d"
  "CMakeFiles/ndq_filter.dir/ldap_filter.cc.o"
  "CMakeFiles/ndq_filter.dir/ldap_filter.cc.o.d"
  "libndq_filter.a"
  "libndq_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndq_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
