file(REMOVE_RECURSE
  "CMakeFiles/ndq_gen.dir/dif_gen.cc.o"
  "CMakeFiles/ndq_gen.dir/dif_gen.cc.o.d"
  "CMakeFiles/ndq_gen.dir/paper_data.cc.o"
  "CMakeFiles/ndq_gen.dir/paper_data.cc.o.d"
  "CMakeFiles/ndq_gen.dir/random_forest.cc.o"
  "CMakeFiles/ndq_gen.dir/random_forest.cc.o.d"
  "CMakeFiles/ndq_gen.dir/random_query.cc.o"
  "CMakeFiles/ndq_gen.dir/random_query.cc.o.d"
  "libndq_gen.a"
  "libndq_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndq_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
