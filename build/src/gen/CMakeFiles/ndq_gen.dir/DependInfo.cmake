
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/dif_gen.cc" "src/gen/CMakeFiles/ndq_gen.dir/dif_gen.cc.o" "gcc" "src/gen/CMakeFiles/ndq_gen.dir/dif_gen.cc.o.d"
  "/root/repo/src/gen/paper_data.cc" "src/gen/CMakeFiles/ndq_gen.dir/paper_data.cc.o" "gcc" "src/gen/CMakeFiles/ndq_gen.dir/paper_data.cc.o.d"
  "/root/repo/src/gen/random_forest.cc" "src/gen/CMakeFiles/ndq_gen.dir/random_forest.cc.o" "gcc" "src/gen/CMakeFiles/ndq_gen.dir/random_forest.cc.o.d"
  "/root/repo/src/gen/random_query.cc" "src/gen/CMakeFiles/ndq_gen.dir/random_query.cc.o" "gcc" "src/gen/CMakeFiles/ndq_gen.dir/random_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ndq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/ndq_query.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/ndq_filter.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
