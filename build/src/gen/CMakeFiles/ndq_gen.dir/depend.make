# Empty dependencies file for ndq_gen.
# This may be replaced when dependencies are built.
