file(REMOVE_RECURSE
  "libndq_gen.a"
)
