file(REMOVE_RECURSE
  "libndq_store.a"
)
