
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/directory_store.cc" "src/store/CMakeFiles/ndq_store.dir/directory_store.cc.o" "gcc" "src/store/CMakeFiles/ndq_store.dir/directory_store.cc.o.d"
  "/root/repo/src/store/entry_store.cc" "src/store/CMakeFiles/ndq_store.dir/entry_store.cc.o" "gcc" "src/store/CMakeFiles/ndq_store.dir/entry_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ndq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ndq_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
