file(REMOVE_RECURSE
  "CMakeFiles/ndq_store.dir/directory_store.cc.o"
  "CMakeFiles/ndq_store.dir/directory_store.cc.o.d"
  "CMakeFiles/ndq_store.dir/entry_store.cc.o"
  "CMakeFiles/ndq_store.dir/entry_store.cc.o.d"
  "libndq_store.a"
  "libndq_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndq_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
