# Empty dependencies file for ndq_store.
# This may be replaced when dependencies are built.
