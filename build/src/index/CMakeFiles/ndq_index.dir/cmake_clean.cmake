file(REMOVE_RECURSE
  "CMakeFiles/ndq_index.dir/attr_index.cc.o"
  "CMakeFiles/ndq_index.dir/attr_index.cc.o.d"
  "CMakeFiles/ndq_index.dir/btree.cc.o"
  "CMakeFiles/ndq_index.dir/btree.cc.o.d"
  "CMakeFiles/ndq_index.dir/string_index.cc.o"
  "CMakeFiles/ndq_index.dir/string_index.cc.o.d"
  "libndq_index.a"
  "libndq_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndq_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
