# Empty dependencies file for ndq_index.
# This may be replaced when dependencies are built.
