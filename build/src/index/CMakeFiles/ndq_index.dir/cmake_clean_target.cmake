file(REMOVE_RECURSE
  "libndq_index.a"
)
