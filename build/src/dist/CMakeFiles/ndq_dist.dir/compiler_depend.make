# Empty compiler generated dependencies file for ndq_dist.
# This may be replaced when dependencies are built.
