file(REMOVE_RECURSE
  "CMakeFiles/ndq_dist.dir/distributed.cc.o"
  "CMakeFiles/ndq_dist.dir/distributed.cc.o.d"
  "libndq_dist.a"
  "libndq_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndq_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
