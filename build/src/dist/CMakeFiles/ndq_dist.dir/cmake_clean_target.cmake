file(REMOVE_RECURSE
  "libndq_dist.a"
)
