file(REMOVE_RECURSE
  "CMakeFiles/ndq_apps.dir/qos.cc.o"
  "CMakeFiles/ndq_apps.dir/qos.cc.o.d"
  "CMakeFiles/ndq_apps.dir/tops.cc.o"
  "CMakeFiles/ndq_apps.dir/tops.cc.o.d"
  "libndq_apps.a"
  "libndq_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndq_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
