# Empty dependencies file for ndq_apps.
# This may be replaced when dependencies are built.
