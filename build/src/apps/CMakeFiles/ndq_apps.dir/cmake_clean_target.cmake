file(REMOVE_RECURSE
  "libndq_apps.a"
)
