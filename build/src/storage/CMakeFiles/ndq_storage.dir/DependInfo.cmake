
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/ndq_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/ndq_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk.cc" "src/storage/CMakeFiles/ndq_storage.dir/disk.cc.o" "gcc" "src/storage/CMakeFiles/ndq_storage.dir/disk.cc.o.d"
  "/root/repo/src/storage/external_sort.cc" "src/storage/CMakeFiles/ndq_storage.dir/external_sort.cc.o" "gcc" "src/storage/CMakeFiles/ndq_storage.dir/external_sort.cc.o.d"
  "/root/repo/src/storage/run.cc" "src/storage/CMakeFiles/ndq_storage.dir/run.cc.o" "gcc" "src/storage/CMakeFiles/ndq_storage.dir/run.cc.o.d"
  "/root/repo/src/storage/serde.cc" "src/storage/CMakeFiles/ndq_storage.dir/serde.cc.o" "gcc" "src/storage/CMakeFiles/ndq_storage.dir/serde.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ndq_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
