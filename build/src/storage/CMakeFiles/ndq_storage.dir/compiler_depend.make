# Empty compiler generated dependencies file for ndq_storage.
# This may be replaced when dependencies are built.
