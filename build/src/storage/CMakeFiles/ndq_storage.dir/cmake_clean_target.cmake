file(REMOVE_RECURSE
  "libndq_storage.a"
)
