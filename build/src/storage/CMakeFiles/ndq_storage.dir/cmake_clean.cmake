file(REMOVE_RECURSE
  "CMakeFiles/ndq_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/ndq_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/ndq_storage.dir/disk.cc.o"
  "CMakeFiles/ndq_storage.dir/disk.cc.o.d"
  "CMakeFiles/ndq_storage.dir/external_sort.cc.o"
  "CMakeFiles/ndq_storage.dir/external_sort.cc.o.d"
  "CMakeFiles/ndq_storage.dir/run.cc.o"
  "CMakeFiles/ndq_storage.dir/run.cc.o.d"
  "CMakeFiles/ndq_storage.dir/serde.cc.o"
  "CMakeFiles/ndq_storage.dir/serde.cc.o.d"
  "libndq_storage.a"
  "libndq_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndq_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
