# Empty compiler generated dependencies file for ndq_exec.
# This may be replaced when dependencies are built.
