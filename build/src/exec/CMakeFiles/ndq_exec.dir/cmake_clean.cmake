file(REMOVE_RECURSE
  "CMakeFiles/ndq_exec.dir/atomic.cc.o"
  "CMakeFiles/ndq_exec.dir/atomic.cc.o.d"
  "CMakeFiles/ndq_exec.dir/boolean.cc.o"
  "CMakeFiles/ndq_exec.dir/boolean.cc.o.d"
  "CMakeFiles/ndq_exec.dir/common.cc.o"
  "CMakeFiles/ndq_exec.dir/common.cc.o.d"
  "CMakeFiles/ndq_exec.dir/cost.cc.o"
  "CMakeFiles/ndq_exec.dir/cost.cc.o.d"
  "CMakeFiles/ndq_exec.dir/embedded_ref.cc.o"
  "CMakeFiles/ndq_exec.dir/embedded_ref.cc.o.d"
  "CMakeFiles/ndq_exec.dir/evaluator.cc.o"
  "CMakeFiles/ndq_exec.dir/evaluator.cc.o.d"
  "CMakeFiles/ndq_exec.dir/hierarchy.cc.o"
  "CMakeFiles/ndq_exec.dir/hierarchy.cc.o.d"
  "CMakeFiles/ndq_exec.dir/naive.cc.o"
  "CMakeFiles/ndq_exec.dir/naive.cc.o.d"
  "libndq_exec.a"
  "libndq_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndq_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
