
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/atomic.cc" "src/exec/CMakeFiles/ndq_exec.dir/atomic.cc.o" "gcc" "src/exec/CMakeFiles/ndq_exec.dir/atomic.cc.o.d"
  "/root/repo/src/exec/boolean.cc" "src/exec/CMakeFiles/ndq_exec.dir/boolean.cc.o" "gcc" "src/exec/CMakeFiles/ndq_exec.dir/boolean.cc.o.d"
  "/root/repo/src/exec/common.cc" "src/exec/CMakeFiles/ndq_exec.dir/common.cc.o" "gcc" "src/exec/CMakeFiles/ndq_exec.dir/common.cc.o.d"
  "/root/repo/src/exec/cost.cc" "src/exec/CMakeFiles/ndq_exec.dir/cost.cc.o" "gcc" "src/exec/CMakeFiles/ndq_exec.dir/cost.cc.o.d"
  "/root/repo/src/exec/embedded_ref.cc" "src/exec/CMakeFiles/ndq_exec.dir/embedded_ref.cc.o" "gcc" "src/exec/CMakeFiles/ndq_exec.dir/embedded_ref.cc.o.d"
  "/root/repo/src/exec/evaluator.cc" "src/exec/CMakeFiles/ndq_exec.dir/evaluator.cc.o" "gcc" "src/exec/CMakeFiles/ndq_exec.dir/evaluator.cc.o.d"
  "/root/repo/src/exec/hierarchy.cc" "src/exec/CMakeFiles/ndq_exec.dir/hierarchy.cc.o" "gcc" "src/exec/CMakeFiles/ndq_exec.dir/hierarchy.cc.o.d"
  "/root/repo/src/exec/naive.cc" "src/exec/CMakeFiles/ndq_exec.dir/naive.cc.o" "gcc" "src/exec/CMakeFiles/ndq_exec.dir/naive.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ndq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ndq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/ndq_query.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/ndq_store.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/ndq_filter.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
