file(REMOVE_RECURSE
  "libndq_exec.a"
)
