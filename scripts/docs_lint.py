#!/usr/bin/env python3
"""Documentation link lint (stdlib only; run from the repo root or via CI).

Checks two invariants over the Markdown docs:

  1. Reachability: every file under docs/*.md is reachable from README.md
     by following relative Markdown links (a doc nobody links to is a doc
     nobody reads).
  2. Resolution: every relative link in every checked doc points at a file
     that exists (anchors are stripped; http(s)/mailto links are skipped).

Exit code 0 = clean, 1 = violations (each printed as file: message).
"""

import os
import re
import sys

# Matches inline links [text](target) — not images, not reference-style.
# Good enough for this repo's docs; deliberately ignores code fences by
# stripping them first.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
# Bare doc mentions like `docs/ARCHITECTURE.md` in prose or bullet lists
# count for reachability: the documentation map uses that style.
BARE_RE = re.compile(r"`((?:docs/)?[A-Za-z_][A-Za-z0-9_./-]*\.md)`")


def links_of(path):
    with open(path, encoding="utf-8") as f:
        text = FENCE_RE.sub("", f.read())
    targets = LINK_RE.findall(text) + BARE_RE.findall(text)
    out = []
    for t in targets:
        if t.startswith(("http://", "https://", "mailto:", "#")):
            continue
        out.append(t.split("#", 1)[0])
    return out


def main():
    root = os.getcwd()
    readme = os.path.join(root, "README.md")
    if not os.path.isfile(readme):
        print("docs_lint: run from the repo root (README.md not found)")
        return 1

    errors = []

    # Walk the link graph from README.md over Markdown files.
    seen = set()
    queue = [readme]
    while queue:
        path = queue.pop()
        rel = os.path.relpath(path, root)
        if path in seen:
            continue
        seen.add(path)
        for target in links_of(path):
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                errors.append(f"{rel}: broken link -> {target}")
            elif resolved.endswith(".md"):
                queue.append(resolved)

    # Every doc under docs/ must have been reached.
    docs_dir = os.path.join(root, "docs")
    for name in sorted(os.listdir(docs_dir)):
        if not name.endswith(".md"):
            continue
        path = os.path.join(docs_dir, name)
        if path not in seen:
            errors.append(
                f"docs/{name}: unreachable from README.md (add it to the "
                "documentation map)")

    for e in errors:
        print(f"docs_lint: {e}")
    if not errors:
        print(f"docs_lint: OK ({len(seen)} markdown files, all links resolve)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
