// LDAP filter expressions: boolean combinations of atomic filters.
//
// This is the filter language of the *baseline* (Sec. 4.2): "in LDAP, only
// atomic filters (but not queries) can be combined using the boolean
// operators and (&), or (|), not (!)". An LDAP query is a single base DN +
// scope + one LdapFilter; the L0-L3 languages instead combine whole
// queries. Syntax follows RFC 2254: (&(objectClass=QHP)(priority<=2)).

#ifndef NDQ_FILTER_LDAP_FILTER_H_
#define NDQ_FILTER_LDAP_FILTER_H_

#include <memory>
#include <string>
#include <vector>

#include "filter/atomic_filter.h"

namespace ndq {

class LdapFilter;
using LdapFilterPtr = std::shared_ptr<const LdapFilter>;

/// \brief A boolean tree over atomic filters.
class LdapFilter {
 public:
  enum class Op { kAtomic, kAnd, kOr, kNot };

  static LdapFilterPtr Atomic(AtomicFilter f);
  static LdapFilterPtr And(std::vector<LdapFilterPtr> children);
  static LdapFilterPtr Or(std::vector<LdapFilterPtr> children);
  static LdapFilterPtr Not(LdapFilterPtr child);

  /// Parses RFC 2254-style text, e.g. "(&(objectClass=QHP)(!(priority<=1)))".
  /// A bare atomic filter without parentheses is also accepted.
  static Result<LdapFilterPtr> Parse(std::string_view text);

  Op op() const { return op_; }
  const AtomicFilter& atomic() const { return atomic_; }
  const std::vector<LdapFilterPtr>& children() const { return children_; }

  bool Matches(const Entry& entry) const;

  std::string ToString() const;

 private:
  LdapFilter() = default;

  Op op_ = Op::kAtomic;
  AtomicFilter atomic_ = AtomicFilter::True();
  std::vector<LdapFilterPtr> children_;
};

}  // namespace ndq

#endif  // NDQ_FILTER_LDAP_FILTER_H_
