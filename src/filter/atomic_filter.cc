#include "filter/atomic_filter.h"

#include <algorithm>
#include <cctype>

#include "core/schema.h"

namespace ndq {

namespace {

// A string-equality rhs needs the quoted form when the bare rendering
// would re-parse as a different filter kind: integer literals ("5" would
// become int equality), '*' (presence/substring), or forms the filter
// grammar cannot represent bare (empty, edge spaces trimmed by Parse, a
// leading quote).
bool NeedsQuoting(const std::string& s) {
  if (s.empty()) return true;
  if (s.front() == ' ' || s.back() == ' ' || s.front() == '"') return true;
  if (s.find('*') != std::string::npos) return true;
  return ParseValueAs(TypeKind::kInt, s).ok();
}

std::string QuoteString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

AtomicFilter AtomicFilter::True() {
  AtomicFilter f;
  f.kind_ = Kind::kTrue;
  return f;
}

AtomicFilter AtomicFilter::Presence(std::string attr) {
  AtomicFilter f;
  f.kind_ = Kind::kPresence;
  f.attr_ = std::move(attr);
  return f;
}

AtomicFilter AtomicFilter::IntCompare(std::string attr, CompareOp op,
                                      int64_t rhs) {
  AtomicFilter f;
  f.kind_ = Kind::kIntCmp;
  f.attr_ = std::move(attr);
  f.op_ = op;
  f.int_rhs_ = rhs;
  return f;
}

AtomicFilter AtomicFilter::Equals(std::string attr, Value rhs) {
  AtomicFilter f;
  f.kind_ = Kind::kEquals;
  f.attr_ = std::move(attr);
  f.value_rhs_ = std::move(rhs);
  return f;
}

AtomicFilter AtomicFilter::Substring(std::string attr, std::string pattern) {
  AtomicFilter f;
  f.kind_ = Kind::kSubstring;
  f.attr_ = std::move(attr);
  f.pattern_ = pattern;
  // Split at '*'.
  std::string part;
  for (char c : pattern) {
    if (c == '*') {
      f.pattern_parts_.push_back(part);
      part.clear();
    } else {
      part += c;
    }
  }
  f.pattern_parts_.push_back(part);
  return f;
}

Result<AtomicFilter> AtomicFilter::Parse(std::string_view text) {
  // Find the operator: the first of <=, >=, !=, <, >, =.
  size_t pos = std::string_view::npos;
  CompareOp op = CompareOp::kEq;
  size_t op_len = 1;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '<' || c == '>') {
      pos = i;
      if (i + 1 < text.size() && text[i + 1] == '=') {
        op = (c == '<') ? CompareOp::kLe : CompareOp::kGe;
        op_len = 2;
      } else {
        op = (c == '<') ? CompareOp::kLt : CompareOp::kGt;
      }
      break;
    }
    if (c == '!' && i + 1 < text.size() && text[i + 1] == '=') {
      pos = i;
      op = CompareOp::kNe;
      op_len = 2;
      break;
    }
    if (c == '=') {
      pos = i;
      op = CompareOp::kEq;
      break;
    }
  }
  if (pos == std::string_view::npos) {
    return Status::InvalidArgument("atomic filter missing operator: " +
                                   std::string(text));
  }
  auto trim = [](std::string_view s) {
    size_t b = s.find_first_not_of(' ');
    if (b == std::string_view::npos) return std::string_view();
    size_t e = s.find_last_not_of(' ');
    return s.substr(b, e - b + 1);
  };
  std::string attr(trim(text.substr(0, pos)));
  std::string rhs(trim(text.substr(pos + op_len)));
  if (attr.empty()) {
    return Status::InvalidArgument("atomic filter missing attribute: " +
                                   std::string(text));
  }
  // Attribute names follow the DN attribute syntax (alphanumeric plus
  // '-', '_', '.', starting with a letter); anything else is a parse
  // error, not a never-matching filter.
  if (!std::isalpha(static_cast<unsigned char>(attr[0]))) {
    return Status::InvalidArgument("bad attribute name in filter: '" +
                                   attr + "'");
  }
  for (char c : attr) {
    unsigned char u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '-' && c != '_' && c != '.') {
      return Status::InvalidArgument("bad attribute name in filter: '" +
                                     attr + "'");
    }
  }

  if (op == CompareOp::kEq) {
    if (!rhs.empty() && rhs.front() == '"') {
      // Quoted string equality: attr="text", with \" and \\ escapes.
      // Always string-typed, regardless of what the text spells.
      std::string value;
      bool closed = false;
      size_t i = 1;
      for (; i < rhs.size(); ++i) {
        char c = rhs[i];
        if (c == '\\') {
          if (i + 1 >= rhs.size()) break;
          value += rhs[++i];
        } else if (c == '"') {
          closed = true;
          ++i;
          break;
        } else {
          value += c;
        }
      }
      if (!closed || i != rhs.size()) {
        return Status::InvalidArgument("malformed quoted value in filter: " +
                                       std::string(text));
      }
      return Equals(std::move(attr), Value::String(std::move(value)));
    }
    if (rhs == "*") {
      if (attr == kObjectClassAttr) return True();
      return Presence(std::move(attr));
    }
    if (rhs.find('*') != std::string::npos) {
      return Substring(std::move(attr), std::move(rhs));
    }
    // Integer literal -> int equality, otherwise string equality.
    Result<Value> as_int = ParseValueAs(TypeKind::kInt, rhs);
    if (as_int.ok()) return Equals(std::move(attr), as_int.TakeValue());
    return Equals(std::move(attr), Value::String(std::move(rhs)));
  }

  // Ordered / negated comparisons demand an integer rhs.
  NDQ_ASSIGN_OR_RETURN(Value v, ParseValueAs(TypeKind::kInt, rhs));
  return IntCompare(std::move(attr), op, v.AsInt());
}

bool WildcardMatch(const std::vector<std::string>& parts,
                   std::string_view text) {
  if (parts.empty()) return false;
  if (parts.size() == 1) return text == parts[0];
  // First part anchors at the start, last at the end, middles in order.
  const std::string& first = parts.front();
  const std::string& last = parts.back();
  if (text.size() < first.size() + last.size()) return false;
  if (text.substr(0, first.size()) != first) return false;
  if (text.substr(text.size() - last.size()) != last) return false;
  size_t pos = first.size();
  size_t limit = text.size() - last.size();
  for (size_t i = 1; i + 1 < parts.size(); ++i) {
    const std::string& mid = parts[i];
    if (mid.empty()) continue;
    size_t found = text.substr(0, limit).find(mid, pos);
    if (found == std::string_view::npos) return false;
    pos = found + mid.size();
  }
  return true;
}

bool AtomicFilter::MatchesValue(const Value& v) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kPresence:
      return true;  // any value of the attribute witnesses presence
    case Kind::kIntCmp: {
      if (!v.is_int()) return false;
      int64_t x = v.AsInt();
      switch (op_) {
        case CompareOp::kEq:
          return x == int_rhs_;
        case CompareOp::kNe:
          return x != int_rhs_;
        case CompareOp::kLt:
          return x < int_rhs_;
        case CompareOp::kLe:
          return x <= int_rhs_;
        case CompareOp::kGt:
          return x > int_rhs_;
        case CompareOp::kGe:
          return x >= int_rhs_;
      }
      return false;
    }
    case Kind::kEquals:
      if (value_rhs_.is_int()) {
        // The literal was numeric; also match its string spelling, since
        // attribute types are not known at parse time.
        return (v.is_int() && v.AsInt() == value_rhs_.AsInt()) ||
               (v.is_string() && v.AsString() == value_rhs_.ToString());
      }
      return (!v.is_int()) && v.AsString() == value_rhs_.AsString();
    case Kind::kSubstring:
      if (v.is_int()) return false;
      return WildcardMatch(pattern_parts_, v.AsString());
  }
  return false;
}

bool AtomicFilter::Matches(const Entry& entry) const {
  if (kind_ == Kind::kTrue) return true;
  const std::vector<Value>* vals = entry.Values(attr_);
  if (vals == nullptr) return false;
  if (kind_ == Kind::kPresence) return true;
  return std::any_of(vals->begin(), vals->end(),
                     [this](const Value& v) { return MatchesValue(v); });
}

std::string AtomicFilter::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "objectClass=*";
    case Kind::kPresence:
      return attr_ + "=*";
    case Kind::kIntCmp:
      return attr_ + CompareOpToString(op_) + std::to_string(int_rhs_);
    case Kind::kEquals:
      if (value_rhs_.is_string() && NeedsQuoting(value_rhs_.AsString())) {
        return attr_ + "=" + QuoteString(value_rhs_.AsString());
      }
      return attr_ + "=" + value_rhs_.ToString();
    case Kind::kSubstring:
      return attr_ + "=" + pattern_;
  }
  return "?";
}

bool AtomicFilter::operator==(const AtomicFilter& other) const {
  return kind_ == other.kind_ && attr_ == other.attr_ && op_ == other.op_ &&
         int_rhs_ == other.int_rhs_ && value_rhs_ == other.value_rhs_ &&
         pattern_ == other.pattern_;
}

}  // namespace ndq
