// Atomic filters (Sec. 4.1).
//
// An entry r satisfies an atomic filter F (written r |= F) iff at least one
// (attribute, value) pair of r satisfies it. The concrete filters cover the
// paper's examples for the base types: presence (telephoneNumber=*),
// integer comparison (SLARulePriority < 3), equality, and wildcard
// substring comparison on strings (commonName=*jag*).

#ifndef NDQ_FILTER_ATOMIC_FILTER_H_
#define NDQ_FILTER_ATOMIC_FILTER_H_

#include <string>
#include <vector>

#include "core/entry.h"
#include "core/status.h"

namespace ndq {

/// Comparison operators usable in atomic filters.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpToString(CompareOp op);

/// \brief One atomic filter.
class AtomicFilter {
 public:
  enum class Kind {
    kTrue,      ///< objectClass=* — satisfied by every entry.
    kPresence,  ///< a=*
    kIntCmp,    ///< a OP n, satisfied by an int value v with v OP n
    kEquals,    ///< a = value (typed equality; no wildcards)
    kSubstring, ///< a = pat with '*' wildcards, on string-ish values
  };

  /// Matches every entry (used for "objectClass=*" style selections).
  static AtomicFilter True();
  static AtomicFilter Presence(std::string attr);
  static AtomicFilter IntCompare(std::string attr, CompareOp op, int64_t rhs);
  static AtomicFilter Equals(std::string attr, Value rhs);
  /// `pattern` contains at least one '*'; matches string and dn values.
  static AtomicFilter Substring(std::string attr, std::string pattern);

  /// Parses the paper's textual forms:
  ///   "attr=*"        presence        "attr=value"   equality
  ///   "attr=*jag*"    substring       "attr<3" "attr<=3" ">" ">=" "!="
  /// Integer literals on the right of = yield int equality; anything else
  /// string equality. "objectClass=*" parses to True (matches everything,
  /// as every entry has an objectClass). A quoted rhs (attr="text", with
  /// \" and \\ escapes) is ALWAYS string equality — the form ToString
  /// emits when the bare rendering would re-parse as something else
  /// (attr="5" is string equality on "5", distinct from attr=5).
  static Result<AtomicFilter> Parse(std::string_view text);

  Kind kind() const { return kind_; }
  const std::string& attr() const { return attr_; }
  /// kIntCmp accessors.
  CompareOp cmp_op() const { return op_; }
  int64_t int_rhs() const { return int_rhs_; }
  /// kEquals accessor.
  const Value& equals_rhs() const { return value_rhs_; }
  /// kSubstring accessors.
  const std::string& pattern() const { return pattern_; }
  const std::vector<std::string>& pattern_parts() const {
    return pattern_parts_;
  }

  /// r |= F : some (attribute, value) pair of `entry` satisfies the filter.
  bool Matches(const Entry& entry) const;

  /// Whether one value (of attribute attr()) satisfies the filter.
  bool MatchesValue(const Value& v) const;

  /// Canonical textual form (parseable by Parse).
  std::string ToString() const;

  bool operator==(const AtomicFilter& other) const;

 private:
  AtomicFilter() = default;

  Kind kind_ = Kind::kTrue;
  std::string attr_;
  CompareOp op_ = CompareOp::kEq;
  int64_t int_rhs_ = 0;
  Value value_rhs_;
  // Substring pattern split at '*': [first, mid..., last]; empty strings
  // at the ends mean leading/trailing '*'.
  std::vector<std::string> pattern_parts_;
  std::string pattern_;
};

/// True iff `text` matches `pattern_parts` (as produced by splitting a
/// wildcard pattern at '*'). Exposed for the substring index.
bool WildcardMatch(const std::vector<std::string>& pattern_parts,
                   std::string_view text);

}  // namespace ndq

#endif  // NDQ_FILTER_ATOMIC_FILTER_H_
