#include "filter/ldap_filter.h"

#include <algorithm>

namespace ndq {

LdapFilterPtr LdapFilter::Atomic(AtomicFilter f) {
  auto node = std::shared_ptr<LdapFilter>(new LdapFilter());
  node->op_ = Op::kAtomic;
  node->atomic_ = std::move(f);
  return node;
}

LdapFilterPtr LdapFilter::And(std::vector<LdapFilterPtr> children) {
  auto node = std::shared_ptr<LdapFilter>(new LdapFilter());
  node->op_ = Op::kAnd;
  node->children_ = std::move(children);
  return node;
}

LdapFilterPtr LdapFilter::Or(std::vector<LdapFilterPtr> children) {
  auto node = std::shared_ptr<LdapFilter>(new LdapFilter());
  node->op_ = Op::kOr;
  node->children_ = std::move(children);
  return node;
}

LdapFilterPtr LdapFilter::Not(LdapFilterPtr child) {
  auto node = std::shared_ptr<LdapFilter>(new LdapFilter());
  node->op_ = Op::kNot;
  node->children_.push_back(std::move(child));
  return node;
}

namespace {

class FilterParser {
 public:
  explicit FilterParser(std::string_view text) : text_(text) {}

  Result<LdapFilterPtr> Parse() {
    SkipSpace();
    NDQ_ASSIGN_OR_RETURN(LdapFilterPtr f, ParseFilter());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters in filter: " +
                                     std::string(text_.substr(pos_)));
    }
    return f;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
  }

  bool Peek(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  Result<LdapFilterPtr> ParseFilter() {
    SkipSpace();
    if (!Peek('(')) {
      // Bare atomic filter: read to end.
      NDQ_ASSIGN_OR_RETURN(AtomicFilter a,
                           AtomicFilter::Parse(text_.substr(pos_)));
      pos_ = text_.size();
      return LdapFilter::Atomic(std::move(a));
    }
    ++pos_;  // consume '('
    SkipSpace();
    if (Peek('&') || Peek('|')) {
      char op = text_[pos_++];
      std::vector<LdapFilterPtr> children;
      SkipSpace();
      while (Peek('(')) {
        NDQ_ASSIGN_OR_RETURN(LdapFilterPtr child, ParseFilter());
        children.push_back(std::move(child));
        SkipSpace();
      }
      if (children.empty()) {
        return Status::InvalidArgument("boolean filter with no operands");
      }
      if (!Peek(')')) return Status::InvalidArgument("filter missing ')'");
      ++pos_;
      return op == '&' ? LdapFilter::And(std::move(children))
                       : LdapFilter::Or(std::move(children));
    }
    if (Peek('!')) {
      ++pos_;
      NDQ_ASSIGN_OR_RETURN(LdapFilterPtr child, ParseFilter());
      SkipSpace();
      if (!Peek(')')) return Status::InvalidArgument("filter missing ')'");
      ++pos_;
      return LdapFilter::Not(std::move(child));
    }
    // Atomic: read to matching ')'.
    size_t close = text_.find(')', pos_);
    if (close == std::string_view::npos) {
      return Status::InvalidArgument("filter missing ')'");
    }
    NDQ_ASSIGN_OR_RETURN(
        AtomicFilter a, AtomicFilter::Parse(text_.substr(pos_, close - pos_)));
    pos_ = close + 1;
    return LdapFilter::Atomic(std::move(a));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<LdapFilterPtr> LdapFilter::Parse(std::string_view text) {
  return FilterParser(text).Parse();
}

bool LdapFilter::Matches(const Entry& entry) const {
  switch (op_) {
    case Op::kAtomic:
      return atomic_.Matches(entry);
    case Op::kAnd:
      return std::all_of(children_.begin(), children_.end(),
                         [&](const LdapFilterPtr& c) {
                           return c->Matches(entry);
                         });
    case Op::kOr:
      return std::any_of(children_.begin(), children_.end(),
                         [&](const LdapFilterPtr& c) {
                           return c->Matches(entry);
                         });
    case Op::kNot:
      return !children_[0]->Matches(entry);
  }
  return false;
}

std::string LdapFilter::ToString() const {
  switch (op_) {
    case Op::kAtomic:
      return "(" + atomic_.ToString() + ")";
    case Op::kAnd:
    case Op::kOr: {
      std::string out = op_ == Op::kAnd ? "(&" : "(|";
      for (const LdapFilterPtr& c : children_) out += c->ToString();
      out += ')';
      return out;
    }
    case Op::kNot:
      return "(!" + children_[0]->ToString() + ")";
  }
  return "?";
}

}  // namespace ndq
