// The mutable directory store: a small LSM over EntryStore segments, safe
// for concurrent queries and (optionally) durable across crashes.
//
// TOPS subscriber policies "can be created and modified dynamically"
// (Sec. 2.2), so a directory server needs an update path. DirectoryStore
// keeps a sorted in-memory memtable of recent Put/Remove operations
// (removals as tombstones) over a stack of immutable sorted segments; the
// memtable flushes to a new segment when full, and Compact() merges all
// segments into one. Reads are a newest-wins merge across memtable and
// segments — still in HierKey order, so the evaluation engine runs over a
// DirectoryStore exactly as over one segment (both implement EntrySource).
//
// Concurrency (docs/WRITE_PATH.md): all state lives in an immutable
// StoreState published through a shared_ptr under a short-section mutex.
// Readers snapshot the pointer (PinSnapshot) and run lock-free against a
// consistent version; writers copy-on-write (or mutate in place when no
// reader holds the state) and publish atomically. Superseded segment
// pages are destroyed behind an EpochFramework horizon, only after every
// reader pinned before the compaction has drained. Flush/Compact serialize
// on a maintenance mutex and do their heavy building outside all locks, so
// queries never wait on segment construction.
//
// Durability: EnableDurability() attaches a write-ahead log (store/wal.h);
// every Put/Remove then commits to the log (checksummed, synced) before
// any in-memory effect, flushes seal + checkpoint the log, and Recover()
// rebuilds the exact acknowledged state after a crash.

#ifndef NDQ_STORE_DIRECTORY_STORE_H_
#define NDQ_STORE_DIRECTORY_STORE_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "core/ldif_update.h"
#include "store/entry_store.h"
#include "store/epoch.h"
#include "store/stats.h"

namespace ndq {

class Wal;

struct DirectoryStoreOptions {
  /// Memtable flush threshold (entries + tombstones).
  size_t memtable_limit = 1024;
  /// Validate entries against the schema on write.
  bool validate = true;
  /// Compact automatically when the segment stack reaches this depth.
  size_t max_segments = 8;
};

class DirectoryStore : public EntrySource, public UpdateTarget {
 public:
  DirectoryStore(Disk* disk, Schema schema,
                 DirectoryStoreOptions options = {});
  /// Waits for in-flight maintenance; every snapshot must already be
  /// released (snapshots hold the store's epoch framework).
  ~DirectoryStore() override;

  /// Attaches a write-ahead log to an EMPTY store on a fresh disk (the
  /// superblock claims page 0). Subsequent mutations are durable.
  Status EnableDurability();

  /// Constructs an empty durable store (EnableDurability included).
  static Result<std::unique_ptr<DirectoryStore>> CreateDurable(
      Disk* disk, Schema schema, DirectoryStoreOptions options = {});

  /// Rebuilds a durable store from the disk after a crash or restart:
  /// re-attaches the checkpointed segments, replays the log tail,
  /// rebuilds statistics, and checkpoints. The recovered state contains
  /// exactly the acknowledged mutations.
  static Result<std::unique_ptr<DirectoryStore>> Recover(
      Disk* disk, Schema schema, DirectoryStoreOptions options = {});

  /// Adds a new entry; fails with AlreadyExists if the dn is bound.
  Status Add(Entry entry);

  /// Adds or replaces. On any error (validation, I/O, log commit) the
  /// store is unchanged: no counter, statistic, or memtable effect
  /// survives a non-OK return.
  Status Put(Entry entry);

  /// Removes the entry; fails with NotFound if absent and with
  /// InvalidArgument if the entry has descendants (namespaces stay
  /// prefix-closed, as in LDAP). Atomic like Put.
  Status Remove(const Dn& dn);

  /// Point lookup (memtable-over-segments, newest wins).
  Result<std::optional<Entry>> Get(const Dn& dn) const;

  // UpdateTarget (drives core/ldif_update.h change streams).
  Status AddEntry(Entry entry) override { return Add(std::move(entry)); }
  Status DeleteEntry(const Dn& dn) override { return Remove(dn); }
  Result<std::optional<Entry>> GetEntry(const Dn& dn) override {
    return Get(dn);
  }
  Status ReplaceEntry(Entry entry) override { return Put(std::move(entry)); }

  /// Merged key-ordered scan (EntrySource) over a snapshot taken at call
  /// time; concurrent mutations do not affect an in-progress scan.
  Status ScanRange(std::string_view start_key, std::string_view end_key,
                   const std::function<Status(std::string_view record)>& fn)
      const override;

  uint64_t num_entries() const override;
  const IoStats* io_stats() const override {
    return disk_ == nullptr ? nullptr : &disk_->stats();
  }
  /// Maintained exactly across Put/Remove and refreshed from segment
  /// build-time statistics on compaction, so estimate quality does not
  /// drift under remove/re-add churn. The pointer is only stable while no
  /// concurrent mutation runs — concurrent callers must read through
  /// PinSnapshot()->stats().
  const StoreStats* stats() const override;

  /// Cost-model hooks: summed over segments (sparse indexes) plus the
  /// memtable span. Slight over-counts where versions shadow each other.
  uint64_t EstimateRangeRecords(std::string_view start_key,
                                std::string_view end_key) const override;
  uint64_t EstimateRangePages(std::string_view start_key,
                              std::string_view end_key) const override;

  /// An immutable point-in-time view holding an epoch pin: scans,
  /// estimates, and stats all observe one version while writers proceed.
  /// Must be released before the store is destroyed.
  std::shared_ptr<const EntrySource> PinSnapshot() const override;

  /// Bumped on every mutation, flush, and compaction.
  uint64_t version() const override;

  /// Writes the memtable out as a new segment. On failure the memtable
  /// contents stay readable (frozen) and the next flush retries.
  Status Flush();

  /// Merges everything into a single segment, dropping shadowed versions
  /// and tombstones, refreshes statistics, and retires the old segments
  /// behind the epoch horizon. When no reader holds a pin the old pages
  /// are destroyed before returning and the aggregated destroy Status is
  /// returned; otherwise destruction is deferred to the last reader's
  /// drain and failures land in maintenance_status().
  Status Compact();

  size_t num_segments() const;
  size_t memtable_size() const;
  const Schema& schema() const { return schema_; }

  /// Routes background maintenance (threshold-triggered flush/compact)
  /// through `executor` — e.g. Engine wires its thread pool dispatch.
  /// Without an executor, maintenance runs inline on the mutating thread
  /// (still after the triggering mutation has committed).
  void SetMaintenanceExecutor(
      std::function<void(std::function<void()>)> executor);

  /// First error of any background maintenance task (threshold flushes,
  /// deferred segment destruction). Sticky until cleared. Mutations keep
  /// succeeding into the memtable while maintenance is failing.
  Status maintenance_status() const;
  void ClearMaintenanceStatus();

  /// Blocks until no scheduled maintenance task is pending or running.
  void WaitForMaintenance();

  /// Frees every page the store owns (segments + log). Teardown hook for
  /// leak-checked tests; requires quiescence (no snapshots, no queries).
  Status DestroyAll();

  /// Observability: pages currently owned by the log (0 when not durable)
  /// and records appended to it.
  uint64_t wal_pages() const;
  uint64_t wal_records() const;

 private:
  struct StoreState;
  class Snapshot;
  class MergedCursor;

  std::shared_ptr<const StoreState> SnapshotState() const;
  /// Clone-if-shared and bump the version; call with mu_ held. The
  /// returned state is exclusively owned by this writer until published.
  StoreState* MutableStateLocked();

  Status PutImpl(Entry entry, bool must_not_exist);
  /// Flush with maint_mu_ held; `allow_compact` gates the
  /// max_segments-triggered compaction (off when called FROM compaction).
  Status FlushLocked(bool allow_compact);
  Status CompactLocked();
  void MaybeScheduleMaintenance();
  void RunMaintenance();
  void RecordMaintenanceError(const Status& s);

  static Status ScanState(const StoreState& state, std::string_view start_key,
                          std::string_view end_key,
                          const std::function<Status(std::string_view)>& fn);
  static Result<std::optional<Entry>> GetFromState(const StoreState& state,
                                                   const std::string& key);
  static Result<bool> StateHasDescendants(const StoreState& state,
                                          const std::string& key);
  static uint64_t EstimateStateRecords(const StoreState& state,
                                       std::string_view start_key,
                                       std::string_view end_key);
  static uint64_t EstimateStatePages(const StoreState& state,
                                     std::string_view start_key,
                                     std::string_view end_key);

  Disk* disk_;
  Schema schema_;
  DirectoryStoreOptions options_;

  mutable std::mutex mu_;  // guards state_, wal_, maintenance bookkeeping
  std::shared_ptr<const StoreState> state_;
  std::unique_ptr<Wal> wal_;
  Status maintenance_status_;
  std::function<void(std::function<void()>)> maintenance_executor_;
  bool maintenance_scheduled_ = false;
  int maintenance_inflight_ = 0;
  std::condition_variable maintenance_cv_;

  /// Serializes Flush/Compact so segment building happens outside mu_
  /// without two maintainers racing. Lock order: maint_mu_ before mu_.
  std::mutex maint_mu_;

  /// Readers pin; compaction retires superseded segment pages behind it.
  mutable EpochFramework epochs_;
};

}  // namespace ndq

#endif  // NDQ_STORE_DIRECTORY_STORE_H_
