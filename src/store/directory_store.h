// The mutable directory store: a small LSM over EntryStore segments.
//
// TOPS subscriber policies "can be created and modified dynamically"
// (Sec. 2.2), so a directory server needs an update path. DirectoryStore
// keeps a sorted in-memory memtable of recent Put/Remove operations
// (removals as tombstones) over a stack of immutable sorted segments; the
// memtable flushes to a new segment when full, and Compact() merges all
// segments into one. Reads are a newest-wins merge across memtable and
// segments — still in HierKey order, so the evaluation engine runs over a
// DirectoryStore exactly as over one segment (both implement EntrySource).

#ifndef NDQ_STORE_DIRECTORY_STORE_H_
#define NDQ_STORE_DIRECTORY_STORE_H_

#include <map>
#include <memory>

#include "core/ldif_update.h"
#include "store/entry_store.h"
#include "store/stats.h"

namespace ndq {

struct DirectoryStoreOptions {
  /// Memtable flush threshold (entries + tombstones).
  size_t memtable_limit = 1024;
  /// Validate entries against the schema on write.
  bool validate = true;
  /// Compact automatically when the segment stack reaches this depth.
  size_t max_segments = 8;
};

class DirectoryStore : public EntrySource, public UpdateTarget {
 public:
  DirectoryStore(Disk* disk, Schema schema,
                 DirectoryStoreOptions options = {});

  /// Adds a new entry; fails with AlreadyExists if the dn is bound.
  Status Add(Entry entry);

  /// Adds or replaces.
  Status Put(Entry entry);

  /// Removes the entry; fails with NotFound if absent and with
  /// InvalidArgument if the entry has descendants (namespaces stay
  /// prefix-closed, as in LDAP).
  Status Remove(const Dn& dn);

  /// Point lookup (memtable-over-segments, newest wins).
  Result<std::optional<Entry>> Get(const Dn& dn) const;

  // UpdateTarget (drives core/ldif_update.h change streams).
  Status AddEntry(Entry entry) override { return Add(std::move(entry)); }
  Status DeleteEntry(const Dn& dn) override { return Remove(dn); }
  Result<std::optional<Entry>> GetEntry(const Dn& dn) override {
    return Get(dn);
  }
  Status ReplaceEntry(Entry entry) override { return Put(std::move(entry)); }

  /// Merged key-ordered scan (EntrySource).
  Status ScanRange(std::string_view start_key, std::string_view end_key,
                   const std::function<Status(std::string_view record)>& fn)
      const override;

  uint64_t num_entries() const override { return live_entries_; }
  const IoStats* io_stats() const override {
    return disk_ == nullptr ? nullptr : &disk_->stats();
  }
  /// Maintained exactly across Put/Remove (segments keep their own
  /// build-time stats, but the merged truth lives here: newest wins).
  const StoreStats* stats() const override { return &stats_; }

  /// Cost-model hooks: summed over segments (sparse indexes) plus the
  /// memtable span. Slight over-counts where versions shadow each other.
  uint64_t EstimateRangeRecords(std::string_view start_key,
                                std::string_view end_key) const override;
  uint64_t EstimateRangePages(std::string_view start_key,
                              std::string_view end_key) const override;

  /// Writes the memtable out as a new segment.
  Status Flush();

  /// Merges everything into a single segment, dropping shadowed versions
  /// and tombstones.
  Status Compact();

  size_t num_segments() const { return segments_.size(); }
  size_t memtable_size() const { return memtable_.size(); }
  const Schema& schema() const { return schema_; }

 private:
  /// True iff any live entry lies strictly below `key`.
  Result<bool> HasDescendants(const std::string& key) const;

  Disk* disk_;
  Schema schema_;
  DirectoryStoreOptions options_;
  // Key -> serialized entry, or empty string = tombstone.
  std::map<std::string, std::string> memtable_;
  std::vector<std::unique_ptr<EntryStore>> segments_;  // oldest first
  uint64_t live_entries_ = 0;
  StoreStats stats_;
};

}  // namespace ndq

#endif  // NDQ_STORE_DIRECTORY_STORE_H_
