// Epoch-based reclamation for snapshot readers (docs/WRITE_PATH.md).
//
// DirectoryStore publishes immutable copy-on-write state; a reader pins an
// epoch for the duration of its scan and the writer retires superseded
// resources (segment pages) behind the epoch horizon: a retirement runs
// only once every guard pinned before it was queued has been released.
// Guards are taken once per query / store operation, so a plain
// mutex-protected pin table is cheap enough and keeps the invariants easy
// to audit (compare the atomic global-epoch scheme in LineairDB-style
// engines, which trades auditability for per-transaction pin throughput we
// don't need).

#ifndef NDQ_STORE_EPOCH_H_
#define NDQ_STORE_EPOCH_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

namespace ndq {

/// \brief Deferred reclamation: readers pin, writers retire.
class EpochFramework {
 public:
  EpochFramework() = default;
  EpochFramework(const EpochFramework&) = delete;
  EpochFramework& operator=(const EpochFramework&) = delete;
  /// Destruction runs every pending retirement (no guards may be live).
  ~EpochFramework();

  /// \brief RAII pin: the epoch taken at construction stays protected
  /// until destruction. Movable, not copyable; unpinning may run
  /// newly-unblocked retirements on this thread.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept;
    Guard& operator=(Guard&& other) noexcept;
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard();

    bool pinned() const { return framework_ != nullptr; }
    void Release();

   private:
    friend class EpochFramework;
    Guard(EpochFramework* framework, uint64_t epoch)
        : framework_(framework), epoch_(epoch) {}
    EpochFramework* framework_ = nullptr;
    uint64_t epoch_ = 0;
  };

  /// Pins the current epoch.
  Guard Pin();

  /// Queues `fn` to run once every currently-pinned guard has released.
  /// Returns true if no guard was pinned and `fn` ran inline (on this
  /// thread, before returning); false if it was deferred to the release
  /// of the last blocking guard (and will run on that reader's thread).
  bool Retire(std::function<void()> fn);

  /// Blocks until all currently-pinned guards release, then runs every
  /// pending retirement. Call from quiescent teardown paths only.
  void DrainAndReclaim();

  uint64_t pending_retirements() const;
  uint64_t active_pins() const;

 private:
  struct Retirement {
    uint64_t epoch;  // runs when no pin with pin-epoch <= this remains
    std::function<void()> fn;
  };

  void Unpin(uint64_t epoch);
  // Moves runnable retirements out; call with mu_ held.
  std::vector<std::function<void()>> CollectRunnableLocked();

  mutable std::mutex mu_;
  std::condition_variable drained_;
  uint64_t global_epoch_ = 0;
  std::map<uint64_t, uint64_t> pins_;  // epoch -> live guard count
  std::vector<Retirement> retired_;
};

}  // namespace ndq

#endif  // NDQ_STORE_EPOCH_H_
