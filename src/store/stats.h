// Cardinality statistics for cost-based optimization (docs/OPTIMIZER.md).
//
// A StoreStats holds two sketches over a directory instance:
//
//  * Per-attribute value histograms: for every attribute, the number of
//    entries carrying it plus most-common-value counts for int and
//    string/dn values (capped maps with an "other" overflow bucket), so
//    EstimateFilterMatches can bound how many entries an atomic filter
//    selects. Every estimate is an UPPER BOUND on the true count — an
//    estimate of 0 proves the filter matches nothing, which the optimizer
//    exploits to short-circuit set difference and prune union operands.
//
//  * A subtree-size sketch: exact {self, direct-children, subtree-size}
//    entry counts per hierarchy node, depth-capped and node-capped. All
//    *tracked* nodes stay exact under adds and removes (an entry deeper
//    than the cap still updates its tracked ancestors); untracked nodes
//    report "unknown" (nullptr). While the sketch is complete() — the
//    node cap was never hit — an absent node at depth <= kMaxSketchDepth
//    proves its subtree holds no entries.
//
// EntryStore builds one at segment-build time (skipping tombstones);
// DirectoryStore maintains one incrementally in Put/Remove. The cost
// model (exec/cost.h) and planner (query/optimize.h) consume them through
// EntrySource::stats().

#ifndef NDQ_STORE_STATS_H_
#define NDQ_STORE_STATS_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/entry.h"
#include "core/status.h"
#include "filter/atomic_filter.h"
#include "filter/ldap_filter.h"

namespace ndq {

/// Exact entry counts for one hierarchy node (HierKey prefix).
struct SubtreeStats {
  uint64_t self = 0;             ///< entries exactly at this key (0 or 1)
  uint64_t direct_children = 0;  ///< entries whose parent is this key
  uint64_t subtree_size = 0;     ///< entries at or below this key
};

/// \brief Cardinality statistics: attribute histograms + subtree sketch.
class StoreStats {
 public:
  /// Most-common-value cap per attribute per value domain. Values beyond
  /// the cap accumulate in an "other" bucket that every estimate includes,
  /// keeping estimates upper bounds regardless of insertion order.
  static constexpr size_t kMaxTrackedValues = 64;
  /// Hierarchy nodes deeper than this are not tracked (their ancestors
  /// within the cap still are, exactly).
  static constexpr size_t kMaxSketchDepth = 8;
  /// Total tracked-node cap; reaching it stops creating nodes (existing
  /// nodes stay exact) and clears complete().
  static constexpr size_t kMaxSketchNodes = size_t{1} << 17;

  /// Folds one entry in / out. Remove must only be called with an entry
  /// previously added (counts saturate at zero defensively).
  void AddEntry(const Entry& entry);
  void RemoveEntry(const Entry& entry);

  /// Folds a serialized entry record in; tombstone records (see
  /// IsTombstoneRecord in store/entry_store.h) are skipped.
  Status AddRecord(std::string_view record);

  /// Entries folded in (excluding tombstones).
  uint64_t num_entries() const { return num_entries_; }

  /// Upper bound on the number of entries satisfying `filter`. 0 proves
  /// no entry matches.
  uint64_t EstimateFilterMatches(const AtomicFilter& filter) const;

  /// Upper bound for a boolean LDAP filter: min over `&` children, sum
  /// over `|` children (clamped to num_entries()), no information for
  /// `!` (returns num_entries()). 0 still proves no entry matches.
  uint64_t EstimateLdapMatches(const LdapFilter& filter) const;

  /// The tracked node for `hier_key`, or nullptr if unknown (deeper than
  /// the depth cap, or evicted by the node cap).
  const SubtreeStats* Subtree(std::string_view hier_key) const;

  /// True while every hierarchy node at depth <= kMaxSketchDepth is
  /// tracked, making Subtree(k) == nullptr a proof of emptiness for such
  /// keys.
  bool complete() const { return !sketch_overflow_; }

  size_t num_sketch_nodes() const { return sketch_.size(); }
  size_t num_attributes() const { return attrs_.size(); }

  /// One-line debug summary.
  std::string ToString() const;

 private:
  struct AttrStats {
    uint64_t entries = 0;     // entries with the attribute present
    uint64_t int_values = 0;  // total int values (== sum(int_mcv)+int_other)
    uint64_t str_values = 0;  // total string/dn values
    std::map<int64_t, uint64_t> int_mcv;
    uint64_t int_other = 0;
    std::map<std::string, uint64_t> str_mcv;
    uint64_t str_other = 0;
  };

  void UpdateEntry(const Entry& entry, bool add);
  void UpdateSketch(std::string_view key, bool add);
  const AttrStats* FindAttr(const std::string& attr) const;

  std::map<std::string, AttrStats> attrs_;
  std::map<std::string, SubtreeStats, std::less<>> sketch_;
  uint64_t num_entries_ = 0;
  bool sketch_overflow_ = false;
};

}  // namespace ndq

#endif  // NDQ_STORE_STATS_H_
