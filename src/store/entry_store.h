// The disk-resident directory entry table.
//
// Entries are serialized in HierKey (reverse-DN) order into pages of the
// simulated disk, with an in-memory sparse index (first key of each page),
// like one SSTable/segment of an LSM tree. Because the table is in the
// paper's global sort order, every atomic query scope is a key *range*:
//   base  -> the single key,
//   one   -> the subtree range, filtered to depth+1 (children),
//   sub   -> the subtree range,
// so atomic evaluation costs O(range pages) reads — the "atomic queries
// can be evaluated efficiently" assumption of Sec. 4.1.
//
// The mutable store (memtable + segments + compaction) lives in
// store/directory_store.h; EntryStore is the immutable segment format.

#ifndef NDQ_STORE_ENTRY_STORE_H_
#define NDQ_STORE_ENTRY_STORE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/entry.h"
#include "core/instance.h"
#include "storage/disk.h"
#include "storage/run.h"

namespace ndq {

class StoreStats;

// Tombstone wire format (shared by DirectoryStore and the stats builder):
// the key followed by a marker varint no serialized entry can produce
// (attribute counts never reach 2^62).
std::string MakeTombstoneRecord(std::string_view key);
bool IsTombstoneRecord(std::string_view record);

/// \brief Anything that can stream serialized entries in key order.
///
/// Implemented by the immutable EntryStore segment and by the mutable
/// DirectoryStore (memtable + segments); the evaluation engine's atomic
/// operator works against this interface.
class EntrySource {
 public:
  virtual ~EntrySource() = default;

  /// Calls `fn` for every record with start_key <= key < end_key (end_key
  /// empty = unbounded), in key order.
  virtual Status ScanRange(
      std::string_view start_key, std::string_view end_key,
      const std::function<Status(std::string_view record)>& fn) const = 0;

  virtual uint64_t num_entries() const = 0;

  /// The I/O counters of the disk this source scans, or nullptr for
  /// purely in-memory sources. Execution tracing (exec/trace.h) snapshots
  /// these around atomic leaves so store-side page reads are attributed
  /// to the leaf that caused them.
  virtual const IoStats* io_stats() const { return nullptr; }

  /// Cost-model hooks (no I/O). The defaults are deliberately coarse —
  /// the whole store; implementations refine them from their indexes.
  virtual uint64_t EstimateRangeRecords(std::string_view start_key,
                                        std::string_view end_key) const {
    (void)start_key;
    (void)end_key;
    return num_entries();
  }
  virtual uint64_t EstimateRangePages(std::string_view start_key,
                                      std::string_view end_key) const {
    // Assume ~40 entries per page when nothing better is known.
    return EstimateRangeRecords(start_key, end_key) / 40 + 1;
  }

  /// Cardinality statistics (store/stats.h) for the cost model and the
  /// optimizer, or nullptr when the source keeps none (e.g. a segment
  /// re-attached from a manifest). Estimates derived from the result are
  /// upper bounds; 0 proves emptiness.
  virtual const StoreStats* stats() const { return nullptr; }

  /// A consistent point-in-time snapshot of this source, or nullptr when
  /// the source is immutable and can be read directly (the default).
  /// Mutable sources (DirectoryStore) return an EntrySource whose scans,
  /// estimates, and stats all observe one version regardless of
  /// concurrent writers; the snapshot pins an epoch so the pages it
  /// covers outlive concurrent compaction (store/epoch.h). Evaluators pin
  /// once per query (docs/WRITE_PATH.md).
  virtual std::shared_ptr<const EntrySource> PinSnapshot() const {
    return nullptr;
  }

  /// Monotonic mutation version: bumped on every state change of a
  /// mutable source; 0 forever on immutable sources. Snapshots report the
  /// version they captured. Cache keys (exec/operand_cache.h users)
  /// include it so results computed against an old snapshot can never be
  /// served after the store has moved on.
  virtual uint64_t version() const { return 0; }
};

/// \brief One immutable sorted segment of serialized entries.
class EntryStore : public EntrySource {
 public:
  EntryStore() = default;

  /// Serializes all entries of `instance` (already in key order).
  static Result<EntryStore> BulkLoad(Disk* disk,
                                     const DirectoryInstance& instance);

  /// Builds a segment from serialized entry records, which must arrive in
  /// strictly increasing key order.
  static Result<EntryStore> FromSortedRecords(
      Disk* disk, const std::vector<std::string>& records);

  /// Streaming variant: `next` yields records in strictly increasing key
  /// order and returns false at end.
  static Result<EntryStore> FromStream(
      Disk* disk, const std::function<Result<bool>(std::string*)>& next);

  /// Calls `fn` for every record with start_key <= key < end_key (end_key
  /// empty = unbounded), in key order. Only pages overlapping the range
  /// are read.
  Status ScanRange(std::string_view start_key, std::string_view end_key,
                   const std::function<Status(std::string_view record)>& fn)
      const override;

  /// Point lookup.
  Result<std::optional<Entry>> Get(std::string_view hier_key) const;

  /// Estimated number of pages a ScanRange(start, end) would read, from
  /// the in-memory sparse index alone (no I/O). Exact up to records that
  /// span page boundaries. Used by the cost model (exec/cost.h).
  uint64_t EstimateRangePages(std::string_view start_key,
                              std::string_view end_key) const override;

  /// Estimated number of records in [start_key, end_key), interpolated
  /// from per-page record ordinals (no I/O).
  uint64_t EstimateRangeRecords(std::string_view start_key,
                                std::string_view end_key) const override;

  /// \brief Pull-style cursor over a key range (used by the LSM merge).
  class Cursor {
   public:
    Cursor() = default;
    /// Positions before the first record with key >= start_key.
    Cursor(const EntryStore* store, std::string_view start_key);

    /// Advances; returns false at end-of-store. After true, record()/key()
    /// are valid.
    Result<bool> Next();
    const std::string& record() const { return record_; }
    std::string_view key() const { return key_; }

   private:
    const EntryStore* store_ = nullptr;
    std::unique_ptr<RunReader> reader_;
    std::string start_key_;
    std::string record_;
    std::string_view key_;
    bool primed_ = false;
  };

  uint64_t num_entries() const override { return run_.num_records; }
  const IoStats* io_stats() const override {
    return disk_ == nullptr ? nullptr : &disk_->stats();
  }
  /// Built at segment-build time (BulkLoad/FromStream/...); nullptr for
  /// segments re-attached via FromManifest. Shared so EntryStore stays
  /// copyable.
  const StoreStats* stats() const override { return stats_.get(); }
  uint64_t num_pages() const { return run_.pages.size(); }
  const Run& run() const { return run_; }
  Disk* disk() const { return disk_; }

  /// Frees the segment's pages.
  Status Destroy();

  /// Serializes the segment's metadata (page list + sparse index). Pair
  /// with SimDisk::SaveToFile to persist a store across processes.
  std::string SerializeManifest() const;

  /// Re-attaches a segment to `disk` from a manifest produced by
  /// SerializeManifest (the disk must hold the corresponding image).
  static Result<EntryStore> FromManifest(Disk* disk,
                                         std::string_view manifest);

 private:
  Disk* disk_ = nullptr;
  Run run_;
  std::shared_ptr<const StoreStats> stats_;
  // Sparse index: first_keys_[i] is the key of the first record *starting*
  // in page i of run_.pages (records may span pages; a page with no record
  // start repeats the previous key).
  std::vector<std::string> first_keys_;
  // Record index: for each page, the byte offset within the page of the
  // first record starting there (page_size if none).
  std::vector<uint32_t> first_offsets_;
  // Ordinal of the first record starting in each page.
  std::vector<uint64_t> first_record_index_;

  Status BuildFrom(Disk* disk,
                   const std::function<Result<bool>(std::string*)>& next);
  Status BuildFromImpl(Disk* disk,
                       const std::function<Result<bool>(std::string*)>& next);

  /// Returns a reader positioned at the first record that *starts* in the
  /// page containing start_key's position (records before start_key must
  /// be skipped by the caller); nullptr if the store is empty.
  Result<std::unique_ptr<RunReader>> SeekReader(
      std::string_view start_key) const;
};

}  // namespace ndq

#endif  // NDQ_STORE_ENTRY_STORE_H_
