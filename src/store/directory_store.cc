#include "store/directory_store.h"

#include <iterator>

#include "storage/serde.h"

namespace ndq {

namespace {

// Tombstone wire format shared with the stats builder: see
// MakeTombstoneRecord / IsTombstoneRecord in store/entry_store.h.

// Newest-wins pull merge across the memtable and all segments.
class MergedCursor {
 public:
  MergedCursor(const std::map<std::string, std::string>& memtable,
               const std::vector<std::unique_ptr<EntryStore>>& segments,
               std::string_view start_key)
      : mem_it_(memtable.lower_bound(std::string(start_key))),
        mem_end_(memtable.end()) {
    // Higher priority first: memtable, then segments newest to oldest.
    for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
      cursors_.emplace_back(it->get(), start_key);
      primed_.push_back(false);
      done_.push_back(false);
    }
  }

  /// Advances to the next live (non-tombstone, non-shadowed) record.
  /// Returns false at end. record() valid after true.
  Result<bool> Next(bool include_tombstones = false) {
    while (true) {
      NDQ_ASSIGN_OR_RETURN(bool any, Step());
      if (!any) return false;
      if (!include_tombstones && IsTombstoneRecord(record_)) continue;
      return true;
    }
  }

  const std::string& record() const { return record_; }
  std::string_view key() const { return key_; }

 private:
  // One newest-wins step over the raw version streams.
  Result<bool> Step() {
    for (size_t i = 0; i < cursors_.size(); ++i) {
      if (!primed_[i]) {
        NDQ_ASSIGN_OR_RETURN(bool more, cursors_[i].Next());
        done_[i] = !more;
        primed_[i] = true;
      }
    }
    // Minimum key across sources.
    const std::string* min_key = nullptr;
    std::string mem_key;
    if (mem_it_ != mem_end_) {
      mem_key = mem_it_->first;
      min_key = &mem_key;
    }
    std::string cursor_key;
    for (size_t i = 0; i < cursors_.size(); ++i) {
      if (done_[i]) continue;
      if (min_key == nullptr || std::string_view(cursors_[i].key()) <
                                    std::string_view(*min_key)) {
        cursor_key = std::string(cursors_[i].key());
        min_key = &cursor_key;
      }
    }
    if (min_key == nullptr) return false;
    std::string key = *min_key;

    // Pick the highest-priority version; advance every source at key.
    bool picked = false;
    if (mem_it_ != mem_end_ && mem_it_->first == key) {
      record_ = mem_it_->second.empty() ? MakeTombstoneRecord(key)
                                        : mem_it_->second;
      picked = true;
      ++mem_it_;
    }
    for (size_t i = 0; i < cursors_.size(); ++i) {
      if (done_[i] || cursors_[i].key() != key) continue;
      if (!picked) {
        record_ = cursors_[i].record();
        picked = true;
      }
      NDQ_ASSIGN_OR_RETURN(bool more, cursors_[i].Next());
      done_[i] = !more;
    }
    key_ = key;
    return picked;
  }

  std::map<std::string, std::string>::const_iterator mem_it_, mem_end_;
  std::vector<EntryStore::Cursor> cursors_;
  std::vector<bool> primed_, done_;
  std::string record_;
  std::string key_;
};

}  // namespace

DirectoryStore::DirectoryStore(Disk* disk, Schema schema,
                               DirectoryStoreOptions options)
    : disk_(disk), schema_(std::move(schema)), options_(options) {}

Result<std::optional<Entry>> DirectoryStore::Get(const Dn& dn) const {
  const std::string& key = dn.HierKey();
  auto mit = memtable_.find(key);
  if (mit != memtable_.end()) {
    if (mit->second.empty()) return std::optional<Entry>();  // tombstone
    NDQ_ASSIGN_OR_RETURN(Entry e, DeserializeEntry(mit->second));
    return std::optional<Entry>(std::move(e));
  }
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    std::string end = key + '\x01';
    std::optional<Entry> found;
    bool tombstoned = false;
    Status s = (*it)->ScanRange(
        key, end, [&](std::string_view record) -> Status {
          if (IsTombstoneRecord(record)) {
            tombstoned = true;
            return Status::OK();
          }
          NDQ_ASSIGN_OR_RETURN(Entry e, DeserializeEntry(record));
          found = std::move(e);
          return Status::OK();
        });
    NDQ_RETURN_IF_ERROR(s);
    if (tombstoned) return std::optional<Entry>();
    if (found.has_value()) return found;
  }
  return std::optional<Entry>();
}

Status DirectoryStore::Add(Entry entry) {
  NDQ_ASSIGN_OR_RETURN(std::optional<Entry> existing, Get(entry.dn()));
  if (existing.has_value()) {
    return Status::AlreadyExists("dn already bound: " +
                                 entry.dn().ToString());
  }
  return Put(std::move(entry));
}

Status DirectoryStore::Put(Entry entry) {
  if (entry.dn().IsNull()) {
    return Status::InvalidArgument("cannot put entry with null dn");
  }
  if (options_.validate) NDQ_RETURN_IF_ERROR(schema_.ValidateEntry(entry));
  NDQ_ASSIGN_OR_RETURN(std::optional<Entry> existing, Get(entry.dn()));
  std::string record;
  SerializeEntry(entry, &record);
  if (existing.has_value()) stats_.RemoveEntry(*existing);
  stats_.AddEntry(entry);
  memtable_[entry.HierKey()] = std::move(record);
  if (!existing.has_value()) ++live_entries_;
  if (memtable_.size() >= options_.memtable_limit) {
    NDQ_RETURN_IF_ERROR(Flush());
  }
  return Status::OK();
}

Result<bool> DirectoryStore::HasDescendants(const std::string& key) const {
  MergedCursor cursor(memtable_, segments_, key + kHierKeySep);
  NDQ_ASSIGN_OR_RETURN(bool more, cursor.Next());
  if (!more) return false;
  return KeyIsAncestor(key, cursor.key());
}

Status DirectoryStore::Remove(const Dn& dn) {
  NDQ_ASSIGN_OR_RETURN(std::optional<Entry> existing, Get(dn));
  if (!existing.has_value()) {
    return Status::NotFound("no entry named " + dn.ToString());
  }
  NDQ_ASSIGN_OR_RETURN(bool kids, HasDescendants(dn.HierKey()));
  if (kids) {
    return Status::InvalidArgument("entry " + dn.ToString() +
                                   " has descendants; remove them first");
  }
  stats_.RemoveEntry(*existing);
  memtable_[dn.HierKey()] = std::string();  // tombstone
  --live_entries_;
  if (memtable_.size() >= options_.memtable_limit) {
    NDQ_RETURN_IF_ERROR(Flush());
  }
  return Status::OK();
}

Status DirectoryStore::ScanRange(
    std::string_view start_key, std::string_view end_key,
    const std::function<Status(std::string_view record)>& fn) const {
  MergedCursor cursor(memtable_, segments_, start_key);
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, cursor.Next());
    if (!more) break;
    if (!end_key.empty() && cursor.key() >= end_key) break;
    NDQ_RETURN_IF_ERROR(fn(cursor.record()));
  }
  return Status::OK();
}

uint64_t DirectoryStore::EstimateRangeRecords(
    std::string_view start_key, std::string_view end_key) const {
  uint64_t total = 0;
  for (const auto& seg : segments_) {
    total += seg->EstimateRangeRecords(start_key, end_key);
  }
  auto lo = memtable_.lower_bound(std::string(start_key));
  auto hi = end_key.empty() ? memtable_.end()
                            : memtable_.lower_bound(std::string(end_key));
  total += static_cast<uint64_t>(std::distance(lo, hi));
  return total;
}

uint64_t DirectoryStore::EstimateRangePages(std::string_view start_key,
                                            std::string_view end_key) const {
  uint64_t total = 0;
  for (const auto& seg : segments_) {
    total += seg->EstimateRangePages(start_key, end_key);
  }
  return total + 1;  // + the memtable (memory-resident)
}

Status DirectoryStore::Flush() {
  if (memtable_.empty()) return Status::OK();
  auto it = memtable_.begin();
  auto next = [&](std::string* record) -> Result<bool> {
    if (it == memtable_.end()) return false;
    *record = it->second.empty() ? MakeTombstoneRecord(it->first) : it->second;
    ++it;
    return true;
  };
  NDQ_ASSIGN_OR_RETURN(EntryStore segment,
                       EntryStore::FromStream(disk_, next));
  segments_.push_back(std::make_unique<EntryStore>(std::move(segment)));
  memtable_.clear();
  if (segments_.size() >= options_.max_segments) {
    NDQ_RETURN_IF_ERROR(Compact());
  }
  return Status::OK();
}

Status DirectoryStore::Compact() {
  NDQ_RETURN_IF_ERROR(Flush());
  if (segments_.size() <= 1) return Status::OK();
  MergedCursor cursor(memtable_, segments_, "");
  auto next = [&](std::string* record) -> Result<bool> {
    NDQ_ASSIGN_OR_RETURN(bool more, cursor.Next());
    if (!more) return false;
    *record = cursor.record();
    return true;
  };
  NDQ_ASSIGN_OR_RETURN(EntryStore merged,
                       EntryStore::FromStream(disk_, next));
  for (auto& s : segments_) NDQ_RETURN_IF_ERROR(s->Destroy());
  segments_.clear();
  segments_.push_back(std::make_unique<EntryStore>(std::move(merged)));
  return Status::OK();
}

}  // namespace ndq
