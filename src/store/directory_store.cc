#include "store/directory_store.h"

#include <iterator>
#include <utility>

#include "storage/serde.h"
#include "store/wal.h"

namespace ndq {

// All mutable store state as one immutable value. Writers build the next
// version (copy-on-write when any snapshot still references the current
// one) and publish it by swapping the shared_ptr under mu_; readers work
// against whichever version they snapshotted, so a query never observes a
// half-applied mutation or a segment list mid-compaction.
struct DirectoryStore::StoreState {
  // Key -> serialized entry, or empty string = tombstone.
  std::map<std::string, std::string> active;
  // Memtable frozen for an in-progress (or failed, pending retry) flush.
  // Read priority: active > frozen > segments newest-to-oldest.
  std::shared_ptr<const std::map<std::string, std::string>> frozen;
  std::vector<std::shared_ptr<EntryStore>> segments;  // oldest first
  uint64_t live_entries = 0;
  uint64_t version = 0;
  StoreStats stats;
};

// Tombstone wire format shared with the stats builder: see
// MakeTombstoneRecord / IsTombstoneRecord in store/entry_store.h.

// Newest-wins pull merge across one StoreState's version streams: active
// memtable, frozen memtable (if any), then segments newest to oldest.
class DirectoryStore::MergedCursor {
 public:
  MergedCursor(const DirectoryStore::StoreState& state,
               std::string_view start_key) {
    const std::string start(start_key);
    maps_.push_back({state.active.lower_bound(start), state.active.end()});
    if (state.frozen != nullptr) {
      maps_.push_back(
          {state.frozen->lower_bound(start), state.frozen->end()});
    }
    for (auto it = state.segments.rbegin(); it != state.segments.rend();
         ++it) {
      cursors_.emplace_back(it->get(), start_key);
      primed_.push_back(false);
      done_.push_back(false);
    }
  }

  /// Advances to the next live (non-tombstone, non-shadowed) record.
  /// Returns false at end. record() valid after true.
  Result<bool> Next(bool include_tombstones = false) {
    while (true) {
      NDQ_ASSIGN_OR_RETURN(bool any, Step());
      if (!any) return false;
      if (!include_tombstones && IsTombstoneRecord(record_)) continue;
      return true;
    }
  }

  const std::string& record() const { return record_; }
  std::string_view key() const { return key_; }

 private:
  struct MapRange {
    std::map<std::string, std::string>::const_iterator it, end;
  };

  // One newest-wins step over the raw version streams.
  Result<bool> Step() {
    for (size_t i = 0; i < cursors_.size(); ++i) {
      if (!primed_[i]) {
        NDQ_ASSIGN_OR_RETURN(bool more, cursors_[i].Next());
        done_[i] = !more;
        primed_[i] = true;
      }
    }
    // Minimum key across sources.
    const std::string* min_key = nullptr;
    for (const MapRange& m : maps_) {
      if (m.it == m.end) continue;
      if (min_key == nullptr || m.it->first < *min_key) {
        min_key = &m.it->first;
      }
    }
    std::string cursor_key;
    for (size_t i = 0; i < cursors_.size(); ++i) {
      if (done_[i]) continue;
      if (min_key == nullptr ||
          std::string_view(cursors_[i].key()) < std::string_view(*min_key)) {
        cursor_key = std::string(cursors_[i].key());
        min_key = &cursor_key;
      }
    }
    if (min_key == nullptr) return false;
    std::string key = *min_key;

    // Pick the highest-priority version; advance every source at key.
    bool picked = false;
    for (MapRange& m : maps_) {
      if (m.it == m.end || m.it->first != key) continue;
      if (!picked) {
        record_ = m.it->second.empty() ? MakeTombstoneRecord(key)
                                       : m.it->second;
        picked = true;
      }
      ++m.it;
    }
    for (size_t i = 0; i < cursors_.size(); ++i) {
      if (done_[i] || cursors_[i].key() != key) continue;
      if (!picked) {
        record_ = cursors_[i].record();
        picked = true;
      }
      NDQ_ASSIGN_OR_RETURN(bool more, cursors_[i].Next());
      done_[i] = !more;
    }
    key_ = key;
    return picked;
  }

  std::vector<MapRange> maps_;  // priority order: active, then frozen
  std::vector<EntryStore::Cursor> cursors_;
  std::vector<bool> primed_, done_;
  std::string record_;
  std::string key_;
};

namespace {

// Memtable lookup outcome: found a record, found a tombstone, or absent.
enum class MemHit { kMiss, kTombstone, kRecord };

MemHit LookupMap(const std::map<std::string, std::string>& map,
                 const std::string& key, const std::string** record) {
  auto it = map.find(key);
  if (it == map.end()) return MemHit::kMiss;
  if (it->second.empty()) return MemHit::kTombstone;
  *record = &it->second;
  return MemHit::kRecord;
}

}  // namespace

// A point-in-time view: shares one StoreState and holds an epoch guard so
// compaction cannot destroy the segment pages under an in-flight scan.
class DirectoryStore::Snapshot : public EntrySource {
 public:
  Snapshot(Disk* disk, std::shared_ptr<const StoreState> state,
           EpochFramework::Guard guard)
      : disk_(disk), state_(std::move(state)), guard_(std::move(guard)) {}

  Status ScanRange(std::string_view start_key, std::string_view end_key,
                   const std::function<Status(std::string_view)>& fn)
      const override {
    return DirectoryStore::ScanState(*state_, start_key, end_key, fn);
  }
  uint64_t num_entries() const override { return state_->live_entries; }
  const IoStats* io_stats() const override {
    return disk_ == nullptr ? nullptr : &disk_->stats();
  }
  const StoreStats* stats() const override { return &state_->stats; }
  uint64_t EstimateRangeRecords(std::string_view start_key,
                                std::string_view end_key) const override {
    return DirectoryStore::EstimateStateRecords(*state_, start_key, end_key);
  }
  uint64_t EstimateRangePages(std::string_view start_key,
                              std::string_view end_key) const override {
    return DirectoryStore::EstimateStatePages(*state_, start_key, end_key);
  }
  // PinSnapshot() keeps the default nullptr: already a snapshot, callers
  // read it directly.
  uint64_t version() const override { return state_->version; }

 private:
  Disk* disk_;
  std::shared_ptr<const StoreState> state_;
  EpochFramework::Guard guard_;
};

DirectoryStore::DirectoryStore(Disk* disk, Schema schema,
                               DirectoryStoreOptions options)
    : disk_(disk),
      schema_(std::move(schema)),
      options_(options),
      state_(std::make_shared<StoreState>()) {}

DirectoryStore::~DirectoryStore() {
  WaitForMaintenance();
  epochs_.DrainAndReclaim();
}

std::shared_ptr<const DirectoryStore::StoreState>
DirectoryStore::SnapshotState() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

DirectoryStore::StoreState* DirectoryStore::MutableStateLocked() {
  // use_count()==1 means no snapshot references this state: safe to
  // mutate in place. The count is exact here because every new reference
  // is taken under mu_, which we hold.
  std::shared_ptr<StoreState> next;
  if (state_.use_count() == 1) {
    next = std::const_pointer_cast<StoreState>(state_);
  } else {
    next = std::make_shared<StoreState>(*state_);
  }
  ++next->version;
  state_ = next;
  return next.get();
}

// ---------------------------------------------------------------------------
// Reads.

Result<std::optional<Entry>> DirectoryStore::GetFromState(
    const StoreState& state, const std::string& key) {
  const std::string* record = nullptr;
  MemHit hit = LookupMap(state.active, key, &record);
  if (hit == MemHit::kMiss && state.frozen != nullptr) {
    hit = LookupMap(*state.frozen, key, &record);
  }
  if (hit == MemHit::kTombstone) return std::optional<Entry>();
  if (hit == MemHit::kRecord) {
    NDQ_ASSIGN_OR_RETURN(Entry e, DeserializeEntry(*record));
    return std::optional<Entry>(std::move(e));
  }
  const std::string end = KeyExactEnd(key);
  for (auto it = state.segments.rbegin(); it != state.segments.rend(); ++it) {
    std::optional<Entry> found;
    bool tombstoned = false;
    Status s = (*it)->ScanRange(
        key, end, [&](std::string_view rec) -> Status {
          if (IsTombstoneRecord(rec)) {
            tombstoned = true;
            return Status::OK();
          }
          NDQ_ASSIGN_OR_RETURN(Entry e, DeserializeEntry(rec));
          found = std::move(e);
          return Status::OK();
        });
    NDQ_RETURN_IF_ERROR(s);
    if (tombstoned) return std::optional<Entry>();
    if (found.has_value()) return found;
  }
  return std::optional<Entry>();
}

Result<bool> DirectoryStore::StateHasDescendants(const StoreState& state,
                                                 const std::string& key) {
  MergedCursor cursor(state, KeyDescendantsBegin(key));
  NDQ_ASSIGN_OR_RETURN(bool more, cursor.Next());
  if (!more) return false;
  return KeyIsAncestor(key, cursor.key());
}

Status DirectoryStore::ScanState(
    const StoreState& state, std::string_view start_key,
    std::string_view end_key,
    const std::function<Status(std::string_view)>& fn) {
  MergedCursor cursor(state, start_key);
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, cursor.Next());
    if (!more) break;
    if (!end_key.empty() && cursor.key() >= end_key) break;
    NDQ_RETURN_IF_ERROR(fn(cursor.record()));
  }
  return Status::OK();
}

uint64_t DirectoryStore::EstimateStateRecords(const StoreState& state,
                                              std::string_view start_key,
                                              std::string_view end_key) {
  uint64_t total = 0;
  for (const auto& seg : state.segments) {
    total += seg->EstimateRangeRecords(start_key, end_key);
  }
  auto span = [&](const std::map<std::string, std::string>& m) {
    auto lo = m.lower_bound(std::string(start_key));
    auto hi =
        end_key.empty() ? m.end() : m.lower_bound(std::string(end_key));
    return static_cast<uint64_t>(std::distance(lo, hi));
  };
  total += span(state.active);
  if (state.frozen != nullptr) total += span(*state.frozen);
  return total;
}

uint64_t DirectoryStore::EstimateStatePages(const StoreState& state,
                                            std::string_view start_key,
                                            std::string_view end_key) {
  uint64_t total = 0;
  for (const auto& seg : state.segments) {
    total += seg->EstimateRangePages(start_key, end_key);
  }
  return total + 1;  // + the memtable (memory-resident)
}

Result<std::optional<Entry>> DirectoryStore::Get(const Dn& dn) const {
  EpochFramework::Guard guard = epochs_.Pin();
  std::shared_ptr<const StoreState> snap = SnapshotState();
  return GetFromState(*snap, dn.HierKey());
}

Status DirectoryStore::ScanRange(
    std::string_view start_key, std::string_view end_key,
    const std::function<Status(std::string_view record)>& fn) const {
  EpochFramework::Guard guard = epochs_.Pin();
  std::shared_ptr<const StoreState> snap = SnapshotState();
  return ScanState(*snap, start_key, end_key, fn);
}

uint64_t DirectoryStore::num_entries() const {
  return SnapshotState()->live_entries;
}

const StoreStats* DirectoryStore::stats() const {
  // The pointer is into the current state; see the header caveat about
  // stability under concurrent mutations.
  std::lock_guard<std::mutex> lock(mu_);
  return &state_->stats;
}

uint64_t DirectoryStore::EstimateRangeRecords(
    std::string_view start_key, std::string_view end_key) const {
  return EstimateStateRecords(*SnapshotState(), start_key, end_key);
}

uint64_t DirectoryStore::EstimateRangePages(std::string_view start_key,
                                            std::string_view end_key) const {
  return EstimateStatePages(*SnapshotState(), start_key, end_key);
}

std::shared_ptr<const EntrySource> DirectoryStore::PinSnapshot() const {
  EpochFramework::Guard guard = epochs_.Pin();
  return std::make_shared<Snapshot>(disk_, SnapshotState(),
                                    std::move(guard));
}

uint64_t DirectoryStore::version() const { return SnapshotState()->version; }

size_t DirectoryStore::num_segments() const {
  return SnapshotState()->segments.size();
}

size_t DirectoryStore::memtable_size() const {
  return SnapshotState()->active.size();
}

// ---------------------------------------------------------------------------
// Mutations.
//
// Protocol (docs/WRITE_PATH.md): all fallible work — validation, the
// existence/descendant reads (which touch segment pages), the WAL commit —
// happens BEFORE the first in-memory effect; the state transition itself
// is infallible (map insert into an exclusively-owned state), so a non-OK
// return always leaves the store exactly as it was. The reads run against
// an optimistic snapshot outside mu_; the version is re-checked under mu_
// before the log append, and the whole operation retries if a concurrent
// writer moved the state in between.

Status DirectoryStore::Add(Entry entry) {
  return PutImpl(std::move(entry), /*must_not_exist=*/true);
}

Status DirectoryStore::Put(Entry entry) {
  return PutImpl(std::move(entry), /*must_not_exist=*/false);
}

Status DirectoryStore::PutImpl(Entry entry, bool must_not_exist) {
  if (entry.dn().IsNull()) {
    return Status::InvalidArgument("cannot put entry with null dn");
  }
  if (options_.validate) NDQ_RETURN_IF_ERROR(schema_.ValidateEntry(entry));
  const std::string key = entry.HierKey();
  std::string record;
  SerializeEntry(entry, &record);

  bool trigger = false;
  while (true) {
    EpochFramework::Guard guard = epochs_.Pin();
    std::shared_ptr<const StoreState> snap = SnapshotState();
    NDQ_ASSIGN_OR_RETURN(std::optional<Entry> existing,
                         GetFromState(*snap, key));
    if (must_not_exist && existing.has_value()) {
      return Status::AlreadyExists("dn already bound: " +
                                   entry.dn().ToString());
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (state_->version != snap->version) continue;  // raced; re-read
    if (wal_ != nullptr) NDQ_RETURN_IF_ERROR(wal_->AppendPut(key, record));
    StoreState* s = MutableStateLocked();
    if (existing.has_value()) s->stats.RemoveEntry(*existing);
    s->stats.AddEntry(entry);
    s->active[key] = std::move(record);
    if (!existing.has_value()) ++s->live_entries;
    trigger = s->active.size() >= options_.memtable_limit;
    break;
  }
  if (trigger) MaybeScheduleMaintenance();
  return Status::OK();
}

Status DirectoryStore::Remove(const Dn& dn) {
  const std::string key = dn.HierKey();
  bool trigger = false;
  while (true) {
    EpochFramework::Guard guard = epochs_.Pin();
    std::shared_ptr<const StoreState> snap = SnapshotState();
    NDQ_ASSIGN_OR_RETURN(std::optional<Entry> existing,
                         GetFromState(*snap, key));
    if (!existing.has_value()) {
      return Status::NotFound("no entry named " + dn.ToString());
    }
    NDQ_ASSIGN_OR_RETURN(bool kids, StateHasDescendants(*snap, key));
    if (kids) {
      return Status::InvalidArgument("entry " + dn.ToString() +
                                     " has descendants; remove them first");
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (state_->version != snap->version) continue;  // raced; re-read
    if (wal_ != nullptr) NDQ_RETURN_IF_ERROR(wal_->AppendRemove(key));
    StoreState* s = MutableStateLocked();
    s->stats.RemoveEntry(*existing);
    s->active[key] = std::string();  // tombstone
    --s->live_entries;
    trigger = s->active.size() >= options_.memtable_limit;
    break;
  }
  if (trigger) MaybeScheduleMaintenance();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Maintenance: flush + compaction.

void DirectoryStore::SetMaintenanceExecutor(
    std::function<void(std::function<void()>)> executor) {
  std::lock_guard<std::mutex> lock(mu_);
  maintenance_executor_ = std::move(executor);
}

Status DirectoryStore::maintenance_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return maintenance_status_;
}

void DirectoryStore::ClearMaintenanceStatus() {
  std::lock_guard<std::mutex> lock(mu_);
  maintenance_status_ = Status::OK();
}

void DirectoryStore::RecordMaintenanceError(const Status& s) {
  if (s.ok()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (maintenance_status_.ok()) maintenance_status_ = s;
}

void DirectoryStore::WaitForMaintenance() {
  std::unique_lock<std::mutex> lock(mu_);
  maintenance_cv_.wait(lock, [this] {
    return !maintenance_scheduled_ && maintenance_inflight_ == 0;
  });
}

void DirectoryStore::MaybeScheduleMaintenance() {
  std::function<void(std::function<void()>)> exec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (maintenance_scheduled_) return;
    maintenance_scheduled_ = true;
    ++maintenance_inflight_;
    exec = maintenance_executor_;
  }
  auto task = [this] { RunMaintenance(); };
  if (exec != nullptr) {
    exec(std::move(task));
  } else {
    task();
  }
}

void DirectoryStore::RunMaintenance() {
  Status s;
  {
    std::lock_guard<std::mutex> maint(maint_mu_);
    {
      // Clear the dedupe flag before flushing: a mutation landing during
      // this flush can schedule the next round.
      std::lock_guard<std::mutex> lock(mu_);
      maintenance_scheduled_ = false;
    }
    s = FlushLocked(/*allow_compact=*/true);
  }
  RecordMaintenanceError(s);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --maintenance_inflight_;
  }
  maintenance_cv_.notify_all();
}

Status DirectoryStore::Flush() {
  std::lock_guard<std::mutex> maint(maint_mu_);
  return FlushLocked(/*allow_compact=*/true);
}

Status DirectoryStore::FlushLocked(bool allow_compact) {
  // Phase 1 — freeze: seal the log at the exact freeze point, then move
  // the active memtable into the (immutable) frozen slot. A frozen
  // memtable left over from a failed flush is retried as-is; it stays
  // fully readable either way via the merge priority.
  std::shared_ptr<const std::map<std::string, std::string>> frozen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_->active.empty() && state_->frozen == nullptr) {
      return Status::OK();
    }
    if (state_->frozen == nullptr) {
      if (wal_ != nullptr) NDQ_RETURN_IF_ERROR(wal_->Seal());
      StoreState* s = MutableStateLocked();
      s->frozen = std::make_shared<const std::map<std::string, std::string>>(
          std::move(s->active));
      s->active.clear();
    }
    frozen = state_->frozen;
  }

  // Phase 2 — build the segment, outside every lock: queries and
  // mutations proceed while FromStream writes pages.
  auto it = frozen->begin();
  auto next = [&](std::string* record) -> Result<bool> {
    if (it == frozen->end()) return false;
    *record =
        it->second.empty() ? MakeTombstoneRecord(it->first) : it->second;
    ++it;
    return true;
  };
  Result<EntryStore> built = EntryStore::FromStream(disk_, next);
  if (!built.ok()) return built.status();  // frozen stays; next flush retries
  auto segment = std::make_shared<EntryStore>(built.TakeValue());

  // Phase 3 — checkpoint + install. The checkpoint must cover the NEW
  // segment list; on checkpoint failure the segment is destroyed and the
  // frozen memtable stays (still covered by the sealed log prefix).
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (wal_ != nullptr) {
      std::vector<std::string> manifests;
      manifests.reserve(state_->segments.size() + 1);
      for (const auto& seg : state_->segments) {
        manifests.push_back(seg->SerializeManifest());
      }
      manifests.push_back(segment->SerializeManifest());
      Status cs = wal_->Checkpoint(manifests);
      if (!cs.ok()) {
        Status ds = segment->Destroy();
        if (!ds.ok()) {
          return cs.WithContext("segment cleanup also failed (" +
                                ds.message() + ")");
        }
        return cs;
      }
    }
    StoreState* s = MutableStateLocked();
    s->segments.push_back(std::move(segment));
    s->frozen = nullptr;
  }

  if (allow_compact &&
      SnapshotState()->segments.size() >= options_.max_segments) {
    return CompactLocked();
  }
  return Status::OK();
}

Status DirectoryStore::Compact() {
  std::lock_guard<std::mutex> maint(maint_mu_);
  NDQ_RETURN_IF_ERROR(FlushLocked(/*allow_compact=*/false));
  return CompactLocked();
}

Status DirectoryStore::CompactLocked() {
  // The memtable was flushed under this maint_mu_ hold, so the merge
  // covers segments only; any newer mutations live in the active memtable
  // and shadow the merged segment by read priority. Nobody can free
  // segment pages while we read them: only compaction frees, and
  // maint_mu_ is held.
  std::shared_ptr<const StoreState> snap = SnapshotState();
  if (snap->segments.size() <= 1) return Status::OK();

  StoreState merge_view;  // segments only: no memtables
  merge_view.segments = snap->segments;
  MergedCursor cursor(merge_view, "");
  auto next = [&](std::string* record) -> Result<bool> {
    NDQ_ASSIGN_OR_RETURN(bool more, cursor.Next());
    if (!more) return false;
    *record = cursor.record();
    return true;
  };
  NDQ_ASSIGN_OR_RETURN(EntryStore built, EntryStore::FromStream(disk_, next));
  auto merged = std::make_shared<EntryStore>(std::move(built));

  // Install the merged segment; only then retire the old ones.
  std::vector<std::shared_ptr<EntryStore>> old_segments;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (wal_ != nullptr) {
      std::vector<std::string> manifests;
      manifests.push_back(merged->SerializeManifest());
      Status cs = wal_->Checkpoint(manifests);
      if (!cs.ok()) {
        Status ds = merged->Destroy();
        if (!ds.ok()) {
          return cs.WithContext("segment cleanup also failed (" +
                                ds.message() + ")");
        }
        return cs;
      }
    }
    StoreState* s = MutableStateLocked();
    old_segments = std::move(s->segments);
    s->segments.clear();
    s->segments.push_back(merged);
    // Refresh statistics from the merged segment's exact build-time stats
    // (tombstones and shadowed versions are gone) plus the current
    // memtable contents re-applied on top. Memtable records shadowing
    // merged entries double-count — an over-count, which keeps the
    // estimates upper bounds. Without this refresh, remove/re-add churn
    // degrades the incremental stats without bound.
    if (merged->stats() != nullptr) {
      StoreStats fresh = *merged->stats();
      bool ok = true;
      for (const auto& [k, rec] : s->active) {
        (void)k;
        if (rec.empty()) continue;  // tombstone: nothing to add
        if (!fresh.AddRecord(rec).ok()) {
          ok = false;
          break;
        }
      }
      if (ok) s->stats = std::move(fresh);
    }
  }

  // Old segment pages are retired behind the epoch horizon: destroyed
  // right here when no reader is pinned (and the aggregated Status
  // returned, so the caller sees destroy failures), otherwise deferred to
  // the last blocking reader's release (failures land in
  // maintenance_status()).
  auto destroy_status = std::make_shared<Status>();
  bool ran_inline = epochs_.Retire(
      [this, old = std::move(old_segments), destroy_status]() mutable {
        Status agg;
        for (auto& seg : old) {
          Status ds = seg->Destroy();
          if (!ds.ok() && agg.ok()) agg = ds;
        }
        old.clear();
        *destroy_status = agg;
        RecordMaintenanceError(agg);
      });
  return ran_inline ? *destroy_status : Status::OK();
}

// ---------------------------------------------------------------------------
// Durability.

Status DirectoryStore::EnableDurability() {
  std::lock_guard<std::mutex> maint(maint_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ != nullptr) {
    return Status::InvalidArgument("store is already durable");
  }
  if (!state_->active.empty() || state_->frozen != nullptr ||
      !state_->segments.empty()) {
    return Status::InvalidArgument(
        "durability must be enabled on an empty store");
  }
  auto wal = std::make_unique<Wal>(disk_);
  NDQ_RETURN_IF_ERROR(wal->Create());
  wal_ = std::move(wal);
  return Status::OK();
}

Result<std::unique_ptr<DirectoryStore>> DirectoryStore::CreateDurable(
    Disk* disk, Schema schema, DirectoryStoreOptions options) {
  auto store =
      std::make_unique<DirectoryStore>(disk, std::move(schema), options);
  NDQ_RETURN_IF_ERROR(store->EnableDurability());
  return store;
}

Result<std::unique_ptr<DirectoryStore>> DirectoryStore::Recover(
    Disk* disk, Schema schema, DirectoryStoreOptions options) {
  Wal::Recovered recovered;
  NDQ_ASSIGN_OR_RETURN(std::unique_ptr<Wal> wal,
                       Wal::Recover(disk, &recovered));

  auto store =
      std::make_unique<DirectoryStore>(disk, std::move(schema), options);
  auto state = std::make_shared<StoreState>();
  for (const std::string& manifest : recovered.manifests) {
    NDQ_ASSIGN_OR_RETURN(EntryStore seg,
                         EntryStore::FromManifest(disk, manifest));
    state->segments.push_back(std::make_shared<EntryStore>(std::move(seg)));
  }
  state->active = std::move(recovered.memtable);

  // Rebuild live count + statistics with one merged scan over the
  // recovered state (manifest-attached segments carry no stats of their
  // own).
  {
    MergedCursor cursor(*state, "");
    while (true) {
      NDQ_ASSIGN_OR_RETURN(bool more, cursor.Next());
      if (!more) break;
      ++state->live_entries;
      NDQ_RETURN_IF_ERROR(state->stats.AddRecord(cursor.record()));
    }
  }
  state->version = 1;
  {
    std::lock_guard<std::mutex> lock(store->mu_);
    store->state_ = std::move(state);
    store->wal_ = std::move(wal);
  }

  // Fold the replayed tail into a durable segment and checkpoint, retiring
  // the pre-crash chain. (The log refuses appends until this checkpoint.)
  Status s;
  {
    std::lock_guard<std::mutex> maint(store->maint_mu_);
    bool empty_tail;
    {
      std::lock_guard<std::mutex> lock(store->mu_);
      empty_tail = store->state_->active.empty();
    }
    if (empty_tail) {
      // Nothing to flush; republish the recovered manifests as-is.
      std::lock_guard<std::mutex> lock(store->mu_);
      std::vector<std::string> manifests;
      for (const auto& seg : store->state_->segments) {
        manifests.push_back(seg->SerializeManifest());
      }
      s = store->wal_->Checkpoint(manifests);
    } else {
      // Seal no-ops (no records on the fresh post-recovery chain), so the
      // flush checkpoint covers everything acknowledged.
      s = store->FlushLocked(/*allow_compact=*/true);
    }
  }
  NDQ_RETURN_IF_ERROR(s);
  return store;
}

Status DirectoryStore::DestroyAll() {
  WaitForMaintenance();
  std::lock_guard<std::mutex> maint(maint_mu_);
  epochs_.DrainAndReclaim();
  std::shared_ptr<const StoreState> snap;
  std::unique_ptr<Wal> wal;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap = state_;
    wal = std::move(wal_);
    auto fresh = std::make_shared<StoreState>();
    fresh->version = state_->version + 1;
    state_ = std::move(fresh);
  }
  Status agg;
  for (const auto& seg : snap->segments) {
    Status ds = seg->Destroy();
    if (!ds.ok() && agg.ok()) agg = ds;
  }
  if (wal != nullptr) {
    Status ws = wal->DestroyAll();
    if (!ws.ok() && agg.ok()) agg = ws;
  }
  return agg;
}

uint64_t DirectoryStore::wal_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ == nullptr ? 0 : wal_->chain_pages();
}

uint64_t DirectoryStore::wal_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ == nullptr ? 0 : wal_->records_appended();
}

}  // namespace ndq
