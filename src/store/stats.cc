#include "store/stats.h"

#include <algorithm>

#include "storage/serde.h"
#include "store/entry_store.h"

namespace ndq {

namespace {

// Bumps a capped MCV map. A value whose slot would exceed the cap lands
// in *other, which every estimate adds back in.
template <typename Map, typename Key>
void McvAdd(Map* map, uint64_t* other, const Key& key) {
  auto it = map->find(key);
  if (it != map->end()) {
    ++it->second;
    return;
  }
  if (map->size() < StoreStats::kMaxTrackedValues) {
    (*map)[key] = 1;
  } else {
    ++*other;
  }
}

// Undoes one McvAdd of `key`. The copy being removed is either in its own
// slot or in the overflow bucket; decrementing whichever is nonempty keeps
// sum(map) + other equal to the live value count.
template <typename Map, typename Key>
void McvRemove(Map* map, uint64_t* other, const Key& key) {
  auto it = map->find(key);
  if (it != map->end() && it->second > 0) {
    if (--it->second == 0) map->erase(it);
    return;
  }
  if (*other > 0) --*other;
}

uint64_t McvGet(const std::map<int64_t, uint64_t>& map, int64_t key) {
  auto it = map.find(key);
  return it == map.end() ? 0 : it->second;
}

uint64_t McvGet(const std::map<std::string, uint64_t>& map,
                const std::string& key) {
  auto it = map.find(key);
  return it == map.end() ? 0 : it->second;
}

bool IntCmpHolds(int64_t lhs, CompareOp op, int64_t rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

void Saturating(uint64_t* counter, bool add) {
  if (add) {
    ++*counter;
  } else if (*counter > 0) {
    --*counter;
  }
}

}  // namespace

void StoreStats::AddEntry(const Entry& entry) { UpdateEntry(entry, true); }

void StoreStats::RemoveEntry(const Entry& entry) {
  UpdateEntry(entry, false);
}

Status StoreStats::AddRecord(std::string_view record) {
  if (IsTombstoneRecord(record)) return Status::OK();
  NDQ_ASSIGN_OR_RETURN(Entry entry, DeserializeEntry(record));
  AddEntry(entry);
  return Status::OK();
}

void StoreStats::UpdateEntry(const Entry& entry, bool add) {
  Saturating(&num_entries_, add);
  for (const auto& [attr, values] : entry.attributes()) {
    AttrStats& a = attrs_[attr];
    Saturating(&a.entries, add);
    for (const Value& v : values) {
      if (v.is_int()) {
        Saturating(&a.int_values, add);
        if (add) {
          McvAdd(&a.int_mcv, &a.int_other, v.AsInt());
        } else {
          McvRemove(&a.int_mcv, &a.int_other, v.AsInt());
        }
      } else {
        Saturating(&a.str_values, add);
        if (add) {
          McvAdd(&a.str_mcv, &a.str_other, v.AsString());
        } else {
          McvRemove(&a.str_mcv, &a.str_other, v.AsString());
        }
      }
    }
  }
  UpdateSketch(entry.HierKey(), add);
}

void StoreStats::UpdateSketch(std::string_view key, bool add) {
  const size_t entry_depth = KeyDepth(key);
  auto touch = [&](std::string_view prefix, size_t depth) {
    if (depth > kMaxSketchDepth) return;
    SubtreeStats* node = nullptr;
    auto it = sketch_.find(prefix);
    if (it != sketch_.end()) {
      node = &it->second;
    } else if (add && !sketch_overflow_) {
      if (sketch_.size() >= kMaxSketchNodes) {
        sketch_overflow_ = true;
        return;
      }
      node = &sketch_[std::string(prefix)];
    } else {
      return;
    }
    Saturating(&node->subtree_size, add);
    if (depth == entry_depth) Saturating(&node->self, add);
    if (depth + 1 == entry_depth) Saturating(&node->direct_children, add);
  };
  touch(std::string_view(), 0);
  size_t depth = 0;
  for (size_t i = 0; i < key.size(); ++i) {
    if (key[i] == kHierKeySep) touch(key.substr(0, i), ++depth);
  }
  if (!key.empty()) touch(key, entry_depth);
}

const StoreStats::AttrStats* StoreStats::FindAttr(
    const std::string& attr) const {
  auto it = attrs_.find(attr);
  return it == attrs_.end() ? nullptr : &it->second;
}

uint64_t StoreStats::EstimateFilterMatches(const AtomicFilter& filter) const {
  switch (filter.kind()) {
    case AtomicFilter::Kind::kTrue:
      return num_entries_;
    case AtomicFilter::Kind::kPresence: {
      const AttrStats* a = FindAttr(filter.attr());
      return a == nullptr ? 0 : a->entries;
    }
    case AtomicFilter::Kind::kEquals: {
      const AttrStats* a = FindAttr(filter.attr());
      if (a == nullptr) return 0;
      const Value& rhs = filter.equals_rhs();
      uint64_t est = 0;
      if (rhs.is_int()) {
        // An int literal also matches its string spelling (see
        // AtomicFilter::MatchesValue).
        est += McvGet(a->int_mcv, rhs.AsInt()) + a->int_other;
        est += McvGet(a->str_mcv, rhs.ToString()) + a->str_other;
      } else {
        est += McvGet(a->str_mcv, rhs.AsString()) + a->str_other;
      }
      return std::min(est, a->entries);
    }
    case AtomicFilter::Kind::kIntCmp: {
      const AttrStats* a = FindAttr(filter.attr());
      if (a == nullptr) return 0;
      uint64_t est = a->int_other;
      for (const auto& [v, count] : a->int_mcv) {
        if (IntCmpHolds(v, filter.cmp_op(), filter.int_rhs())) est += count;
      }
      return std::min(est, a->entries);
    }
    case AtomicFilter::Kind::kSubstring: {
      const AttrStats* a = FindAttr(filter.attr());
      if (a == nullptr) return 0;
      return std::min(a->str_values, a->entries);
    }
  }
  return num_entries_;
}

uint64_t StoreStats::EstimateLdapMatches(const LdapFilter& filter) const {
  switch (filter.op()) {
    case LdapFilter::Op::kAtomic:
      return EstimateFilterMatches(filter.atomic());
    case LdapFilter::Op::kAnd: {
      // A conjunction matches no more entries than its tightest term.
      uint64_t est = num_entries_;
      for (const LdapFilterPtr& c : filter.children()) {
        est = std::min(est, EstimateLdapMatches(*c));
      }
      return est;
    }
    case LdapFilter::Op::kOr: {
      uint64_t est = 0;
      for (const LdapFilterPtr& c : filter.children()) {
        est += EstimateLdapMatches(*c);
        if (est >= num_entries_) return num_entries_;
      }
      return est;
    }
    case LdapFilter::Op::kNot:
      // The histograms bound what a filter CAN match, which says nothing
      // about its complement.
      return num_entries_;
  }
  return num_entries_;
}

const SubtreeStats* StoreStats::Subtree(std::string_view hier_key) const {
  auto it = sketch_.find(hier_key);
  return it == sketch_.end() ? nullptr : &it->second;
}

std::string StoreStats::ToString() const {
  std::string out = "stats{entries=" + std::to_string(num_entries_) +
                    " attrs=" + std::to_string(attrs_.size()) +
                    " sketch_nodes=" + std::to_string(sketch_.size());
  if (sketch_overflow_) out += " sketch_overflow";
  out += "}";
  return out;
}

}  // namespace ndq
