#include "store/entry_store.h"

#include <algorithm>

#include "storage/serde.h"
#include "store/stats.h"

namespace ndq {

namespace {
constexpr uint64_t kTombstoneMarker = ~uint64_t{0} >> 2;
}  // namespace

std::string MakeTombstoneRecord(std::string_view key) {
  std::string out;
  ByteWriter w(&out);
  w.PutString(key);
  w.PutVarint(kTombstoneMarker);
  return out;
}

bool IsTombstoneRecord(std::string_view record) {
  ByteReader r(record);
  Result<std::string_view> key = r.GetString();
  if (!key.ok()) return false;
  Result<uint64_t> marker = r.GetVarint();
  return marker.ok() && *marker == kTombstoneMarker;
}

Status EntryStore::BuildFrom(
    Disk* disk, const std::function<Result<bool>(std::string*)>& next) {
  Status s = BuildFromImpl(disk, next);
  if (!s.ok()) {
    // A partially built segment is unusable; return its pages so a failed
    // load leaks nothing.
    (void)FreeRun(disk, &run_);
    first_keys_.clear();
    first_offsets_.clear();
    first_record_index_.clear();
    stats_.reset();
  }
  return s;
}

Status EntryStore::BuildFromImpl(
    Disk* disk, const std::function<Result<bool>(std::string*)>& next) {
  disk_ = disk;
  const size_t page_size = disk->page_size();
  // Entry records are keyed (HierKey first field), so the writer resolves
  // to key-aware prefix compression when the global mode allows. Page
  // restarts make the first record starting in each page decodable
  // without history — exactly the set of positions the sparse index
  // records, so every SeekReader target is self-contained.
  RunWriter writer(disk, RecordShape::kKeyed);
  writer.set_page_restarts(true);

  // Cardinality statistics are computed inline over the same record
  // stream; tombstone records (from DirectoryStore flushes) are skipped
  // so the histograms count live entries only.
  auto stats = std::make_shared<StoreStats>();

  std::string record;
  std::string prev_key;
  // Pending sparse-index entries for pages not yet flushed are appended as
  // pages fill; a page with no record start inherits a sentinel.
  auto note_record_start = [&](std::string_view key, uint64_t ordinal) {
    size_t page_idx = writer.last_record_page();
    while (first_keys_.size() <= page_idx) {
      first_keys_.emplace_back();
      first_offsets_.push_back(static_cast<uint32_t>(page_size));
      first_record_index_.push_back(ordinal);
    }
    if (first_offsets_[page_idx] == page_size) {
      first_keys_[page_idx] = std::string(key);
      first_offsets_[page_idx] = writer.last_record_offset();
      first_record_index_[page_idx] = ordinal;
    }
  };

  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, next(&record));
    if (!more) break;
    NDQ_ASSIGN_OR_RETURN(std::string_view key, PeekEntryKey(record));
    if (writer.num_records() > 0 && !(prev_key < key)) {
      return Status::InvalidArgument(
          "entry records not in strictly increasing key order");
    }
    prev_key = std::string(key);
    NDQ_RETURN_IF_ERROR(stats->AddRecord(record));
    uint64_t ordinal = writer.num_records();
    NDQ_RETURN_IF_ERROR(writer.Add(record));
    note_record_start(key, ordinal);
  }
  stats_ = std::move(stats);
  NDQ_ASSIGN_OR_RETURN(run_, writer.Finish());
  // Fill index slots for trailing pages with no record start, and for
  // pages fully occupied by spanning records.
  while (first_keys_.size() < run_.pages.size()) {
    first_keys_.emplace_back();
    first_offsets_.push_back(static_cast<uint32_t>(page_size));
    first_record_index_.push_back(run_.num_records);
  }
  // Propagate keys forward so binary search sees a monotone sequence:
  // a page without a record start behaves like its successor... instead,
  // mark such pages with the previous page's key so lower_bound lands
  // before them.
  for (size_t i = 1; i < first_keys_.size(); ++i) {
    if (first_offsets_[i] == page_size) {
      first_keys_[i] = first_keys_[i - 1];
    }
  }
  return Status::OK();
}

Result<EntryStore> EntryStore::BulkLoad(Disk* disk,
                                        const DirectoryInstance& instance) {
  EntryStore store;
  auto it = instance.begin();
  auto next = [&](std::string* record) -> Result<bool> {
    if (it == instance.end()) return false;
    record->clear();
    SerializeEntry(it->second, record);
    ++it;
    return true;
  };
  NDQ_RETURN_IF_ERROR(store.BuildFrom(disk, next));
  return store;
}

Result<EntryStore> EntryStore::FromStream(
    Disk* disk, const std::function<Result<bool>(std::string*)>& next) {
  EntryStore store;
  NDQ_RETURN_IF_ERROR(store.BuildFrom(disk, next));
  return store;
}

Result<EntryStore> EntryStore::FromSortedRecords(
    Disk* disk, const std::vector<std::string>& records) {
  EntryStore store;
  size_t i = 0;
  auto next = [&](std::string* record) -> Result<bool> {
    if (i >= records.size()) return false;
    *record = records[i++];
    return true;
  };
  NDQ_RETURN_IF_ERROR(store.BuildFrom(disk, next));
  return store;
}

Result<std::unique_ptr<RunReader>> EntryStore::SeekReader(
    std::string_view start_key) const {
  if (run_.num_records == 0) return std::unique_ptr<RunReader>();
  // Find the first page whose first-starting record could be >= start_key:
  // binary search for the last page with first_key <= start_key; the
  // target record starts there or later.
  size_t lo = 0;
  {
    size_t a = 0, b = first_keys_.size();
    while (a < b) {
      size_t mid = (a + b) / 2;
      if (first_keys_[mid] <= start_key) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    lo = (a == 0) ? 0 : a - 1;
  }
  // A page without a record start is covered by a record that began
  // earlier; back up to the page where that record starts.
  while (lo > 0 &&
         first_offsets_[lo] == static_cast<uint32_t>(disk_->page_size())) {
    --lo;
  }
  if (first_offsets_[lo] == static_cast<uint32_t>(disk_->page_size())) {
    return std::unique_ptr<RunReader>();  // no record starts at all
  }
  auto reader = std::make_unique<RunReader>(disk_, run_);
  NDQ_RETURN_IF_ERROR(
      reader->SeekTo(lo, first_offsets_[lo], first_record_index_[lo]));
  return reader;
}

Status EntryStore::ScanRange(
    std::string_view start_key, std::string_view end_key,
    const std::function<Status(std::string_view record)>& fn) const {
  NDQ_ASSIGN_OR_RETURN(std::unique_ptr<RunReader> reader,
                       SeekReader(start_key));
  if (reader == nullptr) return Status::OK();
  std::string record;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, reader->Next(&record));
    if (!more) break;
    NDQ_ASSIGN_OR_RETURN(std::string_view key, PeekEntryKey(record));
    if (key < start_key) continue;
    if (!end_key.empty() && key >= end_key) break;
    NDQ_RETURN_IF_ERROR(fn(record));
  }
  return Status::OK();
}

EntryStore::Cursor::Cursor(const EntryStore* store,
                           std::string_view start_key)
    : store_(store), start_key_(start_key) {}

Result<bool> EntryStore::Cursor::Next() {
  if (store_ == nullptr) return false;
  if (!primed_) {
    primed_ = true;
    NDQ_ASSIGN_OR_RETURN(reader_, store_->SeekReader(start_key_));
  }
  if (reader_ == nullptr) return false;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, reader_->Next(&record_));
    if (!more) {
      reader_.reset();
      return false;
    }
    NDQ_ASSIGN_OR_RETURN(key_, PeekEntryKey(record_));
    if (key_ >= start_key_) return true;
  }
}

namespace {

// Index of the last page whose first-starting key is <= key (0 if none).
size_t PageLowerBound(const std::vector<std::string>& first_keys,
                      std::string_view key) {
  size_t a = 0, b = first_keys.size();
  while (a < b) {
    size_t mid = (a + b) / 2;
    if (first_keys[mid] <= key) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  return a == 0 ? 0 : a - 1;
}

}  // namespace

uint64_t EntryStore::EstimateRangePages(std::string_view start_key,
                                        std::string_view end_key) const {
  if (run_.num_records == 0) return 0;
  size_t lo = PageLowerBound(first_keys_, start_key);
  size_t hi = end_key.empty() ? run_.pages.size()
                              : PageLowerBound(first_keys_, end_key) + 1;
  if (hi <= lo) return 1;
  return hi - lo;
}

uint64_t EntryStore::EstimateRangeRecords(std::string_view start_key,
                                          std::string_view end_key) const {
  if (run_.num_records == 0) return 0;
  size_t lo = PageLowerBound(first_keys_, start_key);
  uint64_t lo_rec = first_record_index_[lo];
  uint64_t hi_rec = run_.num_records;
  if (!end_key.empty()) {
    size_t hi = PageLowerBound(first_keys_, end_key);
    hi_rec = (hi + 1 < first_record_index_.size())
                 ? first_record_index_[hi + 1]
                 : run_.num_records;
  }
  return hi_rec > lo_rec ? hi_rec - lo_rec : 1;
}

Result<std::optional<Entry>> EntryStore::Get(std::string_view hier_key) const {
  std::optional<Entry> found;
  std::string end = KeyExactEnd(hier_key);
  Status s = ScanRange(hier_key, end, [&](std::string_view record) -> Status {
    NDQ_ASSIGN_OR_RETURN(Entry e, DeserializeEntry(record));
    found = std::move(e);
    return Status::OK();
  });
  NDQ_RETURN_IF_ERROR(s);
  return found;
}

std::string EntryStore::SerializeManifest() const {
  std::string out;
  ByteWriter w(&out);
  // Raw segments keep the v1 magic (bit-identical manifests, so images
  // saved by older builds round-trip); compressed segments use v2, which
  // adds the page-format byte right after the magic.
  if (run_.format == PageFormat::kRaw) {
    w.PutString("ndqseg1");
  } else {
    w.PutString("ndqseg2");
    w.PutU8(static_cast<uint8_t>(run_.format));
  }
  w.PutVarint(run_.num_records);
  w.PutVarint(run_.payload_bytes);
  w.PutVarint(run_.pages.size());
  for (PageId p : run_.pages) w.PutVarint(p);
  w.PutVarint(first_keys_.size());
  for (size_t i = 0; i < first_keys_.size(); ++i) {
    w.PutString(first_keys_[i]);
    w.PutVarint(first_offsets_[i]);
    w.PutVarint(first_record_index_[i]);
  }
  return out;
}

Result<EntryStore> EntryStore::FromManifest(Disk* disk,
                                            std::string_view manifest) {
  ByteReader r(manifest);
  NDQ_ASSIGN_OR_RETURN(std::string_view magic, r.GetString());
  if (magic != "ndqseg1" && magic != "ndqseg2") {
    return Status::Corruption("bad entry-store manifest magic");
  }
  EntryStore store;
  store.disk_ = disk;
  if (magic == "ndqseg2") {
    NDQ_ASSIGN_OR_RETURN(uint8_t fmt, r.GetU8());
    if (fmt > static_cast<uint8_t>(PageFormat::kKeyPrefix)) {
      return Status::Corruption("bad entry-store manifest page format");
    }
    store.run_.format = static_cast<PageFormat>(fmt);
  }
  NDQ_ASSIGN_OR_RETURN(store.run_.num_records, r.GetVarint());
  NDQ_ASSIGN_OR_RETURN(store.run_.payload_bytes, r.GetVarint());
  NDQ_ASSIGN_OR_RETURN(uint64_t npages, r.GetVarint());
  store.run_.pages.reserve(npages);
  for (uint64_t i = 0; i < npages; ++i) {
    NDQ_ASSIGN_OR_RETURN(uint64_t p, r.GetVarint());
    store.run_.pages.push_back(static_cast<PageId>(p));
  }
  NDQ_ASSIGN_OR_RETURN(uint64_t nidx, r.GetVarint());
  if (nidx != npages) {
    return Status::Corruption("entry-store manifest index/page mismatch");
  }
  for (uint64_t i = 0; i < nidx; ++i) {
    NDQ_ASSIGN_OR_RETURN(std::string_view key, r.GetString());
    NDQ_ASSIGN_OR_RETURN(uint64_t off, r.GetVarint());
    NDQ_ASSIGN_OR_RETURN(uint64_t rec, r.GetVarint());
    store.first_keys_.emplace_back(key);
    store.first_offsets_.push_back(static_cast<uint32_t>(off));
    store.first_record_index_.push_back(rec);
  }
  return store;
}

Status EntryStore::Destroy() {
  if (disk_ == nullptr) return Status::OK();
  NDQ_RETURN_IF_ERROR(FreeRun(disk_, &run_));
  first_keys_.clear();
  first_offsets_.clear();
  first_record_index_.clear();
  stats_.reset();
  return Status::OK();
}

}  // namespace ndq
