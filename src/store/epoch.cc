#include "store/epoch.h"

#include <cassert>
#include <utility>

namespace ndq {

EpochFramework::Guard::Guard(Guard&& other) noexcept
    : framework_(other.framework_), epoch_(other.epoch_) {
  other.framework_ = nullptr;
}

EpochFramework::Guard& EpochFramework::Guard::operator=(
    Guard&& other) noexcept {
  if (this != &other) {
    Release();
    framework_ = other.framework_;
    epoch_ = other.epoch_;
    other.framework_ = nullptr;
  }
  return *this;
}

EpochFramework::Guard::~Guard() { Release(); }

void EpochFramework::Guard::Release() {
  if (framework_ == nullptr) return;
  EpochFramework* fw = framework_;
  framework_ = nullptr;
  fw->Unpin(epoch_);
}

EpochFramework::~EpochFramework() {
  std::vector<std::function<void()>> run;
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(pins_.empty() && "EpochFramework destroyed with live guards");
    for (auto& r : retired_) run.push_back(std::move(r.fn));
    retired_.clear();
  }
  for (auto& fn : run) fn();
}

EpochFramework::Guard EpochFramework::Pin() {
  std::lock_guard<std::mutex> lock(mu_);
  ++pins_[global_epoch_];
  return Guard(this, global_epoch_);
}

bool EpochFramework::Retire(std::function<void()> fn) {
  bool inline_run = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Later pins observe only post-retire state, so they must not block
    // this retirement: advance the epoch before recording it.
    uint64_t epoch = global_epoch_++;
    if (pins_.empty()) {
      inline_run = true;
    } else {
      retired_.push_back({epoch, std::move(fn)});
    }
  }
  if (inline_run) fn();
  return inline_run;
}

void EpochFramework::Unpin(uint64_t epoch) {
  std::vector<std::function<void()>> run;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pins_.find(epoch);
    assert(it != pins_.end());
    if (--it->second == 0) pins_.erase(it);
    run = CollectRunnableLocked();
    if (pins_.empty()) drained_.notify_all();
  }
  for (auto& fn : run) fn();
}

std::vector<std::function<void()>> EpochFramework::CollectRunnableLocked() {
  uint64_t horizon =
      pins_.empty() ? global_epoch_ : pins_.begin()->first;
  std::vector<std::function<void()>> run;
  auto out = retired_.begin();
  for (auto& r : retired_) {
    if (r.epoch < horizon) {
      run.push_back(std::move(r.fn));
    } else {
      *out++ = std::move(r);
    }
  }
  retired_.erase(out, retired_.end());
  return run;
}

void EpochFramework::DrainAndReclaim() {
  std::vector<std::function<void()>> run;
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_.wait(lock, [&] { return pins_.empty(); });
    run = CollectRunnableLocked();
  }
  for (auto& fn : run) fn();
}

uint64_t EpochFramework::pending_retirements() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_.size();
}

uint64_t EpochFramework::active_pins() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [epoch, count] : pins_) n += count;
  return n;
}

}  // namespace ndq
