#include "store/wal.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "storage/serde.h"

namespace ndq {

namespace {

constexpr uint32_t kSuperMagic = 0x5351444e;  // "NDQS"
constexpr uint32_t kChainMagic = 0x5751444e;  // "NDQW"
constexpr size_t kChainHeaderSize = 16;
constexpr uint64_t kSuperVersion = 1;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t crc) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  crc = ~crc;
  for (char ch : data) {
    crc = kTable[(crc ^ static_cast<uint8_t>(ch)) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

Wal::Wal(Disk* disk) : disk_(disk) {}

size_t Wal::PayloadCapacity() const {
  return disk_->page_size() - kChainHeaderSize;
}

Status Wal::WriteChainPage(PageId id, const PageHeader& header,
                           std::string_view payload) {
  std::string page;
  page.reserve(disk_->page_size());
  PutU32(&page, kChainMagic);
  PutU32(&page, header.seq);
  PutU32(&page, header.used);
  PutU32(&page, header.next);
  page.append(payload);
  page.resize(disk_->page_size(), '\0');
  return disk_->WritePage(id, reinterpret_cast<const uint8_t*>(page.data()));
}

void Wal::InvalidateAndFree(PageId id) {
  // Best-effort: a zeroed image can never parse as a chain page, so even a
  // stale next pointer (from a commit that failed between its page write
  // and its barrier) stops a future replay here.
  std::string zero(disk_->page_size(), '\0');
  (void)disk_->WritePage(id, reinterpret_cast<const uint8_t*>(zero.data()));
  if (!disk_->Free(id).ok()) ++lost_pages_;
}

Status Wal::WriteSuperblock(const std::string& bytes) {
  if (bytes.size() > disk_->page_size()) {
    return Status::ResourceExhausted("wal superblock overflows one page");
  }
  std::string page = bytes;
  page.resize(disk_->page_size(), '\0');
  return disk_->WritePage(super_page_,
                          reinterpret_cast<const uint8_t*>(page.data()));
}

std::string Wal::SerializeSuperblock(
    uint64_t blob_len, const std::vector<PageId>& blob_pages) const {
  std::string out;
  PutU32(&out, kSuperMagic);
  ByteWriter w(&out);
  w.PutVarint(kSuperVersion);
  w.PutVarint(checkpoint_seq_);
  w.PutVarint(cur_pages_.front());
  w.PutVarint(head_seq_);
  w.PutVarint(blob_len);
  w.PutVarint(blob_pages.size());
  for (PageId p : blob_pages) w.PutVarint(p);
  PutU32(&out, Crc32(out));
  return out;
}

Status Wal::Create() {
  NDQ_ASSIGN_OR_RETURN(PageId sb, disk_->Allocate());
  if (sb != 0) {
    (void)disk_->Free(sb);
    return Status::InvalidArgument(
        "durable store needs a fresh disk: superblock must be page 0, got " +
        std::to_string(sb));
  }
  super_page_ = sb;
  auto cleanup = [&](std::vector<PageId> pages) {
    for (PageId p : pages) (void)disk_->Free(p);
    super_page_ = kInvalidPage;
    cur_pages_.clear();
  };
  auto head_or = disk_->Allocate();
  if (!head_or.ok()) {
    cleanup({sb});
    return head_or.status();
  }
  PageId head = *head_or;
  cur_pages_ = {head};
  head_seq_ = 0;
  next_seq_ = 1;
  tail_buf_.clear();
  PageHeader h;
  h.seq = 0;
  h.used = 0;
  h.next = kInvalidPage;
  Status s = WriteChainPage(head, h, "");
  if (s.ok()) {
    std::string sb_bytes = SerializeSuperblock(0, {});
    s = WriteSuperblock(sb_bytes);
    if (s.ok()) s = disk_->Sync();
    if (s.ok()) last_superblock_ = std::move(sb_bytes);
  }
  if (!s.ok()) {
    cleanup({head, sb});
    return s;
  }
  return Status::OK();
}

Status Wal::AppendPut(std::string_view key, std::string_view record) {
  return AppendRecord(OpKind::kPut, key, record);
}

Status Wal::AppendRemove(std::string_view key) {
  return AppendRecord(OpKind::kRemove, key, "");
}

Status Wal::AppendRecord(OpKind op, std::string_view key,
                         std::string_view value) {
  if (super_page_ == kInvalidPage) {
    return Status::Internal("wal is not initialized");
  }
  if (poisoned_) {
    return Status::Unavailable(
        "wal poisoned: a rollback could not restore the device");
  }
  if (needs_checkpoint_) {
    return Status::Internal(
        "wal append before the post-recovery checkpoint");
  }
  std::string body;
  {
    ByteWriter w(&body);
    w.PutU8(static_cast<uint8_t>(op));
    w.PutString(key);
    if (op == OpKind::kPut) w.PutString(value);
  }
  std::string framed;
  {
    ByteWriter w(&framed);
    w.PutVarint(body.size());
  }
  framed += body;
  PutU32(&framed, Crc32(body));

  // Rollback snapshot: on any failure the in-memory tail reverts and the
  // on-disk tail is restored, so no unacknowledged byte can ever replay.
  const PageId snap_tail = cur_pages_.back();
  const std::string snap_buf = tail_buf_;
  const size_t snap_pages = cur_pages_.size();
  const uint64_t snap_next_seq = next_seq_;
  auto rollback = [&] {
    PageHeader h;
    h.seq = static_cast<uint32_t>(snap_next_seq - 1);
    h.used = static_cast<uint32_t>(snap_buf.size());
    h.next = kInvalidPage;
    if (!WriteChainPage(snap_tail, h, snap_buf).ok()) poisoned_ = true;
    while (cur_pages_.size() > snap_pages) {
      InvalidateAndFree(cur_pages_.back());
      cur_pages_.pop_back();
    }
    tail_buf_ = snap_buf;
    next_seq_ = snap_next_seq;
  };

  const size_t cap = PayloadCapacity();
  size_t off = 0;
  while (off < framed.size()) {
    if (tail_buf_.size() == cap) {
      // Tail full: close it, linking to a fresh page.
      auto p_or = disk_->Allocate();
      if (!p_or.ok()) {
        rollback();
        return p_or.status();
      }
      PageId p = *p_or;
      PageHeader h;
      h.seq = static_cast<uint32_t>(next_seq_ - 1);
      h.used = static_cast<uint32_t>(cap);
      h.next = p;
      Status s = WriteChainPage(cur_pages_.back(), h, tail_buf_);
      if (!s.ok()) {
        InvalidateAndFree(p);
        rollback();
        return s;
      }
      cur_pages_.push_back(p);
      ++next_seq_;
      tail_buf_.clear();
      continue;
    }
    size_t take = std::min(cap - tail_buf_.size(), framed.size() - off);
    tail_buf_.append(framed, off, take);
    off += take;
  }
  // Commit: persist the tail, then the durability barrier.
  PageHeader h;
  h.seq = static_cast<uint32_t>(next_seq_ - 1);
  h.used = static_cast<uint32_t>(tail_buf_.size());
  h.next = kInvalidPage;
  Status s = WriteChainPage(cur_pages_.back(), h, tail_buf_);
  if (s.ok()) s = disk_->Sync();
  if (!s.ok()) {
    rollback();
    return s;
  }
  ++records_appended_;
  ++records_since_seal_;
  return Status::OK();
}

Status Wal::Seal() {
  if (super_page_ == kInvalidPage) {
    return Status::Internal("wal is not initialized");
  }
  // Nothing appended since the last seal: the chain already splits here.
  if (records_since_seal_ == 0) return Status::OK();
  auto p_or = disk_->Allocate();
  if (!p_or.ok()) return p_or.status();
  PageId p = *p_or;
  PageHeader h;
  h.seq = static_cast<uint32_t>(next_seq_ - 1);
  h.used = static_cast<uint32_t>(tail_buf_.size());
  h.next = p;
  Status s = WriteChainPage(cur_pages_.back(), h, tail_buf_);
  if (!s.ok()) {
    // The failed write had no side effect; the fresh page was never
    // referenced, so plain freeing suffices.
    if (!disk_->Free(p).ok()) ++lost_pages_;
    return s;
  }
  // No barrier needed: the link becomes durable with the next commit's
  // Sync, and until a post-seal record is acknowledged a replay that stops
  // at the old tail loses nothing.
  old_pages_.insert(old_pages_.end(), cur_pages_.begin(), cur_pages_.end());
  cur_pages_ = {p};
  head_seq_ = next_seq_;
  ++next_seq_;
  tail_buf_.clear();
  records_since_seal_ = 0;
  return Status::OK();
}

Status Wal::Checkpoint(const std::vector<std::string>& manifests) {
  if (super_page_ == kInvalidPage) {
    return Status::Internal("wal is not initialized");
  }
  // Serialize and write the manifest blob.
  std::string blob;
  {
    ByteWriter w(&blob);
    w.PutVarint(manifests.size());
    for (const std::string& m : manifests) w.PutString(m);
  }
  const size_t ps = disk_->page_size();
  std::vector<PageId> new_blob;
  auto free_new_blob = [&] {
    for (PageId p : new_blob) {
      if (!disk_->Free(p).ok()) ++lost_pages_;
    }
  };
  for (size_t off = 0; off < blob.size(); off += ps) {
    auto p_or = disk_->Allocate();
    Status s = p_or.ok() ? Status::OK() : p_or.status();
    if (s.ok()) {
      std::string page = blob.substr(off, ps);
      page.resize(ps, '\0');
      s = disk_->WritePage(*p_or,
                           reinterpret_cast<const uint8_t*>(page.data()));
      if (!s.ok() && !disk_->Free(*p_or).ok()) ++lost_pages_;
    }
    if (!s.ok()) {
      free_new_blob();
      return s;
    }
    new_blob.push_back(*p_or);
  }
  // Publish the new superblock.
  std::string sb = SerializeSuperblock(blob.size(), new_blob);
  Status s = WriteSuperblock(sb);
  if (s.ok()) s = disk_->Sync();
  if (!s.ok()) {
    // The write may have landed without its barrier; restore the previous
    // superblock so the device matches the caller's rollback.
    if (!WriteSuperblock(last_superblock_).ok()) poisoned_ = true;
    free_new_blob();
    return s;
  }
  last_superblock_ = std::move(sb);
  ++checkpoint_seq_;
  needs_checkpoint_ = false;
  // Retire everything the new superblock no longer references.
  for (PageId p : old_pages_) {
    if (!disk_->Free(p).ok()) ++lost_pages_;
  }
  old_pages_.clear();
  for (PageId p : blob_pages_) {
    if (!disk_->Free(p).ok()) ++lost_pages_;
  }
  blob_pages_ = std::move(new_blob);
  return Status::OK();
}

Result<std::unique_ptr<Wal>> Wal::Recover(Disk* disk, Recovered* out) {
  auto wal = std::make_unique<Wal>(disk);
  wal->super_page_ = 0;
  const size_t ps = disk->page_size();
  std::string page(ps, '\0');
  NDQ_RETURN_IF_ERROR(
      disk->ReadPage(0, reinterpret_cast<uint8_t*>(page.data())));
  const uint8_t* raw = reinterpret_cast<const uint8_t*>(page.data());
  if (GetU32(raw) != kSuperMagic) {
    return Status::Corruption("wal superblock: bad magic");
  }
  // Locate the CRC by re-parsing: body is everything up to the trailing 4
  // bytes of the serialized superblock, whose length we recover by parsing
  // the fields first against the full page.
  ByteReader r(std::string_view(page).substr(4));
  NDQ_ASSIGN_OR_RETURN(uint64_t version, r.GetVarint());
  if (version != kSuperVersion) {
    return Status::Corruption("wal superblock: unsupported version " +
                              std::to_string(version));
  }
  NDQ_ASSIGN_OR_RETURN(uint64_t checkpoint_seq, r.GetVarint());
  NDQ_ASSIGN_OR_RETURN(uint64_t head, r.GetVarint());
  NDQ_ASSIGN_OR_RETURN(uint64_t head_seq, r.GetVarint());
  NDQ_ASSIGN_OR_RETURN(uint64_t blob_len, r.GetVarint());
  NDQ_ASSIGN_OR_RETURN(uint64_t blob_count, r.GetVarint());
  std::vector<PageId> blob_pages;
  for (uint64_t i = 0; i < blob_count; ++i) {
    NDQ_ASSIGN_OR_RETURN(uint64_t p, r.GetVarint());
    blob_pages.push_back(static_cast<PageId>(p));
  }
  size_t body_len = 4 + r.position();
  if (body_len + 4 > ps) return Status::Corruption("wal superblock: torn");
  uint32_t want_crc = GetU32(raw + body_len);
  if (Crc32(std::string_view(page.data(), body_len)) != want_crc) {
    return Status::Corruption("wal superblock: checksum mismatch");
  }

  // Load the manifest blob.
  std::string blob;
  for (PageId p : blob_pages) {
    std::string bp(ps, '\0');
    NDQ_RETURN_IF_ERROR(
        disk->ReadPage(p, reinterpret_cast<uint8_t*>(bp.data())));
    blob += bp;
  }
  if (blob_len > blob.size()) {
    return Status::Corruption("wal superblock: manifest blob truncated");
  }
  blob.resize(blob_len);
  out->manifests.clear();
  // A zero-length blob means "no checkpoint yet" (Create() writes the
  // superblock before the first Checkpoint): zero manifests, nothing to
  // parse. Only a non-empty blob carries a count.
  if (!blob.empty()) {
    ByteReader br(blob);
    NDQ_ASSIGN_OR_RETURN(uint64_t n, br.GetVarint());
    for (uint64_t i = 0; i < n; ++i) {
      NDQ_ASSIGN_OR_RETURN(std::string_view m, br.GetString());
      out->manifests.emplace_back(m);
    }
  }

  // Walk the chain, concatenating payloads. Stops at the first page that
  // is unreadable or fails magic/sequence validation — by the commit
  // protocol everything beyond that point is unacknowledged.
  std::string stream;
  std::vector<PageId> walked;
  PageId p = static_cast<PageId>(head);
  uint64_t seq = head_seq;
  while (p != kInvalidPage) {
    std::string cp(ps, '\0');
    if (!disk->ReadPage(p, reinterpret_cast<uint8_t*>(cp.data())).ok()) break;
    const uint8_t* craw = reinterpret_cast<const uint8_t*>(cp.data());
    uint32_t magic = GetU32(craw);
    if (magic != kChainMagic) {
      // A zeroed page is one we allocated but never wrote (a seal or
      // overflow interrupted before its first commit): adopt it so the
      // post-recovery checkpoint reclaims it.
      if (magic == 0) walked.push_back(p);
      break;
    }
    if (GetU32(craw + 4) != static_cast<uint32_t>(seq)) break;
    uint32_t used = GetU32(craw + 8);
    if (used > ps - kChainHeaderSize) break;
    walked.push_back(p);
    stream.append(cp, kChainHeaderSize, used);
    p = GetU32(craw + 12);
    ++seq;
  }

  // Replay records until the first torn or checksum-failing frame: a
  // committed record is always fully synced before it is acknowledged, so
  // any tail damage covers only unacknowledged bytes.
  out->memtable.clear();
  uint64_t replayed = 0;
  size_t pos = 0;
  while (pos < stream.size()) {
    uint64_t len = 0;
    int shift = 0;
    size_t q = pos;
    bool len_ok = false;
    while (q < stream.size() && shift <= 63) {
      uint8_t b = static_cast<uint8_t>(stream[q++]);
      len |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) {
        len_ok = true;
        break;
      }
      shift += 7;
    }
    if (!len_ok || q + len + 4 > stream.size()) break;
    std::string_view body(stream.data() + q, len);
    uint32_t crc =
        GetU32(reinterpret_cast<const uint8_t*>(stream.data()) + q + len);
    if (Crc32(body) != crc) break;
    ByteReader br(body);
    auto op_or = br.GetU8();
    if (!op_or.ok()) break;
    auto key_or = br.GetString();
    if (!key_or.ok()) break;
    if (*op_or == static_cast<uint8_t>(OpKind::kPut)) {
      auto value_or = br.GetString();
      if (!value_or.ok()) break;
      out->memtable[std::string(*key_or)] = std::string(*value_or);
    } else if (*op_or == static_cast<uint8_t>(OpKind::kRemove)) {
      out->memtable[std::string(*key_or)] = std::string();
    } else {
      break;
    }
    pos = q + len + 4;
    ++replayed;
  }

  // The previous chain and blob are superseded once the caller
  // checkpoints; until then appends are refused.
  wal->old_pages_ = std::move(walked);
  wal->blob_pages_ = std::move(blob_pages);
  wal->checkpoint_seq_ = checkpoint_seq;
  wal->needs_checkpoint_ = true;
  wal->records_since_seal_ = 0;
  wal->last_superblock_.assign(page.data(), body_len + 4);

  // Start a fresh chain for post-recovery appends.
  NDQ_ASSIGN_OR_RETURN(PageId fresh, disk->Allocate());
  wal->cur_pages_ = {fresh};
  wal->head_seq_ = 0;
  wal->next_seq_ = 1;
  wal->tail_buf_.clear();
  PageHeader h;
  h.seq = 0;
  h.used = 0;
  h.next = kInvalidPage;
  NDQ_RETURN_IF_ERROR(wal->WriteChainPage(fresh, h, ""));
  wal->records_appended_ = replayed;
  return wal;
}

Status Wal::DestroyAll() {
  if (super_page_ == kInvalidPage) return Status::OK();
  Status result = Status::OK();
  auto free_all = [&](std::vector<PageId>& pages) {
    for (PageId p : pages) {
      Status s = disk_->Free(p);
      if (!s.ok() && result.ok()) result = s;
    }
    pages.clear();
  };
  free_all(cur_pages_);
  free_all(old_pages_);
  free_all(blob_pages_);
  Status s = disk_->Free(super_page_);
  if (!s.ok() && result.ok()) result = s;
  super_page_ = kInvalidPage;
  return result;
}

}  // namespace ndq
