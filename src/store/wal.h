// Write-ahead log + checkpoint superblock for the durable DirectoryStore
// (docs/WRITE_PATH.md).
//
// Layout on the Disk abstraction (works identically on SimDisk and
// FileDisk):
//
//   page 0            superblock: magic, checkpoint sequence, the page id
//                     + sequence number of the live log chain's first
//                     page, and the page ids of the manifest blob;
//                     CRC-protected.
//   manifest blob     the segment manifests (EntryStore::SerializeManifest)
//                     as of the last checkpoint, serialized across
//                     dedicated pages (they outgrow one page easily: a
//                     manifest embeds the segment's sparse key index).
//   chain pages       a singly linked list of log pages. Each page carries
//                     a 16-byte header {magic, seq, used, next} and a
//                     payload byte stream of framed records
//                     {varint len, body, crc32(body)}; records may span
//                     pages. body = {op, key[, serialized entry]}.
//
// Commit protocol: every acknowledged mutation is appended to the tail
// page, the tail is rewritten, and Disk::Sync() is issued before the store
// mutates any in-memory state. A failed append or commit rolls the
// in-memory tail back and invalidates any pages the failed operation
// created, so unacknowledged bytes can never replay as committed records.
//
// Seal/checkpoint protocol: when the store freezes its memtable for a
// flush, Seal() closes the tail (linking it to a fresh page), so the log
// splits at exactly the freeze point: everything before the seal is
// covered by the frozen memtable / segments, everything after belongs to
// the live memtable. After the new segment is built, Checkpoint(manifests)
// publishes a new superblock pointing past the sealed prefix and frees the
// superseded log pages. A crash anywhere in between replays from the OLD
// superblock through the seal link — the full acknowledged history.
//
// Recovery walks the superblock's chain, validating page magic/sequence
// and record CRCs, stops at the first torn or unreachable byte (which by
// the commit protocol can only cover unacknowledged data), and returns the
// manifests plus the replayed memtable.
//
// Not thread-safe: the owning DirectoryStore serializes all calls under
// its state mutex.

#ifndef NDQ_STORE_WAL_H_
#define NDQ_STORE_WAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "storage/disk.h"

namespace ndq {

/// CRC-32 (IEEE 802.3, reflected) over `data`; seed with a previous crc to
/// chain. Used for WAL record and superblock checksums.
uint32_t Crc32(std::string_view data, uint32_t crc = 0);

class Wal {
 public:
  /// Mutation kinds recorded in the log.
  enum class OpKind : uint8_t { kPut = 1, kRemove = 2 };

  explicit Wal(Disk* disk);

  /// Initializes a fresh log on an empty device: superblock (which must
  /// land on page 0 — the durable store owns its disk from page zero) plus
  /// an empty chain, synced.
  Status Create();

  /// What Recover() reconstructs: the checkpointed segment manifests and
  /// the memtable replayed from the log tail (empty value = tombstone).
  struct Recovered {
    std::vector<std::string> manifests;
    std::map<std::string, std::string> memtable;
  };

  /// Re-attaches to a device carrying a log (after a crash or restart):
  /// validates the superblock, replays the chain into `out`, and returns a
  /// Wal whose replayed pages are retired at the next Checkpoint. The
  /// caller must rebuild its segments from out->manifests and then
  /// checkpoint promptly to bound the chain.
  static Result<std::unique_ptr<Wal>> Recover(Disk* disk, Recovered* out);

  /// Appends one committed record and issues the durability barrier.
  /// On error the log is unchanged (in-memory tail rolled back, partial
  /// pages invalidated) — the caller must not apply the mutation.
  Status AppendPut(std::string_view key, std::string_view record);
  Status AppendRemove(std::string_view key);

  /// Closes the tail at the current byte (the memtable-freeze barrier) and
  /// starts a fresh linked page. Records appended before the seal become
  /// reclaimable at the next Checkpoint; records after it survive.
  /// On error the log is unchanged and no barrier exists.
  Status Seal();

  /// Publishes a new superblock {manifests, current chain} and frees every
  /// sealed page. After OK, a crash recovers exactly {manifests} + the
  /// records appended since the last Seal(). On error the previous
  /// superblock is restored and nothing is freed.
  Status Checkpoint(const std::vector<std::string>& manifests);

  /// Frees every page the log owns (superblock + chains). For teardown in
  /// leak-checked tests; the log is unusable afterwards.
  Status DestroyAll();

  /// Log pages currently owned (superblock excluded).
  uint64_t chain_pages() const {
    return cur_pages_.size() + old_pages_.size() + blob_pages_.size();
  }
  /// True between Recover() and the first successful Checkpoint: the
  /// superblock still references the pre-crash chain, so appends are
  /// refused (they would land on pages a replay cannot reach).
  bool needs_checkpoint() const { return needs_checkpoint_; }
  /// True once a failed rollback left the device indeterminate (only
  /// reachable under sticky fault policies); every later append refuses.
  bool poisoned() const { return poisoned_; }
  /// Pages stranded by failed best-effort cleanup (never by a successful
  /// operation); nonzero only after injected faults on recovery paths.
  uint64_t lost_pages() const { return lost_pages_; }
  uint64_t checkpoint_seq() const { return checkpoint_seq_; }
  uint64_t records_appended() const { return records_appended_; }
  Disk* disk() const { return disk_; }

 private:
  struct PageHeader {
    uint32_t seq = 0;
    uint32_t used = 0;
    PageId next = kInvalidPage;
  };

  size_t PayloadCapacity() const;
  Status AppendRecord(OpKind op, std::string_view key,
                      std::string_view value);
  /// Serializes + writes one chain page.
  Status WriteChainPage(PageId id, const PageHeader& header,
                        std::string_view payload);
  /// Best-effort: overwrite `id` with an invalid header and free it, so a
  /// rolled-back page can never replay, even if later reallocated.
  void InvalidateAndFree(PageId id);
  Status WriteSuperblock(const std::string& bytes);
  std::string SerializeSuperblock(uint64_t blob_len,
                                  const std::vector<PageId>& blob_pages) const;

  Disk* disk_;
  PageId super_page_ = kInvalidPage;
  // Current (unsealed) chain; cur_pages_.front() is what the next
  // checkpoint will publish as the head, cur_pages_.back() is the tail.
  // Invariant: seq(cur_pages_[i]) == head_seq_ + i and
  // next_seq_ == head_seq_ + cur_pages_.size().
  std::vector<PageId> cur_pages_;
  // Sealed pages awaiting the next checkpoint, oldest first.
  std::vector<PageId> old_pages_;
  // Pages holding the last checkpoint's manifest blob.
  std::vector<PageId> blob_pages_;
  std::string tail_buf_;      // payload bytes of the tail page
  uint64_t next_seq_ = 0;     // seq for the NEXT allocated chain page
  uint64_t head_seq_ = 0;     // seq of cur_pages_.front()
  uint64_t checkpoint_seq_ = 0;
  uint64_t records_appended_ = 0;
  uint64_t records_since_seal_ = 0;
  uint64_t lost_pages_ = 0;
  bool needs_checkpoint_ = false;
  bool poisoned_ = false;
  std::string last_superblock_;  // restore image for failed checkpoints
};

}  // namespace ndq

#endif  // NDQ_STORE_WAL_H_
