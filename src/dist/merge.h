// Streaming scatter-gather merge at the coordinator (Sec. 8.3, scaled).
//
// Every server returns its atomic-query result as a SORTED run in
// reverse-DN order, and shard contexts are disjoint, so the coordinator
// can restore global order with a plain k-way merge — no dedup, no
// re-sort. The old path materialized each server's full result on the
// coordinator disk first and then merged the copies; here the per-shard
// runs STAY on the serving replicas' disks and the coordinator consumes
// them record-at-a-time, writing the merged output exactly once. Each
// record crosses the "network" once instead of twice, and the
// coordinator's footprint is one page per input stream.
//
// Replication makes the streams resumable: if a replica dies mid-stream
// (a read fails), the stream re-fetches the same result from a sibling
// replica — replicas hold identical partitions, so the replacement run is
// byte-identical — and skips the records already consumed. A mid-merge
// failover is therefore invisible in the merged output.

#ifndef NDQ_DIST_MERGE_H_
#define NDQ_DIST_MERGE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/external_sort.h"
#include "storage/run.h"

namespace ndq {

/// One shard's sorted result stream, resumable across replica failures.
class ShardStream {
 public:
  /// A run on the disk that holds it (a serving replica's own disk).
  struct Source {
    Disk* disk = nullptr;
    Run run;
  };
  /// Re-fetches the shard's result from another replica after a
  /// mid-stream failure. Receives the count of records already delivered
  /// (purely informational); must return a Source holding the same record
  /// sequence, or the failure that exhausted the shard's replicas.
  using Refetch = std::function<Result<Source>(uint64_t consumed)>;

  ShardStream(std::string shard, Source source, Refetch refetch);
  ~ShardStream();  // frees the current run, best effort

  ShardStream(const ShardStream&) = delete;
  ShardStream& operator=(const ShardStream&) = delete;

  /// Reads the next record; false at end-of-stream. A read failure
  /// triggers a refetch + resume; the error only surfaces if the refetch
  /// itself fails (every replica of the shard is gone).
  Result<bool> Next(std::string* record);

  /// Frees the underlying run. Idempotent; the destructor covers error
  /// paths, but callers that can should Close() and observe the status.
  Status Close();

  const std::string& shard() const { return shard_; }
  uint64_t consumed() const { return consumed_; }
  uint64_t bytes_consumed() const { return bytes_consumed_; }
  uint64_t num_records() const { return source_.run.num_records; }
  /// Successful mid-stream re-fetches (replica failovers inside Next).
  uint64_t refetches() const { return refetches_; }

 private:
  /// Swaps in a replacement source and skips the consumed prefix.
  Status Reopen();

  std::string shard_;
  Source source_;
  Refetch refetch_;
  std::unique_ptr<RunReader> reader_;
  uint64_t consumed_ = 0;
  uint64_t bytes_consumed_ = 0;
  uint64_t refetches_ = 0;
  bool closed_ = false;
};

/// Merges the streams into one run on `out_disk` with the head-of-key
/// fast comparator (core/head64.h) over `key_fn`. Streams must each be
/// sorted by key and pairwise disjoint (shard contexts are). Exhausted
/// streams are Close()d as the merge drains them; on failure the failing
/// stream's index lands in `*failed_stream` (when non-null) so the caller
/// can degrade that shard and retry without it. The streams stay owned by
/// the caller — read consumed()/bytes_consumed()/refetches() afterwards
/// for shipping accounting.
Result<Run> MergeShardStreams(Disk* out_disk, const RecordKeyFn& key_fn,
                              const std::vector<ShardStream*>& streams,
                              RecordShape shape,
                              size_t* failed_stream = nullptr);

}  // namespace ndq

#endif  // NDQ_DIST_MERGE_H_
