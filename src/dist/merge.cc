#include "dist/merge.h"

#include <utility>

#include "core/head64.h"

namespace ndq {

namespace {

// A stream that keeps failing after successful re-fetches is going
// nowhere (every refetch re-evaluates on a live replica, so repeated
// failures mean the fleet is flapping faster than we can read); cap the
// attempts so Next always terminates.
constexpr uint64_t kMaxReopens = 8;

}  // namespace

ShardStream::ShardStream(std::string shard, Source source, Refetch refetch)
    : shard_(std::move(shard)),
      source_(std::move(source)),
      refetch_(std::move(refetch)) {
  reader_ = std::make_unique<RunReader>(source_.disk, source_.run);
}

ShardStream::~ShardStream() {
  if (!closed_) Close().ok();
}

Status ShardStream::Reopen() {
  if (refetch_ == nullptr) {
    return Status::Unavailable("shard '" + shard_ +
                               "': stream failed and no replica to resume "
                               "from");
  }
  NDQ_ASSIGN_OR_RETURN(Source fresh, refetch_(consumed_));
  // Best effort: the old run lives on the failed replica's disk, which
  // may refuse the frees too. Nothing downstream depends on them.
  FreeRun(source_.disk, &source_.run).ok();
  source_ = std::move(fresh);
  reader_ = std::make_unique<RunReader>(source_.disk, source_.run);
  ++refetches_;
  // Replicas hold identical partitions, so the replacement run carries
  // the same record sequence: skip the prefix the caller already saw.
  std::string skipped;
  for (uint64_t i = 0; i < consumed_; ++i) {
    NDQ_ASSIGN_OR_RETURN(bool more, reader_->Next(&skipped));
    if (!more) {
      return Status::Internal("shard '" + shard_ +
                              "': replica stream shorter than the " +
                              std::to_string(consumed_) +
                              " records already consumed");
    }
  }
  return Status::OK();
}

Result<bool> ShardStream::Next(std::string* record) {
  if (closed_) return false;
  uint64_t reopens = 0;
  while (true) {
    Result<bool> more = reader_->Next(record);
    if (more.ok()) {
      if (*more) {
        ++consumed_;
        bytes_consumed_ += record->size();
      }
      return more;
    }
    if (++reopens > kMaxReopens) return more.status();
    Status resumed = Reopen();
    if (!resumed.ok()) return resumed;
  }
}

Status ShardStream::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  reader_.reset();
  return FreeRun(source_.disk, &source_.run);
}

Result<Run> MergeShardStreams(Disk* out_disk, const RecordKeyFn& key_fn,
                              const std::vector<ShardStream*>& streams,
                              RecordShape shape, size_t* failed_stream) {
  if (failed_stream != nullptr) *failed_stream = static_cast<size_t>(-1);
  struct Head {
    std::string record;
    uint64_t head64 = 0;
    bool active = false;
  };
  std::vector<Head> heads(streams.size());
  auto advance = [&](size_t i) -> Status {
    Head& h = heads[i];
    Result<bool> more = streams[i]->Next(&h.record);
    if (!more.ok()) {
      if (failed_stream != nullptr) *failed_stream = i;
      return more.status();
    }
    if (!*more) {
      h.active = false;
      // The merge drains streams whole, so this is the natural place to
      // release the shard's server-side pages; a Close failure here is a
      // replica failure like any other and degrades the same way.
      Status closed = streams[i]->Close();
      if (!closed.ok() && failed_stream != nullptr) *failed_stream = i;
      return closed;
    }
    h.active = true;
    h.head64 = ExtractHead64(key_fn(h.record));
    return Status::OK();
  };
  for (size_t i = 0; i < streams.size(); ++i) {
    NDQ_RETURN_IF_ERROR(advance(i));
  }

  RunWriter writer(out_disk, shape);
  while (true) {
    // Min-scan with cached head words: the 8-byte prefix decides almost
    // every comparison (reverse-DN keys diverge early), and the stream
    // count is the shard count — small — so a heap buys nothing.
    size_t best = streams.size();
    for (size_t i = 0; i < streams.size(); ++i) {
      const Head& h = heads[i];
      if (!h.active) continue;
      if (best == streams.size()) {
        best = i;
        continue;
      }
      const Head& b = heads[best];
      if (h.head64 != b.head64) {
        if (h.head64 < b.head64) best = i;
      } else if (key_fn(h.record) < key_fn(b.record)) {
        best = i;
      }
    }
    if (best == streams.size()) break;
    NDQ_RETURN_IF_ERROR(writer.Add(heads[best].record));
    NDQ_RETURN_IF_ERROR(advance(best));
  }
  return writer.Finish();
}

}  // namespace ndq
