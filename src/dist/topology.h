// Fleet topology: the declarative shard map and the coordinator's
// routing table.
//
// The namespace is partitioned DNS-style into naming contexts (Sec. 3.3 /
// 8.3): each SHARD owns the subtree rooted at its context dn, minus any
// subtree delegated to a deeper context, and is served by R identical
// REPLICAS (same partition bulk-loaded R times, each on its own disk).
// TopologyConfig is the declarative description — what used to be a raw
// (dn, server-name) pair list — with a text form ndqsh can load and print
// (`.topology`). RoutingTable is the resolved, coordinator-side routing
// structure: given an atomic query's (base dn, scope) it names the shards
// whose data the query can touch, exactly as a DNS resolver chases
// delegations downward from the owning zone.

#ifndef NDQ_DIST_TOPOLOGY_H_
#define NDQ_DIST_TOPOLOGY_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/dn.h"
#include "core/scope.h"
#include "core/status.h"
#include "storage/disk.h"

namespace ndq {

/// One shard of the namespace: the naming context it owns plus how many
/// replicas serve it (0 = inherit the topology default).
struct ShardSpec {
  std::string name;
  std::string context;  ///< dn text, e.g. "dc=research, dc=att, dc=com"
  size_t replicas = 0;  ///< 0 = TopologyConfig::replicas
};

/// Declarative fleet description: shards, replication factor, page size.
/// The text form is line-based so it survives dn texts with spaces:
///
///   # comment (or blank)
///   replicas 2
///   page_size 4096
///   shard <name> <context dn...>
///   shard <name> replicas=3 <context dn...>
///
/// Everything after the name (and the optional replicas= override) is the
/// context dn, spaces included. ToString() round-trips through Parse().
struct TopologyConfig {
  std::vector<ShardSpec> shards;
  size_t replicas = 1;  ///< default per-shard replication factor
  size_t page_size = kDefaultPageSize;

  /// Parses the text form above. Unknown directives, duplicate shard
  /// names, unparseable dns and replicas < 1 are InvalidArgument.
  static Result<TopologyConfig> Parse(const std::string& text);

  /// The legacy (dn text, server name) pair list as a TopologyConfig with
  /// one replica per shard — the migration shim for pre-topology callers.
  static TopologyConfig FromContexts(
      const std::vector<std::pair<std::string, std::string>>& contexts,
      size_t page_size = kDefaultPageSize);

  std::string ToString() const;

  /// Effective replication factor of shard `i`.
  size_t ReplicasFor(size_t i) const {
    size_t r = i < shards.size() ? shards[i].replicas : 0;
    return r > 0 ? r : (replicas > 0 ? replicas : 1);
  }
};

/// The coordinator's routing table, resolved once from the naming
/// contexts. Shard indices refer to TopologyConfig::shards order (which
/// is also DistributedDirectory::shards() order).
class RoutingTable {
 public:
  /// Validates the config (names unique and non-empty, contexts parse)
  /// and resolves it. The table keeps the parsed context dns.
  static Result<RoutingTable> Resolve(const TopologyConfig& config);

  /// The shard owning `key` (a HierKey): deepest context that is
  /// ancestor-or-self of it. kNone if no context covers the key — the
  /// entry/base lies outside the namespace the fleet serves.
  static constexpr size_t kNone = static_cast<size_t>(-1);
  size_t OwnerOf(const std::string& hier_key) const;

  /// Shards an atomic query at (base, scope) can touch: the owner of the
  /// base dn first, then — for subtree scopes — every delegate whose
  /// context lies under the base, in shard order. kOne crosses exactly
  /// one delegation boundary (a child held by a delegate).
  std::vector<size_t> OwnersFor(const Dn& base, Scope scope) const;

  size_t num_shards() const { return contexts_.size(); }
  const Dn& context(size_t shard) const { return contexts_[shard]; }
  const std::string& name(size_t shard) const { return names_[shard]; }

 private:
  std::vector<Dn> contexts_;        // parsed, in shard order
  std::vector<std::string> keys_;   // contexts_[i].HierKey(), cached
  std::vector<std::string> names_;
};

}  // namespace ndq

#endif  // NDQ_DIST_TOPOLOGY_H_
