// Distributed query evaluation (Sec. 8.3).
//
// The namespace is partitioned into naming contexts, DNS-style: each
// directory server owns the subtree rooted at its context dn, minus any
// subtree delegated to a more specific context (Sec. 3.3). A query is
// evaluated as the paper prescribes: "each atomic query, whose base dn is
// managed by a directory server different from the queried server, is
// issued to the directory server that manages the base dn ... The results
// of those atomic queries are shipped to the original queried directory
// server, which then computes the query result using the algorithms
// described previously."
//
// An atomic query whose scope spans delegated subdomains fans out to the
// delegate servers as well (as a DNS resolver would chase referrals); each
// server returns a sorted list and the coordinator merges them — sorted-
// ness is preserved end to end, so the coordinator's operator algorithms
// run unchanged.
//
// Everything is simulated in-process: every server has its own SimDisk
// (I/O accounted per server) and the "network" counts messages and bytes
// shipped.

#ifndef NDQ_DIST_DISTRIBUTED_H_
#define NDQ_DIST_DISTRIBUTED_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/degradation.h"
#include "exec/evaluator.h"
#include "exec/operand_cache.h"
#include "exec/parallel_evaluator.h"
#include "exec/thread_pool.h"
#include "query/ast.h"

namespace ndq {

/// Network accounting for one distributed evaluation. Counters are
/// relaxed atomics so concurrent sub-plan shipping (set_parallelism)
/// keeps the accounting exact.
struct NetStats {
  RelaxedCounter messages = 0;  ///< request/response round trips
  RelaxedCounter bytes_shipped = 0;  ///< result payload bytes moved to
                                     ///< the coordinator
  RelaxedCounter records_shipped = 0;
  RelaxedCounter servers_contacted = 0;  ///< distinct servers per atomic
                                         ///< query, summed over atomics
  RelaxedCounter queries_shipped = 0;  ///< whole (sub)queries pushed to a
                                       ///< server
  RelaxedCounter retries = 0;  ///< per-server attempts re-issued after a
                               ///< transient (Unavailable) failure
  RelaxedCounter degraded_results = 0;  ///< server contributions dropped
                                        ///< from a result after retries
                                        ///< were exhausted

  void Reset() { *this = NetStats(); }
};

/// How the coordinator treats a transient (Unavailable) per-server
/// failure: re-issue the request up to `max_attempts` times total, backing
/// off `backoff_micros * 2^(attempt-1)` between attempts. A non-positive
/// `timeout_micros` disables the per-attempt timeout; when set, an attempt
/// whose wall time exceeds it is treated as a transient failure (the
/// simulated client gave up waiting).
struct RetryPolicy {
  int max_attempts = 3;
  uint64_t backoff_micros = 100;
  uint64_t timeout_micros = 0;
};

// DegradationWarning (core/degradation.h) is attached to evaluations that
// returned a partial result: `source` names the server whose contribution
// is missing, `detail` carries the last failure (e.g. "server s2 is
// down"). See DistributedDirectory::last_warnings.

/// One directory server: a naming context plus a store over its own disk.
class DirectoryServer {
 public:
  DirectoryServer(std::string name, Dn context, size_t page_size);

  const std::string& name() const { return name_; }
  const Dn& context() const { return context_; }
  Disk* disk() { return disk_.get(); }
  const EntryStore& store() const { return store_; }
  size_t num_entries() const { return store_.num_entries(); }

  /// Simulated outage: a down server refuses every request with
  /// Unavailable (the coordinator retries and then degrades). Flipping
  /// the flag back up restores normal service — nothing else changes.
  void set_down(bool down) { down_.store(down, std::memory_order_release); }
  bool is_down() const { return down_.load(std::memory_order_acquire); }

 private:
  friend class DistributedDirectory;

  std::string name_;
  Dn context_;
  std::unique_ptr<SimDisk> disk_;
  EntryStore store_;
  /// One outstanding shipped query/scan per server: parallelism in the
  /// coordinator comes from fanning out ACROSS servers, while each
  /// server's own evaluation stays sequential (so the remote evaluator's
  /// snapshot-based tracing on the server disk stays exact).
  std::mutex mu_;
  std::atomic<bool> down_{false};
};

/// \brief A fleet of directory servers plus a coordinator.
class DistributedDirectory {
 public:
  /// Partitions `global` across servers: each entry goes to the server
  /// with the deepest context that is an ancestor-or-self of the entry's
  /// dn. Contexts are (dn text, server name) pairs; entries matching no
  /// context are rejected.
  static Result<DistributedDirectory> Build(
      const DirectoryInstance& global,
      const std::vector<std::pair<std::string, std::string>>& contexts,
      size_t page_size = kDefaultPageSize);

  /// Names of the servers whose data an atomic query at (base, scope) can
  /// touch: the owner of the base dn plus, for subtree scopes, every
  /// delegate whose context lies under the base.
  std::vector<std::string> OwnersFor(const Dn& base, Scope scope) const;

  /// Distributed bottom-up evaluation; the result materializes at the
  /// coordinator. A non-null `trace` receives the per-operator execution
  /// trace (exec/trace.h): I/O is summed over every disk in the fleet
  /// (coordinator + servers), and atomic nodes additionally record the
  /// records/bytes shipped across the simulated network.
  Result<std::vector<Entry>> Evaluate(const Query& query,
                                      OpTrace* trace = nullptr);

  /// Batched evaluation with cross-query sub-plan sharing at the
  /// coordinator. The batch is canonicalized and censused for shared
  /// sub-plans (query/fingerprint.h); the first occurrence of each ships
  /// and evaluates normally, and its shipped result is kept in a
  /// per-batch coordinator-side operand cache, so every later occurrence
  /// — in the same query or a later one — is served locally without
  /// contacting any server (fewer queries shipped, fewer bytes moved;
  /// see net_stats). Results are byte-identical to calling Evaluate once
  /// per query with the same plans. `cache_capacity_pages` bounds the
  /// per-batch cache on the coordinator disk; the cache is dropped when
  /// the batch returns. last_warnings reflects the batch's final query.
  Result<std::vector<std::vector<Entry>>> EvaluateBatch(
      const std::vector<QueryPtr>& queries,
      size_t cache_capacity_pages = 4096);

  /// When enabled (default), a (sub)query whose atomic leaves all fall
  /// within ONE server's exclusive ownership is shipped to that server
  /// whole — it evaluates there with the usual algorithms and only the
  /// FINAL result crosses the network. This is the natural refinement of
  /// Sec. 8.3's atomic-result shipping for subtree-local queries (compare
  /// the two modes in bench_distributed).
  void set_query_shipping(bool enabled) { query_shipping_ = enabled; }

  /// The single server that exclusively covers every leaf of `query`, or
  /// nullptr if the query spans servers. Exposed for tests.
  DirectoryServer* SingleOwner(const Query& query);

  /// Evaluates independent sub-plans (operand subtrees, per-server atomic
  /// fan-out) on up to `n` threads (1 = sequential, the default). Results
  /// are identical to sequential evaluation; only scheduling changes. Not
  /// thread-safe against a concurrent Evaluate.
  void set_parallelism(size_t n);
  size_t parallelism() const {
    return pool_ != nullptr ? pool_->parallelism() : 1;
  }

  /// When enabled (default), EvaluateBatch runs the cost-based optimizer
  /// (query/optimize.h) on each canonicalized plan before the sharing
  /// census, against a coordinator-side view of the fleet's statistics
  /// (summed per-server estimates — still upper bounds). Short-circuits
  /// avoid shipping provably-empty sub-plans; reordering canonicalizes
  /// operand permutations so the census shares more.
  void set_optimize(bool enabled) { optimize_ = enabled; }
  bool optimize() const { return optimize_; }

  /// Transient-failure handling knobs (see RetryPolicy).
  void set_retry_policy(RetryPolicy policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// When enabled (the default), an atomic query whose owning server
  /// stays Unavailable through every retry yields a PARTIAL result — the
  /// reachable servers' contributions, with one DegradationWarning per
  /// missing server — instead of failing the whole query. Disable to get
  /// fail-stop semantics (the Unavailable status propagates).
  void set_allow_degraded(bool enabled) { allow_degraded_ = enabled; }
  bool allow_degraded() const { return allow_degraded_; }

  /// Warnings attached to the most recent Evaluate (empty when the result
  /// was complete). Cleared at the start of each Evaluate.
  std::vector<DegradationWarning> last_warnings() const;

  const NetStats& net_stats() const { return net_; }
  void ResetStats();

  Disk* coordinator_disk() { return coordinator_disk_.get(); }
  const std::vector<std::unique_ptr<DirectoryServer>>& servers() const {
    return servers_;
  }
  DirectoryServer* FindServer(const std::string& name);

 private:
  DistributedDirectory() = default;

  Result<EntryList> EvaluateNode(const Query& query, OpTrace* trace);
  /// Batch-sharing wrapper: serves/publishes sub-plans the active batch
  /// census marked shared from the per-batch coordinator cache, and
  /// delegates everything else to EvaluateNodeDispatch.
  Result<EntryList> EvaluateNodeImpl(const Query& query, OpTrace* trace,
                                     bool* shipped_whole);
  /// `shipped_whole` (may be null) is set when the node was pushed to one
  /// server whole — its children's trace I/O then came from the remote
  /// evaluator and is already inside this node's own IoScope.
  Result<EntryList> EvaluateNodeDispatch(const Query& query, OpTrace* trace,
                                         bool* shipped_whole);
  Result<EntryList> EvaluateAtomicDistributed(const Query& query,
                                              OpTrace* trace);

  Result<EntryList> ShipWholeQuery(const Query& query,
                                   DirectoryServer* server, OpTrace* trace);

  /// I/O counters summed across the coordinator and every server.
  IoStats FleetIo() const;

  std::vector<std::unique_ptr<DirectoryServer>> servers_;
  std::unique_ptr<SimDisk> coordinator_disk_;
  ExecOptions options_;
  NetStats net_;
  bool query_shipping_ = true;
  bool optimize_ = true;
  RetryPolicy retry_policy_;
  bool allow_degraded_ = true;
  /// Mutex + warning list behind one shared_ptr so DistributedDirectory
  /// stays movable (it travels through Result<> out of Build).
  struct WarningSink {
    std::mutex mu;
    std::vector<DegradationWarning> warnings;
  };
  std::shared_ptr<WarningSink> warnings_ =
      std::make_shared<WarningSink>();
  std::unique_ptr<ThreadPool> pool_;  // null = sequential
  /// Per-batch sharing state; non-null only inside EvaluateBatch. The
  /// cache itself is thread-safe, so the pointers are safe to consult
  /// from set_parallelism's pool tasks.
  OperandCache* batch_cache_ = nullptr;
  const SharedOperands* batch_shared_ = nullptr;
};

}  // namespace ndq

#endif  // NDQ_DIST_DISTRIBUTED_H_
