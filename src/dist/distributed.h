// Distributed query evaluation (Sec. 8.3), scaled out.
//
// The namespace is partitioned into naming contexts, DNS-style: each
// SHARD owns the subtree rooted at its context dn, minus any subtree
// delegated to a more specific context (Sec. 3.3), and is served by R
// identical REPLICAS — the same partition bulk-loaded onto R independent
// disks (dist/topology.h). A query is evaluated as the paper prescribes:
// "each atomic query, whose base dn is managed by a directory server
// different from the queried server, is issued to the directory server
// that manages the base dn ... The results of those atomic queries are
// shipped to the original queried directory server, which then computes
// the query result using the algorithms described previously."
//
// An atomic query whose scope spans delegated subdomains fans out to the
// delegate shards as well (as a DNS resolver would chase referrals). Each
// shard routes to one replica — reads round-robin across the replica set,
// and a down or failing replica FAILS OVER to a sibling before the
// RetryPolicy/DegradationWarning machinery ever degrades the result. The
// per-shard sorted streams are then consumed incrementally by a k-way
// merge at the coordinator (dist/merge.h) — sortedness is preserved end
// to end, so the coordinator's operator algorithms run unchanged.
//
// Everything is simulated in-process: every replica has its own SimDisk
// (I/O accounted per replica) and the "network" counts messages and
// bytes shipped.
//
// Frontends do not call this class directly: construct an ndq::Engine
// with EngineOptions{backend = EngineBackend::kDistributed, topology} and
// evaluate through Sessions (engine/engine.h) — admission control,
// planning and batch sharing then work identically against a fleet.

#ifndef NDQ_DIST_DISTRIBUTED_H_
#define NDQ_DIST_DISTRIBUTED_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/degradation.h"
#include "dist/topology.h"
#include "exec/evaluator.h"
#include "exec/operand_cache.h"
#include "exec/parallel_evaluator.h"
#include "exec/thread_pool.h"
#include "query/ast.h"

namespace ndq {

/// Network accounting for distributed evaluation. Counters are relaxed
/// atomics so concurrent sub-plan shipping (set_parallelism) and
/// concurrent Execute calls (Engine sessions) keep the accounting exact.
struct NetStats {
  RelaxedCounter messages = 0;  ///< request/response round trips
  RelaxedCounter bytes_shipped = 0;  ///< result payload bytes moved to
                                     ///< the coordinator
  RelaxedCounter records_shipped = 0;
  RelaxedCounter servers_contacted = 0;  ///< distinct shards per atomic
                                         ///< query, summed over atomics
  RelaxedCounter queries_shipped = 0;  ///< whole (sub)queries pushed to a
                                       ///< server
  RelaxedCounter retries = 0;  ///< per-replica attempts re-issued after a
                               ///< transient (Unavailable) failure
  RelaxedCounter failovers = 0;  ///< requests moved to a sibling replica
                                 ///< after one replica refused or failed
                                 ///< (per-replica counts:
                                 ///< DirectoryServer::failovers /
                                 ///< DistributedDirectory::ReplicaFailovers)
  RelaxedCounter degraded_results = 0;  ///< shard contributions dropped
                                        ///< from a result after every
                                        ///< replica and retry was
                                        ///< exhausted

  void Reset() { *this = NetStats(); }
};

/// How the coordinator treats a transient (Unavailable) failure of one
/// replica: re-issue the request up to `max_attempts` times total,
/// backing off `backoff_micros * 2^(attempt-1)` between attempts, minus a
/// uniform jitter of up to `backoff_jitter` of the delay (decorrelating
/// the retry storms of concurrent sessions; 0 = deterministic backoff).
/// Only after the attempts are exhausted does the request FAIL OVER to
/// the next replica of the shard; a replica that refuses because it is
/// down fails over immediately — retrying a known-down server would just
/// burn the backoff budget. A non-positive `timeout_micros` disables the
/// per-attempt timeout; when set, an attempt whose wall time exceeds it
/// is treated as a transient failure (the simulated client gave up
/// waiting).
struct RetryPolicy {
  int max_attempts = 3;
  uint64_t backoff_micros = 100;
  double backoff_jitter = 0.25;
  uint64_t timeout_micros = 0;
};

// DegradationWarning (core/degradation.h) is attached to evaluations that
// returned a partial result: `source` names the shard whose contribution
// is missing, `detail` carries the last failure (e.g. "replica 'org0/r1'
// is down"). See DistributedDirectory::last_warnings.

/// One replica of a shard: the shard's naming context plus a full copy of
/// its partition in a store over the replica's own disk.
class DirectoryServer {
 public:
  DirectoryServer(std::string name, Dn context, size_t page_size);

  const std::string& name() const { return name_; }
  const Dn& context() const { return context_; }
  Disk* disk() { return disk_.get(); }
  const EntryStore& store() const { return store_; }
  size_t num_entries() const { return store_.num_entries(); }

  /// Simulated outage: a down replica refuses every request with
  /// Unavailable (the coordinator fails over to a sibling replica, and
  /// only degrades when the whole replica set is gone). Flipping the flag
  /// back up restores normal service — nothing else changes.
  void set_down(bool down) { down_.store(down, std::memory_order_release); }
  bool is_down() const { return down_.load(std::memory_order_acquire); }

  /// Times a request addressed to this replica moved on to a sibling
  /// (refusals and exhausted retries both count).
  uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }

 private:
  friend class DistributedDirectory;

  std::string name_;
  Dn context_;
  std::unique_ptr<SimDisk> disk_;
  EntryStore store_;
  /// One outstanding shipped query/scan per replica: parallelism in the
  /// coordinator comes from fanning out ACROSS shards, while each
  /// replica's own evaluation stays sequential (so the remote evaluator's
  /// snapshot-based tracing on the replica disk stays exact).
  std::mutex mu_;
  std::atomic<bool> down_{false};
  std::atomic<uint64_t> failovers_{0};
};

/// One shard: a naming context served by R identical replicas.
class Shard {
 public:
  const std::string& name() const { return name_; }
  const Dn& context() const { return context_; }
  size_t num_replicas() const { return replicas_.size(); }
  DirectoryServer* replica(size_t i) { return replicas_[i].get(); }
  const DirectoryServer* replica(size_t i) const {
    return replicas_[i].get();
  }
  /// Entries of the shard's partition (replicas are identical).
  size_t num_entries() const { return replicas_[0]->num_entries(); }

 private:
  friend class DistributedDirectory;
  Shard() = default;

  std::string name_;
  Dn context_;
  std::vector<std::unique_ptr<DirectoryServer>> replicas_;
  /// Round-robin read cursor: each request starts its replica ring walk
  /// one past the previous request's start, spreading load.
  std::atomic<uint64_t> next_replica_{0};
};

/// \brief A fleet of replicated shards plus a coordinator.
class DistributedDirectory {
 public:
  /// Partitions `global` across the topology's shards — each entry goes
  /// to the shard with the deepest context that is an ancestor-or-self of
  /// the entry's dn — and bulk-loads every shard's partition onto each of
  /// its replicas. Entries matching no context are rejected.
  static Result<DistributedDirectory> Build(const DirectoryInstance& global,
                                            const TopologyConfig& topology);

  /// DEPRECATED legacy form: raw (dn text, server name) pairs, one
  /// replica per shard. Use the TopologyConfig overload (or better, an
  /// Engine with EngineBackend::kDistributed).
  static Result<DistributedDirectory> Build(
      const DirectoryInstance& global,
      const std::vector<std::pair<std::string, std::string>>& contexts,
      size_t page_size = kDefaultPageSize);

  /// Names of the shards whose data an atomic query at (base, scope) can
  /// touch: the owner of the base dn plus, for subtree scopes, every
  /// delegate whose context lies under the base (dist/topology.h).
  std::vector<std::string> OwnersFor(const Dn& base, Scope scope) const;

  /// Distributed bottom-up evaluation; the result materializes at the
  /// coordinator. Safe to call concurrently from multiple threads (the
  /// Engine's session dispatch does): all per-evaluation state is local
  /// to the call. A non-null `trace` receives the per-operator execution
  /// trace (exec/trace.h): I/O is summed over every disk in the fleet
  /// (coordinator + replicas), and atomic nodes additionally record the
  /// records/bytes shipped across the simulated network plus the retries
  /// and replica failovers the shipping needed. A non-null `warnings`
  /// receives this call's DegradationWarnings (empty when the result is
  /// complete). `batch_cache`/`batch_shared` (both may be null) carry a
  /// batch's coordinator-side sub-plan sharing state: sub-plans in
  /// `batch_shared` are served from — and on first sight published to —
  /// `batch_cache` instead of re-shipping (engine/engine.h RunBatch).
  Result<std::vector<Entry>> Execute(
      const Query& query, OpTrace* trace = nullptr,
      std::vector<DegradationWarning>* warnings = nullptr,
      OperandCache* batch_cache = nullptr,
      const SharedOperands* batch_shared = nullptr);

  /// DEPRECATED: single-caller form of Execute that parks its warnings in
  /// last_warnings(). Frontends go through Engine sessions instead; the
  /// member warning sink is racy under concurrent calls (use Execute's
  /// `warnings` out-param).
  Result<std::vector<Entry>> Evaluate(const Query& query,
                                      OpTrace* trace = nullptr);

  /// DEPRECATED: batched evaluation with cross-query sub-plan sharing at
  /// the coordinator. Engine sessions' RunBatch supersedes this — same
  /// sharing (it passes the per-batch cache through Execute), plus
  /// admission control and parallel dispatch. Results are byte-identical
  /// to calling Evaluate once per query with the same plans.
  /// `cache_capacity_pages` bounds the per-batch cache on the coordinator
  /// disk; the cache is dropped when the batch returns. last_warnings
  /// reflects the batch's final query.
  Result<std::vector<std::vector<Entry>>> EvaluateBatch(
      const std::vector<QueryPtr>& queries,
      size_t cache_capacity_pages = 4096);

  /// When enabled (default), a (sub)query whose atomic leaves all fall
  /// within ONE shard's exclusive ownership is shipped to a replica of
  /// that shard whole — it evaluates there with the usual algorithms and
  /// only the FINAL result crosses the network. This is the natural
  /// refinement of Sec. 8.3's atomic-result shipping for subtree-local
  /// queries (compare the two modes in bench_distributed).
  void set_query_shipping(bool enabled) { query_shipping_ = enabled; }

  /// When enabled (default), scatter-gather merges stream: per-shard
  /// sorted results stay on the serving replicas' disks and the
  /// coordinator consumes them record-at-a-time into the merged output
  /// (dist/merge.h). Disabled, each shard's result is materialized on the
  /// coordinator first and merged from the copies — the pre-streaming
  /// behavior, kept for byte-identity comparison (results are identical
  /// either way; only coordinator I/O differs).
  void set_streaming_merge(bool enabled) { streaming_merge_ = enabled; }
  bool streaming_merge() const { return streaming_merge_; }

  /// The single shard that exclusively covers every leaf of `query`, or
  /// nullptr if the query spans shards. Exposed for tests.
  Shard* SingleOwner(const Query& query);

  /// Evaluates independent sub-plans (operand subtrees, per-shard atomic
  /// fan-out) on up to `n` threads (1 = sequential, the default). Results
  /// are identical to sequential evaluation; only scheduling changes. Not
  /// thread-safe against a concurrent Execute.
  void set_parallelism(size_t n);
  size_t parallelism() const {
    return pool_ != nullptr ? pool_->parallelism() : 1;
  }

  /// When enabled (default), EvaluateBatch runs the cost-based optimizer
  /// (query/optimize.h) on each canonicalized plan before the sharing
  /// census, against a coordinator-side view of the fleet's statistics
  /// (summed per-shard estimates — still upper bounds). Short-circuits
  /// avoid shipping provably-empty sub-plans; reordering canonicalizes
  /// operand permutations so the census shares more.
  void set_optimize(bool enabled) { optimize_ = enabled; }
  bool optimize() const { return optimize_; }

  /// Transient-failure handling knobs (see RetryPolicy).
  void set_retry_policy(RetryPolicy policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// When enabled (the default), an atomic query whose owning shard stays
  /// Unavailable through every replica and retry yields a PARTIAL result
  /// — the reachable shards' contributions, with one DegradationWarning
  /// per missing shard — instead of failing the whole query. Disable to
  /// get fail-stop semantics (the Unavailable status propagates).
  void set_allow_degraded(bool enabled) { allow_degraded_ = enabled; }
  bool allow_degraded() const { return allow_degraded_; }

  /// Warnings attached to the most recent Evaluate (empty when the result
  /// was complete). Cleared at the start of each Evaluate. DEPRECATED
  /// with it: racy under concurrent Execute (whose `warnings` out-param
  /// replaces this).
  std::vector<DegradationWarning> last_warnings() const;

  const NetStats& net_stats() const { return net_; }
  /// Snapshot of every replica's failover count, keyed by replica name
  /// (only replicas with a nonzero count appear).
  std::map<std::string, uint64_t> ReplicaFailovers() const;
  void ResetStats();

  Disk* coordinator_disk() { return coordinator_disk_.get(); }
  const std::vector<std::unique_ptr<Shard>>& shards() const {
    return shards_;
  }
  Shard* FindShard(const std::string& name);
  /// Every replica in the fleet, flattened in shard order (replica 0 of a
  /// single-replica shard keeps the plain shard name, so legacy callers
  /// see the same servers they always did).
  std::vector<DirectoryServer*> servers() const;
  DirectoryServer* FindServer(const std::string& name);

  /// Coordinator-side estimation view of the fleet (per-shard estimates
  /// summed; not scannable). Lives as long as this object; created on
  /// first call, which must not race an Execute.
  const EntrySource& estimation_source();

 private:
  DistributedDirectory() = default;

  /// Per-evaluation state, one per Execute call: the warning sink and the
  /// batch-sharing pointers travel here instead of in members so
  /// concurrent evaluations (Engine sessions) never share mutable state.
  struct EvalCtx {
    OperandCache* batch_cache = nullptr;
    const SharedOperands* batch_shared = nullptr;
    std::mutex mu;
    std::vector<DegradationWarning> warnings;
  };

  /// One shard-level fetch: the atomic query evaluated on one healthy
  /// replica, with round-robin replica choice, per-replica retries and
  /// failover across the replica ring. On success `run` is the sorted
  /// result ON `replica`'s own disk (the coordinator streams it during
  /// the merge). The counters are filled in success and failure alike.
  struct ShardFetch {
    DirectoryServer* replica = nullptr;
    Run run;
    uint64_t scanned_records = 0;
    uint64_t retries = 0;
    uint64_t failovers = 0;
  };
  Status FetchAtomicFromShard(Shard& shard, const Query& query,
                              bool want_trace, ShardFetch* out);

  Result<EntryList> EvaluateNode(const Query& query, OpTrace* trace,
                                 EvalCtx& ctx);
  /// Batch-sharing wrapper: serves/publishes sub-plans the active batch
  /// census marked shared from the per-batch coordinator cache, and
  /// delegates everything else to EvaluateNodeDispatch.
  Result<EntryList> EvaluateNodeImpl(const Query& query, OpTrace* trace,
                                     bool* shipped_whole, EvalCtx& ctx);
  /// `shipped_whole` (may be null) is set when the node was pushed to one
  /// replica whole — its children's trace I/O then came from the remote
  /// evaluator and is already inside this node's own IoScope.
  Result<EntryList> EvaluateNodeDispatch(const Query& query, OpTrace* trace,
                                         bool* shipped_whole, EvalCtx& ctx);
  Result<EntryList> EvaluateAtomicDistributed(const Query& query,
                                              OpTrace* trace, EvalCtx& ctx);

  Result<EntryList> ShipWholeQuery(const Query& query, Shard* shard,
                                   OpTrace* trace);

  /// True when at least one replica of `shard` is up.
  static bool AnyReplicaUp(const Shard& shard);

  /// I/O counters summed across the coordinator and every replica.
  IoStats FleetIo() const;

  std::vector<std::unique_ptr<Shard>> shards_;
  RoutingTable routing_;
  std::unique_ptr<SimDisk> coordinator_disk_;
  ExecOptions options_;
  NetStats net_;
  bool query_shipping_ = true;
  bool streaming_merge_ = true;
  bool optimize_ = true;
  RetryPolicy retry_policy_;
  bool allow_degraded_ = true;
  /// Mutex + warning list behind one shared_ptr so DistributedDirectory
  /// stays movable (it travels through Result<> out of Build). Legacy
  /// last_warnings() only; Execute uses its per-call EvalCtx sink.
  struct WarningSink {
    std::mutex mu;
    std::vector<DegradationWarning> warnings;
  };
  std::shared_ptr<WarningSink> warnings_ =
      std::make_shared<WarningSink>();
  /// Jitter sequence for retry backoff (behind a shared_ptr for the same
  /// movability reason).
  std::shared_ptr<std::atomic<uint64_t>> jitter_seq_ =
      std::make_shared<std::atomic<uint64_t>>(0);
  std::unique_ptr<ThreadPool> pool_;  // null = sequential
  /// Lazily built estimation view (FleetSource in the .cc). Built after
  /// the object has settled at its final address — a member built inside
  /// Build() would dangle when the Result moves the object out.
  std::unique_ptr<EntrySource> fleet_source_;
};

}  // namespace ndq

#endif  // NDQ_DIST_DISTRIBUTED_H_
