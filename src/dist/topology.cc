#include "dist/topology.h"

#include <sstream>

namespace ndq {

namespace {

// First whitespace-delimited token of `line` starting at `pos`; advances
// `pos` past it. Empty when the line is exhausted.
std::string NextToken(const std::string& line, size_t* pos) {
  size_t b = line.find_first_not_of(" \t", *pos);
  if (b == std::string::npos) {
    *pos = line.size();
    return "";
  }
  size_t e = line.find_first_of(" \t", b);
  if (e == std::string::npos) e = line.size();
  *pos = e;
  return line.substr(b, e - b);
}

Result<size_t> ParseCount(const std::string& tok, const char* what) {
  size_t n = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string("topology: bad ") + what +
                                     " '" + tok + "'");
    }
    n = n * 10 + static_cast<size_t>(c - '0');
  }
  if (n == 0) {
    return Status::InvalidArgument(std::string("topology: ") + what +
                                   " must be >= 1");
  }
  return n;
}

}  // namespace

Result<TopologyConfig> TopologyConfig::Parse(const std::string& text) {
  TopologyConfig config;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t pos = 0;
    std::string directive = NextToken(line, &pos);
    if (directive.empty() || directive[0] == '#') continue;
    if (directive == "replicas") {
      NDQ_ASSIGN_OR_RETURN(config.replicas,
                           ParseCount(NextToken(line, &pos), "replicas"));
    } else if (directive == "page_size") {
      NDQ_ASSIGN_OR_RETURN(config.page_size,
                           ParseCount(NextToken(line, &pos), "page_size"));
    } else if (directive == "shard") {
      ShardSpec spec;
      spec.name = NextToken(line, &pos);
      if (spec.name.empty()) {
        return Status::InvalidArgument("topology: line " +
                                       std::to_string(lineno) +
                                       ": shard needs a name");
      }
      // Optional per-shard override, then the context dn (rest of line,
      // spaces and all).
      size_t mark = pos;
      std::string tok = NextToken(line, &pos);
      if (tok.rfind("replicas=", 0) == 0) {
        NDQ_ASSIGN_OR_RETURN(spec.replicas,
                             ParseCount(tok.substr(9), "replicas"));
      } else {
        pos = mark;
      }
      size_t b = line.find_first_not_of(" \t", pos);
      if (b == std::string::npos) {
        return Status::InvalidArgument("topology: line " +
                                       std::to_string(lineno) + ": shard '" +
                                       spec.name + "' needs a context dn");
      }
      size_t e = line.find_last_not_of(" \t\r");
      spec.context = line.substr(b, e - b + 1);
      config.shards.push_back(std::move(spec));
    } else {
      return Status::InvalidArgument(
          "topology: line " + std::to_string(lineno) +
          ": unknown directive '" + directive + "'");
    }
  }
  if (config.shards.empty()) {
    return Status::InvalidArgument("topology: no shards declared");
  }
  return config;
}

TopologyConfig TopologyConfig::FromContexts(
    const std::vector<std::pair<std::string, std::string>>& contexts,
    size_t page_size) {
  TopologyConfig config;
  config.page_size = page_size;
  config.shards.reserve(contexts.size());
  for (const auto& [dn_text, name] : contexts) {
    config.shards.push_back(ShardSpec{name, dn_text, 0});
  }
  return config;
}

std::string TopologyConfig::ToString() const {
  std::string out;
  out += "replicas " + std::to_string(replicas) + "\n";
  out += "page_size " + std::to_string(page_size) + "\n";
  for (const ShardSpec& s : shards) {
    out += "shard " + s.name;
    if (s.replicas > 0) out += " replicas=" + std::to_string(s.replicas);
    out += " " + s.context + "\n";
  }
  return out;
}

Result<RoutingTable> RoutingTable::Resolve(const TopologyConfig& config) {
  if (config.shards.empty()) {
    return Status::InvalidArgument("topology: no shards declared");
  }
  RoutingTable table;
  table.contexts_.reserve(config.shards.size());
  table.names_.reserve(config.shards.size());
  for (const ShardSpec& spec : config.shards) {
    if (spec.name.empty()) {
      return Status::InvalidArgument("topology: shard with empty name");
    }
    for (const std::string& seen : table.names_) {
      if (seen == spec.name) {
        return Status::InvalidArgument("topology: duplicate shard name '" +
                                       spec.name + "'");
      }
    }
    NDQ_ASSIGN_OR_RETURN(Dn context, Dn::Parse(spec.context));
    table.keys_.push_back(context.HierKey());
    table.contexts_.push_back(std::move(context));
    table.names_.push_back(spec.name);
  }
  return table;
}

size_t RoutingTable::OwnerOf(const std::string& hier_key) const {
  size_t owner = kNone;
  for (size_t i = 0; i < contexts_.size(); ++i) {
    const std::string& ck = keys_[i];
    bool covers =
        ck == hier_key || KeyIsAncestor(ck, hier_key) || hier_key.empty();
    if (!covers) continue;
    if (owner == kNone ||
        contexts_[i].depth() > contexts_[owner].depth()) {
      owner = i;
    }
  }
  return owner;
}

std::vector<size_t> RoutingTable::OwnersFor(const Dn& base,
                                            Scope scope) const {
  const std::string& bk = base.HierKey();
  size_t owner = OwnerOf(bk);
  std::vector<size_t> out;
  if (owner != kNone) out.push_back(owner);
  if (scope == Scope::kBase) return out;
  // Subtree scopes may reach into delegated contexts below the base. kOne
  // can cross exactly one delegation boundary (a child held by a
  // delegate); include those too.
  for (size_t i = 0; i < contexts_.size(); ++i) {
    if (i == owner) continue;
    const std::string& ck = keys_[i];
    bool under = bk.empty() || ck == bk || KeyIsAncestor(bk, ck);
    if (!under) continue;
    if (scope == Scope::kOne) {
      // Only relevant if the delegated context is the base or its child.
      if (!(ck == bk || KeyIsParent(bk, ck))) continue;
    }
    out.push_back(i);
  }
  return out;
}

}  // namespace ndq
