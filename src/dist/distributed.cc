#include "dist/distributed.h"

#include <algorithm>
#include <chrono>

#include "exec/atomic.h"
#include "exec/boolean.h"
#include "exec/embedded_ref.h"
#include "exec/hierarchy.h"
#include "storage/external_sort.h"
#include "storage/serde.h"

namespace ndq {

DirectoryServer::DirectoryServer(std::string name, Dn context,
                                 size_t page_size)
    : name_(std::move(name)),
      context_(std::move(context)),
      disk_(std::make_unique<SimDisk>(page_size)) {}

Result<DistributedDirectory> DistributedDirectory::Build(
    const DirectoryInstance& global,
    const std::vector<std::pair<std::string, std::string>>& contexts,
    size_t page_size) {
  DistributedDirectory dist;
  dist.coordinator_disk_ = std::make_unique<SimDisk>(page_size);
  for (const auto& [dn_text, server_name] : contexts) {
    NDQ_ASSIGN_OR_RETURN(Dn context, Dn::Parse(dn_text));
    dist.servers_.push_back(std::make_unique<DirectoryServer>(
        server_name, std::move(context), page_size));
  }

  // Partition: each entry to the deepest covering context.
  std::vector<DirectoryInstance> parts;
  parts.reserve(dist.servers_.size());
  for (size_t i = 0; i < dist.servers_.size(); ++i) {
    parts.emplace_back(global.schema(), /*validate=*/false);
  }
  for (const auto& [key, entry] : global) {
    DirectoryServer* best = nullptr;
    size_t best_idx = 0;
    for (size_t i = 0; i < dist.servers_.size(); ++i) {
      const Dn& ctx = dist.servers_[i]->context();
      const std::string& ck = ctx.HierKey();
      bool covers = ck == key || KeyIsAncestor(ck, key);
      if (!covers) continue;
      if (best == nullptr || ctx.depth() > best->context().depth()) {
        best = dist.servers_[i].get();
        best_idx = i;
      }
    }
    if (best == nullptr) {
      return Status::InvalidArgument("no naming context covers entry " +
                                     entry.dn().ToString());
    }
    NDQ_RETURN_IF_ERROR(parts[best_idx].Add(entry));
  }
  for (size_t i = 0; i < dist.servers_.size(); ++i) {
    NDQ_ASSIGN_OR_RETURN(
        dist.servers_[i]->store_,
        EntryStore::BulkLoad(dist.servers_[i]->disk_.get(), parts[i]));
  }
  return dist;
}

DirectoryServer* DistributedDirectory::FindServer(const std::string& name) {
  for (auto& s : servers_) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

std::vector<std::string> DistributedDirectory::OwnersFor(const Dn& base,
                                                         Scope scope) const {
  const std::string& bk = base.HierKey();
  // Owner of the base dn itself: deepest context covering it.
  const DirectoryServer* owner = nullptr;
  for (const auto& s : servers_) {
    const std::string& ck = s->context().HierKey();
    if (ck == bk || KeyIsAncestor(ck, bk) || bk.empty()) {
      if (owner == nullptr ||
          s->context().depth() > owner->context().depth()) {
        owner = s.get();
      }
    }
  }
  std::vector<std::string> out;
  if (owner != nullptr) out.push_back(owner->name());
  if (scope == Scope::kBase) return out;
  // Subtree scopes may reach into delegated contexts below the base. kOne
  // can cross exactly one delegation boundary (a child held by a
  // delegate); include those too.
  for (const auto& s : servers_) {
    if (owner != nullptr && s->name() == owner->name()) continue;
    const std::string& ck = s->context().HierKey();
    bool under = bk.empty() || ck == bk || KeyIsAncestor(bk, ck);
    if (!under) continue;
    if (scope == Scope::kOne) {
      // Only relevant if the delegated context is the base or its child.
      if (!(ck == bk || KeyIsParent(bk, ck))) continue;
    }
    out.push_back(s->name());
  }
  return out;
}

Result<EntryList> DistributedDirectory::EvaluateAtomicDistributed(
    const Query& query, OpTrace* trace) {
  std::vector<std::string> owners = OwnersFor(query.base(), query.scope());
  net_.servers_contacted += owners.size();
  std::vector<Run> shipped;
  for (const std::string& name : owners) {
    DirectoryServer* server = FindServer(name);
    if (server == nullptr) continue;
    net_.messages += 2;  // request + response
    OpTrace server_trace;
    OpTrace* st = trace != nullptr ? &server_trace : nullptr;
    Result<EntryList> local =
        query.op() == QueryOp::kLdap
            ? EvalLdap(server->disk(), server->store(), query.base(),
                       query.scope(), *query.ldap_filter(), st)
            : EvalAtomic(server->disk(), server->store(), query.base(),
                         query.scope(), query.filter(), st);
    if (trace != nullptr) trace->scanned_records += server_trace.scanned_records;
    NDQ_RETURN_IF_ERROR(local.status());
    // Ship the (sorted) result to the coordinator.
    RunWriter writer(coordinator_disk_.get());
    RunReader reader(server->disk(), *local);
    std::string rec;
    while (true) {
      NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
      if (!more) break;
      net_.bytes_shipped += rec.size();
      ++net_.records_shipped;
      NDQ_RETURN_IF_ERROR(writer.Add(rec));
    }
    NDQ_RETURN_IF_ERROR(FreeRun(server->disk(), &*local));
    NDQ_ASSIGN_OR_RETURN(Run run, writer.Finish());
    shipped.push_back(std::move(run));
  }
  if (shipped.empty()) {
    RunWriter writer(coordinator_disk_.get());
    return writer.Finish();
  }
  if (shipped.size() == 1) return std::move(shipped[0]);
  // Each shipped list is sorted; contexts are disjoint so a merge (no
  // dedup needed) restores global order.
  auto key_fn = [](std::string_view rec) {
    Result<std::string_view> key = PeekEntryKey(rec);
    return key.ok() ? *key : std::string_view();
  };
  return MergeSortedRuns(coordinator_disk_.get(), key_fn,
                         std::move(shipped));
}

DirectoryServer* DistributedDirectory::SingleOwner(const Query& query) {
  DirectoryServer* owner = nullptr;
  for (const Query* leaf : query.Leaves()) {
    std::vector<std::string> owners =
        OwnersFor(leaf->base(), leaf->scope());
    if (owners.size() != 1) return nullptr;
    DirectoryServer* s = FindServer(owners[0]);
    if (s == nullptr) return nullptr;
    if (owner != nullptr && owner != s) return nullptr;
    owner = s;
  }
  return owner;
}

Result<EntryList> DistributedDirectory::ShipWholeQuery(
    const Query& query, DirectoryServer* server, OpTrace* trace) {
  // The server evaluates the whole tree locally (on its own disk and
  // scratch space) and only the final result crosses the network.
  ++net_.queries_shipped;
  net_.messages += 2;
  ++net_.servers_contacted;
  Evaluator remote(server->disk(), &server->store(), options_);
  NDQ_ASSIGN_OR_RETURN(EntryList local, remote.Evaluate(query, trace));
  RunWriter writer(coordinator_disk_.get());
  RunReader reader(server->disk(), local);
  std::string rec;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
    if (!more) break;
    net_.bytes_shipped += rec.size();
    ++net_.records_shipped;
    NDQ_RETURN_IF_ERROR(writer.Add(rec));
  }
  NDQ_RETURN_IF_ERROR(FreeRun(server->disk(), &local));
  return writer.Finish();
}

IoStats DistributedDirectory::FleetIo() const {
  IoStats total = coordinator_disk_->stats();
  for (const auto& s : servers_) {
    const IoStats& d = s->disk_->stats();
    total.page_reads += d.page_reads;
    total.page_writes += d.page_writes;
    total.pages_allocated += d.pages_allocated;
    total.pages_freed += d.pages_freed;
  }
  return total;
}

Result<EntryList> DistributedDirectory::EvaluateNode(const Query& query,
                                                     OpTrace* trace) {
  if (trace == nullptr) return EvaluateNodeImpl(query, nullptr);
  *trace = OpTrace();
  const auto start = std::chrono::steady_clock::now();
  IoStats io_before = FleetIo();
  uint64_t recs_before = net_.records_shipped;
  uint64_t bytes_before = net_.bytes_shipped;
  Result<EntryList> out = EvaluateNodeImpl(query, trace);
  if (!out.ok()) return out;
  trace->label = QueryNodeLabel(query);
  trace->op = query.op();
  trace->io = FleetIo() - io_before;
  trace->wall_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  trace->output_records = out->num_records;
  trace->output_pages = out->pages.size();
  trace->shipped_records = net_.records_shipped - recs_before;
  trace->shipped_bytes = net_.bytes_shipped - bytes_before;
  return out;
}

Result<EntryList> DistributedDirectory::EvaluateNodeImpl(const Query& query,
                                                         OpTrace* trace) {
  SimDisk* disk = coordinator_disk_.get();
  if (query_shipping_ && !query.is_atomic() &&
      query.op() != QueryOp::kLdap) {
    DirectoryServer* owner = SingleOwner(query);
    if (owner != nullptr) return ShipWholeQuery(query, owner, trace);
  }
  OpTrace* t1 = nullptr;
  OpTrace* t2 = nullptr;
  OpTrace* t3 = nullptr;
  if (trace != nullptr) {
    size_t n = (query.q1() != nullptr ? 1 : 0) +
               (query.q2() != nullptr ? 1 : 0) +
               (query.q3() != nullptr ? 1 : 0);
    trace->children.resize(n);
    if (n > 0) t1 = &trace->children[0];
    if (n > 1) t2 = &trace->children[1];
    if (n > 2) t3 = &trace->children[2];
  }
  switch (query.op()) {
    case QueryOp::kAtomic:
    case QueryOp::kLdap:
      return EvaluateAtomicDistributed(query, trace);
    case QueryOp::kAnd:
    case QueryOp::kOr:
    case QueryOp::kDiff: {
      NDQ_ASSIGN_OR_RETURN(EntryList l1, EvaluateNode(*query.q1(), t1));
      NDQ_ASSIGN_OR_RETURN(EntryList l2, EvaluateNode(*query.q2(), t2));
      Result<EntryList> out = EvalBoolean(disk, query.op(), l1, l2, trace);
      NDQ_RETURN_IF_ERROR(FreeRun(disk, &l1));
      NDQ_RETURN_IF_ERROR(FreeRun(disk, &l2));
      return out;
    }
    case QueryOp::kSimpleAgg: {
      NDQ_ASSIGN_OR_RETURN(EntryList l1, EvaluateNode(*query.q1(), t1));
      Result<EntryList> out = EvalSimpleAgg(disk, l1, *query.agg(), trace);
      NDQ_RETURN_IF_ERROR(FreeRun(disk, &l1));
      return out;
    }
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants: {
      NDQ_ASSIGN_OR_RETURN(EntryList l1, EvaluateNode(*query.q1(), t1));
      NDQ_ASSIGN_OR_RETURN(EntryList l2, EvaluateNode(*query.q2(), t2));
      Result<EntryList> out =
          EvalHierarchy(disk, query.op(), l1, l2, nullptr, query.agg(),
                        options_, trace);
      NDQ_RETURN_IF_ERROR(FreeRun(disk, &l1));
      NDQ_RETURN_IF_ERROR(FreeRun(disk, &l2));
      return out;
    }
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants: {
      NDQ_ASSIGN_OR_RETURN(EntryList l1, EvaluateNode(*query.q1(), t1));
      NDQ_ASSIGN_OR_RETURN(EntryList l2, EvaluateNode(*query.q2(), t2));
      NDQ_ASSIGN_OR_RETURN(EntryList l3, EvaluateNode(*query.q3(), t3));
      Result<EntryList> out =
          EvalHierarchy(disk, query.op(), l1, l2, &l3, query.agg(),
                        options_, trace);
      NDQ_RETURN_IF_ERROR(FreeRun(disk, &l1));
      NDQ_RETURN_IF_ERROR(FreeRun(disk, &l2));
      NDQ_RETURN_IF_ERROR(FreeRun(disk, &l3));
      return out;
    }
    case QueryOp::kValueDn:
    case QueryOp::kDnValue: {
      NDQ_ASSIGN_OR_RETURN(EntryList l1, EvaluateNode(*query.q1(), t1));
      NDQ_ASSIGN_OR_RETURN(EntryList l2, EvaluateNode(*query.q2(), t2));
      Result<EntryList> out =
          EvalEmbeddedRef(disk, query.op(), l1, l2, query.ref_attr(),
                          query.agg(), options_, trace);
      NDQ_RETURN_IF_ERROR(FreeRun(disk, &l1));
      NDQ_RETURN_IF_ERROR(FreeRun(disk, &l2));
      return out;
    }
  }
  return Status::Internal("unreachable query op in distributed eval");
}

Result<std::vector<Entry>> DistributedDirectory::Evaluate(
    const Query& query, OpTrace* trace) {
  NDQ_ASSIGN_OR_RETURN(EntryList out, EvaluateNode(query, trace));
  Result<std::vector<Entry>> entries =
      ReadEntryList(coordinator_disk_.get(), out);
  NDQ_RETURN_IF_ERROR(FreeRun(coordinator_disk_.get(), &out));
  return entries;
}

void DistributedDirectory::ResetStats() {
  net_.Reset();
  coordinator_disk_->ResetStats();
  for (auto& s : servers_) s->disk()->ResetStats();
}

}  // namespace ndq
