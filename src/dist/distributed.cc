#include "dist/distributed.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "exec/atomic.h"
#include "exec/boolean.h"
#include "exec/embedded_ref.h"
#include "exec/hierarchy.h"
#include "query/fingerprint.h"
#include "query/optimize.h"
#include "query/rewrite.h"
#include "storage/external_sort.h"
#include "storage/serde.h"

namespace ndq {

DirectoryServer::DirectoryServer(std::string name, Dn context,
                                 size_t page_size)
    : name_(std::move(name)),
      context_(std::move(context)),
      disk_(std::make_unique<SimDisk>(page_size)) {}

Result<DistributedDirectory> DistributedDirectory::Build(
    const DirectoryInstance& global,
    const std::vector<std::pair<std::string, std::string>>& contexts,
    size_t page_size) {
  DistributedDirectory dist;
  dist.coordinator_disk_ = std::make_unique<SimDisk>(page_size);
  for (const auto& [dn_text, server_name] : contexts) {
    NDQ_ASSIGN_OR_RETURN(Dn context, Dn::Parse(dn_text));
    dist.servers_.push_back(std::make_unique<DirectoryServer>(
        server_name, std::move(context), page_size));
  }

  // Partition: each entry to the deepest covering context.
  std::vector<DirectoryInstance> parts;
  parts.reserve(dist.servers_.size());
  for (size_t i = 0; i < dist.servers_.size(); ++i) {
    parts.emplace_back(global.schema(), /*validate=*/false);
  }
  for (const auto& [key, entry] : global) {
    DirectoryServer* best = nullptr;
    size_t best_idx = 0;
    for (size_t i = 0; i < dist.servers_.size(); ++i) {
      const Dn& ctx = dist.servers_[i]->context();
      const std::string& ck = ctx.HierKey();
      bool covers = ck == key || KeyIsAncestor(ck, key);
      if (!covers) continue;
      if (best == nullptr || ctx.depth() > best->context().depth()) {
        best = dist.servers_[i].get();
        best_idx = i;
      }
    }
    if (best == nullptr) {
      return Status::InvalidArgument("no naming context covers entry " +
                                     entry.dn().ToString());
    }
    NDQ_RETURN_IF_ERROR(parts[best_idx].Add(entry));
  }
  for (size_t i = 0; i < dist.servers_.size(); ++i) {
    NDQ_ASSIGN_OR_RETURN(
        dist.servers_[i]->store_,
        EntryStore::BulkLoad(dist.servers_[i]->disk_.get(), parts[i]));
  }
  return dist;
}

DirectoryServer* DistributedDirectory::FindServer(const std::string& name) {
  for (auto& s : servers_) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

std::vector<std::string> DistributedDirectory::OwnersFor(const Dn& base,
                                                         Scope scope) const {
  const std::string& bk = base.HierKey();
  // Owner of the base dn itself: deepest context covering it.
  const DirectoryServer* owner = nullptr;
  for (const auto& s : servers_) {
    const std::string& ck = s->context().HierKey();
    if (ck == bk || KeyIsAncestor(ck, bk) || bk.empty()) {
      if (owner == nullptr ||
          s->context().depth() > owner->context().depth()) {
        owner = s.get();
      }
    }
  }
  std::vector<std::string> out;
  if (owner != nullptr) out.push_back(owner->name());
  if (scope == Scope::kBase) return out;
  // Subtree scopes may reach into delegated contexts below the base. kOne
  // can cross exactly one delegation boundary (a child held by a
  // delegate); include those too.
  for (const auto& s : servers_) {
    if (owner != nullptr && s->name() == owner->name()) continue;
    const std::string& ck = s->context().HierKey();
    bool under = bk.empty() || ck == bk || KeyIsAncestor(bk, ck);
    if (!under) continue;
    if (scope == Scope::kOne) {
      // Only relevant if the delegated context is the base or its child.
      if (!(ck == bk || KeyIsParent(bk, ck))) continue;
    }
    out.push_back(s->name());
  }
  return out;
}

Result<EntryList> DistributedDirectory::EvaluateAtomicDistributed(
    const Query& query, OpTrace* trace) {
  std::vector<std::string> owners = OwnersFor(query.base(), query.scope());
  net_.servers_contacted += owners.size();

  // Issue the atomic query to every owning server; with a pool the
  // servers work concurrently (slot `i` keeps the results in owner order,
  // so the merge below — and therefore the output — is deterministic).
  // Each task locks its server, evaluates there, and ships the sorted
  // result to the coordinator disk.
  struct PerOwner {
    Status status;
    Run run;
    IoStats io;
    uint64_t scanned_records = 0;
    uint64_t shipped_records = 0;
    uint64_t shipped_bytes = 0;
    uint64_t retries = 0;
    bool present = false;
  };
  std::vector<PerOwner> results(owners.size());
  // One request/response attempt against `server`. Every early exit is
  // clean: the ScopedRun guard reclaims the server-side list and the
  // RunWriter destructor reclaims a partially shipped coordinator run, so
  // a failed attempt leaves nothing behind for the retry to trip over.
  auto attempt_one = [&](DirectoryServer* server, PerOwner& r) -> Status {
    net_.messages += 2;  // request + response
    if (server->is_down()) {
      return Status::Unavailable("server '" + server->name() + "' is down");
    }
    const auto start = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> server_lock(server->mu_);
    OpTrace server_trace;
    OpTrace* st = trace != nullptr ? &server_trace : nullptr;
    Result<EntryList> local =
        query.op() == QueryOp::kLdap
            ? EvalLdap(server->disk(), server->store(), query.base(),
                       query.scope(), *query.ldap_filter(), st)
            : EvalAtomic(server->disk(), server->store(), query.base(),
                         query.scope(), query.filter(), st);
    r.scanned_records = server_trace.scanned_records;
    if (!local.ok()) return local.status();
    ScopedRun local_guard(server->disk(), local.TakeValue());
    RunWriter writer(coordinator_disk_.get(), RecordShape::kKeyed);
    RunReader reader(server->disk(), local_guard.get());
    std::string rec;
    uint64_t recs = 0, bytes = 0;
    while (true) {
      NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
      if (!more) break;
      bytes += rec.size();
      ++recs;
      NDQ_RETURN_IF_ERROR(writer.Add(rec));
    }
    NDQ_RETURN_IF_ERROR(local_guard.Free());
    NDQ_ASSIGN_OR_RETURN(Run run, writer.Finish());
    if (retry_policy_.timeout_micros > 0) {
      double elapsed = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      if (elapsed > static_cast<double>(retry_policy_.timeout_micros)) {
        FreeRun(coordinator_disk_.get(), &run).ok();
        return Status::Unavailable("server '" + server->name() +
                                   "' timed out");
      }
    }
    r.shipped_records = recs;
    r.shipped_bytes = bytes;
    r.run = std::move(run);
    return Status::OK();
  };
  auto fetch_one = [&](size_t i) {
    PerOwner& r = results[i];
    // Scope the task's I/O (server scan + coordinator ship) so it reaches
    // this leaf's trace even when the task ran on a pool worker.
    IoScope scope(nullptr, &r.io);
    DirectoryServer* server = FindServer(owners[i]);
    if (server == nullptr) return;
    r.present = true;
    // Transient (Unavailable) failures are retried with exponential
    // backoff; anything else — a corrupted page, a logic error — fails
    // immediately, because retrying cannot fix it.
    const int max_attempts = std::max(1, retry_policy_.max_attempts);
    uint64_t backoff = retry_policy_.backoff_micros;
    for (int attempt = 1;; ++attempt) {
      r.status = attempt_one(server, r);
      if (r.status.ok() ||
          r.status.code() != StatusCode::kUnavailable ||
          attempt >= max_attempts) {
        break;
      }
      ++r.retries;
      ++net_.retries;
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff));
        backoff *= 2;
      }
    }
  };
  {
    ThreadPool::TaskGroup group(pool_.get());
    for (size_t i = 0; i < owners.size(); ++i) {
      group.Run([&fetch_one, i] { fetch_one(i); });
    }
  }

  std::vector<Run> shipped;
  Status failed;
  for (size_t i = 0; i < results.size(); ++i) {
    PerOwner& r = results[i];
    if (!r.present) continue;
    net_.bytes_shipped += r.shipped_bytes;
    net_.records_shipped += r.shipped_records;
    if (trace != nullptr) {
      trace->scanned_records += r.scanned_records;
      trace->shipped_records += r.shipped_records;
      trace->shipped_bytes += r.shipped_bytes;
      trace->retries += r.retries;
      trace->io += r.io;
    }
    if (!r.status.ok()) {
      if (allow_degraded_ && r.status.code() == StatusCode::kUnavailable) {
        // The server stayed unavailable through every retry: degrade.
        // Its contribution is dropped, the reachable servers' results
        // still merge, and the caller can see exactly what is missing
        // via last_warnings().
        ++net_.degraded_results;
        if (trace != nullptr) ++trace->degraded_shards;
        std::lock_guard<std::mutex> lock(warnings_->mu);
        warnings_->warnings.push_back({owners[i], r.status.message()});
        continue;
      }
      if (failed.ok()) failed = r.status;
      continue;
    }
    shipped.push_back(std::move(r.run));
  }
  if (!failed.ok()) {
    for (Run& run : shipped) FreeRun(coordinator_disk_.get(), &run).ok();
    return failed;
  }
  if (shipped.empty()) {
    RunWriter writer(coordinator_disk_.get(), RecordShape::kKeyed);
    return writer.Finish();
  }
  if (shipped.size() == 1) return std::move(shipped[0]);
  // Each shipped list is sorted; contexts are disjoint so a merge (no
  // dedup needed) restores global order.
  auto key_fn = [](std::string_view rec) {
    Result<std::string_view> key = PeekEntryKey(rec);
    return key.ok() ? *key : std::string_view();
  };
  return MergeSortedRuns(coordinator_disk_.get(), key_fn,
                         std::move(shipped), /*fan_in=*/16,
                         RecordShape::kKeyed);
}

DirectoryServer* DistributedDirectory::SingleOwner(const Query& query) {
  DirectoryServer* owner = nullptr;
  for (const Query* leaf : query.Leaves()) {
    std::vector<std::string> owners =
        OwnersFor(leaf->base(), leaf->scope());
    if (owners.size() != 1) return nullptr;
    DirectoryServer* s = FindServer(owners[0]);
    if (s == nullptr) return nullptr;
    if (owner != nullptr && owner != s) return nullptr;
    owner = s;
  }
  return owner;
}

Result<EntryList> DistributedDirectory::ShipWholeQuery(
    const Query& query, DirectoryServer* server, OpTrace* trace) {
  if (server->is_down()) {
    return Status::Unavailable("server '" + server->name() + "' is down");
  }
  // The server evaluates the whole tree locally (on its own disk and
  // scratch space) and only the final result crosses the network.
  ++net_.queries_shipped;
  net_.messages += 2;
  ++net_.servers_contacted;
  std::lock_guard<std::mutex> server_lock(server->mu_);
  Evaluator remote(server->disk(), &server->store(), options_);
  NDQ_ASSIGN_OR_RETURN(EntryList local, remote.Evaluate(query, trace));
  ScopedRun local_guard(server->disk(), std::move(local));
  RunWriter writer(coordinator_disk_.get(), RecordShape::kKeyed);
  RunReader reader(server->disk(), local_guard.get());
  std::string rec;
  uint64_t recs = 0, bytes = 0;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
    if (!more) break;
    bytes += rec.size();
    ++recs;
    NDQ_RETURN_IF_ERROR(writer.Add(rec));
  }
  net_.bytes_shipped += bytes;
  net_.records_shipped += recs;
  if (trace != nullptr) {
    // The remote evaluator filled `trace` (children included); record the
    // final-result shipment here — under parallelism there is no stable
    // global counter window to recover it from.
    trace->shipped_records = recs;
    trace->shipped_bytes = bytes;
  }
  NDQ_RETURN_IF_ERROR(local_guard.Free());
  return writer.Finish();
}

IoStats DistributedDirectory::FleetIo() const {
  IoStats total = coordinator_disk_->stats();
  for (const auto& s : servers_) {
    const IoStats& d = s->disk_->stats();
    total.page_reads += d.page_reads;
    total.page_writes += d.page_writes;
    total.pages_allocated += d.pages_allocated;
    total.pages_freed += d.pages_freed;
    total.faults_injected += d.faults_injected;
  }
  return total;
}

namespace {

// Shipped subtrees are traced by the remote (sequential) evaluator, which
// does not know pool worker ids; stamp the subtree with the thread that
// drove the shipment so SubtreeWorkers() stays meaningful.
void StampWorker(OpTrace* t, uint32_t worker) {
  t->worker = worker;
  for (OpTrace& child : t->children) StampWorker(&child, worker);
}

}  // namespace

Result<EntryList> DistributedDirectory::EvaluateNode(const Query& query,
                                                     OpTrace* trace) {
  if (trace == nullptr) return EvaluateNodeImpl(query, nullptr, nullptr);
  *trace = OpTrace();
  const auto start = std::chrono::steady_clock::now();
  // Attribution via this thread's IoScope, not fleet-wide counter
  // snapshots: under set_parallelism a sibling subtree's concurrent I/O
  // would land inside this node's snapshot window.
  bool shipped_whole = false;
  IoStats self;
  Result<EntryList> out = [&] {
    IoScope scope(nullptr, &self);
    return EvaluateNodeImpl(query, trace, &shipped_whole);
  }();
  if (!out.ok()) return out;
  trace->label = QueryNodeLabel(query);
  trace->op = query.op();
  if (shipped_whole) {
    // The remote evaluation + shipping all ran on this thread, so `self`
    // already covers the whole subtree; the children keep the remote
    // evaluator's per-node attribution.
    trace->io = self;
    StampWorker(trace, ThreadPool::current_worker_id());
  } else {
    // trace->io may hold pre-attributed worker-side I/O (atomic fan-out);
    // add this thread's own traffic and the children's subtrees. Shipping
    // counters are cumulative like io, so roll the children's up too.
    trace->io += self;
    for (const OpTrace& child : trace->children) {
      trace->io += child.io;
      trace->shipped_records += child.shipped_records;
      trace->shipped_bytes += child.shipped_bytes;
    }
    trace->worker = ThreadPool::current_worker_id();
  }
  trace->wall_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  trace->output_records = out->num_records;
  trace->output_pages = out->pages.size();
  return out;
}

Result<EntryList> DistributedDirectory::EvaluateNodeImpl(
    const Query& query, OpTrace* trace, bool* shipped_whole) {
  // Inside an EvaluateBatch, a sub-plan the census marked shared is
  // served from — and on first sight published to — the per-batch
  // coordinator cache: later occurrences cost a local ~2*out-page copy
  // instead of another round of server contacts and result shipping.
  std::string shared_key;
  if (batch_cache_ != nullptr && batch_shared_ != nullptr) {
    std::string key = QueryFingerprint(query);
    if (batch_shared_->contains(key)) {
      EntryList cached;
      NDQ_ASSIGN_OR_RETURN(bool hit, batch_cache_->Lookup(key, &cached));
      if (hit) {
        if (trace != nullptr) {
          trace->cache_hits = 1;
          FillTraceSkeleton(query, trace);
        }
        return cached;
      }
      shared_key = std::move(key);
    }
  }
  Result<EntryList> out = EvaluateNodeDispatch(query, trace, shipped_whole);
  if (!out.ok() || shared_key.empty()) return out;
  // Insert copies the list and absorbs I/O failures during the copy (the
  // entry is simply not cached); anything else is an invariant violation
  // — propagate it, but free the computed list first.
  Status cs = batch_cache_->Insert(shared_key, *out);
  if (!cs.ok()) {
    ScopedRun computed(coordinator_disk_.get(), out.TakeValue());
    return cs;
  }
  if (trace != nullptr) trace->cache_misses = 1;
  return out;
}

Result<EntryList> DistributedDirectory::EvaluateNodeDispatch(
    const Query& query, OpTrace* trace, bool* shipped_whole) {
  Disk* disk = coordinator_disk_.get();
  if (query_shipping_ && !query.is_atomic() &&
      query.op() != QueryOp::kLdap) {
    DirectoryServer* owner = SingleOwner(query);
    if (owner != nullptr && !owner->is_down()) {
      Result<EntryList> whole = ShipWholeQuery(query, owner, trace);
      if (whole.ok() ||
          whole.status().code() != StatusCode::kUnavailable) {
        if (shipped_whole != nullptr) *shipped_whole = true;
        return whole;
      }
      // The shipment failed transiently mid-flight: fall back to the
      // per-atomic path below, which retries each server independently
      // and can degrade instead of failing. Start the trace over — the
      // aborted remote evaluation may have partially filled it.
      ++net_.retries;
      if (trace != nullptr) *trace = OpTrace();
    }
  }
  OpTrace* t1 = nullptr;
  OpTrace* t2 = nullptr;
  OpTrace* t3 = nullptr;
  if (trace != nullptr) {
    size_t n = (query.q1() != nullptr ? 1 : 0) +
               (query.q2() != nullptr ? 1 : 0) +
               (query.q3() != nullptr ? 1 : 0);
    trace->children.resize(n);
    if (n > 0) t1 = &trace->children[0];
    if (n > 1) t2 = &trace->children[1];
    if (n > 2) t3 = &trace->children[2];
  }
  switch (query.op()) {
    case QueryOp::kAtomic:
    case QueryOp::kLdap:
      return EvaluateAtomicDistributed(query, trace);
    case QueryOp::kSimpleAgg: {
      NDQ_ASSIGN_OR_RETURN(EntryList r1, EvaluateNode(*query.q1(), t1));
      ScopedRun l1(disk, std::move(r1));
      Result<EntryList> out =
          EvalSimpleAgg(disk, l1.get(), *query.agg(), trace);
      if (!out.ok()) return out;  // l1 freed by its destructor
      ScopedRun out_guard(disk, out.TakeValue());
      NDQ_RETURN_IF_ERROR(l1.Free());
      return out_guard.Release();
    }
    default:
      break;
  }

  // Multi-operand operators: evaluate the operand sub-plans concurrently
  // (coordinator-side fork/join; each sub-plan ships from its servers
  // independently), join, then run the operator on this thread.
  ScopedRun l1, l2, l3;
  Status s1, s2, s3;
  auto eval_into = [this](const Query& q, OpTrace* t, ScopedRun* out,
                          Status* status) {
    Result<EntryList> r = EvaluateNode(q, t);
    if (!r.ok()) {
      *status = r.status();
      return;
    }
    *out = ScopedRun(coordinator_disk_.get(), r.TakeValue());
  };
  {
    ThreadPool::TaskGroup group(pool_.get());
    group.Run([&] { eval_into(*query.q1(), t1, &l1, &s1); });
    group.Run([&] { eval_into(*query.q2(), t2, &l2, &s2); });
    if (query.q3() != nullptr) {
      group.Run([&] { eval_into(*query.q3(), t3, &l3, &s3); });
    }
  }
  NDQ_RETURN_IF_ERROR(s1);
  NDQ_RETURN_IF_ERROR(s2);
  NDQ_RETURN_IF_ERROR(s3);

  Result<EntryList> out = Status::Internal("unreachable");
  switch (query.op()) {
    case QueryOp::kAnd:
    case QueryOp::kOr:
    case QueryOp::kDiff:
      out = EvalBoolean(disk, query.op(), l1.get(), l2.get(), trace);
      break;
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants:
      out = EvalHierarchy(disk, query.op(), l1.get(), l2.get(), nullptr,
                          query.agg(), options_, trace);
      break;
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants:
      out = EvalHierarchy(disk, query.op(), l1.get(), l2.get(), &l3.get(),
                          query.agg(), options_, trace);
      break;
    case QueryOp::kValueDn:
    case QueryOp::kDnValue:
      out = EvalEmbeddedRef(disk, query.op(), l1.get(), l2.get(),
                            query.ref_attr(), query.agg(), options_, trace);
      break;
    default:
      return Status::Internal("unreachable query op in distributed eval");
  }
  // Protect the operator's output while the operand guards free, so a
  // failed Free cannot leak it; a failed operator frees the operands via
  // the guards' destructors.
  if (!out.ok()) return out;
  ScopedRun out_guard(disk, out.TakeValue());
  NDQ_RETURN_IF_ERROR(l1.Free());
  NDQ_RETURN_IF_ERROR(l2.Free());
  NDQ_RETURN_IF_ERROR(l3.Free());
  return out_guard.Release();
}

Result<std::vector<Entry>> DistributedDirectory::Evaluate(
    const Query& query, OpTrace* trace) {
  {
    std::lock_guard<std::mutex> lock(warnings_->mu);
    warnings_->warnings.clear();
  }
  NDQ_ASSIGN_OR_RETURN(EntryList out, EvaluateNode(query, trace));
  Result<std::vector<Entry>> entries =
      ReadEntryList(coordinator_disk_.get(), out);
  Status freed = FreeRun(coordinator_disk_.get(), &out);
  // A read error is the primary failure; a free error only matters when
  // the read itself succeeded.
  if (!entries.ok()) return entries;
  NDQ_RETURN_IF_ERROR(freed);
  return entries;
}

namespace {

/// Coordinator-side view of the fleet for the cost model: estimates are
/// summed over every server's own estimates, which keeps them upper
/// bounds on the merged directory (entries live on exactly one server).
/// It carries no merged statistics (stats() stays nullptr), so the
/// optimizer only uses the servers' range geometry; scanning through it
/// is not supported — it exists purely for estimation.
class FleetSource : public EntrySource {
 public:
  explicit FleetSource(
      const std::vector<std::unique_ptr<DirectoryServer>>& servers)
      : servers_(servers) {}

  Status ScanRange(std::string_view, std::string_view,
                   const std::function<Status(std::string_view)>&)
      const override {
    return Status::NotSupported(
        "FleetSource is an estimation-only view of the fleet");
  }

  uint64_t num_entries() const override {
    uint64_t n = 0;
    for (const auto& s : servers_) n += s->num_entries();
    return n;
  }

  uint64_t EstimateRangeRecords(std::string_view start_key,
                                std::string_view end_key) const override {
    uint64_t n = 0;
    for (const auto& s : servers_) {
      n += s->store().EstimateRangeRecords(start_key, end_key);
    }
    return n;
  }

  uint64_t EstimateRangePages(std::string_view start_key,
                              std::string_view end_key) const override {
    uint64_t n = 0;
    for (const auto& s : servers_) {
      n += s->store().EstimateRangePages(start_key, end_key);
    }
    return n;
  }

 private:
  const std::vector<std::unique_ptr<DirectoryServer>>& servers_;
};

}  // namespace

Result<std::vector<std::vector<Entry>>> DistributedDirectory::EvaluateBatch(
    const std::vector<QueryPtr>& queries, size_t cache_capacity_pages) {
  FleetSource fleet(servers_);
  std::vector<QueryPtr> canon;
  canon.reserve(queries.size());
  for (const QueryPtr& q : queries) {
    if (q == nullptr) return Status::InvalidArgument("null query in batch");
    QueryPtr c = RewriteQuery(q);
    if (optimize_) c = OptimizeQuery(fleet, c).plan;
    canon.push_back(std::move(c));
  }
  PlanCensus census = AnalyzeBatch(canon);
  SharedOperands shared{census.SharedKeys()};
  OperandCache cache(coordinator_disk_.get(), cache_capacity_pages);
  batch_cache_ = &cache;
  batch_shared_ = &shared;
  std::vector<std::vector<Entry>> results;
  results.reserve(canon.size());
  Status failed;
  for (const QueryPtr& q : canon) {
    Result<std::vector<Entry>> r = Evaluate(*q);
    if (!r.ok()) {
      failed = r.status();
      break;
    }
    results.push_back(r.TakeValue());
  }
  batch_cache_ = nullptr;
  batch_shared_ = nullptr;
  // `cache` now clears itself, returning its pages to the coordinator.
  NDQ_RETURN_IF_ERROR(failed);
  return results;
}

std::vector<DegradationWarning> DistributedDirectory::last_warnings()
    const {
  std::lock_guard<std::mutex> lock(warnings_->mu);
  return warnings_->warnings;
}

void DistributedDirectory::set_parallelism(size_t n) {
  if (n <= 1) {
    pool_.reset();
    return;
  }
  pool_ = std::make_unique<ThreadPool>(n);
}

void DistributedDirectory::ResetStats() {
  net_.Reset();
  coordinator_disk_->ResetStats();
  for (auto& s : servers_) s->disk()->ResetStats();
}

}  // namespace ndq
