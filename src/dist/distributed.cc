#include "dist/distributed.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "dist/merge.h"
#include "exec/atomic.h"
#include "exec/boolean.h"
#include "exec/embedded_ref.h"
#include "exec/hierarchy.h"
#include "query/fingerprint.h"
#include "query/optimize.h"
#include "query/rewrite.h"
#include "storage/external_sort.h"
#include "storage/serde.h"

namespace ndq {

namespace {

// SplitMix64: cheap, well-mixed hash for the backoff jitter. Not
// cryptographic — it only has to decorrelate concurrent retry loops.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

DirectoryServer::DirectoryServer(std::string name, Dn context,
                                 size_t page_size)
    : name_(std::move(name)),
      context_(std::move(context)),
      disk_(std::make_unique<SimDisk>(page_size)) {}

Result<DistributedDirectory> DistributedDirectory::Build(
    const DirectoryInstance& global, const TopologyConfig& topology) {
  DistributedDirectory dist;
  NDQ_ASSIGN_OR_RETURN(dist.routing_, RoutingTable::Resolve(topology));
  dist.coordinator_disk_ = std::make_unique<SimDisk>(topology.page_size);
  const size_t num_shards = dist.routing_.num_shards();

  // Partition: each entry to the shard with the deepest covering context.
  std::vector<DirectoryInstance> parts;
  parts.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    parts.emplace_back(global.schema(), /*validate=*/false);
  }
  for (const auto& [key, entry] : global) {
    size_t owner = dist.routing_.OwnerOf(key);
    if (owner == RoutingTable::kNone) {
      return Status::InvalidArgument("no naming context covers entry " +
                                     entry.dn().ToString());
    }
    NDQ_RETURN_IF_ERROR(parts[owner].Add(entry));
  }

  // Replication: bulk-load each shard's partition onto R identical
  // replicas, each with its own disk. A single-replica shard's replica
  // keeps the plain shard name, so legacy (pre-replication) callers see
  // the same server names they always did.
  for (size_t i = 0; i < num_shards; ++i) {
    std::unique_ptr<Shard> shard(new Shard());
    shard->name_ = dist.routing_.name(i);
    shard->context_ = dist.routing_.context(i);
    const size_t replicas = topology.ReplicasFor(i);
    for (size_t r = 0; r < replicas; ++r) {
      std::string replica_name =
          replicas == 1 ? shard->name_
                        : shard->name_ + "/r" + std::to_string(r);
      auto rep = std::make_unique<DirectoryServer>(
          std::move(replica_name), shard->context_, topology.page_size);
      NDQ_ASSIGN_OR_RETURN(rep->store_,
                           EntryStore::BulkLoad(rep->disk_.get(), parts[i]));
      shard->replicas_.push_back(std::move(rep));
    }
    dist.shards_.push_back(std::move(shard));
  }
  return dist;
}

Result<DistributedDirectory> DistributedDirectory::Build(
    const DirectoryInstance& global,
    const std::vector<std::pair<std::string, std::string>>& contexts,
    size_t page_size) {
  return Build(global, TopologyConfig::FromContexts(contexts, page_size));
}

Shard* DistributedDirectory::FindShard(const std::string& name) {
  for (auto& s : shards_) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

std::vector<DirectoryServer*> DistributedDirectory::servers() const {
  std::vector<DirectoryServer*> out;
  for (const auto& s : shards_) {
    for (const auto& r : s->replicas_) out.push_back(r.get());
  }
  return out;
}

DirectoryServer* DistributedDirectory::FindServer(const std::string& name) {
  for (auto& s : shards_) {
    for (auto& r : s->replicas_) {
      if (r->name() == name) return r.get();
    }
  }
  return nullptr;
}

std::vector<std::string> DistributedDirectory::OwnersFor(const Dn& base,
                                                         Scope scope) const {
  std::vector<std::string> out;
  for (size_t i : routing_.OwnersFor(base, scope)) {
    out.push_back(routing_.name(i));
  }
  return out;
}

bool DistributedDirectory::AnyReplicaUp(const Shard& shard) {
  for (const auto& r : shard.replicas_) {
    if (!r->is_down()) return true;
  }
  return false;
}

Status DistributedDirectory::FetchAtomicFromShard(Shard& shard,
                                                  const Query& query,
                                                  bool want_trace,
                                                  ShardFetch* out) {
  // One request/response attempt against `replica`. Every early exit is
  // clean: a failed evaluation frees its own intermediates and a timed-out
  // result run is freed here, so a retry (or a sibling) starts fresh.
  auto attempt_one = [&](DirectoryServer* replica, bool* refused) -> Status {
    net_.messages += 2;  // request + response
    if (replica->is_down()) {
      *refused = true;
      return Status::Unavailable("replica '" + replica->name() +
                                 "' is down");
    }
    const auto start = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> replica_lock(replica->mu_);
    OpTrace server_trace;
    OpTrace* st = want_trace ? &server_trace : nullptr;
    Result<EntryList> local =
        query.op() == QueryOp::kLdap
            ? EvalLdap(replica->disk(), replica->store(), query.base(),
                       query.scope(), *query.ldap_filter(), st)
            : EvalAtomic(replica->disk(), replica->store(), query.base(),
                         query.scope(), query.filter(), st);
    out->scanned_records = server_trace.scanned_records;
    if (!local.ok()) return local.status();
    Run run = local.TakeValue();
    if (retry_policy_.timeout_micros > 0) {
      double elapsed = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      if (elapsed > static_cast<double>(retry_policy_.timeout_micros)) {
        FreeRun(replica->disk(), &run).ok();
        return Status::Unavailable("replica '" + replica->name() +
                                   "' timed out");
      }
    }
    // The sorted result STAYS on the replica's disk; the coordinator
    // streams it during the merge (dist/merge.h).
    out->replica = replica;
    out->run = std::move(run);
    return Status::OK();
  };

  const size_t num_replicas = shard.replicas_.size();
  // Read load-balancing: each fetch starts its ring walk one replica past
  // the previous fetch's start.
  const size_t start =
      shard.next_replica_.fetch_add(1, std::memory_order_relaxed) %
      num_replicas;
  const int max_attempts = std::max(1, retry_policy_.max_attempts);
  const double jitter =
      std::clamp(retry_policy_.backoff_jitter, 0.0, 1.0);
  Status last = Status::Unavailable("shard '" + shard.name() +
                                    "' has no replicas");
  for (size_t k = 0; k < num_replicas; ++k) {
    DirectoryServer* replica =
        shard.replicas_[(start + k) % num_replicas].get();
    uint64_t backoff = retry_policy_.backoff_micros;
    for (int attempt = 1;; ++attempt) {
      bool refused = false;
      last = attempt_one(replica, &refused);
      if (last.ok()) return last;
      // Only transient (Unavailable) failures are worth another attempt;
      // a corrupted page or a logic error fails immediately, because
      // neither a retry nor a sibling holding the same data can fix it.
      if (last.code() != StatusCode::kUnavailable) return last;
      // A down replica refuses instantly: fail over to a sibling now
      // instead of burning the backoff budget on a known-dead server.
      if (refused || attempt >= max_attempts) break;
      ++out->retries;
      ++net_.retries;
      if (backoff > 0) {
        uint64_t sleep_us = backoff;
        if (jitter > 0) {
          // Uniform in [0,1): subtracts up to jitter*backoff, spreading
          // the retry storms of concurrent sessions apart.
          uint64_t bits = SplitMix64(
              jitter_seq_->fetch_add(1, std::memory_order_relaxed));
          double u = static_cast<double>(bits >> 11) *
                     (1.0 / 9007199254740992.0);
          sleep_us -= static_cast<uint64_t>(
              static_cast<double>(backoff) * jitter * u);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
        backoff *= 2;
      }
    }
    // Failover: abandon this replica for the next one in the ring (if
    // any is left to try).
    if (k + 1 < num_replicas) {
      ++net_.failovers;
      ++out->failovers;
      replica->failovers_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return last;
}

namespace {

/// The pre-streaming merge: copy every stream onto `coord` first, then
/// merge the local copies (storage/external_sort.h). Kept behind
/// set_streaming_merge(false) as the byte-identity reference.
Result<Run> MaterializeAndMerge(Disk* coord, const RecordKeyFn& key_fn,
                                const std::vector<ShardStream*>& streams,
                                size_t* failed_stream) {
  std::vector<Run> local;
  auto cleanup = [&] {
    for (Run& r : local) FreeRun(coord, &r).ok();
  };
  for (size_t i = 0; i < streams.size(); ++i) {
    RunWriter writer(coord, RecordShape::kKeyed);
    std::string rec;
    while (true) {
      Result<bool> more = streams[i]->Next(&rec);
      if (!more.ok()) {
        *failed_stream = i;
        cleanup();
        return more.status();
      }
      if (!*more) break;
      Status added = writer.Add(rec);
      if (!added.ok()) {
        cleanup();
        return added;
      }
    }
    Status closed = streams[i]->Close();
    if (!closed.ok()) {
      *failed_stream = i;
      cleanup();
      return closed;
    }
    Result<Run> run = writer.Finish();
    if (!run.ok()) {
      cleanup();
      return run.status();
    }
    local.push_back(run.TakeValue());
  }
  if (local.empty()) {
    RunWriter writer(coord, RecordShape::kKeyed);
    return writer.Finish();
  }
  if (local.size() == 1) return std::move(local[0]);
  // Each shipped list is sorted; contexts are disjoint so a merge (no
  // dedup needed) restores global order.
  return MergeSortedRuns(coord, key_fn, std::move(local), /*fan_in=*/16,
                         RecordShape::kKeyed);
}

}  // namespace

Result<EntryList> DistributedDirectory::EvaluateAtomicDistributed(
    const Query& query, OpTrace* trace, EvalCtx& ctx) {
  std::vector<size_t> owner_idx =
      routing_.OwnersFor(query.base(), query.scope());
  net_.servers_contacted += owner_idx.size();
  std::vector<Shard*> owners;
  owners.reserve(owner_idx.size());
  for (size_t idx : owner_idx) owners.push_back(shards_[idx].get());

  auto key_fn = [](std::string_view rec) {
    Result<std::string_view> key = PeekEntryKey(rec);
    return key.ok() ? *key : std::string_view();
  };
  auto degrade = [&](size_t i, const Status& why) {
    // The shard stayed unavailable through every replica and retry:
    // degrade. Its contribution is dropped, the reachable shards'
    // results still merge, and the caller sees exactly what is missing
    // via the warnings.
    ++net_.degraded_results;
    if (trace != nullptr) ++trace->degraded_shards;
    std::lock_guard<std::mutex> lock(ctx.mu);
    ctx.warnings.push_back({owners[i]->name(), why.message()});
  };

  std::vector<char> excluded(owners.size(), 0);
  // The whole scatter-gather restarts when a shard dies mid-merge and
  // degradation is allowed: the dead shard is excluded and the survivors
  // re-fetch (their streams were partially drained). Terminates — every
  // round either returns or excludes at least one shard.
  while (true) {
    // Scatter: issue the atomic query to every live owning shard; with a
    // pool the shards work concurrently (slot `i` keeps results in owner
    // order, so the merge — and therefore the output — is deterministic).
    struct PerShard {
      Status status;
      ShardFetch fetch;
      IoStats io;
      bool fetched = false;
    };
    std::vector<PerShard> rs(owners.size());
    {
      ThreadPool::TaskGroup group(pool_.get());
      for (size_t i = 0; i < owners.size(); ++i) {
        if (excluded[i]) continue;
        group.Run([&, i] {
          PerShard& r = rs[i];
          // Scope the task's I/O (the replica-side scan) so it reaches
          // this leaf's trace even when the task ran on a pool worker.
          IoScope scope(nullptr, &r.io);
          r.status = FetchAtomicFromShard(*owners[i], query,
                                          trace != nullptr, &r.fetch);
          r.fetched = r.status.ok();
        });
      }
    }
    Status failed;
    for (size_t i = 0; i < owners.size(); ++i) {
      if (excluded[i]) continue;
      PerShard& r = rs[i];
      if (trace != nullptr) {
        trace->scanned_records += r.fetch.scanned_records;
        trace->retries += r.fetch.retries;
        trace->failovers += r.fetch.failovers;
        trace->io += r.io;
      }
      if (r.status.ok()) continue;
      if (allow_degraded_ && r.status.code() == StatusCode::kUnavailable) {
        degrade(i, r.status);
        excluded[i] = 1;
      } else if (failed.ok()) {
        failed = r.status;
      }
    }
    if (!failed.ok()) {
      for (PerShard& r : rs) {
        if (r.fetched) FreeRun(r.fetch.replica->disk(), &r.fetch.run).ok();
      }
      return failed;
    }

    // Gather: wrap each fetched run as a resumable stream. A mid-merge
    // read failure re-fetches the same result from a sibling replica and
    // resumes where the stream left off (dist/merge.h).
    std::vector<std::unique_ptr<ShardStream>> streams;
    std::vector<size_t> stream_owner;  // stream index -> owners index
    for (size_t i = 0; i < owners.size(); ++i) {
      if (excluded[i] || !rs[i].fetched) continue;
      Shard* shard = owners[i];
      auto refetch =
          [this, shard, &query,
           trace](uint64_t) -> Result<ShardStream::Source> {
        ShardFetch f;
        Status s =
            FetchAtomicFromShard(*shard, query, trace != nullptr, &f);
        if (trace != nullptr) {
          trace->scanned_records += f.scanned_records;
          trace->retries += f.retries;
          trace->failovers += f.failovers;
        }
        if (!s.ok()) return s;
        return ShardStream::Source{f.replica->disk(), std::move(f.run)};
      };
      streams.push_back(std::make_unique<ShardStream>(
          shard->name(),
          ShardStream::Source{rs[i].fetch.replica->disk(),
                              std::move(rs[i].fetch.run)},
          std::move(refetch)));
      stream_owner.push_back(i);
    }
    std::vector<ShardStream*> ptrs;
    ptrs.reserve(streams.size());
    for (auto& s : streams) ptrs.push_back(s.get());

    size_t failed_stream = static_cast<size_t>(-1);
    Result<Run> merged =
        streaming_merge_
            ? MergeShardStreams(coordinator_disk_.get(), key_fn, ptrs,
                                RecordShape::kKeyed, &failed_stream)
            : MaterializeAndMerge(coordinator_disk_.get(), key_fn, ptrs,
                                  &failed_stream);
    // Whatever the merge consumed crossed the network, whether or not it
    // completed; a degraded restart re-ships and re-counts honestly.
    for (ShardStream* s : ptrs) {
      net_.records_shipped += s->consumed();
      net_.bytes_shipped += s->bytes_consumed();
      if (trace != nullptr) {
        trace->shipped_records += s->consumed();
        trace->shipped_bytes += s->bytes_consumed();
      }
    }
    if (merged.ok()) return merged;
    for (ShardStream* s : ptrs) s->Close().ok();
    if (allow_degraded_ &&
        merged.status().code() == StatusCode::kUnavailable &&
        failed_stream < stream_owner.size()) {
      size_t i = stream_owner[failed_stream];
      degrade(i, merged.status());
      excluded[i] = 1;
      continue;  // re-fetch the survivors and merge again
    }
    return merged.status();
  }
}

Shard* DistributedDirectory::SingleOwner(const Query& query) {
  Shard* owner = nullptr;
  for (const Query* leaf : query.Leaves()) {
    std::vector<size_t> owners =
        routing_.OwnersFor(leaf->base(), leaf->scope());
    if (owners.size() != 1) return nullptr;
    Shard* s = shards_[owners[0]].get();
    if (owner != nullptr && owner != s) return nullptr;
    owner = s;
  }
  return owner;
}

Result<EntryList> DistributedDirectory::ShipWholeQuery(const Query& query,
                                                       Shard* shard,
                                                       OpTrace* trace) {
  // The chosen replica evaluates the whole tree locally (on its own disk
  // and scratch space) and only the final result crosses the network.
  ++net_.queries_shipped;
  ++net_.servers_contacted;
  auto attempt_one = [&](DirectoryServer* server) -> Result<EntryList> {
    net_.messages += 2;
    if (server->is_down()) {
      return Status::Unavailable("replica '" + server->name() +
                                 "' is down");
    }
    std::lock_guard<std::mutex> server_lock(server->mu_);
    Evaluator remote(server->disk(), &server->store(), options_);
    NDQ_ASSIGN_OR_RETURN(EntryList local, remote.Evaluate(query, trace));
    ScopedRun local_guard(server->disk(), std::move(local));
    RunWriter writer(coordinator_disk_.get(), RecordShape::kKeyed);
    RunReader reader(server->disk(), local_guard.get());
    std::string rec;
    uint64_t recs = 0, bytes = 0;
    while (true) {
      NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
      if (!more) break;
      bytes += rec.size();
      ++recs;
      NDQ_RETURN_IF_ERROR(writer.Add(rec));
    }
    net_.bytes_shipped += bytes;
    net_.records_shipped += recs;
    if (trace != nullptr) {
      // The remote evaluator filled `trace` (children included); record
      // the final-result shipment here — under parallelism there is no
      // stable global counter window to recover it from.
      trace->shipped_records = recs;
      trace->shipped_bytes = bytes;
    }
    NDQ_RETURN_IF_ERROR(local_guard.Free());
    return writer.Finish();
  };

  const size_t num_replicas = shard->replicas_.size();
  const size_t start =
      shard->next_replica_.fetch_add(1, std::memory_order_relaxed) %
      num_replicas;
  uint64_t failovers = 0;
  Status last = Status::Unavailable("shard '" + shard->name() +
                                    "' has no replicas");
  for (size_t k = 0; k < num_replicas; ++k) {
    DirectoryServer* server =
        shard->replicas_[(start + k) % num_replicas].get();
    // A failed remote evaluation may have partially filled the trace;
    // start it over for each replica (the successful one refills it).
    if (trace != nullptr && k > 0) *trace = OpTrace();
    Result<EntryList> out = attempt_one(server);
    if (out.ok()) {
      if (trace != nullptr) trace->failovers += failovers;
      return out;
    }
    last = out.status();
    if (last.code() != StatusCode::kUnavailable) return last;
    if (k + 1 < num_replicas) {
      ++net_.failovers;
      ++failovers;
      server->failovers_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return last;
}

IoStats DistributedDirectory::FleetIo() const {
  IoStats total = coordinator_disk_->stats();
  for (const auto& shard : shards_) {
    for (const auto& r : shard->replicas_) {
      const IoStats& d = r->disk_->stats();
      total.page_reads += d.page_reads;
      total.page_writes += d.page_writes;
      total.pages_allocated += d.pages_allocated;
      total.pages_freed += d.pages_freed;
      total.faults_injected += d.faults_injected;
    }
  }
  return total;
}

namespace {

// Shipped subtrees are traced by the remote (sequential) evaluator, which
// does not know pool worker ids; stamp the subtree with the thread that
// drove the shipment so SubtreeWorkers() stays meaningful.
void StampWorker(OpTrace* t, uint32_t worker) {
  t->worker = worker;
  for (OpTrace& child : t->children) StampWorker(&child, worker);
}

}  // namespace

Result<EntryList> DistributedDirectory::EvaluateNode(const Query& query,
                                                     OpTrace* trace,
                                                     EvalCtx& ctx) {
  if (trace == nullptr) {
    return EvaluateNodeImpl(query, nullptr, nullptr, ctx);
  }
  *trace = OpTrace();
  const auto start = std::chrono::steady_clock::now();
  // Attribution via this thread's IoScope, not fleet-wide counter
  // snapshots: under set_parallelism a sibling subtree's concurrent I/O
  // would land inside this node's snapshot window.
  bool shipped_whole = false;
  IoStats self;
  Result<EntryList> out = [&] {
    IoScope scope(nullptr, &self);
    return EvaluateNodeImpl(query, trace, &shipped_whole, ctx);
  }();
  if (!out.ok()) return out;
  trace->label = QueryNodeLabel(query);
  trace->op = query.op();
  if (shipped_whole) {
    // The remote evaluation + shipping all ran on this thread, so `self`
    // already covers the whole subtree; the children keep the remote
    // evaluator's per-node attribution.
    trace->io = self;
    StampWorker(trace, ThreadPool::current_worker_id());
  } else {
    // trace->io may hold pre-attributed worker-side I/O (atomic fan-out);
    // add this thread's own traffic and the children's subtrees. Shipping
    // counters are cumulative like io, so roll the children's up too.
    trace->io += self;
    for (const OpTrace& child : trace->children) {
      trace->io += child.io;
      trace->shipped_records += child.shipped_records;
      trace->shipped_bytes += child.shipped_bytes;
    }
    trace->worker = ThreadPool::current_worker_id();
  }
  trace->wall_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  trace->output_records = out->num_records;
  trace->output_pages = out->pages.size();
  return out;
}

Result<EntryList> DistributedDirectory::EvaluateNodeImpl(
    const Query& query, OpTrace* trace, bool* shipped_whole, EvalCtx& ctx) {
  // Inside a batch, a sub-plan the census marked shared is served from —
  // and on first sight published to — the per-batch coordinator cache:
  // later occurrences cost a local ~2*out-page copy instead of another
  // round of server contacts and result shipping.
  std::string shared_key;
  if (ctx.batch_cache != nullptr && ctx.batch_shared != nullptr) {
    std::string key = QueryFingerprint(query);
    if (ctx.batch_shared->contains(key)) {
      EntryList cached;
      NDQ_ASSIGN_OR_RETURN(bool hit, ctx.batch_cache->Lookup(key, &cached));
      if (hit) {
        if (trace != nullptr) {
          trace->cache_hits = 1;
          FillTraceSkeleton(query, trace);
        }
        return cached;
      }
      shared_key = std::move(key);
    }
  }
  Result<EntryList> out =
      EvaluateNodeDispatch(query, trace, shipped_whole, ctx);
  if (!out.ok() || shared_key.empty()) return out;
  // Insert copies the list and absorbs I/O failures during the copy (the
  // entry is simply not cached); anything else is an invariant violation
  // — propagate it, but free the computed list first.
  Status cs = ctx.batch_cache->Insert(shared_key, *out);
  if (!cs.ok()) {
    ScopedRun computed(coordinator_disk_.get(), out.TakeValue());
    return cs;
  }
  if (trace != nullptr) trace->cache_misses = 1;
  return out;
}

Result<EntryList> DistributedDirectory::EvaluateNodeDispatch(
    const Query& query, OpTrace* trace, bool* shipped_whole, EvalCtx& ctx) {
  Disk* disk = coordinator_disk_.get();
  if (query_shipping_ && !query.is_atomic() &&
      query.op() != QueryOp::kLdap) {
    Shard* owner = SingleOwner(query);
    if (owner != nullptr && AnyReplicaUp(*owner)) {
      Result<EntryList> whole = ShipWholeQuery(query, owner, trace);
      if (whole.ok() ||
          whole.status().code() != StatusCode::kUnavailable) {
        if (shipped_whole != nullptr) *shipped_whole = true;
        return whole;
      }
      // Every replica failed the shipment transiently mid-flight: fall
      // back to the per-atomic path below, which retries each shard
      // independently and can degrade instead of failing. Start the
      // trace over — the aborted remote evaluation may have partially
      // filled it.
      ++net_.retries;
      if (trace != nullptr) *trace = OpTrace();
    }
  }
  OpTrace* t1 = nullptr;
  OpTrace* t2 = nullptr;
  OpTrace* t3 = nullptr;
  if (trace != nullptr) {
    size_t n = (query.q1() != nullptr ? 1 : 0) +
               (query.q2() != nullptr ? 1 : 0) +
               (query.q3() != nullptr ? 1 : 0);
    trace->children.resize(n);
    if (n > 0) t1 = &trace->children[0];
    if (n > 1) t2 = &trace->children[1];
    if (n > 2) t3 = &trace->children[2];
  }
  switch (query.op()) {
    case QueryOp::kAtomic:
    case QueryOp::kLdap:
      return EvaluateAtomicDistributed(query, trace, ctx);
    case QueryOp::kSimpleAgg: {
      NDQ_ASSIGN_OR_RETURN(EntryList r1,
                           EvaluateNode(*query.q1(), t1, ctx));
      ScopedRun l1(disk, std::move(r1));
      Result<EntryList> out =
          EvalSimpleAgg(disk, l1.get(), *query.agg(), trace);
      if (!out.ok()) return out;  // l1 freed by its destructor
      ScopedRun out_guard(disk, out.TakeValue());
      NDQ_RETURN_IF_ERROR(l1.Free());
      return out_guard.Release();
    }
    default:
      break;
  }

  // Multi-operand operators: evaluate the operand sub-plans concurrently
  // (coordinator-side fork/join; each sub-plan ships from its shards
  // independently), join, then run the operator on this thread.
  ScopedRun l1, l2, l3;
  Status s1, s2, s3;
  auto eval_into = [this, &ctx](const Query& q, OpTrace* t, ScopedRun* out,
                                Status* status) {
    Result<EntryList> r = EvaluateNode(q, t, ctx);
    if (!r.ok()) {
      *status = r.status();
      return;
    }
    *out = ScopedRun(coordinator_disk_.get(), r.TakeValue());
  };
  {
    ThreadPool::TaskGroup group(pool_.get());
    group.Run([&] { eval_into(*query.q1(), t1, &l1, &s1); });
    group.Run([&] { eval_into(*query.q2(), t2, &l2, &s2); });
    if (query.q3() != nullptr) {
      group.Run([&] { eval_into(*query.q3(), t3, &l3, &s3); });
    }
  }
  NDQ_RETURN_IF_ERROR(s1);
  NDQ_RETURN_IF_ERROR(s2);
  NDQ_RETURN_IF_ERROR(s3);

  Result<EntryList> out = Status::Internal("unreachable");
  switch (query.op()) {
    case QueryOp::kAnd:
    case QueryOp::kOr:
    case QueryOp::kDiff:
      out = EvalBoolean(disk, query.op(), l1.get(), l2.get(), trace);
      break;
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants:
      out = EvalHierarchy(disk, query.op(), l1.get(), l2.get(), nullptr,
                          query.agg(), options_, trace);
      break;
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants:
      out = EvalHierarchy(disk, query.op(), l1.get(), l2.get(), &l3.get(),
                          query.agg(), options_, trace);
      break;
    case QueryOp::kValueDn:
    case QueryOp::kDnValue:
      out = EvalEmbeddedRef(disk, query.op(), l1.get(), l2.get(),
                            query.ref_attr(), query.agg(), options_, trace);
      break;
    default:
      return Status::Internal("unreachable query op in distributed eval");
  }
  // Protect the operator's output while the operand guards free, so a
  // failed Free cannot leak it; a failed operator frees the operands via
  // the guards' destructors.
  if (!out.ok()) return out;
  ScopedRun out_guard(disk, out.TakeValue());
  NDQ_RETURN_IF_ERROR(l1.Free());
  NDQ_RETURN_IF_ERROR(l2.Free());
  NDQ_RETURN_IF_ERROR(l3.Free());
  return out_guard.Release();
}

Result<std::vector<Entry>> DistributedDirectory::Execute(
    const Query& query, OpTrace* trace,
    std::vector<DegradationWarning>* warnings, OperandCache* batch_cache,
    const SharedOperands* batch_shared) {
  EvalCtx ctx;
  ctx.batch_cache = batch_cache;
  ctx.batch_shared = batch_shared;
  if (warnings != nullptr) warnings->clear();
  Result<EntryList> out = EvaluateNode(query, trace, ctx);
  if (warnings != nullptr) *warnings = std::move(ctx.warnings);
  if (!out.ok()) return out.status();
  Result<std::vector<Entry>> entries =
      ReadEntryList(coordinator_disk_.get(), *out);
  Status freed = FreeRun(coordinator_disk_.get(), &*out);
  // A read error is the primary failure; a free error only matters when
  // the read itself succeeded.
  if (!entries.ok()) return entries;
  NDQ_RETURN_IF_ERROR(freed);
  return entries;
}

Result<std::vector<Entry>> DistributedDirectory::Evaluate(
    const Query& query, OpTrace* trace) {
  std::vector<DegradationWarning> warnings;
  Result<std::vector<Entry>> out = Execute(query, trace, &warnings);
  std::lock_guard<std::mutex> lock(warnings_->mu);
  warnings_->warnings = std::move(warnings);
  return out;
}

namespace {

/// Coordinator-side view of the fleet for the cost model: estimates are
/// summed over every shard's own estimates (replica 0 — replicas are
/// identical), which keeps them upper bounds on the merged directory
/// (entries live on exactly one shard). It carries no merged statistics
/// (stats() stays nullptr), so the optimizer only uses the shards' range
/// geometry; scanning through it is not supported — it exists purely for
/// estimation.
class FleetSource : public EntrySource {
 public:
  explicit FleetSource(const std::vector<std::unique_ptr<Shard>>& shards)
      : shards_(shards) {}

  Status ScanRange(std::string_view, std::string_view,
                   const std::function<Status(std::string_view)>&)
      const override {
    return Status::NotSupported(
        "FleetSource is an estimation-only view of the fleet");
  }

  uint64_t num_entries() const override {
    uint64_t n = 0;
    for (const auto& s : shards_) n += s->num_entries();
    return n;
  }

  uint64_t EstimateRangeRecords(std::string_view start_key,
                                std::string_view end_key) const override {
    uint64_t n = 0;
    for (const auto& s : shards_) {
      n += s->replica(0)->store().EstimateRangeRecords(start_key, end_key);
    }
    return n;
  }

  uint64_t EstimateRangePages(std::string_view start_key,
                              std::string_view end_key) const override {
    uint64_t n = 0;
    for (const auto& s : shards_) {
      n += s->replica(0)->store().EstimateRangePages(start_key, end_key);
    }
    return n;
  }

 private:
  const std::vector<std::unique_ptr<Shard>>& shards_;
};

}  // namespace

const EntrySource& DistributedDirectory::estimation_source() {
  if (fleet_source_ == nullptr) {
    fleet_source_ = std::make_unique<FleetSource>(shards_);
  }
  return *fleet_source_;
}

Result<std::vector<std::vector<Entry>>> DistributedDirectory::EvaluateBatch(
    const std::vector<QueryPtr>& queries, size_t cache_capacity_pages) {
  const EntrySource& fleet = estimation_source();
  std::vector<QueryPtr> canon;
  canon.reserve(queries.size());
  for (const QueryPtr& q : queries) {
    if (q == nullptr) return Status::InvalidArgument("null query in batch");
    QueryPtr c = RewriteQuery(q);
    if (optimize_) c = OptimizeQuery(fleet, c).plan;
    canon.push_back(std::move(c));
  }
  PlanCensus census = AnalyzeBatch(canon);
  SharedOperands shared{census.SharedKeys()};
  OperandCache cache(coordinator_disk_.get(), cache_capacity_pages);
  std::vector<std::vector<Entry>> results;
  results.reserve(canon.size());
  Status failed;
  std::vector<DegradationWarning> warnings;
  for (const QueryPtr& q : canon) {
    Result<std::vector<Entry>> r =
        Execute(*q, nullptr, &warnings, &cache, &shared);
    if (!r.ok()) {
      failed = r.status();
      break;
    }
    results.push_back(r.TakeValue());
  }
  {
    // Legacy contract: last_warnings reflects the batch's final query.
    std::lock_guard<std::mutex> lock(warnings_->mu);
    warnings_->warnings = std::move(warnings);
  }
  // `cache` now clears itself, returning its pages to the coordinator.
  NDQ_RETURN_IF_ERROR(failed);
  return results;
}

std::vector<DegradationWarning> DistributedDirectory::last_warnings()
    const {
  std::lock_guard<std::mutex> lock(warnings_->mu);
  return warnings_->warnings;
}

std::map<std::string, uint64_t> DistributedDirectory::ReplicaFailovers()
    const {
  std::map<std::string, uint64_t> out;
  for (const auto& shard : shards_) {
    for (const auto& r : shard->replicas_) {
      uint64_t n = r->failovers();
      if (n > 0) out[r->name()] = n;
    }
  }
  return out;
}

void DistributedDirectory::set_parallelism(size_t n) {
  if (n <= 1) {
    pool_.reset();
    return;
  }
  pool_ = std::make_unique<ThreadPool>(n);
}

void DistributedDirectory::ResetStats() {
  net_.Reset();
  coordinator_disk_->ResetStats();
  for (const auto& shard : shards_) {
    for (const auto& r : shard->replicas_) {
      r->disk()->ResetStats();
      r->failovers_.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace ndq
