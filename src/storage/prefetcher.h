// Scan prefetch over a run's page list.
//
// Sorted-run scans are the dominant cold I/O in every operator pipeline,
// and their access order is fully known up front: a Run's extent table
// (run.pages) lists exactly the pages a sequential reader will touch, in
// order. The Prefetcher exploits that: when its disk has an async engine
// attached (Disk::SetIoDepth), it keeps a window of up to io_depth reads
// in flight ahead of the consumer, so the consumer's LoadPage usually
// finds the next page already resident (a prefetch hit) instead of
// stalling a full device latency (an io-wait).
//
// Accounting (see disk.h): the window's physical reads are uncounted;
// Read() runs Disk::FinishAsyncRead at consumption, so counted page reads
// and fault-injection op order are byte-identical to a synchronous scan.
// Pages fetched ahead but never consumed (early-terminated range scans,
// abandoned readers) are counted as prefetch_wasted — real work the
// simulation deliberately does NOT charge as a transfer, because the
// synchronous execution would never have issued it.
//
// Adaptive backoff: when the device's recent reads complete faster than
// an async-queue round trip (Disk::PrefetchWorthwhile — e.g. a FileDisk
// whose pages are warm in the OS cache), the window stops submitting and
// misses are served by plain synchronous ReadPage, which performs the
// same observable sequence. Prefetch then costs nothing when it cannot
// help, instead of adding handoff latency to every page.
//
// Thread-compatible (one consumer), like the RunReader that owns it.

#ifndef NDQ_STORAGE_PREFETCHER_H_
#define NDQ_STORAGE_PREFETCHER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "storage/async_disk.h"

namespace ndq {

class Disk;

class Prefetcher {
 public:
  /// Streams `*pages` (not owned; must outlive the prefetcher) on `disk`.
  /// Degrades to plain synchronous ReadPage when the disk has no async
  /// engine, so callers can construct one unconditionally.
  Prefetcher(Disk* disk, const std::vector<PageId>* pages);

  /// Cancels the window; completed-but-unconsumed fetches count as
  /// prefetch_wasted.
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Reads pages[idx] into `buf` (page_size bytes) with sync-identical
  /// accounting, then tops the prefetch window back up from idx+1.
  /// Supports out-of-order idx (SeekTo): skipped-over in-flight pages
  /// stay in the window in case the scan passes them later.
  Status Read(size_t idx, uint8_t* buf);

  bool async() const { return async_ != nullptr; }

 private:
  void TopUpWindow();
  void DropWindow();

  Disk* const disk_;
  const std::vector<PageId>* const pages_;
  AsyncDisk* const async_;  // null = sync fallback
  /// In-flight/completed fetches by page index.
  std::map<size_t, AsyncDisk::RequestHandle> window_;
  /// Next page index the window will submit.
  size_t next_submit_ = 0;
};

}  // namespace ndq

#endif  // NDQ_STORAGE_PREFETCHER_H_
