#include "storage/serde.h"

namespace ndq {

void SerializeValue(const Value& value, std::string* out) {
  ByteWriter w(out);
  w.PutU8(static_cast<uint8_t>(value.kind()));
  if (value.is_int()) {
    w.PutSigned(value.AsInt());
  } else {
    w.PutString(value.AsString());
  }
}

Result<Value> DeserializeValue(ByteReader* reader) {
  NDQ_ASSIGN_OR_RETURN(uint8_t kind_byte, reader->GetU8());
  if (kind_byte > static_cast<uint8_t>(TypeKind::kDn)) {
    return Status::Corruption("bad value kind byte");
  }
  TypeKind kind = static_cast<TypeKind>(kind_byte);
  switch (kind) {
    case TypeKind::kInt: {
      NDQ_ASSIGN_OR_RETURN(int64_t v, reader->GetSigned());
      return Value::Int(v);
    }
    case TypeKind::kString: {
      NDQ_ASSIGN_OR_RETURN(std::string_view s, reader->GetString());
      return Value::String(std::string(s));
    }
    case TypeKind::kDn: {
      NDQ_ASSIGN_OR_RETURN(std::string_view s, reader->GetString());
      return Value::DnRef(std::string(s));
    }
  }
  return Status::Corruption("unreachable value kind");
}

void SerializeEntry(const Entry& entry, std::string* out) {
  ByteWriter w(out);
  w.PutString(entry.HierKey());
  w.PutVarint(entry.attributes().size());
  for (const auto& [attr, vals] : entry.attributes()) {
    w.PutString(attr);
    w.PutVarint(vals.size());
    for (const Value& v : vals) SerializeValue(v, out);
  }
}

Result<Entry> DeserializeEntry(std::string_view record) {
  ByteReader r(record);
  NDQ_ASSIGN_OR_RETURN(std::string_view key, r.GetString());
  NDQ_ASSIGN_OR_RETURN(Dn dn, Dn::FromHierKey(key));
  Entry entry(std::move(dn));
  NDQ_ASSIGN_OR_RETURN(uint64_t nattrs, r.GetVarint());
  for (uint64_t i = 0; i < nattrs; ++i) {
    NDQ_ASSIGN_OR_RETURN(std::string_view attr, r.GetString());
    std::string attr_name(attr);
    NDQ_ASSIGN_OR_RETURN(uint64_t nvals, r.GetVarint());
    for (uint64_t j = 0; j < nvals; ++j) {
      NDQ_ASSIGN_OR_RETURN(Value v, DeserializeValue(&r));
      entry.AddValue(attr_name, std::move(v));
    }
  }
  return entry;
}

Result<std::string_view> PeekEntryKey(std::string_view record) {
  ByteReader r(record);
  return r.GetString();
}

}  // namespace ndq
