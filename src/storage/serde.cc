#include "storage/serde.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ndq {

namespace {

// -1 = uninitialized, 0 = raw, 1 = compressed.
std::atomic<int> g_page_compression{-1};

int InitPageCompression() {
  const char* env = std::getenv("NDQ_PAGE_FORMAT");
  int mode = (env != nullptr && std::strcmp(env, "raw") == 0) ? 0 : 1;
  int expected = -1;
  g_page_compression.compare_exchange_strong(expected, mode,
                                             std::memory_order_relaxed);
  return g_page_compression.load(std::memory_order_relaxed);
}

}  // namespace

bool PageCompressionEnabled() {
  int mode = g_page_compression.load(std::memory_order_relaxed);
  if (mode < 0) mode = InitPageCompression();
  return mode == 1;
}

void SetPageCompression(bool enabled) {
  g_page_compression.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

PageFormat ResolvePageFormat(RecordShape shape) {
  if (!PageCompressionEnabled()) return PageFormat::kRaw;
  return shape == RecordShape::kKeyed ? PageFormat::kKeyPrefix
                                      : PageFormat::kPrefix;
}

void AppendOrderedInt64(int64_t v, std::string* out) {
  uint64_t u = static_cast<uint64_t>(v) ^ (uint64_t{1} << 63);
  for (int i = 7; i >= 0; --i) {
    out->push_back(static_cast<char>((u >> (8 * i)) & 0xff));
  }
}

int64_t DecodeOrderedInt64(std::string_view bytes) {
  uint64_t u = 0;
  for (size_t i = 0; i < 8 && i < bytes.size(); ++i) {
    u = (u << 8) | static_cast<uint8_t>(bytes[i]);
  }
  return static_cast<int64_t>(u ^ (uint64_t{1} << 63));
}

void AppendOrderedValueKey(const Value& value, std::string* out) {
  // Kind ranks match TypeKind's numeric order, which is how
  // Value::operator< ranks kinds.
  out->push_back(static_cast<char>(value.kind()));
  if (value.is_int()) {
    AppendOrderedInt64(value.AsInt(), out);
  } else {
    out->append(value.AsString());
  }
}

void SerializeValue(const Value& value, std::string* out) {
  ByteWriter w(out);
  w.PutU8(static_cast<uint8_t>(value.kind()));
  if (value.is_int()) {
    w.PutSigned(value.AsInt());
  } else {
    w.PutString(value.AsString());
  }
}

Result<Value> DeserializeValue(ByteReader* reader) {
  NDQ_ASSIGN_OR_RETURN(uint8_t kind_byte, reader->GetU8());
  if (kind_byte > static_cast<uint8_t>(TypeKind::kDn)) {
    return Status::Corruption("bad value kind byte");
  }
  TypeKind kind = static_cast<TypeKind>(kind_byte);
  switch (kind) {
    case TypeKind::kInt: {
      NDQ_ASSIGN_OR_RETURN(int64_t v, reader->GetSigned());
      return Value::Int(v);
    }
    case TypeKind::kString: {
      NDQ_ASSIGN_OR_RETURN(std::string_view s, reader->GetString());
      return Value::String(std::string(s));
    }
    case TypeKind::kDn: {
      NDQ_ASSIGN_OR_RETURN(std::string_view s, reader->GetString());
      return Value::DnRef(std::string(s));
    }
  }
  return Status::Corruption("unreachable value kind");
}

void SerializeEntry(const Entry& entry, std::string* out) {
  ByteWriter w(out);
  w.PutString(entry.HierKey());
  w.PutVarint(entry.attributes().size());
  for (const auto& [attr, vals] : entry.attributes()) {
    w.PutString(attr);
    w.PutVarint(vals.size());
    for (const Value& v : vals) SerializeValue(v, out);
  }
}

Result<Entry> DeserializeEntry(std::string_view record) {
  ByteReader r(record);
  NDQ_ASSIGN_OR_RETURN(std::string_view key, r.GetString());
  NDQ_ASSIGN_OR_RETURN(Dn dn, Dn::FromHierKey(key));
  Entry entry(std::move(dn));
  NDQ_ASSIGN_OR_RETURN(uint64_t nattrs, r.GetVarint());
  for (uint64_t i = 0; i < nattrs; ++i) {
    NDQ_ASSIGN_OR_RETURN(std::string_view attr, r.GetString());
    std::string attr_name(attr);
    NDQ_ASSIGN_OR_RETURN(uint64_t nvals, r.GetVarint());
    for (uint64_t j = 0; j < nvals; ++j) {
      NDQ_ASSIGN_OR_RETURN(Value v, DeserializeValue(&r));
      entry.AddValue(attr_name, std::move(v));
    }
  }
  return entry;
}

Result<std::string_view> PeekEntryKey(std::string_view record) {
  ByteReader r(record);
  return r.GetString();
}

}  // namespace ndq
