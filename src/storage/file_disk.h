// A Disk backed by one real file: page i lives at byte offset
// i * page_size(), accessed with positioned pread/pwrite.
//
// SimDisk answers "how many transfers" — the paper's metric. FileDisk
// answers "what does that cost on actual hardware": the same query runs
// against the same Disk interface, every counter and fault hook behaves
// identically (the accounting lives in the Disk base class), but each
// physical page op is a real syscall against the filesystem. bench_io
// runs both side by side so BENCH_io.json reports simulated page counts
// next to real-file wall-clock, and a CI job runs the whole tier-1 suite
// on this backend (NDQ_DISK_BACKEND=file) to keep it honest.
//
// Allocation state (live bitmap + free list) is kept in memory only: a
// FileDisk is scratch space with the lifetime of the process, not a
// recoverable store. `open_existing` reopens a file written earlier in
// the SAME process lifetime (engine restart tests); every page already in
// the file is then considered live.
//
// Thread safety: matches SimDisk. The bitmap/free-list sit under one
// mutex; the pread/pwrite itself runs outside it (positioned I/O is
// atomic per call), so concurrent transfers to distinct pages overlap.
//
// The constructor never fails (Engine owns disks unconditionally);
// open() errors are stored and surfaced by the first page operation.

#ifndef NDQ_STORAGE_FILE_DISK_H_
#define NDQ_STORAGE_FILE_DISK_H_

#include <mutex>
#include <string>
#include <vector>

#include "storage/disk.h"

namespace ndq {

class FileDisk : public Disk {
 public:
  /// Creates (or with `open_existing` reopens) the backing file at `path`.
  /// Check init_status() — or just let the first I/O report it.
  explicit FileDisk(const std::string& path,
                    size_t page_size = kDefaultPageSize,
                    bool open_existing = false);
  ~FileDisk() override;

  const Status& init_status() const { return init_; }
  const std::string& path() const { return path_; }

 protected:
  Result<PageId> DoAllocate() override;
  Status DoFree(PageId id) override;
  Status DoRead(PageId id, uint8_t* buf) override;
  Status DoWrite(PageId id, const uint8_t* buf) override;
  /// Flushes the backing file's data to stable storage (fdatasync).
  Status DoSync() override;

 private:
  /// Liveness check shared by read/write/free. Returns the slot's
  /// validity without touching the file.
  Status CheckLive(PageId id) const;

  std::string path_;
  Status init_;
  int fd_ = -1;

  mutable std::mutex mu_;  // live_ + free_list_
  std::vector<bool> live_;
  std::vector<PageId> free_list_;
};

}  // namespace ndq

#endif  // NDQ_STORAGE_FILE_DISK_H_
