#include "storage/external_sort.h"

#include <algorithm>
#include <memory>
#include <queue>

#include "core/head64.h"

namespace ndq {
namespace {

struct HeapItem {
  std::string record;
  std::string key;
  uint64_t head;  // ExtractHead64(key), cached at refill
  size_t source;
};

struct HeapCmp {
  bool operator()(const HeapItem& a, const HeapItem& b) const {
    // min-heap; head words decide almost every sift comparison.
    if (a.head != b.head) return a.head > b.head;
    return a.key > b.key;
  }
};

// k-way merges one group of sorted runs into a fresh run (inputs untouched).
Result<Run> MergeGroup(Disk* disk, const RecordKeyFn& key_fn,
                       const Run* runs, size_t count, RecordShape shape) {
  std::vector<std::unique_ptr<RunReader>> readers;
  readers.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    readers.push_back(std::make_unique<RunReader>(disk, runs[i]));
  }
  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapCmp> heap;
  auto refill = [&](size_t src) -> Status {
    std::string rec;
    NDQ_ASSIGN_OR_RETURN(bool more, readers[src]->Next(&rec));
    if (more) {
      std::string key(key_fn(rec));
      uint64_t head = ExtractHead64(key);
      heap.push(HeapItem{std::move(rec), std::move(key), head, src});
    }
    return Status::OK();
  };
  for (size_t i = 0; i < readers.size(); ++i) NDQ_RETURN_IF_ERROR(refill(i));

  RunWriter writer(disk, shape);
  while (!heap.empty()) {
    HeapItem top = heap.top();
    heap.pop();
    NDQ_RETURN_IF_ERROR(writer.Add(top.record));
    NDQ_RETURN_IF_ERROR(refill(top.source));
  }
  return writer.Finish();
}

// Repeatedly merges `runs` fan_in at a time until one remains; consumes the
// inputs. Increments *passes per merge pass if non-null. On error every
// input and intermediate run is freed before the status propagates.
Result<Run> MergeToOne(Disk* disk, const RecordKeyFn& key_fn,
                       std::vector<Run> runs, size_t fan_in,
                       RecordShape shape, size_t* passes) {
  if (runs.empty()) {
    RunWriter w(disk, shape);
    return w.Finish();
  }
  auto free_all = [&](std::vector<Run>* rs) {
    for (Run& r : *rs) (void)FreeRun(disk, &r);
  };
  while (runs.size() > 1) {
    if (passes != nullptr) ++*passes;
    std::vector<Run> next;
    for (size_t i = 0; i < runs.size(); i += fan_in) {
      size_t n = std::min(fan_in, runs.size() - i);
      Result<Run> merged = MergeGroup(disk, key_fn, &runs[i], n, shape);
      if (!merged.ok()) {
        free_all(&runs);
        free_all(&next);
        return merged.status();
      }
      for (size_t j = i; j < i + n; ++j) {
        Status s = FreeRun(disk, &runs[j]);
        if (!s.ok()) {
          free_all(&runs);
          free_all(&next);
          (void)FreeRun(disk, &*merged);
          return s;
        }
      }
      next.push_back(merged.TakeValue());
    }
    runs = std::move(next);
  }
  return std::move(runs[0]);
}

}  // namespace

ExternalSorter::ExternalSorter(Disk* disk, RecordKeyFn key_fn,
                               ExternalSortOptions options)
    : disk_(disk), key_fn_(std::move(key_fn)), options_(options) {}

ExternalSorter::~ExternalSorter() {
  // Generated runs not yet handed to a (successful) Finish() are ours.
  for (Run& r : runs_) (void)FreeRun(disk_, &r);
}

Status ExternalSorter::Add(std::string_view record) {
  if (finished_) return Status::Internal("Add after Finish");
  buffer_.emplace_back(record);
  buffered_bytes_ += record.size();
  if (buffered_bytes_ >= options_.memory_budget) {
    NDQ_RETURN_IF_ERROR(SpillBuffer());
  }
  return Status::OK();
}

Status ExternalSorter::SpillBuffer() {
  if (buffer_.empty()) return Status::OK();
  // Sort an index array with precomputed head words instead of the records
  // themselves: most comparisons resolve on the head compare without
  // re-extracting keys, and records are never moved.
  struct SortItem {
    uint64_t head;
    uint32_t idx;
  };
  std::vector<SortItem> order;
  order.reserve(buffer_.size());
  for (uint32_t i = 0; i < buffer_.size(); ++i) {
    order.push_back(SortItem{ExtractHead64(key_fn_(buffer_[i])), i});
  }
  std::sort(order.begin(), order.end(),
            [this](const SortItem& a, const SortItem& b) {
              if (a.head != b.head) return a.head < b.head;
              return key_fn_(buffer_[a.idx]) < key_fn_(buffer_[b.idx]);
            });
  RunWriter writer(disk_, options_.shape);
  for (const SortItem& it : order) {
    NDQ_RETURN_IF_ERROR(writer.Add(buffer_[it.idx]));
  }
  NDQ_ASSIGN_OR_RETURN(Run run, writer.Finish());
  runs_.push_back(std::move(run));
  buffer_.clear();
  buffered_bytes_ = 0;
  return Status::OK();
}

Result<Run> ExternalSorter::Finish() {
  if (finished_) return Status::Internal("double Finish");
  finished_ = true;
  merge_passes_ = 0;
  NDQ_RETURN_IF_ERROR(SpillBuffer());
  std::vector<Run> runs = std::move(runs_);
  runs_.clear();
  return MergeToOne(disk_, key_fn_, std::move(runs), options_.fan_in,
                    options_.shape, &merge_passes_);
}

Result<Run> MergeSortedRuns(Disk* disk, RecordKeyFn key_fn,
                            std::vector<Run> runs, size_t fan_in,
                            RecordShape shape) {
  return MergeToOne(disk, key_fn, std::move(runs), fan_in, shape, nullptr);
}

}  // namespace ndq
