// Asynchronous read engine for a Disk: a submit/complete queue served by
// a fixed fleet of I/O worker threads.
//
// The paper's cost metric is page transfers, but a real directory server
// lives and dies by how well it OVERLAPS them: access order on sorted
// runs is fully predictable (reverse-DN sort), so a scan can keep
// io-depth transfers in flight instead of stalling 80µs per page. The
// AsyncDisk is the mechanism: Submit(page) enqueues a physical read and
// returns a future-like handle immediately; `io_depth` worker threads
// drain the queue (so at most io_depth physical reads are ever in flight);
// Wait(handle) blocks the consumer until that read's completion.
//
// Accounting contract (the part that keeps the theorems honest): workers
// perform Disk::PhysicalRead — bytes + latency only, NO transfer counters
// and NO fault-injection consult. The consumer's Wait copies the payload
// out, and the caller (storage/prefetcher.h) then runs the consumption-
// time bookkeeping via Disk::FinishAsyncRead, in the exact order a
// synchronous execution would have issued the reads. Simulated page
// counts and fault-campaign op streams are therefore identical at every
// io-depth; only wall-clock changes.
//
// Thread safety: fully thread-safe. Handles are shared_ptrs; a handle may
// be waited on by at most one consumer but canceled by any thread.

#ifndef NDQ_STORAGE_ASYNC_DISK_H_
#define NDQ_STORAGE_ASYNC_DISK_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/status.h"
#include "storage/io_stats.h"

namespace ndq {

class Disk;
using PageId = uint32_t;

struct AsyncDiskStats {
  RelaxedCounter reads_submitted = 0;
  /// Physical reads performed by the workers (started requests).
  RelaxedCounter reads_completed = 0;
  /// Requests canceled while still queued (no physical work spent).
  RelaxedCounter canceled_unstarted = 0;
};

class AsyncDisk {
 public:
  /// One in-flight (or finished) read. Opaque to callers; pass it back to
  /// Wait/Cancel/IsReady.
  struct Request {
    PageId page = 0;
    std::unique_ptr<uint8_t[]> data;  // page payload once done
    Status physical;                  // PhysicalRead outcome once done
    bool started = false;             // a worker picked it up
    bool done = false;
    bool canceled = false;
  };
  using RequestHandle = std::shared_ptr<Request>;

  /// Spawns `io_depth` (>= 1) worker threads over `disk`.
  AsyncDisk(Disk* disk, size_t io_depth);

  /// Cancels everything still queued and joins the workers. The owner
  /// must guarantee no consumer is blocked in Wait at this point (the
  /// engine drains in-flight queries before SetIoDepth(0)).
  ~AsyncDisk();

  AsyncDisk(const AsyncDisk&) = delete;
  AsyncDisk& operator=(const AsyncDisk&) = delete;

  size_t io_depth() const { return workers_.size(); }

  /// Enqueues a physical read of `page`. Never blocks, never fails; the
  /// read's outcome is reported by Wait.
  RequestHandle Submit(PageId page);

  /// True once the request's physical read has finished (Wait would not
  /// block).
  bool IsReady(const RequestHandle& req) const;

  /// Blocks until the request completes, then copies the payload into
  /// `buf` (page_size bytes) when the physical read succeeded and returns
  /// its status. `waited_micros` (may be null) receives the time this
  /// call spent blocked — 0 when the completion had already landed.
  Status Wait(const RequestHandle& req, uint8_t* buf,
              uint64_t* waited_micros = nullptr);

  /// Cancels a request. Returns true if physical work was (or will be)
  /// spent on it — i.e. a worker had already started it — which is what
  /// prefetch-waste accounting wants to know. Queued-and-unstarted
  /// requests are skipped by the workers entirely.
  bool Cancel(const RequestHandle& req);

  AsyncDiskStats stats() const { return stats_; }

 private:
  void WorkerLoop();

  Disk* const disk_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty / stopping
  std::condition_variable done_cv_;  // consumers: request completed
  std::deque<RequestHandle> queue_;
  bool stopping_ = false;
  AsyncDiskStats stats_;
  std::vector<std::thread> workers_;  // last: ctor starts them
};

}  // namespace ndq

#endif  // NDQ_STORAGE_ASYNC_DISK_H_
