// External merge sort over record runs.
//
// Used wherever the paper needs inputs "sorted based on the lexicographic
// ordering of the reverse dn's": bulk-loading the entry store, sorting the
// LP pair list of Algorithm ComputeERAggDV (Fig. 3, the source of the
// N log N term in Theorem 7.1), and sorting atomic-query outputs produced
// by unordered sources. Standard run-generation + k-way merge; memory use
// is bounded by the configured budget, I/O is O((N/B) log_k(N/B)).

#ifndef NDQ_STORAGE_EXTERNAL_SORT_H_
#define NDQ_STORAGE_EXTERNAL_SORT_H_

#include <functional>
#include <string>
#include <vector>

#include "storage/run.h"

namespace ndq {

/// Extracts the comparison key from a serialized record. The returned view
/// must point into the record.
using RecordKeyFn = std::function<std::string_view(std::string_view)>;

struct ExternalSortOptions {
  /// In-memory run-generation budget, in bytes.
  size_t memory_budget = 1 << 20;
  /// Maximum number of runs merged per pass.
  size_t fan_in = 16;
  /// Record shape of the stream being sorted (storage/serde.h); spill and
  /// merge runs are written in the page format this resolves to.
  RecordShape shape = RecordShape::kOpaque;
};

/// \brief Sorts records by key using bounded memory.
///
/// Feed records with Add(), then call Finish() to obtain one sorted run.
/// Intermediate runs are freed as they are merged.
class ExternalSorter {
 public:
  ExternalSorter(Disk* disk, RecordKeyFn key_fn,
                 ExternalSortOptions options = {});
  /// Frees any generated runs that were never merged (abandoned sorts and
  /// error paths leak nothing).
  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  Status Add(std::string_view record);

  /// Sorts and fully merges; returns the single sorted output run.
  Result<Run> Finish();

  /// Number of merge passes performed by the last Finish() (0 if the data
  /// fit in one generated run).
  size_t merge_passes() const { return merge_passes_; }

 private:
  Status SpillBuffer();
  Result<Run> MergeRuns(const std::vector<Run>& runs);

  Disk* disk_;
  RecordKeyFn key_fn_;
  ExternalSortOptions options_;
  std::vector<std::string> buffer_;
  size_t buffered_bytes_ = 0;
  std::vector<Run> runs_;
  size_t merge_passes_ = 0;
  bool finished_ = false;
};

/// Convenience: k-way merges already-sorted runs into one sorted run,
/// consuming (freeing) the inputs. The output run is written in the page
/// format `shape` resolves to.
Result<Run> MergeSortedRuns(Disk* disk, RecordKeyFn key_fn,
                            std::vector<Run> runs, size_t fan_in = 16,
                            RecordShape shape = RecordShape::kOpaque);

}  // namespace ndq

#endif  // NDQ_STORAGE_EXTERNAL_SORT_H_
