// Page-level I/O accounting.
//
// Every theorem in the paper bounds *I/O complexity*: the number of page
// transfers performed, in units of the blocking factor B. IoStats is the
// measured counterpart: the simulated disk bumps these counters on every
// page transfer, and the benchmark harnesses in /bench validate the
// theorems against them (not against wall time).
//
// The counters are relaxed atomics so that concurrent evaluation threads
// (exec/parallel_evaluator.h) keep the accounting EXACT: fetch_add never
// loses an increment, and no ordering beyond the count itself is needed.
// RelaxedCounter converts implicitly to uint64_t, so counter reads and
// arithmetic look exactly like the plain-integer code they replaced.

#ifndef NDQ_STORAGE_IO_STATS_H_
#define NDQ_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace ndq {

/// A uint64_t counter with atomic (memory_order_relaxed) increments and
/// loads. Copyable (snapshot semantics), so structs of counters can still
/// be copied, subtracted and stored in traces like plain structs.
class RelaxedCounter {
 public:
  RelaxedCounter(uint64_t v = 0) : v_(v) {}  // NOLINT(runtime/explicit)
  RelaxedCounter(const RelaxedCounter& o) : v_(o.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  operator uint64_t() const { return load(); }
  uint64_t load() const { return v_.load(std::memory_order_relaxed); }

  uint64_t operator++() {
    return v_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  uint64_t operator+=(uint64_t d) {
    return v_.fetch_add(d, std::memory_order_relaxed) + d;
  }

 private:
  std::atomic<uint64_t> v_;
};

struct IoStats {
  RelaxedCounter page_reads = 0;
  RelaxedCounter page_writes = 0;
  RelaxedCounter pages_allocated = 0;
  RelaxedCounter pages_freed = 0;
  /// Operations refused by an attached FaultInjector (storage/
  /// fault_injector.h). Injected faults are counted here — NOT in the
  /// transfer counters above — because the simulated transfer never
  /// happened; the paper's I/O bounds stay comparable under injection.
  RelaxedCounter faults_injected = 0;
  /// Prefetched reads that were already resident when the scan consumed
  /// them (no stall). Only nonzero with an async engine attached
  /// (Disk::SetIoDepth); a hit still counts its page_read at consumption.
  RelaxedCounter prefetch_hits = 0;
  /// Physical reads started by the prefetch window but never consumed
  /// (abandoned scans). Real device work, but NOT counted in page_reads:
  /// the synchronous execution would never have issued them, and the
  /// paper's transfer bounds are over the synchronous op stream.
  RelaxedCounter prefetch_wasted = 0;
  /// Microseconds consumers spent blocked waiting for async completions.
  RelaxedCounter io_wait_us = 0;

  uint64_t TotalTransfers() const { return page_reads + page_writes; }

  void Reset() { *this = IoStats(); }

  IoStats operator-(const IoStats& other) const {
    IoStats d;
    d.page_reads = page_reads - other.page_reads;
    d.page_writes = page_writes - other.page_writes;
    d.pages_allocated = pages_allocated - other.pages_allocated;
    d.pages_freed = pages_freed - other.pages_freed;
    d.faults_injected = faults_injected - other.faults_injected;
    d.prefetch_hits = prefetch_hits - other.prefetch_hits;
    d.prefetch_wasted = prefetch_wasted - other.prefetch_wasted;
    d.io_wait_us = io_wait_us - other.io_wait_us;
    return d;
  }

  IoStats& operator+=(const IoStats& other) {
    page_reads += other.page_reads;
    page_writes += other.page_writes;
    pages_allocated += other.pages_allocated;
    pages_freed += other.pages_freed;
    faults_injected += other.faults_injected;
    prefetch_hits += other.prefetch_hits;
    prefetch_wasted += other.prefetch_wasted;
    io_wait_us += other.io_wait_us;
    return *this;
  }

  std::string ToString() const {
    std::string out = "reads=" + std::to_string(page_reads.load()) +
                      " writes=" + std::to_string(page_writes.load()) +
                      " alloc=" + std::to_string(pages_allocated.load()) +
                      " freed=" + std::to_string(pages_freed.load());
    if (faults_injected.load() != 0) {
      out += " faults=" + std::to_string(faults_injected.load());
    }
    // Async-only counters render only when async I/O actually ran, so
    // synchronous output (and every golden string built on it) is
    // unchanged.
    if (prefetch_hits.load() != 0) {
      out += " prefetch_hits=" + std::to_string(prefetch_hits.load());
    }
    if (prefetch_wasted.load() != 0) {
      out += " prefetch_wasted=" + std::to_string(prefetch_wasted.load());
    }
    if (io_wait_us.load() != 0) {
      out += " io_wait_us=" + std::to_string(io_wait_us.load());
    }
    return out;
  }
};

}  // namespace ndq

#endif  // NDQ_STORAGE_IO_STATS_H_
