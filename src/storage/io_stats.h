// Page-level I/O accounting.
//
// Every theorem in the paper bounds *I/O complexity*: the number of page
// transfers performed, in units of the blocking factor B. IoStats is the
// measured counterpart: the simulated disk bumps these counters on every
// page transfer, and the benchmark harnesses in /bench validate the
// theorems against them (not against wall time).

#ifndef NDQ_STORAGE_IO_STATS_H_
#define NDQ_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace ndq {

struct IoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t pages_allocated = 0;
  uint64_t pages_freed = 0;

  uint64_t TotalTransfers() const { return page_reads + page_writes; }

  void Reset() { *this = IoStats(); }

  IoStats operator-(const IoStats& other) const {
    IoStats d;
    d.page_reads = page_reads - other.page_reads;
    d.page_writes = page_writes - other.page_writes;
    d.pages_allocated = pages_allocated - other.pages_allocated;
    d.pages_freed = pages_freed - other.pages_freed;
    return d;
  }

  std::string ToString() const {
    return "reads=" + std::to_string(page_reads) +
           " writes=" + std::to_string(page_writes) +
           " alloc=" + std::to_string(pages_allocated) +
           " freed=" + std::to_string(pages_freed);
  }
};

}  // namespace ndq

#endif  // NDQ_STORAGE_IO_STATS_H_
