// Page-level I/O accounting.
//
// Every theorem in the paper bounds *I/O complexity*: the number of page
// transfers performed, in units of the blocking factor B. IoStats is the
// measured counterpart: the simulated disk bumps these counters on every
// page transfer, and the benchmark harnesses in /bench validate the
// theorems against them (not against wall time).
//
// The counters are relaxed atomics so that concurrent evaluation threads
// (exec/parallel_evaluator.h) keep the accounting EXACT: fetch_add never
// loses an increment, and no ordering beyond the count itself is needed.
// RelaxedCounter converts implicitly to uint64_t, so counter reads and
// arithmetic look exactly like the plain-integer code they replaced.

#ifndef NDQ_STORAGE_IO_STATS_H_
#define NDQ_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace ndq {

/// A uint64_t counter with atomic (memory_order_relaxed) increments and
/// loads. Copyable (snapshot semantics), so structs of counters can still
/// be copied, subtracted and stored in traces like plain structs.
class RelaxedCounter {
 public:
  RelaxedCounter(uint64_t v = 0) : v_(v) {}  // NOLINT(runtime/explicit)
  RelaxedCounter(const RelaxedCounter& o) : v_(o.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  operator uint64_t() const { return load(); }
  uint64_t load() const { return v_.load(std::memory_order_relaxed); }

  uint64_t operator++() {
    return v_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  uint64_t operator+=(uint64_t d) {
    return v_.fetch_add(d, std::memory_order_relaxed) + d;
  }

 private:
  std::atomic<uint64_t> v_;
};

struct IoStats {
  RelaxedCounter page_reads = 0;
  RelaxedCounter page_writes = 0;
  RelaxedCounter pages_allocated = 0;
  RelaxedCounter pages_freed = 0;
  /// Operations refused by an attached FaultInjector (storage/
  /// fault_injector.h). Injected faults are counted here — NOT in the
  /// transfer counters above — because the simulated transfer never
  /// happened; the paper's I/O bounds stay comparable under injection.
  RelaxedCounter faults_injected = 0;

  uint64_t TotalTransfers() const { return page_reads + page_writes; }

  void Reset() { *this = IoStats(); }

  IoStats operator-(const IoStats& other) const {
    IoStats d;
    d.page_reads = page_reads - other.page_reads;
    d.page_writes = page_writes - other.page_writes;
    d.pages_allocated = pages_allocated - other.pages_allocated;
    d.pages_freed = pages_freed - other.pages_freed;
    d.faults_injected = faults_injected - other.faults_injected;
    return d;
  }

  IoStats& operator+=(const IoStats& other) {
    page_reads += other.page_reads;
    page_writes += other.page_writes;
    pages_allocated += other.pages_allocated;
    pages_freed += other.pages_freed;
    faults_injected += other.faults_injected;
    return *this;
  }

  std::string ToString() const {
    std::string out = "reads=" + std::to_string(page_reads.load()) +
                      " writes=" + std::to_string(page_writes.load()) +
                      " alloc=" + std::to_string(pages_allocated.load()) +
                      " freed=" + std::to_string(pages_freed.load());
    if (faults_injected.load() != 0) {
      out += " faults=" + std::to_string(faults_injected.load());
    }
    return out;
  }
};

}  // namespace ndq

#endif  // NDQ_STORAGE_IO_STATS_H_
