// A simulated page-granular block device.
//
// SimDisk stands in for the directory server's disk: all persistent state
// (the entry store, indexes, intermediate operator runs, spilled stacks)
// lives in its pages, and every transfer is counted in IoStats. Keeping the
// device in memory makes benchmark runs deterministic and fast while
// preserving exactly the quantity the paper's theorems are about.
//
// The device is safe for concurrent use by the parallel evaluator
// (exec/parallel_evaluator.h):
//   * the page table is a chunked array behind atomic chunk pointers, so
//     it grows without invalidating concurrent readers;
//   * per-slot state (live flag, page bytes) is guarded by a sharded
//     mutex keyed on the page id;
//   * the free list and slot-count growth sit under one allocation mutex;
//   * IoStats counters are relaxed atomics, so the simulated-I/O
//     accounting stays exact under any interleaving.
// SaveToFile/LoadFromFile are NOT safe against concurrent page traffic;
// quiesce the device first (they are checkpoint/restore paths).

#ifndef NDQ_STORAGE_DISK_H_
#define NDQ_STORAGE_DISK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "storage/io_stats.h"

namespace ndq {

class FaultInjector;
enum class FaultOp : uint8_t;

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = static_cast<PageId>(-1);

/// Default page size. 4 KiB holds a few dozen typical directory entries,
/// i.e. a blocking factor B in the tens, matching the paper's setting.
inline constexpr size_t kDefaultPageSize = 4096;

class SimDisk {
 public:
  explicit SimDisk(size_t page_size = kDefaultPageSize)
      : page_size_(page_size) {}
  ~SimDisk();

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  size_t page_size() const { return page_size_; }

  /// Allocates a zeroed page and returns its id. Fails with
  /// ResourceExhausted when the device is full, or Unavailable when an
  /// attached FaultInjector refuses the operation.
  Result<PageId> Allocate();

  /// Returns a page to the free list. Reading a freed page is an error.
  Status Free(PageId id);

  /// Copies the page into `buf` (page_size() bytes).
  Status ReadPage(PageId id, uint8_t* buf);

  /// Copies `buf` (page_size() bytes) into the page.
  Status WritePage(PageId id, const uint8_t* buf);

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Number of live (allocated, not freed) pages.
  size_t live_pages() const {
    return live_pages_.load(std::memory_order_relaxed);
  }

  /// Simulated device latency added to every page transfer (the calling
  /// thread sleeps; concurrent transfers overlap, like real disk queue
  /// depth). 0 (the default) keeps tests instantaneous; bench_parallel
  /// turns it on to measure how intra-query parallelism hides I/O stalls.
  void set_transfer_latency_micros(uint32_t us) {
    latency_micros_.store(us, std::memory_order_relaxed);
  }
  uint32_t transfer_latency_micros() const {
    return latency_micros_.load(std::memory_order_relaxed);
  }

  /// Attaches a fault-injection policy (storage/fault_injector.h): every
  /// subsequent Read/Write/Allocate/Free first consults it and fails —
  /// before any side effect — when a rule fires. Pass nullptr to detach.
  /// The injector is NOT owned and must outlive its attachment. The hook
  /// is zero-cost when detached (one relaxed atomic load).
  void set_fault_injector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }
  FaultInjector* fault_injector() const {
    return injector_.load(std::memory_order_acquire);
  }

  /// Writes the device image (page size, live pages, contents) to a file.
  /// Freed slots are preserved so PageIds remain stable across reload.
  Status SaveToFile(const std::string& path) const;

  /// Reads a device image previously written by SaveToFile. Replaces this
  /// disk's contents; the page size must match the image's.
  Status LoadFromFile(const std::string& path);

 private:
  // Page slots live in fixed-size chunks whose addresses never change, so
  // readers can reach a slot without holding the allocation mutex. The
  // chunk directory is a fixed array of atomic pointers (published with
  // release stores, read with acquire loads).
  static constexpr size_t kChunkBits = 12;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;  // slots
  static constexpr size_t kMaxChunks = size_t{1} << 12;  // 16M pages max
  static constexpr size_t kShards = 16;

  struct PageSlot {
    std::unique_ptr<uint8_t[]> data;
    bool live = false;
  };

  /// Slot pointer for `id`, or nullptr if the id was never allocated.
  PageSlot* SlotFor(PageId id) const;
  std::mutex& ShardFor(PageId id) const {
    return shard_mu_[id % kShards];
  }
  void SimulateLatency() const;
  void FreeAllChunks();
  /// Consults the attached injector (if any); on refusal, counts the
  /// fault and returns the injected status.
  Status CheckFault(FaultOp op, PageId id);

  size_t page_size_;
  std::array<std::atomic<PageSlot*>, kMaxChunks> chunks_{};
  std::atomic<size_t> num_slots_{0};
  mutable std::mutex alloc_mu_;  // free_list_ + chunk growth
  mutable std::array<std::mutex, kShards> shard_mu_;
  std::vector<PageId> free_list_;
  std::atomic<size_t> live_pages_{0};
  std::atomic<uint32_t> latency_micros_{0};
  std::atomic<FaultInjector*> injector_{nullptr};
  IoStats stats_;
};

/// \brief RAII I/O attribution scope for the current thread.
///
/// While alive, every page operation performed BY THIS THREAD on `disk`
/// (or on any disk, when `disk` is nullptr) is additionally counted into
/// `*acc`. Scopes nest per thread, and only the INNERMOST matching scope
/// receives a given operation — so a parent scope measures exactly the
/// I/O not claimed by a nested child scope. The parallel evaluator opens
/// one scope per traced plan node; per-node I/O attribution then stays
/// exact even when sibling subtrees run on other threads (each thread has
/// its own scope stack), and cumulative subtree I/O is recovered as
/// self + sum of children.
class IoScope {
 public:
  IoScope(const SimDisk* disk, IoStats* acc);
  ~IoScope();

  IoScope(const IoScope&) = delete;
  IoScope& operator=(const IoScope&) = delete;
};

}  // namespace ndq

#endif  // NDQ_STORAGE_DISK_H_
