// A simulated page-granular block device.
//
// SimDisk stands in for the directory server's disk: all persistent state
// (the entry store, indexes, intermediate operator runs, spilled stacks)
// lives in its pages, and every transfer is counted in IoStats. Keeping the
// device in memory makes benchmark runs deterministic and fast while
// preserving exactly the quantity the paper's theorems are about.

#ifndef NDQ_STORAGE_DISK_H_
#define NDQ_STORAGE_DISK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "storage/io_stats.h"

namespace ndq {

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = static_cast<PageId>(-1);

/// Default page size. 4 KiB holds a few dozen typical directory entries,
/// i.e. a blocking factor B in the tens, matching the paper's setting.
inline constexpr size_t kDefaultPageSize = 4096;

class SimDisk {
 public:
  explicit SimDisk(size_t page_size = kDefaultPageSize)
      : page_size_(page_size) {}

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  size_t page_size() const { return page_size_; }

  /// Allocates a zeroed page and returns its id.
  PageId Allocate();

  /// Returns a page to the free list. Reading a freed page is an error.
  Status Free(PageId id);

  /// Copies the page into `buf` (page_size() bytes).
  Status ReadPage(PageId id, uint8_t* buf);

  /// Copies `buf` (page_size() bytes) into the page.
  Status WritePage(PageId id, const uint8_t* buf);

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Number of live (allocated, not freed) pages.
  size_t live_pages() const { return live_pages_; }

  /// Writes the device image (page size, live pages, contents) to a file.
  /// Freed slots are preserved so PageIds remain stable across reload.
  Status SaveToFile(const std::string& path) const;

  /// Reads a device image previously written by SaveToFile. Replaces this
  /// disk's contents; the page size must match the image's.
  Status LoadFromFile(const std::string& path);

 private:
  struct PageSlot {
    std::unique_ptr<uint8_t[]> data;
    bool live = false;
  };

  size_t page_size_;
  std::vector<PageSlot> pages_;
  std::vector<PageId> free_list_;
  size_t live_pages_ = 0;
  IoStats stats_;
};

}  // namespace ndq

#endif  // NDQ_STORAGE_DISK_H_
