// Page-granular block devices: the abstract Disk interface, plus the
// simulated implementation the theorems are measured on.
//
// Disk is the device contract the whole system is written against: every
// persistent structure (the entry store, indexes, intermediate operator
// runs, spilled stacks) lives in pages of SOME Disk, and every transfer is
// counted in IoStats. The base class owns everything the paper's
// accounting depends on — transfer counters, fault-injection hooks,
// simulated latency, and the async read engine — while subclasses provide
// only the physical page operations:
//   * SimDisk (below) keeps pages in memory: deterministic, fast, and the
//     substrate for every theorem-bound check;
//   * FileDisk (storage/file_disk.h) keeps pages in a real file via
//     pread/pwrite, so benches can report actual-hardware wall-clock next
//     to the simulated page counts.
//
// Asynchronous reads. SetIoDepth(N) attaches an AsyncDisk
// (storage/async_disk.h): a submit/complete queue served by N I/O worker
// threads. Sequential scans then stream ahead through a Prefetcher
// (storage/prefetcher.h) instead of stalling one page at a time. The
// design invariant is that async I/O NEVER changes the simulated
// accounting: a prefetched read performs its physical transfer early
// (PhysicalRead — no counters, no fault check), and the transfer is
// counted and offered to the fault injector only when a consumer actually
// takes the page (FinishAsyncRead), in exactly the order a synchronous
// execution would have issued it. Page counts stay byte-identical whether
// io-depth is 0 or 64; wall-clock is what changes.
//
// SimDisk is safe for concurrent use by the parallel evaluator
// (exec/parallel_evaluator.h):
//   * the page table is a chunked array behind atomic chunk pointers, so
//     it grows without invalidating concurrent readers;
//   * per-slot state (live flag, page bytes) is guarded by a sharded
//     mutex keyed on the page id;
//   * the free list and slot-count growth sit under one allocation mutex;
//   * IoStats counters are relaxed atomics, so the simulated-I/O
//     accounting stays exact under any interleaving.
// SaveToFile/LoadFromFile are NOT safe against concurrent page traffic;
// quiesce the device first (they are checkpoint/restore paths).

#ifndef NDQ_STORAGE_DISK_H_
#define NDQ_STORAGE_DISK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "storage/io_stats.h"

namespace ndq {

class AsyncDisk;
class FaultInjector;
enum class FaultOp : uint8_t;

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = static_cast<PageId>(-1);

/// Default page size. 4 KiB holds a few dozen typical directory entries,
/// i.e. a blocking factor B in the tens, matching the paper's setting.
inline constexpr size_t kDefaultPageSize = 4096;

/// \brief Abstract page device: accounting, faults, latency and async
/// reads in the base; physical storage in the subclass.
class Disk {
 public:
  explicit Disk(size_t page_size = kDefaultPageSize);
  virtual ~Disk();

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  size_t page_size() const { return page_size_; }

  /// Allocates a zeroed page and returns its id. Fails with
  /// ResourceExhausted when the device is full, or Unavailable when an
  /// attached FaultInjector refuses the operation.
  Result<PageId> Allocate();

  /// Returns a page to the free list. Reading a freed page is an error.
  Status Free(PageId id);

  /// Copies the page into `buf` (page_size() bytes).
  Status ReadPage(PageId id, uint8_t* buf);

  /// Copies `buf` (page_size() bytes) into the page.
  Status WritePage(PageId id, const uint8_t* buf);

  /// Durability barrier: blocks until every completed WritePage is on
  /// stable media. SimDisk pages are always "durable" (the crash model is
  /// process death, not power loss), so its barrier is a no-op; FileDisk
  /// issues fdatasync. Consults the fault injector (FaultOp::kSync)
  /// before the physical barrier, like every other device op. The WAL
  /// (store/wal.h) calls this on commit.
  Status Sync();

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Number of live (allocated, not freed) pages.
  size_t live_pages() const {
    return live_pages_.load(std::memory_order_relaxed);
  }

  /// Simulated device latency added to every page transfer (the
  /// transferring thread sleeps; concurrent transfers overlap, like real
  /// disk queue depth). 0 (the default) keeps tests instantaneous;
  /// bench_parallel and bench_io turn it on to measure how parallelism
  /// and prefetch hide I/O stalls. Applies to async physical reads too
  /// (the I/O worker sleeps, not the consumer).
  void set_transfer_latency_micros(uint32_t us) {
    latency_micros_.store(us, std::memory_order_relaxed);
  }
  uint32_t transfer_latency_micros() const {
    return latency_micros_.load(std::memory_order_relaxed);
  }

  /// Attaches a fault-injection policy (storage/fault_injector.h): every
  /// subsequent Read/Write/Allocate/Free first consults it and fails —
  /// before any side effect — when a rule fires. Pass nullptr to detach.
  /// The injector is NOT owned and must outlive its attachment. The hook
  /// is zero-cost when detached (one relaxed atomic load). With async
  /// reads the consult happens at completion-consumption time (see
  /// FinishAsyncRead), so campaigns sweep the same deterministic op
  /// stream at any io-depth.
  void set_fault_injector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }
  FaultInjector* fault_injector() const {
    return injector_.load(std::memory_order_acquire);
  }

  // -------------------------------------------------------------------
  // Async read engine
  // -------------------------------------------------------------------

  /// Attaches (depth > 0) or detaches (depth == 0) the async read engine:
  /// `depth` I/O worker threads serving a submit/complete queue, i.e. at
  /// most `depth` physical reads in flight at once. Sequential run scans
  /// pick the engine up automatically (storage/prefetcher.h). NOT safe
  /// against concurrent page traffic; quiesce the device first (the
  /// engine does: Engine::SetIoDepth drains in-flight queries).
  void SetIoDepth(size_t depth);
  size_t io_depth() const;
  /// The attached engine, or nullptr when io_depth() == 0.
  AsyncDisk* async() const { return async_.get(); }

  /// Physical page read for the async engine: transfers the bytes and
  /// simulates device latency, but neither counts the transfer nor
  /// consults the fault injector — that happens at consumption via
  /// FinishAsyncRead, keeping the simulated op stream identical to a
  /// synchronous execution.
  Status PhysicalRead(PageId id, uint8_t* buf);

  /// Consumption-time bookkeeping for a prefetched page: consults the
  /// fault injector (exactly where a sync ReadPage would), then reports
  /// `physical` (the PhysicalRead outcome), and only on success counts
  /// the transfer. Returns the status the equivalent sync ReadPage would
  /// have returned.
  Status FinishAsyncRead(PageId id, const Status& physical);

  /// Prefetch observability, surfaced in IoStats and EXPLAIN ANALYZE.
  void CountPrefetchHit();
  void CountPrefetchWasted(uint64_t n);
  void AddIoWaitMicros(uint64_t us);

  /// Whether read-ahead is likely to pay for itself on this device right
  /// now. The device keeps an EWMA of recent physical read durations
  /// (sampled in ReadPage and PhysicalRead); when reads complete faster
  /// than the async engine's own round-trip overhead — a warm FileDisk
  /// served from page cache, a zero-latency SimDisk — issuing them
  /// through the queue only adds handoff cost, so the Prefetcher falls
  /// back to plain synchronous reads (accounting is identical either
  /// way; see storage/prefetcher.h). Optimistic until enough samples
  /// accumulate, so cold starts still get read-ahead.
  bool PrefetchWorthwhile() const;

 protected:
  // Physical operations, implemented by the device. The base class has
  // already consulted the fault injector; implementations do no stats
  // accounting and no latency simulation.
  virtual Result<PageId> DoAllocate() = 0;
  virtual Status DoFree(PageId id) = 0;
  virtual Status DoRead(PageId id, uint8_t* buf) = 0;
  virtual Status DoWrite(PageId id, const uint8_t* buf) = 0;
  /// Physical durability barrier; default is the no-op of devices whose
  /// writes are durable at completion (SimDisk).
  virtual Status DoSync() { return Status::OK(); }

  /// Consults the attached injector (if any); on refusal, counts the
  /// fault and returns the injected status.
  Status CheckFault(FaultOp op, PageId id);
  void SimulateLatency() const;

  /// For subclass restore paths (e.g. SimDisk::LoadFromFile) that replace
  /// the whole device image outside Allocate/Free.
  void set_live_pages(size_t n) {
    live_pages_.store(n, std::memory_order_relaxed);
  }

  /// Subclass destructors MUST call this first: it joins the async
  /// engine's worker threads before the physical storage they read from
  /// is torn down. Idempotent.
  void ShutdownAsync();

 private:
  /// Folds one physical-read duration into the EWMA (relaxed atomics;
  /// lost updates under races only slow convergence).
  void RecordReadSample(uint64_t ns);

  size_t page_size_;
  std::atomic<size_t> live_pages_{0};
  std::atomic<uint32_t> latency_micros_{0};
  std::atomic<FaultInjector*> injector_{nullptr};
  std::unique_ptr<AsyncDisk> async_;
  // Adaptive prefetch state: EWMA of physical read durations + sample
  // count for the warmup heuristic.
  std::atomic<uint64_t> read_ewma_ns_{0};
  std::atomic<uint64_t> read_samples_{0};
  IoStats stats_;
};

/// \brief The in-memory simulated device (the paper's measurement
/// substrate). See the file comment for the concurrency structure.
class SimDisk : public Disk {
 public:
  explicit SimDisk(size_t page_size = kDefaultPageSize) : Disk(page_size) {}
  ~SimDisk() override;

  /// Writes the device image (page size, live pages, contents) to a file.
  /// Freed slots are preserved so PageIds remain stable across reload.
  Status SaveToFile(const std::string& path) const;

  /// Reads a device image previously written by SaveToFile. Replaces this
  /// disk's contents; the page size must match the image's.
  Status LoadFromFile(const std::string& path);

 protected:
  Result<PageId> DoAllocate() override;
  Status DoFree(PageId id) override;
  Status DoRead(PageId id, uint8_t* buf) override;
  Status DoWrite(PageId id, const uint8_t* buf) override;

 private:
  // Page slots live in fixed-size chunks whose addresses never change, so
  // readers can reach a slot without holding the allocation mutex. The
  // chunk directory is a fixed array of atomic pointers (published with
  // release stores, read with acquire loads).
  static constexpr size_t kChunkBits = 12;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;  // slots
  static constexpr size_t kMaxChunks = size_t{1} << 12;  // 16M pages max
  static constexpr size_t kShards = 16;

  struct PageSlot {
    std::unique_ptr<uint8_t[]> data;
    bool live = false;
  };

  /// Slot pointer for `id`, or nullptr if the id was never allocated.
  PageSlot* SlotFor(PageId id) const;
  std::mutex& ShardFor(PageId id) const {
    return shard_mu_[id % kShards];
  }
  void FreeAllChunks();

  std::array<std::atomic<PageSlot*>, kMaxChunks> chunks_{};
  std::atomic<size_t> num_slots_{0};
  mutable std::mutex alloc_mu_;  // free_list_ + chunk growth
  mutable std::array<std::mutex, kShards> shard_mu_;
  std::vector<PageId> free_list_;
};

/// \brief RAII I/O attribution scope for the current thread.
///
/// While alive, every page operation performed BY THIS THREAD on `disk`
/// (or on any disk, when `disk` is nullptr) is additionally counted into
/// `*acc`. Scopes nest per thread, and only the INNERMOST matching scope
/// receives a given operation — so a parent scope measures exactly the
/// I/O not claimed by a nested child scope. The parallel evaluator opens
/// one scope per traced plan node; per-node I/O attribution then stays
/// exact even when sibling subtrees run on other threads (each thread has
/// its own scope stack), and cumulative subtree I/O is recovered as
/// self + sum of children. Async reads are attributed to the CONSUMING
/// thread's scope (the physical transfer happens on an I/O worker with no
/// scopes), so per-operator attribution is io-depth-invariant too.
class IoScope {
 public:
  IoScope(const Disk* disk, IoStats* acc);
  ~IoScope();

  IoScope(const IoScope&) = delete;
  IoScope& operator=(const IoScope&) = delete;
};

}  // namespace ndq

#endif  // NDQ_STORAGE_DISK_H_
