#include "storage/file_disk.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>

namespace ndq {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

FileDisk::FileDisk(const std::string& path, size_t page_size,
                   bool open_existing)
    : Disk(page_size), path_(path) {
  int flags = O_RDWR | O_CREAT | O_CLOEXEC;
  if (!open_existing) flags |= O_TRUNC;
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    init_ = Errno("open " + path_);
    return;
  }
  if (open_existing) {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      init_ = Errno("fstat " + path_);
      return;
    }
    if (st.st_size % static_cast<off_t>(this->page_size()) != 0) {
      init_ = Status::Corruption(
          "file disk " + path_ + ": size not a multiple of page size");
      return;
    }
    const size_t slots = static_cast<size_t>(st.st_size) / this->page_size();
    live_.assign(slots, true);
    set_live_pages(slots);
  }
}

FileDisk::~FileDisk() {
  ShutdownAsync();
  if (fd_ >= 0) ::close(fd_);
}

Status FileDisk::DoSync() {
  NDQ_RETURN_IF_ERROR(init_);
  if (::fdatasync(fd_) != 0) return Errno("fdatasync " + path_);
  return Status::OK();
}

Status FileDisk::CheckLive(PageId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= live_.size() || !live_[id]) {
    return Status::NotFound("file disk: page " + std::to_string(id) +
                            " is not live");
  }
  return Status::OK();
}

Result<PageId> FileDisk::DoAllocate() {
  NDQ_RETURN_IF_ERROR(init_);
  PageId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
    } else {
      if (live_.size() >= static_cast<size_t>(kInvalidPage)) {
        return Status::ResourceExhausted("file disk: page id space full");
      }
      id = static_cast<PageId>(live_.size());
      live_.push_back(false);
    }
    live_[id] = true;
  }
  // Zero the slot so reused and fresh pages behave alike (and fresh
  // slots extend the file to cover their extent).
  auto zeros = std::make_unique<uint8_t[]>(page_size());
  std::memset(zeros.get(), 0, page_size());
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size());
  if (::pwrite(fd_, zeros.get(), page_size(), off) !=
      static_cast<ssize_t>(page_size())) {
    Status s = Errno("pwrite " + path_);
    std::lock_guard<std::mutex> lock(mu_);
    live_[id] = false;
    free_list_.push_back(id);
    return s;
  }
  return id;
}

Status FileDisk::DoFree(PageId id) {
  NDQ_RETURN_IF_ERROR(init_);
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= live_.size() || !live_[id]) {
    return Status::NotFound("file disk: freeing page " + std::to_string(id) +
                            " which is not live");
  }
  live_[id] = false;
  free_list_.push_back(id);
  return Status::OK();
}

Status FileDisk::DoRead(PageId id, uint8_t* buf) {
  NDQ_RETURN_IF_ERROR(init_);
  NDQ_RETURN_IF_ERROR(CheckLive(id));
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size());
  const ssize_t n = ::pread(fd_, buf, page_size(), off);
  if (n != static_cast<ssize_t>(page_size())) {
    if (n < 0) return Errno("pread " + path_);
    return Status::Corruption("file disk: short read of page " +
                              std::to_string(id));
  }
  return Status::OK();
}

Status FileDisk::DoWrite(PageId id, const uint8_t* buf) {
  NDQ_RETURN_IF_ERROR(init_);
  NDQ_RETURN_IF_ERROR(CheckLive(id));
  const off_t off = static_cast<off_t>(id) * static_cast<off_t>(page_size());
  if (::pwrite(fd_, buf, page_size(), off) !=
      static_cast<ssize_t>(page_size())) {
    return Errno("pwrite " + path_);
  }
  return Status::OK();
}

}  // namespace ndq
