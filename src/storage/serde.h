// Byte-level record serialization used by runs, the entry store, indexes
// and the spillable stack: varints, length-prefixed strings, and the
// canonical Entry wire format.

#ifndef NDQ_STORAGE_SERDE_H_
#define NDQ_STORAGE_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/entry.h"
#include "core/status.h"

namespace ndq {

/// Appends serialized primitives to a std::string buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  /// LEB128 unsigned varint.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      out_->push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    out_->push_back(static_cast<char>(v));
  }

  /// Zig-zag encoded signed varint.
  void PutSigned(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }

  /// Length-prefixed byte string.
  void PutString(std::string_view s) {
    PutVarint(s.size());
    out_->append(s.data(), s.size());
  }

 private:
  std::string* out_;
};

/// Reads serialized primitives from a byte buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t position() const { return pos_; }

  Result<uint8_t> GetU8() {
    if (pos_ >= data_.size()) return Status::Corruption("u8 past end");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size()) return Status::Corruption("varint past end");
      uint8_t b = static_cast<uint8_t>(data_[pos_++]);
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
      if (shift > 63) return Status::Corruption("varint too long");
    }
    return v;
  }

  Result<int64_t> GetSigned() {
    NDQ_ASSIGN_OR_RETURN(uint64_t u, GetVarint());
    return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  Result<std::string_view> GetString() {
    NDQ_ASSIGN_OR_RETURN(uint64_t len, GetVarint());
    if (pos_ + len > data_.size()) {
      return Status::Corruption("string past end");
    }
    std::string_view s = data_.substr(pos_, len);
    pos_ += len;
    return s;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Page format (prefix compression)
// ---------------------------------------------------------------------------

/// On-disk framing of the records inside a run's pages. The format is
/// versioned PER RUN (carried in Run metadata and segment manifests), so
/// runs of different formats coexist on one disk and readers never guess.
///
///   kRaw       — every record framed as varint(len) + bytes (the v0
///                layout; what NDQ_PAGE_FORMAT=raw selects).
///   kPrefix    — each record prefix-compressed against the previous one:
///                varint(shared) varint(suffix_len) suffix. For opaque
///                record shapes (labeled/annotated runs).
///   kKeyPrefix — key-aware compression for records whose FIRST field is a
///                length-prefixed sort key (serialized entries, pair
///                records, spill-stack items). The key and the remainder
///                are compressed independently against the previous
///                record's, so differing key lengths (whose varint prefix
///                would defeat kPrefix at byte 0) still share their DN
///                prefix:
///                varint(shared_key) varint(key_suffix_len)
///                varint(shared_rest) varint(rest_suffix_len)
///                key_suffix rest_suffix.
///
/// Writers emit a RESTART (all shared counts forced to 0) for the first
/// record, every kRestartInterval records, and — for seekable runs
/// (RunWriter::set_page_restarts, used by the entry store) — for every
/// record that starts in a new page, so the first record starting in any
/// page is decodable without history and the sparse-index seek targets
/// stay valid. Scan-only runs skip the per-page restarts: on deep
/// directories a restart re-emits the whole reverse-DN key, which is
/// most of the compression win.
enum class PageFormat : uint8_t {
  kRaw = 0,
  kPrefix = 1,
  kKeyPrefix = 2,
};

/// What a writer knows about its record stream; resolves to a PageFormat
/// given the global compression mode.
enum class RecordShape : uint8_t {
  kOpaque = 0,  ///< arbitrary bytes
  kKeyed = 1,   ///< first field is a ByteWriter::PutString sort key
};

/// Writer-side restart interval (records between forced restarts).
/// Seeks never depend on it — the per-page forced restart (where
/// enabled) is what makes sparse-index targets decodable — so the
/// interval only bounds how far a mid-page corruption can smear. Deep-
/// directory keys make full restart records expensive (a restart
/// re-emits the whole reverse-DN key), so the interval is deliberately
/// loose.
inline constexpr uint64_t kRestartInterval = 64;

/// Process-wide compression mode. Initialized lazily from the
/// NDQ_PAGE_FORMAT environment variable ("raw" disables compression;
/// anything else — including unset — enables it). Benches and tests
/// override it programmatically to compare formats in one process.
/// Affects only NEW writers; existing runs carry their own format.
bool PageCompressionEnabled();
void SetPageCompression(bool enabled);

/// The format a fresh writer should use for `shape` under the current
/// global mode.
PageFormat ResolvePageFormat(RecordShape shape);

// ---------------------------------------------------------------------------
// Order-preserving typed key encoding
// ---------------------------------------------------------------------------

/// Order-preserving fixed-width encoding of a signed 64-bit integer: the
/// sign bit is flipped and the bytes stored big-endian, so memcmp order on
/// the 8-byte strings equals numeric order.
void AppendOrderedInt64(int64_t v, std::string* out);
int64_t DecodeOrderedInt64(std::string_view bytes);

/// Order-preserving encoding of a typed Value: a kind-rank tag byte
/// followed by the domain encoding (sign-flipped big-endian for kInt, raw
/// bytes otherwise). memcmp order on encodings equals Value::operator<
/// (kind first, then domain order) — the SerializeKeyByType idiom, used by
/// the secondary indexes and verified by the codec property tests.
void AppendOrderedValueKey(const Value& value, std::string* out);

/// Appends the wire form of `value` to `out`.
void SerializeValue(const Value& value, std::string* out);
/// Reads one Value.
Result<Value> DeserializeValue(ByteReader* reader);

/// Appends the wire form of `entry` (HierKey + attribute map) to `out`.
void SerializeEntry(const Entry& entry, std::string* out);
/// Parses an Entry from its wire form.
Result<Entry> DeserializeEntry(std::string_view record);

/// Reads just the HierKey prefix of a serialized entry — the sort key —
/// without materializing the rest.
Result<std::string_view> PeekEntryKey(std::string_view record);

}  // namespace ndq

#endif  // NDQ_STORAGE_SERDE_H_
