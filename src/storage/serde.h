// Byte-level record serialization used by runs, the entry store, indexes
// and the spillable stack: varints, length-prefixed strings, and the
// canonical Entry wire format.

#ifndef NDQ_STORAGE_SERDE_H_
#define NDQ_STORAGE_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/entry.h"
#include "core/status.h"

namespace ndq {

/// Appends serialized primitives to a std::string buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  /// LEB128 unsigned varint.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      out_->push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    out_->push_back(static_cast<char>(v));
  }

  /// Zig-zag encoded signed varint.
  void PutSigned(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }

  /// Length-prefixed byte string.
  void PutString(std::string_view s) {
    PutVarint(s.size());
    out_->append(s.data(), s.size());
  }

 private:
  std::string* out_;
};

/// Reads serialized primitives from a byte buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t position() const { return pos_; }

  Result<uint8_t> GetU8() {
    if (pos_ >= data_.size()) return Status::Corruption("u8 past end");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size()) return Status::Corruption("varint past end");
      uint8_t b = static_cast<uint8_t>(data_[pos_++]);
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
      if (shift > 63) return Status::Corruption("varint too long");
    }
    return v;
  }

  Result<int64_t> GetSigned() {
    NDQ_ASSIGN_OR_RETURN(uint64_t u, GetVarint());
    return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  Result<std::string_view> GetString() {
    NDQ_ASSIGN_OR_RETURN(uint64_t len, GetVarint());
    if (pos_ + len > data_.size()) {
      return Status::Corruption("string past end");
    }
    std::string_view s = data_.substr(pos_, len);
    pos_ += len;
    return s;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Appends the wire form of `value` to `out`.
void SerializeValue(const Value& value, std::string* out);
/// Reads one Value.
Result<Value> DeserializeValue(ByteReader* reader);

/// Appends the wire form of `entry` (HierKey + attribute map) to `out`.
void SerializeEntry(const Entry& entry, std::string* out);
/// Parses an Entry from its wire form.
Result<Entry> DeserializeEntry(std::string_view record);

/// Reads just the HierKey prefix of a serialized entry — the sort key —
/// without materializing the rest.
Result<std::string_view> PeekEntryKey(std::string_view record);

}  // namespace ndq

#endif  // NDQ_STORAGE_SERDE_H_
