#include "storage/run.h"

#include <algorithm>

#include "storage/serde.h"

namespace ndq {

Status FreeRun(Disk* disk, Run* run) {
  // Free every page even if one Free fails: stopping at the first error
  // would strand the remaining pages in the run with some already freed,
  // making a retry double-free. The run is always left empty; the first
  // error (if any) is reported.
  Status first;
  for (PageId p : run->pages) {
    Status s = disk->Free(p);
    if (!s.ok() && first.ok()) first = s;
  }
  run->pages.clear();
  run->num_records = 0;
  run->payload_bytes = 0;
  return first;
}

Result<Run> ReverseRun(Disk* disk, Run run) {
  // Spill forward-order records in ~2-page batches, then replay the
  // batches last-to-first, reversing each batch in memory. The output and
  // every intermediate batch keep the input's format: reversed records
  // are adjacent in both orders, so they compress the same, and keyed
  // shape is preserved for downstream readers.
  const size_t batch_budget = 2 * disk->page_size();
  const PageFormat format = run.format;
  std::vector<Run> batches;
  auto impl = [&]() -> Result<Run> {
    std::vector<std::string> buffer;
    size_t buffered = 0;
    auto flush = [&]() -> Status {
      if (buffer.empty()) return Status::OK();
      RunWriter w(disk, format);
      for (const std::string& rec : buffer) NDQ_RETURN_IF_ERROR(w.Add(rec));
      NDQ_ASSIGN_OR_RETURN(Run batch, w.Finish());
      batches.push_back(std::move(batch));
      buffer.clear();
      buffered = 0;
      return Status::OK();
    };
    {
      RunReader reader(disk, run);
      std::string rec;
      while (true) {
        NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
        if (!more) break;
        buffered += rec.size();
        buffer.push_back(std::move(rec));
        if (buffered >= batch_budget) NDQ_RETURN_IF_ERROR(flush());
      }
      NDQ_RETURN_IF_ERROR(flush());
    }
    NDQ_RETURN_IF_ERROR(FreeRun(disk, &run));
    RunWriter out(disk, format);
    std::string rec;
    for (auto bit = batches.rbegin(); bit != batches.rend(); ++bit) {
      std::vector<std::string> recs;
      RunReader reader(disk, *bit);
      while (true) {
        NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
        if (!more) break;
        recs.push_back(std::move(rec));
      }
      for (auto rit = recs.rbegin(); rit != recs.rend(); ++rit) {
        NDQ_RETURN_IF_ERROR(out.Add(*rit));
      }
      NDQ_RETURN_IF_ERROR(FreeRun(disk, &*bit));
    }
    return out.Finish();
  };
  Result<Run> reversed = impl();
  if (!reversed.ok()) {
    // Best-effort cleanup: the input and any surviving spill batches.
    // FreeRun empties each run, so nothing is ever freed twice.
    (void)FreeRun(disk, &run);
    for (Run& b : batches) (void)FreeRun(disk, &b);
  }
  return reversed;
}

RunWriter::RunWriter(Disk* disk, RecordShape shape)
    : RunWriter(disk, ResolvePageFormat(shape)) {}

RunWriter::RunWriter(Disk* disk, PageFormat format) : disk_(disk) {
  run_.format = format;
  buf_.reserve(disk_->page_size());
}

RunWriter::~RunWriter() {
  // A writer destroyed before a successful Finish() owns a partial run
  // that no caller can ever free; return its pages (best-effort — the
  // device may be refusing ops, in which case the campaign's leak check
  // knows to expect it).
  if (!finished_) {
    for (PageId p : run_.pages) (void)disk_->Free(p);
  }
}

Status RunWriter::FlushPage() {
  if (buf_.empty()) return Status::OK();
  buf_.resize(disk_->page_size(), '\0');
  NDQ_ASSIGN_OR_RETURN(PageId id, disk_->Allocate());
  // Track the page before writing it so an abandoned writer frees it too.
  run_.pages.push_back(id);
  NDQ_RETURN_IF_ERROR(
      disk_->WritePage(id, reinterpret_cast<const uint8_t*>(buf_.data())));
  buf_.clear();
  return Status::OK();
}

namespace {

size_t SharedPrefix(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

Status RunWriter::Add(std::string_view record) {
  if (finished_) return Status::Internal("Add after Finish");
  // Where this record's frame will start (FlushPage keeps buf_ strictly
  // below a full page between Adds).
  last_record_page_ = run_.pages.size();
  last_record_offset_ = static_cast<uint32_t>(buf_.size());

  // Restart whenever decode-from-here must not depend on history: the
  // first record, every kRestartInterval records, and — for seekable
  // runs (set_page_restarts) — the first record starting in each page,
  // which makes every sparse-index seek target self-contained.
  const bool restart =
      run_.num_records == 0 || records_since_restart_ >= kRestartInterval ||
      (page_restarts_ && last_record_page_ != last_start_page_);
  if (restart) records_since_restart_ = 0;
  ++records_since_restart_;
  last_start_page_ = last_record_page_;

  std::string framed;
  ByteWriter w(&framed);
  switch (run_.format) {
    case PageFormat::kRaw: {
      w.PutVarint(record.size());
      framed.append(record.data(), record.size());
      break;
    }
    case PageFormat::kPrefix: {
      size_t shared = restart ? 0 : SharedPrefix(prev_record_, record);
      w.PutVarint(shared);
      w.PutVarint(record.size() - shared);
      framed.append(record.data() + shared, record.size() - shared);
      prev_record_.assign(record.data(), record.size());
      break;
    }
    case PageFormat::kKeyPrefix: {
      ByteReader r(record);
      Result<std::string_view> key = r.GetString();
      if (!key.ok()) {
        return Status::Internal("keyed run record lacks a key prefix");
      }
      std::string_view rest = record.substr(r.position());
      size_t shared_key = restart ? 0 : SharedPrefix(prev_key_, *key);
      size_t shared_rest = restart ? 0 : SharedPrefix(prev_rest_, rest);
      w.PutVarint(shared_key);
      w.PutVarint(key->size() - shared_key);
      w.PutVarint(shared_rest);
      w.PutVarint(rest.size() - shared_rest);
      framed.append(key->data() + shared_key, key->size() - shared_key);
      framed.append(rest.data() + shared_rest, rest.size() - shared_rest);
      prev_key_.assign(key->data(), key->size());
      prev_rest_.assign(rest.data(), rest.size());
      break;
    }
  }

  size_t off = 0;
  while (off < framed.size()) {
    size_t room = disk_->page_size() - buf_.size();
    size_t take = std::min(room, framed.size() - off);
    buf_.append(framed, off, take);
    off += take;
    if (buf_.size() == disk_->page_size()) NDQ_RETURN_IF_ERROR(FlushPage());
  }
  ++run_.num_records;
  run_.payload_bytes += framed.size();
  return Status::OK();
}

Result<Run> RunWriter::Finish() {
  if (finished_) return Status::Internal("double Finish");
  // Mark finished only after the flush succeeds: on error the writer
  // still owns the partial run, and the destructor reclaims it.
  NDQ_RETURN_IF_ERROR(FlushPage());
  finished_ = true;
  return run_;
}

RunReader::RunReader(Disk* disk, const Run& run)
    : disk_(disk), run_(&run), prefetch_(disk, &run.pages) {}

Status RunReader::LoadPage(size_t idx) {
  buf_.resize(disk_->page_size());
  NDQ_RETURN_IF_ERROR(
      prefetch_.Read(idx, reinterpret_cast<uint8_t*>(buf_.data())));
  buf_pos_ = 0;
  page_idx_ = idx + 1;
  return Status::OK();
}

Status RunReader::ReadBytes(size_t n, std::string* out) {
  while (n > 0) {
    if (buf_pos_ >= buf_.size()) {
      if (page_idx_ >= run_->pages.size()) {
        return Status::Corruption("run truncated");
      }
      NDQ_RETURN_IF_ERROR(LoadPage(page_idx_));
    }
    size_t take = std::min(n, buf_.size() - buf_pos_);
    out->append(buf_, buf_pos_, take);
    buf_pos_ += take;
    n -= take;
  }
  return Status::OK();
}

Result<uint64_t> RunReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (buf_pos_ >= buf_.size()) {
      if (page_idx_ >= run_->pages.size()) {
        return Status::Corruption("run truncated in varint");
      }
      NDQ_RETURN_IF_ERROR(LoadPage(page_idx_));
    }
    uint8_t b = static_cast<uint8_t>(buf_[buf_pos_++]);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) return Status::Corruption("varint too long in run");
  }
  return v;
}

Status RunReader::CheckFrameLength(uint64_t claimed) const {
  // No frame can legitimately claim more bytes than the run's pages hold;
  // reject before allocating or looping, so a corrupted length prefix
  // costs O(1) instead of a page-by-page crawl to the truncation error.
  uint64_t capacity =
      static_cast<uint64_t>(run_->pages.size()) * disk_->page_size();
  if (claimed > capacity) {
    return Status::Corruption("record length prefix past run end");
  }
  return Status::OK();
}

Status RunReader::SeekTo(size_t page_idx, size_t byte_offset,
                         uint64_t record_index) {
  if (page_idx >= run_->pages.size()) {
    return Status::OutOfRange("seek past end of run");
  }
  if (byte_offset >= disk_->page_size()) {
    return Status::Corruption("seek offset past page end");
  }
  NDQ_RETURN_IF_ERROR(LoadPage(page_idx));
  buf_pos_ = byte_offset;
  records_read_ = record_index;
  // A seek lands on a restart point, which references no history; any
  // frame that does back-reference from here is caught as corruption in
  // Next() (shared count exceeds the empty reconstruction state).
  prev_key_.clear();
  prev_rest_.clear();
  prev_record_.clear();
  return Status::OK();
}

Result<bool> RunReader::Next(std::string* record) {
  if (records_read_ >= run_->num_records) return false;
  switch (run_->format) {
    case PageFormat::kRaw: {
      NDQ_ASSIGN_OR_RETURN(uint64_t len, ReadVarint());
      NDQ_RETURN_IF_ERROR(CheckFrameLength(len));
      record->clear();
      NDQ_RETURN_IF_ERROR(ReadBytes(len, record));
      break;
    }
    case PageFormat::kPrefix: {
      NDQ_ASSIGN_OR_RETURN(uint64_t shared, ReadVarint());
      NDQ_ASSIGN_OR_RETURN(uint64_t suffix_len, ReadVarint());
      NDQ_RETURN_IF_ERROR(CheckFrameLength(suffix_len));
      if (shared > prev_record_.size()) {
        return Status::Corruption("prefix reference past previous record");
      }
      prev_record_.resize(shared);
      NDQ_RETURN_IF_ERROR(ReadBytes(suffix_len, &prev_record_));
      *record = prev_record_;
      break;
    }
    case PageFormat::kKeyPrefix: {
      NDQ_ASSIGN_OR_RETURN(uint64_t shared_key, ReadVarint());
      NDQ_ASSIGN_OR_RETURN(uint64_t key_suffix, ReadVarint());
      NDQ_ASSIGN_OR_RETURN(uint64_t shared_rest, ReadVarint());
      NDQ_ASSIGN_OR_RETURN(uint64_t rest_suffix, ReadVarint());
      NDQ_RETURN_IF_ERROR(CheckFrameLength(key_suffix));
      NDQ_RETURN_IF_ERROR(CheckFrameLength(rest_suffix));
      if (shared_key > prev_key_.size() ||
          shared_rest > prev_rest_.size()) {
        return Status::Corruption("prefix reference past previous record");
      }
      prev_key_.resize(shared_key);
      NDQ_RETURN_IF_ERROR(ReadBytes(key_suffix, &prev_key_));
      prev_rest_.resize(shared_rest);
      NDQ_RETURN_IF_ERROR(ReadBytes(rest_suffix, &prev_rest_));
      // Re-synthesize the original record: PutString(key) + rest.
      record->clear();
      ByteWriter w(record);
      w.PutString(prev_key_);
      record->append(prev_rest_);
      break;
    }
  }
  ++records_read_;
  return true;
}

}  // namespace ndq
