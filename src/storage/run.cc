#include "storage/run.h"

#include "storage/serde.h"

namespace ndq {

Status FreeRun(Disk* disk, Run* run) {
  // Free every page even if one Free fails: stopping at the first error
  // would strand the remaining pages in the run with some already freed,
  // making a retry double-free. The run is always left empty; the first
  // error (if any) is reported.
  Status first;
  for (PageId p : run->pages) {
    Status s = disk->Free(p);
    if (!s.ok() && first.ok()) first = s;
  }
  run->pages.clear();
  run->num_records = 0;
  run->payload_bytes = 0;
  return first;
}

Result<Run> ReverseRun(Disk* disk, Run run) {
  // Spill forward-order records in ~2-page batches, then replay the
  // batches last-to-first, reversing each batch in memory.
  const size_t batch_budget = 2 * disk->page_size();
  std::vector<Run> batches;
  auto impl = [&]() -> Result<Run> {
    std::vector<std::string> buffer;
    size_t buffered = 0;
    auto flush = [&]() -> Status {
      if (buffer.empty()) return Status::OK();
      RunWriter w(disk);
      for (const std::string& rec : buffer) NDQ_RETURN_IF_ERROR(w.Add(rec));
      NDQ_ASSIGN_OR_RETURN(Run batch, w.Finish());
      batches.push_back(std::move(batch));
      buffer.clear();
      buffered = 0;
      return Status::OK();
    };
    {
      RunReader reader(disk, run);
      std::string rec;
      while (true) {
        NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
        if (!more) break;
        buffered += rec.size();
        buffer.push_back(std::move(rec));
        if (buffered >= batch_budget) NDQ_RETURN_IF_ERROR(flush());
      }
      NDQ_RETURN_IF_ERROR(flush());
    }
    NDQ_RETURN_IF_ERROR(FreeRun(disk, &run));
    RunWriter out(disk);
    std::string rec;
    for (auto bit = batches.rbegin(); bit != batches.rend(); ++bit) {
      std::vector<std::string> recs;
      RunReader reader(disk, *bit);
      while (true) {
        NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
        if (!more) break;
        recs.push_back(std::move(rec));
      }
      for (auto rit = recs.rbegin(); rit != recs.rend(); ++rit) {
        NDQ_RETURN_IF_ERROR(out.Add(*rit));
      }
      NDQ_RETURN_IF_ERROR(FreeRun(disk, &*bit));
    }
    return out.Finish();
  };
  Result<Run> reversed = impl();
  if (!reversed.ok()) {
    // Best-effort cleanup: the input and any surviving spill batches.
    // FreeRun empties each run, so nothing is ever freed twice.
    (void)FreeRun(disk, &run);
    for (Run& b : batches) (void)FreeRun(disk, &b);
  }
  return reversed;
}

RunWriter::RunWriter(Disk* disk) : disk_(disk) {
  buf_.reserve(disk_->page_size());
}

RunWriter::~RunWriter() {
  // A writer destroyed before a successful Finish() owns a partial run
  // that no caller can ever free; return its pages (best-effort — the
  // device may be refusing ops, in which case the campaign's leak check
  // knows to expect it).
  if (!finished_) {
    for (PageId p : run_.pages) (void)disk_->Free(p);
  }
}

Status RunWriter::FlushPage() {
  if (buf_.empty()) return Status::OK();
  buf_.resize(disk_->page_size(), '\0');
  NDQ_ASSIGN_OR_RETURN(PageId id, disk_->Allocate());
  // Track the page before writing it so an abandoned writer frees it too.
  run_.pages.push_back(id);
  NDQ_RETURN_IF_ERROR(
      disk_->WritePage(id, reinterpret_cast<const uint8_t*>(buf_.data())));
  buf_.clear();
  return Status::OK();
}

Status RunWriter::Add(std::string_view record) {
  if (finished_) return Status::Internal("Add after Finish");
  std::string framed;
  ByteWriter w(&framed);
  w.PutVarint(record.size());
  framed.append(record.data(), record.size());

  size_t off = 0;
  while (off < framed.size()) {
    size_t room = disk_->page_size() - buf_.size();
    size_t take = std::min(room, framed.size() - off);
    buf_.append(framed, off, take);
    off += take;
    if (buf_.size() == disk_->page_size()) NDQ_RETURN_IF_ERROR(FlushPage());
  }
  ++run_.num_records;
  run_.payload_bytes += framed.size();
  return Status::OK();
}

Result<Run> RunWriter::Finish() {
  if (finished_) return Status::Internal("double Finish");
  // Mark finished only after the flush succeeds: on error the writer
  // still owns the partial run, and the destructor reclaims it.
  NDQ_RETURN_IF_ERROR(FlushPage());
  finished_ = true;
  return run_;
}

RunReader::RunReader(Disk* disk, const Run& run)
    : disk_(disk), run_(&run), prefetch_(disk, &run.pages) {}

Status RunReader::LoadPage(size_t idx) {
  buf_.resize(disk_->page_size());
  NDQ_RETURN_IF_ERROR(
      prefetch_.Read(idx, reinterpret_cast<uint8_t*>(buf_.data())));
  buf_pos_ = 0;
  page_idx_ = idx + 1;
  return Status::OK();
}

Status RunReader::ReadBytes(size_t n, std::string* out) {
  while (n > 0) {
    if (buf_pos_ >= buf_.size()) {
      if (page_idx_ >= run_->pages.size()) {
        return Status::Corruption("run truncated");
      }
      NDQ_RETURN_IF_ERROR(LoadPage(page_idx_));
    }
    size_t take = std::min(n, buf_.size() - buf_pos_);
    out->append(buf_, buf_pos_, take);
    buf_pos_ += take;
    n -= take;
  }
  return Status::OK();
}

Result<uint64_t> RunReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (buf_pos_ >= buf_.size()) {
      if (page_idx_ >= run_->pages.size()) {
        return Status::Corruption("run truncated in varint");
      }
      NDQ_RETURN_IF_ERROR(LoadPage(page_idx_));
    }
    uint8_t b = static_cast<uint8_t>(buf_[buf_pos_++]);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) return Status::Corruption("varint too long in run");
  }
  return v;
}

Status RunReader::SeekTo(size_t page_idx, size_t byte_offset,
                         uint64_t record_index) {
  if (page_idx >= run_->pages.size()) {
    return Status::OutOfRange("seek past end of run");
  }
  NDQ_RETURN_IF_ERROR(LoadPage(page_idx));
  buf_pos_ = byte_offset;
  records_read_ = record_index;
  return Status::OK();
}

Result<bool> RunReader::Next(std::string* record) {
  if (records_read_ >= run_->num_records) return false;
  NDQ_ASSIGN_OR_RETURN(uint64_t len, ReadVarint());
  record->clear();
  NDQ_RETURN_IF_ERROR(ReadBytes(len, record));
  ++records_read_;
  return true;
}

}  // namespace ndq
