#include "storage/disk.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "storage/async_disk.h"
#include "storage/fault_injector.h"

namespace ndq {

namespace {

constexpr char kDiskMagic[8] = {'n', 'd', 'q', 'd', 'i', 's', 'k', '1'};

// Per-thread stack of attribution scopes (see IoScope in disk.h). Only
// this thread pushes/pops or reads its own stack, so no locking is
// needed; the innermost matching entry receives each operation.
struct ScopeEntry {
  const Disk* disk;  // nullptr = any disk
  IoStats* acc;
};
thread_local std::vector<ScopeEntry> g_io_scopes;

void BumpScoped(const Disk* disk, RelaxedCounter IoStats::* field,
                uint64_t delta = 1) {
  for (auto it = g_io_scopes.rbegin(); it != g_io_scopes.rend(); ++it) {
    if (it->disk == nullptr || it->disk == disk) {
      (it->acc->*field) += delta;
      return;
    }
  }
}

}  // namespace

IoScope::IoScope(const Disk* disk, IoStats* acc) {
  g_io_scopes.push_back(ScopeEntry{disk, acc});
}

IoScope::~IoScope() { g_io_scopes.pop_back(); }

// ---------------------------------------------------------------------------
// Disk (base): accounting, faults, latency, async engine
// ---------------------------------------------------------------------------

Disk::Disk(size_t page_size) : page_size_(page_size) {}

Disk::~Disk() = default;

void Disk::ShutdownAsync() { async_.reset(); }

void Disk::SetIoDepth(size_t depth) {
  async_.reset();
  if (depth > 0) async_ = std::make_unique<AsyncDisk>(this, depth);
}

size_t Disk::io_depth() const {
  return async_ == nullptr ? 0 : async_->io_depth();
}

void Disk::SimulateLatency() const {
  uint32_t us = latency_micros_.load(std::memory_order_relaxed);
  if (us == 0) return;
  // sleep_for (not a spin) so concurrent transfers overlap even on a
  // single core — the point of the simulation.
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

Status Disk::CheckFault(FaultOp op, PageId id) {
  FaultInjector* fi = injector_.load(std::memory_order_acquire);
  if (fi == nullptr) return Status::OK();
  Status s = fi->Check(op, id);
  if (!s.ok()) {
    ++stats_.faults_injected;
    BumpScoped(this, &IoStats::faults_injected);
  }
  return s;
}

Result<PageId> Disk::Allocate() {
  NDQ_RETURN_IF_ERROR(CheckFault(FaultOp::kAllocate, kInvalidPage));
  NDQ_ASSIGN_OR_RETURN(PageId id, DoAllocate());
  ++stats_.pages_allocated;
  BumpScoped(this, &IoStats::pages_allocated);
  live_pages_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Status Disk::Free(PageId id) {
  NDQ_RETURN_IF_ERROR(CheckFault(FaultOp::kFree, id));
  NDQ_RETURN_IF_ERROR(DoFree(id));
  ++stats_.pages_freed;
  BumpScoped(this, &IoStats::pages_freed);
  live_pages_.fetch_sub(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Disk::ReadPage(PageId id, uint8_t* buf) {
  NDQ_RETURN_IF_ERROR(CheckFault(FaultOp::kRead, id));
  const auto start = std::chrono::steady_clock::now();
  NDQ_RETURN_IF_ERROR(DoRead(id, buf));
  ++stats_.page_reads;
  BumpScoped(this, &IoStats::page_reads);
  SimulateLatency();
  RecordReadSample(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return Status::OK();
}

Status Disk::WritePage(PageId id, const uint8_t* buf) {
  NDQ_RETURN_IF_ERROR(CheckFault(FaultOp::kWrite, id));
  NDQ_RETURN_IF_ERROR(DoWrite(id, buf));
  ++stats_.page_writes;
  BumpScoped(this, &IoStats::page_writes);
  SimulateLatency();
  return Status::OK();
}

Status Disk::Sync() {
  NDQ_RETURN_IF_ERROR(CheckFault(FaultOp::kSync, kInvalidPage));
  return DoSync();
}

Status Disk::PhysicalRead(PageId id, uint8_t* buf) {
  // No fault consult, no counters: this transfer is not yet part of the
  // simulated op stream. The I/O worker absorbs the device latency so the
  // eventual consumer does not have to.
  const auto start = std::chrono::steady_clock::now();
  Status s = DoRead(id, buf);
  if (s.ok()) {
    SimulateLatency();
    RecordReadSample(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  return s;
}

Status Disk::FinishAsyncRead(PageId id, const Status& physical) {
  // Same observable order as the synchronous ReadPage: the injector is
  // consulted first (a firing rule means the transfer "never happened" —
  // the already-performed physical read is discarded), then the physical
  // outcome, and only a successful consumption counts a page read.
  NDQ_RETURN_IF_ERROR(CheckFault(FaultOp::kRead, id));
  NDQ_RETURN_IF_ERROR(physical);
  ++stats_.page_reads;
  BumpScoped(this, &IoStats::page_reads);
  return Status::OK();
}

void Disk::CountPrefetchHit() {
  ++stats_.prefetch_hits;
  BumpScoped(this, &IoStats::prefetch_hits);
}

void Disk::CountPrefetchWasted(uint64_t n) {
  if (n == 0) return;
  stats_.prefetch_wasted += n;
  BumpScoped(this, &IoStats::prefetch_wasted, n);
}

void Disk::AddIoWaitMicros(uint64_t us) {
  if (us == 0) return;
  stats_.io_wait_us += us;
  BumpScoped(this, &IoStats::io_wait_us, us);
}

namespace {
// Reads completing faster than this are cheaper than an async-queue
// round trip (submit, wake a worker, complete, wake the consumer), so
// prefetching them through the engine can only lose. A SimDisk with
// bench-grade simulated latency (tens of microseconds) stays well above
// it; a warm FileDisk served from the OS page cache sits well below.
constexpr uint64_t kPrefetchMinReadNanos = 15000;
// Before this many samples the estimate is noise; stay optimistic so
// cold scans still stream ahead (and so short unit-test scans exercise
// the prefetch path deterministically).
constexpr uint64_t kReadSampleWarmup = 8;
}  // namespace

void Disk::RecordReadSample(uint64_t ns) {
  // EWMA with alpha = 1/8. Relaxed load/store pair: a racing writer can
  // drop a sample, which only delays convergence.
  uint64_t old = read_ewma_ns_.load(std::memory_order_relaxed);
  uint64_t next = (read_samples_.load(std::memory_order_relaxed) == 0)
                      ? ns
                      : old - old / 8 + ns / 8;
  read_ewma_ns_.store(next, std::memory_order_relaxed);
  read_samples_.fetch_add(1, std::memory_order_relaxed);
}

bool Disk::PrefetchWorthwhile() const {
  if (read_samples_.load(std::memory_order_relaxed) < kReadSampleWarmup) {
    return true;
  }
  return read_ewma_ns_.load(std::memory_order_relaxed) >=
         kPrefetchMinReadNanos;
}

// ---------------------------------------------------------------------------
// SimDisk
// ---------------------------------------------------------------------------

SimDisk::~SimDisk() {
  // Join the I/O workers before the chunks they read from disappear.
  ShutdownAsync();
  FreeAllChunks();
}

void SimDisk::FreeAllChunks() {
  for (auto& chunk : chunks_) {
    PageSlot* p = chunk.load(std::memory_order_relaxed);
    if (p != nullptr) delete[] p;
    chunk.store(nullptr, std::memory_order_relaxed);
  }
}

SimDisk::PageSlot* SimDisk::SlotFor(PageId id) const {
  if (id >= num_slots_.load(std::memory_order_acquire)) return nullptr;
  PageSlot* chunk = chunks_[id >> kChunkBits].load(std::memory_order_acquire);
  if (chunk == nullptr) return nullptr;
  return &chunk[id & (kChunkSize - 1)];
}

Status SimDisk::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open for write: " + path);
  }
  auto fail = [&](const char* what) {
    std::fclose(f);
    return Status::Internal(std::string("disk save: ") + what + ": " + path);
  };
  uint64_t page_size = this->page_size();
  uint64_t num_slots = num_slots_.load(std::memory_order_acquire);
  if (std::fwrite(kDiskMagic, 1, 8, f) != 8 ||
      std::fwrite(&page_size, sizeof page_size, 1, f) != 1 ||
      std::fwrite(&num_slots, sizeof num_slots, 1, f) != 1) {
    return fail("header write failed");
  }
  for (uint64_t i = 0; i < num_slots; ++i) {
    const PageSlot* slot = SlotFor(static_cast<PageId>(i));
    uint8_t live = (slot != nullptr && slot->live) ? 1 : 0;
    if (std::fwrite(&live, 1, 1, f) != 1) return fail("slot flag");
    if (live &&
        std::fwrite(slot->data.get(), 1, page_size, f) != page_size) {
      return fail("page payload");
    }
  }
  if (std::fclose(f) != 0) {
    return Status::Internal("disk save: close failed: " + path);
  }
  return Status::OK();
}

Status SimDisk::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open for read: " + path);
  }
  auto fail = [&](const char* what) {
    std::fclose(f);
    return Status::Corruption(std::string("disk load: ") + what + ": " +
                              path);
  };
  char magic[8];
  uint64_t page_size = 0, num_slots = 0;
  if (std::fread(magic, 1, 8, f) != 8 ||
      std::memcmp(magic, kDiskMagic, 8) != 0) {
    return fail("bad magic");
  }
  if (std::fread(&page_size, sizeof page_size, 1, f) != 1 ||
      std::fread(&num_slots, sizeof num_slots, 1, f) != 1) {
    return fail("short header");
  }
  if (page_size != this->page_size()) {
    std::fclose(f);
    return Status::InvalidArgument(
        "disk image page size " + std::to_string(page_size) +
        " does not match device page size " +
        std::to_string(this->page_size()));
  }
  if (num_slots > kMaxChunks * kChunkSize) {
    return fail("image larger than device capacity");
  }
  std::lock_guard<std::mutex> lock(alloc_mu_);
  FreeAllChunks();
  num_slots_.store(0, std::memory_order_release);
  free_list_.clear();
  size_t live = 0;
  for (uint64_t i = 0; i < num_slots; ++i) {
    uint8_t flag = 0;
    if (std::fread(&flag, 1, 1, f) != 1) return fail("short slot flag");
    size_t chunk_idx = i >> kChunkBits;
    if (chunks_[chunk_idx].load(std::memory_order_relaxed) == nullptr) {
      chunks_[chunk_idx].store(new PageSlot[kChunkSize],
                               std::memory_order_release);
    }
    PageSlot& slot =
        chunks_[chunk_idx].load(std::memory_order_relaxed)[i &
                                                           (kChunkSize - 1)];
    slot.data = std::make_unique<uint8_t[]>(page_size);
    if (flag != 0) {
      if (std::fread(slot.data.get(), 1, page_size, f) != page_size) {
        return fail("short page payload");
      }
      slot.live = true;
      ++live;
    } else {
      std::memset(slot.data.get(), 0, page_size);
      slot.live = false;
      free_list_.push_back(static_cast<PageId>(i));
    }
  }
  std::fclose(f);
  num_slots_.store(num_slots, std::memory_order_release);
  set_live_pages(live);
  return Status::OK();
}

Result<PageId> SimDisk::DoAllocate() {
  PageId id;
  {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
    } else {
      size_t n = num_slots_.load(std::memory_order_relaxed);
      if (n >= kMaxChunks * kChunkSize) {
        return Status::ResourceExhausted(
            "SimDisk: page table capacity exhausted (" + std::to_string(n) +
            " slots)");
      }
      size_t chunk_idx = n >> kChunkBits;
      if (chunks_[chunk_idx].load(std::memory_order_relaxed) == nullptr) {
        chunks_[chunk_idx].store(new PageSlot[kChunkSize],
                                 std::memory_order_release);
      }
      id = static_cast<PageId>(n);
      num_slots_.store(n + 1, std::memory_order_release);
    }
  }
  PageSlot* slot = SlotFor(id);
  {
    std::lock_guard<std::mutex> lock(ShardFor(id));
    if (slot->data == nullptr) {
      slot->data = std::make_unique<uint8_t[]>(page_size());
    }
    std::memset(slot->data.get(), 0, page_size());
    slot->live = true;
  }
  return id;
}

Status SimDisk::DoFree(PageId id) {
  PageSlot* slot = SlotFor(id);
  if (slot != nullptr) {
    std::lock_guard<std::mutex> lock(ShardFor(id));
    if (!slot->live) slot = nullptr;
    if (slot != nullptr) slot->live = false;
  }
  if (slot == nullptr) {
    return Status::InvalidArgument("freeing invalid page " +
                                   std::to_string(id));
  }
  std::lock_guard<std::mutex> lock(alloc_mu_);
  free_list_.push_back(id);
  return Status::OK();
}

Status SimDisk::DoRead(PageId id, uint8_t* buf) {
  PageSlot* slot = SlotFor(id);
  if (slot != nullptr) {
    std::lock_guard<std::mutex> lock(ShardFor(id));
    if (slot->live) {
      std::memcpy(buf, slot->data.get(), page_size());
      return Status::OK();
    }
  }
  return Status::OutOfRange("reading invalid page " + std::to_string(id));
}

Status SimDisk::DoWrite(PageId id, const uint8_t* buf) {
  PageSlot* slot = SlotFor(id);
  if (slot != nullptr) {
    std::lock_guard<std::mutex> lock(ShardFor(id));
    if (slot->live) {
      std::memcpy(slot->data.get(), buf, page_size());
      return Status::OK();
    }
  }
  return Status::OutOfRange("writing invalid page " + std::to_string(id));
}

}  // namespace ndq
