#include "storage/disk.h"

#include <cstdio>
#include <cstring>

namespace ndq {

namespace {
constexpr char kDiskMagic[8] = {'n', 'd', 'q', 'd', 'i', 's', 'k', '1'};
}  // namespace

Status SimDisk::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open for write: " + path);
  }
  auto fail = [&](const char* what) {
    std::fclose(f);
    return Status::Internal(std::string("disk save: ") + what + ": " + path);
  };
  uint64_t page_size = page_size_;
  uint64_t num_slots = pages_.size();
  if (std::fwrite(kDiskMagic, 1, 8, f) != 8 ||
      std::fwrite(&page_size, sizeof page_size, 1, f) != 1 ||
      std::fwrite(&num_slots, sizeof num_slots, 1, f) != 1) {
    return fail("header write failed");
  }
  for (const PageSlot& slot : pages_) {
    uint8_t live = slot.live ? 1 : 0;
    if (std::fwrite(&live, 1, 1, f) != 1) return fail("slot flag");
    if (slot.live &&
        std::fwrite(slot.data.get(), 1, page_size_, f) != page_size_) {
      return fail("page payload");
    }
  }
  if (std::fclose(f) != 0) {
    return Status::Internal("disk save: close failed: " + path);
  }
  return Status::OK();
}

Status SimDisk::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open for read: " + path);
  }
  auto fail = [&](const char* what) {
    std::fclose(f);
    return Status::Corruption(std::string("disk load: ") + what + ": " +
                              path);
  };
  char magic[8];
  uint64_t page_size = 0, num_slots = 0;
  if (std::fread(magic, 1, 8, f) != 8 ||
      std::memcmp(magic, kDiskMagic, 8) != 0) {
    return fail("bad magic");
  }
  if (std::fread(&page_size, sizeof page_size, 1, f) != 1 ||
      std::fread(&num_slots, sizeof num_slots, 1, f) != 1) {
    return fail("short header");
  }
  if (page_size != page_size_) {
    std::fclose(f);
    return Status::InvalidArgument(
        "disk image page size " + std::to_string(page_size) +
        " does not match device page size " + std::to_string(page_size_));
  }
  std::vector<PageSlot> slots(num_slots);
  std::vector<PageId> free_list;
  size_t live = 0;
  for (uint64_t i = 0; i < num_slots; ++i) {
    uint8_t flag = 0;
    if (std::fread(&flag, 1, 1, f) != 1) return fail("short slot flag");
    slots[i].data = std::make_unique<uint8_t[]>(page_size_);
    if (flag != 0) {
      if (std::fread(slots[i].data.get(), 1, page_size_, f) != page_size_) {
        return fail("short page payload");
      }
      slots[i].live = true;
      ++live;
    } else {
      std::memset(slots[i].data.get(), 0, page_size_);
      free_list.push_back(static_cast<PageId>(i));
    }
  }
  std::fclose(f);
  pages_ = std::move(slots);
  free_list_ = std::move(free_list);
  live_pages_ = live;
  return Status::OK();
}

PageId SimDisk::Allocate() {
  ++stats_.pages_allocated;
  ++live_pages_;
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    PageSlot& slot = pages_[id];
    slot.live = true;
    std::memset(slot.data.get(), 0, page_size_);
    return id;
  }
  PageId id = static_cast<PageId>(pages_.size());
  PageSlot slot;
  slot.data = std::make_unique<uint8_t[]>(page_size_);
  std::memset(slot.data.get(), 0, page_size_);
  slot.live = true;
  pages_.push_back(std::move(slot));
  return id;
}

Status SimDisk::Free(PageId id) {
  if (id >= pages_.size() || !pages_[id].live) {
    return Status::InvalidArgument("freeing invalid page " +
                                   std::to_string(id));
  }
  pages_[id].live = false;
  free_list_.push_back(id);
  ++stats_.pages_freed;
  --live_pages_;
  return Status::OK();
}

Status SimDisk::ReadPage(PageId id, uint8_t* buf) {
  if (id >= pages_.size() || !pages_[id].live) {
    return Status::OutOfRange("reading invalid page " + std::to_string(id));
  }
  std::memcpy(buf, pages_[id].data.get(), page_size_);
  ++stats_.page_reads;
  return Status::OK();
}

Status SimDisk::WritePage(PageId id, const uint8_t* buf) {
  if (id >= pages_.size() || !pages_[id].live) {
    return Status::OutOfRange("writing invalid page " + std::to_string(id));
  }
  std::memcpy(pages_[id].data.get(), buf, page_size_);
  ++stats_.page_writes;
  return Status::OK();
}

}  // namespace ndq
