// A pinning LRU buffer pool over the simulated disk.
//
// Random-access structures (the B+-tree indexes, the entry-store segment
// directory) go through the pool; sequential runs deliberately bypass it
// with single-page buffers. Pool hits cost no disk I/O, so index lookups
// on hot paths show realistic cost structure in the benchmarks.
//
// The pool is safe for concurrent use: one mutex guards the frame map and
// LRU list (frame payloads are heap blocks with stable addresses, so a
// pinned handle's data() stays valid without the lock). Two threads may
// pin the same page; coordinating writes to shared frame BYTES is the
// caller's job, as it always was single-threaded.
//
// Miss handling is deduplicated: a miss installs a pinned "loading" frame
// and performs the disk read OUTSIDE the pool mutex, so concurrent misses
// on distinct pages overlap their transfers, while a second thread
// pinning the SAME page waits for the first fetch instead of reading the
// page twice. Hit/miss accounting is identical to the old serialized
// pool: the waiter counts a hit exactly where it would have found the
// frame resident, and if the fetch fails the waiter retries as the
// fetcher (a fresh miss), preserving one-shot fault-injection semantics.

#ifndef NDQ_STORAGE_BUFFER_POOL_H_
#define NDQ_STORAGE_BUFFER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "storage/disk.h"

namespace ndq {

class BufferPool;

/// RAII pin on a page frame. While alive, the frame cannot be evicted and
/// data() stays valid. Mark dirty after mutating.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, PageId id, uint8_t* data);
  ~PageHandle();

  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  void MarkDirty();

  /// Explicitly releases the pin (also done by the destructor).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPage;
  uint8_t* data_ = nullptr;
  bool dirty_ = false;
};

struct BufferPoolStats {
  RelaxedCounter hits = 0;
  RelaxedCounter misses = 0;
  RelaxedCounter evictions = 0;
  RelaxedCounter dirty_writebacks = 0;
};

class BufferPool {
 public:
  /// `capacity` is the number of page frames.
  BufferPool(Disk* disk, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page, reading it from disk on a miss. Fails with
  /// ResourceExhausted when every frame is pinned.
  Result<PageHandle> Pin(PageId id);

  /// Allocates a fresh disk page and pins it (no read I/O; the new frame
  /// starts zeroed and dirty).
  Result<PageHandle> New();

  /// Writes back all dirty frames.
  Status FlushAll();

  /// Drops a page from the pool (it must be unpinned) and frees it on disk.
  Status FreePage(PageId id);

  const BufferPoolStats& stats() const { return stats_; }
  size_t capacity() const { return capacity_; }
  Disk* disk() { return disk_; }

  /// Current number of resident frames (for memory accounting in tests).
  size_t resident() const {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_.size();
  }

 private:
  friend class PageHandle;

  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    int pin_count = 0;
    bool dirty = false;
    /// The fetching thread is filling `data` outside the pool mutex;
    /// held pinned (pin_count 1) so it cannot be evicted or freed.
    bool loading = false;
    std::list<PageId>::iterator lru_it;  // valid iff pin_count == 0
    bool in_lru = false;
  };

  void Unpin(PageId id, bool dirty);
  Status EvictOne();  // caller holds mu_

  Disk* disk_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable load_cv_;  // a loading frame resolved
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = least recently used
  BufferPoolStats stats_;
};

}  // namespace ndq

#endif  // NDQ_STORAGE_BUFFER_POOL_H_
