// A stack with bounded in-memory residency that spills to the simulated
// disk.
//
// The hierarchical-selection algorithms (Figs. 2, 4, 5, 6) push one stack
// entry per input entry in the worst case (a root-to-leaf chain), so the
// stack itself can exceed main memory. The crux of the Theorem 5.1 proof
// is that "although particular stack entries may be swapped out (and
// eventually re-fetched) multiple times ... the overall I/O is O(|L1|/B +
// |L2|/B)": every spilled batch is written once and read back at most once
// before being discarded, so stack traffic is amortized O(items/B) pages.
// SpillableStack realizes exactly that policy: a fixed in-memory window;
// on overflow the bottom half is written out as one run; on underflow the
// most recent spilled batch is reloaded and its pages freed.

#ifndef NDQ_STORAGE_SPILL_STACK_H_
#define NDQ_STORAGE_SPILL_STACK_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "storage/run.h"

namespace ndq {

template <typename T>
class SpillableStack {
 public:
  using SerializeFn = std::function<void(const T&, std::string*)>;
  using DeserializeFn = std::function<Result<T>(std::string_view)>;

  /// `window` is the maximum number of items held in memory (>= 2). For
  /// the amortized O(items/B) I/O bound to hold, size it so that half a
  /// window of serialized items spans at least one disk page (the spill
  /// batch is the unit of transfer). `shape` describes what `ser`
  /// produces: pass kKeyed when serialized items lead with a PutString
  /// sort key, so spill batches get key-aware prefix compression.
  SpillableStack(Disk* disk, size_t window, SerializeFn ser,
                 DeserializeFn deser,
                 RecordShape shape = RecordShape::kOpaque)
      : disk_(disk),
        window_(window < 2 ? 2 : window),
        ser_(std::move(ser)),
        deser_(std::move(deser)),
        shape_(shape) {}

  ~SpillableStack() {
    for (Batch& b : batches_) FreeRun(disk_, &b.run);
  }

  SpillableStack(const SpillableStack&) = delete;
  SpillableStack& operator=(const SpillableStack&) = delete;

  bool Empty() const { return window_items_.empty() && batches_.empty(); }

  size_t Size() const {
    size_t n = window_items_.size();
    for (const Batch& b : batches_) n += b.count;
    return n;
  }

  Status Push(T item) {
    if (window_items_.size() >= window_) NDQ_RETURN_IF_ERROR(SpillBottom());
    window_items_.push_back(std::move(item));
    ++size_;
    if (size_ > peak_size_) peak_size_ = size_;
    return Status::OK();
  }

  /// The top item; requires a non-empty in-memory window (guaranteed after
  /// any successful Push/Pop on a non-empty stack).
  T& Top() { return window_items_.back(); }

  Result<T> Pop() {
    if (window_items_.empty()) {
      if (batches_.empty()) return Status::OutOfRange("pop from empty stack");
      NDQ_RETURN_IF_ERROR(ReloadBatch());
    }
    T item = std::move(window_items_.back());
    window_items_.pop_back();
    if (size_ > 0) --size_;
    // Keep Top() valid: if the window drained but spilled batches remain,
    // reload eagerly.
    if (window_items_.empty() && !batches_.empty()) {
      NDQ_RETURN_IF_ERROR(ReloadBatch());
    }
    return item;
  }

  /// Number of spill / reload events (for tests).
  size_t spill_count() const { return spill_count_; }

  /// Largest item count ever held (execution tracing: the worst
  /// root-to-leaf chain the operator encountered).
  size_t peak_size() const { return peak_size_; }

 private:
  struct Batch {
    Run run;
    size_t count = 0;
  };

  Status SpillBottom() {
    size_t n = window_items_.size() / 2;
    if (n == 0) n = 1;
    RunWriter writer(disk_, shape_);
    std::string buf;
    for (size_t i = 0; i < n; ++i) {
      buf.clear();
      ser_(window_items_[i], &buf);
      NDQ_RETURN_IF_ERROR(writer.Add(buf));
    }
    NDQ_ASSIGN_OR_RETURN(Run run, writer.Finish());
    batches_.push_back(Batch{std::move(run), n});
    window_items_.erase(window_items_.begin(), window_items_.begin() + n);
    ++spill_count_;
    return Status::OK();
  }

  Status ReloadBatch() {
    // Read the batch IN PLACE: the spilled pages stay live (and owned by
    // batches_) until every item has deserialized and been applied to the
    // window. A read or deserialize error therefore leaves the stack
    // exactly as it was — the batch survives for a retry — instead of
    // losing the remaining items with their pages already freed.
    Batch& batch = batches_.back();
    RunReader reader(disk_, batch.run);
    std::deque<T> reloaded;
    std::string rec;
    while (true) {
      NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
      if (!more) break;
      NDQ_ASSIGN_OR_RETURN(T item, deser_(rec));
      reloaded.push_back(std::move(item));
    }
    // Reloaded items sit *below* whatever is still in the window.
    for (auto it = reloaded.rbegin(); it != reloaded.rend(); ++it) {
      window_items_.push_front(std::move(*it));
    }
    Run run = std::move(batch.run);
    batches_.pop_back();
    ++spill_count_;
    // The batch is applied; only now give its pages back. A failed Free
    // no longer endangers any data, so the error is purely advisory.
    return FreeRun(disk_, &run);
  }

  Disk* disk_;
  size_t window_;
  SerializeFn ser_;
  DeserializeFn deser_;
  RecordShape shape_ = RecordShape::kOpaque;
  std::deque<T> window_items_;  // front = deepest in-memory item
  std::vector<Batch> batches_;  // stack of spilled batches, back = newest
  size_t spill_count_ = 0;
  size_t size_ = 0;
  size_t peak_size_ = 0;
};

}  // namespace ndq

#endif  // NDQ_STORAGE_SPILL_STACK_H_
