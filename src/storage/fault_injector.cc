#include "storage/fault_injector.h"

#include <cstdlib>

namespace ndq {

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kRead:
      return "read";
    case FaultOp::kWrite:
      return "write";
    case FaultOp::kAllocate:
      return "alloc";
    case FaultOp::kFree:
      return "free";
    case FaultOp::kSync:
      return "sync";
  }
  return "?";
}

Status FaultInjector::Check(FaultOp op, uint32_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  bool fire = false;
  for (Rule& r : rules_) {
    if ((r.ops & FaultOpBit(op)) == 0) continue;
    if (r.has_page && r.page != page) continue;
    ++r.seen;
    bool hit = false;
    if (r.tripped && r.sticky) {
      hit = true;
    } else if (r.nth != 0 && r.seen == r.nth) {
      hit = true;
    } else if (r.every_kth != 0 && r.seen % r.every_kth == 0) {
      hit = true;
    } else if (r.probability > 0.0) {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      if (dist(rng_) < r.probability) hit = true;
    }
    if (hit) {
      r.tripped = true;
      fire = true;
    }
  }
  ++seen_;
  if (!fire) return Status::OK();
  ++fired_;
  return Status::Unavailable("injected fault: " + std::string(FaultOpName(op)) +
                             " page " + std::to_string(page) + " (op #" +
                             std::to_string(seen_) + ")");
}

Result<FaultInjector> FaultInjector::Parse(const std::string& spec) {
  auto split = [](const std::string& s, char sep) {
    std::vector<std::string> parts;
    size_t start = 0;
    while (start <= s.size()) {
      size_t end = s.find(sep, start);
      if (end == std::string::npos) end = s.size();
      parts.push_back(s.substr(start, end - start));
      start = end + 1;
    }
    return parts;
  };
  auto parse_u64 = [](const std::string& s, uint64_t* out) {
    if (s.empty()) return false;
    char* end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return false;
    *out = v;
    return true;
  };

  std::vector<Rule> rules;
  uint64_t seed = 0;
  for (const std::string& rule_spec : split(spec, ';')) {
    if (rule_spec.empty()) continue;
    std::vector<std::string> fields = split(rule_spec, ':');
    Rule r;
    // First field: the op set.
    r.ops = 0;
    for (const std::string& op : split(fields[0], '|')) {
      if (op == "read") {
        r.ops |= FaultOpBit(FaultOp::kRead);
      } else if (op == "write") {
        r.ops |= FaultOpBit(FaultOp::kWrite);
      } else if (op == "alloc") {
        r.ops |= FaultOpBit(FaultOp::kAllocate);
      } else if (op == "free") {
        r.ops |= FaultOpBit(FaultOp::kFree);
      } else if (op == "sync") {
        r.ops |= FaultOpBit(FaultOp::kSync);
      } else if (op == "any") {
        r.ops |= kFaultAllOps;
      } else {
        return Status::InvalidArgument("fault spec: unknown op '" + op +
                                       "' in '" + rule_spec + "'");
      }
    }
    for (size_t i = 1; i < fields.size(); ++i) {
      const std::string& f = fields[i];
      uint64_t v = 0;
      if (f == "sticky") {
        r.sticky = true;
      } else if (f.rfind("n=", 0) == 0 && parse_u64(f.substr(2), &v) &&
                 v > 0) {
        r.nth = v;
      } else if (f.rfind("every=", 0) == 0 && parse_u64(f.substr(6), &v) &&
                 v > 0) {
        r.every_kth = v;
      } else if (f.rfind("page=", 0) == 0 && parse_u64(f.substr(5), &v)) {
        r.has_page = true;
        r.page = static_cast<uint32_t>(v);
      } else if (f.rfind("seed=", 0) == 0 && parse_u64(f.substr(5), &v)) {
        seed = v;
      } else if (f.rfind("p=", 0) == 0) {
        char* end = nullptr;
        double p = std::strtod(f.c_str() + 2, &end);
        if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
          return Status::InvalidArgument("fault spec: bad probability '" + f +
                                         "'");
        }
        r.probability = p;
      } else {
        return Status::InvalidArgument("fault spec: unknown field '" + f +
                                       "' in '" + rule_spec + "'");
      }
    }
    if (r.nth == 0 && r.every_kth == 0 && r.probability == 0.0) {
      if (r.has_page) {
        r.every_kth = 1;  // "read:page=7" means every touch of page 7.
      } else {
        return Status::InvalidArgument(
            "fault spec: rule '" + rule_spec +
            "' needs a trigger (n=, every=, p= or page=)");
      }
    }
    rules.push_back(r);
  }
  if (rules.empty()) {
    return Status::InvalidArgument("fault spec: no rules in '" + spec + "'");
  }
  return FaultInjector(std::move(rules), seed);
}

}  // namespace ndq
