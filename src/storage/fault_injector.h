// Deterministic fault injection for the simulated disk.
//
// The paper's algorithms are proven under the assumption that every page
// transfer succeeds; production directories do not get that luxury. A
// FaultInjector is a scriptable policy object that SimDisk consults before
// performing each Read/Write/Allocate/Free: when a rule fires, the device
// refuses the operation with Status::Unavailable BEFORE any side effect,
// exactly like a transient device error. Campaign drivers (tests/testing/
// fault_campaign.h) sweep "fail op #k" for every k to prove that every
// error path propagates a clean Status and leaks no pages.
//
// Rules are deterministic by construction: triggers are expressed against
// a per-rule count of eligible operations ("the Nth matching op", "every
// Kth matching op"), optionally filtered by operation kind and page id.
// A probabilistic mode exists for soak testing and is seeded, so a given
// (seed, op sequence) pair always yields the same faults.
//
// The hook is zero-cost when disabled: SimDisk keeps an atomic pointer
// that is nullptr in normal operation, so the fast path is one relaxed
// load and a predictable branch.

#ifndef NDQ_STORAGE_FAULT_INJECTOR_H_
#define NDQ_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "core/status.h"

namespace ndq {

/// The injectable operation kinds, usable as bitmask positions. kSync is
/// the whole-device durability barrier (Disk::Sync), not a page transfer.
enum class FaultOp : uint8_t {
  kRead = 0,
  kWrite = 1,
  kAllocate = 2,
  kFree = 3,
  kSync = 4,
};

const char* FaultOpName(FaultOp op);

inline constexpr uint32_t FaultOpBit(FaultOp op) {
  return uint32_t{1} << static_cast<uint8_t>(op);
}
/// The page-transfer ops. kSync is deliberately NOT part of "all": sweeps
/// and the "any" spec keyword predate it and keep their op streams; rules
/// that want sync faults name it explicitly ("sync:n=1", kFaultSyncOps).
inline constexpr uint32_t kFaultAllOps =
    FaultOpBit(FaultOp::kRead) | FaultOpBit(FaultOp::kWrite) |
    FaultOpBit(FaultOp::kAllocate) | FaultOpBit(FaultOp::kFree);
inline constexpr uint32_t kFaultSyncOps = FaultOpBit(FaultOp::kSync);

/// \brief A seeded, scriptable I/O fault policy.
///
/// Holds an ordered list of rules; each eligible operation is offered to
/// every rule (all matching rules advance their counters) and fails if any
/// rule fires. Thread-safe: SimDisk may call Check() from many evaluator
/// threads concurrently.
class FaultInjector {
 public:
  struct Rule {
    /// Which operations this rule applies to (kFaultAllOps by default).
    uint32_t ops = kFaultAllOps;
    /// Fire on the Nth eligible operation (1-based). 0 = not used.
    uint64_t nth = 0;
    /// Fire on every Kth eligible operation. 0 = not used.
    uint64_t every_kth = 0;
    /// Fire with this probability per eligible op (seeded). 0 = not used.
    double probability = 0.0;
    /// Once triggered, keep failing every subsequent eligible op
    /// (a dead device) instead of firing once (a transient fault).
    bool sticky = false;
    /// Restrict the rule to one page id (reads/writes/frees of that page).
    bool has_page = false;
    uint32_t page = 0;

    // Internal trigger state.
    uint64_t seen = 0;
    bool tripped = false;
  };

  FaultInjector() = default;
  explicit FaultInjector(std::vector<Rule> rules, uint64_t seed = 0)
      : rules_(std::move(rules)), rng_(seed) {}

  // Movable (the mutex is state-free) so it can travel inside Result<>.
  // Do not move an injector that is still attached to a SimDisk.
  FaultInjector(FaultInjector&& other) noexcept {
    std::lock_guard<std::mutex> lock(other.mu_);
    rules_ = std::move(other.rules_);
    rng_ = other.rng_;
    fired_ = other.fired_;
    seen_ = other.seen_;
  }
  FaultInjector& operator=(FaultInjector&& other) noexcept {
    if (this != &other) {
      std::scoped_lock lock(mu_, other.mu_);
      rules_ = std::move(other.rules_);
      rng_ = other.rng_;
      fired_ = other.fired_;
      seen_ = other.seen_;
    }
    return *this;
  }

  /// Convenience: fail the Nth operation matching `ops` (1-based),
  /// one-shot unless `sticky`.
  static Rule FailNth(uint64_t n, uint32_t ops = kFaultAllOps,
                      bool sticky = false) {
    Rule r;
    r.ops = ops;
    r.nth = n;
    r.sticky = sticky;
    return r;
  }
  /// Convenience: fail every Kth operation matching `ops`.
  static Rule FailEveryKth(uint64_t k, uint32_t ops = kFaultAllOps) {
    Rule r;
    r.ops = ops;
    r.every_kth = k;
    return r;
  }
  /// Convenience: fail every operation touching `page`.
  static Rule FailPage(uint32_t page, uint32_t ops = kFaultAllOps) {
    Rule r;
    r.ops = ops;
    r.has_page = true;
    r.page = page;
    r.every_kth = 1;
    return r;
  }

  void AddRule(Rule rule) {
    std::lock_guard<std::mutex> lock(mu_);
    rules_.push_back(rule);
  }

  /// Parses a scripted policy, e.g. from ndqsh `.set faults <spec>`:
  ///
  ///   spec  := rule (';' rule)*
  ///   rule  := ops (':' field)*
  ///   ops   := ("read"|"write"|"alloc"|"free"|"sync"|"any") ('|' ops)?
  ///   field := "n=" N        -- fire on the Nth eligible op (1-based)
  ///          | "every=" K    -- fire on every Kth eligible op
  ///          | "p=" P        -- fire with probability P per eligible op
  ///          | "seed=" S     -- RNG seed for probabilistic rules
  ///          | "page=" ID    -- only ops touching page ID
  ///          | "sticky"      -- keep failing after the first trigger
  ///
  /// Examples: "read:n=5", "write:every=3:sticky", "any:p=0.01:seed=42",
  /// "read:page=12:n=1;alloc:n=2".
  static Result<FaultInjector> Parse(const std::string& spec);

  /// Offers one operation to the policy. Returns OK to let it proceed or
  /// Status::Unavailable (before any device side effect) to fail it.
  Status Check(FaultOp op, uint32_t page);

  /// Total faults this injector has fired.
  uint64_t faults_fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fired_;
  }
  /// Eligible operations offered to the policy (fired or not).
  uint64_t ops_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_;
  }

  /// Resets trigger state (per-rule counters, fired counts); rules stay.
  void ResetCounters() {
    std::lock_guard<std::mutex> lock(mu_);
    for (Rule& r : rules_) {
      r.seen = 0;
      r.tripped = false;
    }
    fired_ = 0;
    seen_ = 0;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Rule> rules_;
  std::mt19937_64 rng_{0};
  uint64_t fired_ = 0;
  uint64_t seen_ = 0;
};

}  // namespace ndq

#endif  // NDQ_STORAGE_FAULT_INJECTOR_H_
