// Sequential record runs on the simulated disk.
//
// A Run is the unit of inter-operator data flow in the evaluation engine:
// a chain of pages holding length-prefixed records. Writers and readers
// each buffer exactly ONE page, so a whole operator pipeline runs in
// constant main memory — the property Theorems 8.3/8.4 assume. The page
// list itself is kept as in-memory metadata (the analogue of a file's
// extent table).

#ifndef NDQ_STORAGE_RUN_H_
#define NDQ_STORAGE_RUN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/disk.h"
#include "storage/prefetcher.h"

namespace ndq {

/// Metadata for a run of records stored on disk pages.
struct Run {
  std::vector<PageId> pages;
  uint64_t num_records = 0;
  uint64_t payload_bytes = 0;

  bool empty() const { return num_records == 0; }
};

/// Releases a run's pages back to the disk.
Status FreeRun(Disk* disk, Run* run);

/// Produces a new run holding `run`'s records in reverse order, consuming
/// (freeing) the input. Costs O(pages) I/O: records are spilled in
/// page-sized batches and the batches replayed last-to-first. Used by the
/// descendant-direction hierarchy operators, which scan their input in
/// descending key order (see exec/hierarchy.h).
Result<Run> ReverseRun(Disk* disk, Run run);

/// Appends records to a new run, one page of buffering.
///
/// Error-path ownership: until Finish() succeeds, the writer owns every
/// page it has allocated, and its destructor frees them. A caller that
/// hits an error mid-write (or whose Finish() fails) simply drops the
/// writer — no partial run leaks.
class RunWriter {
 public:
  explicit RunWriter(Disk* disk);
  ~RunWriter();

  RunWriter(const RunWriter&) = delete;
  RunWriter& operator=(const RunWriter&) = delete;

  /// Appends one record (length-prefixed; may span pages).
  Status Add(std::string_view record);

  /// Flushes the tail page and returns the finished run, transferring
  /// page ownership to the caller.
  Result<Run> Finish();

  uint64_t num_records() const { return run_.num_records; }

 private:
  Status FlushPage();

  Disk* disk_;
  Run run_;
  std::string buf_;  // current page payload
  bool finished_ = false;
};

/// Reads a run sequentially, one page of buffering. When the disk has an
/// async engine attached (Disk::SetIoDepth), the reader streams ahead
/// through a Prefetcher, keeping up to io-depth page reads in flight;
/// accounting is byte-identical either way (see storage/prefetcher.h).
class RunReader {
 public:
  RunReader(Disk* disk, const Run& run);

  /// Reads the next record into `record`. Returns false at end-of-run.
  Result<bool> Next(std::string* record);

  /// Positions the reader at `byte_offset` within page `page_idx`, which
  /// must be the start of record number `record_index`. Used by indexed
  /// range scans (store/entry_store.h).
  Status SeekTo(size_t page_idx, size_t byte_offset, uint64_t record_index);

  uint64_t records_read() const { return records_read_; }

 private:
  Status LoadPage(size_t idx);
  /// Pulls `n` raw bytes across page boundaries.
  Status ReadBytes(size_t n, std::string* out);
  Result<uint64_t> ReadVarint();

  Disk* disk_;
  const Run* run_;
  Prefetcher prefetch_;
  std::string buf_;
  size_t page_idx_ = 0;   // next page to load
  size_t buf_pos_ = 0;
  uint64_t records_read_ = 0;
};

}  // namespace ndq

#endif  // NDQ_STORAGE_RUN_H_
