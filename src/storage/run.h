// Sequential record runs on the simulated disk.
//
// A Run is the unit of inter-operator data flow in the evaluation engine:
// a chain of pages holding length-prefixed records. Writers and readers
// each buffer exactly ONE page, so a whole operator pipeline runs in
// constant main memory — the property Theorems 8.3/8.4 assume. The page
// list itself is kept as in-memory metadata (the analogue of a file's
// extent table).

#ifndef NDQ_STORAGE_RUN_H_
#define NDQ_STORAGE_RUN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/disk.h"
#include "storage/prefetcher.h"
#include "storage/serde.h"

namespace ndq {

/// Metadata for a run of records stored on disk pages. `format` is the
/// on-page record framing (storage/serde.h): versioned per run, so raw
/// and compressed runs coexist and readers never guess. `payload_bytes`
/// counts the framed bytes actually appended to the page stream, so
/// pages.size() == ceil(payload_bytes / page_size) in every format.
struct Run {
  std::vector<PageId> pages;
  uint64_t num_records = 0;
  uint64_t payload_bytes = 0;
  PageFormat format = PageFormat::kRaw;

  bool empty() const { return num_records == 0; }
};

/// Releases a run's pages back to the disk.
Status FreeRun(Disk* disk, Run* run);

/// Produces a new run holding `run`'s records in reverse order, consuming
/// (freeing) the input. Costs O(pages) I/O: records are spilled in
/// page-sized batches and the batches replayed last-to-first. Used by the
/// descendant-direction hierarchy operators, which scan their input in
/// descending key order (see exec/hierarchy.h).
Result<Run> ReverseRun(Disk* disk, Run run);

/// Appends records to a new run, one page of buffering.
///
/// Error-path ownership: until Finish() succeeds, the writer owns every
/// page it has allocated, and its destructor frees them. A caller that
/// hits an error mid-write (or whose Finish() fails) simply drops the
/// writer — no partial run leaks.
class RunWriter {
 public:
  /// `shape` declares the record stream (storage/serde.h): kKeyed streams
  /// (records whose first field is a PutString sort key — serialized
  /// entries, pair records, spill items) get key-aware prefix compression
  /// when the global mode allows; kOpaque streams get generic prefix
  /// compression. The resolved format is stamped into the finished Run.
  explicit RunWriter(Disk* disk, RecordShape shape = RecordShape::kOpaque);
  /// Writes in exactly `format`, ignoring the global mode. Used where the
  /// output must match an existing run's format (ReverseRun).
  RunWriter(Disk* disk, PageFormat format);
  ~RunWriter();

  RunWriter(const RunWriter&) = delete;
  RunWriter& operator=(const RunWriter&) = delete;

  /// Appends one record (framed per the run's format; may span pages).
  Status Add(std::string_view record);

  /// Flushes the tail page and returns the finished run, transferring
  /// page ownership to the caller.
  Result<Run> Finish();

  uint64_t num_records() const { return run_.num_records; }

  /// Forces a restart for the first record starting in each page, making
  /// every such position a valid SeekTo target. Only seekable runs (the
  /// entry store's segment, whose sparse index records those positions)
  /// need this; scan-only runs skip it — on deep-directory keys a restart
  /// re-emits the whole reverse-DN key, so per-page restarts cost real
  /// compression. Call before the first Add().
  void set_page_restarts(bool on) { page_restarts_ = on; }

  /// Position where the most recent Add()'s frame started: page index
  /// within the run and byte offset within that page. With
  /// set_page_restarts(true), the first record starting in any page is
  /// always a restart point, so this position is a valid SeekTo target
  /// (the entry store's sparse index records it).
  size_t last_record_page() const { return last_record_page_; }
  uint32_t last_record_offset() const { return last_record_offset_; }

 private:
  Status FlushPage();

  Disk* disk_;
  Run run_;
  std::string buf_;  // current page payload
  bool finished_ = false;
  // Compression state (unused for kRaw).
  bool page_restarts_ = false;
  uint64_t records_since_restart_ = 0;
  size_t last_start_page_ = static_cast<size_t>(-1);
  size_t last_record_page_ = 0;
  uint32_t last_record_offset_ = 0;
  std::string prev_key_;     // kKeyPrefix: previous record's key
  std::string prev_rest_;    // kKeyPrefix: previous record minus the key
  std::string prev_record_;  // kPrefix: previous record, whole
};

/// Reads a run sequentially, one page of buffering. When the disk has an
/// async engine attached (Disk::SetIoDepth), the reader streams ahead
/// through a Prefetcher, keeping up to io-depth page reads in flight;
/// accounting is byte-identical either way (see storage/prefetcher.h).
class RunReader {
 public:
  RunReader(Disk* disk, const Run& run);

  /// Reads the next record into `record`. Returns false at end-of-run.
  /// Compressed records are reconstructed incrementally from the previous
  /// record's key/bytes; the caller always sees the original record.
  Result<bool> Next(std::string* record);

  /// Positions the reader at `byte_offset` within page `page_idx`, which
  /// must be the start of record number `record_index` AND (for compressed
  /// runs) a restart point — guaranteed for the first record starting in
  /// any page of a run written with set_page_restarts(true), which is
  /// what the entry store's sparse index stores. A frame that
  /// back-references history from here is reported as corruption, never
  /// read out of bounds.
  Status SeekTo(size_t page_idx, size_t byte_offset, uint64_t record_index);

  uint64_t records_read() const { return records_read_; }

 private:
  Status LoadPage(size_t idx);
  /// Pulls `n` raw bytes across page boundaries.
  Status ReadBytes(size_t n, std::string* out);
  Result<uint64_t> ReadVarint();
  /// Rejects suffix lengths no well-formed frame could claim (an
  /// oversized length prefix) before any allocation happens.
  Status CheckFrameLength(uint64_t claimed) const;

  Disk* disk_;
  const Run* run_;
  Prefetcher prefetch_;
  std::string buf_;
  size_t page_idx_ = 0;   // next page to load
  size_t buf_pos_ = 0;
  uint64_t records_read_ = 0;
  // Compression state (unused for kRaw).
  std::string prev_key_;
  std::string prev_rest_;
  std::string prev_record_;
};

}  // namespace ndq

#endif  // NDQ_STORAGE_RUN_H_
