#include "storage/async_disk.h"

#include <chrono>
#include <cstring>

#include "storage/disk.h"

namespace ndq {

AsyncDisk::AsyncDisk(Disk* disk, size_t io_depth) : disk_(disk) {
  if (io_depth == 0) io_depth = 1;
  workers_.reserve(io_depth);
  for (size_t i = 0; i < io_depth; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncDisk::~AsyncDisk() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Unstarted requests are abandoned; anyone who would have waited on
    // them is gone (the owner quiesced consumers first).
    for (const RequestHandle& req : queue_) {
      if (!req->started) {
        req->canceled = true;
        ++stats_.canceled_unstarted;
      }
    }
    queue_.clear();
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

AsyncDisk::RequestHandle AsyncDisk::Submit(PageId page) {
  auto req = std::make_shared<Request>();
  req->page = page;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(req);
    ++stats_.reads_submitted;
  }
  work_cv_.notify_one();
  return req;
}

bool AsyncDisk::IsReady(const RequestHandle& req) const {
  std::lock_guard<std::mutex> lock(mu_);
  return req->done;
}

Status AsyncDisk::Wait(const RequestHandle& req, uint8_t* buf,
                       uint64_t* waited_micros) {
  std::unique_lock<std::mutex> lock(mu_);
  if (waited_micros != nullptr) *waited_micros = 0;
  if (!req->done) {
    if (req->canceled) {
      // Only the destructor abandons unstarted requests, and it requires
      // quiesced consumers — reaching this means a use-after-cancel bug.
      return Status::Internal("wait on canceled async read");
    }
    auto start = std::chrono::steady_clock::now();
    done_cv_.wait(lock, [&] { return req->done; });
    if (waited_micros != nullptr) {
      *waited_micros = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
  }
  NDQ_RETURN_IF_ERROR(req->physical);
  std::memcpy(buf, req->data.get(), disk_->page_size());
  return Status::OK();
}

bool AsyncDisk::Cancel(const RequestHandle& req) {
  std::lock_guard<std::mutex> lock(mu_);
  if (req->done || req->started) return true;  // physical work spent
  if (!req->canceled) {
    req->canceled = true;
    ++stats_.canceled_unstarted;
  }
  return false;
}

void AsyncDisk::WorkerLoop() {
  for (;;) {
    RequestHandle req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      req = std::move(queue_.front());
      queue_.pop_front();
      if (req->canceled) continue;
      req->started = true;
    }
    auto data = std::make_unique<uint8_t[]>(disk_->page_size());
    Status s = disk_->PhysicalRead(req->page, data.get());
    {
      std::lock_guard<std::mutex> lock(mu_);
      req->physical = std::move(s);
      req->data = std::move(data);
      req->done = true;
      ++stats_.reads_completed;
    }
    done_cv_.notify_all();
  }
}

}  // namespace ndq
