#include "storage/prefetcher.h"

#include <algorithm>

#include "storage/disk.h"

namespace ndq {

Prefetcher::Prefetcher(Disk* disk, const std::vector<PageId>* pages)
    : disk_(disk), pages_(pages), async_(disk->async()) {
  TopUpWindow();
}

Prefetcher::~Prefetcher() { DropWindow(); }

Status Prefetcher::Read(size_t idx, uint8_t* buf) {
  if (idx >= pages_->size()) {
    return Status::Internal("prefetcher: page index out of range");
  }
  const PageId page = (*pages_)[idx];
  if (async_ == nullptr) return disk_->ReadPage(page, buf);

  AsyncDisk::RequestHandle req;
  auto it = window_.find(idx);
  if (it != window_.end()) {
    req = std::move(it->second);
    window_.erase(it);
  } else if (!disk_->PrefetchWorthwhile()) {
    // The device is currently faster than the async round trip (see
    // Disk::PrefetchWorthwhile); serve the miss synchronously. ReadPage
    // performs the identical observable sequence (fault consult, then
    // transfer count), so accounting is unchanged — only the queue
    // handoff is skipped.
    Status s = disk_->ReadPage(page, buf);
    next_submit_ = std::max(next_submit_, idx + 1);
    TopUpWindow();
    return s;
  } else {
    // Out-of-window access (a seek, or a window the scan outran): fetch
    // fresh and restart streaming from here.
    req = async_->Submit(page);
  }
  if (async_->IsReady(req)) disk_->CountPrefetchHit();

  uint64_t waited = 0;
  Status physical = async_->Wait(req, buf, &waited);
  if (waited > 0) disk_->AddIoWaitMicros(waited);

  // Consumption-time accounting: fault check + transfer count happen here,
  // in scan order, exactly as a synchronous ReadPage would have.
  Status final = disk_->FinishAsyncRead(page, physical);

  next_submit_ = std::max(next_submit_, idx + 1);
  TopUpWindow();
  return final;
}

void Prefetcher::TopUpWindow() {
  if (async_ == nullptr) return;
  // Back off while the device is serving reads faster than the engine's
  // round-trip cost; requests already in flight drain normally, and the
  // window refills if the device slows down again (e.g. the scan leaves
  // the OS page cache).
  if (!disk_->PrefetchWorthwhile()) return;
  const size_t depth = async_->io_depth();
  while (window_.size() < depth && next_submit_ < pages_->size()) {
    const size_t idx = next_submit_++;
    if (window_.count(idx) > 0) continue;
    window_.emplace(idx, async_->Submit((*pages_)[idx]));
  }
}

void Prefetcher::DropWindow() {
  if (async_ == nullptr) return;
  uint64_t wasted = 0;
  for (auto& [idx, req] : window_) {
    // Cancel reports whether a worker had already spent (or committed to
    // spend) a physical transfer on the request.
    if (async_->Cancel(req)) ++wasted;
  }
  window_.clear();
  if (wasted > 0) disk_->CountPrefetchWasted(wasted);
}

}  // namespace ndq
