#include "storage/buffer_pool.h"

#include <cstring>

namespace ndq {

PageHandle::PageHandle(BufferPool* pool, PageId id, uint8_t* data)
    : pool_(pool), id_(id), data_(data) {}

PageHandle::~PageHandle() { Release(); }

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    data_ = other.data_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.id_ = kInvalidPage;
    other.dirty_ = false;
  }
  return *this;
}

void PageHandle::MarkDirty() { dirty_ = true; }

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_, dirty_);
    pool_ = nullptr;
    data_ = nullptr;
    dirty_ = false;
  }
}

BufferPool::BufferPool(Disk* disk, size_t capacity)
    : disk_(disk), capacity_(capacity == 0 ? 1 : capacity) {}

BufferPool::~BufferPool() { FlushAll().ok(); }

Result<PageHandle> BufferPool::Pin(PageId id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = frames_.find(id);
    if (it != frames_.end()) {
      if (it->second.loading) {
        // Another thread is fetching this very page; wait for its fetch
        // to resolve rather than reading the page a second time. If the
        // fetch fails, the frame disappears and this thread retries as
        // the fetcher (a fresh miss — same as the old serialized pool).
        load_cv_.wait(lock, [&] {
          auto wit = frames_.find(id);
          return wit == frames_.end() || !wit->second.loading;
        });
        continue;
      }
      ++stats_.hits;
      Frame& f = it->second;
      if (f.in_lru) {
        lru_.erase(f.lru_it);
        f.in_lru = false;
      }
      ++f.pin_count;
      return PageHandle(this, id, f.data.get());
    }

    ++stats_.misses;
    if (frames_.size() >= capacity_) NDQ_RETURN_IF_ERROR(EvictOne());
    // Reserve the frame (it counts toward capacity and is pinned, so it
    // can be neither evicted nor freed), then read outside the mutex so
    // misses on distinct pages overlap their transfers.
    Frame f;
    f.data = std::make_unique<uint8_t[]>(disk_->page_size());
    f.pin_count = 1;
    f.loading = true;
    auto [fit, inserted] = frames_.emplace(id, std::move(f));
    if (!inserted) {
      return Status::Internal("buffer pool: frame for page " +
                              std::to_string(id) +
                              " appeared during miss handling");
    }
    uint8_t* dest = fit->second.data.get();  // stable heap address
    lock.unlock();
    Status read = disk_->ReadPage(id, dest);
    lock.lock();
    it = frames_.find(id);
    if (it == frames_.end() || !it->second.loading) {
      return Status::Internal("buffer pool: loading frame for page " +
                              std::to_string(id) + " disturbed");
    }
    if (!read.ok()) {
      frames_.erase(it);
      load_cv_.notify_all();
      return read;
    }
    it->second.loading = false;
    load_cv_.notify_all();
    return PageHandle(this, id, it->second.data.get());
  }
}

Result<PageHandle> BufferPool::New() {
  std::lock_guard<std::mutex> lock(mu_);
  if (frames_.size() >= capacity_) NDQ_RETURN_IF_ERROR(EvictOne());
  NDQ_ASSIGN_OR_RETURN(PageId id, disk_->Allocate());
  Frame f;
  f.data = std::make_unique<uint8_t[]>(disk_->page_size());
  std::memset(f.data.get(), 0, disk_->page_size());
  f.pin_count = 1;
  f.dirty = true;
  auto [fit, inserted] = frames_.emplace(id, std::move(f));
  if (!inserted) {
    // A frame for a page the disk just handed out means the device and
    // pool disagree about liveness; give the page back and fail loudly.
    (void)disk_->Free(id);
    return Status::Internal("buffer pool: stale frame for fresh page " +
                            std::to_string(id));
  }
  return PageHandle(this, id, fit->second.data.get());
}

void BufferPool::Unpin(PageId id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  Frame& f = it->second;
  if (dirty) f.dirty = true;
  if (f.pin_count > 0) --f.pin_count;
  if (f.pin_count == 0 && !f.in_lru) {
    lru_.push_back(id);
    f.lru_it = std::prev(lru_.end());
    f.in_lru = true;
  }
}

Status BufferPool::EvictOne() {
  if (lru_.empty()) {
    return Status::ResourceExhausted("buffer pool: all frames pinned");
  }
  PageId victim = lru_.front();
  auto it = frames_.find(victim);
  if (it == frames_.end()) {
    return Status::Internal("buffer pool: LRU entry for page " +
                            std::to_string(victim) + " has no frame");
  }
  if (it->second.dirty) {
    // Write back BEFORE unlinking: if the writeback fails (e.g. an
    // injected fault) the victim stays intact in both the map and the
    // LRU, so the pool remains consistent and the dirty data survives
    // for a retry.
    NDQ_RETURN_IF_ERROR(disk_->WritePage(victim, it->second.data.get()));
    ++stats_.dirty_writebacks;
  }
  lru_.pop_front();
  frames_.erase(it);
  ++stats_.evictions;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, f] : frames_) {
    if (f.dirty) {
      NDQ_RETURN_IF_ERROR(disk_->WritePage(id, f.data.get()));
      f.dirty = false;
      ++stats_.dirty_writebacks;
    }
  }
  return Status::OK();
}

Status BufferPool::FreePage(PageId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = frames_.find(id);
    if (it != frames_.end()) {
      if (it->second.pin_count > 0) {
        return Status::InvalidArgument("freeing pinned page");
      }
      if (it->second.in_lru) lru_.erase(it->second.lru_it);
      frames_.erase(it);
    }
  }
  return disk_->Free(id);
}

}  // namespace ndq
