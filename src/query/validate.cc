#include "query/validate.h"

namespace ndq {

namespace {

class Validator {
 public:
  explicit Validator(const Schema& schema) : schema_(schema) {}

  std::vector<QueryIssue> Run(const Query& query) {
    Visit(query);
    return std::move(issues_);
  }

 private:
  void Error(std::string msg) {
    issues_.push_back({QueryIssue::Severity::kError, std::move(msg)});
  }
  void Warn(std::string msg) {
    issues_.push_back({QueryIssue::Severity::kWarning, std::move(msg)});
  }

  // Returns false (and warns) if the attribute is undeclared.
  bool CheckDeclared(const std::string& attr, const char* context) {
    if (attr.empty() || schema_.HasAttribute(attr)) return true;
    Warn(std::string("attribute '") + attr + "' in " + context +
         " is not declared in the schema");
    return false;
  }

  void CheckIntTyped(const std::string& attr, const char* context) {
    if (!CheckDeclared(attr, context)) return;
    Result<TypeKind> t = schema_.AttributeType(attr);
    if (t.ok() && *t != TypeKind::kInt) {
      Error(std::string("attribute '") + attr + "' in " + context +
            " has type " + TypeKindToString(*t) +
            "; the integer comparison can never match");
    }
  }

  void VisitAtomicFilter(const AtomicFilter& f) {
    switch (f.kind()) {
      case AtomicFilter::Kind::kTrue:
        return;
      case AtomicFilter::Kind::kPresence:
        CheckDeclared(f.attr(), "presence filter");
        return;
      case AtomicFilter::Kind::kIntCmp:
        CheckIntTyped(f.attr(), "comparison filter");
        return;
      case AtomicFilter::Kind::kEquals: {
        if (!CheckDeclared(f.attr(), "equality filter")) return;
        if (f.attr() == kObjectClassAttr && f.equals_rhs().is_string() &&
            !schema_.HasClass(f.equals_rhs().AsString())) {
          Error("objectClass value '" + f.equals_rhs().AsString() +
                "' names no declared class");
        }
        return;
      }
      case AtomicFilter::Kind::kSubstring: {
        if (!CheckDeclared(f.attr(), "substring filter")) return;
        Result<TypeKind> t = schema_.AttributeType(f.attr());
        if (t.ok() && *t == TypeKind::kInt) {
          Error("substring pattern on int-typed attribute '" + f.attr() +
                "' can never match");
        }
        return;
      }
    }
  }

  void VisitLdapFilter(const LdapFilter& f) {
    if (f.op() == LdapFilter::Op::kAtomic) {
      VisitAtomicFilter(f.atomic());
      return;
    }
    for (const LdapFilterPtr& child : f.children()) {
      VisitLdapFilter(*child);
    }
  }

  void VisitEntryAgg(const EntryAgg& ea, const char* context) {
    if (ea.target == AggTarget::kWitnessCount) return;
    if (!CheckDeclared(ea.attr, context)) return;
    if (ea.fn == AggFn::kCount) return;  // count works on any type
    Result<TypeKind> t = schema_.AttributeType(ea.attr);
    if (t.ok() && *t != TypeKind::kInt) {
      Error(std::string(AggFnToString(ea.fn)) + "(" + ea.attr + ") in " +
            context + " aggregates a " + TypeKindToString(*t) +
            "-typed attribute; the aggregate is always undefined");
    }
  }

  void VisitAggAttr(const AggAttr& aa, const char* context) {
    switch (aa.kind) {
      case AggAttr::Kind::kConst:
        return;
      case AggAttr::Kind::kEntry:
      case AggAttr::Kind::kEntrySet:
        if (aa.kind == AggAttr::Kind::kEntrySet &&
            aa.set_form == AggAttr::SetForm::kCountSet) {
          return;
        }
        VisitEntryAgg(aa.entry, context);
        return;
    }
  }

  void Visit(const Query& q) {
    switch (q.op()) {
      case QueryOp::kAtomic:
        VisitAtomicFilter(q.filter());
        break;
      case QueryOp::kLdap:
        VisitLdapFilter(*q.ldap_filter());
        break;
      case QueryOp::kValueDn:
      case QueryOp::kDnValue: {
        const std::string& attr = q.ref_attr();
        if (CheckDeclared(attr, "embedded-reference operator")) {
          Result<TypeKind> t = schema_.AttributeType(attr);
          if (t.ok() && *t != TypeKind::kDn) {
            Error("reference attribute '" + attr + "' of " +
                  QueryOpToString(q.op()) + " has type " +
                  TypeKindToString(*t) +
                  "; it can never hold distinguished names");
          }
        }
        break;
      }
      default:
        break;
    }
    if (q.agg().has_value()) {
      VisitAggAttr(q.agg()->lhs, "aggregate selection");
      VisitAggAttr(q.agg()->rhs, "aggregate selection");
    }
    for (const QueryPtr& child : {q.q1(), q.q2(), q.q3()}) {
      if (child != nullptr) Visit(*child);
    }
  }

  const Schema& schema_;
  std::vector<QueryIssue> issues_;
};

}  // namespace

std::vector<QueryIssue> ValidateQuery(const Schema& schema,
                                      const Query& query) {
  return Validator(schema).Run(query);
}

bool QueryIsValid(const Schema& schema, const Query& query) {
  for (const QueryIssue& issue : ValidateQuery(schema, query)) {
    if (issue.severity == QueryIssue::Severity::kError) return false;
  }
  return true;
}

}  // namespace ndq
