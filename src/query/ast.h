// The query AST for LDAP and L0 - L3 (grammars of Figs. 7-10).
//
// A query is a function from directory instances to sub-instances: it
// selects a subset of the input's entries (Sec. 4.1), which gives the
// languages their closure property. Each node is one grammar production;
// the optional AggSelFilter on hierarchy/embedded-reference nodes is what
// lifts an L1/L3 operator into its L2-style aggregate-selection variant.

#ifndef NDQ_QUERY_AST_H_
#define NDQ_QUERY_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dn.h"
#include "core/scope.h"
#include "filter/atomic_filter.h"
#include "filter/ldap_filter.h"
#include "query/aggregate.h"

namespace ndq {

/// Query language levels, ordered by expressive power (Theorem 8.1).
enum class Language { kLdap = 0, kL0 = 1, kL1 = 2, kL2 = 3, kL3 = 4 };

const char* LanguageToString(Language lang);

/// AST node kinds.
enum class QueryOp {
  // Leaves.
  kAtomic,  ///< (base ? scope ? filter)
  kLdap,    ///< baseline: base + scope + boolean LdapFilter
  // L0 boolean operators.
  kAnd,
  kOr,
  kDiff,
  // L1/L2 hierarchical selection (aggsel optional; Fig. 8/9).
  kParents,        ///< (p Q1 Q2 [AS])
  kChildren,       ///< (c Q1 Q2 [AS])
  kAncestors,      ///< (a Q1 Q2 [AS])
  kDescendants,    ///< (d Q1 Q2 [AS])
  kCoAncestors,    ///< (ac Q1 Q2 Q3 [AS]) — path-constrained ancestors
  kCoDescendants,  ///< (dc Q1 Q2 Q3 [AS])
  // L2 simple aggregate selection.
  kSimpleAgg,  ///< (g Q AS)
  // L3 embedded references.
  kValueDn,  ///< (vd Q1 Q2 attr [AS])
  kDnValue,  ///< (dv Q1 Q2 attr [AS])
};

const char* QueryOpToString(QueryOp op);

class Query;
using QueryPtr = std::shared_ptr<const Query>;

/// \brief One node of a query tree. Immutable after construction; share
/// sub-queries freely.
class Query {
 public:
  // -- Factories (one per grammar production) ------------------------------
  static QueryPtr Atomic(Dn base, Scope scope, AtomicFilter filter);
  static QueryPtr Ldap(Dn base, Scope scope, LdapFilterPtr filter);
  static QueryPtr And(QueryPtr q1, QueryPtr q2);
  static QueryPtr Or(QueryPtr q1, QueryPtr q2);
  static QueryPtr Diff(QueryPtr q1, QueryPtr q2);
  static QueryPtr Hierarchy(QueryOp op, QueryPtr q1, QueryPtr q2,
                            std::optional<AggSelFilter> agg = std::nullopt);
  static QueryPtr HierarchyConstrained(
      QueryOp op, QueryPtr q1, QueryPtr q2, QueryPtr q3,
      std::optional<AggSelFilter> agg = std::nullopt);
  static QueryPtr SimpleAgg(QueryPtr q, AggSelFilter agg);
  static QueryPtr EmbeddedRef(QueryOp op, QueryPtr q1, QueryPtr q2,
                              std::string attr,
                              std::optional<AggSelFilter> agg = std::nullopt);

  // -- Accessors ------------------------------------------------------------
  QueryOp op() const { return op_; }
  bool is_atomic() const { return op_ == QueryOp::kAtomic; }

  // Leaf fields.
  const Dn& base() const { return base_; }
  Scope scope() const { return scope_; }
  const AtomicFilter& filter() const { return filter_; }
  const LdapFilterPtr& ldap_filter() const { return ldap_filter_; }

  // Operands (null when not applicable).
  const QueryPtr& q1() const { return q1_; }
  const QueryPtr& q2() const { return q2_; }
  const QueryPtr& q3() const { return q3_; }

  const std::string& ref_attr() const { return ref_attr_; }
  const std::optional<AggSelFilter>& agg() const { return agg_; }

  /// The least expressive language containing this query (Sec. 8.1).
  Language MinimalLanguage() const;

  /// Number of nodes in the query tree (|Q| of Theorem 8.3).
  size_t NodeCount() const;

  /// All atomic/LDAP leaves, left to right.
  std::vector<const Query*> Leaves() const;

  /// Paper-style s-expression rendering, parseable by ParseQuery.
  std::string ToString() const;

 private:
  Query() = default;

  static std::shared_ptr<Query> NewNode();

  QueryOp op_ = QueryOp::kAtomic;
  Dn base_;
  Scope scope_ = Scope::kSub;
  AtomicFilter filter_ = AtomicFilter::True();
  LdapFilterPtr ldap_filter_;
  QueryPtr q1_, q2_, q3_;
  std::string ref_attr_;
  std::optional<AggSelFilter> agg_;
};

}  // namespace ndq

#endif  // NDQ_QUERY_AST_H_
