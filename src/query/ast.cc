#include "query/ast.h"

#include <algorithm>
#include <cassert>

namespace ndq {

const char* LanguageToString(Language lang) {
  switch (lang) {
    case Language::kLdap:
      return "LDAP";
    case Language::kL0:
      return "L0";
    case Language::kL1:
      return "L1";
    case Language::kL2:
      return "L2";
    case Language::kL3:
      return "L3";
  }
  return "?";
}

const char* QueryOpToString(QueryOp op) {
  switch (op) {
    case QueryOp::kAtomic:
      return "atomic";
    case QueryOp::kLdap:
      return "ldap";
    case QueryOp::kAnd:
      return "&";
    case QueryOp::kOr:
      return "|";
    case QueryOp::kDiff:
      return "-";
    case QueryOp::kParents:
      return "p";
    case QueryOp::kChildren:
      return "c";
    case QueryOp::kAncestors:
      return "a";
    case QueryOp::kDescendants:
      return "d";
    case QueryOp::kCoAncestors:
      return "ac";
    case QueryOp::kCoDescendants:
      return "dc";
    case QueryOp::kSimpleAgg:
      return "g";
    case QueryOp::kValueDn:
      return "vd";
    case QueryOp::kDnValue:
      return "dv";
  }
  return "?";
}

std::shared_ptr<Query> Query::NewNode() {
  return std::shared_ptr<Query>(new Query());
}

QueryPtr Query::Atomic(Dn base, Scope scope, AtomicFilter filter) {
  auto q = NewNode();
  q->op_ = QueryOp::kAtomic;
  q->base_ = std::move(base);
  q->scope_ = scope;
  q->filter_ = std::move(filter);
  return q;
}

QueryPtr Query::Ldap(Dn base, Scope scope, LdapFilterPtr filter) {
  auto q = NewNode();
  q->op_ = QueryOp::kLdap;
  q->base_ = std::move(base);
  q->scope_ = scope;
  q->ldap_filter_ = std::move(filter);
  return q;
}

QueryPtr Query::And(QueryPtr q1, QueryPtr q2) {
  auto q = NewNode();
  q->op_ = QueryOp::kAnd;
  q->q1_ = std::move(q1);
  q->q2_ = std::move(q2);
  return q;
}

QueryPtr Query::Or(QueryPtr q1, QueryPtr q2) {
  auto q = NewNode();
  q->op_ = QueryOp::kOr;
  q->q1_ = std::move(q1);
  q->q2_ = std::move(q2);
  return q;
}

QueryPtr Query::Diff(QueryPtr q1, QueryPtr q2) {
  auto q = NewNode();
  q->op_ = QueryOp::kDiff;
  q->q1_ = std::move(q1);
  q->q2_ = std::move(q2);
  return q;
}

QueryPtr Query::Hierarchy(QueryOp op, QueryPtr q1, QueryPtr q2,
                          std::optional<AggSelFilter> agg) {
  assert(op == QueryOp::kParents || op == QueryOp::kChildren ||
         op == QueryOp::kAncestors || op == QueryOp::kDescendants);
  auto q = NewNode();
  q->op_ = op;
  q->q1_ = std::move(q1);
  q->q2_ = std::move(q2);
  q->agg_ = std::move(agg);
  return q;
}

QueryPtr Query::HierarchyConstrained(QueryOp op, QueryPtr q1, QueryPtr q2,
                                     QueryPtr q3,
                                     std::optional<AggSelFilter> agg) {
  assert(op == QueryOp::kCoAncestors || op == QueryOp::kCoDescendants);
  auto q = NewNode();
  q->op_ = op;
  q->q1_ = std::move(q1);
  q->q2_ = std::move(q2);
  q->q3_ = std::move(q3);
  q->agg_ = std::move(agg);
  return q;
}

QueryPtr Query::SimpleAgg(QueryPtr q1, AggSelFilter agg) {
  auto q = NewNode();
  q->op_ = QueryOp::kSimpleAgg;
  q->q1_ = std::move(q1);
  q->agg_ = std::move(agg);
  return q;
}

QueryPtr Query::EmbeddedRef(QueryOp op, QueryPtr q1, QueryPtr q2,
                            std::string attr,
                            std::optional<AggSelFilter> agg) {
  assert(op == QueryOp::kValueDn || op == QueryOp::kDnValue);
  auto q = NewNode();
  q->op_ = op;
  q->q1_ = std::move(q1);
  q->q2_ = std::move(q2);
  q->ref_attr_ = std::move(attr);
  q->agg_ = std::move(agg);
  return q;
}

Language Query::MinimalLanguage() const {
  Language lang = Language::kLdap;
  auto bump = [&lang](Language l) {
    if (static_cast<int>(l) > static_cast<int>(lang)) lang = l;
  };
  switch (op_) {
    case QueryOp::kAtomic:
    case QueryOp::kLdap:
      return Language::kLdap;
    case QueryOp::kAnd:
    case QueryOp::kOr:
    case QueryOp::kDiff:
      bump(Language::kL0);
      break;
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants:
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants:
      bump(agg_.has_value() ? Language::kL2 : Language::kL1);
      break;
    case QueryOp::kSimpleAgg:
      bump(Language::kL2);
      break;
    case QueryOp::kValueDn:
    case QueryOp::kDnValue:
      bump(Language::kL3);
      break;
  }
  for (const QueryPtr& c : {q1_, q2_, q3_}) {
    if (c != nullptr) bump(c->MinimalLanguage());
  }
  return lang;
}

size_t Query::NodeCount() const {
  size_t n = 1;
  for (const QueryPtr& c : {q1_, q2_, q3_}) {
    if (c != nullptr) n += c->NodeCount();
  }
  return n;
}

std::vector<const Query*> Query::Leaves() const {
  std::vector<const Query*> out;
  if (op_ == QueryOp::kAtomic || op_ == QueryOp::kLdap) {
    out.push_back(this);
    return out;
  }
  for (const QueryPtr& c : {q1_, q2_, q3_}) {
    if (c != nullptr) {
      std::vector<const Query*> sub = c->Leaves();
      out.insert(out.end(), sub.begin(), sub.end());
    }
  }
  return out;
}

std::string Query::ToString() const {
  switch (op_) {
    case QueryOp::kAtomic:
      return "(" + base_.ToString() + " ? " + ScopeToString(scope_) + " ? " +
             filter_.ToString() + ")";
    case QueryOp::kLdap:
      return "(ldap " + base_.ToString() + " ? " + ScopeToString(scope_) +
             " ? " + ldap_filter_->ToString() + ")";
    case QueryOp::kAnd:
    case QueryOp::kOr:
    case QueryOp::kDiff:
      return std::string("(") + QueryOpToString(op_) + " " + q1_->ToString() +
             " " + q2_->ToString() + ")";
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants: {
      std::string out = std::string("(") + QueryOpToString(op_) + " " +
                        q1_->ToString() + " " + q2_->ToString();
      if (agg_.has_value()) out += " " + agg_->ToString();
      return out + ")";
    }
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants: {
      std::string out = std::string("(") + QueryOpToString(op_) + " " +
                        q1_->ToString() + " " + q2_->ToString() + " " +
                        q3_->ToString();
      if (agg_.has_value()) out += " " + agg_->ToString();
      return out + ")";
    }
    case QueryOp::kSimpleAgg:
      return "(g " + q1_->ToString() + " " + agg_->ToString() + ")";
    case QueryOp::kValueDn:
    case QueryOp::kDnValue: {
      std::string out = std::string("(") + QueryOpToString(op_) + " " +
                        q1_->ToString() + " " + q2_->ToString() + " " +
                        ref_attr_;
      if (agg_.has_value()) out += " " + agg_->ToString();
      return out + ")";
    }
  }
  return "?";
}

}  // namespace ndq
