// Plan fingerprints: a typed, canonical encoding of query subtrees.
//
// The physical design makes every operand list reusable: an operand is
// materialized in reverse-DN order, so two occurrences of the SAME
// sub-plan — within one query or across a batch of queries — denote the
// same sorted list on the same store snapshot. A fingerprint is the
// equality key for that reuse: a version-tagged, length-prefixed binary
// encoding of the whole subtree (operator kinds, scopes, base HierKeys,
// typed filter constants, aggregate-selection filters, reference
// attributes), so two subtrees share a fingerprint only when they are
// semantically the same plan.
//
// The human-readable Query::ToString is NOT sound as a key: "x=5"
// renders identically for int equality and string equality on "5", and a
// rewrite can turn an atomic leaf into an LDAP leaf with the same label.
// The fingerprint distinguishes all of those. It deliberately EXCLUDES
// execution knobs (parallelism, tracing, budgets): the materialized list
// is invariant under them.
//
// AnalyzeBatch is the census the multi-query schedulers run over a batch
// of canonicalized plans: which sub-plans occur more than once, and the
// maximal shared subtrees worth materializing exactly once (engine/ for
// local evaluation, dist/ for batched sub-plan shipping).

#ifndef NDQ_QUERY_FINGERPRINT_H_
#define NDQ_QUERY_FINGERPRINT_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "query/ast.h"

namespace ndq {

/// Canonical fingerprint of the plan subtree rooted at `query`.
/// Equal fingerprints <=> semantically identical sub-plans (same operator
/// tree, scopes, bases, typed filters, aggregate filters, ref attrs).
std::string QueryFingerprint(const Query& query);

/// The cross-query sharing census of one batch of plans.
struct PlanCensus {
  /// One sub-plan that occurs at least twice across the batch.
  struct SharedPlan {
    QueryPtr plan;          ///< a representative occurrence
    size_t occurrences = 0; ///< total occurrences across all plans
    size_t nodes = 0;       ///< subtree size of the plan
  };

  /// Every shared sub-plan, keyed by fingerprint.
  std::unordered_map<std::string, SharedPlan> shared;

  /// Representatives of the MAXIMAL shared subtrees: shared sub-plans not
  /// strictly contained in another shared sub-plan occurrence. These are
  /// the roots a scheduler materializes once; nested shared subtrees are
  /// published as a side effect of evaluating them.
  std::vector<QueryPtr> maximal;

  /// The fingerprints of every shared sub-plan (the set an evaluator
  /// consults its operand cache for).
  std::unordered_set<std::string> SharedKeys() const;

  /// Total shared occurrences across the batch (>= 2 per shared plan).
  uint64_t TotalOccurrences() const;
};

/// Counts every subtree occurrence across `plans` and derives the shared
/// set and its maximal representatives. Plans should already be
/// canonicalized (e.g. via RewriteQuery) so that syntactic variants of
/// the same sub-plan fingerprint identically.
PlanCensus AnalyzeBatch(const std::vector<QueryPtr>& plans);

}  // namespace ndq

#endif  // NDQ_QUERY_FINGERPRINT_H_
