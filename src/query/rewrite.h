// Semantics-preserving query rewrites.
//
// Section 8.1 discusses equivalences among the languages — notably that
// L0 + {ac, dc} can express all of {a, d, c, p}, but that the expansion
// "(p Q1 Q2) = (ac Q1 Q2 (null-dn ? sub ? objectClass=*))" would be "very
// expensive ... since our algorithms have I/O complexity that is linear in
// the size of the inputs". This module provides that expansion (for the
// expressiveness demonstrations) and the optimizer direction: rewrites
// that *reduce* evaluated input sizes while preserving M(Q) on every
// instance:
//
//   * ContractConstrained: (ac Q1 Q2 <match-everything>) -> (p Q1 Q2),
//     and (dc ...) -> (c ...): undoes the Thm 8.2(d) expansion. Exact on
//     prefix-closed namespaces (every entry's parent exists), which LDAP
//     servers guarantee and DirectoryStore maintains; the closest
//     *existing* ancestor is then the parent.
//   * MergeSameScopeBooleans: (& (B?s?F1) (B?s?F2)) -> one LDAP scan with
//     filter (&(F1)(F2)) — same for | — halving leaf scans.
//   * DropExistentialAgg: an explicit "count($2) > 0" aggregate filter is
//     the operator's default existential semantics (Sec. 6.2); drop it.
//   * CollapseIdempotent: (& Q Q) -> Q, (| Q Q) -> Q for syntactically
//     identical operands.
//
// All rewrites are proved against the reference evaluator in
// tests/query/rewrite_test.cc.

#ifndef NDQ_QUERY_REWRITE_H_
#define NDQ_QUERY_REWRITE_H_

#include "query/ast.h"

namespace ndq {

/// Statistics about one rewrite pass.
struct RewriteStats {
  size_t merged_boolean_scans = 0;
  size_t contracted_constrained = 0;
  size_t dropped_existential_aggs = 0;
  size_t collapsed_idempotent = 0;

  size_t Total() const {
    return merged_boolean_scans + contracted_constrained +
           dropped_existential_aggs + collapsed_idempotent;
  }
};

/// Applies all optimizer rewrites bottom-up until fixpoint. The returned
/// query satisfies M(Q') = M(Q) on every instance.
QueryPtr RewriteQuery(const QueryPtr& query, RewriteStats* stats = nullptr);

/// The Theorem 8.2(d) *expansion*: rewrites every p into ac and every c
/// into dc with a match-everything third operand. Semantics-preserving but
/// deliberately expensive — used by the expressiveness demonstrations.
QueryPtr ExpandParentsChildren(const QueryPtr& query);

/// True iff `query` syntactically matches every entry of any instance:
/// "(null-dn ? sub ? objectClass=*)" up to base spelling.
bool IsMatchEverything(const Query& query);

}  // namespace ndq

#endif  // NDQ_QUERY_REWRITE_H_
