#include "query/fingerprint.h"

#include "storage/serde.h"

namespace ndq {

namespace {

void AppendAtomicFilter(std::string* out, const AtomicFilter& f) {
  ByteWriter w(out);
  w.PutU8(static_cast<uint8_t>(f.kind()));
  switch (f.kind()) {
    case AtomicFilter::Kind::kTrue:
      break;
    case AtomicFilter::Kind::kPresence:
      w.PutString(f.attr());
      break;
    case AtomicFilter::Kind::kIntCmp:
      w.PutString(f.attr());
      w.PutU8(static_cast<uint8_t>(f.cmp_op()));
      w.PutSigned(f.int_rhs());
      break;
    case AtomicFilter::Kind::kEquals:
      w.PutString(f.attr());
      w.PutU8(static_cast<uint8_t>(f.equals_rhs().kind()));
      if (f.equals_rhs().is_int()) {
        w.PutSigned(f.equals_rhs().AsInt());
      } else {
        w.PutString(f.equals_rhs().AsString());
      }
      break;
    case AtomicFilter::Kind::kSubstring:
      w.PutString(f.attr());
      w.PutString(f.pattern());
      break;
  }
}

void AppendLdapFilter(std::string* out, const LdapFilter& f) {
  ByteWriter w(out);
  w.PutU8(static_cast<uint8_t>(f.op()));
  if (f.op() == LdapFilter::Op::kAtomic) {
    AppendAtomicFilter(out, f.atomic());
  } else {
    w.PutVarint(f.children().size());
    for (const LdapFilterPtr& c : f.children()) AppendLdapFilter(out, *c);
  }
}

void AppendEntryAgg(std::string* out, const EntryAgg& ea) {
  ByteWriter w(out);
  w.PutU8(static_cast<uint8_t>(ea.fn));
  w.PutU8(static_cast<uint8_t>(ea.target));
  w.PutString(ea.attr);
}

// spelled_dollar_dollar is deliberately excluded: count($1) and count($$)
// are alternative renderings of the same entry-set cardinality.
void AppendAggAttr(std::string* out, const AggAttr& a) {
  ByteWriter w(out);
  w.PutU8(static_cast<uint8_t>(a.kind));
  switch (a.kind) {
    case AggAttr::Kind::kConst:
      w.PutSigned(a.constant);
      break;
    case AggAttr::Kind::kEntry:
      AppendEntryAgg(out, a.entry);
      break;
    case AggAttr::Kind::kEntrySet: {
      ByteWriter w2(out);
      w2.PutU8(static_cast<uint8_t>(a.set_form));
      if (a.set_form == AggAttr::SetForm::kAggOfEntry) {
        w2.PutU8(static_cast<uint8_t>(a.outer_fn));
        AppendEntryAgg(out, a.entry);
      }
      break;
    }
  }
}

void AppendAggSel(std::string* out, const std::optional<AggSelFilter>& agg) {
  ByteWriter w(out);
  w.PutU8(agg.has_value() ? 1 : 0);
  if (!agg.has_value()) return;
  AppendAggAttr(out, agg->lhs);
  ByteWriter w2(out);
  w2.PutU8(static_cast<uint8_t>(agg->op));
  AppendAggAttr(out, agg->rhs);
}

void AppendNode(std::string* out, const Query& q) {
  ByteWriter w(out);
  w.PutU8(static_cast<uint8_t>(q.op()));
  switch (q.op()) {
    case QueryOp::kAtomic:
      w.PutU8(static_cast<uint8_t>(q.scope()));
      w.PutString(q.base().HierKey());
      AppendAtomicFilter(out, q.filter());
      return;
    case QueryOp::kLdap:
      w.PutU8(static_cast<uint8_t>(q.scope()));
      w.PutString(q.base().HierKey());
      AppendLdapFilter(out, *q.ldap_filter());
      return;
    default:
      break;
  }
  // Operator node: reference attribute (vd/dv), aggregate filter, then
  // the operands in q1/q2/q3 order (arity is implied by the op kind, but
  // encode it anyway so truncated encodings can never alias).
  w.PutString(q.ref_attr());
  AppendAggSel(out, q.agg());
  size_t arity = (q.q1() != nullptr ? 1 : 0) + (q.q2() != nullptr ? 1 : 0) +
                 (q.q3() != nullptr ? 1 : 0);
  ByteWriter w2(out);
  w2.PutVarint(arity);
  for (const QueryPtr& child : {q.q1(), q.q2(), q.q3()}) {
    if (child != nullptr) AppendNode(out, *child);
  }
}

void CountSubtrees(
    const QueryPtr& q,
    std::unordered_map<std::string, PlanCensus::SharedPlan>* counts) {
  if (q == nullptr) return;
  PlanCensus::SharedPlan& sp = (*counts)[QueryFingerprint(*q)];
  if (sp.occurrences++ == 0) {
    sp.plan = q;
    sp.nodes = q->NodeCount();
  }
  CountSubtrees(q->q1(), counts);
  CountSubtrees(q->q2(), counts);
  CountSubtrees(q->q3(), counts);
}

void CollectMaximal(const QueryPtr& q, const PlanCensus& census,
                    std::unordered_set<std::string>* emitted,
                    std::vector<QueryPtr>* out) {
  if (q == nullptr) return;
  std::string fp = QueryFingerprint(*q);
  if (census.shared.count(fp) != 0) {
    // A shared subtree: materialize this root once; nested shared
    // subtrees are published while it evaluates, so do not descend.
    if (emitted->insert(std::move(fp)).second) out->push_back(q);
    return;
  }
  CollectMaximal(q->q1(), census, emitted, out);
  CollectMaximal(q->q2(), census, emitted, out);
  CollectMaximal(q->q3(), census, emitted, out);
}

}  // namespace

std::string QueryFingerprint(const Query& query) {
  std::string fp("qfp1");  // versioned: bump on any encoding change
  AppendNode(&fp, query);
  return fp;
}

std::unordered_set<std::string> PlanCensus::SharedKeys() const {
  std::unordered_set<std::string> keys;
  keys.reserve(shared.size());
  for (const auto& [fp, sp] : shared) keys.insert(fp);
  return keys;
}

uint64_t PlanCensus::TotalOccurrences() const {
  uint64_t total = 0;
  for (const auto& [fp, sp] : shared) total += sp.occurrences;
  return total;
}

PlanCensus AnalyzeBatch(const std::vector<QueryPtr>& plans) {
  PlanCensus census;
  std::unordered_map<std::string, PlanCensus::SharedPlan> counts;
  for (const QueryPtr& plan : plans) CountSubtrees(plan, &counts);
  for (auto& [fp, sp] : counts) {
    if (sp.occurrences >= 2) census.shared.emplace(fp, sp);
  }
  std::unordered_set<std::string> emitted;
  for (const QueryPtr& plan : plans) {
    CollectMaximal(plan, census, &emitted, &census.maximal);
  }
  return census;
}

}  // namespace ndq
