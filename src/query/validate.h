// Schema-aware query validation.
//
// The formal model types every attribute globally (tau, Def. 3.1), so a
// query can be checked before touching any data: an integer comparison on
// a string-typed attribute can never match (Sec. 4.1's filter semantics
// require tau(a) = int), a vd/dv over a non-DN attribute can never produce
// witnesses, and an unknown attribute name is almost always a typo. A
// production server surfaces these as diagnostics instead of silently
// returning empty results.

#ifndef NDQ_QUERY_VALIDATE_H_
#define NDQ_QUERY_VALIDATE_H_

#include <string>
#include <vector>

#include "core/schema.h"
#include "query/ast.h"

namespace ndq {

/// One validation finding.
struct QueryIssue {
  enum class Severity {
    kError,    ///< the construct can never match / is ill-typed
    kWarning,  ///< suspicious but satisfiable
  };
  Severity severity = Severity::kWarning;
  std::string message;
};

/// Checks `query` against `schema`; returns all findings (empty = clean).
/// Errors reported:
///   * integer comparison / aggregation over a non-int attribute,
///   * vd/dv via an attribute that is not distinguishedName-typed,
///   * equality with an objectClass value that names no declared class.
/// Warnings reported:
///   * attributes (in filters, aggregates or reference positions) that the
///     schema does not declare.
std::vector<QueryIssue> ValidateQuery(const Schema& schema,
                                      const Query& query);

/// True iff no kError findings.
bool QueryIsValid(const Schema& schema, const Query& query);

}  // namespace ndq

#endif  // NDQ_QUERY_VALIDATE_H_
