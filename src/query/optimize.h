// The cost-based plan optimizer (ROADMAP item 4; docs/OPTIMIZER.md).
//
// RewriteQuery (query/rewrite.h) applies statistics-free canonicalizing
// rewrites; OptimizeQuery runs AFTER it and consults the store's
// cardinality statistics (store/stats.h via EntrySource::stats()) and the
// cost model (exec/cost.h) to choose among equivalent plan shapes:
//
//   * Short-circuits: an operand whose estimated output cardinality is 0
//     is PROVABLY empty (estimates are upper bounds), so
//       (- Q1 empty)  -> Q1,          (- empty Q2)   -> empty,
//       (& empty Q)   -> empty,       (| empty Q)    -> Q,
//       (h Q1 empty)  -> empty        for hierarchy ops without an
//                                     aggregate filter (pure existential
//                                     semantics; an aggregate like
//                                     count($2)=0 can match zero-witness
//                                     entries, so it gates the rule),
//       (h empty Q2), (g empty AS)  -> empty  (output is a subset of
//                                     M(Q1) unconditionally).
//     "empty" replacements become a base-scoped leaf with the original
//     never-matching filter (~1 page) rather than the original scan.
//
//   * Operand reordering: &/| chains are flattened, ordered by estimated
//     (output cardinality, total pages, fingerprint) and rebuilt
//     left-deep, so intersections see their most selective operand first
//     and syntactic permutations of the same operand set fingerprint
//     identically — batch sub-plan sharing (query/fingerprint.h) then
//     recognizes them as one plan.
//
//   * Filter pushdown: (& F (h Q1 Q2 [agg])) -> (h (& F Q1) Q2 [agg])
//     for a leaf F and a hierarchy/simple-agg node, legal iff the
//     aggregate filter (if any) uses no entry-SET aggregates (those read
//     all of M(Q1), which the pushdown would change); applied only when
//     the cost model says the pushed form is cheaper.
//
// Every rewrite preserves M(Q) on the store snapshot the statistics
// describe, and — because results are sorted entry sets with canonical
// serialization — byte-identical output, which the ndqfuzz optimize0/1
// oracles check case by case.
//
// ChooseAccessPath is the shared scan-vs-index-probe decision: the
// evaluator's index hook (exec/parallel_evaluator.h) and EXPLAIN both
// call it so the plan report matches what execution actually does.

#ifndef NDQ_QUERY_OPTIMIZE_H_
#define NDQ_QUERY_OPTIMIZE_H_

#include <string>

#include "query/ast.h"
#include "store/entry_store.h"

namespace ndq {

/// Per-rule toggles (all on by default; tests isolate rules with these).
struct OptimizeOptions {
  bool short_circuit = true;
  bool reorder = true;
  bool pushdown = true;
};

/// Counts of applied rewrites, reported through QueryOutcome and the
/// root trace's plan_rewrites field.
struct OptimizeStats {
  size_t short_circuits = 0;
  size_t reordered_operands = 0;
  size_t pushed_filters = 0;

  size_t Total() const {
    return short_circuits + reordered_operands + pushed_filters;
  }
  /// "short_circuit=1 reorder=2 pushdown=1" (only nonzero rules), or
  /// "none".
  std::string ToString() const;
};

/// An optimized plan plus what the optimizer did and what it expects.
struct OptimizedPlan {
  QueryPtr plan;
  OptimizeStats stats;
  double est_pages_before = 0;
  double est_pages_after = 0;
};

/// Optimizes `query` against `store`'s statistics and cost model. The
/// input should already be canonicalized by RewriteQuery. Never returns
/// a more expensive plan: rewrites are kept only when the cost estimate
/// does not increase.
OptimizedPlan OptimizeQuery(const EntrySource& store, const QueryPtr& query,
                            const OptimizeOptions& options = {});

/// How an atomic leaf should fetch its entries.
enum class AccessPath {
  kRangeScan,   ///< scan the scope's key range (exec/atomic.h)
  kIndexProbe,  ///< probe a per-attribute index (index/attr_index.h)
};

/// The scan-vs-probe decision for one atomic leaf, with the estimates
/// that drove it.
struct AccessPathChoice {
  AccessPath path = AccessPath::kRangeScan;
  double scan_pages = 0;    ///< estimated pages for the range scan
  double probe_pages = 0;   ///< estimated pages for index probes
  uint64_t est_matches = 0; ///< upper bound on matching entries
};

/// Chooses the access path for an atomic leaf (`leaf.op()` must be
/// kAtomic). Prefers an index probe only when statistics prove few
/// enough matches that per-match point lookups beat the range scan; the
/// evaluator still falls back to the scan when the attribute turns out
/// not to be indexed.
AccessPathChoice ChooseAccessPath(const EntrySource& store,
                                  const Query& leaf);

}  // namespace ndq

#endif  // NDQ_QUERY_OPTIMIZE_H_
