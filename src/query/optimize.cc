#include "query/optimize.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include "exec/cost.h"
#include "filter/ldap_filter.h"
#include "query/fingerprint.h"
#include "store/stats.h"

namespace ndq {

namespace {

bool IsLeafOp(QueryOp op) {
  return op == QueryOp::kAtomic || op == QueryOp::kLdap;
}

bool IsHierarchySelection(QueryOp op) {
  switch (op) {
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants:
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants:
      return true;
    default:
      return false;
  }
}

// The cost model's cardinalities are upper bounds, so an estimate of 0
// PROVES the subtree selects nothing on this store snapshot.
bool ProvablyEmpty(const EntrySource& store, const Query& q) {
  return EstimateCost(store, q).output_records <= 0.0;
}

// The cheapest equivalent of a proven-empty subtree. For a leaf, the
// same never-matching filter at base scope (M(base-scoped) is a subset
// of the empty M(original), and the scan touches ~1 page instead of the
// whole range). Operator nodes were already minimized bottom-up, so they
// pass through unchanged.
QueryPtr EmptyWitness(const QueryPtr& q) {
  if (q->op() == QueryOp::kAtomic && q->scope() != Scope::kBase) {
    return Query::Atomic(q->base(), Scope::kBase, q->filter());
  }
  if (q->op() == QueryOp::kLdap && q->scope() != Scope::kBase) {
    return Query::Ldap(q->base(), Scope::kBase, q->ldap_filter());
  }
  return q;
}

// Rebuilds `q`'s node kind over new operands.
QueryPtr Rebuild(const Query& q, QueryPtr q1, QueryPtr q2, QueryPtr q3) {
  switch (q.op()) {
    case QueryOp::kAtomic:
    case QueryOp::kLdap:
      return nullptr;  // leaves are never rebuilt
    case QueryOp::kAnd:
      return Query::And(std::move(q1), std::move(q2));
    case QueryOp::kOr:
      return Query::Or(std::move(q1), std::move(q2));
    case QueryOp::kDiff:
      return Query::Diff(std::move(q1), std::move(q2));
    case QueryOp::kSimpleAgg:
      return Query::SimpleAgg(std::move(q1), *q.agg());
    case QueryOp::kValueDn:
    case QueryOp::kDnValue:
      return Query::EmbeddedRef(q.op(), std::move(q1), std::move(q2),
                                q.ref_attr(), q.agg());
    default:
      if (q3 != nullptr) {
        return Query::HierarchyConstrained(q.op(), std::move(q1),
                                           std::move(q2), std::move(q3),
                                           q.agg());
      }
      return Query::Hierarchy(q.op(), std::move(q1), std::move(q2),
                              q.agg());
  }
}

struct Ctx {
  const EntrySource& store;
  OptimizeOptions opts;
  OptimizeStats stats;
};

QueryPtr OptimizeNode(Ctx* ctx, const QueryPtr& q);

// Flattens a same-op &/| chain into its operand list (left to right).
void Flatten(QueryOp op, const QueryPtr& q, std::vector<QueryPtr>* out) {
  if (q->op() == op) {
    Flatten(op, q->q1(), out);
    Flatten(op, q->q2(), out);
  } else {
    out->push_back(q);
  }
}

// Orders &/| operands most-selective/cheapest first, with the
// fingerprint as a deterministic tiebreak so permutations of the same
// operand set rebuild into one canonical left-deep chain (which batch
// sub-plan sharing then recognizes).
QueryPtr ReorderChain(Ctx* ctx, const QueryPtr& node) {
  std::vector<QueryPtr> operands;
  Flatten(node->op(), node, &operands);
  if (operands.size() < 2) return node;
  struct Keyed {
    QueryPtr q;
    double records;
    double pages;
    std::string fp;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(operands.size());
  for (const QueryPtr& op : operands) {
    CostEstimate est = EstimateCost(ctx->store, *op);
    keyed.push_back(
        {op, est.output_records, est.TotalPages(), QueryFingerprint(*op)});
  }
  std::vector<size_t> order(keyed.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::tie(keyed[a].records, keyed[a].pages, keyed[a].fp) <
           std::tie(keyed[b].records, keyed[b].pages, keyed[b].fp);
  });
  size_t moved = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] != i) ++moved;
  }
  if (moved == 0) return node;
  ctx->stats.reordered_operands += moved;
  QueryPtr chain = keyed[order[0]].q;
  for (size_t i = 1; i < order.size(); ++i) {
    chain = node->op() == QueryOp::kAnd
                ? Query::And(chain, keyed[order[i]].q)
                : Query::Or(chain, keyed[order[i]].q);
  }
  return chain;
}

// Flattens same-op &/| nesting inside an LDAP filter (associativity).
void FlattenLdap(LdapFilter::Op op, const LdapFilterPtr& f,
                 std::vector<LdapFilterPtr>* out) {
  if (f->op() == op) {
    for (const LdapFilterPtr& c : f->children()) FlattenLdap(op, c, out);
  } else {
    out->push_back(f);
  }
}

// Canonicalizes an LDAP filter bottom-up: flattens same-op nesting,
// drops provably-empty `|` disjuncts (a short-circuit: the histogram
// proves they select nothing on this snapshot), and orders &/| operand
// lists cheapest-first with the filter text as a deterministic tiebreak.
// Every permutation of one operand set therefore renders identically —
// which makes merged-leaf fingerprints canonical for batch sharing — and
// the per-entry evaluator tests selective terms first.
LdapFilterPtr CanonicalizeLdap(Ctx* ctx, const StoreStats& stats,
                               const LdapFilterPtr& f, bool* changed) {
  switch (f->op()) {
    case LdapFilter::Op::kAtomic:
      return f;
    case LdapFilter::Op::kNot: {
      bool child_changed = false;
      LdapFilterPtr child =
          CanonicalizeLdap(ctx, stats, f->children()[0], &child_changed);
      if (!child_changed) return f;
      *changed = true;
      return LdapFilter::Not(std::move(child));
    }
    case LdapFilter::Op::kAnd:
    case LdapFilter::Op::kOr: {
      std::vector<LdapFilterPtr> flat;
      FlattenLdap(f->op(), f, &flat);
      bool structural = flat.size() != f->children().size();
      std::vector<LdapFilterPtr> kids;
      kids.reserve(flat.size());
      for (const LdapFilterPtr& c : flat) {
        bool cc = false;
        LdapFilterPtr canon = CanonicalizeLdap(ctx, stats, c, &cc);
        structural |= cc;
        // A canonicalized child may have collapsed into this node's own
        // op (e.g. an | reduced to its one surviving &): splice it.
        if (canon->op() == f->op()) {
          for (const LdapFilterPtr& gc : canon->children())
            kids.push_back(gc);
        } else {
          kids.push_back(std::move(canon));
        }
      }
      if (ctx->opts.short_circuit && f->op() == LdapFilter::Op::kOr &&
          kids.size() > 1) {
        std::vector<LdapFilterPtr> kept;
        for (const LdapFilterPtr& c : kids) {
          if (stats.EstimateLdapMatches(*c) == 0) continue;
          kept.push_back(c);
        }
        if (kept.size() < kids.size()) {
          // Keep one witness disjunct when everything proved empty.
          if (kept.empty()) kept.push_back(kids[0]);
          ctx->stats.short_circuits += kids.size() - kept.size();
          kids = std::move(kept);
          structural = true;
        }
      }
      if (kids.size() == 1) {
        *changed = true;
        return kids[0];
      }
      struct Keyed {
        uint64_t est;
        std::string text;
      };
      std::vector<Keyed> keyed;
      keyed.reserve(kids.size());
      for (const LdapFilterPtr& c : kids) {
        keyed.push_back({stats.EstimateLdapMatches(*c), c->ToString()});
      }
      std::vector<size_t> order(kids.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      if (ctx->opts.reorder) {
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                           return std::tie(keyed[a].est, keyed[a].text) <
                                  std::tie(keyed[b].est, keyed[b].text);
                         });
        size_t moved = 0;
        for (size_t i = 0; i < order.size(); ++i) {
          if (order[i] != i) ++moved;
        }
        if (moved != 0) {
          ctx->stats.reordered_operands += moved;
          structural = true;
        }
      }
      if (!structural) return f;
      *changed = true;
      std::vector<LdapFilterPtr> sorted;
      sorted.reserve(kids.size());
      for (size_t i : order) sorted.push_back(kids[i]);
      return f->op() == LdapFilter::Op::kAnd
                 ? LdapFilter::And(std::move(sorted))
                 : LdapFilter::Or(std::move(sorted));
    }
  }
  return f;
}

// (& F (h Q1 Q2 [agg])) -> (h (& F Q1) Q2 [agg]) for a leaf F. Legal iff
// the node's aggregate filter (if any) uses no entry-set aggregates:
// those read all of M(Q1) (count($1), agg($1), ...) and shrinking M(Q1)
// would change them; per-entry decisions otherwise depend only on the
// entry and its witnesses in M(Q2). Kept only when the cost model says
// the pushed form is strictly cheaper.
QueryPtr TryPushdown(Ctx* ctx, const QueryPtr& node) {
  for (int flip = 0; flip < 2; ++flip) {
    const QueryPtr& f = flip == 0 ? node->q1() : node->q2();
    const QueryPtr& h = flip == 0 ? node->q2() : node->q1();
    if (!IsLeafOp(f->op())) continue;
    bool pushable = false;
    if (IsHierarchySelection(h->op())) {
      pushable = !h->agg().has_value() || !h->agg()->NeedsSetAggregates();
    } else if (h->op() == QueryOp::kSimpleAgg) {
      pushable = !h->agg()->NeedsSetAggregates();
    }
    if (!pushable) continue;
    // The new inner conjunction may itself short-circuit or reorder.
    OptimizeStats saved = ctx->stats;
    QueryPtr inner = OptimizeNode(ctx, Query::And(f, h->q1()));
    QueryPtr candidate = Rebuild(*h, inner, h->q2(), h->q3());
    if (EstimateCost(ctx->store, *candidate).TotalPages() <
        EstimateCost(ctx->store, *node).TotalPages()) {
      ++ctx->stats.pushed_filters;
      return candidate;
    }
    ctx->stats = saved;  // rejected: discard the trial's counts
  }
  return nullptr;
}

QueryPtr OptimizeNode(Ctx* ctx, const QueryPtr& q) {
  if (IsLeafOp(q->op())) {
    // A provably-empty scan shrinks to its base-scoped witness.
    if (ctx->opts.short_circuit && q->scope() != Scope::kBase &&
        ProvablyEmpty(ctx->store, *q)) {
      ++ctx->stats.short_circuits;
      return EmptyWitness(q);
    }
    // Canonicalize the boolean structure of a merged LDAP leaf — the
    // rewrite pass folds same-base conjunctions/disjunctions into one
    // such leaf, so operand ordering lives inside its filter here.
    if (q->op() == QueryOp::kLdap) {
      const StoreStats* stats = ctx->store.stats();
      if (stats != nullptr &&
          (ctx->opts.reorder || ctx->opts.short_circuit)) {
        bool changed = false;
        LdapFilterPtr f =
            CanonicalizeLdap(ctx, *stats, q->ldap_filter(), &changed);
        if (changed) return Query::Ldap(q->base(), q->scope(), std::move(f));
      }
    }
    return q;
  }
  QueryPtr q1 = q->q1() == nullptr ? nullptr : OptimizeNode(ctx, q->q1());
  QueryPtr q2 = q->q2() == nullptr ? nullptr : OptimizeNode(ctx, q->q2());
  QueryPtr q3 = q->q3() == nullptr ? nullptr : OptimizeNode(ctx, q->q3());
  QueryPtr node = Rebuild(*q, q1, q2, q3);

  switch (node->op()) {
    case QueryOp::kAnd:
    case QueryOp::kOr: {
      if (ctx->opts.short_circuit) {
        bool e1 = ProvablyEmpty(ctx->store, *node->q1());
        bool e2 = ProvablyEmpty(ctx->store, *node->q2());
        if (node->op() == QueryOp::kAnd && (e1 || e2)) {
          ++ctx->stats.short_circuits;
          return EmptyWitness(e1 ? node->q1() : node->q2());
        }
        if (node->op() == QueryOp::kOr && (e1 || e2)) {
          ++ctx->stats.short_circuits;
          if (e1 && e2) return EmptyWitness(node->q1());
          return e1 ? node->q2() : node->q1();
        }
      }
      if (node->op() == QueryOp::kAnd && ctx->opts.pushdown) {
        QueryPtr pushed = TryPushdown(ctx, node);
        if (pushed != nullptr) return pushed;
      }
      if (ctx->opts.reorder) node = ReorderChain(ctx, node);
      return node;
    }
    case QueryOp::kDiff: {
      if (ctx->opts.short_circuit) {
        if (ProvablyEmpty(ctx->store, *node->q1())) {
          // M(-) is a subset of M(Q1) = {}.
          ++ctx->stats.short_circuits;
          return EmptyWitness(node->q1());
        }
        if (ProvablyEmpty(ctx->store, *node->q2())) {
          // Subtracting nothing: M(-) = M(Q1).
          ++ctx->stats.short_circuits;
          return node->q1();
        }
      }
      return node;
    }
    case QueryOp::kSimpleAgg:
    case QueryOp::kValueDn:
    case QueryOp::kDnValue: {
      // Output is a subset of M(Q1) unconditionally.
      if (ctx->opts.short_circuit &&
          ProvablyEmpty(ctx->store, *node->q1())) {
        ++ctx->stats.short_circuits;
        return EmptyWitness(node->q1());
      }
      return node;
    }
    default: {  // hierarchy selections
      if (ctx->opts.short_circuit) {
        if (ProvablyEmpty(ctx->store, *node->q1())) {
          ++ctx->stats.short_circuits;
          return EmptyWitness(node->q1());
        }
        // Without an aggregate filter the semantics are purely
        // existential (Sec. 6.2): no witnesses in M(Q2) means no entry
        // qualifies. An aggregate like count($2)=0 can match entries
        // with zero witnesses, so it disables the rule.
        if (!node->agg().has_value() &&
            ProvablyEmpty(ctx->store, *node->q2())) {
          ++ctx->stats.short_circuits;
          return EmptyWitness(node->q2());
        }
      }
      return node;
    }
  }
}

}  // namespace

std::string OptimizeStats::ToString() const {
  std::string out;
  auto append = [&](const char* key, size_t n) {
    if (n == 0) return;
    if (!out.empty()) out += ' ';
    out += key;
    out += '=';
    out += std::to_string(n);
  };
  append("short_circuit", short_circuits);
  append("reorder", reordered_operands);
  append("pushdown", pushed_filters);
  return out.empty() ? "none" : out;
}

OptimizedPlan OptimizeQuery(const EntrySource& store, const QueryPtr& query,
                            const OptimizeOptions& options) {
  OptimizedPlan out;
  out.est_pages_before = EstimateCost(store, *query).TotalPages();
  Ctx ctx{store, options, {}};
  out.plan = OptimizeNode(&ctx, query);
  out.stats = ctx.stats;
  out.est_pages_after = EstimateCost(store, *out.plan).TotalPages();
  // Never ship a plan the model itself thinks is worse.
  if (out.est_pages_after > out.est_pages_before) {
    out.plan = query;
    out.stats = OptimizeStats{};
    out.est_pages_after = out.est_pages_before;
  }
  return out;
}

AccessPathChoice ChooseAccessPath(const EntrySource& store,
                                  const Query& leaf) {
  AccessPathChoice choice;
  const std::string& base_key = leaf.base().HierKey();
  std::string end = leaf.scope() == Scope::kBase
                        ? KeyExactEnd(base_key)
                        : KeySubtreeEnd(base_key);
  choice.scan_pages =
      static_cast<double>(store.EstimateRangePages(base_key, end));
  choice.est_matches = store.EstimateRangeRecords(base_key, end);
  const StoreStats* stats = store.stats();
  if (stats == nullptr || leaf.op() != QueryOp::kAtomic) return choice;
  choice.est_matches = std::min(
      choice.est_matches, stats->EstimateFilterMatches(leaf.filter()));
  // A probe pays roughly a seek + read per matching entry (plus the
  // output write the scan also pays); presence/true filters enumerate
  // too much to beat a scan unless the attribute is near-absent.
  choice.probe_pages = 2.0 * static_cast<double>(choice.est_matches) + 1.0;
  if (choice.probe_pages < choice.scan_pages) {
    choice.path = AccessPath::kIndexProbe;
  }
  return choice;
}

}  // namespace ndq
