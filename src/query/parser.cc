#include "query/parser.h"

#include <cctype>

namespace ndq {
namespace {

bool IsOpWord(const std::string& w) {
  return w == "&" || w == "|" || w == "-" || w == "p" || w == "c" ||
         w == "a" || w == "d" || w == "ac" || w == "dc" || w == "g" ||
         w == "vd" || w == "dv" || w == "ldap";
}

class QueryParser {
 public:
  explicit QueryParser(std::string_view text) : text_(text) {}

  Result<QueryPtr> Parse() {
    SkipWs();
    NDQ_ASSIGN_OR_RETURN(QueryPtr q, ParseNode());
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after query: '" +
                                     std::string(text_.substr(pos_)) + "'");
    }
    return q;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Result<QueryPtr> ParseNode() {
    SkipWs();
    if (Peek() != '(') {
      return Status::InvalidArgument("expected '(' at position " +
                                     std::to_string(pos_));
    }
    ++pos_;
    SkipWs();
    // Look ahead for an operator word: a token of non-space/paren chars
    // followed by whitespace and then '(' — or, for "g/vd/dv/ldap", any
    // operator word. An atomic query's base never matches because it is
    // followed by more DN text or '?', and the word itself ("dc=att,")
    // contains '=' / ',' making it a non-operator.
    size_t save = pos_;
    std::string word = ReadWord();
    if (IsOpWord(word)) {
      return ParseOperator(word);
    }
    pos_ = save;
    return ParseAtomic();
  }

  std::string ReadWord() {
    size_t start = pos_;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(
                                      text_[pos_])) &&
           text_[pos_] != '(' && text_[pos_] != ')') {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  // Parses "<base> ? <scope> ? <filter>)" — the '(' is already consumed.
  Result<QueryPtr> ParseAtomic() {
    size_t q1 = text_.find('?', pos_);
    if (q1 == std::string_view::npos) {
      return Status::InvalidArgument("atomic query missing '?'");
    }
    // Only strip whitespace for the null-dn sentinel check; Dn::Parse
    // gets the raw slice because its own trimmer knows that a space
    // preceded by an odd backslash run is escaped content, not padding.
    std::string_view raw_base = text_.substr(pos_, q1 - pos_);
    std::string base_text(Trim(raw_base) == "null-dn" ? std::string_view()
                                                      : raw_base);
    NDQ_ASSIGN_OR_RETURN(Dn base, Dn::Parse(base_text));
    pos_ = q1 + 1;
    size_t q2 = text_.find('?', pos_);
    if (q2 == std::string_view::npos) {
      return Status::InvalidArgument("atomic query missing second '?'");
    }
    NDQ_ASSIGN_OR_RETURN(Scope scope, ScopeFromString(std::string(
                                          Trim(text_.substr(pos_, q2 - pos_)))));
    pos_ = q2 + 1;
    NDQ_ASSIGN_OR_RETURN(std::string filter_text, ReadBalancedUntilClose());
    NDQ_ASSIGN_OR_RETURN(AtomicFilter filter,
                         AtomicFilter::Parse(Trim(filter_text)));
    return Query::Atomic(std::move(base), scope, std::move(filter));
  }

  // Parses an operator node; the '(' and op word are consumed.
  Result<QueryPtr> ParseOperator(const std::string& op) {
    if (op == "ldap") {
      size_t q1 = text_.find('?', pos_);
      if (q1 == std::string_view::npos) {
        return Status::InvalidArgument("ldap query missing '?'");
      }
      std::string_view raw_base = text_.substr(pos_, q1 - pos_);
      std::string base_text(Trim(raw_base) == "null-dn" ? std::string_view()
                                                        : raw_base);
      NDQ_ASSIGN_OR_RETURN(Dn base, Dn::Parse(base_text));
      pos_ = q1 + 1;
      size_t q2 = text_.find('?', pos_);
      if (q2 == std::string_view::npos) {
        return Status::InvalidArgument("ldap query missing second '?'");
      }
      NDQ_ASSIGN_OR_RETURN(
          Scope scope,
          ScopeFromString(std::string(Trim(text_.substr(pos_, q2 - pos_)))));
      pos_ = q2 + 1;
      NDQ_ASSIGN_OR_RETURN(std::string filter_text, ReadBalancedUntilClose());
      NDQ_ASSIGN_OR_RETURN(LdapFilterPtr filter,
                           LdapFilter::Parse(Trim(filter_text)));
      return Query::Ldap(std::move(base), scope, std::move(filter));
    }

    if (op == "&" || op == "|" || op == "-") {
      NDQ_ASSIGN_OR_RETURN(QueryPtr a, ParseNode());
      NDQ_ASSIGN_OR_RETURN(QueryPtr b, ParseNode());
      NDQ_RETURN_IF_ERROR(ExpectClose());
      if (op == "&") return Query::And(std::move(a), std::move(b));
      if (op == "|") return Query::Or(std::move(a), std::move(b));
      return Query::Diff(std::move(a), std::move(b));
    }

    if (op == "g") {
      NDQ_ASSIGN_OR_RETURN(QueryPtr a, ParseNode());
      NDQ_ASSIGN_OR_RETURN(std::string agg_text, ReadBalancedUntilClose());
      NDQ_ASSIGN_OR_RETURN(AggSelFilter agg,
                           ParseAggSelFilter(Trim(agg_text)));
      return Query::SimpleAgg(std::move(a), std::move(agg));
    }

    if (op == "vd" || op == "dv") {
      NDQ_ASSIGN_OR_RETURN(QueryPtr a, ParseNode());
      NDQ_ASSIGN_OR_RETURN(QueryPtr b, ParseNode());
      SkipWs();
      std::string attr = ReadWord();
      if (attr.empty()) {
        return Status::InvalidArgument(op + " missing attribute name");
      }
      NDQ_ASSIGN_OR_RETURN(std::optional<AggSelFilter> agg,
                           ParseOptionalAggThenClose());
      QueryOp qop = op == "vd" ? QueryOp::kValueDn : QueryOp::kDnValue;
      return Query::EmbeddedRef(qop, std::move(a), std::move(b),
                                std::move(attr), std::move(agg));
    }

    // Hierarchy operators.
    NDQ_ASSIGN_OR_RETURN(QueryPtr a, ParseNode());
    NDQ_ASSIGN_OR_RETURN(QueryPtr b, ParseNode());
    if (op == "ac" || op == "dc") {
      NDQ_ASSIGN_OR_RETURN(QueryPtr c, ParseNode());
      NDQ_ASSIGN_OR_RETURN(std::optional<AggSelFilter> agg,
                           ParseOptionalAggThenClose());
      QueryOp qop =
          op == "ac" ? QueryOp::kCoAncestors : QueryOp::kCoDescendants;
      return Query::HierarchyConstrained(qop, std::move(a), std::move(b),
                                         std::move(c), std::move(agg));
    }
    NDQ_ASSIGN_OR_RETURN(std::optional<AggSelFilter> agg,
                         ParseOptionalAggThenClose());
    QueryOp qop;
    if (op == "p") {
      qop = QueryOp::kParents;
    } else if (op == "c") {
      qop = QueryOp::kChildren;
    } else if (op == "a") {
      qop = QueryOp::kAncestors;
    } else {
      qop = QueryOp::kDescendants;
    }
    return Query::Hierarchy(qop, std::move(a), std::move(b), std::move(agg));
  }

  // After the operands of an operator node: either ')' immediately, or an
  // aggregate selection filter followed by ')'.
  Result<std::optional<AggSelFilter>> ParseOptionalAggThenClose() {
    SkipWs();
    if (Peek() == ')') {
      ++pos_;
      return std::optional<AggSelFilter>();
    }
    NDQ_ASSIGN_OR_RETURN(std::string agg_text, ReadBalancedUntilClose());
    NDQ_ASSIGN_OR_RETURN(AggSelFilter agg, ParseAggSelFilter(Trim(agg_text)));
    return std::optional<AggSelFilter>(std::move(agg));
  }

  Status ExpectClose() {
    SkipWs();
    if (Peek() != ')') {
      return Status::InvalidArgument("expected ')' at position " +
                                     std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  // Reads text up to (and consuming) the ')' that closes the current node,
  // balancing any nested parentheses inside (aggregates, LDAP filters).
  Result<std::string> ReadBalancedUntilClose() {
    size_t start = pos_;
    int depth = 0;
    while (pos_ < text_.size()) {
      char ch = text_[pos_];
      if (ch == '(') {
        ++depth;
      } else if (ch == ')') {
        if (depth == 0) {
          std::string out(text_.substr(start, pos_ - start));
          ++pos_;  // consume the close
          return out;
        }
        --depth;
      }
      ++pos_;
    }
    return Status::InvalidArgument("unbalanced parentheses in query");
  }

  static std::string_view Trim(std::string_view s) {
    size_t b = 0;
    while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) {
      ++b;
    }
    size_t e = s.size();
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
      --e;
    }
    return s.substr(b, e - b);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<QueryPtr> ParseQuery(std::string_view text) {
  return QueryParser(text).Parse();
}

}  // namespace ndq
