// The reference evaluator: a direct, in-memory implementation of the
// denotational semantics (Defs. 4.1, 5.1, 6.1, 6.2, 7.1).
//
// It makes no attempt to be fast (witness tests are nested loops) — it
// exists to be *obviously correct*, serving as the oracle against which
// the external-memory engine (src/exec) is property-tested, and as the
// executable form of the paper's definitions.

#ifndef NDQ_QUERY_REFERENCE_H_
#define NDQ_QUERY_REFERENCE_H_

#include <vector>

#include "core/instance.h"
#include "query/ast.h"

namespace ndq {

/// Evaluates M(Q) over `instance`. The result lists entries of the
/// instance in HierKey (reverse-DN) order — queries map instances to
/// sub-instances, so the result is just a set of existing entries.
Result<std::vector<const Entry*>> EvaluateReference(
    const Query& query, const DirectoryInstance& instance);

/// The op-witness set ws_Q(r1) within M(Q2) (and M(Q3) for constrained
/// ops) per Sec. 6.2 / 7.1. Exposed for tests.
std::vector<const Entry*> WitnessSet(
    QueryOp op, const Entry& r1, const std::vector<const Entry*>& m2,
    const std::vector<const Entry*>& m3, const std::string& ref_attr);

}  // namespace ndq

#endif  // NDQ_QUERY_REFERENCE_H_
