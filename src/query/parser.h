// Parser for the paper's query syntax (grammars of Figs. 7-10).
//
// Examples accepted verbatim from the paper:
//   (- (dc=att, dc=com ? sub ? surName=jagadish)
//      (dc=research, dc=att, dc=com ? sub ? surName=jagadish))
//   (c (dc=att, dc=com ? sub ? objectClass=organizationalUnit)
//      (dc=att, dc=com ? sub ? surName=jagadish))
//   (g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
//      count(SLAPVPRef) > 1)
//   (vd (...) (...) SLATPRef min(SLARulePriority)=min(min(SLARulePriority)))
//
// Extensions beyond the paper's figures:
//   * "(ldap <base> ? <scope> ? <rfc2254-filter>)" for the baseline LDAP
//     language (single base+scope, boolean *filter*);
//   * an empty base (or the literal "null-dn") denotes the null dn.

#ifndef NDQ_QUERY_PARSER_H_
#define NDQ_QUERY_PARSER_H_

#include <string_view>

#include "query/ast.h"

namespace ndq {

/// Parses one query expression; the entire input must be consumed.
Result<QueryPtr> ParseQuery(std::string_view text);

}  // namespace ndq

#endif  // NDQ_QUERY_PARSER_H_
