#include "query/reference.h"

#include <algorithm>

namespace ndq {

namespace {

using EntryVec = std::vector<const Entry*>;

bool KeyLess(const Entry* a, const Entry* b) {
  return a->HierKey() < b->HierKey();
}

EntryVec SetAnd(const EntryVec& a, const EntryVec& b) {
  EntryVec out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out), KeyLess);
  return out;
}

EntryVec SetOr(const EntryVec& a, const EntryVec& b) {
  EntryVec out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out), KeyLess);
  return out;
}

EntryVec SetDiff(const EntryVec& a, const EntryVec& b) {
  EntryVec out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out), KeyLess);
  return out;
}

// True iff r2 stands in the op-relation to r1 (r1 from Q1's result).
bool Related(QueryOp op, const Entry& r1, const Entry& r2) {
  switch (op) {
    case QueryOp::kParents:
      return r2.dn().IsParentOf(r1.dn());
    case QueryOp::kChildren:
      return r2.dn().IsChildOf(r1.dn());
    case QueryOp::kAncestors:
    case QueryOp::kCoAncestors:
      return r2.dn().IsAncestorOf(r1.dn());
    case QueryOp::kDescendants:
    case QueryOp::kCoDescendants:
      return r2.dn().IsDescendantOf(r1.dn());
    default:
      return false;
  }
}

}  // namespace

std::vector<const Entry*> WitnessSet(QueryOp op, const Entry& r1,
                                     const std::vector<const Entry*>& m2,
                                     const std::vector<const Entry*>& m3,
                                     const std::string& ref_attr) {
  EntryVec ws;
  switch (op) {
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants:
      for (const Entry* r2 : m2) {
        if (Related(op, r1, *r2)) ws.push_back(r2);
      }
      break;
    case QueryOp::kCoAncestors:
      // r2 is an ancestor of r1 with no intervening r3 in M3: no r3 != r1,
      // r3 != r2 with r3 ancestor of r1 and r2 ancestor of r3.
      for (const Entry* r2 : m2) {
        if (!r2->dn().IsAncestorOf(r1.dn())) continue;
        bool blocked = false;
        for (const Entry* r3 : m3) {
          if (r3 == &r1 || r3 == r2) continue;
          if (r3->dn().IsAncestorOf(r1.dn()) &&
              r2->dn().IsAncestorOf(r3->dn())) {
            blocked = true;
            break;
          }
        }
        if (!blocked) ws.push_back(r2);
      }
      break;
    case QueryOp::kCoDescendants:
      for (const Entry* r2 : m2) {
        if (!r2->dn().IsDescendantOf(r1.dn())) continue;
        bool blocked = false;
        for (const Entry* r3 : m3) {
          if (r3 == &r1 || r3 == r2) continue;
          if (r3->dn().IsDescendantOf(r1.dn()) &&
              r2->dn().IsDescendantOf(r3->dn())) {
            blocked = true;
            break;
          }
        }
        if (!blocked) ws.push_back(r2);
      }
      break;
    case QueryOp::kValueDn:
      // r1 references r2: (a, dn(r2)) in val(r1).
      for (const Entry* r2 : m2) {
        if (r1.HasPair(ref_attr, Value::DnRef(r2->dn().ToString()))) {
          ws.push_back(r2);
        }
      }
      break;
    case QueryOp::kDnValue:
      // r2 references r1: (a, dn(r1)) in val(r2).
      for (const Entry* r2 : m2) {
        if (r2->HasPair(ref_attr, Value::DnRef(r1.dn().ToString()))) {
          ws.push_back(r2);
        }
      }
      break;
    default:
      break;
  }
  return ws;
}

namespace {

// Evaluates an entry aggregate ea[r, ws] (Def. 6.2; Def. 6.1 is the
// special case with kSelfAttr targets).
std::optional<int64_t> EvalEntryAgg(const EntryAgg& ea, const Entry& r,
                                    const EntryVec& ws) {
  AggAccumulator acc(ea.fn);
  switch (ea.target) {
    case AggTarget::kSelfAttr: {
      const std::vector<Value>* vals = r.Values(ea.attr);
      if (vals != nullptr) {
        for (const Value& v : *vals) acc.AddValue(v);
      }
      break;
    }
    case AggTarget::kWitnessAttr:
      for (const Entry* w : ws) {
        const std::vector<Value>* vals = w->Values(ea.attr);
        if (vals != nullptr) {
          for (const Value& v : *vals) acc.AddValue(v);
        }
      }
      break;
    case AggTarget::kWitnessCount:
      for (size_t i = 0; i < ws.size(); ++i) acc.AddUnit();
      break;
  }
  return acc.Finish();
}

struct AggContext {
  const EntryVec& m1;
  // Witness set per entry of m1 (parallel vector); empty vectors for
  // simple aggregate selection.
  const std::vector<EntryVec>& witness_sets;
  bool structural;  // whether $2 references are meaningful
};

Result<std::optional<int64_t>> EvalAggAttr(const AggAttr& aa, size_t idx,
                                           const AggContext& ctx) {
  switch (aa.kind) {
    case AggAttr::Kind::kConst:
      return std::optional<int64_t>(aa.constant);
    case AggAttr::Kind::kEntry: {
      if (!ctx.structural && aa.entry.target != AggTarget::kSelfAttr) {
        return Status::InvalidArgument(
            "$2 reference in simple aggregate selection");
      }
      return EvalEntryAgg(aa.entry, *ctx.m1[idx], ctx.witness_sets[idx]);
    }
    case AggAttr::Kind::kEntrySet: {
      if (aa.set_form == AggAttr::SetForm::kCountSet) {
        return std::optional<int64_t>(static_cast<int64_t>(ctx.m1.size()));
      }
      if (!ctx.structural && aa.entry.target != AggTarget::kSelfAttr) {
        return Status::InvalidArgument(
            "$2 reference in simple aggregate selection");
      }
      AggAccumulator acc(aa.outer_fn);
      for (size_t i = 0; i < ctx.m1.size(); ++i) {
        std::optional<int64_t> v =
            EvalEntryAgg(aa.entry, *ctx.m1[i], ctx.witness_sets[i]);
        if (v.has_value()) acc.AddInt(*v);
      }
      return acc.Finish();
    }
  }
  return Status::Internal("unreachable AggAttr kind");
}

// Applies an aggregate selection filter over m1 (+ witness sets), keeping
// the entries whose comparison holds.
Result<EntryVec> ApplyAggSelection(const AggSelFilter& agg,
                                   const AggContext& ctx) {
  EntryVec out;
  for (size_t i = 0; i < ctx.m1.size(); ++i) {
    NDQ_ASSIGN_OR_RETURN(std::optional<int64_t> lhs,
                         EvalAggAttr(agg.lhs, i, ctx));
    NDQ_ASSIGN_OR_RETURN(std::optional<int64_t> rhs,
                         EvalAggAttr(agg.rhs, i, ctx));
    if (CompareAgg(lhs, agg.op, rhs)) out.push_back(ctx.m1[i]);
  }
  return out;
}

}  // namespace

Result<std::vector<const Entry*>> EvaluateReference(
    const Query& query, const DirectoryInstance& instance) {
  switch (query.op()) {
    case QueryOp::kAtomic: {
      EntryVec out;
      for (const Entry* e :
           instance.EntriesInScope(query.base(), query.scope())) {
        if (query.filter().Matches(*e)) out.push_back(e);
      }
      return out;
    }
    case QueryOp::kLdap: {
      EntryVec out;
      for (const Entry* e :
           instance.EntriesInScope(query.base(), query.scope())) {
        if (query.ldap_filter()->Matches(*e)) out.push_back(e);
      }
      return out;
    }
    case QueryOp::kAnd:
    case QueryOp::kOr:
    case QueryOp::kDiff: {
      NDQ_ASSIGN_OR_RETURN(EntryVec a,
                           EvaluateReference(*query.q1(), instance));
      NDQ_ASSIGN_OR_RETURN(EntryVec b,
                           EvaluateReference(*query.q2(), instance));
      if (query.op() == QueryOp::kAnd) return SetAnd(a, b);
      if (query.op() == QueryOp::kOr) return SetOr(a, b);
      return SetDiff(a, b);
    }
    case QueryOp::kSimpleAgg: {
      NDQ_ASSIGN_OR_RETURN(EntryVec m1,
                           EvaluateReference(*query.q1(), instance));
      std::vector<EntryVec> empty_ws(m1.size());
      AggContext ctx{m1, empty_ws, /*structural=*/false};
      return ApplyAggSelection(*query.agg(), ctx);
    }
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants:
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants:
    case QueryOp::kValueDn:
    case QueryOp::kDnValue: {
      NDQ_ASSIGN_OR_RETURN(EntryVec m1,
                           EvaluateReference(*query.q1(), instance));
      NDQ_ASSIGN_OR_RETURN(EntryVec m2,
                           EvaluateReference(*query.q2(), instance));
      EntryVec m3;
      if (query.q3() != nullptr) {
        NDQ_ASSIGN_OR_RETURN(m3, EvaluateReference(*query.q3(), instance));
      }
      std::vector<EntryVec> witness_sets;
      witness_sets.reserve(m1.size());
      for (const Entry* r1 : m1) {
        witness_sets.push_back(
            WitnessSet(query.op(), *r1, m2, m3, query.ref_attr()));
      }
      if (query.agg().has_value()) {
        AggContext ctx{m1, witness_sets, /*structural=*/true};
        return ApplyAggSelection(*query.agg(), ctx);
      }
      // Pure existential semantics (Defs. 5.1, 7.1): keep entries with a
      // non-empty witness set. (Equivalently count($2) > 0, Sec. 6.2.)
      EntryVec out;
      for (size_t i = 0; i < m1.size(); ++i) {
        if (!witness_sets[i].empty()) out.push_back(m1[i]);
      }
      return out;
    }
  }
  return Status::Internal("unreachable query op");
}

}  // namespace ndq
