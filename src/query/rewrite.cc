#include "query/rewrite.h"

namespace ndq {

namespace {

// Syntactic equality via the canonical printer (queries are immutable
// trees; the printer is injective on ASTs).
bool SameQuery(const QueryPtr& a, const QueryPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->ToString() == b->ToString();
}

// Converts an AtomicFilter into an LdapFilter leaf.
LdapFilterPtr AsLdapFilter(const Query& atomic) {
  if (atomic.op() == QueryOp::kLdap) return atomic.ldap_filter();
  return LdapFilter::Atomic(atomic.filter());
}

bool IsLeafScan(const Query& q) {
  return q.op() == QueryOp::kAtomic || q.op() == QueryOp::kLdap;
}

QueryPtr RewriteNode(const QueryPtr& node, RewriteStats* stats);

QueryPtr RewriteChildren(const QueryPtr& node, RewriteStats* stats) {
  QueryPtr q1 = node->q1() ? RewriteNode(node->q1(), stats) : nullptr;
  QueryPtr q2 = node->q2() ? RewriteNode(node->q2(), stats) : nullptr;
  QueryPtr q3 = node->q3() ? RewriteNode(node->q3(), stats) : nullptr;
  switch (node->op()) {
    case QueryOp::kAtomic:
    case QueryOp::kLdap:
      return node;
    case QueryOp::kAnd:
      return Query::And(q1, q2);
    case QueryOp::kOr:
      return Query::Or(q1, q2);
    case QueryOp::kDiff:
      return Query::Diff(q1, q2);
    case QueryOp::kSimpleAgg:
      return Query::SimpleAgg(q1, *node->agg());
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants:
      return Query::Hierarchy(node->op(), q1, q2, node->agg());
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants:
      return Query::HierarchyConstrained(node->op(), q1, q2, q3,
                                         node->agg());
    case QueryOp::kValueDn:
    case QueryOp::kDnValue:
      return Query::EmbeddedRef(node->op(), q1, q2, node->ref_attr(),
                                node->agg());
  }
  return node;
}

// Whether `agg` spells the default existential semantics count($2) > 0.
bool IsExistentialAgg(const AggSelFilter& agg) {
  return agg.lhs.kind == AggAttr::Kind::kEntry &&
         agg.lhs.entry.target == AggTarget::kWitnessCount &&
         agg.op == CompareOp::kGt &&
         agg.rhs.kind == AggAttr::Kind::kConst && agg.rhs.constant == 0;
}

QueryPtr RewriteNode(const QueryPtr& node, RewriteStats* stats) {
  QueryPtr q = RewriteChildren(node, stats);

  switch (q->op()) {
    case QueryOp::kAnd:
    case QueryOp::kOr: {
      if (SameQuery(q->q1(), q->q2())) {
        if (stats != nullptr) ++stats->collapsed_idempotent;
        return q->q1();
      }
      // Merge two leaf scans with identical base+scope into one LDAP scan
      // whose filter is the boolean combination.
      const Query& a = *q->q1();
      const Query& b = *q->q2();
      if (IsLeafScan(a) && IsLeafScan(b) && a.base() == b.base() &&
          a.scope() == b.scope()) {
        std::vector<LdapFilterPtr> parts = {AsLdapFilter(a),
                                            AsLdapFilter(b)};
        LdapFilterPtr merged = q->op() == QueryOp::kAnd
                                   ? LdapFilter::And(std::move(parts))
                                   : LdapFilter::Or(std::move(parts));
        if (stats != nullptr) ++stats->merged_boolean_scans;
        return Query::Ldap(a.base(), a.scope(), std::move(merged));
      }
      return q;
    }
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants: {
      if (IsMatchEverything(*q->q3())) {
        // (ac Q1 Q2 <everything>) selects r1 with an ancestor r2 in Q2
        // having no entry strictly between — i.e. the closest existing
        // ancestor — which over a *prefix-closed* namespace is the
        // parent. The equivalence used by Thm 8.2(d) is exact when every
        // intermediate entry exists (LDAP requires it); we only contract
        // the expansion we ourselves generate.
        QueryOp op = q->op() == QueryOp::kCoAncestors ? QueryOp::kParents
                                                      : QueryOp::kChildren;
        if (stats != nullptr) ++stats->contracted_constrained;
        return Query::Hierarchy(op, q->q1(), q->q2(), q->agg());
      }
      if (q->agg().has_value() && IsExistentialAgg(*q->agg())) {
        if (stats != nullptr) ++stats->dropped_existential_aggs;
        return Query::HierarchyConstrained(q->op(), q->q1(), q->q2(),
                                           q->q3(), std::nullopt);
      }
      return q;
    }
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants:
    case QueryOp::kValueDn:
    case QueryOp::kDnValue: {
      if (q->agg().has_value() && IsExistentialAgg(*q->agg())) {
        if (stats != nullptr) ++stats->dropped_existential_aggs;
        if (q->op() == QueryOp::kValueDn || q->op() == QueryOp::kDnValue) {
          return Query::EmbeddedRef(q->op(), q->q1(), q->q2(),
                                    q->ref_attr(), std::nullopt);
        }
        return Query::Hierarchy(q->op(), q->q1(), q->q2(), std::nullopt);
      }
      return q;
    }
    default:
      return q;
  }
}

}  // namespace

bool IsMatchEverything(const Query& query) {
  return query.op() == QueryOp::kAtomic && query.base().IsNull() &&
         query.scope() == Scope::kSub &&
         query.filter().kind() == AtomicFilter::Kind::kTrue;
}

QueryPtr RewriteQuery(const QueryPtr& query, RewriteStats* stats) {
  QueryPtr cur = query;
  // Each pass is bottom-up; iterate to a (cheap) fixpoint.
  for (int i = 0; i < 8; ++i) {
    RewriteStats pass;
    QueryPtr next = RewriteNode(cur, &pass);
    if (stats != nullptr) {
      stats->merged_boolean_scans += pass.merged_boolean_scans;
      stats->contracted_constrained += pass.contracted_constrained;
      stats->dropped_existential_aggs += pass.dropped_existential_aggs;
      stats->collapsed_idempotent += pass.collapsed_idempotent;
    }
    if (pass.Total() == 0) return next;
    cur = next;
  }
  return cur;
}

QueryPtr ExpandParentsChildren(const QueryPtr& query) {
  QueryPtr q1 = query->q1() ? ExpandParentsChildren(query->q1()) : nullptr;
  QueryPtr q2 = query->q2() ? ExpandParentsChildren(query->q2()) : nullptr;
  QueryPtr q3 = query->q3() ? ExpandParentsChildren(query->q3()) : nullptr;
  auto everything = [] {
    return Query::Atomic(Dn(), Scope::kSub, AtomicFilter::True());
  };
  switch (query->op()) {
    case QueryOp::kParents:
      return Query::HierarchyConstrained(QueryOp::kCoAncestors, q1, q2,
                                         everything(), query->agg());
    case QueryOp::kChildren:
      return Query::HierarchyConstrained(QueryOp::kCoDescendants, q1, q2,
                                         everything(), query->agg());
    case QueryOp::kAtomic:
    case QueryOp::kLdap:
      return query;
    case QueryOp::kAnd:
      return Query::And(q1, q2);
    case QueryOp::kOr:
      return Query::Or(q1, q2);
    case QueryOp::kDiff:
      return Query::Diff(q1, q2);
    case QueryOp::kSimpleAgg:
      return Query::SimpleAgg(q1, *query->agg());
    case QueryOp::kAncestors:
    case QueryOp::kDescendants:
      return Query::Hierarchy(query->op(), q1, q2, query->agg());
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants:
      return Query::HierarchyConstrained(query->op(), q1, q2, q3,
                                         query->agg());
    case QueryOp::kValueDn:
    case QueryOp::kDnValue:
      return Query::EmbeddedRef(query->op(), q1, q2, query->ref_attr(),
                                query->agg());
  }
  return query;
}

}  // namespace ndq
