#include "query/aggregate.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace ndq {

const char* AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
    case AggFn::kSum:
      return "sum";
    case AggFn::kCount:
      return "count";
    case AggFn::kAvg:
      return "average";
  }
  return "?";
}

Result<AggFn> AggFnFromString(const std::string& name) {
  if (name == "min") return AggFn::kMin;
  if (name == "max") return AggFn::kMax;
  if (name == "sum") return AggFn::kSum;
  if (name == "count") return AggFn::kCount;
  if (name == "average" || name == "avg") return AggFn::kAvg;
  return Status::InvalidArgument("unknown aggregate function: " + name);
}

std::string EntryAgg::ToString() const {
  switch (target) {
    case AggTarget::kSelfAttr:
      return std::string(AggFnToString(fn)) + "($1." + attr + ")";
    case AggTarget::kWitnessAttr:
      return std::string(AggFnToString(fn)) + "($2." + attr + ")";
    case AggTarget::kWitnessCount:
      return "count($2)";
  }
  return "?";
}

AggAttr AggAttr::Const(int64_t c) {
  AggAttr a;
  a.kind = Kind::kConst;
  a.constant = c;
  return a;
}

AggAttr AggAttr::Entry(EntryAgg ea) {
  AggAttr a;
  a.kind = Kind::kEntry;
  a.entry = std::move(ea);
  return a;
}

AggAttr AggAttr::EntrySet(AggFn outer, EntryAgg inner) {
  AggAttr a;
  a.kind = Kind::kEntrySet;
  a.set_form = SetForm::kAggOfEntry;
  a.outer_fn = outer;
  a.entry = std::move(inner);
  return a;
}

AggAttr AggAttr::CountSet(bool dollar_dollar) {
  AggAttr a;
  a.kind = Kind::kEntrySet;
  a.set_form = SetForm::kCountSet;
  a.spelled_dollar_dollar = dollar_dollar;
  return a;
}

std::string AggAttr::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return std::to_string(constant);
    case Kind::kEntry:
      return entry.ToString();
    case Kind::kEntrySet:
      if (set_form == SetForm::kCountSet) {
        return spelled_dollar_dollar ? "count($$)" : "count($1)";
      }
      return std::string(AggFnToString(outer_fn)) + "(" + entry.ToString() +
             ")";
  }
  return "?";
}

std::string AggSelFilter::ToString() const {
  return lhs.ToString() + CompareOpToString(op) + rhs.ToString();
}

bool CompareAgg(std::optional<int64_t> lhs, CompareOp op,
                std::optional<int64_t> rhs) {
  if (!lhs.has_value() || !rhs.has_value()) return false;
  int64_t a = *lhs;
  int64_t b = *rhs;
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

namespace {

// Recursive-descent parser over AggSelFilter text.
class AggParser {
 public:
  explicit AggParser(std::string_view text) : text_(text) {}

  Result<AggSelFilter> Parse() {
    AggSelFilter f;
    NDQ_ASSIGN_OR_RETURN(f.lhs, ParseAttr());
    NDQ_ASSIGN_OR_RETURN(f.op, ParseOp());
    NDQ_ASSIGN_OR_RETURN(f.rhs, ParseAttr());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          "trailing characters in aggregate filter: " +
          std::string(text_.substr(pos_)));
    }
    return f;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Result<CompareOp> ParseOp() {
    SkipSpace();
    char c = Peek();
    if (c == '=') {
      ++pos_;
      return CompareOp::kEq;
    }
    if (c == '!' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
      pos_ += 2;
      return CompareOp::kNe;
    }
    if (c == '<' || c == '>') {
      ++pos_;
      bool eq = Peek() == '=';
      if (eq) ++pos_;
      if (c == '<') return eq ? CompareOp::kLe : CompareOp::kLt;
      return eq ? CompareOp::kGe : CompareOp::kGt;
    }
    return Status::InvalidArgument("expected comparison operator in "
                                   "aggregate filter");
  }

  // Parses IntConstant | Fn(...) | count($1) | count($2) | count($$).
  Result<AggAttr> ParseAttr() {
    SkipSpace();
    char c = Peek();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseConst();
    }
    NDQ_ASSIGN_OR_RETURN(std::string word, ParseWord());
    NDQ_ASSIGN_OR_RETURN(AggFn fn, AggFnFromString(word));
    if (Peek() != '(') {
      return Status::InvalidArgument("expected '(' after aggregate " + word);
    }
    ++pos_;
    SkipSpace();
    // What is inside the parens?
    if (Peek() == '$') {
      NDQ_ASSIGN_OR_RETURN(std::string dollar, ParseDollar());
      if (dollar == "$$" || (dollar == "$1" && Peek() == ')')) {
        if (Peek() != ')') return Status::InvalidArgument("expected ')'");
        ++pos_;
        if (fn != AggFn::kCount) {
          return Status::InvalidArgument(
              "only count may be applied to " + dollar);
        }
        return AggAttr::CountSet(dollar == "$$");
      }
      if (dollar == "$1") {
        if (Peek() != '.') {
          return Status::InvalidArgument("malformed $1 reference");
        }
        ++pos_;
        NDQ_ASSIGN_OR_RETURN(std::string attr, ParseWord());
        if (Peek() != ')') return Status::InvalidArgument("expected ')'");
        ++pos_;
        EntryAgg ea;
        ea.fn = fn;
        ea.target = AggTarget::kSelfAttr;
        ea.attr = std::move(attr);
        return AggAttr::Entry(std::move(ea));
      }
      if (dollar == "$2") {
        SkipSpace();
        if (Peek() == ')') {
          ++pos_;
          if (fn != AggFn::kCount) {
            return Status::InvalidArgument("only count($2) is allowed; use "
                                           "agg($2.attr) for values");
          }
          EntryAgg ea;
          ea.fn = AggFn::kCount;
          ea.target = AggTarget::kWitnessCount;
          return AggAttr::Entry(std::move(ea));
        }
        if (Peek() == '.') {
          ++pos_;
          NDQ_ASSIGN_OR_RETURN(std::string attr, ParseWord());
          if (Peek() != ')') return Status::InvalidArgument("expected ')'");
          ++pos_;
          EntryAgg ea;
          ea.fn = fn;
          ea.target = AggTarget::kWitnessAttr;
          ea.attr = std::move(attr);
          return AggAttr::Entry(std::move(ea));
        }
        return Status::InvalidArgument("malformed $2 reference");
      }
      return Status::InvalidArgument("unknown placeholder " + dollar);
    }
    // Either a nested aggregate (entry-set) or a ModAttrName.
    size_t save = pos_;
    Result<std::string> inner_word = ParseWord();
    if (inner_word.ok() && Peek() == '(') {
      // Nested: fn( innerFn( ... ) ) — an entry-set aggregate.
      NDQ_ASSIGN_OR_RETURN(AggFn inner_fn, AggFnFromString(*inner_word));
      ++pos_;  // '('
      SkipSpace();
      EntryAgg inner;
      inner.fn = inner_fn;
      if (Peek() == '$') {
        NDQ_ASSIGN_OR_RETURN(std::string dollar, ParseDollar());
        if (dollar == "$2" && Peek() == ')') {
          if (inner_fn != AggFn::kCount) {
            return Status::InvalidArgument("expected count($2)");
          }
          inner.target = AggTarget::kWitnessCount;
        } else if (dollar == "$2" && Peek() == '.') {
          ++pos_;
          NDQ_ASSIGN_OR_RETURN(inner.attr, ParseWord());
          inner.target = AggTarget::kWitnessAttr;
        } else if (dollar == "$1" && Peek() == '.') {
          ++pos_;
          NDQ_ASSIGN_OR_RETURN(inner.attr, ParseWord());
          inner.target = AggTarget::kSelfAttr;
        } else {
          return Status::InvalidArgument("malformed inner aggregate");
        }
      } else {
        NDQ_ASSIGN_OR_RETURN(inner.attr, ParseWord());
        inner.target = AggTarget::kSelfAttr;
      }
      if (Peek() != ')') return Status::InvalidArgument("expected ')'");
      ++pos_;
      SkipSpace();
      if (Peek() != ')') return Status::InvalidArgument("expected ')'");
      ++pos_;
      return AggAttr::EntrySet(fn, std::move(inner));
    }
    // Plain ModAttrName (possibly $1.attr handled above).
    pos_ = save;
    NDQ_ASSIGN_OR_RETURN(std::string attr, ParseWord());
    if (Peek() != ')') return Status::InvalidArgument("expected ')'");
    ++pos_;
    EntryAgg ea;
    ea.fn = fn;
    ea.target = AggTarget::kSelfAttr;
    ea.attr = std::move(attr);
    return AggAttr::Entry(std::move(ea));
  }

  Result<AggAttr> ParseConst() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return Status::InvalidArgument("expected integer constant");
    }
    std::string literal(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(literal.c_str(), &end, 10);
    if (errno != 0 || end != literal.c_str() + literal.size()) {
      return Status::InvalidArgument("integer constant out of range: " +
                                     literal);
    }
    return AggAttr::Const(v);
  }

  Result<std::string> ParseWord() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) return Status::InvalidArgument("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::string> ParseDollar() {
    size_t start = pos_;
    ++pos_;  // '$'
    if (pos_ < text_.size() &&
        (text_[pos_] == '1' || text_[pos_] == '2' || text_[pos_] == '$')) {
      ++pos_;
      return std::string(text_.substr(start, pos_ - start));
    }
    return Status::InvalidArgument("malformed $ placeholder");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<AggSelFilter> ParseAggSelFilter(std::string_view text) {
  return AggParser(text).Parse();
}

}  // namespace ndq
