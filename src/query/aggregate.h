// Aggregate terms and accumulators for L2 aggregate selection (Sec. 6).
//
// The grammar (Fig. 9) distinguishes:
//   entry aggregates      agg(a), agg($1.a), agg($2.a), count($2)
//     — one value per (entry, witness-set) pair;
//   entry-set aggregates  agg1(ea), count($1), count($$)
//     — one value per whole operand set.
// All aggregate functions here are distributive or algebraic in the sense
// of [27] (min, max, sum, count; average = sum/count), so accumulators can
// be merged incrementally — which is exactly what lets the stack-based
// algorithms of Sec. 6.4 maintain them in linear I/O.
//
// Semantics of edge cases (applied consistently by the reference evaluator
// and the external-memory engine):
//   * min/max/sum/average aggregate only int-typed values; count counts
//     values of any type.
//   * an aggregate over an empty (int-)multiset is undefined, except count,
//     which is 0; a comparison involving an undefined aggregate is false.
//   * average uses integer division (sum/count of int values), keeping the
//     aggregate domain integral as the grammar's IntOp comparisons expect.
//   * sums are accumulated in 128-bit arithmetic, so the result is
//     independent of accumulation/merge order (the stack algorithms fold
//     contributions in a different order than a linear scan). A sum whose
//     true value does not fit in int64 is undefined (null), never a
//     silently wrapped value; average stays defined as long as the 128-bit
//     quotient fits (it always does: |avg| <= max |value|).

#ifndef NDQ_QUERY_AGGREGATE_H_
#define NDQ_QUERY_AGGREGATE_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>

#include "core/value.h"
#include "filter/atomic_filter.h"  // for CompareOp

namespace ndq {

/// The aggregate functions of Fig. 9.
enum class AggFn { kMin, kMax, kSum, kCount, kAvg };

const char* AggFnToString(AggFn fn);
Result<AggFn> AggFnFromString(const std::string& name);

/// \brief Incremental accumulator for one aggregate function.
struct AggAccumulator {
  /// 128-bit signed accumulator type for sums: wide enough that adding
  /// int64 values cannot reach its bounds for any feasible multiset size
  /// (overflow would need ~2^64 extreme values), so sum results are
  /// order-independent. `overflow` is a defensive sticky flag should that
  /// bound ever be hit.
  using Sum128 = __int128;

  explicit AggAccumulator(AggFn fn = AggFn::kCount) : fn(fn) {}

  AggFn fn;
  uint64_t count = 0;       // values seen (count fn counts everything)
  uint64_t int_count = 0;   // int values seen (for avg)
  Sum128 sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  bool any_int = false;
  bool overflow = false;  // 128-bit accumulator itself overflowed

  /// Folds in one attribute value.
  void AddValue(const Value& v) {
    ++count;
    if (v.is_int()) AddInt(v.AsInt());
  }

  void AddInt(int64_t x) {
    ++int_count;
    if (__builtin_add_overflow(sum, static_cast<Sum128>(x), &sum)) {
      overflow = true;
    }
    if (!any_int || x < min) min = x;
    if (!any_int || x > max) max = x;
    any_int = true;
  }

  /// Counts an occurrence without a value (count($2)-style counting).
  void AddUnit() { ++count; }

  /// Merges another accumulator of the same fn (distributivity).
  void Merge(const AggAccumulator& other) {
    count += other.count;
    int_count += other.int_count;
    if (__builtin_add_overflow(sum, other.sum, &sum)) overflow = true;
    overflow = overflow || other.overflow;
    if (other.any_int) {
      if (!any_int || other.min < min) min = other.min;
      if (!any_int || other.max > max) max = other.max;
      any_int = true;
    }
  }

  /// The aggregate value, or nullopt if undefined. A sum outside the
  /// int64 domain is undefined (comparisons against it are false) rather
  /// than a wrapped value; the average is computed in 128-bit arithmetic
  /// and is always representable when any int value was seen.
  std::optional<int64_t> Finish() const {
    constexpr Sum128 kInt64Min = std::numeric_limits<int64_t>::min();
    constexpr Sum128 kInt64Max = std::numeric_limits<int64_t>::max();
    switch (fn) {
      case AggFn::kCount:
        return static_cast<int64_t>(count);
      case AggFn::kMin:
        return any_int ? std::optional<int64_t>(min) : std::nullopt;
      case AggFn::kMax:
        return any_int ? std::optional<int64_t>(max) : std::nullopt;
      case AggFn::kSum:
        if (!any_int || overflow || sum < kInt64Min || sum > kInt64Max) {
          return std::nullopt;
        }
        return static_cast<int64_t>(sum);
      case AggFn::kAvg: {
        if (!any_int || overflow) return std::nullopt;
        Sum128 avg = sum / static_cast<Sum128>(int_count);
        if (avg < kInt64Min || avg > kInt64Max) return std::nullopt;
        return static_cast<int64_t>(avg);
      }
    }
    return std::nullopt;
  }
};

/// What an entry aggregate ranges over.
enum class AggTarget {
  kSelfAttr,      ///< agg(a) / agg($1.a): values of a in the entry itself
  kWitnessAttr,   ///< agg($2.a): values of a across the witness set
  kWitnessCount,  ///< count($2): size of the witness set
};

/// \brief An entry aggregate (one value per entry + witness set).
struct EntryAgg {
  AggFn fn = AggFn::kCount;
  AggTarget target = AggTarget::kSelfAttr;
  std::string attr;  // empty for kWitnessCount

  std::string ToString() const;
  bool operator==(const EntryAgg&) const = default;
};

/// \brief One side of an aggregate selection comparison (AggAttribute in
/// Fig. 9): a constant, an entry aggregate, or an entry-set aggregate.
struct AggAttr {
  enum class Kind {
    kConst,     ///< integer literal
    kEntry,     ///< entry aggregate
    kEntrySet,  ///< agg1(ea) over all of M(Q1), or count($1)/count($$)
  };
  enum class SetForm {
    kAggOfEntry,  ///< agg1(ea)
    kCountSet,    ///< count($1) (structural) / count($$) (simple)
  };

  Kind kind = Kind::kConst;
  int64_t constant = 0;
  EntryAgg entry;           // kEntry, and the inner ea of kEntrySet
  AggFn outer_fn = AggFn::kCount;  // kEntrySet with kAggOfEntry
  SetForm set_form = SetForm::kAggOfEntry;
  bool spelled_dollar_dollar = false;  // count($$) vs count($1) rendering

  static AggAttr Const(int64_t c);
  static AggAttr Entry(EntryAgg ea);
  static AggAttr EntrySet(AggFn outer, EntryAgg inner);
  static AggAttr CountSet(bool dollar_dollar);

  std::string ToString() const;
  bool operator==(const AggAttr&) const = default;
};

/// \brief The aggregate selection filter: AggAttr IntOp AggAttr.
struct AggSelFilter {
  AggAttr lhs;
  CompareOp op = CompareOp::kEq;
  AggAttr rhs;

  /// True iff either side requires an entry-set aggregate (which forces a
  /// two-phase evaluation, as in Fig. 6).
  bool NeedsSetAggregates() const {
    return lhs.kind == AggAttr::Kind::kEntrySet ||
           rhs.kind == AggAttr::Kind::kEntrySet;
  }

  std::string ToString() const;
  bool operator==(const AggSelFilter&) const = default;
};

/// Applies an IntOp comparison; false when either side is undefined.
bool CompareAgg(std::optional<int64_t> lhs, CompareOp op,
                std::optional<int64_t> rhs);

/// Parses an aggregate selection filter, e.g.
/// "count(SLAPVPRef) > 1", "count($2)=max(count($2))",
/// "min(SLARulePriority)=min(min(SLARulePriority))".
Result<AggSelFilter> ParseAggSelFilter(std::string_view text);

}  // namespace ndq

#endif  // NDQ_QUERY_AGGREGATE_H_
