// ndqfuzz: seeded differential + metamorphic fuzzing of the query engine.
//
// Each case draws a random directory instance (gen/random_forest, with
// adversarial RDN values and near-overflow integers enabled) and a random
// L0-L3 query (gen/random_query), then evaluates the query through every
// engine in the repo and checks that all answers are identical — entry for
// entry, in reverse-DN order:
//
//   reference   the in-memory denotational semantics (query/reference.h)
//   naive       whole-tree quadratic baselines (fuzz/naive_eval.h)
//   exec        the external-memory Evaluator (stack/merge algorithms)
//   par1/2/4    ParallelEvaluator at 1, 2 and 4 threads, sharing one
//               OperandCache (exercises typed cache keys under reuse)
//   batch0..3   ndq::Engine Session::RunBatch over [Q, Q, (& Q Q),
//               (| Q Q)]: cross-query operand sharing must leave every
//               outcome byte-identical to one-at-a-time evaluation
//   rewrite     Evaluator on RewriteQuery(Q) (optimizer equivalences)
//   expand      Evaluator on ExpandParentsChildren(Q) (Thm 8.2(d); exact
//               because RandomForest instances are prefix-closed)
//   roundtrip   Evaluator on ParseQuery(Q.ToString()) plus a ToString
//               fixed-point check
//   dist        DistributedDirectory over per-root naming contexts, with
//               one delegated subtree when the forest allows it
//   dist-fault  the same fleet with a seeded one-shot transient fault
//               injected on every server disk: retries must make the
//               result indistinguishable from the fault-free run
//
// plus metamorphic identities evaluated with the exec engine:
//
//   idempotent-and/or   (& Q Q) == Q, (| Q Q) == Q
//   self-diff           (- Q Q) == empty
//   scope-monotone      leaf results at scope base/one are contained in
//                       the same leaf at scope sub
//   dn-roundtrip        every instance dn survives ToString -> Parse
//
// On a divergence the driver delta-debugs the case down to a minimal
// repro: greedily removing instance subtrees and hoisting query subtrees
// while the same check keeps failing, then emits a replayable .ndqrepro
// file (fuzz/repro.h). Everything is seeded: the same (seed, iterations)
// pair generates the same cases, checks and shrinks.

#ifndef NDQ_FUZZ_FUZZ_H_
#define NDQ_FUZZ_FUZZ_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "fuzz/repro.h"
#include "query/ast.h"

namespace ndq {
namespace fuzz {

/// Per-case generation knobs.
struct FuzzCaseOptions {
  size_t num_entries = 60;
  Language max_language = Language::kL3;
  /// Passed through to RandomForestOptions: adversarial RDN values and
  /// near-INT64_MAX "x" values (see gen/random_forest.h).
  double weird_rdn_probability = 0.15;
  double extreme_int_probability = 0.05;
};

struct FuzzOptions {
  uint64_t seed = 1;
  uint64_t iterations = 50;
  FuzzCaseOptions gen;
  /// Heavier oracles; disable for quick smoke runs.
  bool with_distributed = true;
  bool with_faults = true;
  /// Delta-debug divergences down to minimal repros.
  bool shrink = true;
  /// Directory to write .ndqrepro files into ("" = keep in-memory only).
  std::string out_dir;
  /// Stop starting new cases after this many milliseconds (0 = no limit).
  /// Cases themselves stay deterministic; only the case COUNT becomes
  /// time-dependent, so leave this 0 when reproducing by seed.
  uint64_t time_budget_ms = 0;
};

/// One failed invariant for one case.
struct CheckFailure {
  std::string check;
  std::string detail;
};

/// A (shrunk) counterexample.
struct Divergence {
  uint64_t case_seed = 0;
  std::string check;
  std::string detail;
  std::string original_query_text;
  size_t original_entries = 0;
  Repro repro;              ///< shrunk instance + query, replayable
  std::string saved_path;   ///< where the .ndqrepro went ("" = not saved)
};

struct FuzzReport {
  uint64_t cases = 0;
  uint64_t checks = 0;  ///< total invariant evaluations across all cases
  std::vector<Divergence> divergences;
};

/// Mixes (seed, index) into a per-case seed (splitmix64 finalizer).
uint64_t CaseSeed(uint64_t seed, uint64_t index);

/// Deterministic case generation, exposed for tests and replay.
DirectoryInstance GenInstance(uint64_t case_seed, const FuzzCaseOptions& gen);
QueryPtr GenQuery(uint64_t case_seed, const DirectoryInstance& instance,
                  const FuzzCaseOptions& gen);

/// Runs every oracle and metamorphic check for one (instance, query)
/// pair; returns all failures (empty = full agreement). `checks_run`, when
/// non-null, is incremented once per invariant evaluated.
std::vector<CheckFailure> CheckCase(const DirectoryInstance& instance,
                                    const QueryPtr& query,
                                    const FuzzOptions& options,
                                    uint64_t case_seed,
                                    uint64_t* checks_run = nullptr);

/// True when a (candidate instance, candidate query) still reproduces the
/// failure being shrunk. Injectable so the shrinker is testable without a
/// real engine bug.
using FailurePredicate =
    std::function<bool(const DirectoryInstance&, const QueryPtr&)>;

/// Greedily removes whole subtrees of `instance` (keeping the namespace
/// prefix-closed) while `fails` holds; returns the fixpoint.
DirectoryInstance ShrinkInstance(const DirectoryInstance& instance,
                                 const QueryPtr& query,
                                 const FailurePredicate& fails);

/// Greedily applies query reductions (hoist an operand subtree over its
/// parent, drop an optional aggregate filter) while `fails` holds.
QueryPtr ShrinkQuery(const DirectoryInstance& instance, const QueryPtr& query,
                     const FailurePredicate& fails);

/// The fuzzing loop: `iterations` cases from `seed`, shrinking and saving
/// each divergence per `options`.
FuzzReport RunFuzz(const FuzzOptions& options);

/// Replays a repro through the full check suite. Corpus repros encode
/// fixed bugs, so the expected result is an empty failure list.
Result<std::vector<CheckFailure>> ReplayRepro(const Repro& repro,
                                              const FuzzOptions& options);

}  // namespace fuzz
}  // namespace ndq

#endif  // NDQ_FUZZ_FUZZ_H_
