// Replayable fuzzing repro files (.ndqrepro).
//
// A repro is a self-contained (instance, query) pair plus provenance:
// which invariant failed and which case seed produced it. The format is
// line-oriented text so shrunk counterexamples can be read, diffed and
// checked into the regression corpus (tests/fuzz/corpus/); strings and DN
// texts are quoted with C-style escapes so adversarial values (DN
// metacharacters, edge spaces, quotes) survive the round trip exactly.
//
//   ndqrepro 1
//   check <invariant-name>
//   seed <u64>
//   query <query text, one line, as Query::ToString renders it>
//   entry "<dn text>"
//   attr <name> int <i64>
//   attr <name> str "<escaped>"
//   attr <name> dn "<dn text>"
//   end
//   ... more entries ...
//
// Replaying a repro (fuzz.h's ReplayRepro) rebuilds the instance and runs
// the full check suite: corpus files encode FIXED bugs, so replay must
// come back clean — a reappearing failure is a regression.

#ifndef NDQ_FUZZ_REPRO_H_
#define NDQ_FUZZ_REPRO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/entry.h"
#include "core/instance.h"

namespace ndq {
namespace fuzz {

/// Quotes `s` for a repro line: wraps in '"' and escapes '\', '"' and
/// control bytes (\n, \r, \t, \xHH).
std::string QuoteString(std::string_view s);

/// Parses one quoted string starting at text[*pos] (which must be '"');
/// advances *pos past the closing quote.
Result<std::string> UnquoteString(std::string_view text, size_t* pos);

/// One replayable counterexample.
struct Repro {
  std::string check;       ///< name of the invariant that failed
  uint64_t seed = 0;       ///< fuzz case seed (provenance)
  std::string query_text;  ///< Query::ToString form
  std::vector<Entry> entries;

  std::string ToText() const;
  static Result<Repro> FromText(std::string_view text);

  Status SaveTo(const std::string& path) const;
  static Result<Repro> LoadFrom(const std::string& path);

  /// Rebuilds the (schema-less) instance from `entries`.
  Result<DirectoryInstance> BuildInstance() const;
};

}  // namespace fuzz
}  // namespace ndq

#endif  // NDQ_FUZZ_REPRO_H_
