#include "fuzz/naive_eval.h"

#include <vector>

#include "exec/atomic.h"
#include "exec/evaluator.h"
#include "exec/naive.h"

namespace ndq {
namespace fuzz {

namespace {

// In-memory boolean set operation on two sorted entry vectors. Keys are
// unique within each list (entries of an instance), so a two-pointer walk
// suffices and the output stays in key order.
std::vector<const Entry*> BooleanMerge(QueryOp op,
                                       const std::vector<Entry>& a,
                                       const std::vector<Entry>& b) {
  std::vector<const Entry*> out;
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() ||
        (i < a.size() && a[i].HierKey() < b[j].HierKey())) {
      if (op != QueryOp::kAnd) out.push_back(&a[i]);
      ++i;
    } else if (i >= a.size() || b[j].HierKey() < a[i].HierKey()) {
      if (op == QueryOp::kOr) out.push_back(&b[j]);
      ++j;
    } else {
      if (op != QueryOp::kDiff) out.push_back(&a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace

Result<EntryList> NaiveEvaluate(Disk* disk, const EntrySource& store,
                                const Query& query) {
  switch (query.op()) {
    case QueryOp::kAtomic:
      return EvalAtomic(disk, store, query.base(), query.scope(),
                        query.filter());
    case QueryOp::kLdap:
      return EvalLdap(disk, store, query.base(), query.scope(),
                      *query.ldap_filter());
    case QueryOp::kAnd:
    case QueryOp::kOr:
    case QueryOp::kDiff: {
      NDQ_ASSIGN_OR_RETURN(EntryList r1,
                           NaiveEvaluate(disk, store, *query.q1()));
      ScopedRun l1(disk, std::move(r1));
      NDQ_ASSIGN_OR_RETURN(EntryList r2,
                           NaiveEvaluate(disk, store, *query.q2()));
      ScopedRun l2(disk, std::move(r2));
      NDQ_ASSIGN_OR_RETURN(std::vector<Entry> a,
                           ReadEntryList(disk, l1.get()));
      NDQ_ASSIGN_OR_RETURN(std::vector<Entry> b,
                           ReadEntryList(disk, l2.get()));
      std::vector<const Entry*> merged = BooleanMerge(query.op(), a, b);
      Result<EntryList> out = MakeEntryList(disk, merged);
      if (!out.ok()) return out;
      ScopedRun out_guard(disk, out.TakeValue());
      NDQ_RETURN_IF_ERROR(l1.Free());
      NDQ_RETURN_IF_ERROR(l2.Free());
      return out_guard.Release();
    }
    case QueryOp::kSimpleAgg: {
      NDQ_ASSIGN_OR_RETURN(EntryList r1,
                           NaiveEvaluate(disk, store, *query.q1()));
      ScopedRun l1(disk, std::move(r1));
      Result<EntryList> out = EvalSimpleAgg(disk, l1.get(), *query.agg());
      if (!out.ok()) return out;
      ScopedRun out_guard(disk, out.TakeValue());
      NDQ_RETURN_IF_ERROR(l1.Free());
      return out_guard.Release();
    }
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants:
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants: {
      const bool constrained = query.q3() != nullptr;
      NDQ_ASSIGN_OR_RETURN(EntryList r1,
                           NaiveEvaluate(disk, store, *query.q1()));
      ScopedRun l1(disk, std::move(r1));
      NDQ_ASSIGN_OR_RETURN(EntryList r2,
                           NaiveEvaluate(disk, store, *query.q2()));
      ScopedRun l2(disk, std::move(r2));
      ScopedRun l3;
      if (constrained) {
        NDQ_ASSIGN_OR_RETURN(EntryList r3,
                             NaiveEvaluate(disk, store, *query.q3()));
        l3 = ScopedRun(disk, std::move(r3));
      }
      Result<EntryList> out =
          NaiveHierarchy(disk, query.op(), l1.get(), l2.get(),
                         constrained ? &l3.get() : nullptr, query.agg());
      if (!out.ok()) return out;
      ScopedRun out_guard(disk, out.TakeValue());
      NDQ_RETURN_IF_ERROR(l1.Free());
      NDQ_RETURN_IF_ERROR(l2.Free());
      NDQ_RETURN_IF_ERROR(l3.Free());
      return out_guard.Release();
    }
    case QueryOp::kValueDn:
    case QueryOp::kDnValue: {
      NDQ_ASSIGN_OR_RETURN(EntryList r1,
                           NaiveEvaluate(disk, store, *query.q1()));
      ScopedRun l1(disk, std::move(r1));
      NDQ_ASSIGN_OR_RETURN(EntryList r2,
                           NaiveEvaluate(disk, store, *query.q2()));
      ScopedRun l2(disk, std::move(r2));
      Result<EntryList> out =
          NaiveEmbeddedRef(disk, query.op(), l1.get(), l2.get(),
                           query.ref_attr(), query.agg());
      if (!out.ok()) return out;
      ScopedRun out_guard(disk, out.TakeValue());
      NDQ_RETURN_IF_ERROR(l1.Free());
      NDQ_RETURN_IF_ERROR(l2.Free());
      return out_guard.Release();
    }
  }
  return Status::Internal("unreachable query op in NaiveEvaluate");
}

}  // namespace fuzz
}  // namespace ndq
