#include "fuzz/fuzz.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "core/dn.h"
#include "dist/distributed.h"
#include "engine/engine.h"
#include "exec/evaluator.h"
#include "exec/operand_cache.h"
#include "exec/parallel_evaluator.h"
#include "fuzz/naive_eval.h"
#include "gen/random_forest.h"
#include "gen/random_query.h"
#include "query/optimize.h"
#include "query/parser.h"
#include "query/reference.h"
#include "query/rewrite.h"
#include "storage/fault_injector.h"
#include "storage/serde.h"
#include "store/directory_store.h"
#include "store/entry_store.h"

namespace ndq {
namespace fuzz {

namespace {

constexpr size_t kFuzzPageSize = 512;  // small pages -> multi-page lists
constexpr size_t kCachePages = 64;

std::string DiffEntries(const std::vector<Entry>& want,
                        const std::vector<Entry>& got) {
  std::ostringstream out;
  out << "want " << want.size() << " entries, got " << got.size();
  size_t n = std::min(want.size(), got.size());
  for (size_t i = 0; i < n; ++i) {
    if (want[i] == got[i]) continue;
    out << "; first mismatch at index " << i << ": want dn '"
        << want[i].dn().ToString() << "', got dn '" << got[i].dn().ToString()
        << "'";
    return out.str();
  }
  if (want.size() > n) {
    out << "; missing from index " << n << ": dn '"
        << want[n].dn().ToString() << "'";
  } else if (got.size() > n) {
    out << "; extra at index " << n << ": dn '" << got[n].dn().ToString()
        << "'";
  }
  return out.str();
}

// Naming contexts for the distributed oracles: one server per forest
// root, plus (when the forest has any depth-2 entry) one delegated
// subtree so referral chasing and coordinator merging get exercised.
std::vector<std::pair<std::string, std::string>> MakeContexts(
    const DirectoryInstance& instance) {
  std::vector<std::pair<std::string, std::string>> contexts;
  const Entry* delegate = nullptr;
  size_t i = 0;
  for (const auto& [key, entry] : instance) {
    (void)key;
    if (entry.dn().depth() == 1) {
      contexts.emplace_back(entry.dn().ToString(), "s" + std::to_string(i++));
    } else if (delegate == nullptr && entry.dn().depth() == 2) {
      delegate = &entry;
    }
  }
  if (delegate != nullptr) {
    contexts.emplace_back(delegate->dn().ToString(), "d0");
  }
  return contexts;
}

bool KeysContained(const std::vector<Entry>& sub,
                   const std::vector<Entry>& super, std::string* missing) {
  size_t j = 0;
  for (const Entry& e : sub) {
    while (j < super.size() && super[j].HierKey() < e.HierKey()) ++j;
    if (j >= super.size() || super[j].HierKey() != e.HierKey()) {
      *missing = e.dn().ToString();
      return false;
    }
  }
  return true;
}

std::vector<Entry> InstanceEntries(const DirectoryInstance& instance) {
  std::vector<Entry> entries;
  entries.reserve(instance.size());
  for (const auto& [key, entry] : instance) {
    (void)key;
    entries.push_back(entry);
  }
  return entries;
}

DirectoryInstance RebuildInstance(const std::vector<Entry>& entries) {
  DirectoryInstance inst(Schema(), /*validate=*/false);
  for (const Entry& e : entries) {
    inst.Add(e).ok();  // keys are unique by construction
  }
  return inst;
}

// Rebuilds an operator node with replaced operands / aggregate filter.
QueryPtr WithParts(const Query& node, QueryPtr q1, QueryPtr q2, QueryPtr q3,
                   std::optional<AggSelFilter> agg) {
  switch (node.op()) {
    case QueryOp::kAnd:
      return Query::And(std::move(q1), std::move(q2));
    case QueryOp::kOr:
      return Query::Or(std::move(q1), std::move(q2));
    case QueryOp::kDiff:
      return Query::Diff(std::move(q1), std::move(q2));
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants:
      return Query::Hierarchy(node.op(), std::move(q1), std::move(q2),
                              std::move(agg));
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants:
      return Query::HierarchyConstrained(node.op(), std::move(q1),
                                         std::move(q2), std::move(q3),
                                         std::move(agg));
    case QueryOp::kSimpleAgg:
      return Query::SimpleAgg(std::move(q1), *agg);
    case QueryOp::kValueDn:
    case QueryOp::kDnValue:
      return Query::EmbeddedRef(node.op(), std::move(q1), std::move(q2),
                                node.ref_attr(), std::move(agg));
    default:
      return nullptr;  // leaves have no parts to replace
  }
}

// All one-step reductions of `node`: hoist an operand over its parent,
// drop an optional aggregate filter, or reduce inside one operand.
void Reductions(const QueryPtr& node, std::vector<QueryPtr>* out) {
  if (node->q1() == nullptr && node->q2() == nullptr) return;  // leaf
  for (const QueryPtr& child : {node->q1(), node->q2(), node->q3()}) {
    if (child != nullptr) out->push_back(child);
  }
  if (node->agg().has_value() && node->op() != QueryOp::kSimpleAgg) {
    out->push_back(WithParts(*node, node->q1(), node->q2(), node->q3(),
                             std::nullopt));
  }
  for (int slot = 0; slot < 3; ++slot) {
    const QueryPtr& child =
        slot == 0 ? node->q1() : (slot == 1 ? node->q2() : node->q3());
    if (child == nullptr) continue;
    std::vector<QueryPtr> sub;
    Reductions(child, &sub);
    for (QueryPtr& s : sub) {
      out->push_back(WithParts(
          *node, slot == 0 ? std::move(s) : node->q1(),
          slot == 1 ? std::move(s) : node->q2(),
          slot == 2 ? std::move(s) : node->q3(), node->agg()));
    }
  }
}

}  // namespace

uint64_t CaseSeed(uint64_t seed, uint64_t index) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

DirectoryInstance GenInstance(uint64_t case_seed,
                              const FuzzCaseOptions& gen) {
  gen::RandomForestOptions opt;
  opt.seed = static_cast<uint32_t>(case_seed ^ (case_seed >> 32));
  opt.num_entries = gen.num_entries;
  opt.weird_rdn_probability = gen.weird_rdn_probability;
  opt.extreme_int_probability = gen.extreme_int_probability;
  return gen::RandomForest(opt);
}

QueryPtr GenQuery(uint64_t case_seed, const DirectoryInstance& instance,
                  const FuzzCaseOptions& gen) {
  std::mt19937 rng(static_cast<uint32_t>((case_seed >> 16) ^ case_seed) + 1);
  gen::RandomQueryOptions opt;
  opt.max_language = gen.max_language;
  return gen::RandomQuery(&rng, instance, opt);
}

std::vector<CheckFailure> CheckCase(const DirectoryInstance& instance,
                                    const QueryPtr& query,
                                    const FuzzOptions& options,
                                    uint64_t case_seed,
                                    uint64_t* checks_run) {
  std::vector<CheckFailure> failures;
  uint64_t local_checks = 0;
  auto fail = [&failures](std::string check, std::string detail) {
    failures.push_back({std::move(check), std::move(detail)});
  };
  auto done = [&]() {
    if (checks_run != nullptr) *checks_run += local_checks;
    return failures;
  };

  // Ground truth: the denotational semantics.
  Result<std::vector<const Entry*>> ref = EvaluateReference(*query, instance);
  ++local_checks;
  if (!ref.ok()) {
    fail("reference", "evaluation failed: " + ref.status().ToString());
    return done();
  }
  std::vector<Entry> want;
  want.reserve(ref->size());
  for (const Entry* e : *ref) want.push_back(*e);

  SimDisk disk(kFuzzPageSize);
  Result<EntryStore> store = EntryStore::BulkLoad(&disk, instance);
  if (!store.ok()) {
    fail("setup", "BulkLoad failed: " + store.status().ToString());
    return done();
  }

  auto check_entries = [&](const std::string& name,
                           Result<std::vector<Entry>> got) {
    ++local_checks;
    if (!got.ok()) {
      fail(name, "evaluation failed: " + got.status().ToString());
      return;
    }
    if (*got != want) fail(name, DiffEntries(want, *got));
  };

  Evaluator evaluator(&disk, &*store);
  check_entries("exec", evaluator.EvaluateToEntries(*query));

  // Whole-tree naive baselines.
  auto naive_entries = [&]() -> Result<std::vector<Entry>> {
    NDQ_ASSIGN_OR_RETURN(EntryList list,
                         NaiveEvaluate(&disk, *store, *query));
    Result<std::vector<Entry>> entries = ReadEntryList(&disk, list);
    Status freed = FreeRun(&disk, &list);
    if (!entries.ok()) return entries;
    NDQ_RETURN_IF_ERROR(freed);
    return entries;
  };
  check_entries("naive", naive_entries());

  // Parallel evaluation at 1/2/4 threads over ONE shared operand cache:
  // later runs serve leaves from lists the earlier runs inserted, so a
  // key collision or a scheduling dependence shows up as a divergence.
  {
    OperandCache cache(&disk, kCachePages);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      ExecOptions opts;
      opts.parallelism = threads;
      ParallelEvaluator par(&disk, &*store, opts, &cache);
      check_entries("par" + std::to_string(threads),
                    par.EvaluateToEntries(*query));
    }
  }

  // Batched submission through the engine must be byte-identical to
  // one-at-a-time evaluation. The batch repeats Q and wraps it in
  // idempotent combinators, so the sharing census finds Q as a common
  // subtree and the shared-operand fast path (precompute once, serve the
  // other occurrences from the operand cache) actually runs — any
  // cache-key collision, stale snapshot or copy-out truncation shows up
  // as a divergence from the reference result.
  {
    EngineOptions engine_opts;
    engine_opts.cache_capacity_pages = kCachePages;
    Engine engine(&disk, &*store, engine_opts);
    Session session = engine.OpenSession();
    std::vector<QueryPtr> batch = {query, query, Query::And(query, query),
                                   Query::Or(query, query)};
    BatchResult batched = session.RunBatch(batch);
    for (size_t i = 0; i < batched.outcomes.size(); ++i) {
      QueryOutcome& out = batched.outcomes[i];
      ++local_checks;
      const std::string name = "batch" + std::to_string(i);
      if (!out.ok()) {
        fail(name, "evaluation failed: " + out.status.ToString());
      } else if (out.entries != want) {
        fail(name, DiffEntries(want, out.entries));
      }
    }
  }

  // Rewrites must preserve M(Q) exactly.
  check_entries("rewrite", evaluator.EvaluateToEntries(*RewriteQuery(query)));
  // The cost-based optimizer's plan must be byte-identical to the
  // original: optimize0 checks the rewritten plan sequentially, optimize1
  // re-checks it under parallel evaluation with an operand cache (the
  // engine's configuration), so an illegal short-circuit, reorder or
  // pushdown shows up as a divergence from the reference result.
  {
    QueryPtr optimized = OptimizeQuery(*store, RewriteQuery(query)).plan;
    check_entries("optimize0", evaluator.EvaluateToEntries(*optimized));
    OperandCache cache(&disk, kCachePages);
    ExecOptions par_opts;
    par_opts.parallelism = 2;
    ParallelEvaluator par(&disk, &*store, par_opts, &cache);
    check_entries("optimize1", par.EvaluateToEntries(*optimized));
  }
  // Thm 8.2(d) expansion: exact on prefix-closed instances, which
  // RandomForest guarantees (children only grow under existing parents).
  check_entries("expand",
                evaluator.EvaluateToEntries(*ExpandParentsChildren(query)));

  // Query text round-trip: reparse, require a ToString fixed point, and
  // re-evaluate the reparsed tree.
  {
    ++local_checks;
    std::string text = query->ToString();
    Result<QueryPtr> reparsed = ParseQuery(text);
    if (!reparsed.ok()) {
      fail("query-roundtrip",
           "reparse failed: " + reparsed.status().ToString() + " for " + text);
    } else if ((*reparsed)->ToString() != text) {
      fail("query-roundtrip", "not a ToString fixed point: '" + text +
                                  "' reparses to '" + (*reparsed)->ToString() +
                                  "'");
    } else {
      check_entries("query-roundtrip",
                    evaluator.EvaluateToEntries(**reparsed));
    }
  }

  // Metamorphic identities.
  check_entries("idempotent-and",
                evaluator.EvaluateToEntries(*Query::And(query, query)));
  check_entries("idempotent-or",
                evaluator.EvaluateToEntries(*Query::Or(query, query)));
  {
    ++local_checks;
    Result<std::vector<Entry>> diff =
        evaluator.EvaluateToEntries(*Query::Diff(query, query));
    if (!diff.ok()) {
      fail("self-diff", "evaluation failed: " + diff.status().ToString());
    } else if (!diff->empty()) {
      fail("self-diff", "(- Q Q) returned " + std::to_string(diff->size()) +
                            " entries; first dn '" +
                            (*diff)[0].dn().ToString() + "'");
    }
  }

  // Scope containment: a leaf's base/one results are subsets of its sub
  // result. (Null bases only admit scope sub, so skip those.)
  {
    size_t checked = 0;
    for (const Query* leaf : query->Leaves()) {
      if (leaf->op() != QueryOp::kAtomic || leaf->base().IsNull()) continue;
      if (checked++ >= 2) break;  // bound the per-case cost
      ++local_checks;
      Result<std::vector<Entry>> at_base = evaluator.EvaluateToEntries(
          *Query::Atomic(leaf->base(), Scope::kBase, leaf->filter()));
      Result<std::vector<Entry>> at_one = evaluator.EvaluateToEntries(
          *Query::Atomic(leaf->base(), Scope::kOne, leaf->filter()));
      Result<std::vector<Entry>> at_sub = evaluator.EvaluateToEntries(
          *Query::Atomic(leaf->base(), Scope::kSub, leaf->filter()));
      if (!at_base.ok() || !at_one.ok() || !at_sub.ok()) {
        fail("scope-monotone", "leaf evaluation failed for base '" +
                                   leaf->base().ToString() + "'");
        continue;
      }
      std::string missing;
      if (!KeysContained(*at_base, *at_sub, &missing) ||
          !KeysContained(*at_one, *at_sub, &missing)) {
        fail("scope-monotone", "dn '" + missing +
                                   "' matched at a narrower scope but not "
                                   "at sub, base '" +
                                   leaf->base().ToString() + "'");
      }
    }
  }

  // Every dn of the instance must survive ToString -> Parse exactly.
  {
    ++local_checks;
    for (const auto& [key, entry] : instance) {
      (void)key;
      std::string text = entry.dn().ToString();
      Result<Dn> back = Dn::Parse(text);
      if (!back.ok()) {
        fail("dn-roundtrip",
             "'" + text + "' fails to reparse: " + back.status().ToString());
        break;
      }
      if (back->ToString() != text ||
          back->HierKey() != entry.dn().HierKey()) {
        fail("dn-roundtrip", "'" + text + "' reparses to '" +
                                 back->ToString() + "'");
        break;
      }
    }
  }

  // Online-mutation oracle: replay a seeded mutation script (replace /
  // add-child / remove-leaf / deliberately-failing ops) against a
  // DirectoryStore with a tiny memtable — so flushes and compactions
  // fire mid-script — and a std::map reference in lockstep. The store's
  // merged scan must match the reference exactly at checkpoints, failed
  // ops must leave the store byte-identical (mutation atomicity), and
  // the fuzz query over the mutated store must match the reference
  // semantics of the mutated instance.
  {
    SimDisk mdisk(kFuzzPageSize);
    DirectoryStoreOptions sopt;
    sopt.memtable_limit = 8;
    sopt.max_segments = 2;
    sopt.validate = false;
    DirectoryStore mstore(&mdisk, Schema(), sopt);
    std::map<std::string, Entry> ref;
    Status seed_status = Status::OK();
    for (const auto& [key, entry] : instance) {
      seed_status = mstore.Put(entry);
      if (!seed_status.ok()) break;
      ref[key] = entry;
    }
    ++local_checks;
    if (!seed_status.ok()) {
      fail("mutate", "seeding failed: " + seed_status.ToString());
    } else {
      auto compare_scan = [&](const std::string& when) -> bool {
        auto it = ref.begin();
        std::string detail;
        Status s = mstore.ScanRange(
            "", "", [&](std::string_view record) -> Status {
              NDQ_ASSIGN_OR_RETURN(Entry e, DeserializeEntry(record));
              if (it == ref.end()) {
                return Status::Corruption("extra entry '" +
                                          e.dn().ToString() + "'");
              }
              if (!(it->second == e)) {
                return Status::Corruption("mismatch at '" +
                                          e.dn().ToString() + "'");
              }
              ++it;
              return Status::OK();
            });
        if (s.ok() && it != ref.end()) {
          s = Status::Corruption("store is missing '" +
                                 it->second.dn().ToString() + "'");
        }
        if (!s.ok()) {
          fail("mutate", when + ": " + s.ToString());
          return false;
        }
        return true;
      };

      std::mt19937 mrng(
          static_cast<uint32_t>(CaseSeed(case_seed, 777) & 0xffffffffu));
      auto nth_key = [&](size_t i) {
        auto it = ref.begin();
        std::advance(it, i);
        return it;
      };
      Status script_status = Status::OK();
      bool scans_ok = true;
      for (int op = 0; op < 40 && scans_ok && !ref.empty(); ++op) {
        size_t pick = mrng() % ref.size();
        auto it = nth_key(pick);
        switch (mrng() % 5) {
          case 0: {  // replace with a mutated copy
            Entry e = it->second;
            e.AddInt("mutationGen", op);
            script_status = mstore.Put(e);
            if (script_status.ok()) it->second = e;
            break;
          }
          case 1: {  // add a fresh child under an existing entry
            Result<Rdn> rdn =
                Rdn::Single("cn", "mut" + std::to_string(op));
            if (!rdn.ok()) {
              script_status = rdn.status();
              break;
            }
            Entry child(it->second.dn().Child(*rdn));
            child.AddInt("mutationGen", op);
            script_status = mstore.Add(child);
            if (script_status.ok()) ref[child.HierKey()] = child;
            break;
          }
          case 2: {  // remove, when the pick is a leaf
            auto next = std::next(it);
            if (next != ref.end() &&
                KeyIsAncestor(it->first, next->first)) {
              break;  // interior entry: removal must be rejected below
            }
            script_status = mstore.Remove(it->second.dn());
            if (script_status.ok()) ref.erase(it);
            break;
          }
          case 3: {  // Add over a bound dn MUST fail and change nothing
            Status s = mstore.Add(it->second);
            if (s.code() != StatusCode::kAlreadyExists) {
              script_status = Status::Corruption(
                  "Add over bound dn returned " + s.ToString());
            }
            scans_ok = compare_scan("after rejected Add");
            break;
          }
          case 4: {  // removing an interior entry MUST fail atomically
            auto next = std::next(it);
            if (next == ref.end() ||
                !KeyIsAncestor(it->first, next->first)) {
              break;  // leaf: nothing to reject
            }
            Status s = mstore.Remove(it->second.dn());
            if (s.ok()) {
              script_status = Status::Corruption(
                  "interior remove of '" + it->second.dn().ToString() +
                  "' succeeded");
            }
            scans_ok = compare_scan("after rejected interior Remove");
            break;
          }
        }
        if (!script_status.ok()) break;
        if (op % 10 == 9) scans_ok = compare_scan("mid-script");
      }
      if (!script_status.ok()) {
        fail("mutate", "script op failed: " + script_status.ToString());
      } else if (scans_ok) {
        Status fs = mstore.Flush();
        Status cs = fs.ok() ? mstore.Compact() : fs;
        if (!cs.ok()) {
          fail("mutate", "flush/compact failed: " + cs.ToString());
        } else if (compare_scan("after compaction")) {
          // The fuzz query over the mutated store vs the reference
          // semantics of the mutated instance.
          std::vector<Entry> mutated;
          mutated.reserve(ref.size());
          for (const auto& [k, e] : ref) {
            (void)k;
            mutated.push_back(e);
          }
          DirectoryInstance mut_inst = RebuildInstance(mutated);
          Result<std::vector<const Entry*>> mref =
              EvaluateReference(*query, mut_inst);
          ++local_checks;
          if (!mref.ok()) {
            fail("mutate",
                 "reference on mutated instance failed: " +
                     mref.status().ToString());
          } else {
            std::vector<Entry> mwant;
            mwant.reserve(mref->size());
            for (const Entry* e : *mref) mwant.push_back(*e);
            Evaluator mev(&mdisk, &mstore);
            Result<std::vector<Entry>> mgot =
                mev.EvaluateToEntries(*query);
            if (!mgot.ok()) {
              fail("mutate", "query on mutated store failed: " +
                                 mgot.status().ToString());
            } else if (*mgot != mwant) {
              fail("mutate", DiffEntries(mwant, *mgot));
            }
          }
        }
      }
    }
  }

  // Distributed oracles, against a REPLICATED topology (two replicas per
  // shard) so the replica routing and failover paths get fuzzed too.
  std::vector<std::pair<std::string, std::string>> contexts =
      MakeContexts(instance);
  if (options.with_distributed && !contexts.empty()) {
    TopologyConfig topology =
        TopologyConfig::FromContexts(contexts, kFuzzPageSize);
    topology.replicas = 2;
    Result<DistributedDirectory> fleet =
        DistributedDirectory::Build(instance, topology);
    ++local_checks;
    if (!fleet.ok()) {
      fail("dist", "Build failed: " + fleet.status().ToString());
    } else {
      fleet->set_allow_degraded(false);
      check_entries("dist", fleet->Execute(*query));
    }

    if (options.with_faults) {
      Result<DistributedDirectory> faulty =
          DistributedDirectory::Build(instance, topology);
      ++local_checks;
      if (!faulty.ok()) {
        fail("dist-fault", "Build failed: " + faulty.status().ToString());
      } else {
        faulty->set_allow_degraded(false);
        // One seeded transient fault per replica disk, injected after the
        // stores are built so only evaluation-time I/O can fail. The
        // retry/failover machinery must absorb every one-shot fault: any
        // divergence or error here is a recovery bug.
        std::vector<std::unique_ptr<FaultInjector>> injectors;
        size_t si = 0;
        for (const auto& server : faulty->servers()) {
          auto inj = std::make_unique<FaultInjector>();
          uint64_t nth = 1 + CaseSeed(case_seed, 1000 + si) % 60;
          inj->AddRule(FaultInjector::FailNth(nth));
          server->disk()->set_fault_injector(inj.get());
          injectors.push_back(std::move(inj));
          ++si;
        }
        // Additionally take one whole replica down per shard (seeded
        // choice) — results must still be exact via failover.
        size_t shard_i = 0;
        for (const auto& shard : faulty->shards()) {
          if (shard->num_replicas() > 1) {
            size_t down = CaseSeed(case_seed, 2000 + shard_i) %
                          shard->num_replicas();
            shard->replica(down)->set_down(true);
          }
          ++shard_i;
        }
        check_entries("dist-fault", faulty->Execute(*query));
        for (const auto& server : faulty->servers()) {
          server->disk()->set_fault_injector(nullptr);
        }
      }
    }
  }

  return done();
}

DirectoryInstance ShrinkInstance(const DirectoryInstance& instance,
                                 const QueryPtr& query,
                                 const FailurePredicate& fails) {
  std::vector<Entry> entries = InstanceEntries(instance);
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < entries.size(); ++i) {
      // Remove the whole subtree rooted at entries[i]; removing anything
      // less would break prefix-closure (and DirectoryInstance::Remove
      // rightly rejects non-leaf removals).
      const std::string root_key = entries[i].HierKey();
      std::vector<Entry> candidate;
      candidate.reserve(entries.size());
      for (const Entry& e : entries) {
        if (e.HierKey() == root_key ||
            KeyIsAncestor(root_key, e.HierKey())) {
          continue;
        }
        candidate.push_back(e);
      }
      DirectoryInstance cand_inst = RebuildInstance(candidate);
      if (fails(cand_inst, query)) {
        entries = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return RebuildInstance(entries);
}

QueryPtr ShrinkQuery(const DirectoryInstance& instance, const QueryPtr& query,
                     const FailurePredicate& fails) {
  QueryPtr current = query;
  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<QueryPtr> candidates;
    Reductions(current, &candidates);
    for (const QueryPtr& cand : candidates) {
      if (cand != nullptr && fails(instance, cand)) {
        current = cand;
        progress = true;
        break;
      }
    }
  }
  return current;
}

FuzzReport RunFuzz(const FuzzOptions& options) {
  FuzzReport report;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < options.iterations; ++i) {
    if (options.time_budget_ms > 0) {
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
      if (static_cast<uint64_t>(elapsed) >= options.time_budget_ms) break;
    }
    const uint64_t case_seed = CaseSeed(options.seed, i);
    DirectoryInstance instance = GenInstance(case_seed, options.gen);
    QueryPtr query = GenQuery(case_seed, instance, options.gen);
    std::vector<CheckFailure> failures =
        CheckCase(instance, query, options, case_seed, &report.checks);
    ++report.cases;
    if (failures.empty()) continue;

    Divergence div;
    div.case_seed = case_seed;
    div.check = failures[0].check;
    div.detail = failures[0].detail;
    div.original_query_text = query->ToString();
    div.original_entries = instance.size();

    DirectoryInstance shrunk_inst = RebuildInstance(InstanceEntries(instance));
    QueryPtr shrunk_query = query;
    if (options.shrink) {
      const std::string target = div.check;
      FailurePredicate pred = [&](const DirectoryInstance& ci,
                                  const QueryPtr& cq) {
        for (const CheckFailure& f : CheckCase(ci, cq, options, case_seed)) {
          if (f.check == target) return true;
        }
        return false;
      };
      // Query first (cheap on the full instance), then the instance, then
      // the query again — a smaller instance often unlocks further hoists.
      shrunk_query = ShrinkQuery(shrunk_inst, shrunk_query, pred);
      shrunk_inst = ShrinkInstance(shrunk_inst, shrunk_query, pred);
      shrunk_query = ShrinkQuery(shrunk_inst, shrunk_query, pred);
    }

    div.repro.check = div.check;
    div.repro.seed = case_seed;
    div.repro.query_text = shrunk_query->ToString();
    div.repro.entries = InstanceEntries(shrunk_inst);
    if (!options.out_dir.empty()) {
      std::string path = options.out_dir + "/case-" +
                         std::to_string(case_seed) + "-" + div.check +
                         ".ndqrepro";
      if (div.repro.SaveTo(path).ok()) div.saved_path = path;
    }
    report.divergences.push_back(std::move(div));
  }
  return report;
}

Result<std::vector<CheckFailure>> ReplayRepro(const Repro& repro,
                                              const FuzzOptions& options) {
  NDQ_ASSIGN_OR_RETURN(DirectoryInstance instance, repro.BuildInstance());
  NDQ_ASSIGN_OR_RETURN(QueryPtr query, ParseQuery(repro.query_text));
  return CheckCase(instance, query, options, repro.seed);
}

}  // namespace fuzz
}  // namespace ndq
