// Whole-query evaluation through the quadratic baselines.
//
// The differential fuzzer wants a third, independently-coded answer for
// every full query tree, not just for single operators. NaiveEvaluate
// recurses over the tree exactly like Evaluator does, but routes every
// operator through a different implementation:
//
//   * hierarchy / embedded-reference nodes -> the block-nested-loop
//     witness tests of exec/naive.h (no stacks, no merges, no pair lists);
//   * boolean nodes -> an in-memory set operation on the child results,
//     keyed by HierKey (instead of the streaming EvalBoolean merge);
//   * atomic / ldap leaves -> the shared range-scan (leaves are simple
//     enough that an independent implementation would re-test the store,
//     not the operators);
//   * (g ...) -> the shared two-scan EvalSimpleAgg (its filter phase IS
//     the Def. 6.1 semantics; there is nothing more naive to do).
//
// A divergence between this and Evaluator therefore localizes a bug to
// the stack/merge machinery or to the naive loops — either way a real
// finding.

#ifndef NDQ_FUZZ_NAIVE_EVAL_H_
#define NDQ_FUZZ_NAIVE_EVAL_H_

#include "exec/common.h"
#include "query/ast.h"
#include "store/entry_store.h"

namespace ndq {
namespace fuzz {

/// Evaluates `query` bottom-up with the naive operator implementations.
/// The caller owns (and frees) the returned list.
Result<EntryList> NaiveEvaluate(Disk* disk, const EntrySource& store,
                                const Query& query);

}  // namespace fuzz
}  // namespace ndq

#endif  // NDQ_FUZZ_NAIVE_EVAL_H_
