#include "fuzz/repro.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/dn.h"

namespace ndq {
namespace fuzz {

namespace {

// Splits off the next whitespace-delimited word of `line` at *pos.
std::string ReadWord(std::string_view line, size_t* pos) {
  while (*pos < line.size() && line[*pos] == ' ') ++*pos;
  size_t start = *pos;
  while (*pos < line.size() && line[*pos] != ' ') ++*pos;
  return std::string(line.substr(start, *pos - start));
}

Status MalformedLine(size_t lineno, const std::string& why) {
  return Status::InvalidArgument("ndqrepro line " + std::to_string(lineno) +
                                 ": " + why);
}

}  // namespace

std::string QuoteString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

Result<std::string> UnquoteString(std::string_view text, size_t* pos) {
  while (*pos < text.size() && text[*pos] == ' ') ++*pos;
  if (*pos >= text.size() || text[*pos] != '"') {
    return Status::InvalidArgument("expected opening quote");
  }
  ++*pos;
  std::string out;
  while (*pos < text.size()) {
    char c = text[*pos];
    if (c == '"') {
      ++*pos;
      return out;
    }
    if (c != '\\') {
      out.push_back(c);
      ++*pos;
      continue;
    }
    if (*pos + 1 >= text.size()) {
      return Status::InvalidArgument("dangling escape in quoted string");
    }
    char e = text[*pos + 1];
    *pos += 2;
    switch (e) {
      case '\\':
        out.push_back('\\');
        break;
      case '"':
        out.push_back('"');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'x': {
        if (*pos + 1 >= text.size() ||
            !std::isxdigit(static_cast<unsigned char>(text[*pos])) ||
            !std::isxdigit(static_cast<unsigned char>(text[*pos + 1]))) {
          return Status::InvalidArgument("bad \\x escape in quoted string");
        }
        int v = std::stoi(std::string(text.substr(*pos, 2)), nullptr, 16);
        out.push_back(static_cast<char>(v));
        *pos += 2;
        break;
      }
      default:
        return Status::InvalidArgument("unknown escape in quoted string");
    }
  }
  return Status::InvalidArgument("unterminated quoted string");
}

std::string Repro::ToText() const {
  std::ostringstream out;
  out << "ndqrepro 1\n";
  out << "check " << check << "\n";
  out << "seed " << seed << "\n";
  out << "query " << query_text << "\n";
  for (const Entry& e : entries) {
    out << "entry " << QuoteString(e.dn().ToString()) << "\n";
    for (const auto& [attr, values] : e.attributes()) {
      for (const Value& v : values) {
        switch (v.kind()) {
          case TypeKind::kInt:
            out << "attr " << attr << " int " << v.AsInt() << "\n";
            break;
          case TypeKind::kString:
            out << "attr " << attr << " str " << QuoteString(v.AsString())
                << "\n";
            break;
          case TypeKind::kDn:
            out << "attr " << attr << " dn " << QuoteString(v.AsString())
                << "\n";
            break;
        }
      }
    }
    out << "end\n";
  }
  return out.str();
}

Result<Repro> Repro::FromText(std::string_view text) {
  Repro repro;
  bool saw_header = false;
  bool in_entry = false;
  Entry current;
  size_t lineno = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    size_t lp = 0;
    std::string kw = ReadWord(line, &lp);
    if (!saw_header) {
      if (kw != "ndqrepro" || ReadWord(line, &lp) != "1") {
        return MalformedLine(lineno, "expected 'ndqrepro 1' header");
      }
      saw_header = true;
      continue;
    }
    if (kw == "check") {
      while (lp < line.size() && line[lp] == ' ') ++lp;
      repro.check = std::string(line.substr(lp));
    } else if (kw == "seed") {
      repro.seed = std::strtoull(ReadWord(line, &lp).c_str(), nullptr, 10);
    } else if (kw == "query") {
      while (lp < line.size() && line[lp] == ' ') ++lp;
      repro.query_text = std::string(line.substr(lp));
    } else if (kw == "entry") {
      if (in_entry) return MalformedLine(lineno, "entry without end");
      Result<std::string> dn_text = UnquoteString(line, &lp);
      if (!dn_text.ok()) return MalformedLine(lineno, "bad dn quoting");
      Result<Dn> dn = Dn::Parse(*dn_text);
      if (!dn.ok()) {
        return MalformedLine(lineno, "bad dn: " + dn.status().ToString());
      }
      current = Entry(dn.TakeValue());
      in_entry = true;
    } else if (kw == "attr") {
      if (!in_entry) return MalformedLine(lineno, "attr outside entry");
      std::string attr = ReadWord(line, &lp);
      std::string type = ReadWord(line, &lp);
      if (attr.empty()) return MalformedLine(lineno, "missing attr name");
      if (type == "int") {
        std::string num = ReadWord(line, &lp);
        errno = 0;
        char* endp = nullptr;
        int64_t v = std::strtoll(num.c_str(), &endp, 10);
        if (num.empty() || endp == nullptr || *endp != '\0' || errno != 0) {
          return MalformedLine(lineno, "bad int value '" + num + "'");
        }
        current.AddInt(attr, v);
      } else if (type == "str" || type == "dn") {
        Result<std::string> v = UnquoteString(line, &lp);
        if (!v.ok()) return MalformedLine(lineno, "bad quoted value");
        if (type == "str") {
          current.AddString(attr, v.TakeValue());
        } else {
          current.AddValue(attr, Value::DnRef(v.TakeValue()));
        }
      } else {
        return MalformedLine(lineno, "unknown attr type '" + type + "'");
      }
    } else if (kw == "end") {
      if (!in_entry) return MalformedLine(lineno, "end outside entry");
      repro.entries.push_back(std::move(current));
      current = Entry();
      in_entry = false;
    } else {
      return MalformedLine(lineno, "unknown keyword '" + kw + "'");
    }
  }
  if (in_entry) return Status::InvalidArgument("ndqrepro: unterminated entry");
  if (!saw_header) return Status::InvalidArgument("ndqrepro: empty input");
  return repro;
}

Status Repro::SaveTo(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open '" + path + "' for write");
  out << ToText();
  out.flush();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Result<Repro> Repro::LoadFrom(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::Internal("read of '" + path + "' failed");
  return FromText(buf.str());
}

Result<DirectoryInstance> Repro::BuildInstance() const {
  DirectoryInstance inst(Schema(), /*validate=*/false);
  for (const Entry& e : entries) {
    NDQ_RETURN_IF_ERROR(inst.Add(e));
  }
  return inst;
}

}  // namespace fuzz
}  // namespace ndq
