#include "exec/parallel_evaluator.h"

#include <chrono>
#include <initializer_list>

#include "exec/atomic.h"
#include "exec/boolean.h"
#include "exec/embedded_ref.h"
#include "exec/hierarchy.h"
#include "query/fingerprint.h"

namespace ndq {

namespace {

// On success, protects the freshly produced list while the operand guards
// free, so a failed operand Free cannot leak the output.
Result<EntryList> FinishStep(Disk* disk, Result<EntryList> out,
                             std::initializer_list<ScopedRun*> operands) {
  if (!out.ok()) return out;  // operand guards free via their destructors
  ScopedRun out_guard(disk, out.TakeValue());
  for (ScopedRun* op : operands) NDQ_RETURN_IF_ERROR(op->Free());
  return out_guard.Release();
}

}  // namespace

ParallelEvaluator::ParallelEvaluator(Disk* disk, const EntrySource* store,
                                     ExecOptions options, OperandCache* cache)
    : ParallelEvaluator(disk, store, options, cache, nullptr) {}

ParallelEvaluator::ParallelEvaluator(Disk* disk, const EntrySource* store,
                                     ExecOptions options, OperandCache* cache,
                                     ThreadPool* shared_pool)
    : disk_(disk),
      store_(store),
      options_(options),
      cache_(cache),
      owned_pool_(shared_pool == nullptr
                      ? std::make_unique<ThreadPool>(
                            options.parallelism == 0 ? 1
                                                     : options.parallelism)
                      : nullptr),
      pool_(shared_pool != nullptr ? shared_pool : owned_pool_.get()) {}

ParallelEvaluator::~ParallelEvaluator() = default;

EvalStats ParallelEvaluator::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void ParallelEvaluator::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_ = EvalStats();
}

Result<EntryList> ParallelEvaluator::Evaluate(const Query& query,
                                              OpTrace* trace,
                                              const SharedOperands* shared) {
  if (cache_ != nullptr && cache_->disk() != disk_) {
    return Status::InvalidArgument(
        "operand cache is backed by a different disk than the evaluator");
  }
  if (shared != nullptr && !shared->keys.empty() && cache_ == nullptr) {
    return Status::InvalidArgument(
        "shared-operand evaluation requires an operand cache");
  }
  // Pin one store version for the whole query tree: every leaf — on this
  // thread or a forked worker — reads the same snapshot, so concurrent
  // mutations cannot tear a query across versions. Immutable stores
  // return nullptr and are read directly.
  std::shared_ptr<const EntrySource> snapshot =
      store_ != nullptr ? store_->PinSnapshot() : nullptr;
  const EntrySource* store = snapshot != nullptr ? snapshot.get() : store_;
  return EvaluateTraced(query, trace, shared, store);
}

Result<std::vector<Entry>> ParallelEvaluator::EvaluateToEntries(
    const Query& query, OpTrace* trace, const SharedOperands* shared) {
  NDQ_ASSIGN_OR_RETURN(EntryList list, Evaluate(query, trace, shared));
  ScopedRun guard(disk_, std::move(list));
  Result<std::vector<Entry>> entries = ReadEntryList(disk_, guard.get());
  Status freed = guard.Free();
  // A read error is the primary failure; a free error only matters when
  // the read itself succeeded.
  if (!entries.ok()) return entries;
  NDQ_RETURN_IF_ERROR(freed);
  return entries;
}

Result<EntryList> ParallelEvaluator::EvaluateTraced(
    const Query& query, OpTrace* trace, const SharedOperands* shared,
    const EntrySource* store) {
  if (trace == nullptr) return EvaluateNode(query, nullptr, shared, store);
  *trace = OpTrace();
  trace->label = QueryNodeLabel(query);
  trace->op = query.op();
  trace->worker = ThreadPool::current_worker_id();
  const auto start = std::chrono::steady_clock::now();
  IoStats self;
  Result<EntryList> out = [&] {
    // nullptr disk: count this thread's traffic on every device (scratch
    // plus store, when split), like the sequential evaluator's snapshots.
    // Child scopes on this thread nest inside and claim their own I/O;
    // children on other threads never touch this scope. Either way `self`
    // is exactly this node's own traffic.
    IoScope scope(nullptr, &self);
    return EvaluateNode(query, trace, shared, store);
  }();
  if (!out.ok()) return out;
  trace->io = self;
  for (const OpTrace& child : trace->children) trace->io += child.io;
  trace->wall_micros = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  trace->output_records = out->num_records;
  trace->output_pages = out->pages.size();
  return out;
}

Status ParallelEvaluator::EvalOperandInto(const Query& query, OpTrace* trace,
                                          const SharedOperands* shared,
                                          const EntrySource* store,
                                          ScopedRun* out) {
  Result<EntryList> r = EvaluateTraced(query, trace, shared, store);
  if (!r.ok()) return r.status();
  *out = ScopedRun(disk_, r.TakeValue());
  return Status::OK();
}

Result<EntryList> ParallelEvaluator::EvalLeaf(const Query& query,
                                              OpTrace* trace,
                                              const EntrySource* store) {
  // Mutable stores stamp a mutation version; keying the cache by it keeps
  // lists computed against superseded versions from ever serving a query
  // pinned to a newer one (the owner's Clear() on mutation is the
  // capacity story, this is the correctness story).
  const uint64_t version = store != nullptr ? store->version() : 0;
  std::string key;
  if (cache_ != nullptr) {
    key = OperandCacheKey(query);
    if (version != 0) key += "@" + std::to_string(version);
    EntryList cached;
    NDQ_ASSIGN_OR_RETURN(bool hit, cache_->Lookup(key, &cached));
    if (hit) {
      if (trace != nullptr) trace->cache_hits = 1;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.atomic_queries;
      stats_.atomic_output_records += cached.num_records;
      return cached;
    }
  }
  Result<EntryList> out = Status::Internal("unreachable");
  bool probed = false;
  if (query.op() == QueryOp::kAtomic && index_hook_.enabled() &&
      (index_hook_.use_probe == nullptr || index_hook_.use_probe(query))) {
    // The probe declines (nullopt) when the attribute is not indexed or
    // the filter kind defeats the index; fall through to the scan then.
    Result<std::optional<Run>> r = index_hook_.indexes->EvalAtomic(
        disk_, *index_hook_.store, query.base(), query.scope(),
        query.filter());
    NDQ_RETURN_IF_ERROR(r.status());
    if (r->has_value()) {
      out = **r;
      probed = true;
      if (trace != nullptr) trace->index_probes = 1;
    }
  }
  if (!probed) {
    out = query.op() == QueryOp::kAtomic
              ? EvalAtomic(disk_, *store, query.base(), query.scope(),
                           query.filter(), trace)
              : EvalLdap(disk_, *store, query.base(), query.scope(),
                         *query.ldap_filter(), trace);
  }
  if (!out.ok()) return out;
  if (cache_ != nullptr) {
    // Insert copies the list; injected faults during the copy are absorbed
    // by the cache (the entry is simply not cached). Anything else is an
    // invariant violation — propagate it, but free the computed list
    // first.
    Status cs = cache_->Insert(key, *out);
    if (!cs.ok()) {
      ScopedRun computed(disk_, out.TakeValue());
      return cs;
    }
    if (trace != nullptr) trace->cache_misses = 1;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.atomic_queries;
  stats_.atomic_output_records += out->num_records;
  return out;
}

Result<EntryList> ParallelEvaluator::EvaluateNode(
    const Query& query, OpTrace* trace, const SharedOperands* shared,
    const EntrySource* store) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.operators_evaluated;
  }
  // Cross-query sharing: an interior node the batch scheduler marked
  // shared is served from — and on a miss published to — the operand
  // cache, exactly like a leaf. The first occurrence in the batch
  // evaluates the subtree; every later one copies the finished list out
  // for ~2*out pages. Leaves skip this path (EvalLeaf caches them
  // unconditionally); fingerprints are recomputed per node, which is
  // cheap for directory-query-sized trees.
  const bool leaf =
      query.op() == QueryOp::kAtomic || query.op() == QueryOp::kLdap;
  std::string shared_key;
  if (!leaf && cache_ != nullptr && shared != nullptr &&
      !shared->keys.empty()) {
    // Membership in the batch's shared set is by the bare fingerprint
    // (that is what the scheduler computed); the cache traffic itself is
    // version-stamped like leaf keys, so occurrences pinned to different
    // store versions never share a list.
    std::string key = QueryFingerprint(query);
    if (shared->contains(key)) {
      const uint64_t version = store != nullptr ? store->version() : 0;
      if (version != 0) key += "@" + std::to_string(version);
      EntryList cached;
      NDQ_ASSIGN_OR_RETURN(bool hit, cache_->Lookup(key, &cached));
      if (hit) {
        if (trace != nullptr) {
          trace->cache_hits = 1;
          FillTraceSkeleton(query, trace);
        }
        return cached;
      }
      shared_key = std::move(key);
    }
  }
  Result<EntryList> out = EvaluateOperator(query, trace, shared, store);
  if (!out.ok() || shared_key.empty()) return out;
  // Publish for the batch's other occurrences. Insert copies the list and
  // absorbs injected faults during the copy (the entry is simply not
  // cached); anything else is an invariant violation — propagate it, but
  // free the computed list first.
  Status cs = cache_->Insert(shared_key, *out);
  if (!cs.ok()) {
    ScopedRun computed(disk_, out.TakeValue());
    return cs;
  }
  if (trace != nullptr) trace->cache_misses = 1;
  return out;
}

Result<EntryList> ParallelEvaluator::EvaluateOperator(
    const Query& query, OpTrace* trace, const SharedOperands* shared,
    const EntrySource* store) {
  OpTrace* t1 = nullptr;
  OpTrace* t2 = nullptr;
  OpTrace* t3 = nullptr;
  if (trace != nullptr) {
    size_t n = (query.q1() != nullptr ? 1 : 0) +
               (query.q2() != nullptr ? 1 : 0) +
               (query.q3() != nullptr ? 1 : 0);
    trace->children.resize(n);
    if (n > 0) t1 = &trace->children[0];
    if (n > 1) t2 = &trace->children[1];
    if (n > 2) t3 = &trace->children[2];
  }

  switch (query.op()) {
    case QueryOp::kAtomic:
    case QueryOp::kLdap:
      return EvalLeaf(query, trace, store);
    case QueryOp::kSimpleAgg: {
      // One operand: nothing to fork.
      ScopedRun l1;
      NDQ_RETURN_IF_ERROR(
          EvalOperandInto(*query.q1(), t1, shared, store, &l1));
      Result<EntryList> out =
          EvalSimpleAgg(disk_, l1.get(), *query.agg(), trace);
      return FinishStep(disk_, std::move(out), {&l1});
    }
    default:
      break;
  }

  // Multi-operand operators: fork the operand subtrees, join, then run
  // the operator on this thread. The TaskGroup destructor joins EVERY
  // forked subtree before the statuses are read — even when one operand
  // has already failed — so no task is abandoned mid-flight, and the
  // ScopedRun guards free whatever operands did materialize. Errors are
  // then surfaced in operand order (s1, then s2, then s3), which makes
  // the reported status deterministic regardless of which subtree's
  // failure raced in first.
  ScopedRun l1, l2, l3;
  Status s1, s2, s3;
  {
    ThreadPool::TaskGroup group(pool_);
    group.Run(
        [&] { s1 = EvalOperandInto(*query.q1(), t1, shared, store, &l1); });
    group.Run(
        [&] { s2 = EvalOperandInto(*query.q2(), t2, shared, store, &l2); });
    if (query.q3() != nullptr) {
      group.Run(
          [&] { s3 = EvalOperandInto(*query.q3(), t3, shared, store, &l3); });
    }
  }
  NDQ_RETURN_IF_ERROR(s1);
  NDQ_RETURN_IF_ERROR(s2);
  NDQ_RETURN_IF_ERROR(s3);

  Result<EntryList> out = Status::Internal("unreachable");
  switch (query.op()) {
    case QueryOp::kAnd:
    case QueryOp::kOr:
    case QueryOp::kDiff:
      out = EvalBoolean(disk_, query.op(), l1.get(), l2.get(), trace);
      break;
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants:
      out = EvalHierarchy(disk_, query.op(), l1.get(), l2.get(), nullptr,
                          query.agg(), options_, trace);
      break;
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants:
      out = EvalHierarchy(disk_, query.op(), l1.get(), l2.get(), &l3.get(),
                          query.agg(), options_, trace);
      break;
    case QueryOp::kValueDn:
    case QueryOp::kDnValue:
      out = EvalEmbeddedRef(disk_, query.op(), l1.get(), l2.get(),
                            query.ref_attr(), query.agg(), options_, trace);
      break;
    default:
      return Status::Internal("unreachable query op in ParallelEvaluator");
  }
  return FinishStep(disk_, std::move(out), {&l1, &l2, &l3});
}

}  // namespace ndq
