#include "exec/hierarchy.h"

#include "storage/spill_stack.h"

namespace ndq {

namespace {

// One stack element of the (generalized) Figs. 2/4/5 algorithms.
struct HSItem {
  std::string key;
  uint8_t labels = 0;
  // Forward (ancestor) pass: witness contributions visible from below —
  // this item's own contribution plus, unless blocked, its stack-parent's
  // visible accumulators.
  // Backward (descendant) pass: witness contributions of this item's
  // subtree visible from above.
  std::vector<AggAccumulator> vis;
  // Backward pass, children operator only: the item's own contribution.
  std::vector<AggAccumulator> own;
};

void SerializeHSItem(const HSItem& item, std::string* out) {
  ByteWriter w(out);
  w.PutString(item.key);
  w.PutU8(item.labels);
  w.PutVarint(item.vis.size());
  for (const AggAccumulator& a : item.vis) SerializeAcc(a, out);
  w.PutVarint(item.own.size());
  for (const AggAccumulator& a : item.own) SerializeAcc(a, out);
}

Result<HSItem> DeserializeHSItem(std::string_view rec) {
  ByteReader r(rec);
  HSItem item;
  NDQ_ASSIGN_OR_RETURN(std::string_view key, r.GetString());
  item.key = std::string(key);
  NDQ_ASSIGN_OR_RETURN(item.labels, r.GetU8());
  NDQ_ASSIGN_OR_RETURN(uint64_t nvis, r.GetVarint());
  for (uint64_t i = 0; i < nvis; ++i) {
    NDQ_ASSIGN_OR_RETURN(AggAccumulator a, DeserializeAcc(&r));
    item.vis.push_back(std::move(a));
  }
  NDQ_ASSIGN_OR_RETURN(uint64_t nown, r.GetVarint());
  for (uint64_t i = 0; i < nown; ++i) {
    NDQ_ASSIGN_OR_RETURN(AggAccumulator a, DeserializeAcc(&r));
    item.own.push_back(std::move(a));
  }
  return item;
}

void MergeAccVec(const std::vector<AggAccumulator>& from,
                 std::vector<AggAccumulator>* into) {
  for (size_t i = 0; i < into->size() && i < from.size(); ++i) {
    (*into)[i].Merge(from[i]);
  }
}

using HSStack = SpillableStack<HSItem>;

std::unique_ptr<HSStack> MakeStack(Disk* disk, size_t window) {
  return std::make_unique<HSStack>(
      disk, window, SerializeHSItem,
      [](std::string_view rec) { return DeserializeHSItem(rec); },
      RecordShape::kKeyed);
}

// Forward pass for the ancestor-direction operators (p, a, ac): one scan
// of the lexicographic merge; emits the annotated L1 list in key order.
Result<Run> AncestorPass(Disk* disk, QueryOp op, const EntryList& l1,
                         const EntryList& l2, const EntryList* l3,
                         const AggProgram& prog, const ExecOptions& options,
                         OpTrace* trace) {
  LabeledMerge merge(disk, &l1, &l2, l3);
  auto stack = MakeStack(disk, options.stack_window);
  RunWriter out(disk);
  LabeledRecord rec;
  std::string buf;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, merge.Next(&rec));
    if (!more) break;
    // Pop everything that is not an ancestor of the new arrival; what
    // remains on top is its closest merge-ancestor.
    while (!stack->Empty() && !KeyIsAncestor(stack->Top().key, rec.key)) {
      NDQ_RETURN_IF_ERROR(stack->Pop().status());
    }

    NDQ_ASSIGN_OR_RETURN(Entry entry, DeserializeEntry(rec.entry_record));

    // The arrival's witness accumulators, complete at this moment.
    std::vector<AggAccumulator> wit = prog.MakeWitnessAccs();
    if (!stack->Empty()) {
      const HSItem& top = stack->Top();
      if (op == QueryOp::kParents) {
        // Witness = the parent entry, iff present in L2. The closest
        // merge-ancestor is the parent entry whenever the parent is in the
        // merge at all.
        if ((top.labels & kInL2) != 0 && KeyIsParent(top.key, rec.key)) {
          MergeAccVec(top.own, &wit);
        }
      } else {
        MergeAccVec(top.vis, &wit);
      }
    }

    if ((rec.labels & kInL1) != 0) {
      std::vector<std::optional<int64_t>> vals;
      vals.reserve(wit.size());
      for (const AggAccumulator& a : wit) vals.push_back(a.Finish());
      buf.clear();
      WriteAnnotated(vals, rec.entry_record, &buf);
      NDQ_RETURN_IF_ERROR(out.Add(buf));
    }

    // Push with this item's visible-from-below accumulators.
    HSItem item;
    item.key = std::string(rec.key);
    item.labels = rec.labels;
    item.own = prog.MakeWitnessAccs();
    if ((rec.labels & kInL2) != 0) {
      prog.AddWitnessContribution(entry, &item.own);
    }
    item.vis = item.own;
    bool blocked = op == QueryOp::kCoAncestors && (rec.labels & kInL3) != 0;
    if (!blocked && !stack->Empty() && op != QueryOp::kParents) {
      MergeAccVec(stack->Top().vis, &item.vis);
    }
    NDQ_RETURN_IF_ERROR(stack->Push(std::move(item)));
  }
  if (trace != nullptr) {
    trace->peak_stack_items = stack->peak_size();
    trace->stack_spills = stack->spill_count();
  }
  return out.Finish();
}

// Backward pass for the descendant-direction operators (c, d, dc): scans
// the merged stream in DESCENDING key order; emits the annotated L1 list
// in descending order (the caller reverses it).
Result<Run> DescendantPass(Disk* disk, QueryOp op, const EntryList& l1,
                           const EntryList& l2, const EntryList* l3,
                           const AggProgram& prog, const ExecOptions& options,
                           OpTrace* trace) {
  NDQ_ASSIGN_OR_RETURN(Run merged,
                       MaterializeLabeledMerge(disk, &l1, &l2, l3));
  NDQ_ASSIGN_OR_RETURN(Run reversed_run, ReverseRun(disk, std::move(merged)));
  // The reversed merge is consumed by this pass on every path, including
  // mid-scan errors.
  ScopedRun reversed(disk, reversed_run);

  auto stack = MakeStack(disk, options.stack_window);
  RunWriter out(disk);
  RunReader reader(disk, reversed.get());
  std::string raw;
  std::string buf;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&raw));
    if (!more) break;
    uint8_t labels;
    std::string_view entry_record;
    NDQ_RETURN_IF_ERROR(ParseLabeledRecord(raw, &labels, &entry_record));
    NDQ_ASSIGN_OR_RETURN(std::string_view keyv, PeekEntryKey(entry_record));
    std::string key(keyv);
    NDQ_ASSIGN_OR_RETURN(Entry entry, DeserializeEntry(entry_record));

    // In descending order, the arrival's descendants sit on top of the
    // stack; pop and fold them.
    std::vector<AggAccumulator> wit = prog.MakeWitnessAccs();
    while (!stack->Empty() && KeyIsAncestor(key, stack->Top().key)) {
      NDQ_ASSIGN_OR_RETURN(HSItem popped, stack->Pop());
      switch (op) {
        case QueryOp::kChildren:
          if ((popped.labels & kInL2) != 0 &&
              KeyIsParent(key, popped.key)) {
            MergeAccVec(popped.own, &wit);
          }
          break;
        case QueryOp::kDescendants:
        case QueryOp::kCoDescendants:
          MergeAccVec(popped.vis, &wit);
          break;
        default:
          return Status::Internal("DescendantPass: bad op");
      }
    }

    if ((labels & kInL1) != 0) {
      std::vector<std::optional<int64_t>> vals;
      vals.reserve(wit.size());
      for (const AggAccumulator& a : wit) vals.push_back(a.Finish());
      buf.clear();
      WriteAnnotated(vals, entry_record, &buf);
      NDQ_RETURN_IF_ERROR(out.Add(buf));
    }

    // Push this item with its subtree-visible accumulators.
    HSItem item;
    item.key = std::move(key);
    item.labels = labels;
    item.own = prog.MakeWitnessAccs();
    if ((labels & kInL2) != 0) {
      prog.AddWitnessContribution(entry, &item.own);
    }
    item.vis = item.own;
    bool blocks_below =
        op == QueryOp::kCoDescendants && (labels & kInL3) != 0;
    if (!blocks_below) {
      // The folded witness accumulators of the popped descendants are
      // exactly what remains visible through this item... except for the
      // children operator, where vis is unused.
      MergeAccVec(wit, &item.vis);
    }
    NDQ_RETURN_IF_ERROR(stack->Push(std::move(item)));
  }
  if (trace != nullptr) {
    trace->peak_stack_items = stack->peak_size();
    trace->stack_spills = stack->spill_count();
  }
  NDQ_RETURN_IF_ERROR(reversed.Free());
  return out.Finish();
}

}  // namespace

Result<EntryList> EvalHierarchy(Disk* disk, QueryOp op,
                                const EntryList& l1, const EntryList& l2,
                                const EntryList* l3,
                                const std::optional<AggSelFilter>& agg,
                                const ExecOptions& options, OpTrace* trace) {
  const bool constrained =
      op == QueryOp::kCoAncestors || op == QueryOp::kCoDescendants;
  if (constrained && l3 == nullptr) {
    return Status::InvalidArgument("constrained operator requires L3");
  }
  if (!constrained && l3 != nullptr) {
    return Status::InvalidArgument("unexpected L3 operand");
  }
  AggSelFilter filter = agg.has_value() ? *agg : ExistentialFilter();
  NDQ_ASSIGN_OR_RETURN(AggProgram prog,
                       AggProgram::Compile(filter, /*structural=*/true));

  Run annotated;
  switch (op) {
    case QueryOp::kParents:
    case QueryOp::kAncestors:
    case QueryOp::kCoAncestors: {
      NDQ_ASSIGN_OR_RETURN(
          annotated, AncestorPass(disk, op, l1, l2, l3, prog, options, trace));
      break;
    }
    case QueryOp::kChildren:
    case QueryOp::kDescendants:
    case QueryOp::kCoDescendants: {
      NDQ_ASSIGN_OR_RETURN(annotated, DescendantPass(disk, op, l1, l2, l3,
                                                     prog, options, trace));
      NDQ_ASSIGN_OR_RETURN(annotated,
                           ReverseRun(disk, std::move(annotated)));
      break;
    }
    default:
      return Status::InvalidArgument("EvalHierarchy: not a hierarchy op");
  }
  Result<EntryList> out = FilterAnnotatedList(disk, std::move(annotated), prog);
  if (trace != nullptr && out.ok()) {
    trace->op = op;
    trace->input_records = l1.num_records + l2.num_records +
                           (l3 != nullptr ? l3->num_records : 0);
    trace->input_pages = l1.pages.size() + l2.pages.size() +
                         (l3 != nullptr ? l3->pages.size() : 0);
    trace->output_records = out->num_records;
    trace->output_pages = out->pages.size();
  }
  return out;
}

}  // namespace ndq
