// The quadratic baselines the paper contrasts with.
//
// Sec. 5.3: "The straightforward way of computing the hierarchical
// selection operators ... by independently testing whether each entry of
// the first operand is in the output by finding a 'witness' entry in the
// second operand, is quadratic in the sum of the sizes of the two
// operands." Sec. 7.2 says the same of the embedded-reference operators.
//
// These implementations exist for the benchmark harness (E2/E3/E4/E7):
// a block-nested-loop witness test whose I/O is O((|L1|/B) * (|L2|/B)).
// Results are identical to the stack/merge algorithms.

#ifndef NDQ_EXEC_NAIVE_H_
#define NDQ_EXEC_NAIVE_H_

#include "exec/common.h"
#include "query/ast.h"

namespace ndq {

/// Quadratic witness-test evaluation of any of the six hierarchy operators
/// (existential semantics only — the baseline predates aggregation).
Result<EntryList> NaiveHierarchy(SimDisk* disk, QueryOp op,
                                 const EntryList& l1, const EntryList& l2,
                                 const EntryList* l3);

/// Quadratic evaluation of vd/dv: for each L1 entry, rescan L2 for
/// witnesses.
Result<EntryList> NaiveEmbeddedRef(SimDisk* disk, QueryOp op,
                                   const EntryList& l1, const EntryList& l2,
                                   const std::string& attr);

}  // namespace ndq

#endif  // NDQ_EXEC_NAIVE_H_
