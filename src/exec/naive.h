// The quadratic baselines the paper contrasts with.
//
// Sec. 5.3: "The straightforward way of computing the hierarchical
// selection operators ... by independently testing whether each entry of
// the first operand is in the output by finding a 'witness' entry in the
// second operand, is quadratic in the sum of the sizes of the two
// operands." Sec. 7.2 says the same of the embedded-reference operators.
//
// These implementations exist for the benchmark harness (E2/E3/E4/E7)
// and as an independent full-language oracle for the differential fuzzer
// (ndqfuzz): a block-nested-loop witness test whose I/O is
// O((|L1|/B) * (|L2|/B)). Results are identical to the stack/merge
// algorithms — including under aggregate selection (L2), where each
// entry's witness multiset is accumulated by the rescan rather than by
// the stacks, so a divergence localizes the bug to the clever side.

#ifndef NDQ_EXEC_NAIVE_H_
#define NDQ_EXEC_NAIVE_H_

#include <optional>
#include <string>

#include "exec/common.h"
#include "query/ast.h"

namespace ndq {

/// Quadratic witness-test evaluation of any of the six hierarchy
/// operators. A missing `agg` means the existential L1 semantics (keep
/// entries with a non-empty witness set); with `agg`, every L1 entry is a
/// candidate and the aggregate selection filter decides (Sec. 6.2's
/// generalization — existential is the count($2) > 0 special case).
Result<EntryList> NaiveHierarchy(
    Disk* disk, QueryOp op, const EntryList& l1, const EntryList& l2,
    const EntryList* l3,
    const std::optional<AggSelFilter>& agg = std::nullopt);

/// Quadratic evaluation of vd/dv: for each L1 entry, rescan L2 for
/// witnesses (optionally folding their aggregate contributions).
Result<EntryList> NaiveEmbeddedRef(
    Disk* disk, QueryOp op, const EntryList& l1, const EntryList& l2,
    const std::string& attr,
    const std::optional<AggSelFilter>& agg = std::nullopt);

}  // namespace ndq

#endif  // NDQ_EXEC_NAIVE_H_
