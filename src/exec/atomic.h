// Atomic (and baseline-LDAP) query evaluation against the entry store
// (Sec. 4.1).
//
// Because the store is in reverse-DN order, every scope is a key range;
// the scan touches only the pages overlapping the base entry's subtree and
// the output comes out sorted, ready for the merge/stack operators.

#ifndef NDQ_EXEC_ATOMIC_H_
#define NDQ_EXEC_ATOMIC_H_

#include "exec/common.h"
#include "exec/trace.h"
#include "query/ast.h"
#include "store/entry_store.h"

namespace ndq {

/// Evaluates "(base ? scope ? filter)" over the store. A non-null `trace`
/// receives the leaf's counters (records scanned vs. matched).
Result<EntryList> EvalAtomic(Disk* disk, const EntrySource& store,
                             const Dn& base, Scope scope,
                             const AtomicFilter& filter,
                             OpTrace* trace = nullptr);

/// Evaluates a baseline LDAP query (base + scope + boolean filter).
Result<EntryList> EvalLdap(Disk* disk, const EntrySource& store,
                           const Dn& base, Scope scope,
                           const LdapFilter& filter,
                           OpTrace* trace = nullptr);

}  // namespace ndq

#endif  // NDQ_EXEC_ATOMIC_H_
