// A transparent I/O cost model and plan explainer.
//
// Estimates page I/O for a query plan straight from the theorems:
// linear terms for boolean/hierarchy/aggregate operators (Thms 5.1-6.2,
// 8.3), a sort term for the embedded-reference operators (Thm 7.1), and
// range sizes for atomic leaves from the store's sparse index (no I/O).
//
// Cardinalities are UPPER BOUNDS: a leaf's output is bounded by its scope
// range — tightened by the store's cardinality statistics when available
// (store/stats.h: per-attribute filter-match bounds and subtree sketch,
// so selective filters and one-level scopes estimate honestly) — and an
// operator's output by its operands (unions capped at the store size).
// The model is meant for plan comparison ("which of two equivalent forms
// scans less"), not for absolute prediction — see cost_test.cc for the
// guarantees it is tested to keep. The cost-based planner in
// query/optimize.h consumes these estimates to choose among equivalent
// plan shapes.

#ifndef NDQ_EXEC_COST_H_
#define NDQ_EXEC_COST_H_

#include <string>

#include "exec/trace.h"
#include "query/ast.h"
#include "store/entry_store.h"

namespace ndq {

/// Cost estimate for one plan node (cumulative over its subtree).
struct CostEstimate {
  double leaf_pages = 0;      ///< pages scanned by atomic leaves
  double operator_pages = 0;  ///< pages moved by operator passes
  double output_records = 0;  ///< upper bound on result cardinality

  double TotalPages() const { return leaf_pages + operator_pages; }
};

/// Estimates the cost of evaluating `query` against `store`.
CostEstimate EstimateCost(const EntrySource& store, const Query& query);

/// Renders the plan tree with per-node cumulative estimates, e.g. for
/// ndqsh's .explain.
std::string ExplainPlan(const EntrySource& store, const Query& query);

/// Renders the EXPLAIN ANALYZE report: the plan tree with, per node, the
/// cost model's prediction next to the measured execution trace —
/// `est_pages | act_pages | est_recs | act_recs`, plus the node's
/// self-I/O and operator-specific counters (stack peaks, spills, sort
/// passes, wall time). `trace` must come from evaluating exactly `query`
/// (same tree shape); ndqsh's `.explain analyze` is the interactive
/// front end. Estimated figures are cumulative per subtree, and so are
/// act_pages / wall_us; reads/writes are node-exclusive. Keys are stable
/// and machine-parsable; wall_us is always last on the line.
std::string ExplainAnalyze(const EntrySource& store, const Query& query,
                           const OpTrace& trace);

}  // namespace ndq

#endif  // NDQ_EXEC_COST_H_
