// The stack-based hierarchical selection operators.
//
// Implements ComputeHSPC (Fig. 2), ComputeHSAD (Fig. 4), ComputeHSADc
// (Fig. 5) and their aggregate-selection generalizations ComputeHSAgg*
// (Sec. 6.4, Fig. 6) as ONE parameterized pass plus the shared filter
// phase of exec/common.h. The L1-only operators are evaluated as their
// "count($2) > 0" aggregate special case, exactly as Sec. 6.2 observes.
//
// Direction. The inputs are merged in reverse-DN order, where an entry's
// ancestors precede it. Consequently:
//   * For the ancestor-direction operators (p, a, ac) an entry's witness
//     aggregate is complete the moment the entry ARRIVES — the paper's
//     below(.) counters — so one forward pass emits the annotated list in
//     key order.
//   * For the descendant-direction operators (c, d, dc) — the paper's
//     above(.) counters, finalized at pop time — this implementation
//     instead scans the merged stream in DESCENDING key order (a linear-
//     time reversal of the materialized merge), where an entry's
//     descendants precede it and the same arrival-time argument applies;
//     the annotated output is reversed back. This achieves the in-place
//     "associate values with entry rt in list L1" of the paper's Phase 1
//     with strictly sequential I/O: 5 linear scans in total, O((|L1| +
//     |L2| [+ |L3|])/B) I/Os as Theorems 5.1/6.2 require.
//
// The stack itself is a SpillableStack, so a root-to-leaf chain larger
// than memory spills in page-sized batches with amortized O(chain/B) I/O —
// the crux of the Theorem 5.1 proof.

#ifndef NDQ_EXEC_HIERARCHY_H_
#define NDQ_EXEC_HIERARCHY_H_

#include "exec/common.h"
#include "exec/trace.h"
#include "query/ast.h"

namespace ndq {

/// Evaluates one of the six hierarchy operators with an (optional)
/// aggregate selection filter. `l3` must be non-null exactly for the
/// path-constrained operators (kCoAncestors / kCoDescendants). A missing
/// `agg` means the existential L1 semantics. A non-null `trace` receives
/// the pass's counters, including the spill stack's peak depth and
/// spill/reload count (the Thm 5.1 amortization at work).
Result<EntryList> EvalHierarchy(Disk* disk, QueryOp op,
                                const EntryList& l1, const EntryList& l2,
                                const EntryList* l3,
                                const std::optional<AggSelFilter>& agg,
                                const ExecOptions& options = {},
                                OpTrace* trace = nullptr);

}  // namespace ndq

#endif  // NDQ_EXEC_HIERARCHY_H_
