#include "exec/cost.h"

#include <algorithm>
#include <cmath>

#include "store/stats.h"

namespace ndq {

namespace {

// True when FilterAnnotatedList runs its globals pre-scan (an extra pass
// over the annotated list): an entry-set aggregate of the agg1(ea) form
// on either comparison side. count($1)/count($$) come free from the list
// length and cost no pass.
bool AggNeedsGlobalsScan(const AggSelFilter& filter) {
  auto scans = [](const AggAttr& a) {
    return a.kind == AggAttr::Kind::kEntrySet &&
           a.set_form == AggAttr::SetForm::kAggOfEntry;
  };
  return scans(filter.lhs) || scans(filter.rhs);
}

// Average records per page, from the store's own geometry.
double RecordsPerPage(const EntrySource& store) {
  uint64_t total_pages = store.EstimateRangePages("", "");
  if (total_pages == 0) return 1.0;
  return static_cast<double>(store.num_entries()) /
         static_cast<double>(total_pages);
}

CostEstimate EstimateNode(const EntrySource& store, const Query& q) {
  const double rpp = std::max(1.0, RecordsPerPage(store));
  switch (q.op()) {
    case QueryOp::kAtomic:
    case QueryOp::kLdap: {
      CostEstimate est;
      const std::string& base_key = q.base().HierKey();
      std::string end;
      switch (q.scope()) {
        case Scope::kBase:
          end = KeyExactEnd(base_key);
          break;
        case Scope::kOne:
        case Scope::kSub:
          end = KeySubtreeEnd(base_key);
          break;
      }
      // One-level and subtree scopes read the same subtree range (the
      // one-level operator filters to depth+1 in-stream), so leaf_pages
      // is the range size either way; only the output bound differs.
      est.leaf_pages =
          static_cast<double>(store.EstimateRangePages(base_key, end));
      est.output_records =
          static_cast<double>(store.EstimateRangeRecords(base_key, end));
      if (q.scope() == Scope::kBase) est.output_records = 1;
      const StoreStats* stats = store.stats();
      if (stats != nullptr) {
        const SubtreeStats* node = stats->Subtree(base_key);
        if (node != nullptr) {
          // kOne selects the base entry plus its direct children (see
          // exec/atomic.cc), not the whole subtree the scan covers.
          double scope_bound = 0;
          switch (q.scope()) {
            case Scope::kBase:
              scope_bound = static_cast<double>(node->self);
              break;
            case Scope::kOne:
              scope_bound =
                  static_cast<double>(node->self + node->direct_children);
              break;
            case Scope::kSub:
              scope_bound = static_cast<double>(node->subtree_size);
              break;
          }
          est.output_records = std::min(est.output_records, scope_bound);
        } else if (stats->complete() &&
                   KeyDepth(base_key) <= StoreStats::kMaxSketchDepth) {
          est.output_records = 0;  // provably empty subtree
        }
      }
      if (stats != nullptr && q.op() == QueryOp::kAtomic) {
        est.output_records =
            std::min(est.output_records,
                     static_cast<double>(
                         stats->EstimateFilterMatches(q.filter())));
      } else if (stats != nullptr && q.op() == QueryOp::kLdap) {
        est.output_records =
            std::min(est.output_records,
                     static_cast<double>(
                         stats->EstimateLdapMatches(*q.ldap_filter())));
      }
      // Writing the output list.
      est.operator_pages = est.output_records / rpp;
      return est;
    }
    case QueryOp::kAnd:
    case QueryOp::kOr:
    case QueryOp::kDiff: {
      CostEstimate a = EstimateNode(store, *q.q1());
      CostEstimate b = EstimateNode(store, *q.q2());
      CostEstimate est;
      est.leaf_pages = a.leaf_pages + b.leaf_pages;
      double in_pages = (a.output_records + b.output_records) / rpp;
      est.operator_pages = a.operator_pages + b.operator_pages + in_pages;
      est.output_records = q.op() == QueryOp::kOr
                               ? a.output_records + b.output_records
                               : a.output_records;
      if (q.op() == QueryOp::kAnd) {
        est.output_records = std::min(a.output_records, b.output_records);
      }
      // A union (or intersection) can never produce more entries than the
      // store holds; without this cap, deep union trees compound a+b into
      // impossible cardinalities that mis-steer the optimizer.
      est.output_records = std::min(
          est.output_records, static_cast<double>(store.num_entries()));
      return est;
    }
    case QueryOp::kSimpleAgg: {
      CostEstimate a = EstimateNode(store, *q.q1());
      CostEstimate est = a;
      // Annotate = read input + write annotated (2 passes), optional
      // globals pre-scan of the annotated list (1 pass), filter scan
      // (1 pass), plus writing the output list. The old estimate missed
      // the input-read pass and the output write (audited against
      // VerifyTheoremBounds actuals on the E19 forest).
      double in_pages = a.output_records / rpp;
      double passes = AggNeedsGlobalsScan(*q.agg()) ? 4.0 : 3.0;
      est.operator_pages +=
          passes * in_pages + est.output_records / rpp + 1;
      return est;
    }
    case QueryOp::kParents:
    case QueryOp::kAncestors:
    case QueryOp::kCoAncestors:
    case QueryOp::kChildren:
    case QueryOp::kDescendants:
    case QueryOp::kCoDescendants: {
      CostEstimate a = EstimateNode(store, *q.q1());
      CostEstimate b = EstimateNode(store, *q.q2());
      CostEstimate c;
      if (q.q3() != nullptr) c = EstimateNode(store, *q.q3());
      CostEstimate est;
      est.leaf_pages = a.leaf_pages + b.leaf_pages + c.leaf_pages;
      double in_pages =
          (a.output_records + b.output_records + c.output_records) / rpp;
      bool backward = q.op() == QueryOp::kChildren ||
                      q.op() == QueryOp::kDescendants ||
                      q.op() == QueryOp::kCoDescendants;
      // Forward: merge+annotate+filter (~2 passes). Backward adds the
      // materialized merge and two reversals (~6 passes).
      double passes = backward ? 6.0 : 2.0;
      est.operator_pages = a.operator_pages + b.operator_pages +
                           c.operator_pages + passes * in_pages + 1;
      est.output_records = a.output_records;
      return est;
    }
    case QueryOp::kValueDn:
    case QueryOp::kDnValue: {
      CostEstimate a = EstimateNode(store, *q.q1());
      CostEstimate b = EstimateNode(store, *q.q2());
      CostEstimate est;
      est.leaf_pages = a.leaf_pages + b.leaf_pages;
      double pair_pages = b.output_records / rpp + 1;
      double sort_pages =
          pair_pages * std::max(1.0, std::log2(pair_pages));
      // vd needs a second sort keyed back to L1.
      if (q.op() == QueryOp::kValueDn) sort_pages *= 2;
      est.operator_pages = a.operator_pages + b.operator_pages +
                           sort_pages +
                           2 * (a.output_records / rpp) + 1;
      est.output_records = a.output_records;
      return est;
    }
  }
  return CostEstimate();
}

void ExplainNode(const EntrySource& store, const Query& q, int depth,
                 std::string* out) {
  CostEstimate est = EstimateNode(store, q);
  out->append(static_cast<size_t>(2 * depth), ' ');
  out->append(QueryNodeLabel(q));
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "  {<=%.0f recs, ~%.0f leaf + %.0f op pages}",
                est.output_records, est.leaf_pages, est.operator_pages);
  out->append(buf);
  out->push_back('\n');
  for (const QueryPtr& child : {q.q1(), q.q2(), q.q3()}) {
    if (child != nullptr) ExplainNode(store, *child, depth + 1, out);
  }
}

void AppendIfNonZero(std::string* out, const char* key, uint64_t value) {
  if (value == 0) return;
  out->append(" ");
  out->append(key);
  out->append("=");
  out->append(std::to_string(value));
}

// Walks the query, its estimates and the trace in lockstep (both trees
// have one child per operand in q1/q2/q3 order).
void ExplainAnalyzeNode(const EntrySource& store, const Query& q,
                        const OpTrace& t, int depth, std::string* out) {
  CostEstimate est = EstimateNode(store, q);
  out->append(static_cast<size_t>(2 * depth), ' ');
  out->append(QueryNodeLabel(q));
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  {est_pages=%.0f act_pages=%llu est_recs=%.0f "
                "act_recs=%llu",
                est.TotalPages(),
                static_cast<unsigned long long>(t.io.TotalTransfers()),
                est.output_records,
                static_cast<unsigned long long>(t.output_records));
  out->append(buf);
  IoStats self = t.SelfIo();
  AppendIfNonZero(out, "reads", self.page_reads);
  AppendIfNonZero(out, "writes", self.page_writes);
  AppendIfNonZero(out, "scanned", t.scanned_records);
  AppendIfNonZero(out, "stack_peak", t.peak_stack_items);
  AppendIfNonZero(out, "spills", t.stack_spills);
  AppendIfNonZero(out, "sort_passes", t.sort_merge_passes);
  AppendIfNonZero(out, "shipped_recs", t.shipped_records);
  AppendIfNonZero(out, "shipped_bytes", t.shipped_bytes);
  AppendIfNonZero(out, "index_probes", t.index_probes);
  AppendIfNonZero(out, "plan_rewrites", t.plan_rewrites);
  AppendIfNonZero(out, "cache_hits", t.cache_hits);
  AppendIfNonZero(out, "cache_misses", t.cache_misses);
  AppendIfNonZero(out, "faults", self.faults_injected);
  AppendIfNonZero(out, "retries", t.retries);
  AppendIfNonZero(out, "failovers", t.failovers);
  AppendIfNonZero(out, "degraded", t.degraded_shards);
  AppendIfNonZero(out, "worker", t.worker);
  // Async I/O fields; all zero (hence absent) under synchronous reads.
  AppendIfNonZero(out, "io_depth", t.io_depth);
  AppendIfNonZero(out, "prefetch_hits", self.prefetch_hits);
  AppendIfNonZero(out, "prefetch_wasted", self.prefetch_wasted);
  AppendIfNonZero(out, "io_wait_us", self.io_wait_us);
  // Thread occupancy of the subtree; elide the trivial 1 so sequential
  // output is unchanged.
  size_t workers = t.SubtreeWorkers();
  if (workers > 1) AppendIfNonZero(out, "workers", workers);
  std::snprintf(buf, sizeof(buf), " wall_us=%.0f}", t.wall_micros);
  out->append(buf);
  out->push_back('\n');
  size_t ci = 0;
  for (const QueryPtr& child : {q.q1(), q.q2(), q.q3()}) {
    if (child == nullptr) continue;
    if (ci >= t.children.size()) {
      out->append(static_cast<size_t>(2 * (depth + 1)), ' ');
      out->append("<trace missing for operand>\n");
      continue;
    }
    ExplainAnalyzeNode(store, *child, t.children[ci], depth + 1, out);
    ++ci;
  }
}

}  // namespace

CostEstimate EstimateCost(const EntrySource& store, const Query& query) {
  return EstimateNode(store, query);
}

std::string ExplainPlan(const EntrySource& store, const Query& query) {
  std::string out;
  ExplainNode(store, query, 0, &out);
  return out;
}

std::string ExplainAnalyze(const EntrySource& store, const Query& query,
                           const OpTrace& trace) {
  std::string out;
  ExplainAnalyzeNode(store, query, trace, 0, &out);
  return out;
}

}  // namespace ndq
