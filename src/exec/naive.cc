#include "exec/naive.h"

#include "core/dn.h"

namespace ndq {

namespace {

bool RelatedKeys(QueryOp op, std::string_view k1, std::string_view k2) {
  switch (op) {
    case QueryOp::kParents:
      return KeyIsParent(k2, k1);
    case QueryOp::kChildren:
      return KeyIsParent(k1, k2);
    case QueryOp::kAncestors:
    case QueryOp::kCoAncestors:
      return KeyIsAncestor(k2, k1);
    case QueryOp::kDescendants:
    case QueryOp::kCoDescendants:
      return KeyIsAncestor(k1, k2);
    default:
      return false;
  }
}

// Whether some r3 in L3 strictly intervenes between r1 and witness r2.
Result<bool> Blocked(Disk* disk, QueryOp op, const EntryList& l3,
                     std::string_view k1, std::string_view k2) {
  RunReader reader(disk, l3);
  std::string rec;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
    if (!more) break;
    NDQ_ASSIGN_OR_RETURN(std::string_view k3, PeekEntryKey(rec));
    if (k3 == k1 || k3 == k2) continue;
    bool between = op == QueryOp::kCoAncestors
                       ? (KeyIsAncestor(k3, k1) && KeyIsAncestor(k2, k3))
                       : (KeyIsAncestor(k1, k3) && KeyIsAncestor(k3, k2));
    if (between) return true;
  }
  return false;
}

// Aggregate-selection variant shared by the hierarchy and embedded-ref
// baselines: for each r1, the L2 rescan folds every witness's
// contribution into fresh accumulators (instead of early-exiting on the
// first one); the annotated list then goes through the same filter scan
// the stack/merge algorithms use — by Def. 6.2 that scan IS the
// semantics, so reusing it keeps the two sides comparable while the
// witness accumulation stays independent.
Result<EntryList> NaiveAggSelect(Disk* disk, QueryOp op,
                                 const EntryList& l1, const EntryList& l2,
                                 const EntryList* l3,
                                 const std::string& attr,
                                 const AggSelFilter& agg) {
  NDQ_ASSIGN_OR_RETURN(AggProgram prog,
                       AggProgram::Compile(agg, /*structural=*/true));
  const bool constrained =
      op == QueryOp::kCoAncestors || op == QueryOp::kCoDescendants;
  const bool embedded =
      op == QueryOp::kValueDn || op == QueryOp::kDnValue;
  RunWriter annotated_writer(disk);
  RunReader outer(disk, l1);
  std::string rec1, buf;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, outer.Next(&rec1));
    if (!more) break;
    NDQ_ASSIGN_OR_RETURN(Entry r1, DeserializeEntry(rec1));
    std::vector<AggAccumulator> accs = prog.MakeWitnessAccs();
    RunReader inner(disk, l2);
    std::string rec2;
    while (true) {
      NDQ_ASSIGN_OR_RETURN(bool more2, inner.Next(&rec2));
      if (!more2) break;
      bool witness = false;
      if (embedded) {
        NDQ_ASSIGN_OR_RETURN(Entry r2, DeserializeEntry(rec2));
        witness = op == QueryOp::kValueDn
                      ? r1.HasPair(attr, Value::DnRef(r2.dn().ToString()))
                      : r2.HasPair(attr, Value::DnRef(r1.dn().ToString()));
        if (witness) prog.AddWitnessContribution(r2, &accs);
        continue;
      }
      NDQ_ASSIGN_OR_RETURN(std::string_view k2, PeekEntryKey(rec2));
      if (!RelatedKeys(op, r1.HierKey(), k2)) continue;
      if (constrained) {
        NDQ_ASSIGN_OR_RETURN(bool blocked,
                             Blocked(disk, op, *l3, r1.HierKey(), k2));
        if (blocked) continue;
      }
      NDQ_ASSIGN_OR_RETURN(Entry r2, DeserializeEntry(rec2));
      prog.AddWitnessContribution(r2, &accs);
    }
    std::vector<std::optional<int64_t>> vals;
    vals.reserve(accs.size());
    for (AggAccumulator& a : accs) vals.push_back(a.Finish());
    buf.clear();
    WriteAnnotated(vals, rec1, &buf);
    NDQ_RETURN_IF_ERROR(annotated_writer.Add(buf));
  }
  NDQ_ASSIGN_OR_RETURN(Run annotated, annotated_writer.Finish());
  return FilterAnnotatedList(disk, annotated, prog);
}

}  // namespace

Result<EntryList> NaiveHierarchy(Disk* disk, QueryOp op,
                                 const EntryList& l1, const EntryList& l2,
                                 const EntryList* l3,
                                 const std::optional<AggSelFilter>& agg) {
  const bool constrained =
      op == QueryOp::kCoAncestors || op == QueryOp::kCoDescendants;
  if (constrained && l3 == nullptr) {
    return Status::InvalidArgument("constrained operator requires L3");
  }
  if (agg.has_value()) {
    return NaiveAggSelect(disk, op, l1, l2, l3, /*attr=*/"", *agg);
  }
  RunWriter out(disk, RecordShape::kKeyed);
  RunReader outer(disk, l1);
  std::string rec1;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, outer.Next(&rec1));
    if (!more) break;
    NDQ_ASSIGN_OR_RETURN(std::string_view k1, PeekEntryKey(rec1));
    // Independently rescan L2 looking for a witness for this entry.
    RunReader inner(disk, l2);
    std::string rec2;
    bool found = false;
    while (!found) {
      NDQ_ASSIGN_OR_RETURN(bool more2, inner.Next(&rec2));
      if (!more2) break;
      NDQ_ASSIGN_OR_RETURN(std::string_view k2, PeekEntryKey(rec2));
      if (!RelatedKeys(op, k1, k2)) continue;
      if (constrained) {
        NDQ_ASSIGN_OR_RETURN(bool blocked, Blocked(disk, op, *l3, k1, k2));
        if (blocked) continue;
      }
      found = true;
    }
    if (found) NDQ_RETURN_IF_ERROR(out.Add(rec1));
  }
  return out.Finish();
}

Result<EntryList> NaiveEmbeddedRef(Disk* disk, QueryOp op,
                                   const EntryList& l1, const EntryList& l2,
                                   const std::string& attr,
                                   const std::optional<AggSelFilter>& agg) {
  if (op != QueryOp::kValueDn && op != QueryOp::kDnValue) {
    return Status::InvalidArgument("NaiveEmbeddedRef: not vd/dv");
  }
  if (agg.has_value()) {
    return NaiveAggSelect(disk, op, l1, l2, /*l3=*/nullptr, attr, *agg);
  }
  RunWriter out(disk, RecordShape::kKeyed);
  RunReader outer(disk, l1);
  std::string rec1;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, outer.Next(&rec1));
    if (!more) break;
    NDQ_ASSIGN_OR_RETURN(Entry r1, DeserializeEntry(rec1));
    RunReader inner(disk, l2);
    std::string rec2;
    bool found = false;
    while (!found) {
      NDQ_ASSIGN_OR_RETURN(bool more2, inner.Next(&rec2));
      if (!more2) break;
      NDQ_ASSIGN_OR_RETURN(Entry r2, DeserializeEntry(rec2));
      if (op == QueryOp::kValueDn) {
        found = r1.HasPair(attr, Value::DnRef(r2.dn().ToString()));
      } else {
        found = r2.HasPair(attr, Value::DnRef(r1.dn().ToString()));
      }
    }
    if (found) NDQ_RETURN_IF_ERROR(out.Add(rec1));
  }
  return out.Finish();
}

}  // namespace ndq
