// Boolean operators over sorted entry lists (Sec. 4.2).
//
// "Given sorted lists L1, L2, the results of (& L1 L2), (| L1 L2) and
// (- L1 L2) can be computed with linear I/O complexity by scanning the
// input lists once in sorted order, and writing out the output list"
// — the table-driven merge of Jacobson et al. [21]. Output stays sorted,
// preserving the pipeline invariant of Sec. 8.2.

#ifndef NDQ_EXEC_BOOLEAN_H_
#define NDQ_EXEC_BOOLEAN_H_

#include "exec/common.h"
#include "exec/trace.h"
#include "query/ast.h"

namespace ndq {

/// Computes (& L1 L2), (| L1 L2) or (- L1 L2); op must be one of kAnd,
/// kOr, kDiff. Inputs are borrowed, the result is a fresh list. A non-null
/// `trace` receives the merge's input/output counters.
Result<EntryList> EvalBoolean(Disk* disk, QueryOp op, const EntryList& l1,
                              const EntryList& l2, OpTrace* trace = nullptr);

}  // namespace ndq

#endif  // NDQ_EXEC_BOOLEAN_H_
