// A bounded LRU cache of finished sorted operand lists.
//
// Sub-plans recur — within one query (the same leaf under several
// operators) and across a workload batch (every query anchored at the same
// base/scope/filter, or sharing a whole operand subtree). Their outputs
// are immutable sorted EntryLists, so the cache can hand back a copy for
// the cost of re-reading it (~out pages) instead of re-evaluating it
// (scan >> out for selective filters).
//
// Keys are plan fingerprints (query/fingerprint.h, via OperandCacheKey
// below): a typed binary encoding of the whole subtree, so two sub-plans
// share an entry only when they are semantically the same plan. The
// cache owns PRIVATE copies of the runs it stores: Insert
// copies the caller's list in, Lookup copies the cached list out into a
// fresh run the caller owns. Nothing the caller later frees can invalidate
// a cached entry, and concurrent hits on one entry are plain concurrent
// page reads.
//
// Thread safety: one mutex guards the map, the LRU order and the stats;
// page copying happens OUTSIDE the lock under a per-entry pin count, so
// one thread copying a large list out does not stall other lookups. A
// pinned entry cannot be evicted; eviction skips past pinned entries to
// the next least-recently-used one.

#ifndef NDQ_EXEC_OPERAND_CACHE_H_
#define NDQ_EXEC_OPERAND_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "exec/common.h"
#include "query/ast.h"

namespace ndq {

/// The sound cache key for a sub-plan: the plan fingerprint of the
/// subtree (query/fingerprint.h) — a version-tagged, typed,
/// length-prefixed encoding of the whole operator tree, scopes, base
/// HierKeys and filters. Unlike the display label, it distinguishes int-
/// from string-typed equality, True from Presence(objectClass), and
/// atomic from LDAP leaves (so pre- and post-rewrite forms that differ
/// semantically never collide). Sound for ANY subtree, not just leaves:
/// the batch engine caches whole shared operand subtrees under it. It
/// deliberately EXCLUDES parallelism and tracing knobs: the cached list
/// is invariant under them.
std::string OperandCacheKey(const Query& query);

struct OperandCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Inserts rejected because the list alone exceeds the capacity.
  uint64_t oversize_rejects = 0;
  /// Copy-in or copy-out failures absorbed by the cache (the query
  /// proceeds without it: a failed copy-in is not cached, a failed
  /// copy-out reads as a miss and evicts the entry). Counts failures
  /// under async I/O too: a prefetched read's fault/error surfaces when
  /// the copy loop CONSUMES the page (Disk::FinishAsyncRead), i.e. on
  /// the copying thread inside CopyList — never on an I/O worker where
  /// it could bypass this accounting. Guarded by
  /// OperandCacheAsyncCopyFailure in tests/exec/operand_cache_test.
  uint64_t copy_failures = 0;
  uint64_t resident_pages = 0;
  uint64_t resident_entries = 0;
};

class OperandCache {
 public:
  /// `capacity_pages` bounds the total pages of cached runs (on `disk`).
  OperandCache(Disk* disk, size_t capacity_pages);
  ~OperandCache();

  OperandCache(const OperandCache&) = delete;
  OperandCache& operator=(const OperandCache&) = delete;

  Disk* disk() const { return disk_; }
  size_t capacity_pages() const { return capacity_pages_; }

  /// On a hit, copies the cached list into a fresh run owned by the caller
  /// and returns true (counting a hit); on a miss returns false (counting
  /// a miss). `out` is written only on a hit. An I/O failure while copying
  /// out is ABSORBED: the affected entry is evicted (never served again)
  /// and the lookup reports a miss, so the caller transparently recomputes.
  Result<bool> Lookup(const std::string& key, EntryList* out);

  /// Copies `list` into the cache under `key` (the caller keeps ownership
  /// of `list` itself). No-op if the key is already cached or the list
  /// alone exceeds the capacity; otherwise evicts least-recently-used
  /// unpinned entries until the copy fits. An I/O failure while copying in
  /// is ABSORBED: nothing (in particular no truncated list) is inserted
  /// and OK is returned — the cache is an optimization, never a reason to
  /// fail a query.
  Status Insert(const std::string& key, const EntryList& list);

  /// Drops every entry (pinned entries are doomed and freed when their
  /// in-flight copies finish). Call when the underlying store mutates:
  /// cached lists reflect a snapshot of it.
  void Clear();

  OperandCacheStats stats() const;

 private:
  // Entries are shared_ptr-held so a copy-out can keep its entry's
  // storage alive across an unlock even if the entry is evicted meanwhile
  // (the eviction dooms it; the last unpin frees the run).
  struct Entry {
    EntryList list;           // cache-private copy
    uint64_t pins = 0;        // in-flight copy-outs
    bool doomed = false;      // evicted/cleared while pinned
    std::list<std::string>::iterator lru_it;
  };

  /// Copies `src` into a new run on disk_. Record-level copy via
  /// RunReader/RunWriter: ~src.pages reads + writes.
  Result<EntryList> CopyList(const EntryList& src);

  /// Caller holds mu_. Frees `it`'s run (or dooms it if pinned) and
  /// removes it from the map.
  void EvictLocked(
      std::unordered_map<std::string, std::shared_ptr<Entry>>::iterator it);

  Disk* const disk_;
  const size_t capacity_pages_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  std::list<std::string> lru_;  // front = least recently used
  size_t resident_pages_ = 0;   // over non-doomed entries
  OperandCacheStats stats_;
};

}  // namespace ndq

#endif  // NDQ_EXEC_OPERAND_CACHE_H_
