#include "exec/thread_pool.h"

namespace ndq {

namespace {
// 0 on any thread that is not a pool worker (in particular the thread
// that owns the query); workers get 1..N at spawn.
thread_local uint32_t g_worker_id = 0;
}  // namespace

uint32_t ThreadPool::current_worker_id() { return g_worker_id; }

ThreadPool::ThreadPool(size_t parallelism) {
  size_t workers = parallelism > 1 ? parallelism - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back(
        [this, id = static_cast<uint32_t>(i + 1)] { WorkerLoop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Any tasks still queued belong to TaskGroups that have not been waited
  // on; groups must not outlive the pool, so the queue is empty here.
}

void ThreadPool::RunTask(Task task, std::unique_lock<std::mutex>* lock) {
  lock->unlock();
  task.fn();
  lock->lock();
  if (--task.group->pending_ == 0) done_cv_.notify_all();
}

void ThreadPool::WorkerLoop(uint32_t id) {
  g_worker_id = id;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    if (queue_.empty()) continue;
    Task task = std::move(queue_.front());
    queue_.pop_front();
    RunTask(std::move(task), &lock);
  }
}

ThreadPool::TaskGroup::TaskGroup(ThreadPool* pool) : pool_(pool) {
  if (pool_ != nullptr && pool_->workers_.empty()) pool_ = nullptr;
}

ThreadPool::TaskGroup::~TaskGroup() { Wait(); }

void ThreadPool::TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(pool_->mu_);
    ++pending_;
    pool_->queue_.push_back(Task{std::move(fn), this});
  }
  pool_->work_cv_.notify_one();
}

void ThreadPool::TaskGroup::Wait() {
  if (pool_ == nullptr) return;
  std::unique_lock<std::mutex> lock(pool_->mu_);
  while (pending_ > 0) {
    // Help: run a task of THIS group if one is still queued. Helping only
    // our own group keeps Wait() latency bounded by our own children, and
    // together with workers draining the shared queue it guarantees that
    // whatever we wait on is either runnable by us or already running.
    auto it = pool_->queue_.begin();
    while (it != pool_->queue_.end() && it->group != this) ++it;
    if (it != pool_->queue_.end()) {
      Task task = std::move(*it);
      pool_->queue_.erase(it);
      pool_->RunTask(std::move(task), &lock);
      continue;
    }
    pool_->done_cv_.wait(lock);
  }
}

}  // namespace ndq
