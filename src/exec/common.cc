#include "exec/common.h"

namespace ndq {

LabeledMerge::LabeledMerge(Disk* disk, const EntryList* l1,
                           const EntryList* l2, const EntryList* l3) {
  const EntryList* lists[3] = {l1, l2, l3};
  const uint8_t labels[3] = {kInL1, kInL2, kInL3};
  for (int i = 0; i < 3; ++i) {
    if (lists[i] == nullptr) continue;
    Input in;
    in.reader = std::make_unique<RunReader>(disk, *lists[i]);
    in.label = labels[i];
    inputs_.push_back(std::move(in));
  }
}

Status LabeledMerge::Refill(Input* in) {
  NDQ_ASSIGN_OR_RETURN(bool more, in->reader->Next(&in->record));
  in->has = more;
  if (more) {
    NDQ_ASSIGN_OR_RETURN(std::string_view key, PeekEntryKey(in->record));
    in->key = std::string(key);
    in->head = ExtractHead64(in->key);
  }
  return Status::OK();
}

Result<bool> LabeledMerge::Next(LabeledRecord* out) {
  if (!primed_) {
    primed_ = true;
    for (Input& in : inputs_) NDQ_RETURN_IF_ERROR(Refill(&in));
  }
  // Head words settle almost every comparison in one integer compare.
  const std::string* min_key = nullptr;
  uint64_t min_head = 0;
  for (Input& in : inputs_) {
    if (!in.has) continue;
    if (min_key == nullptr || in.head < min_head ||
        (in.head == min_head && in.key < *min_key)) {
      min_key = &in.key;
      min_head = in.head;
    }
  }
  if (min_key == nullptr) return false;
  std::string key = *min_key;  // copy: refills invalidate min_key
  out->labels = 0;
  for (Input& in : inputs_) {
    if (in.has && in.key == key) {
      out->labels |= in.label;
      out->entry_record = std::move(in.record);
      NDQ_RETURN_IF_ERROR(Refill(&in));
    }
  }
  NDQ_ASSIGN_OR_RETURN(std::string_view kv, PeekEntryKey(out->entry_record));
  out->key = kv;
  return true;
}

Result<Run> MaterializeLabeledMerge(Disk* disk, const EntryList* l1,
                                    const EntryList* l2,
                                    const EntryList* l3) {
  LabeledMerge merge(disk, l1, l2, l3);
  RunWriter writer(disk);
  LabeledRecord rec;
  std::string buf;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, merge.Next(&rec));
    if (!more) break;
    buf.clear();
    buf.push_back(static_cast<char>(rec.labels));
    buf += rec.entry_record;
    NDQ_RETURN_IF_ERROR(writer.Add(buf));
  }
  return writer.Finish();
}

Status ParseLabeledRecord(std::string_view rec, uint8_t* labels,
                          std::string_view* entry_record) {
  if (rec.empty()) return Status::Corruption("empty labeled record");
  *labels = static_cast<uint8_t>(rec[0]);
  *entry_record = rec.substr(1);
  return Status::OK();
}

void WriteAnnotated(const std::vector<std::optional<int64_t>>& vals,
                    std::string_view entry_record, std::string* out) {
  ByteWriter w(out);
  w.PutVarint(vals.size());
  for (const std::optional<int64_t>& v : vals) {
    w.PutU8(v.has_value() ? 1 : 0);
    w.PutSigned(v.value_or(0));
  }
  out->append(entry_record.data(), entry_record.size());
}

Status ParseAnnotated(std::string_view rec,
                      std::vector<std::optional<int64_t>>* vals,
                      std::string_view* entry_record) {
  ByteReader r(rec);
  NDQ_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  vals->clear();
  vals->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    NDQ_ASSIGN_OR_RETURN(uint8_t defined, r.GetU8());
    NDQ_ASSIGN_OR_RETURN(int64_t v, r.GetSigned());
    vals->push_back(defined ? std::optional<int64_t>(v) : std::nullopt);
  }
  *entry_record = rec.substr(r.position());
  return Status::OK();
}

void SerializeAcc(const AggAccumulator& acc, std::string* out) {
  ByteWriter w(out);
  w.PutU8(static_cast<uint8_t>(acc.fn));
  w.PutVarint(acc.count);
  w.PutVarint(acc.int_count);
  // The 128-bit sum travels as low/high 64-bit halves.
  w.PutSigned(static_cast<int64_t>(
      static_cast<uint64_t>(static_cast<unsigned __int128>(acc.sum))));
  w.PutSigned(static_cast<int64_t>(acc.sum >> 64));
  w.PutSigned(acc.min);
  w.PutSigned(acc.max);
  w.PutU8((acc.any_int ? 1 : 0) | (acc.overflow ? 2 : 0));
}

Result<AggAccumulator> DeserializeAcc(ByteReader* reader) {
  NDQ_ASSIGN_OR_RETURN(uint8_t fn, reader->GetU8());
  if (fn > static_cast<uint8_t>(AggFn::kAvg)) {
    return Status::Corruption("bad aggregate fn byte");
  }
  AggAccumulator acc(static_cast<AggFn>(fn));
  NDQ_ASSIGN_OR_RETURN(acc.count, reader->GetVarint());
  NDQ_ASSIGN_OR_RETURN(acc.int_count, reader->GetVarint());
  NDQ_ASSIGN_OR_RETURN(int64_t sum_lo, reader->GetSigned());
  NDQ_ASSIGN_OR_RETURN(int64_t sum_hi, reader->GetSigned());
  acc.sum = (static_cast<AggAccumulator::Sum128>(sum_hi) << 64) |
            static_cast<AggAccumulator::Sum128>(
                static_cast<uint64_t>(sum_lo));
  NDQ_ASSIGN_OR_RETURN(acc.min, reader->GetSigned());
  NDQ_ASSIGN_OR_RETURN(acc.max, reader->GetSigned());
  NDQ_ASSIGN_OR_RETURN(uint8_t flags, reader->GetU8());
  if (flags > 3) return Status::Corruption("bad aggregate flag byte");
  acc.any_int = (flags & 1) != 0;
  acc.overflow = (flags & 2) != 0;
  return acc;
}

namespace {

bool IsWitnessTargeted(const EntryAgg& ea) {
  return ea.target == AggTarget::kWitnessAttr ||
         ea.target == AggTarget::kWitnessCount;
}

void CollectWitnessAggs(const AggAttr& aa, std::vector<EntryAgg>* out) {
  if (aa.kind == AggAttr::Kind::kConst) return;
  if (aa.kind == AggAttr::Kind::kEntrySet &&
      aa.set_form == AggAttr::SetForm::kCountSet) {
    return;
  }
  if (IsWitnessTargeted(aa.entry)) {
    for (const EntryAgg& e : *out) {
      if (e == aa.entry) return;
    }
    out->push_back(aa.entry);
  }
}

}  // namespace

Result<AggProgram> AggProgram::Compile(const AggSelFilter& filter,
                                       bool structural) {
  AggProgram prog;
  prog.filter = filter;
  CollectWitnessAggs(filter.lhs, &prog.witness_aggs);
  CollectWitnessAggs(filter.rhs, &prog.witness_aggs);
  if (!structural && !prog.witness_aggs.empty()) {
    return Status::InvalidArgument(
        "$2 reference in simple aggregate selection");
  }
  return prog;
}

size_t AggProgram::WitnessIndex(const EntryAgg& ea) const {
  for (size_t i = 0; i < witness_aggs.size(); ++i) {
    if (witness_aggs[i] == ea) return i;
  }
  return static_cast<size_t>(-1);
}

std::vector<AggAccumulator> AggProgram::MakeWitnessAccs() const {
  std::vector<AggAccumulator> accs;
  accs.reserve(witness_aggs.size());
  for (const EntryAgg& ea : witness_aggs) accs.emplace_back(ea.fn);
  return accs;
}

void AggProgram::AddWitnessContribution(
    const Entry& entry, std::vector<AggAccumulator>* accs) const {
  for (size_t i = 0; i < witness_aggs.size(); ++i) {
    const EntryAgg& ea = witness_aggs[i];
    AggAccumulator& acc = (*accs)[i];
    if (ea.target == AggTarget::kWitnessCount) {
      acc.AddUnit();
    } else {
      const std::vector<Value>* vals = entry.Values(ea.attr);
      if (vals != nullptr) {
        for (const Value& v : *vals) acc.AddValue(v);
      }
    }
  }
}

namespace {

std::optional<int64_t> EvalSelfAgg(const EntryAgg& ea, const Entry& entry) {
  AggAccumulator acc(ea.fn);
  const std::vector<Value>* vals = entry.Values(ea.attr);
  if (vals != nullptr) {
    for (const Value& v : *vals) acc.AddValue(v);
  }
  return acc.Finish();
}

}  // namespace

std::optional<int64_t> AggProgram::EvalSide(
    bool lhs_side, const Entry& entry,
    const std::vector<std::optional<int64_t>>& witness_vals,
    const Globals& globals) const {
  const AggAttr& aa = lhs_side ? filter.lhs : filter.rhs;
  switch (aa.kind) {
    case AggAttr::Kind::kConst:
      return aa.constant;
    case AggAttr::Kind::kEntry: {
      if (IsWitnessTargeted(aa.entry)) {
        size_t idx = WitnessIndex(aa.entry);
        return idx < witness_vals.size() ? witness_vals[idx] : std::nullopt;
      }
      return EvalSelfAgg(aa.entry, entry);
    }
    case AggAttr::Kind::kEntrySet:
      if (aa.set_form == AggAttr::SetForm::kCountSet) {
        return static_cast<int64_t>(globals.set_size);
      }
      return lhs_side ? globals.lhs : globals.rhs;
  }
  return std::nullopt;
}

bool AggProgram::Matches(
    const Entry& entry,
    const std::vector<std::optional<int64_t>>& witness_vals,
    const Globals& globals) const {
  std::optional<int64_t> lhs = EvalSide(true, entry, witness_vals, globals);
  std::optional<int64_t> rhs = EvalSide(false, entry, witness_vals, globals);
  return CompareAgg(lhs, filter.op, rhs);
}

namespace {

// Per-entry value of the *inner* entry aggregate of an entry-set
// aggregate.
std::optional<int64_t> InnerValue(
    const AggProgram& prog, const AggAttr& aa, const Entry& entry,
    const std::vector<std::optional<int64_t>>& witness_vals) {
  if (IsWitnessTargeted(aa.entry)) {
    size_t idx = prog.WitnessIndex(aa.entry);
    return idx < witness_vals.size() ? witness_vals[idx] : std::nullopt;
  }
  return EvalSelfAgg(aa.entry, entry);
}

}  // namespace

Result<EntryList> FilterAnnotatedList(Disk* disk, Run annotated,
                                      const AggProgram& prog) {
  // This function consumes `annotated` on every path: the guard frees it
  // if any scan below fails.
  ScopedRun annotated_guard(disk, annotated);
  AggProgram::Globals globals;
  globals.set_size = annotated.num_records;

  const bool lhs_set = prog.filter.lhs.kind == AggAttr::Kind::kEntrySet &&
                       prog.filter.lhs.set_form ==
                           AggAttr::SetForm::kAggOfEntry;
  const bool rhs_set = prog.filter.rhs.kind == AggAttr::Kind::kEntrySet &&
                       prog.filter.rhs.set_form ==
                           AggAttr::SetForm::kAggOfEntry;
  if (lhs_set || rhs_set) {
    // Pre-scan: fold per-entry inner values into the global accumulators.
    AggAccumulator lhs_acc(prog.filter.lhs.outer_fn);
    AggAccumulator rhs_acc(prog.filter.rhs.outer_fn);
    RunReader reader(disk, annotated);
    std::string rec;
    std::vector<std::optional<int64_t>> vals;
    std::string_view entry_bytes;
    while (true) {
      NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
      if (!more) break;
      NDQ_RETURN_IF_ERROR(ParseAnnotated(rec, &vals, &entry_bytes));
      NDQ_ASSIGN_OR_RETURN(Entry entry, DeserializeEntry(entry_bytes));
      if (lhs_set) {
        std::optional<int64_t> v =
            InnerValue(prog, prog.filter.lhs, entry, vals);
        if (v.has_value()) lhs_acc.AddInt(*v);
      }
      if (rhs_set) {
        std::optional<int64_t> v =
            InnerValue(prog, prog.filter.rhs, entry, vals);
        if (v.has_value()) rhs_acc.AddInt(*v);
      }
    }
    if (lhs_set) globals.lhs = lhs_acc.Finish();
    if (rhs_set) globals.rhs = rhs_acc.Finish();
  }

  RunWriter writer(disk, RecordShape::kKeyed);
  RunReader reader(disk, annotated);
  std::string rec;
  std::vector<std::optional<int64_t>> vals;
  std::string_view entry_bytes;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
    if (!more) break;
    NDQ_RETURN_IF_ERROR(ParseAnnotated(rec, &vals, &entry_bytes));
    NDQ_ASSIGN_OR_RETURN(Entry entry, DeserializeEntry(entry_bytes));
    if (prog.Matches(entry, vals, globals)) {
      NDQ_RETURN_IF_ERROR(writer.Add(entry_bytes));
    }
  }
  NDQ_RETURN_IF_ERROR(annotated_guard.Free());
  return writer.Finish();
}

AggSelFilter ExistentialFilter() {
  AggSelFilter f;
  EntryAgg ea;
  ea.fn = AggFn::kCount;
  ea.target = AggTarget::kWitnessCount;
  f.lhs = AggAttr::Entry(std::move(ea));
  f.op = CompareOp::kGt;
  f.rhs = AggAttr::Const(0);
  return f;
}

Result<EntryList> MakeEntryList(Disk* disk,
                                const std::vector<const Entry*>& entries) {
  RunWriter writer(disk, RecordShape::kKeyed);
  std::string buf;
  for (const Entry* e : entries) {
    buf.clear();
    SerializeEntry(*e, &buf);
    NDQ_RETURN_IF_ERROR(writer.Add(buf));
  }
  return writer.Finish();
}

Result<std::vector<Entry>> ReadEntryList(Disk* disk,
                                         const EntryList& list) {
  std::vector<Entry> out;
  RunReader reader(disk, list);
  std::string rec;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
    if (!more) break;
    NDQ_ASSIGN_OR_RETURN(Entry e, DeserializeEntry(rec));
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace ndq
