#include "exec/evaluator.h"

#include <chrono>
#include <initializer_list>

#include "exec/atomic.h"
#include "exec/boolean.h"
#include "exec/embedded_ref.h"
#include "exec/hierarchy.h"

namespace ndq {

namespace {

// Counters observed by one trace scope: the scratch disk plus, when the
// store scans a different device (ndqsh's data/scratch split), that
// device's counters as well. Comparing the IoStats object addresses keeps
// single-disk setups (store and scratch sharing one SimDisk) from double
// counting.
struct IoSnapshot {
  IoStats scratch;
  IoStats store;
  bool has_store = false;
};

IoSnapshot TakeSnapshot(Disk* disk, const EntrySource* store) {
  IoSnapshot snap;
  snap.scratch = disk->stats();
  const IoStats* st = store != nullptr ? store->io_stats() : nullptr;
  if (st != nullptr && st != &disk->stats()) {
    snap.store = *st;
    snap.has_store = true;
  }
  return snap;
}

IoStats SnapshotDelta(const IoSnapshot& snap, Disk* disk,
                      const EntrySource* store) {
  IoStats delta = disk->stats() - snap.scratch;
  if (snap.has_store) {
    const IoStats* st = store->io_stats();
    IoStats sd = *st - snap.store;
    delta.page_reads += sd.page_reads;
    delta.page_writes += sd.page_writes;
    delta.pages_allocated += sd.pages_allocated;
    delta.pages_freed += sd.pages_freed;
    delta.faults_injected += sd.faults_injected;
  }
  return delta;
}

// Finishes an operator step: on success, protects the freshly produced
// list while the operand guards free, so a failed operand Free cannot
// leak the output.
Result<EntryList> FinishStep(Disk* disk, Result<EntryList> out,
                             std::initializer_list<ScopedRun*> operands) {
  if (!out.ok()) return out;  // operand guards free via their destructors
  ScopedRun out_guard(disk, out.TakeValue());
  for (ScopedRun* op : operands) NDQ_RETURN_IF_ERROR(op->Free());
  return out_guard.Release();
}

}  // namespace

Result<EntryList> EvalSimpleAgg(Disk* disk, const EntryList& l1,
                                const AggSelFilter& filter, OpTrace* trace) {
  NDQ_ASSIGN_OR_RETURN(AggProgram prog,
                       AggProgram::Compile(filter, /*structural=*/false));
  // Annotate with empty witness-value vectors (no $2 references), then run
  // the shared (<= 2 scan) filter phase.
  RunWriter writer(disk);
  RunReader reader(disk, l1);
  std::string rec, buf;
  const std::vector<std::optional<int64_t>> no_vals;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
    if (!more) break;
    buf.clear();
    WriteAnnotated(no_vals, rec, &buf);
    NDQ_RETURN_IF_ERROR(writer.Add(buf));
  }
  NDQ_ASSIGN_OR_RETURN(Run annotated, writer.Finish());
  Result<EntryList> out =
      FilterAnnotatedList(disk, std::move(annotated), prog);
  if (trace != nullptr && out.ok()) {
    trace->op = QueryOp::kSimpleAgg;
    trace->input_records = l1.num_records;
    trace->input_pages = l1.pages.size();
    trace->output_records = out->num_records;
    trace->output_pages = out->pages.size();
  }
  return out;
}

Result<EntryList> Evaluator::Evaluate(const Query& query, OpTrace* trace) {
  PinScope pin(this);
  if (trace == nullptr) return EvaluateNode(query, nullptr);
  *trace = OpTrace();
  const auto start = std::chrono::steady_clock::now();
  IoSnapshot snap = TakeSnapshot(disk_, active_store());
  Result<EntryList> out = EvaluateNode(query, trace);
  if (!out.ok()) return out;
  trace->label = QueryNodeLabel(query);
  trace->op = query.op();
  trace->io = SnapshotDelta(snap, disk_, active_store());
  trace->wall_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  trace->output_records = out->num_records;
  trace->output_pages = out->pages.size();
  return out;
}

Result<EntryList> Evaluator::EvaluateNode(const Query& query,
                                          OpTrace* trace) {
  ++stats_.operators_evaluated;
  // One child trace per operand, allocated up front so the pointers stay
  // stable while the operands evaluate.
  OpTrace* t1 = nullptr;
  OpTrace* t2 = nullptr;
  OpTrace* t3 = nullptr;
  if (trace != nullptr) {
    size_t n = (query.q1() != nullptr ? 1 : 0) +
               (query.q2() != nullptr ? 1 : 0) +
               (query.q3() != nullptr ? 1 : 0);
    trace->children.resize(n);
    if (n > 0) t1 = &trace->children[0];
    if (n > 1) t2 = &trace->children[1];
    if (n > 2) t3 = &trace->children[2];
  }
  switch (query.op()) {
    case QueryOp::kAtomic: {
      ++stats_.atomic_queries;
      NDQ_ASSIGN_OR_RETURN(
          EntryList out, EvalAtomic(disk_, *active_store(), query.base(),
                                    query.scope(), query.filter(), trace));
      stats_.atomic_output_records += out.num_records;
      return out;
    }
    case QueryOp::kLdap: {
      ++stats_.atomic_queries;
      NDQ_ASSIGN_OR_RETURN(
          EntryList out,
          EvalLdap(disk_, *active_store(), query.base(), query.scope(),
                   *query.ldap_filter(), trace));
      stats_.atomic_output_records += out.num_records;
      return out;
    }
    case QueryOp::kAnd:
    case QueryOp::kOr:
    case QueryOp::kDiff: {
      // ScopedRun guards return the operand pages to the disk on EVERY
      // exit, including a failure while evaluating a later operand (l1
      // used to leak if Evaluate(q2) failed).
      NDQ_ASSIGN_OR_RETURN(EntryList r1, Evaluate(*query.q1(), t1));
      ScopedRun l1(disk_, std::move(r1));
      NDQ_ASSIGN_OR_RETURN(EntryList r2, Evaluate(*query.q2(), t2));
      ScopedRun l2(disk_, std::move(r2));
      Result<EntryList> out =
          EvalBoolean(disk_, query.op(), l1.get(), l2.get(), trace);
      return FinishStep(disk_, std::move(out), {&l1, &l2});
    }
    case QueryOp::kSimpleAgg: {
      NDQ_ASSIGN_OR_RETURN(EntryList r1, Evaluate(*query.q1(), t1));
      ScopedRun l1(disk_, std::move(r1));
      Result<EntryList> out =
          EvalSimpleAgg(disk_, l1.get(), *query.agg(), trace);
      return FinishStep(disk_, std::move(out), {&l1});
    }
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants: {
      NDQ_ASSIGN_OR_RETURN(EntryList r1, Evaluate(*query.q1(), t1));
      ScopedRun l1(disk_, std::move(r1));
      NDQ_ASSIGN_OR_RETURN(EntryList r2, Evaluate(*query.q2(), t2));
      ScopedRun l2(disk_, std::move(r2));
      Result<EntryList> out =
          EvalHierarchy(disk_, query.op(), l1.get(), l2.get(), nullptr,
                        query.agg(), options_, trace);
      return FinishStep(disk_, std::move(out), {&l1, &l2});
    }
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants: {
      NDQ_ASSIGN_OR_RETURN(EntryList r1, Evaluate(*query.q1(), t1));
      ScopedRun l1(disk_, std::move(r1));
      NDQ_ASSIGN_OR_RETURN(EntryList r2, Evaluate(*query.q2(), t2));
      ScopedRun l2(disk_, std::move(r2));
      NDQ_ASSIGN_OR_RETURN(EntryList r3, Evaluate(*query.q3(), t3));
      ScopedRun l3(disk_, std::move(r3));
      Result<EntryList> out =
          EvalHierarchy(disk_, query.op(), l1.get(), l2.get(), &l3.get(),
                        query.agg(), options_, trace);
      return FinishStep(disk_, std::move(out), {&l1, &l2, &l3});
    }
    case QueryOp::kValueDn:
    case QueryOp::kDnValue: {
      NDQ_ASSIGN_OR_RETURN(EntryList r1, Evaluate(*query.q1(), t1));
      ScopedRun l1(disk_, std::move(r1));
      NDQ_ASSIGN_OR_RETURN(EntryList r2, Evaluate(*query.q2(), t2));
      ScopedRun l2(disk_, std::move(r2));
      Result<EntryList> out =
          EvalEmbeddedRef(disk_, query.op(), l1.get(), l2.get(),
                          query.ref_attr(), query.agg(), options_, trace);
      return FinishStep(disk_, std::move(out), {&l1, &l2});
    }
  }
  return Status::Internal("unreachable query op in Evaluate");
}

Result<std::vector<Entry>> Evaluator::EvaluateToEntries(const Query& query,
                                                        OpTrace* trace) {
  NDQ_ASSIGN_OR_RETURN(EntryList list, Evaluate(query, trace));
  Result<std::vector<Entry>> entries = ReadEntryList(disk_, list);
  Status freed = FreeRun(disk_, &list);
  // A read error is the primary failure; a free error only matters when
  // the read itself succeeded.
  if (!entries.ok()) return entries;
  NDQ_RETURN_IF_ERROR(freed);
  return entries;
}

}  // namespace ndq
