#include "exec/evaluator.h"

#include "exec/atomic.h"
#include "exec/boolean.h"
#include "exec/embedded_ref.h"
#include "exec/hierarchy.h"

namespace ndq {

Result<EntryList> EvalSimpleAgg(SimDisk* disk, const EntryList& l1,
                                const AggSelFilter& filter) {
  NDQ_ASSIGN_OR_RETURN(AggProgram prog,
                       AggProgram::Compile(filter, /*structural=*/false));
  // Annotate with empty witness-value vectors (no $2 references), then run
  // the shared (<= 2 scan) filter phase.
  RunWriter writer(disk);
  RunReader reader(disk, l1);
  std::string rec, buf;
  const std::vector<std::optional<int64_t>> no_vals;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
    if (!more) break;
    buf.clear();
    WriteAnnotated(no_vals, rec, &buf);
    NDQ_RETURN_IF_ERROR(writer.Add(buf));
  }
  NDQ_ASSIGN_OR_RETURN(Run annotated, writer.Finish());
  return FilterAnnotatedList(disk, std::move(annotated), prog);
}

Result<EntryList> Evaluator::Evaluate(const Query& query) {
  ++stats_.operators_evaluated;
  switch (query.op()) {
    case QueryOp::kAtomic: {
      ++stats_.atomic_queries;
      NDQ_ASSIGN_OR_RETURN(
          EntryList out, EvalAtomic(disk_, *store_, query.base(),
                                    query.scope(), query.filter()));
      stats_.atomic_output_records += out.num_records;
      return out;
    }
    case QueryOp::kLdap: {
      ++stats_.atomic_queries;
      NDQ_ASSIGN_OR_RETURN(
          EntryList out, EvalLdap(disk_, *store_, query.base(),
                                  query.scope(), *query.ldap_filter()));
      stats_.atomic_output_records += out.num_records;
      return out;
    }
    case QueryOp::kAnd:
    case QueryOp::kOr:
    case QueryOp::kDiff: {
      NDQ_ASSIGN_OR_RETURN(EntryList l1, Evaluate(*query.q1()));
      NDQ_ASSIGN_OR_RETURN(EntryList l2, Evaluate(*query.q2()));
      Result<EntryList> out = EvalBoolean(disk_, query.op(), l1, l2);
      NDQ_RETURN_IF_ERROR(FreeRun(disk_, &l1));
      NDQ_RETURN_IF_ERROR(FreeRun(disk_, &l2));
      return out;
    }
    case QueryOp::kSimpleAgg: {
      NDQ_ASSIGN_OR_RETURN(EntryList l1, Evaluate(*query.q1()));
      Result<EntryList> out = EvalSimpleAgg(disk_, l1, *query.agg());
      NDQ_RETURN_IF_ERROR(FreeRun(disk_, &l1));
      return out;
    }
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants: {
      NDQ_ASSIGN_OR_RETURN(EntryList l1, Evaluate(*query.q1()));
      NDQ_ASSIGN_OR_RETURN(EntryList l2, Evaluate(*query.q2()));
      Result<EntryList> out = EvalHierarchy(disk_, query.op(), l1, l2,
                                            nullptr, query.agg(), options_);
      NDQ_RETURN_IF_ERROR(FreeRun(disk_, &l1));
      NDQ_RETURN_IF_ERROR(FreeRun(disk_, &l2));
      return out;
    }
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants: {
      NDQ_ASSIGN_OR_RETURN(EntryList l1, Evaluate(*query.q1()));
      NDQ_ASSIGN_OR_RETURN(EntryList l2, Evaluate(*query.q2()));
      NDQ_ASSIGN_OR_RETURN(EntryList l3, Evaluate(*query.q3()));
      Result<EntryList> out = EvalHierarchy(disk_, query.op(), l1, l2, &l3,
                                            query.agg(), options_);
      NDQ_RETURN_IF_ERROR(FreeRun(disk_, &l1));
      NDQ_RETURN_IF_ERROR(FreeRun(disk_, &l2));
      NDQ_RETURN_IF_ERROR(FreeRun(disk_, &l3));
      return out;
    }
    case QueryOp::kValueDn:
    case QueryOp::kDnValue: {
      NDQ_ASSIGN_OR_RETURN(EntryList l1, Evaluate(*query.q1()));
      NDQ_ASSIGN_OR_RETURN(EntryList l2, Evaluate(*query.q2()));
      Result<EntryList> out =
          EvalEmbeddedRef(disk_, query.op(), l1, l2, query.ref_attr(),
                          query.agg(), options_);
      NDQ_RETURN_IF_ERROR(FreeRun(disk_, &l1));
      NDQ_RETURN_IF_ERROR(FreeRun(disk_, &l2));
      return out;
    }
  }
  return Status::Internal("unreachable query op in Evaluate");
}

Result<std::vector<Entry>> Evaluator::EvaluateToEntries(const Query& query) {
  NDQ_ASSIGN_OR_RETURN(EntryList list, Evaluate(query));
  Result<std::vector<Entry>> entries = ReadEntryList(disk_, list);
  NDQ_RETURN_IF_ERROR(FreeRun(disk_, &list));
  return entries;
}

}  // namespace ndq
