// Shared plumbing for the external-memory operators:
//   * EntryList — the inter-operator dataflow unit: a Run of serialized
//     entries in ascending HierKey order;
//   * labeled merge — the "lexicographic merge of L1 and L2 [and L3]" that
//     the stack algorithms consume, with per-record membership labels;
//   * annotated records — an entry plus its per-witness-aggregate values,
//     produced by phase 1 of the algorithms and consumed by the filter
//     phase;
//   * AggProgram — the compiled form of an AggSelFilter: which witness
//     ($2) aggregates phase 1 must maintain, and how each comparison side
//     is evaluated in the filter phase.

#ifndef NDQ_EXEC_COMMON_H_
#define NDQ_EXEC_COMMON_H_

#include <optional>
#include <string>
#include <vector>

#include "core/entry.h"
#include "core/head64.h"
#include "query/aggregate.h"
#include "storage/external_sort.h"
#include "storage/run.h"
#include "storage/serde.h"

namespace ndq {

/// A run of serialized entries in ascending HierKey order.
using EntryList = Run;

/// Tuning knobs for the evaluation engine.
struct ExecOptions {
  /// In-memory window of the spillable stacks (items). Must span at least
  /// a couple of pages of serialized stack items for the amortized-linear
  /// I/O bound to hold.
  size_t stack_window = 4096;
  /// External sort configuration (used by the embedded-reference
  /// operators, the only place the engine sorts).
  ExternalSortOptions sort;
  /// Number of threads an evaluator may use for independent operand
  /// subtrees (1 = sequential). Only ParallelEvaluator and the
  /// distributed evaluator honor it; the plain Evaluator ignores it.
  size_t parallelism = 1;
};

/// \brief Owns an operand run's pages until released.
///
/// Operators consume two or three operand lists; if evaluating a later
/// operand fails, the earlier ones' pages must still be returned to the
/// disk. ScopedRun frees the run on destruction unless Release() has
/// transferred ownership (to an operator that consumes it, or to the
/// caller on success).
class ScopedRun {
 public:
  ScopedRun() = default;
  ScopedRun(Disk* disk, Run run) : disk_(disk), run_(run) {}
  ~ScopedRun() { Reset(); }

  ScopedRun(ScopedRun&& other) noexcept { *this = std::move(other); }
  ScopedRun& operator=(ScopedRun&& other) noexcept {
    if (this != &other) {
      Reset();
      disk_ = other.disk_;
      run_ = other.run_;
      other.disk_ = nullptr;
      other.run_ = Run{};
    }
    return *this;
  }
  ScopedRun(const ScopedRun&) = delete;
  ScopedRun& operator=(const ScopedRun&) = delete;

  const Run& get() const { return run_; }
  const Run* operator->() const { return &run_; }

  /// Transfers ownership out; the guard no longer frees anything.
  Run Release() {
    disk_ = nullptr;
    Run r = run_;
    run_ = Run{};
    return r;
  }

  /// Frees the held run now and reports the free's status (success paths
  /// call this so free errors still surface; the destructor ignores them,
  /// since it runs on paths that already carry a primary error).
  Status Free() {
    if (disk_ == nullptr) return Status::OK();
    Disk* d = disk_;
    disk_ = nullptr;
    return FreeRun(d, &run_);
  }

  void Reset() { Free().ok(); }

 private:
  Disk* disk_ = nullptr;
  Run run_;
};

/// Membership labels in the merged stream (Figs. 2/4/5: label(r) = {i |
/// r in Li}).
inline constexpr uint8_t kInL1 = 1;
inline constexpr uint8_t kInL2 = 2;
inline constexpr uint8_t kInL3 = 4;

/// One element of a labeled merge.
struct LabeledRecord {
  uint8_t labels = 0;
  std::string entry_record;
  std::string_view key;  // into entry_record
};

/// \brief Streaming lexicographic merge of up to three entry lists.
///
/// Produces each distinct entry once, labels OR-ed across the lists that
/// contain it, in ascending key order. Holds one page buffer per input.
class LabeledMerge {
 public:
  /// Any list pointer may be null (treated as empty). The constructor does
  /// no I/O; the first Next() call primes the inputs, so read errors from
  /// the initial page fetches surface through Next()'s Status instead of
  /// being lost in a constructor.
  LabeledMerge(Disk* disk, const EntryList* l1, const EntryList* l2,
               const EntryList* l3);

  /// Reads the next merged element; returns false at end.
  Result<bool> Next(LabeledRecord* out);

 private:
  struct Input {
    std::unique_ptr<RunReader> reader;
    uint8_t label;
    std::string record;
    std::string key;
    uint64_t head = 0;  // ExtractHead64(key), cached at refill
    bool has = false;
  };

  Status Refill(Input* in);

  std::vector<Input> inputs_;
  bool primed_ = false;
};

/// Materializes a labeled merge into a run of [u8 labels][entry] records.
Result<Run> MaterializeLabeledMerge(Disk* disk, const EntryList* l1,
                                    const EntryList* l2, const EntryList* l3);

/// Splits a labeled record produced by MaterializeLabeledMerge.
Status ParseLabeledRecord(std::string_view rec, uint8_t* labels,
                          std::string_view* entry_record);

// ---------------------------------------------------------------------------
// Annotated records: [varint n][n x (u8 defined, zigzag value)][entry bytes]
// ---------------------------------------------------------------------------

void WriteAnnotated(const std::vector<std::optional<int64_t>>& vals,
                    std::string_view entry_record, std::string* out);

Status ParseAnnotated(std::string_view rec,
                      std::vector<std::optional<int64_t>>* vals,
                      std::string_view* entry_record);

// ---------------------------------------------------------------------------
// Accumulator wire format (for spillable stacks and ER pair lists)
// ---------------------------------------------------------------------------

void SerializeAcc(const AggAccumulator& acc, std::string* out);
Result<AggAccumulator> DeserializeAcc(ByteReader* reader);

// ---------------------------------------------------------------------------
// AggProgram
// ---------------------------------------------------------------------------

/// \brief Compiled evaluation plan for one AggSelFilter.
struct AggProgram {
  AggSelFilter filter;
  /// Distinct $2-targeted entry aggregates phase 1 must maintain; the
  /// annotated record carries one value per element, in this order.
  std::vector<EntryAgg> witness_aggs;

  /// Builds the program; `structural` controls whether $2 targets are
  /// legal (they are not in simple aggregate selection).
  static Result<AggProgram> Compile(const AggSelFilter& filter,
                                    bool structural);

  /// Index into witness_aggs, or npos for self-targeted aggregates.
  size_t WitnessIndex(const EntryAgg& ea) const;

  bool NeedsSetAggregates() const { return filter.NeedsSetAggregates(); }

  /// Fresh accumulators, one per witness aggregate.
  std::vector<AggAccumulator> MakeWitnessAccs() const;

  /// Folds `entry`'s contribution (as a witness) into `accs`.
  void AddWitnessContribution(const Entry& entry,
                              std::vector<AggAccumulator>* accs) const;

  /// Globals computed by the pre-filter scan: one slot per comparison side.
  struct Globals {
    std::optional<int64_t> lhs;
    std::optional<int64_t> rhs;
    uint64_t set_size = 0;  // |M(Q1)|, for count($1)/count($$)
  };

  /// Evaluates one side of the comparison for an annotated entry.
  std::optional<int64_t> EvalSide(
      bool lhs_side, const Entry& entry,
      const std::vector<std::optional<int64_t>>& witness_vals,
      const Globals& globals) const;

  /// True for the annotated entry iff the filter comparison holds.
  bool Matches(const Entry& entry,
               const std::vector<std::optional<int64_t>>& witness_vals,
               const Globals& globals) const;
};

/// Runs the filter phase over an annotated list: an optional globals scan
/// (when the program needs entry-set aggregates) followed by the selection
/// scan. The annotated input is consumed (freed); the result contains the
/// plain entry records that pass. Linear I/O (<= 2 scans + output).
Result<EntryList> FilterAnnotatedList(Disk* disk, Run annotated,
                                      const AggProgram& prog);

/// The implicit existential filter "count($2) > 0" (Sec. 6.2 observes the
/// L1 operators are this special case).
AggSelFilter ExistentialFilter();

// ---------------------------------------------------------------------------
// Test/bench helpers
// ---------------------------------------------------------------------------

/// Materializes entries (already key-ordered) into an EntryList.
Result<EntryList> MakeEntryList(Disk* disk,
                                const std::vector<const Entry*>& entries);

/// Reads back a whole entry list (for tests).
Result<std::vector<Entry>> ReadEntryList(Disk* disk,
                                         const EntryList& list);

}  // namespace ndq

#endif  // NDQ_EXEC_COMMON_H_
