#include "exec/trace.h"

#include <cmath>
#include <cstdio>

namespace ndq {

namespace {

uint64_t SatSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

// Subtracts child counters without underflowing (a malformed or hand-built
// trace must not wrap around to huge deltas).
IoStats SatDelta(const IoStats& total, const IoStats& used) {
  IoStats d;
  d.page_reads = SatSub(total.page_reads, used.page_reads);
  d.page_writes = SatSub(total.page_writes, used.page_writes);
  d.pages_allocated = SatSub(total.pages_allocated, used.pages_allocated);
  d.pages_freed = SatSub(total.pages_freed, used.pages_freed);
  d.faults_injected = SatSub(total.faults_injected, used.faults_injected);
  d.prefetch_hits = SatSub(total.prefetch_hits, used.prefetch_hits);
  d.prefetch_wasted = SatSub(total.prefetch_wasted, used.prefetch_wasted);
  d.io_wait_us = SatSub(total.io_wait_us, used.io_wait_us);
  return d;
}

void AppendCounter(std::string* out, const char* key, uint64_t value,
                   bool always = true) {
  if (!always && value == 0) return;
  out->append(" ");
  out->append(key);
  out->append("=");
  out->append(std::to_string(value));
}

void RenderNode(const OpTrace& t, int depth, std::string* out) {
  out->append(static_cast<size_t>(2 * depth), ' ');
  out->append(t.label);
  IoStats self = t.SelfIo();
  out->append("  {");
  AppendCounter(out, "in_recs", t.input_records);
  AppendCounter(out, "out_recs", t.output_records);
  AppendCounter(out, "in_pages", t.input_pages);
  AppendCounter(out, "out_pages", t.output_pages);
  AppendCounter(out, "reads", self.page_reads);
  AppendCounter(out, "writes", self.page_writes);
  AppendCounter(out, "scanned", t.scanned_records, /*always=*/false);
  AppendCounter(out, "stack_peak", t.peak_stack_items, /*always=*/false);
  AppendCounter(out, "spills", t.stack_spills, /*always=*/false);
  AppendCounter(out, "sort_passes", t.sort_merge_passes, /*always=*/false);
  AppendCounter(out, "shipped_recs", t.shipped_records, /*always=*/false);
  AppendCounter(out, "shipped_bytes", t.shipped_bytes, /*always=*/false);
  AppendCounter(out, "index_probes", t.index_probes, /*always=*/false);
  AppendCounter(out, "plan_rewrites", t.plan_rewrites, /*always=*/false);
  AppendCounter(out, "cache_hits", t.cache_hits, /*always=*/false);
  AppendCounter(out, "cache_misses", t.cache_misses, /*always=*/false);
  AppendCounter(out, "faults", self.faults_injected, /*always=*/false);
  AppendCounter(out, "retries", t.retries, /*always=*/false);
  AppendCounter(out, "failovers", t.failovers, /*always=*/false);
  AppendCounter(out, "degraded", t.degraded_shards, /*always=*/false);
  AppendCounter(out, "worker", t.worker, /*always=*/false);
  // Async-only fields: absent from synchronous traces (and their goldens).
  AppendCounter(out, "io_depth", t.io_depth, /*always=*/false);
  AppendCounter(out, "prefetch_hits", self.prefetch_hits, /*always=*/false);
  AppendCounter(out, "prefetch_wasted", self.prefetch_wasted,
                /*always=*/false);
  AppendCounter(out, "io_wait_us", self.io_wait_us, /*always=*/false);
  char buf[48];
  std::snprintf(buf, sizeof(buf), " wall_us=%.0f", t.wall_micros);
  out->append(buf);
  out->append("}\n");
  for (const OpTrace& child : t.children) {
    RenderNode(child, depth + 1, out);
  }
}

bool IsHierarchyOp(QueryOp op) {
  switch (op) {
    case QueryOp::kParents:
    case QueryOp::kChildren:
    case QueryOp::kAncestors:
    case QueryOp::kDescendants:
    case QueryOp::kCoAncestors:
    case QueryOp::kCoDescendants:
      return true;
    default:
      return false;
  }
}

void CheckNode(const OpTrace& t, std::vector<std::string>* out) {
  const uint64_t self = t.SelfTransfers();
  const uint64_t in = t.input_pages;
  const uint64_t io_base = t.input_pages + t.output_pages;
  uint64_t bound = 0;
  bool checked = true;
  switch (t.op) {
    case QueryOp::kAtomic:
    case QueryOp::kLdap:
      // Reads scan the store range (checked against the cost model by the
      // callers, who know the store); writes emit the output list.
      bound = 0;
      checked = false;
      if (t.SelfIo().page_writes > 2 * t.output_pages + 4) {
        out->push_back(t.label + ": leaf wrote " +
                       std::to_string(t.SelfIo().page_writes) +
                       " pages for " + std::to_string(t.output_pages) +
                       " output pages (> 2*out + 4)");
      }
      break;
    case QueryOp::kAnd:
    case QueryOp::kOr:
    case QueryOp::kDiff:
      bound = 3 * io_base + 8;
      break;
    case QueryOp::kParents:
    case QueryOp::kAncestors:
    case QueryOp::kCoAncestors:
      bound = 8 * io_base + 16;
      break;
    case QueryOp::kChildren:
    case QueryOp::kDescendants:
    case QueryOp::kCoDescendants:
      // The backward pass makes ~10 passes over merge-sized streams
      // (materialize, reverse, scan, annotate, reverse, filter), but
      // those streams carry labels and annotation values, so they hold
      // fewer records per page than the raw inputs in_pages counts;
      // adding spill traffic, whole-forest inputs measure ~18x in_pages
      // when the filtered output is tiny. 24x keeps the bound linear in
      // in+out with honest slack (breached at 16x in bench_optimizer).
      bound = 24 * io_base + 16;
      break;
    case QueryOp::kSimpleAgg:
      bound = 8 * io_base + 16;
      break;
    case QueryOp::kValueDn:
    case QueryOp::kDnValue: {
      double log_term =
          1.0 + (in > 1 ? std::log2(static_cast<double>(in)) : 0.0);
      bound = static_cast<uint64_t>(8.0 * io_base * log_term) + 32;
      break;
    }
  }
  if (checked && self > bound) {
    out->push_back(t.label + ": " + std::to_string(self) +
                   " transfers exceeds theorem bound " +
                   std::to_string(bound) + " (in_pages=" +
                   std::to_string(t.input_pages) + " out_pages=" +
                   std::to_string(t.output_pages) + ")");
  }
  // The spillable stacks may hold at most one item per merged input record
  // (a root-to-leaf chain); more means the pop discipline broke.
  if (IsHierarchyOp(t.op) && t.peak_stack_items > t.input_records) {
    out->push_back(t.label + ": stack peak " +
                   std::to_string(t.peak_stack_items) +
                   " exceeds merged input records " +
                   std::to_string(t.input_records));
  }
  for (const OpTrace& child : t.children) CheckNode(child, out);
}

}  // namespace

IoStats OpTrace::SelfIo() const {
  IoStats used;
  for (const OpTrace& child : children) {
    const IoStats& c = child.io;
    used.page_reads += c.page_reads;
    used.page_writes += c.page_writes;
    used.pages_allocated += c.pages_allocated;
    used.pages_freed += c.pages_freed;
    used.faults_injected += c.faults_injected;
    used.prefetch_hits += c.prefetch_hits;
    used.prefetch_wasted += c.prefetch_wasted;
    used.io_wait_us += c.io_wait_us;
  }
  return SatDelta(io, used);
}

size_t OpTrace::NodeCount() const {
  size_t n = 1;
  for (const OpTrace& child : children) n += child.NodeCount();
  return n;
}

namespace {
void CollectWorkers(const OpTrace& t, std::vector<uint32_t>* ids) {
  bool seen = false;
  for (uint32_t id : *ids) {
    if (id == t.worker) {
      seen = true;
      break;
    }
  }
  if (!seen) ids->push_back(t.worker);
  for (const OpTrace& child : t.children) CollectWorkers(child, ids);
}
}  // namespace

size_t OpTrace::SubtreeWorkers() const {
  std::vector<uint32_t> ids;
  CollectWorkers(*this, &ids);
  return ids.size();
}

std::string OpTrace::ToString() const {
  std::string out;
  RenderNode(*this, 0, &out);
  return out;
}

std::string QueryNodeLabel(const Query& q) {
  if (q.op() == QueryOp::kAtomic) {
    return "atomic base='" + q.base().ToString() + "' scope=" +
           ScopeToString(q.scope()) + " filter=" + q.filter().ToString();
  }
  if (q.op() == QueryOp::kLdap) {
    return "ldap base='" + q.base().ToString() + "' scope=" +
           ScopeToString(q.scope()) + " filter=" +
           q.ldap_filter()->ToString();
  }
  std::string out = "op ";
  out += QueryOpToString(q.op());
  if (q.agg().has_value()) out += " [" + q.agg()->ToString() + "]";
  if (!q.ref_attr().empty()) out += " via " + q.ref_attr();
  return out;
}

void FillTraceSkeleton(const Query& q, OpTrace* trace) {
  for (const QueryPtr& child : {q.q1(), q.q2(), q.q3()}) {
    if (child == nullptr) continue;
    OpTrace t;
    t.label = QueryNodeLabel(*child);
    t.op = child->op();
    FillTraceSkeleton(*child, &t);
    trace->children.push_back(std::move(t));
  }
}

std::vector<std::string> VerifyTheoremBounds(const OpTrace& trace) {
  std::vector<std::string> violations;
  CheckNode(trace, &violations);
  return violations;
}

}  // namespace ndq
