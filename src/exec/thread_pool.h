// A small fork/join thread pool for intra-query parallelism.
//
// The evaluators spawn one task per independent operand subtree and join
// at the operator (exec/parallel_evaluator.h, dist/distributed.cc). The
// pool is deliberately work-stealing-free: one shared FIFO queue under
// one mutex. What makes nested fork/join deadlock-free is HELPING: a
// thread waiting on its TaskGroup pops that group's not-yet-started tasks
// from the shared queue and runs them itself, so every blocked waiter
// either makes progress on its own children or is waiting on a task that
// is actually running somewhere. Query-operand tasks are coarse (whole
// subtrees doing page I/O), so queue contention is irrelevant.

#ifndef NDQ_EXEC_THREAD_POOL_H_
#define NDQ_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ndq {

class ThreadPool {
 public:
  /// `parallelism` is the total number of threads that can make progress
  /// at once: the calling thread plus parallelism-1 workers. A pool of
  /// parallelism <= 1 spawns no workers (TaskGroup::Run executes inline).
  explicit ThreadPool(size_t parallelism);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t parallelism() const { return workers_.size() + 1; }

  /// Stable id of the calling thread within any pool: 0 for non-worker
  /// threads (the query's calling thread), 1..N for pool workers. Used by
  /// OpTrace to record which thread evaluated each plan node.
  static uint32_t current_worker_id();

  /// \brief One fork/join scope: Run() forks, Wait() joins (helping).
  ///
  /// The group must outlive its tasks; Wait() (also called by the
  /// destructor) blocks until every Run() task has finished, executing
  /// queued tasks of this group itself while it waits.
  class TaskGroup {
   public:
    /// A null pool (or a pool with no workers) makes Run() execute the
    /// task inline — the degenerate sequential mode.
    explicit TaskGroup(ThreadPool* pool);
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    void Run(std::function<void()> fn);
    void Wait();

   private:
    friend class ThreadPool;
    ThreadPool* pool_;
    size_t pending_ = 0;  // guarded by pool_->mu_
  };

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  void WorkerLoop(uint32_t id);
  /// Runs `task` outside the lock and retires it; `lock` is held on entry
  /// and re-acquired before returning.
  void RunTask(Task task, std::unique_lock<std::mutex>* lock);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stop
  std::condition_variable done_cv_;  // waiters: some group hit pending==0
  std::deque<Task> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ndq

#endif  // NDQ_EXEC_THREAD_POOL_H_
