#include "exec/embedded_ref.h"

#include <memory>

#include "core/dn.h"

namespace ndq {

namespace {

// Pair records: [sort_key][payload], both length-prefixed.
void WritePair(std::string_view sort_key, std::string_view payload,
               std::string* out) {
  ByteWriter w(out);
  w.PutString(sort_key);
  w.PutString(payload);
}

Status ParsePair(std::string_view rec, std::string_view* sort_key,
                 std::string_view* payload) {
  ByteReader r(rec);
  NDQ_ASSIGN_OR_RETURN(*sort_key, r.GetString());
  NDQ_ASSIGN_OR_RETURN(*payload, r.GetString());
  return Status::OK();
}

std::string_view PairKey(std::string_view rec) {
  ByteReader r(rec);
  Result<std::string_view> key = r.GetString();
  return key.ok() ? *key : std::string_view();
}

// Pair records lead with a PutString sort key, so pair sorts spill in the
// key-aware page format.
ExternalSortOptions KeyedSort(const ExecOptions& options) {
  ExternalSortOptions sort = options.sort;
  sort.shape = RecordShape::kKeyed;
  return sort;
}

// Serializes the witness contribution of entry `e` under `prog`.
std::string ContributionPayload(const AggProgram& prog, const Entry& e) {
  std::vector<AggAccumulator> accs = prog.MakeWitnessAccs();
  prog.AddWitnessContribution(e, &accs);
  std::string out;
  ByteWriter w(&out);
  w.PutVarint(accs.size());
  for (const AggAccumulator& a : accs) SerializeAcc(a, &out);
  return out;
}

Status MergeContribution(std::string_view payload,
                         std::vector<AggAccumulator>* wit) {
  ByteReader r(payload);
  NDQ_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    NDQ_ASSIGN_OR_RETURN(AggAccumulator a, DeserializeAcc(&r));
    if (i < wit->size()) (*wit)[i].Merge(a);
  }
  return Status::OK();
}

// Streams pairs of a sorted pair run grouped by key, merged against the
// (sorted) entry list L1; writes the annotated list.
Result<Run> AnnotateByPairs(Disk* disk, const EntryList& l1,
                            const Run& sorted_pairs,
                            const AggProgram& prog) {
  RunReader l1_reader(disk, l1);
  RunReader pair_reader(disk, sorted_pairs);
  RunWriter out(disk);

  std::string pair_rec;
  bool pair_has = false;
  std::string_view pair_key, pair_payload;
  auto advance_pair = [&]() -> Status {
    NDQ_ASSIGN_OR_RETURN(bool more, pair_reader.Next(&pair_rec));
    pair_has = more;
    if (more) {
      NDQ_RETURN_IF_ERROR(ParsePair(pair_rec, &pair_key, &pair_payload));
    }
    return Status::OK();
  };
  NDQ_RETURN_IF_ERROR(advance_pair());

  std::string entry_rec;
  std::string buf;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, l1_reader.Next(&entry_rec));
    if (!more) break;
    NDQ_ASSIGN_OR_RETURN(std::string_view key, PeekEntryKey(entry_rec));
    while (pair_has && pair_key < key) NDQ_RETURN_IF_ERROR(advance_pair());
    std::vector<AggAccumulator> wit = prog.MakeWitnessAccs();
    while (pair_has && pair_key == key) {
      NDQ_RETURN_IF_ERROR(MergeContribution(pair_payload, &wit));
      NDQ_RETURN_IF_ERROR(advance_pair());
    }
    std::vector<std::optional<int64_t>> vals;
    vals.reserve(wit.size());
    for (const AggAccumulator& a : wit) vals.push_back(a.Finish());
    buf.clear();
    WriteAnnotated(vals, entry_rec, &buf);
    NDQ_RETURN_IF_ERROR(out.Add(buf));
  }
  return out.Finish();
}

// dv: LP = {(referenced key, contribution of r2)} from L2's attr values.
Result<Run> BuildDvPairs(Disk* disk, const EntryList& l2,
                         const std::string& attr, const AggProgram& prog,
                         const ExecOptions& options, uint64_t* sort_passes) {
  ExternalSorter sorter(disk, PairKey, KeyedSort(options));
  RunReader reader(disk, l2);
  std::string rec;
  std::string pair;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
    if (!more) break;
    NDQ_ASSIGN_OR_RETURN(Entry e, DeserializeEntry(rec));
    const std::vector<Value>* vals = e.Values(attr);
    if (vals == nullptr) continue;
    std::string payload = ContributionPayload(prog, e);
    for (const Value& v : *vals) {
      if (!v.is_dn()) continue;
      Result<Dn> target = Dn::Parse(v.AsString());
      if (!target.ok()) continue;  // dangling/garbled reference: no witness
      pair.clear();
      WritePair(target->HierKey(), payload, &pair);
      NDQ_RETURN_IF_ERROR(sorter.Add(pair));
    }
  }
  Result<Run> sorted = sorter.Finish();
  *sort_passes += sorter.merge_passes();
  return sorted;
}

// vd: two-sort path (see header).
Result<Run> BuildVdPairs(Disk* disk, const EntryList& l1,
                         const EntryList& l2, const std::string& attr,
                         const AggProgram& prog, const ExecOptions& options,
                         uint64_t* sort_passes) {
  // LP1: (referenced key, r1 key), sorted by referenced key. The guard
  // consumes it even if the join below fails mid-scan.
  Run lp1;
  ScopedRun lp1_guard;
  {
    ExternalSorter sorter(disk, PairKey, KeyedSort(options));
    RunReader reader(disk, l1);
    std::string rec, pair;
    while (true) {
      NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
      if (!more) break;
      NDQ_ASSIGN_OR_RETURN(std::string_view key, PeekEntryKey(rec));
      NDQ_ASSIGN_OR_RETURN(Entry e, DeserializeEntry(rec));
      const std::vector<Value>* vals = e.Values(attr);
      if (vals == nullptr) continue;
      for (const Value& v : *vals) {
        if (!v.is_dn()) continue;
        Result<Dn> target = Dn::Parse(v.AsString());
        if (!target.ok()) continue;
        pair.clear();
        WritePair(target->HierKey(), key, &pair);
        NDQ_RETURN_IF_ERROR(sorter.Add(pair));
      }
    }
    NDQ_ASSIGN_OR_RETURN(lp1, sorter.Finish());
    lp1_guard = ScopedRun(disk, lp1);
    *sort_passes += sorter.merge_passes();
  }
  // Join LP1 with L2 on referenced key; emit (r1 key, contribution(r2)).
  ExternalSorter sorter2(disk, PairKey, KeyedSort(options));
  {
    RunReader l2_reader(disk, l2);
    RunReader lp_reader(disk, lp1);
    std::string pair_rec;
    bool pair_has = false;
    std::string_view pkey, ppayload;
    auto advance_pair = [&]() -> Status {
      NDQ_ASSIGN_OR_RETURN(bool more, lp_reader.Next(&pair_rec));
      pair_has = more;
      if (more) NDQ_RETURN_IF_ERROR(ParsePair(pair_rec, &pkey, &ppayload));
      return Status::OK();
    };
    NDQ_RETURN_IF_ERROR(advance_pair());
    std::string rec, out_pair;
    while (true) {
      NDQ_ASSIGN_OR_RETURN(bool more, l2_reader.Next(&rec));
      if (!more) break;
      NDQ_ASSIGN_OR_RETURN(std::string_view key, PeekEntryKey(rec));
      while (pair_has && pkey < key) NDQ_RETURN_IF_ERROR(advance_pair());
      if (!pair_has || pkey != key) continue;
      NDQ_ASSIGN_OR_RETURN(Entry e, DeserializeEntry(rec));
      std::string payload = ContributionPayload(prog, e);
      while (pair_has && pkey == key) {
        out_pair.clear();
        WritePair(ppayload, payload, &out_pair);  // (r1 key, contribution)
        NDQ_RETURN_IF_ERROR(sorter2.Add(out_pair));
        NDQ_RETURN_IF_ERROR(advance_pair());
      }
    }
    NDQ_RETURN_IF_ERROR(lp1_guard.Free());
  }
  Result<Run> sorted = sorter2.Finish();
  *sort_passes += sorter2.merge_passes();
  return sorted;
}

}  // namespace

Result<EntryList> EvalEmbeddedRef(Disk* disk, QueryOp op,
                                  const EntryList& l1, const EntryList& l2,
                                  const std::string& attr,
                                  const std::optional<AggSelFilter>& agg,
                                  const ExecOptions& options, OpTrace* trace) {
  if (op != QueryOp::kValueDn && op != QueryOp::kDnValue) {
    return Status::InvalidArgument("EvalEmbeddedRef: not vd/dv");
  }
  AggSelFilter filter = agg.has_value() ? *agg : ExistentialFilter();
  NDQ_ASSIGN_OR_RETURN(AggProgram prog,
                       AggProgram::Compile(filter, /*structural=*/true));

  Run pairs;
  uint64_t sort_passes = 0;
  if (op == QueryOp::kDnValue) {
    NDQ_ASSIGN_OR_RETURN(
        pairs, BuildDvPairs(disk, l2, attr, prog, options, &sort_passes));
  } else {
    NDQ_ASSIGN_OR_RETURN(
        pairs, BuildVdPairs(disk, l1, l2, attr, prog, options, &sort_passes));
  }
  ScopedRun pairs_guard(disk, pairs);
  NDQ_ASSIGN_OR_RETURN(Run annotated,
                       AnnotateByPairs(disk, l1, pairs_guard.get(), prog));
  ScopedRun annotated_guard(disk, annotated);
  NDQ_RETURN_IF_ERROR(pairs_guard.Free());
  Result<EntryList> out =
      FilterAnnotatedList(disk, annotated_guard.Release(), prog);
  if (trace != nullptr && out.ok()) {
    trace->op = op;
    trace->input_records = l1.num_records + l2.num_records;
    trace->input_pages = l1.pages.size() + l2.pages.size();
    trace->output_records = out->num_records;
    trace->output_pages = out->pages.size();
    trace->sort_merge_passes = sort_passes;
  }
  return out;
}

}  // namespace ndq
