// The intra-query parallel evaluator.
//
// The bottom-up plans of Sec. 8.2 have natural task parallelism: an
// operator's operands (q1/q2[/q3]) touch disjoint intermediate lists, so
// their subtrees can evaluate concurrently and join at the operator. On a
// simulated disk with transfer latency this overlaps I/O stalls exactly
// the way a real server overlaps seeks across query streams; the page
// counts themselves (the theorems' currency) are unchanged — parallelism
// reorders transfers, it does not add any.
//
// ParallelEvaluator produces byte-identical EntryLists to Evaluator for
// every query: each operator still consumes fully-materialized sorted
// operands, so the merge order — and therefore every record of every
// intermediate and final list — does not depend on scheduling.
//
// Tracing under concurrency uses IoScope (storage/disk.h) instead of the
// sequential evaluator's counter snapshots, which would attribute a
// sibling's concurrent I/O to whichever node's window it landed in. Each
// node's scope captures only the I/O its own thread does for that node;
// cumulative subtree I/O is reassembled as self + sum of children, so
// EXPLAIN ANALYZE and VerifyTheoremBounds keep working unchanged.
//
// An optional OperandCache short-circuits repeated atomic leaves (see
// exec/operand_cache.h); hits and misses land in the leaf's OpTrace. A
// batch scheduler can additionally pass a SharedOperands set of interior
// plan fingerprints (query/fingerprint.h): nodes in the set are served
// from / published to the same cache, which is how shared operand
// subtrees across a batch of queries evaluate exactly once.

#ifndef NDQ_EXEC_PARALLEL_EVALUATOR_H_
#define NDQ_EXEC_PARALLEL_EVALUATOR_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

#include "exec/evaluator.h"
#include "exec/operand_cache.h"
#include "exec/thread_pool.h"
#include "index/attr_index.h"

namespace ndq {

/// Index-assisted leaf evaluation, installed by the owner (the engine)
/// when attribute indexes exist over the store. `use_probe` is the
/// cost-based scan-vs-probe decision (query/optimize.h ChooseAccessPath,
/// bound by the engine so exec does not depend on the planner); the
/// evaluator consults it per atomic leaf and falls back to the range
/// scan when the probe declines or the attribute turns out not to be
/// indexed. Results are byte-identical either way.
struct IndexHook {
  const AttributeIndexes* indexes = nullptr;
  const EntryStore* store = nullptr;  ///< the indexed (bulk-loaded) store
  std::function<bool(const Query&)> use_probe;

  bool enabled() const { return indexes != nullptr && store != nullptr; }
};

/// The shared-subtree set a batch scheduler computed over one batch of
/// canonicalized plans (PlanCensus::SharedKeys). When passed to Evaluate,
/// the evaluator consults its OperandCache at every INTERIOR node whose
/// fingerprint is in the set — a hit replaces the whole subtree's
/// evaluation with a ~2*out-page cached copy, a miss evaluates normally
/// and publishes the result for the batch's other occurrences.
struct SharedOperands {
  std::unordered_set<std::string> keys;  ///< plan fingerprints
  bool contains(const std::string& fp) const { return keys.count(fp) != 0; }
};

class ParallelEvaluator {
 public:
  /// `options.parallelism` threads evaluate independent operand subtrees
  /// (1 = sequential schedule, same code path). A non-null `cache` must be
  /// backed by the same scratch disk as the evaluator; it is consulted for
  /// every atomic leaf and must be Clear()ed by the owner whenever the
  /// store mutates.
  ParallelEvaluator(Disk* disk, const EntrySource* store,
                    ExecOptions options = {}, OperandCache* cache = nullptr);

  /// Engine form: runs on `shared_pool` (non-owning, must outlive the
  /// evaluator) instead of a private pool, so one fleet-wide pool bounds
  /// parallelism across every in-flight query. `options.parallelism` is
  /// ignored in this form; a null `shared_pool` falls back to a private
  /// pool as above.
  ParallelEvaluator(Disk* disk, const EntrySource* store,
                    ExecOptions options, OperandCache* cache,
                    ThreadPool* shared_pool);
  ~ParallelEvaluator();

  ParallelEvaluator(const ParallelEvaluator&) = delete;
  ParallelEvaluator& operator=(const ParallelEvaluator&) = delete;

  /// Evaluates the query; the caller owns (and frees) the returned list.
  /// Identical records, in identical order, to Evaluator::Evaluate. A
  /// non-null `trace` receives the per-operator execution trace,
  /// including which worker ran each node and the leaf cache traffic.
  /// A non-null `shared` enables interior-node caching as described on
  /// SharedOperands (requires a cache).
  Result<EntryList> Evaluate(const Query& query, OpTrace* trace = nullptr,
                             const SharedOperands* shared = nullptr);

  /// Convenience: evaluates and deserializes the result entries.
  Result<std::vector<Entry>> EvaluateToEntries(
      const Query& query, OpTrace* trace = nullptr,
      const SharedOperands* shared = nullptr);

  size_t parallelism() const { return pool_->parallelism(); }
  OperandCache* cache() const { return cache_; }

  /// Installs (or, default-constructed, clears) the index hook. Must not
  /// be called while a query is in flight; the referenced indexes/store
  /// must outlive their installation.
  void SetIndexHook(IndexHook hook) { index_hook_ = std::move(hook); }
  const IndexHook& index_hook() const { return index_hook_; }

  EvalStats stats() const;
  void ResetStats();

 private:
  // Each public Evaluate pins ONE snapshot of a mutable store
  // (EntrySource::PinSnapshot) and threads it down the recursion as
  // `store`, so every forked subtree of a query reads the same store
  // version even while concurrent mutations publish new states. Cache
  // keys are stamped with the snapshot's mutation version (when nonzero),
  // so lists computed against different versions never alias.

  /// Trace-wrapping recursion step: opens this node's IoScope, times it,
  /// and reassembles cumulative io as self + sum of children.
  Result<EntryList> EvaluateTraced(const Query& query, OpTrace* trace,
                                   const SharedOperands* shared,
                                   const EntrySource* store);
  /// Shared-subtree cache check around EvaluateOperator.
  Result<EntryList> EvaluateNode(const Query& query, OpTrace* trace,
                                 const SharedOperands* shared,
                                 const EntrySource* store);
  /// Leaf dispatch or fork/join operator evaluation proper.
  Result<EntryList> EvaluateOperator(const Query& query, OpTrace* trace,
                                     const SharedOperands* shared,
                                     const EntrySource* store);
  Result<EntryList> EvalLeaf(const Query& query, OpTrace* trace,
                             const EntrySource* store);
  /// Evaluates one operand subtree into a ScopedRun (fork target).
  Status EvalOperandInto(const Query& query, OpTrace* trace,
                         const SharedOperands* shared,
                         const EntrySource* store, ScopedRun* out);

  Disk* disk_;
  const EntrySource* store_;
  ExecOptions options_;
  OperandCache* cache_;
  IndexHook index_hook_;
  std::unique_ptr<ThreadPool> owned_pool_;  // null when pool is borrowed
  ThreadPool* pool_;
  mutable std::mutex stats_mu_;
  EvalStats stats_;
};

}  // namespace ndq

#endif  // NDQ_EXEC_PARALLEL_EVALUATOR_H_
