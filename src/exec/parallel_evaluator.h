// The intra-query parallel evaluator.
//
// The bottom-up plans of Sec. 8.2 have natural task parallelism: an
// operator's operands (q1/q2[/q3]) touch disjoint intermediate lists, so
// their subtrees can evaluate concurrently and join at the operator. On a
// simulated disk with transfer latency this overlaps I/O stalls exactly
// the way a real server overlaps seeks across query streams; the page
// counts themselves (the theorems' currency) are unchanged — parallelism
// reorders transfers, it does not add any.
//
// ParallelEvaluator produces byte-identical EntryLists to Evaluator for
// every query: each operator still consumes fully-materialized sorted
// operands, so the merge order — and therefore every record of every
// intermediate and final list — does not depend on scheduling.
//
// Tracing under concurrency uses IoScope (storage/disk.h) instead of the
// sequential evaluator's counter snapshots, which would attribute a
// sibling's concurrent I/O to whichever node's window it landed in. Each
// node's scope captures only the I/O its own thread does for that node;
// cumulative subtree I/O is reassembled as self + sum of children, so
// EXPLAIN ANALYZE and VerifyTheoremBounds keep working unchanged.
//
// An optional OperandCache short-circuits repeated atomic leaves (see
// exec/operand_cache.h); hits and misses land in the leaf's OpTrace.

#ifndef NDQ_EXEC_PARALLEL_EVALUATOR_H_
#define NDQ_EXEC_PARALLEL_EVALUATOR_H_

#include <memory>
#include <mutex>

#include "exec/evaluator.h"
#include "exec/operand_cache.h"
#include "exec/thread_pool.h"

namespace ndq {

class ParallelEvaluator {
 public:
  /// `options.parallelism` threads evaluate independent operand subtrees
  /// (1 = sequential schedule, same code path). A non-null `cache` must be
  /// backed by the same scratch disk as the evaluator; it is consulted for
  /// every atomic leaf and must be Clear()ed by the owner whenever the
  /// store mutates.
  ParallelEvaluator(SimDisk* disk, const EntrySource* store,
                    ExecOptions options = {}, OperandCache* cache = nullptr);
  ~ParallelEvaluator();

  ParallelEvaluator(const ParallelEvaluator&) = delete;
  ParallelEvaluator& operator=(const ParallelEvaluator&) = delete;

  /// Evaluates the query; the caller owns (and frees) the returned list.
  /// Identical records, in identical order, to Evaluator::Evaluate. A
  /// non-null `trace` receives the per-operator execution trace,
  /// including which worker ran each node and the leaf cache traffic.
  Result<EntryList> Evaluate(const Query& query, OpTrace* trace = nullptr);

  /// Convenience: evaluates and deserializes the result entries.
  Result<std::vector<Entry>> EvaluateToEntries(const Query& query,
                                               OpTrace* trace = nullptr);

  size_t parallelism() const { return pool_->parallelism(); }
  OperandCache* cache() const { return cache_; }

  EvalStats stats() const;
  void ResetStats();

 private:
  /// Trace-wrapping recursion step: opens this node's IoScope, times it,
  /// and reassembles cumulative io as self + sum of children.
  Result<EntryList> EvaluateTraced(const Query& query, OpTrace* trace);
  Result<EntryList> EvaluateNode(const Query& query, OpTrace* trace);
  Result<EntryList> EvalLeaf(const Query& query, OpTrace* trace);
  /// Evaluates one operand subtree into a ScopedRun (fork target).
  Status EvalOperandInto(const Query& query, OpTrace* trace, ScopedRun* out);

  SimDisk* disk_;
  const EntrySource* store_;
  ExecOptions options_;
  OperandCache* cache_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::mutex stats_mu_;
  EvalStats stats_;
};

}  // namespace ndq

#endif  // NDQ_EXEC_PARALLEL_EVALUATOR_H_
