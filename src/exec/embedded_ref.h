// The embedded-reference operators valueDN (vd) and DNvalue (dv) of
// Section 7, generalizing Algorithm ComputeERAggDV (Fig. 3) to arbitrary
// aggregate selection filters.
//
// dv (L1 L2 a): keep r1 in L1 referenced by some r2 in L2 via attribute a.
//   Phase 1 flattens L2 into the pair list LP = {(v, contribution of r2) |
//   (a, v) in val(r2)} and sorts it by the referenced DN — the external
//   sort is the source of the m·(|L2|/B)·log term in Theorem 7.1. Phase 2
//   merges LP with L1 (both now in key order) folding contributions into
//   per-r1 witness accumulators; phase 3 is the shared filter scan.
//
// vd (L1 L2 a): keep r1 whose attribute a references some r2 in L2. One
//   extra sort: L1 is flattened to (referenced key, r1 key) pairs, joined
//   against L2 by key to pick up witness contributions, and the resulting
//   (r1 key, contribution) pairs are re-sorted into r1 order.

#ifndef NDQ_EXEC_EMBEDDED_REF_H_
#define NDQ_EXEC_EMBEDDED_REF_H_

#include "exec/common.h"
#include "exec/trace.h"
#include "query/ast.h"

namespace ndq {

/// Evaluates (vd L1 L2 attr [agg]) or (dv L1 L2 attr [agg]). A non-null
/// `trace` receives the operator's counters, including the merge-pass
/// count of the pair-list sorts (Thm 7.1's log factor).
Result<EntryList> EvalEmbeddedRef(Disk* disk, QueryOp op,
                                  const EntryList& l1, const EntryList& l2,
                                  const std::string& attr,
                                  const std::optional<AggSelFilter>& agg,
                                  const ExecOptions& options = {},
                                  OpTrace* trace = nullptr);

}  // namespace ndq

#endif  // NDQ_EXEC_EMBEDDED_REF_H_
