#include "exec/atomic.h"

namespace ndq {

namespace {

template <typename MatchFn>
Result<EntryList> ScanScope(Disk* disk, const EntrySource& store,
                            const Dn& base, Scope scope,
                            const MatchFn& matches, OpTrace* trace) {
  uint64_t scanned = 0;
  const std::string& base_key = base.HierKey();
  std::string start = base_key;
  std::string end;
  switch (scope) {
    case Scope::kBase:
      end = KeyExactEnd(base_key);
      break;
    case Scope::kOne:
    case Scope::kSub:
      end = KeySubtreeEnd(base_key);
      break;
  }
  if (scope == Scope::kBase && base.IsNull()) {
    // The null dn names no entry.
    RunWriter writer(disk, RecordShape::kKeyed);
    return writer.Finish();
  }
  RunWriter writer(disk, RecordShape::kKeyed);
  Status s = store.ScanRange(
      start, end, [&](std::string_view record) -> Status {
        ++scanned;
        NDQ_ASSIGN_OR_RETURN(std::string_view key, PeekEntryKey(record));
        if (scope == Scope::kOne && key != base_key &&
            !KeyIsParent(base_key, key)) {
          return Status::OK();  // deeper descendant: outside scope one
        }
        if (scope == Scope::kSub && !KeyInSubtree(base_key, key)) {
          // The subtree range also covers siblings whose last RDN extends
          // the base's with more pairs ("base" + kHierPairSep + ...).
          return Status::OK();
        }
        NDQ_ASSIGN_OR_RETURN(Entry entry, DeserializeEntry(record));
        if (matches(entry)) NDQ_RETURN_IF_ERROR(writer.Add(record));
        return Status::OK();
      });
  NDQ_RETURN_IF_ERROR(s);
  Result<EntryList> out = writer.Finish();
  if (trace != nullptr && out.ok()) {
    trace->scanned_records = scanned;
    trace->output_records = out->num_records;
    trace->output_pages = out->pages.size();
  }
  return out;
}

}  // namespace

Result<EntryList> EvalAtomic(Disk* disk, const EntrySource& store,
                             const Dn& base, Scope scope,
                             const AtomicFilter& filter, OpTrace* trace) {
  if (trace != nullptr) trace->op = QueryOp::kAtomic;
  return ScanScope(disk, store, base, scope,
                   [&](const Entry& e) { return filter.Matches(e); },
                   trace);
}

Result<EntryList> EvalLdap(Disk* disk, const EntrySource& store,
                           const Dn& base, Scope scope,
                           const LdapFilter& filter, OpTrace* trace) {
  if (trace != nullptr) trace->op = QueryOp::kLdap;
  return ScanScope(disk, store, base, scope,
                   [&](const Entry& e) { return filter.Matches(e); },
                   trace);
}

}  // namespace ndq
