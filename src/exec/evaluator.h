// The bottom-up external-memory query evaluator (Sec. 8.2).
//
// "Each query expression can be evaluated bottom-up ...: first, the atomic
// queries are evaluated, and the resulting entries are sorted by the
// lexicographic ordering on the reverse of their dn's. Next, each operator
// in the query tree is evaluated ... Since each operator gets sorted input
// lists, and computes a sorted output list, no additional sorting of the
// result of an intermediate operator is necessary."
//
// Every intermediate list lives on the simulated disk; each operator uses
// a constant number of page buffers (plus the spillable stacks), so whole-
// query evaluation runs in constant main memory with the I/O bounds of
// Theorems 8.3 (L2: linear) and 8.4 (L3: N log N).
//
// Passing an OpTrace to Evaluate records a per-operator execution trace
// (exec/trace.h) — counters, I/O deltas and wall time for every node —
// which ExplainAnalyze (exec/cost.h) renders against the cost model's
// predictions.

#ifndef NDQ_EXEC_EVALUATOR_H_
#define NDQ_EXEC_EVALUATOR_H_

#include "exec/common.h"
#include "exec/trace.h"
#include "query/ast.h"
#include "store/entry_store.h"

namespace ndq {

/// Per-query evaluation statistics.
struct EvalStats {
  uint64_t operators_evaluated = 0;
  uint64_t atomic_queries = 0;
  /// Cumulative size (records) of all atomic sub-query outputs: the |L| of
  /// Theorem 8.3.
  uint64_t atomic_output_records = 0;
};

/// \brief Evaluates query trees against one directory server's store.
///
/// Each top-level Evaluate pins one snapshot of a mutable store
/// (EntrySource::PinSnapshot) and evaluates every leaf against it, so a
/// query tree always observes ONE store version even while concurrent
/// mutations land — no torn reads across atomic leaves.
class Evaluator {
 public:
  Evaluator(Disk* disk, const EntrySource* store, ExecOptions options = {})
      : disk_(disk), store_(store), options_(options) {}

  /// Evaluates the query; the caller owns (and frees) the returned list.
  /// A non-null `trace` is overwritten with the per-operator execution
  /// trace of this evaluation (one OpTrace node per plan node).
  Result<EntryList> Evaluate(const Query& query, OpTrace* trace = nullptr);

  /// Convenience: evaluates and deserializes the result entries.
  Result<std::vector<Entry>> EvaluateToEntries(const Query& query,
                                               OpTrace* trace = nullptr);

  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EvalStats(); }

 private:
  /// RAII: the outermost Evaluate pins the store snapshot; recursive
  /// operand evaluations reuse it (depth-counted, this class is
  /// single-threaded).
  class PinScope {
   public:
    explicit PinScope(Evaluator* ev) : ev_(ev) {
      if (ev_->depth_++ == 0 && ev_->store_ != nullptr) {
        ev_->snapshot_ = ev_->store_->PinSnapshot();
      }
    }
    ~PinScope() {
      if (--ev_->depth_ == 0) ev_->snapshot_.reset();
    }

   private:
    Evaluator* ev_;
  };

  /// The store leaves read: the pinned snapshot when one exists (mutable
  /// store mid-query), the raw store otherwise.
  const EntrySource* active_store() const {
    return snapshot_ != nullptr ? snapshot_.get() : store_;
  }

  Result<EntryList> EvaluateNode(const Query& query, OpTrace* trace);

  Disk* disk_;
  const EntrySource* store_;
  ExecOptions options_;
  EvalStats stats_;
  std::shared_ptr<const EntrySource> snapshot_;
  int depth_ = 0;
};

/// Simple aggregate selection "(g L1 AggSelFilter)" over a materialized
/// list (Theorem 6.1: at most two scans + output). Exposed for benches.
Result<EntryList> EvalSimpleAgg(Disk* disk, const EntryList& l1,
                                const AggSelFilter& filter,
                                OpTrace* trace = nullptr);

}  // namespace ndq

#endif  // NDQ_EXEC_EVALUATOR_H_
