// Per-operator execution tracing: the measured counterpart of the
// estimate-side cost model (exec/cost.h).
//
// Every theorem in the paper bounds the page I/O of ONE operator (boolean
// merges: Thm 4.1-style linear scans; hierarchical selection: Thms 5.1 /
// 6.2; simple aggregate selection: Thm 6.1; embedded references: Thm 7.1;
// whole queries: Thms 8.3 / 8.4). Whole-query IoStats cannot show *which*
// operator violates its bound; an OpTrace tree can. The evaluators build
// one OpTrace node per plan operator, recording input/output record and
// page counts, the I/O delta attributed to the node's subtree, the peak
// depth and spill count of the hierarchy stacks, and wall time.
//
// The same tree drives three consumers:
//   * ExplainAnalyze (exec/cost.h): renders the estimate and the
//     measurement side by side, per node — ndqsh's `.explain analyze`;
//   * VerifyTheoremBounds (below): asserts each traced operator stayed
//     within its paper bound, used by tests/exec and bench/;
//   * regression hunting: any later perf PR diffs two traces node by
//     node instead of two whole-query totals.

#ifndef NDQ_EXEC_TRACE_H_
#define NDQ_EXEC_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/ast.h"
#include "storage/io_stats.h"

namespace ndq {

/// \brief Measured execution record for one plan operator.
///
/// Counters that no operator of the node's kind touches stay zero (e.g.
/// peak_stack_items for a boolean merge). `io` and `wall_micros` are
/// CUMULATIVE over the node's subtree — mirroring CostEstimate, which is
/// also cumulative — so the root holds the whole-query totals; SelfIo()
/// recovers the node-exclusive delta.
struct OpTrace {
  /// Operator rendering, aligned with ExplainPlan's labels.
  std::string label;
  QueryOp op = QueryOp::kAtomic;

  /// Sum of operand records/pages (operator nodes; 0 for leaves).
  uint64_t input_records = 0;
  uint64_t input_pages = 0;
  /// The node's result list.
  uint64_t output_records = 0;
  uint64_t output_pages = 0;

  /// Atomic leaves: store records visited by the range scan (>= matched).
  uint64_t scanned_records = 0;
  /// Hierarchy operators: peak item count / spill+reload events of the
  /// SpillableStack (Thm 5.1's amortization target).
  uint64_t peak_stack_items = 0;
  uint64_t stack_spills = 0;
  /// Embedded-reference operators: merge passes of the external sorts
  /// (Thm 7.1's log factor made visible).
  uint64_t sort_merge_passes = 0;
  /// Distributed atomic nodes: payload shipped to the coordinator.
  uint64_t shipped_records = 0;
  uint64_t shipped_bytes = 0;
  /// Distributed atomic nodes: transient-failure handling. `retries` is
  /// the number of re-issued per-server attempts beyond the first;
  /// `degraded_shards` counts servers whose contribution is MISSING from
  /// this node's output (unavailable after all retries — the query
  /// degraded instead of failing; see NetStats::last_warnings).
  uint64_t retries = 0;
  uint64_t degraded_shards = 0;
  /// Distributed atomic nodes: times a shard-level request abandoned one
  /// replica for a sibling (refusals by down replicas and exhausted
  /// retries both count; see NetStats::failovers).
  uint64_t failovers = 0;
  /// Atomic leaves: 1 when the leaf was answered by an attribute-index
  /// probe (index/attr_index.h via the engine's index hook) instead of
  /// the range scan.
  uint64_t index_probes = 0;
  /// Root node only: rewrites the cost-based optimizer applied to the
  /// plan before evaluation (query/optimize.h; OptimizeStats::Total).
  uint64_t plan_rewrites = 0;
  /// Operand-cache traffic at this node (parallel evaluator only): a hit
  /// means the leaf's sorted list was copied out of the cache instead of
  /// re-scanning the store; a miss means it was evaluated and inserted.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Thread that evaluated this node: 0 = the query's calling thread,
  /// 1..N = pool workers (ThreadPool::current_worker_id()).
  uint32_t worker = 0;
  /// Async read io-depth in effect for the query (root node only; 0 =
  /// synchronous I/O). The per-node async counters live in `io`
  /// (prefetch_hits / prefetch_wasted / io_wait_us).
  uint64_t io_depth = 0;

  /// Page I/O of the node's subtree, summed over every disk the
  /// evaluation touched (scratch + store, or all servers).
  IoStats io;
  /// Wall time of the node's subtree.
  double wall_micros = 0;

  /// One child per operand, in q1/q2/q3 order (same shape as the Query).
  std::vector<OpTrace> children;

  /// I/O performed by this node alone: io minus the children's io.
  IoStats SelfIo() const;
  uint64_t SelfTransfers() const { return SelfIo().TotalTransfers(); }

  /// Nodes in this subtree (== Query::NodeCount() of the traced query).
  size_t NodeCount() const;

  /// Number of DISTINCT threads that evaluated nodes of this subtree —
  /// the thread occupancy EXPLAIN ANALYZE reports per operator. 1 under
  /// sequential evaluation.
  size_t SubtreeWorkers() const;

  /// Indented tree rendering (measurement side only; ExplainAnalyze in
  /// exec/cost.h renders estimates alongside). One line per node:
  ///   <label>  {in=... out=... reads=... writes=... ... wall_us=...}
  /// Keys are stable and machine-parsable; wall_us is always last.
  std::string ToString() const;
};

/// Operator label shared by ExplainPlan, ExplainAnalyze and the traced
/// evaluators, so the estimate and measurement renderings line up node
/// for node.
std::string QueryNodeLabel(const Query& q);

/// Fills `trace->children` with label/op-only skeleton nodes mirroring
/// `q`'s subtree. Used when a cached operand list replaces a subtree's
/// evaluation (operand-cache hits on shared sub-plans): EXPLAIN ANALYZE
/// keeps the plan shape, and the skeletons' zero I/O records that nothing
/// under the hit actually ran.
void FillTraceSkeleton(const Query& q, OpTrace* trace);

/// \brief Checks every operator in the trace against its paper I/O bound.
///
/// Bounds are per-node (SelfIo) and expressed in the trace's own measured
/// input/output page counts, with generous constant factors — they catch
/// complexity-class regressions (a merge gone quadratic, a sort pass
/// explosion), not constant-factor drift:
///   * boolean and/or/diff:     <= 3*(in+out) + 8   (linear merge)
///   * p/a/ac (forward pass):   <= 8*(in+out) + 16  (merge+annotate+filter,
///                                                   spills amortized)
///   * c/d/dc (backward pass):  <= 24*(in+out) + 16 (adds materialized
///                                                   merge + 2 reversals
///                                                   over label-inflated
///                                                   streams)
///   * g (simple agg):          <= 8*(in+out) + 16  (<= 3 scans + output)
///   * vd/dv:                   <= 8*(in+out)*(1+log2(in)) + 32 (sort term)
///   * atomic leaves:           writes <= 2*out + 4 (reads are the store
///                              range scan, bounded by test (a) against
///                              the cost model instead)
/// Returns one human-readable violation string per failed node; empty
/// means every operator stayed within its theorem.
std::vector<std::string> VerifyTheoremBounds(const OpTrace& trace);

}  // namespace ndq

#endif  // NDQ_EXEC_TRACE_H_
