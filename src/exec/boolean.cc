#include "exec/boolean.h"

namespace ndq {

Result<EntryList> EvalBoolean(Disk* disk, QueryOp op, const EntryList& l1,
                              const EntryList& l2, OpTrace* trace) {
  if (op != QueryOp::kAnd && op != QueryOp::kOr && op != QueryOp::kDiff) {
    return Status::InvalidArgument("EvalBoolean: not a boolean operator");
  }
  LabeledMerge merge(disk, &l1, &l2, nullptr);
  RunWriter writer(disk, RecordShape::kKeyed);
  LabeledRecord rec;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, merge.Next(&rec));
    if (!more) break;
    bool in1 = (rec.labels & kInL1) != 0;
    bool in2 = (rec.labels & kInL2) != 0;
    bool keep = false;
    switch (op) {
      case QueryOp::kAnd:
        keep = in1 && in2;
        break;
      case QueryOp::kOr:
        keep = in1 || in2;
        break;
      case QueryOp::kDiff:
        keep = in1 && !in2;
        break;
      default:
        break;
    }
    if (keep) NDQ_RETURN_IF_ERROR(writer.Add(rec.entry_record));
  }
  Result<EntryList> out = writer.Finish();
  if (trace != nullptr && out.ok()) {
    trace->op = op;
    trace->input_records = l1.num_records + l2.num_records;
    trace->input_pages = l1.pages.size() + l2.pages.size();
    trace->output_records = out->num_records;
    trace->output_pages = out->pages.size();
  }
  return out;
}

}  // namespace ndq
