#include "exec/operand_cache.h"

#include "query/fingerprint.h"

namespace ndq {

std::string OperandCacheKey(const Query& query) {
  // Since the batch engine (PR 5), cache keys ARE plan fingerprints
  // (query/fingerprint.h): sound for any subtree, not just leaves, so
  // one cache serves leaf reuse within a query and cross-query sub-plan
  // sharing across a batch.
  return QueryFingerprint(query);
}

OperandCache::OperandCache(Disk* disk, size_t capacity_pages)
    : disk_(disk), capacity_pages_(capacity_pages) {}

OperandCache::~OperandCache() { Clear(); }

Result<EntryList> OperandCache::CopyList(const EntryList& src) {
  // Copies preserve the source's exact page format, like ReverseRun.
  RunWriter writer(disk_, src.format);
  RunReader reader(disk_, src);
  std::string rec;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(bool more, reader.Next(&rec));
    if (!more) break;
    NDQ_RETURN_IF_ERROR(writer.Add(rec));
  }
  return writer.Finish();
}

Result<bool> OperandCache::Lookup(const std::string& key, EntryList* out) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return false;
    }
    entry = it->second;
    ++entry->pins;
    lru_.splice(lru_.end(), lru_, entry->lru_it);  // most recently used
    ++stats_.hits;
  }
  Result<EntryList> copy = CopyList(entry->list);
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool last_unpin = --entry->pins == 0;
    if (!copy.ok()) {
      // The copy-out failed (e.g. an injected read fault). Evict the
      // entry — a cache that served an unreadable list once must not
      // serve it again — and fall through to report a miss so the
      // caller recomputes. If other copy-outs are still pinning the
      // entry, eviction dooms it; FreeRun empties the run when it fires,
      // so the doomed-path free after the last unpin finds an empty run
      // and never double-frees.
      ++stats_.copy_failures;
      --stats_.hits;  // reclassified: this lookup ends up a miss
      ++stats_.misses;
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second == entry) {
        EvictLocked(it);
        ++stats_.evictions;
      }
    }
    if (last_unpin && entry->doomed) {
      FreeRun(disk_, &entry->list).ok();
    }
  }
  if (!copy.ok()) return false;
  *out = copy.TakeValue();
  return true;
}

Status OperandCache::Insert(const std::string& key, const EntryList& list) {
  if (list.pages.size() > capacity_pages_) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.oversize_rejects;
    return Status::OK();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.count(key) != 0) return Status::OK();
  }
  // Copy outside the lock; a racing insert of the same key can slip in,
  // in which case the loser's copy is freed below.
  Result<EntryList> copied = CopyList(list);
  if (!copied.ok()) {
    // Partial copy pages were reclaimed by the RunWriter. Nothing is
    // inserted; the caller's own list is untouched and the query goes on.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.copy_failures;
    return Status::OK();
  }
  EntryList copy = copied.TakeValue();
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(key) != 0) {
    FreeRun(disk_, &copy).ok();
    return Status::OK();
  }
  // Evict from the LRU front until the copy fits. Pinned entries are
  // skipped (their pages stay resident until the in-flight copy-out
  // finishes); if only pinned entries remain, admit over capacity rather
  // than fail — the overshoot is transient.
  auto lru_it = lru_.begin();
  while (resident_pages_ + copy.pages.size() > capacity_pages_ &&
         lru_it != lru_.end()) {
    auto it = entries_.find(*lru_it);
    ++lru_it;  // advance before EvictLocked erases the list node
    if (it->second->pins > 0) continue;
    EvictLocked(it);
    ++stats_.evictions;
  }
  auto entry = std::make_shared<Entry>();
  entry->list = copy;
  lru_.push_back(key);
  entry->lru_it = std::prev(lru_.end());
  entries_.emplace(key, std::move(entry));
  resident_pages_ += copy.pages.size();
  ++stats_.insertions;
  return Status::OK();
}

void OperandCache::EvictLocked(
    std::unordered_map<std::string, std::shared_ptr<Entry>>::iterator it) {
  std::shared_ptr<Entry>& entry = it->second;
  resident_pages_ -= entry->list.pages.size();
  lru_.erase(entry->lru_it);
  if (entry->pins > 0) {
    entry->doomed = true;  // last unpin frees the run
  } else {
    FreeRun(disk_, &entry->list).ok();
  }
  entries_.erase(it);
}

void OperandCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!entries_.empty()) EvictLocked(entries_.begin());
}

OperandCacheStats OperandCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  OperandCacheStats s = stats_;
  s.resident_pages = resident_pages_;
  s.resident_entries = entries_.size();
  return s;
}

}  // namespace ndq
