// Directory entries (Def. 3.2): the basic unit of information.

#ifndef NDQ_CORE_ENTRY_H_
#define NDQ_CORE_ENTRY_H_

#include <map>
#include <string>
#include <vector>

#include "core/dn.h"
#include "core/schema.h"
#include "core/value.h"

namespace ndq {

/// \brief A directory entry: a distinguished name plus a set of
/// (attribute, value) pairs.
///
/// An entry may belong to several classes (the values of its objectClass
/// attribute) and an attribute may have several values — the two forms of
/// heterogeneity Sec. 3.5 calls out. Values are kept sorted and unique per
/// attribute, so val(r) is a set of pairs as in the formal model.
class Entry {
 public:
  Entry() = default;
  explicit Entry(Dn dn) : dn_(std::move(dn)) {}

  const Dn& dn() const { return dn_; }
  const std::string& HierKey() const { return dn_.HierKey(); }

  /// Inserts (attr, value) into val(r); duplicates are ignored.
  void AddValue(const std::string& attr, Value value);

  /// Convenience inserters.
  void AddString(const std::string& attr, std::string v) {
    AddValue(attr, Value::String(std::move(v)));
  }
  void AddInt(const std::string& attr, int64_t v) {
    AddValue(attr, Value::Int(v));
  }
  void AddDnRef(const std::string& attr, const Dn& target) {
    AddValue(attr, Value::DnRef(target.ToString()));
  }
  void AddClass(const std::string& cls) {
    AddString(kObjectClassAttr, cls);
  }

  /// Removes one (attr, value) pair; returns false if absent.
  bool RemoveValue(const std::string& attr, const Value& value);
  /// Removes all values of `attr`; returns the number removed.
  size_t RemoveAttribute(const std::string& attr);

  bool HasAttribute(const std::string& attr) const;
  /// The (sorted) values of `attr`, or nullptr if the entry has none.
  const std::vector<Value>* Values(const std::string& attr) const;
  /// True iff (attr, value) is in val(r).
  bool HasPair(const std::string& attr, const Value& value) const;

  /// The classes of the entry = the values of its objectClass attribute.
  std::vector<std::string> Classes() const;
  bool HasClass(const std::string& cls) const;

  /// Total number of (attribute, value) pairs in val(r).
  size_t NumPairs() const;

  const std::map<std::string, std::vector<Value>>& attributes() const {
    return attrs_;
  }

  /// Multi-line rendering: the DN followed by "attr: value" lines, in the
  /// style of the paper's figures (and of LDIF).
  std::string ToString() const;

  bool operator==(const Entry& other) const {
    return dn_ == other.dn_ && attrs_ == other.attrs_;
  }

 private:
  Dn dn_;
  std::map<std::string, std::vector<Value>> attrs_;
};

}  // namespace ndq

#endif  // NDQ_CORE_ENTRY_H_
