#include "core/schema.h"

#include <cstdlib>

#include "core/dn.h"
#include "core/entry.h"

namespace ndq {

Schema::Schema() { attributes_[kObjectClassAttr] = TypeKind::kString; }

Status Schema::AddAttribute(const std::string& name, TypeKind type) {
  if (name.empty()) return Status::InvalidArgument("empty attribute name");
  auto it = attributes_.find(name);
  if (it != attributes_.end()) {
    if (it->second != type) {
      return Status::AlreadyExists("attribute " + name +
                                   " already declared with type " +
                                   TypeKindToString(it->second));
    }
    return Status::OK();
  }
  attributes_[name] = type;
  return Status::OK();
}

Status Schema::AddClass(const std::string& name,
                        const std::vector<std::string>& allowed_attrs) {
  if (name.empty()) return Status::InvalidArgument("empty class name");
  std::set<std::string> attrs;
  for (const std::string& a : allowed_attrs) {
    if (!HasAttribute(a)) {
      return Status::NotFound("class " + name +
                              " references undeclared attribute " + a);
    }
    attrs.insert(a);
  }
  attrs.insert(kObjectClassAttr);
  classes_[name] = std::move(attrs);
  return Status::OK();
}

bool Schema::HasAttribute(const std::string& name) const {
  return attributes_.find(name) != attributes_.end();
}

bool Schema::HasClass(const std::string& name) const {
  return classes_.find(name) != classes_.end();
}

Result<TypeKind> Schema::AttributeType(const std::string& name) const {
  auto it = attributes_.find(name);
  if (it == attributes_.end()) {
    return Status::NotFound("undeclared attribute: " + name);
  }
  return it->second;
}

Result<std::set<std::string>> Schema::AllowedAttributes(
    const std::string& name) const {
  auto it = classes_.find(name);
  if (it == classes_.end()) {
    return Status::NotFound("undeclared class: " + name);
  }
  return it->second;
}

bool Schema::AttributeAllowedForAny(
    const std::string& attr, const std::vector<std::string>& classes) const {
  if (attr == kObjectClassAttr) return true;
  for (const std::string& c : classes) {
    auto it = classes_.find(c);
    if (it != classes_.end() && it->second.count(attr) > 0) return true;
  }
  return false;
}

Status Schema::ValidateEntry(const Entry& entry) const {
  if (entry.dn().IsNull()) {
    return Status::InvalidArgument("entry has null dn");
  }
  // Def. 3.2(b): class(r) non-empty and drawn from C.
  std::vector<std::string> classes = entry.Classes();
  if (classes.empty()) {
    return Status::InvalidArgument("entry " + entry.dn().ToString() +
                                   " has no objectClass");
  }
  for (const std::string& c : classes) {
    if (!HasClass(c)) {
      return Status::NotFound("entry " + entry.dn().ToString() +
                              " has undeclared class " + c);
    }
  }
  // Def. 3.2(c)(1): every pair is allowed and correctly typed.
  for (const auto& [attr, vals] : entry.attributes()) {
    auto type_it = attributes_.find(attr);
    if (type_it == attributes_.end()) {
      return Status::NotFound("entry " + entry.dn().ToString() +
                              " has undeclared attribute " + attr);
    }
    if (!AttributeAllowedForAny(attr, classes)) {
      return Status::InvalidArgument("attribute " + attr +
                                     " not allowed for classes of entry " +
                                     entry.dn().ToString());
    }
    for (const Value& v : vals) {
      if (v.kind() != type_it->second) {
        return Status::InvalidArgument(
            "value of wrong type for attribute " + attr + " in entry " +
            entry.dn().ToString());
      }
    }
  }
  // Def. 3.2(d)(ii): rdn(r) is a subset of val(r).
  for (const auto& [attr, text] : entry.dn().rdn().pairs()) {
    auto type_it = attributes_.find(attr);
    if (type_it == attributes_.end()) {
      return Status::NotFound("rdn attribute " + attr + " undeclared");
    }
    Result<Value> v = ParseValueAs(type_it->second, text);
    if (!v.ok()) return v.status();
    if (!entry.HasPair(attr, *v)) {
      return Status::InvalidArgument(
          "rdn pair (" + attr + ", " + text + ") missing from val(r) of " +
          entry.dn().ToString());
    }
  }
  return Status::OK();
}

Result<Value> ParseValueAs(TypeKind type, const std::string& text) {
  switch (type) {
    case TypeKind::kInt: {
      if (text.empty()) return Status::InvalidArgument("empty int literal");
      char* end = nullptr;
      errno = 0;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end != text.c_str() + text.size()) {
        return Status::InvalidArgument("bad int literal: " + text);
      }
      return Value::Int(v);
    }
    case TypeKind::kString:
      return Value::String(text);
    case TypeKind::kDn: {
      NDQ_ASSIGN_OR_RETURN(Dn dn, Dn::Parse(text));
      return Value::DnRef(dn.ToString());
    }
  }
  return Status::InvalidArgument("unknown type kind");
}

}  // namespace ndq
