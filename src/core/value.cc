#include "core/value.h"

namespace ndq {

const char* TypeKindToString(TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt:
      return "int";
    case TypeKind::kString:
      return "string";
    case TypeKind::kDn:
      return "dn";
  }
  return "unknown";
}

Result<TypeKind> TypeKindFromString(const std::string& name) {
  if (name == "int") return TypeKind::kInt;
  if (name == "string") return TypeKind::kString;
  if (name == "dn" || name == "distinguishedName") return TypeKind::kDn;
  return Status::InvalidArgument("unknown type name: " + name);
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(int_);
  return str_;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  if (is_int()) return int_ == other.int_;
  return str_ == other.str_;
}

bool Value::operator<(const Value& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  if (is_int()) return int_ < other.int_;
  return str_ < other.str_;
}

}  // namespace ndq
