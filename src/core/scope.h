// Search scopes for atomic queries (Sec. 4.1).

#ifndef NDQ_CORE_SCOPE_H_
#define NDQ_CORE_SCOPE_H_

#include <string>

#include "core/status.h"

namespace ndq {

/// The scope of an atomic query relative to its base entry (Def. 4.1).
/// Note that, following the paper (and unlike LDAP's onelevel), kOne and
/// kSub both *include* the base entry itself.
enum class Scope {
  kBase,  ///< only the base entry
  kOne,   ///< the base entry and its children
  kSub,   ///< the base entry and all its descendants
};

inline const char* ScopeToString(Scope s) {
  switch (s) {
    case Scope::kBase:
      return "base";
    case Scope::kOne:
      return "one";
    case Scope::kSub:
      return "sub";
  }
  return "?";
}

inline Result<Scope> ScopeFromString(const std::string& s) {
  if (s == "base") return Scope::kBase;
  if (s == "one") return Scope::kOne;
  if (s == "sub") return Scope::kSub;
  return Status::InvalidArgument("unknown scope: " + s);
}

}  // namespace ndq

#endif  // NDQ_CORE_SCOPE_H_
