// gtest helpers for Status / Result<T> assertions.
//
// Replaces the ad-hoc `ASSERT_TRUE(r.ok()) << r.status().ToString()`
// pattern: the macros below print the full status on failure without the
// caller spelling the stream-out, and the code matchers make negative
// tests say WHICH error they expect instead of just "not ok".
//
//   NDQ_ASSERT_OK(store.Put(entry));
//   NDQ_ASSERT_OK_AND_ASSIGN(auto entries, session.Query("(...)"));
//   NDQ_EXPECT_STATUS(outcome.status, StatusCode::kResourceExhausted);
//
// Header-only and gtest-dependent: include from tests only, never from
// src/.

#ifndef NDQ_CORE_STATUS_MATCHERS_H_
#define NDQ_CORE_STATUS_MATCHERS_H_

#include <gtest/gtest.h>

#include "core/status.h"

namespace ndq {
namespace testing_internal {

// Each helper is overloaded for Status and Result<T>, so every macro
// works uniformly on both.
inline ::testing::AssertionResult IsOkImpl(const char* expr,
                                           const Status& status) {
  if (status.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << expr << " is not OK: " << status.ToString();
}

template <typename T>
::testing::AssertionResult IsOkImpl(const char* expr, const Result<T>& r) {
  return IsOkImpl(expr, r.status());
}

inline ::testing::AssertionResult HasCodeImpl(const char* expr,
                                              const char* /*code_expr*/,
                                              const Status& status,
                                              StatusCode code) {
  if (status.code() == code) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << expr << " has code " << StatusCodeToString(status.code())
         << " (\"" << status.message() << "\"), expected "
         << StatusCodeToString(code);
}

template <typename T>
::testing::AssertionResult HasCodeImpl(const char* expr,
                                       const char* code_expr,
                                       const Result<T>& r, StatusCode code) {
  return HasCodeImpl(expr, code_expr, r.status(), code);
}

}  // namespace testing_internal
}  // namespace ndq

/// Asserts/expects that a Status or Result<T> expression is OK, printing
/// the full status on failure.
#define NDQ_ASSERT_OK(expr) \
  ASSERT_PRED_FORMAT1(::ndq::testing_internal::IsOkImpl, (expr))
#define NDQ_EXPECT_OK(expr) \
  EXPECT_PRED_FORMAT1(::ndq::testing_internal::IsOkImpl, (expr))

/// Asserts/expects a specific StatusCode on a Status or Result<T>.
#define NDQ_ASSERT_STATUS(expr, code) \
  ASSERT_PRED_FORMAT2(::ndq::testing_internal::HasCodeImpl, (expr), (code))
#define NDQ_EXPECT_STATUS(expr, code) \
  EXPECT_PRED_FORMAT2(::ndq::testing_internal::HasCodeImpl, (expr), (code))

/// Evaluates a Result<T> expression, asserts it is OK, and moves its
/// value into `lhs` (which may be a declaration: `auto x, ...`).
#define NDQ_ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, rexpr)            \
  auto tmp = (rexpr);                                             \
  ASSERT_PRED_FORMAT1(::ndq::testing_internal::IsOkImpl, tmp);    \
  lhs = tmp.TakeValue()
#define NDQ_ASSERT_OK_AND_ASSIGN(lhs, rexpr)                     \
  NDQ_ASSERT_OK_AND_ASSIGN_IMPL(                                 \
      NDQ_ASSIGN_OR_RETURN_NAME(_ndq_assert_result_, __LINE__), lhs, rexpr)

#endif  // NDQ_CORE_STATUS_MATCHERS_H_
