// Status / Result error-handling primitives for ndq.
//
// ndq follows the Arrow/RocksDB convention: fallible functions return a
// Status (or a Result<T> when they produce a value) instead of throwing.
// Exceptions never cross public API boundaries.

#ifndef NDQ_CORE_STATUS_H_
#define NDQ_CORE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ndq {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kNotSupported,
  kResourceExhausted,
  kInternal,
  kUnavailable,
};

/// Returns a human-readable name for a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief The outcome of a fallible operation.
///
/// A Status is cheap to copy in the OK case (no allocation) and carries a
/// code plus message otherwise. Use the factory functions
/// (Status::InvalidArgument(...) etc.) to construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// A transient failure: the operation may succeed if retried (injected
  /// I/O faults, unreachable directory servers).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Returns a copy with "<context>: " prepended to the message (no-op
  /// for OK statuses).
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Status(code_, context + ": " + message_);
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Access the value with ValueOrDie()/operator* only after checking ok();
/// violations abort in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  T& ValueOrDie() {
    assert(ok());
    return *value_;
  }
  const T& ValueOrDie() const {
    assert(ok());
    return *value_;
  }

  T& operator*() { return ValueOrDie(); }
  const T& operator*() const { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

  /// Moves the value out of the Result.
  T TakeValue() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define NDQ_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::ndq::Status _ndq_status = (expr);           \
    if (!_ndq_status.ok()) return _ndq_status;    \
  } while (false)

/// Evaluates a Result expression; on error propagates the Status, otherwise
/// moves the value into `lhs`.
#define NDQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr)      \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = tmp.TakeValue()

#define NDQ_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define NDQ_ASSIGN_OR_RETURN_NAME(a, b) NDQ_ASSIGN_OR_RETURN_CONCAT(a, b)
#define NDQ_ASSIGN_OR_RETURN(lhs, rexpr) \
  NDQ_ASSIGN_OR_RETURN_IMPL(             \
      NDQ_ASSIGN_OR_RETURN_NAME(_ndq_result_, __LINE__), lhs, rexpr)

}  // namespace ndq

#endif  // NDQ_CORE_STATUS_H_
