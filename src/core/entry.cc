#include "core/entry.h"

#include <algorithm>

#include "core/schema.h"

namespace ndq {

void Entry::AddValue(const std::string& attr, Value value) {
  std::vector<Value>& vals = attrs_[attr];
  auto it = std::lower_bound(vals.begin(), vals.end(), value);
  if (it != vals.end() && *it == value) return;  // set semantics
  vals.insert(it, std::move(value));
}

bool Entry::RemoveValue(const std::string& attr, const Value& value) {
  auto mit = attrs_.find(attr);
  if (mit == attrs_.end()) return false;
  std::vector<Value>& vals = mit->second;
  auto it = std::lower_bound(vals.begin(), vals.end(), value);
  if (it == vals.end() || !(*it == value)) return false;
  vals.erase(it);
  if (vals.empty()) attrs_.erase(mit);
  return true;
}

size_t Entry::RemoveAttribute(const std::string& attr) {
  auto mit = attrs_.find(attr);
  if (mit == attrs_.end()) return 0;
  size_t n = mit->second.size();
  attrs_.erase(mit);
  return n;
}

bool Entry::HasAttribute(const std::string& attr) const {
  return attrs_.find(attr) != attrs_.end();
}

const std::vector<Value>* Entry::Values(const std::string& attr) const {
  auto it = attrs_.find(attr);
  if (it == attrs_.end()) return nullptr;
  return &it->second;
}

bool Entry::HasPair(const std::string& attr, const Value& value) const {
  const std::vector<Value>* vals = Values(attr);
  if (vals == nullptr) return false;
  return std::binary_search(vals->begin(), vals->end(), value);
}

std::vector<std::string> Entry::Classes() const {
  std::vector<std::string> out;
  const std::vector<Value>* vals = Values(kObjectClassAttr);
  if (vals == nullptr) return out;
  out.reserve(vals->size());
  for (const Value& v : *vals) {
    if (v.is_string()) out.push_back(v.AsString());
  }
  return out;
}

bool Entry::HasClass(const std::string& cls) const {
  return HasPair(kObjectClassAttr, Value::String(cls));
}

size_t Entry::NumPairs() const {
  size_t n = 0;
  for (const auto& [attr, vals] : attrs_) n += vals.size();
  return n;
}

std::string Entry::ToString() const {
  std::string out = "dn: " + dn_.ToString() + "\n";
  for (const auto& [attr, vals] : attrs_) {
    for (const Value& v : vals) {
      out += attr;
      out += ": ";
      out += v.ToString();
      out += '\n';
    }
  }
  return out;
}

}  // namespace ndq
