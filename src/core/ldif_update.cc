#include "core/ldif_update.h"

#include <sstream>

namespace ndq {

namespace {

std::string TrimWs(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return std::string();
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// Splits the text into blank-line-separated records of trimmed lines.
std::vector<std::vector<std::string>> SplitRecords(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::string t = TrimWs(line);
    if (t.empty()) {
      if (!current.empty()) records.push_back(std::move(current));
      current.clear();
      continue;
    }
    if (t[0] == '#') continue;
    current.push_back(std::move(t));
  }
  if (!current.empty()) records.push_back(std::move(current));
  return records;
}

Result<std::pair<std::string, std::string>> SplitAttrLine(
    const std::string& line) {
  size_t colon = line.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("LDIF line missing ':': " + line);
  }
  return std::make_pair(TrimWs(line.substr(0, colon)),
                        TrimWs(line.substr(colon + 1)));
}

Result<LdifChange> ParseRecord(const Schema& schema,
                               const std::vector<std::string>& lines) {
  NDQ_ASSIGN_OR_RETURN(auto dn_kv, SplitAttrLine(lines[0]));
  if (dn_kv.first != "dn") {
    return Status::InvalidArgument("change record must start with dn:");
  }
  LdifChange change;
  NDQ_ASSIGN_OR_RETURN(change.dn, Dn::Parse(dn_kv.second));

  size_t i = 1;
  change.type = LdifChange::Type::kAdd;
  if (i < lines.size()) {
    NDQ_ASSIGN_OR_RETURN(auto kv, SplitAttrLine(lines[i]));
    if (kv.first == "changetype") {
      if (kv.second == "add") {
        change.type = LdifChange::Type::kAdd;
      } else if (kv.second == "delete") {
        change.type = LdifChange::Type::kDelete;
      } else if (kv.second == "modify") {
        change.type = LdifChange::Type::kModify;
      } else {
        return Status::InvalidArgument("unknown changetype: " + kv.second);
      }
      ++i;
    }
  }

  switch (change.type) {
    case LdifChange::Type::kDelete:
      if (i != lines.size()) {
        return Status::InvalidArgument(
            "delete record has trailing content for " +
            change.dn.ToString());
      }
      return change;
    case LdifChange::Type::kAdd: {
      change.entry = Entry(change.dn);
      for (; i < lines.size(); ++i) {
        NDQ_ASSIGN_OR_RETURN(auto kv, SplitAttrLine(lines[i]));
        NDQ_ASSIGN_OR_RETURN(TypeKind type, schema.AttributeType(kv.first));
        NDQ_ASSIGN_OR_RETURN(Value v, ParseValueAs(type, kv.second));
        change.entry.AddValue(kv.first, std::move(v));
      }
      return change;
    }
    case LdifChange::Type::kModify: {
      while (i < lines.size()) {
        NDQ_ASSIGN_OR_RETURN(auto op_kv, SplitAttrLine(lines[i]));
        LdifChange::Modification mod;
        if (op_kv.first == "add") {
          mod.op = LdifChange::ModOp::kAdd;
        } else if (op_kv.first == "delete") {
          mod.op = LdifChange::ModOp::kDelete;
        } else if (op_kv.first == "replace") {
          mod.op = LdifChange::ModOp::kReplace;
        } else {
          return Status::InvalidArgument("expected add/delete/replace, got " +
                                         op_kv.first);
        }
        mod.attr = op_kv.second;
        NDQ_ASSIGN_OR_RETURN(TypeKind type, schema.AttributeType(mod.attr));
        ++i;
        while (i < lines.size() && lines[i] != "-") {
          NDQ_ASSIGN_OR_RETURN(auto kv, SplitAttrLine(lines[i]));
          if (kv.first != mod.attr) {
            return Status::InvalidArgument(
                "modification values must use attribute " + mod.attr);
          }
          NDQ_ASSIGN_OR_RETURN(Value v, ParseValueAs(type, kv.second));
          mod.values.push_back(std::move(v));
          ++i;
        }
        if (i < lines.size()) ++i;  // consume '-'
        change.mods.push_back(std::move(mod));
      }
      if (change.mods.empty()) {
        return Status::InvalidArgument("modify record with no operations");
      }
      return change;
    }
  }
  return Status::Internal("unreachable changetype");
}

Status ApplyOne(const LdifChange& change, UpdateTarget* target) {
  switch (change.type) {
    case LdifChange::Type::kAdd:
      return target->AddEntry(change.entry);
    case LdifChange::Type::kDelete:
      return target->DeleteEntry(change.dn);
    case LdifChange::Type::kModify: {
      NDQ_ASSIGN_OR_RETURN(std::optional<Entry> current,
                           target->GetEntry(change.dn));
      if (!current.has_value()) {
        return Status::NotFound("modify target missing: " +
                                change.dn.ToString());
      }
      Entry entry = std::move(*current);
      for (const LdifChange::Modification& mod : change.mods) {
        switch (mod.op) {
          case LdifChange::ModOp::kAdd:
            for (const Value& v : mod.values) entry.AddValue(mod.attr, v);
            break;
          case LdifChange::ModOp::kDelete:
            if (mod.values.empty()) {
              entry.RemoveAttribute(mod.attr);
            } else {
              for (const Value& v : mod.values) {
                entry.RemoveValue(mod.attr, v);
              }
            }
            break;
          case LdifChange::ModOp::kReplace:
            entry.RemoveAttribute(mod.attr);
            for (const Value& v : mod.values) entry.AddValue(mod.attr, v);
            break;
        }
      }
      return target->ReplaceEntry(std::move(entry));
    }
  }
  return Status::Internal("unreachable changetype");
}

}  // namespace

Result<std::vector<LdifChange>> ParseLdifChanges(const Schema& schema,
                                                 const std::string& text) {
  std::vector<LdifChange> changes;
  for (const auto& record : SplitRecords(text)) {
    NDQ_ASSIGN_OR_RETURN(LdifChange change, ParseRecord(schema, record));
    changes.push_back(std::move(change));
  }
  return changes;
}

Result<size_t> ApplyLdifChanges(const Schema& schema,
                                const std::string& text,
                                UpdateTarget* target) {
  NDQ_ASSIGN_OR_RETURN(std::vector<LdifChange> changes,
                       ParseLdifChanges(schema, text));
  size_t applied = 0;
  for (const LdifChange& change : changes) {
    Status s = ApplyOne(change, target);
    if (!s.ok()) {
      return s.WithContext("change record " + std::to_string(applied + 1) +
                           " (" + change.dn.ToString() + ")");
    }
    ++applied;
  }
  return applied;
}

}  // namespace ndq
