#include "core/dn.h"

#include <algorithm>
#include <cctype>

namespace ndq {

namespace {

bool IsValidAttrName(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0]))) return false;
  for (char c : name) {
    unsigned char u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '-' && c != '_' && c != '.') return false;
  }
  return true;
}

bool HasControlBytes(const std::string& s) {
  for (char c : s) {
    if (static_cast<unsigned char>(c) < 0x20) return true;
  }
  return false;
}

// Splits `text` on unescaped occurrences of `delim`, preserving escape
// sequences in the returned segments.
std::vector<std::string> SplitUnescaped(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::string cur;
  bool escaped = false;
  for (char c : text) {
    if (escaped) {
      cur += c;
      escaped = false;
      continue;
    }
    if (c == '\\') {
      cur += c;
      escaped = true;
      continue;
    }
    if (c == delim) {
      out.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    cur += c;
  }
  out.push_back(std::move(cur));
  return out;
}

// Removes one level of backslash escaping; rejects trailing lone backslash.
Result<std::string> Unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool escaped = false;
  for (char c : text) {
    if (escaped) {
      out += c;
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else {
      out += c;
    }
  }
  if (escaped) {
    return Status::InvalidArgument("dangling backslash in DN component");
  }
  return out;
}

// Trims unescaped ASCII spaces from both ends (escape sequences are still
// present in `text`, so a trailing "\\ " survives). A trailing space is
// escaped iff it is preceded by an odd-length run of backslashes: in
// "a\\\\ " the backslash before the space is itself escaped, so the space
// is unescaped and must be trimmed.
std::string_view TrimSpaces(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && text[begin] == ' ') ++begin;
  size_t end = text.size();
  while (end > begin && text[end - 1] == ' ') {
    size_t backslashes = 0;
    while (end - 1 - backslashes > begin &&
           text[end - 2 - backslashes] == '\\') {
      ++backslashes;
    }
    if (backslashes % 2 == 1) break;  // the space is escaped
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string EscapeValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    char c = v[i];
    // Leading/trailing spaces must be escaped or Parse's trimming would
    // drop them and the printed form would not round-trip.
    bool edge_space = c == ' ' && (i == 0 || i + 1 == v.size());
    if (c == ',' || c == '+' || c == '=' || c == '\\' || edge_space) {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

Result<Rdn> Rdn::Make(
    std::vector<std::pair<std::string, std::string>> pairs) {
  if (pairs.empty()) {
    return Status::InvalidArgument("RDN must contain at least one pair");
  }
  for (const auto& [attr, value] : pairs) {
    if (!IsValidAttrName(attr)) {
      return Status::InvalidArgument("invalid attribute name in RDN: '" +
                                     attr + "'");
    }
    if (value.empty()) {
      return Status::InvalidArgument("empty value for RDN attribute " + attr);
    }
    if (HasControlBytes(value)) {
      return Status::InvalidArgument("control bytes in RDN value for " + attr);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  Rdn rdn;
  rdn.pairs_ = std::move(pairs);
  return rdn;
}

Result<Rdn> Rdn::Single(std::string attr, std::string value) {
  return Make({{std::move(attr), std::move(value)}});
}

std::string Rdn::ToKeyComponent() const {
  std::string out;
  for (size_t i = 0; i < pairs_.size(); ++i) {
    if (i > 0) out += kHierPairSep;
    out += pairs_[i].first;
    out += '=';
    out += pairs_[i].second;
  }
  return out;
}

std::string Rdn::ToString() const {
  std::string out;
  for (size_t i = 0; i < pairs_.size(); ++i) {
    if (i > 0) out += '+';
    out += pairs_[i].first;
    out += '=';
    out += EscapeValue(pairs_[i].second);
  }
  return out;
}

Result<Dn> Dn::Make(std::vector<Rdn> rdns) {
  for (const Rdn& r : rdns) {
    if (r.empty()) {
      return Status::InvalidArgument("DN contains an empty RDN component");
    }
  }
  Dn dn;
  dn.rdns_ = std::move(rdns);
  dn.RebuildKey();
  return dn;
}

Result<Dn> Dn::Parse(std::string_view text) {
  std::string_view trimmed = TrimSpaces(text);
  if (trimmed.empty()) return Dn();  // the null dn
  std::vector<Rdn> rdns;
  for (const std::string& comp : SplitUnescaped(trimmed, ',')) {
    std::vector<std::pair<std::string, std::string>> pairs;
    for (const std::string& pair_text : SplitUnescaped(comp, '+')) {
      std::string_view pt = TrimSpaces(pair_text);
      // Split at the first unescaped '='.
      size_t eq = std::string::npos;
      bool escaped = false;
      for (size_t i = 0; i < pt.size(); ++i) {
        if (escaped) {
          escaped = false;
        } else if (pt[i] == '\\') {
          escaped = true;
        } else if (pt[i] == '=') {
          eq = i;
          break;
        }
      }
      if (eq == std::string::npos) {
        return Status::InvalidArgument(
            "DN component missing '=': '" + std::string(pt) + "'");
      }
      NDQ_ASSIGN_OR_RETURN(std::string attr,
                           Unescape(TrimSpaces(pt.substr(0, eq))));
      NDQ_ASSIGN_OR_RETURN(std::string value,
                           Unescape(TrimSpaces(pt.substr(eq + 1))));
      pairs.emplace_back(std::move(attr), std::move(value));
    }
    NDQ_ASSIGN_OR_RETURN(Rdn rdn, Rdn::Make(std::move(pairs)));
    rdns.push_back(std::move(rdn));
  }
  return Make(std::move(rdns));
}

Result<Dn> Dn::FromHierKey(std::string_view key) {
  if (key.empty()) return Dn();
  std::vector<Rdn> rdns;
  size_t begin = 0;
  while (begin <= key.size()) {
    size_t end = key.find(kHierKeySep, begin);
    if (end == std::string_view::npos) end = key.size();
    std::string_view comp = key.substr(begin, end - begin);
    std::vector<std::pair<std::string, std::string>> pairs;
    size_t pb = 0;
    while (pb <= comp.size()) {
      size_t pe = comp.find(kHierPairSep, pb);
      if (pe == std::string_view::npos) pe = comp.size();
      std::string_view pair = comp.substr(pb, pe - pb);
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        return Status::Corruption("malformed HierKey component");
      }
      pairs.emplace_back(std::string(pair.substr(0, eq)),
                         std::string(pair.substr(eq + 1)));
      if (pe == comp.size()) break;
      pb = pe + 1;
    }
    NDQ_ASSIGN_OR_RETURN(Rdn rdn, Rdn::Make(std::move(pairs)));
    // Key is root-first; Dn stores leaf-first.
    rdns.insert(rdns.begin(), std::move(rdn));
    if (end == key.size()) break;
    begin = end + 1;
  }
  return Make(std::move(rdns));
}

void Dn::RebuildKey() {
  key_.clear();
  for (auto it = rdns_.rbegin(); it != rdns_.rend(); ++it) {
    if (it != rdns_.rbegin()) key_ += kHierKeySep;
    key_ += it->ToKeyComponent();
  }
}

Dn Dn::Parent() const {
  if (depth() <= 1) return Dn();
  Dn parent;
  parent.rdns_.assign(rdns_.begin() + 1, rdns_.end());
  parent.RebuildKey();
  return parent;
}

Dn Dn::Child(Rdn child_rdn) const {
  Dn child;
  child.rdns_.reserve(rdns_.size() + 1);
  child.rdns_.push_back(std::move(child_rdn));
  child.rdns_.insert(child.rdns_.end(), rdns_.begin(), rdns_.end());
  child.RebuildKey();
  return child;
}

std::string Dn::ToString() const {
  std::string out;
  for (size_t i = 0; i < rdns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += rdns_[i].ToString();
  }
  return out;
}

bool Dn::IsAncestorOf(const Dn& other) const {
  return KeyIsAncestor(key_, other.key_);
}

bool Dn::IsParentOf(const Dn& other) const {
  return KeyIsParent(key_, other.key_);
}

bool KeyIsAncestor(std::string_view anc, std::string_view desc) {
  if (desc.empty()) return false;
  if (anc.empty()) return true;  // virtual forest root
  return desc.size() > anc.size() && desc.substr(0, anc.size()) == anc &&
         desc[anc.size()] == kHierKeySep;
}

bool KeyIsParent(std::string_view parent, std::string_view child) {
  if (!KeyIsAncestor(parent, child)) return false;
  std::string_view rest =
      parent.empty() ? child : child.substr(parent.size() + 1);
  return rest.find(kHierKeySep) == std::string_view::npos;
}

size_t KeyDepth(std::string_view key) {
  if (key.empty()) return 0;
  return static_cast<size_t>(
             std::count(key.begin(), key.end(), kHierKeySep)) +
         1;
}

std::string_view KeyParent(std::string_view key) {
  size_t pos = key.rfind(kHierKeySep);
  if (pos == std::string_view::npos) return std::string_view();
  return key.substr(0, pos);
}

std::string KeySubtreeEnd(std::string_view key) {
  if (key.empty()) return std::string();  // unbounded: whole forest
  std::string end(key);
  end += static_cast<char>(kHierKeySep + 1);
  return end;
}

std::string KeyExactEnd(std::string_view key) {
  // The smallest legal key extending `key` appends kHierPairSep (more
  // pairs in the last RDN) or kHierKeySep (a child); both sort at or
  // after key + kHierPairSep, so that string bounds the point range.
  std::string end(key);
  end += kHierPairSep;
  return end;
}

std::string KeyDescendantsBegin(std::string_view key) {
  if (key.empty()) return std::string();  // every key descends from ""
  std::string begin(key);
  begin += kHierKeySep;
  return begin;
}

bool KeyInSubtree(std::string_view root, std::string_view key) {
  return key == root || KeyIsAncestor(root, key);
}

}  // namespace ndq
