#include "core/ldif.h"

#include <sstream>

namespace ndq {

std::string WriteLdif(const DirectoryInstance& instance) {
  std::string out;
  for (const auto& [key, entry] : instance) {
    (void)key;
    out += entry.ToString();
    out += '\n';
  }
  return out;
}

std::string WriteLdif(const std::vector<Entry>& entries) {
  std::string out;
  for (const Entry& e : entries) {
    out += e.ToString();
    out += '\n';
  }
  return out;
}

namespace {

std::string TrimWs(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return std::string();
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

Result<std::vector<Entry>> ParseLdif(const Schema& schema,
                                     const std::string& text) {
  std::vector<Entry> out;
  std::istringstream in(text);
  std::string line;
  bool have_entry = false;
  Entry current;
  size_t lineno = 0;
  auto flush = [&]() {
    if (have_entry) out.push_back(std::move(current));
    current = Entry();
    have_entry = false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    std::string t = TrimWs(line);
    if (t.empty() || t[0] == '#') {
      flush();
      continue;
    }
    size_t colon = t.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("LDIF line " + std::to_string(lineno) +
                                     " missing ':'");
    }
    std::string attr = TrimWs(t.substr(0, colon));
    std::string value = TrimWs(t.substr(colon + 1));
    if (attr == "dn") {
      if (have_entry) {
        return Status::InvalidArgument("LDIF line " + std::to_string(lineno) +
                                       ": dn inside record");
      }
      NDQ_ASSIGN_OR_RETURN(Dn dn, Dn::Parse(value));
      current = Entry(std::move(dn));
      have_entry = true;
      continue;
    }
    if (!have_entry) {
      return Status::InvalidArgument("LDIF line " + std::to_string(lineno) +
                                     ": attribute before dn");
    }
    NDQ_ASSIGN_OR_RETURN(TypeKind type, schema.AttributeType(attr));
    NDQ_ASSIGN_OR_RETURN(Value v, ParseValueAs(type, value));
    current.AddValue(attr, std::move(v));
  }
  flush();
  return out;
}

Result<size_t> LoadLdif(const std::string& text,
                        DirectoryInstance* instance) {
  NDQ_ASSIGN_OR_RETURN(std::vector<Entry> entries,
                       ParseLdif(instance->schema(), text));
  size_t n = 0;
  for (Entry& e : entries) {
    NDQ_RETURN_IF_ERROR(instance->Add(std::move(e)));
    ++n;
  }
  return n;
}

}  // namespace ndq
