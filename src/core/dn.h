// Distinguished names (Def. 3.2(d)) and the reverse-DN hierarchical key.
//
// A DN is a sequence s1,...,sn of *sets* of (attribute, value) pairs; s1 is
// the entry's relative distinguished name (RDN) and sn is the root-most
// component. The paper's single physical design decision is to sort every
// entry list by "the lexicographic ordering on the reverse of the string
// representation of the distinguished names" [Sec 4.2, RFC 2253]: under
// that order a parent's key is a prefix of every descendant's key, which is
// what makes the merge- and stack-based operators of Sections 4-7 work.
//
// ndq materializes that order as Dn::HierKey(): the RDN components
// serialized root -> leaf, joined with the separator byte 0x1F (which is
// forbidden inside attribute names and values). Plain lexicographic
// comparison of HierKeys is exactly the paper's sort order, and ancestry
// tests become prefix tests on keys (see KeyIsAncestor / KeyIsParent).

#ifndef NDQ_CORE_DN_H_
#define NDQ_CORE_DN_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/head64.h"
#include "core/status.h"

namespace ndq {

/// Separator between RDN components inside a HierKey.
inline constexpr char kHierKeySep = '\x1f';
/// Separator between (attribute, value) pairs inside one RDN of a HierKey.
inline constexpr char kHierPairSep = '\x1e';

/// \brief One relative distinguished name: a non-empty set of
/// (attribute, value) pairs, e.g. {(uid, jag)} or {(cn, x), (sn, y)}.
///
/// Pairs are kept sorted and de-duplicated, so two Rdns denoting the same
/// set compare equal byte-for-byte in serialized form.
class Rdn {
 public:
  Rdn() = default;

  /// Builds an RDN from pairs; normalizes (sorts, dedups) and validates
  /// that attributes are well-formed and values contain no control bytes.
  static Result<Rdn> Make(
      std::vector<std::pair<std::string, std::string>> pairs);

  /// Convenience for the common single-pair case.
  static Result<Rdn> Single(std::string attr, std::string value);

  const std::vector<std::pair<std::string, std::string>>& pairs() const {
    return pairs_;
  }
  bool empty() const { return pairs_.empty(); }

  /// Serializes for HierKey use: "a=v" pairs joined with kHierPairSep.
  std::string ToKeyComponent() const;
  /// Serializes for display: "a=v" pairs joined with '+', values escaped.
  std::string ToString() const;

  bool operator==(const Rdn& other) const { return pairs_ == other.pairs_; }
  bool operator!=(const Rdn& other) const { return !(*this == other); }

 private:
  std::vector<std::pair<std::string, std::string>> pairs_;
};

/// \brief A distinguished name: a sequence of RDNs, leaf-most first.
///
/// The empty Dn (zero components) is the "null dn": it is not a legal entry
/// name but is accepted as a query base meaning "the whole forest"
/// (Sec. 8.1 uses null-dn exactly this way).
class Dn {
 public:
  /// Constructs the null dn.
  Dn() = default;

  /// Builds a DN from components, leaf-most first.
  static Result<Dn> Make(std::vector<Rdn> rdns);

  /// Parses the LDAP textual form, e.g.
  /// "uid=jag, ou=userProfiles, dc=research, dc=att, dc=com".
  /// Backslash escapes ',', '+', '=', '\\' inside values; '+' joins pairs
  /// of a multi-valued RDN. Whitespace around separators is ignored.
  static Result<Dn> Parse(std::string_view text);

  /// Reconstructs a Dn from a HierKey previously produced by HierKey().
  static Result<Dn> FromHierKey(std::string_view key);

  bool IsNull() const { return rdns_.empty(); }
  size_t depth() const { return rdns_.size(); }
  const std::vector<Rdn>& rdns() const { return rdns_; }

  /// The entry's relative distinguished name (first component). Requires
  /// !IsNull().
  const Rdn& rdn() const { return rdns_.front(); }

  /// The parent DN (one component shorter); the null dn if depth() <= 1.
  Dn Parent() const;

  /// Appends `child_rdn` below this DN and returns the child DN.
  Dn Child(Rdn child_rdn) const;

  /// The hierarchical sort key (root -> leaf). Lexicographic order on these
  /// keys is the paper's reverse-DN order; the null dn's key is "".
  const std::string& HierKey() const { return key_; }

  /// LDAP textual form, leaf-most first. The null dn renders as "".
  std::string ToString() const;

  bool IsAncestorOf(const Dn& other) const;  ///< Proper ancestor.
  bool IsParentOf(const Dn& other) const;
  bool IsDescendantOf(const Dn& other) const { return other.IsAncestorOf(*this); }
  bool IsChildOf(const Dn& other) const { return other.IsParentOf(*this); }

  bool operator==(const Dn& other) const { return key_ == other.key_; }
  bool operator!=(const Dn& other) const { return !(*this == other); }
  /// Orders by HierKey: the global sort order of the whole system. Uses
  /// the head-of-key word compare — most DN pairs differ inside the first
  /// eight bytes of their root components.
  bool operator<(const Dn& other) const {
    return CompareKeysHead64(key_, other.key_) < 0;
  }

 private:
  std::vector<Rdn> rdns_;  // leaf first
  std::string key_;        // root first

  void RebuildKey();
};

// Key-level relatives of the Dn predicates. Operators in exec/ work on raw
// HierKeys pulled from serialized runs and never rebuild Dn objects; these
// free functions are the hot-path forms.

/// True iff `anc` is a proper ancestor key of `desc`. The null key ""
/// is an ancestor of every non-null key (the forest has a virtual root).
bool KeyIsAncestor(std::string_view anc, std::string_view desc);

/// True iff `parent` is the parent key of `child`.
bool KeyIsParent(std::string_view parent, std::string_view child);

/// Number of RDN components in a key (0 for the null key).
size_t KeyDepth(std::string_view key);

/// The parent key of `key` ("" if key has a single component).
std::string_view KeyParent(std::string_view key);

/// The smallest key string strictly greater than every descendant key of
/// `key` — i.e. the exclusive upper bound of the subtree rooted at `key`.
/// Used for scoped range scans (scope=sub). Note the subtree *range*
/// [key, KeySubtreeEnd(key)) also contains sibling keys that extend the
/// last RDN with more pairs ("key" + kHierPairSep + ...); callers that
/// need exactly the subtree must post-filter with KeyInSubtree.
std::string KeySubtreeEnd(std::string_view key);

/// Exclusive upper bound of the range containing exactly `key`: the range
/// [key, KeyExactEnd(key)) holds `key` and no other legal key, because any
/// legal extension of a key begins with kHierPairSep or kHierKeySep and
/// values contain no control bytes below them. Derived from the separator
/// constants so point-lookup ranges can't diverge from the key grammar.
std::string KeyExactEnd(std::string_view key);

/// Inclusive start of the range of proper descendants of `key` (every
/// descendant key begins with `key` + kHierKeySep; "" for the null key,
/// whose descendants are the whole forest).
std::string KeyDescendantsBegin(std::string_view key);

/// True iff `key` lies in the subtree rooted at `root` (equal to `root` or
/// a proper descendant). This is the predicate the subtree *range* scan
/// over-approximates: [root, KeySubtreeEnd(root)) also yields sibling keys
/// like "root" + kHierPairSep + ... which fail this test.
bool KeyInSubtree(std::string_view root, std::string_view key);

}  // namespace ndq

#endif  // NDQ_CORE_DN_H_
