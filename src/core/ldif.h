// LDIF-style text import/export for directory instances.
//
// The format mirrors the entry fragments in the paper's Figures 1, 11 and
// 12: each record is a "dn: <dn>" line followed by "attr: value" lines,
// records separated by blank lines. Typed parsing uses the schema's tau.

#ifndef NDQ_CORE_LDIF_H_
#define NDQ_CORE_LDIF_H_

#include <string>
#include <vector>

#include "core/instance.h"

namespace ndq {

/// Serializes all entries of `instance` (in HierKey order).
std::string WriteLdif(const DirectoryInstance& instance);

/// Serializes a list of entries.
std::string WriteLdif(const std::vector<Entry>& entries);

/// Parses LDIF text into entries typed against `schema`. Unknown attributes
/// are an error; values failing tau are an error.
Result<std::vector<Entry>> ParseLdif(const Schema& schema,
                                     const std::string& text);

/// Parses and loads LDIF text into `instance` (validating per instance
/// policy). Returns the number of entries added.
Result<size_t> LoadLdif(const std::string& text,
                        DirectoryInstance* instance);

}  // namespace ndq

#endif  // NDQ_CORE_LDIF_H_
