// The directory type system of Section 3.1.
//
// The paper assumes a set T of type names, each with a domain; string and
// int are required base types, and distinguishedName is a required complex
// type whose values act as references to other entries. ndq represents all
// three with the Value variant below; a DN-typed value stores the
// *normalized string form* of the DN (see core/dn.h), which makes value
// comparison and serialization uniform.

#ifndef NDQ_CORE_VALUE_H_
#define NDQ_CORE_VALUE_H_

#include <cstdint>
#include <string>

#include "core/status.h"

namespace ndq {

/// The base types of the directory data model (Def. 3.1).
enum class TypeKind : uint8_t {
  kInt = 0,     ///< dom(int) = 64-bit signed integers.
  kString = 1,  ///< dom(string) = UTF-8 strings (control chars excluded).
  kDn = 2,      ///< dom(distinguishedName) = normalized DN strings.
};

/// Returns the name of a TypeKind ("int" / "string" / "dn").
const char* TypeKindToString(TypeKind kind);

/// Parses a type name; accepts "int", "string", "dn"/"distinguishedName".
Result<TypeKind> TypeKindFromString(const std::string& name);

/// \brief A typed attribute value.
///
/// Values are immutable after construction and totally ordered, first by
/// kind, then by domain order (numeric for kInt, lexicographic otherwise).
class Value {
 public:
  /// Constructs the int value 0.
  Value() : kind_(TypeKind::kInt), int_(0) {}

  static Value Int(int64_t v) { return Value(v); }
  static Value String(std::string v) {
    return Value(TypeKind::kString, std::move(v));
  }
  /// `normalized_dn` must be a DN string already normalized via
  /// Dn::ToString(); Entry validation enforces this.
  static Value DnRef(std::string normalized_dn) {
    return Value(TypeKind::kDn, std::move(normalized_dn));
  }

  TypeKind kind() const { return kind_; }
  bool is_int() const { return kind_ == TypeKind::kInt; }
  bool is_string() const { return kind_ == TypeKind::kString; }
  bool is_dn() const { return kind_ == TypeKind::kDn; }

  /// Requires is_int().
  int64_t AsInt() const { return int_; }
  /// Requires is_string() or is_dn().
  const std::string& AsString() const { return str_; }

  /// Renders the value for display and for LDIF-style text output.
  std::string ToString() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

 private:
  explicit Value(int64_t v) : kind_(TypeKind::kInt), int_(v) {}
  Value(TypeKind kind, std::string s)
      : kind_(kind), int_(0), str_(std::move(s)) {}

  TypeKind kind_;
  int64_t int_;
  std::string str_;
};

}  // namespace ndq

#endif  // NDQ_CORE_VALUE_H_
