#include "core/instance.h"

namespace ndq {

Status DirectoryInstance::Add(Entry entry) {
  if (entry.dn().IsNull()) {
    return Status::InvalidArgument("cannot add entry with null dn");
  }
  if (validate_) NDQ_RETURN_IF_ERROR(schema_.ValidateEntry(entry));
  const std::string& key = entry.HierKey();
  auto [it, inserted] = entries_.emplace(key, std::move(entry));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("dn already bound: " +
                                 it->second.dn().ToString());
  }
  return Status::OK();
}

Status DirectoryInstance::Put(Entry entry) {
  if (entry.dn().IsNull()) {
    return Status::InvalidArgument("cannot put entry with null dn");
  }
  if (validate_) NDQ_RETURN_IF_ERROR(schema_.ValidateEntry(entry));
  const std::string key = entry.HierKey();
  entries_[key] = std::move(entry);
  return Status::OK();
}

Status DirectoryInstance::Remove(const Dn& dn) {
  auto it = entries_.find(dn.HierKey());
  if (it == entries_.end()) {
    return Status::NotFound("no entry named " + dn.ToString());
  }
  auto next = std::next(it);
  if (next != entries_.end() && KeyIsAncestor(it->first, next->first)) {
    return Status::InvalidArgument("entry " + dn.ToString() +
                                   " has descendants; remove them first");
  }
  entries_.erase(it);
  return Status::OK();
}

const Entry* DirectoryInstance::Find(const Dn& dn) const {
  return FindByKey(dn.HierKey());
}

const Entry* DirectoryInstance::FindByKey(const std::string& hier_key) const {
  auto it = entries_.find(hier_key);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<const Entry*> DirectoryInstance::EntriesInScope(
    const Dn& base, Scope scope) const {
  std::vector<const Entry*> out;
  const std::string& base_key = base.HierKey();
  switch (scope) {
    case Scope::kBase: {
      const Entry* e = FindByKey(base_key);
      if (e != nullptr) out.push_back(e);
      break;
    }
    case Scope::kOne: {
      const Entry* e = FindByKey(base_key);
      if (e != nullptr) out.push_back(e);
      // Children are contiguous within the subtree range but interleaved
      // with deeper descendants; filter by parent test.
      auto it = entries_.lower_bound(base_key);
      std::string end = KeySubtreeEnd(base_key);
      for (; it != entries_.end() && (end.empty() || it->first < end); ++it) {
        if (KeyIsParent(base_key, it->first)) out.push_back(&it->second);
      }
      break;
    }
    case Scope::kSub: {
      auto it = entries_.lower_bound(base_key);
      std::string end = KeySubtreeEnd(base_key);
      for (; it != entries_.end() && (end.empty() || it->first < end); ++it) {
        // The range also covers siblings extending the base's last RDN
        // with more pairs; keep only the base and true descendants.
        if (KeyInSubtree(base_key, it->first)) out.push_back(&it->second);
      }
      break;
    }
  }
  return out;
}

const Entry* DirectoryInstance::ParentOf(const Entry& entry) const {
  Dn parent = entry.dn().Parent();
  if (parent.IsNull()) return nullptr;
  return Find(parent);
}

std::vector<const Entry*> DirectoryInstance::ChildrenOf(
    const Entry& entry) const {
  std::vector<const Entry*> out;
  const std::string& key = entry.HierKey();
  auto it = entries_.upper_bound(key);
  std::string end = KeySubtreeEnd(key);
  for (; it != entries_.end() && it->first < end; ++it) {
    if (KeyIsParent(key, it->first)) out.push_back(&it->second);
  }
  return out;
}

std::vector<const Entry*> DirectoryInstance::AncestorsOf(
    const Entry& entry) const {
  std::vector<const Entry*> out;
  for (Dn d = entry.dn().Parent(); !d.IsNull(); d = d.Parent()) {
    const Entry* e = Find(d);
    if (e != nullptr) out.push_back(e);
  }
  return out;
}

std::vector<const Entry*> DirectoryInstance::DescendantsOf(
    const Entry& entry) const {
  std::vector<const Entry*> out;
  const std::string& key = entry.HierKey();
  auto it = entries_.upper_bound(key);
  std::string end = KeySubtreeEnd(key);
  for (; it != entries_.end() && it->first < end; ++it) {
    // Skip pair-extension siblings ("key" + kHierPairSep + ...): in the
    // subtree range but not below `key`.
    if (KeyIsAncestor(key, it->first)) out.push_back(&it->second);
  }
  return out;
}

}  // namespace ndq
