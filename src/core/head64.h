// Head-of-key fast comparison.
//
// Every hot merge loop in the system compares byte-string sort keys
// (HierKeys, encoded attribute values, pair keys). Most comparisons are
// decided well inside the first eight bytes, so loading the head of each
// key into one big-endian-ordered machine word turns the common case into
// a single integer compare — the classic "poor man's normalized key"
// trick. ExtractHead64(a) < ExtractHead64(b) implies a < b, and equality
// of heads means the first min(8, len) bytes agree, so callers fall back
// to a full compare only on head ties.

#ifndef NDQ_CORE_HEAD64_H_
#define NDQ_CORE_HEAD64_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace ndq {

/// First min(8, size) bytes of `s` as a big-endian-ordered word, padded
/// with zero bytes. Preserves order: head(a) < head(b) implies a < b for
/// the underlying strings (zero padding is safe because a proper prefix
/// sorts before its extensions, and the padded head ties exactly then).
inline uint64_t ExtractHead64(std::string_view s) {
  uint64_t head = 0;
  if (s.size() >= 8) {
    std::memcpy(&head, s.data(), 8);
  } else if (!s.empty()) {
    std::memcpy(&head, s.data(), s.size());
  }
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_bswap64(head);
#else
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) r = (r << 8) | ((head >> (8 * i)) & 0xff);
  return r;
#endif
}

/// Three-way compare of byte strings with the head-word fast path.
inline int CompareKeysHead64(std::string_view a, std::string_view b) {
  uint64_t ha = ExtractHead64(a);
  uint64_t hb = ExtractHead64(b);
  if (ha != hb) return ha < hb ? -1 : 1;
  int c = a.compare(b);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

/// Convenience strict-weak-order form for std::sort and friends.
inline bool KeyLessHead64(std::string_view a, std::string_view b) {
  return CompareKeysHead64(a, b) < 0;
}

}  // namespace ndq

#endif  // NDQ_CORE_HEAD64_H_
