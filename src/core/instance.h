// The in-memory directory instance I = (R, class, val, dn) of Def. 3.2,
// organized as a directory information forest (Sec. 3.3).
//
// This container is the semantic reference: entries ordered by HierKey,
// ancestry derivable from DNs alone. The external-memory store (src/store)
// holds the same logical content on the simulated disk; tests cross-check
// the two.

#ifndef NDQ_CORE_INSTANCE_H_
#define NDQ_CORE_INSTANCE_H_

#include <map>
#include <string>
#include <vector>

#include "core/entry.h"
#include "core/schema.h"
#include "core/scope.h"

namespace ndq {

/// \brief A directory instance: a finite forest of entries keyed (and
/// iterated) in reverse-DN lexicographic order.
class DirectoryInstance {
 public:
  /// Constructs an empty instance of `schema`. If `validate` is false the
  /// instance accepts schema-less data (useful for algorithm-level tests).
  explicit DirectoryInstance(Schema schema, bool validate = true)
      : schema_(std::move(schema)), validate_(validate) {}

  const Schema& schema() const { return schema_; }

  /// Adds an entry; fails if the dn is already bound (dn is a key,
  /// Def. 3.2(d)(i)) or if validation fails.
  Status Add(Entry entry);

  /// Replaces the entry with the same dn, or adds it if absent.
  Status Put(Entry entry);

  /// Removes the entry named `dn`; fails with NotFound if absent. Removal
  /// of an entry with descendants is rejected (the namespace must remain
  /// prefix-closed per server, as in LDAP).
  Status Remove(const Dn& dn);

  /// Looks up an entry by dn; nullptr if absent.
  const Entry* Find(const Dn& dn) const;
  const Entry* FindByKey(const std::string& hier_key) const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  using EntryMap = std::map<std::string, Entry>;
  EntryMap::const_iterator begin() const { return entries_.begin(); }
  EntryMap::const_iterator end() const { return entries_.end(); }

  /// All entries within `scope` of `base`, in HierKey order (Def. 4.1 scope
  /// semantics: kOne/kSub include the base entry itself). A null base with
  /// kSub denotes the whole forest.
  std::vector<const Entry*> EntriesInScope(const Dn& base, Scope scope) const;

  /// Hierarchy navigation (nullptr / empty when absent).
  const Entry* ParentOf(const Entry& entry) const;
  std::vector<const Entry*> ChildrenOf(const Entry& entry) const;
  std::vector<const Entry*> AncestorsOf(const Entry& entry) const;
  std::vector<const Entry*> DescendantsOf(const Entry& entry) const;

 private:
  Schema schema_;
  bool validate_;
  EntryMap entries_;  // HierKey -> Entry
};

}  // namespace ndq

#endif  // NDQ_CORE_INSTANCE_H_
