// Structured "this result is degraded" notes.
//
// Several layers can decide to return a partial or empty result instead
// of failing outright: the distributed coordinator drops an unreachable
// server's contribution after retries (dist/distributed.h), and the batch
// engine's admission control rejects a query whose estimated page budget
// is exceeded (engine/engine.h). Both attach one DegradationWarning per
// degradation so callers can tell a complete answer from a partial one.

#ifndef NDQ_CORE_DEGRADATION_H_
#define NDQ_CORE_DEGRADATION_H_

#include <string>

namespace ndq {

/// One structured degradation note: which component degraded the result
/// and why. `source` is a server name for distributed degradation, or a
/// component label such as "admission" for engine-side rejection.
struct DegradationWarning {
  std::string source;
  std::string detail;

  std::string ToString() const {
    return "degraded: " + source + ": " + detail;
  }
};

}  // namespace ndq

#endif  // NDQ_CORE_DEGRADATION_H_
