// LDIF change records: the standard textual update stream for directories.
//
// Supports the three changetypes the TOPS application needs for dynamic
// policy management (Sec. 2.2):
//
//   dn: QHPName=dnd, uid=jag, ...      dn: uid=gone, ...
//   changetype: add                    changetype: delete
//   objectClass: QHP
//   QHPName: dnd
//
//   dn: QHPName=weekend, uid=jag, ...
//   changetype: modify
//   replace: priority                  (also: add: attr / delete: attr)
//   priority: 5
//   -
//
// A record without a changetype line is an add. Records apply atomically
// in order; the first failure stops processing and reports the record
// index.

#ifndef NDQ_CORE_LDIF_UPDATE_H_
#define NDQ_CORE_LDIF_UPDATE_H_

#include <string>
#include <vector>

#include "core/entry.h"
#include "core/schema.h"

namespace ndq {

/// One parsed change record.
struct LdifChange {
  enum class Type { kAdd, kDelete, kModify };
  enum class ModOp { kAdd, kDelete, kReplace };

  struct Modification {
    ModOp op = ModOp::kReplace;
    std::string attr;
    std::vector<Value> values;  // empty for delete-whole-attribute
  };

  Type type = Type::kAdd;
  Dn dn;
  Entry entry;                          // kAdd payload
  std::vector<Modification> mods;      // kModify payload
};

/// Parses LDIF change text (typed against `schema`).
Result<std::vector<LdifChange>> ParseLdifChanges(const Schema& schema,
                                                 const std::string& text);

/// The store operations LdifChange drives; implemented by DirectoryStore
/// (store/) and adaptable to DirectoryInstance in tests.
class UpdateTarget {
 public:
  virtual ~UpdateTarget() = default;
  virtual Status AddEntry(Entry entry) = 0;
  virtual Status DeleteEntry(const Dn& dn) = 0;
  virtual Result<std::optional<Entry>> GetEntry(const Dn& dn) = 0;
  virtual Status ReplaceEntry(Entry entry) = 0;
};

/// Applies the changes in order; returns the number applied. On failure
/// the Status message names the failing record.
Result<size_t> ApplyLdifChanges(const Schema& schema,
                                const std::string& text,
                                UpdateTarget* target);

}  // namespace ndq

#endif  // NDQ_CORE_LDIF_UPDATE_H_
