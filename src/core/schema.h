// The directory schema S = (C, A, tau, alpha) of Definition 3.1.

#ifndef NDQ_CORE_SCHEMA_H_
#define NDQ_CORE_SCHEMA_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/value.h"

namespace ndq {

class Entry;

/// Name of the mandatory class-membership attribute (Def. 3.1(b)).
inline constexpr const char* kObjectClassAttr = "objectClass";

/// \brief A directory schema: a finite set of classes C, attributes A, a
/// typing function tau : A -> T, and an allowed-attribute function
/// alpha : C -> 2^A.
///
/// The decoupling of attributes from classes is deliberate (Sec. 3.1): an
/// attribute's type is global, so occurrences of the same attribute in
/// multiple classes share one type. objectClass : string is always present.
class Schema {
 public:
  /// Constructs a schema containing only the objectClass attribute.
  Schema();

  /// Declares attribute `name` with type `type`. Re-declaring with the same
  /// type is a no-op; with a different type, an error.
  Status AddAttribute(const std::string& name, TypeKind type);

  /// Declares class `name` with the given allowed attributes, all of which
  /// must already be declared. objectClass is implicitly allowed for every
  /// class. Re-declaring an existing class replaces its attribute set.
  Status AddClass(const std::string& name,
                  const std::vector<std::string>& allowed_attrs);

  bool HasAttribute(const std::string& name) const;
  bool HasClass(const std::string& name) const;

  /// tau: the type of attribute `name`.
  Result<TypeKind> AttributeType(const std::string& name) const;

  /// alpha: the allowed attributes of class `name`.
  Result<std::set<std::string>> AllowedAttributes(
      const std::string& name) const;

  /// True iff `attr` is allowed for at least one class in `classes`
  /// (Def. 3.2(c)(1)); objectClass is always allowed.
  bool AttributeAllowedForAny(const std::string& attr,
                              const std::vector<std::string>& classes) const;

  /// Checks an entry against Def. 3.2(c) and (d)(ii): every attribute is
  /// allowed by one of the entry's classes and has the declared type, the
  /// objectClass values coincide with the classes, and rdn(r) is contained
  /// in val(r).
  Status ValidateEntry(const Entry& entry) const;

  const std::map<std::string, TypeKind>& attributes() const {
    return attributes_;
  }
  const std::map<std::string, std::set<std::string>>& classes() const {
    return classes_;
  }

 private:
  std::map<std::string, TypeKind> attributes_;
  std::map<std::string, std::set<std::string>> classes_;
};

/// Parses `text` as a value of type `type` (int literal, plain string, or a
/// DN that is normalized through Dn::Parse).
Result<Value> ParseValueAs(TypeKind type, const std::string& text);

}  // namespace ndq

#endif  // NDQ_CORE_SCHEMA_H_
