// A disk-paged B+-tree multimap from byte-string keys to 64-bit values.
//
// Sec. 4.1 assumes atomic queries "can be evaluated with the help of
// B-tree indices for integer and distinguishedName filters". This tree
// indexes attribute values: keys are order-preserving encodings of values
// (EncodeIntKey for integers), payloads are entry ordinals. Pages go
// through the buffer pool, so hot paths hit memory and cold lookups cost
// O(height) page reads.
//
// Duplicate keys are allowed (an attribute value may occur in many
// entries); (key, value) pairs are unique. Among equal keys, the order in
// which values are returned is unspecified (callers sort the id lists they
// collect).

#ifndef NDQ_INDEX_BTREE_H_
#define NDQ_INDEX_BTREE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "core/status.h"
#include "storage/buffer_pool.h"

namespace ndq {

/// Order-preserving encoding of a signed integer (big-endian, sign bit
/// flipped): EncodeIntKey(a) < EncodeIntKey(b) iff a < b.
std::string EncodeIntKey(int64_t v);
int64_t DecodeIntKey(std::string_view key);

class BPlusTree {
 public:
  /// Creates an empty tree whose pages are allocated from `pool`.
  static Result<BPlusTree> Create(BufferPool* pool);

  /// Inserts (key, value); duplicate (key, value) pairs are ignored.
  Status Insert(std::string_view key, uint64_t value);

  /// Removes (key, value); returns false if absent.
  Result<bool> Remove(std::string_view key, uint64_t value);

  /// Calls `fn(key, value)` for each pair with lo <= key < hi (hi empty =
  /// unbounded), in (key, value) order. Return an error from `fn` to stop.
  Status ScanRange(std::string_view lo, std::string_view hi,
                   const std::function<Status(std::string_view, uint64_t)>&
                       fn) const;

  /// All values for exactly `key`.
  Status ScanEqual(std::string_view key,
                   const std::function<Status(uint64_t)>& fn) const;

  uint64_t size() const { return size_; }
  size_t height() const { return height_; }

 private:
  explicit BPlusTree(BufferPool* pool) : pool_(pool) {}

  // Node page layout:
  //   u8  is_leaf
  //   u16 count
  //   u32 next          (leaf: next-leaf PageId; internal: leftmost child)
  //   u16 used          (payload bytes)
  //   entries: leaf     [u16 klen][key][u64 value]
  //            internal [u16 klen][key][u32 child]   (child >= key side)
  struct NodeRef;  // in btree.cc

  struct SplitResult {
    bool split = false;
    std::string sep_key;
    PageId right = kInvalidPage;
  };

  Result<SplitResult> InsertRec(PageId node, std::string_view key,
                                uint64_t value, bool* inserted);
  Result<bool> RemoveRec(PageId node, std::string_view key, uint64_t value);
  Result<PageId> FindLeaf(std::string_view key) const;

  BufferPool* pool_ = nullptr;
  PageId root_ = kInvalidPage;
  uint64_t size_ = 0;
  size_t height_ = 1;
};

}  // namespace ndq

#endif  // NDQ_INDEX_BTREE_H_
