#include "index/string_index.h"

#include <algorithm>

namespace ndq {

Trie::Trie() : root_(std::make_unique<Node>()) {}

void Trie::Insert(std::string_view value, uint64_t id) {
  Node* node = root_.get();
  for (char c : value) {
    std::unique_ptr<Node>& child = node->children[c];
    if (child == nullptr) {
      child = std::make_unique<Node>();
      ++num_nodes_;
    }
    node = child.get();
  }
  node->ids.push_back(id);
  ++num_values_;
}

std::vector<uint64_t> Trie::Lookup(std::string_view value) const {
  const Node* node = root_.get();
  for (char c : value) {
    auto it = node->children.find(c);
    if (it == node->children.end()) return {};
    node = it->second.get();
  }
  std::vector<uint64_t> out = node->ids;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Trie::Collect(const Node& node, std::vector<uint64_t>* out) {
  out->insert(out->end(), node.ids.begin(), node.ids.end());
  for (const auto& [c, child] : node.children) {
    (void)c;
    Collect(*child, out);
  }
}

std::vector<uint64_t> Trie::PrefixSearch(std::string_view prefix) const {
  const Node* node = root_.get();
  for (char c : prefix) {
    auto it = node->children.find(c);
    if (it == node->children.end()) return {};
    node = it->second.get();
  }
  std::vector<uint64_t> out;
  Collect(*node, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void SuffixIndex::Add(std::string_view value, uint64_t id) {
  docs_.push_back(Doc{std::string(value), id});
  built_ = false;
}

void SuffixIndex::Build() {
  suffixes_.clear();
  for (uint32_t d = 0; d < docs_.size(); ++d) {
    for (uint32_t off = 0; off < docs_[d].text.size(); ++off) {
      suffixes_.push_back(Suffix{d, off});
    }
  }
  std::sort(suffixes_.begin(), suffixes_.end(),
            [this](const Suffix& a, const Suffix& b) {
              return SuffixText(a) < SuffixText(b);
            });
  built_ = true;
}

Result<std::vector<uint64_t>> SuffixIndex::Search(
    std::string_view needle) const {
  if (!built_) return Status::Internal("SuffixIndex::Build not called");
  if (needle.empty()) {
    std::vector<uint64_t> out;
    for (const Doc& d : docs_) out.push_back(d.id);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
  // Binary search the band of suffixes starting with `needle`.
  auto lo = std::lower_bound(suffixes_.begin(), suffixes_.end(), needle,
                             [this](const Suffix& s, std::string_view n) {
                               return SuffixText(s) < n;
                             });
  std::vector<uint64_t> out;
  for (auto it = lo; it != suffixes_.end(); ++it) {
    std::string_view text = SuffixText(*it);
    if (text.substr(0, needle.size()) != needle) break;
    out.push_back(docs_[it->doc].id);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ndq
