// Per-attribute secondary indexes and index-assisted atomic evaluation.
//
// Sec. 4.1: "atomic queries ... can be evaluated with the help of B-tree
// indices for integer and distinguishedName filters, and trie and suffix
// tree indices for string filters". AttributeIndexes bundles the three
// index kinds over a store segment and answers atomic queries for indexed
// attributes; non-indexed filters fall back to the range scan of
// exec/atomic.h. Benchmark E12 quantifies the trade-off.

#ifndef NDQ_INDEX_ATTR_INDEX_H_
#define NDQ_INDEX_ATTR_INDEX_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "filter/atomic_filter.h"
#include "index/btree.h"
#include "index/string_index.h"
#include "store/entry_store.h"

namespace ndq {

/// Which attributes to index, by type.
struct IndexSpec {
  std::vector<std::string> int_attrs;     ///< B+-tree over EncodeIntKey
  std::vector<std::string> string_attrs;  ///< trie + suffix array
  std::vector<std::string> dn_attrs;      ///< B+-tree over the DN string
};

class AttributeIndexes {
 public:
  /// Scans the store once and builds all configured indexes. The pool
  /// backs the B+-trees.
  static Result<AttributeIndexes> Build(BufferPool* pool,
                                        const EntryStore& store,
                                        const IndexSpec& spec);

  /// Index-assisted evaluation of "(base ? scope ? filter)". Returns
  /// nullopt when the filter's attribute is not indexed (or the filter
  /// kind defeats the index); the caller then falls back to a range scan.
  /// The result, when present, is identical to EvalAtomic's.
  Result<std::optional<Run>> EvalAtomic(Disk* disk,
                                              const EntryStore& store,
                                              const Dn& base, Scope scope,
                                              const AtomicFilter& filter)
      const;

  size_t num_entries() const { return keys_.size(); }

 private:
  // Candidate entry ordinals for the filter, or nullopt if unindexable.
  Result<std::optional<std::vector<uint64_t>>> Candidates(
      const AtomicFilter& filter) const;

  // Ordinal -> HierKey (ordinals are assigned in key order).
  std::vector<std::string> keys_;
  std::map<std::string, BPlusTree> int_trees_;
  std::map<std::string, BPlusTree> dn_trees_;
  std::map<std::string, Trie> tries_;
  std::map<std::string, SuffixIndex> suffixes_;
  // Presence lists (ordinals having the attribute), for presence filters
  // and as a fallback verifier.
  std::map<std::string, std::vector<uint64_t>> presence_;
};

}  // namespace ndq

#endif  // NDQ_INDEX_ATTR_INDEX_H_
