#include "index/attr_index.h"

#include <algorithm>

#include "storage/serde.h"

namespace ndq {

Result<AttributeIndexes> AttributeIndexes::Build(BufferPool* pool,
                                                 const EntryStore& store,
                                                 const IndexSpec& spec) {
  AttributeIndexes idx;
  for (const std::string& a : spec.int_attrs) {
    NDQ_ASSIGN_OR_RETURN(BPlusTree t, BPlusTree::Create(pool));
    idx.int_trees_.emplace(a, std::move(t));
  }
  for (const std::string& a : spec.dn_attrs) {
    NDQ_ASSIGN_OR_RETURN(BPlusTree t, BPlusTree::Create(pool));
    idx.dn_trees_.emplace(a, std::move(t));
  }
  for (const std::string& a : spec.string_attrs) {
    idx.tries_.emplace(a, Trie());
    idx.suffixes_.emplace(a, SuffixIndex());
  }

  Status scan = store.ScanRange(
      "", "", [&](std::string_view record) -> Status {
        uint64_t id = idx.keys_.size();
        NDQ_ASSIGN_OR_RETURN(Entry e, DeserializeEntry(record));
        idx.keys_.emplace_back(e.HierKey());
        for (const auto& [attr, vals] : e.attributes()) {
          bool indexed = false;
          auto it_int = idx.int_trees_.find(attr);
          auto it_dn = idx.dn_trees_.find(attr);
          auto it_trie = idx.tries_.find(attr);
          for (const Value& v : vals) {
            if (it_int != idx.int_trees_.end() && v.is_int()) {
              NDQ_RETURN_IF_ERROR(
                  it_int->second.Insert(EncodeIntKey(v.AsInt()), id));
              indexed = true;
            }
            if (it_dn != idx.dn_trees_.end() && v.is_dn()) {
              NDQ_RETURN_IF_ERROR(it_dn->second.Insert(v.AsString(), id));
              indexed = true;
            }
            if (it_trie != idx.tries_.end() && v.is_string()) {
              it_trie->second.Insert(v.AsString(), id);
              idx.suffixes_.find(attr)->second.Add(v.AsString(), id);
              indexed = true;
            }
          }
          if (indexed || it_int != idx.int_trees_.end() ||
              it_dn != idx.dn_trees_.end() ||
              it_trie != idx.tries_.end()) {
            idx.presence_[attr].push_back(id);
          }
        }
        return Status::OK();
      });
  NDQ_RETURN_IF_ERROR(scan);
  for (auto& [attr, suffix] : idx.suffixes_) {
    (void)attr;
    suffix.Build();
  }
  (void)spec;
  return idx;
}

Result<std::optional<std::vector<uint64_t>>> AttributeIndexes::Candidates(
    const AtomicFilter& filter) const {
  using Kind = AtomicFilter::Kind;
  switch (filter.kind()) {
    case Kind::kTrue:
      return std::optional<std::vector<uint64_t>>();  // scan is optimal
    case Kind::kPresence: {
      auto it = presence_.find(filter.attr());
      if (it == presence_.end()) {
        return std::optional<std::vector<uint64_t>>();
      }
      return std::optional<std::vector<uint64_t>>(it->second);
    }
    case Kind::kIntCmp: {
      auto it = int_trees_.find(filter.attr());
      if (it == int_trees_.end()) {
        return std::optional<std::vector<uint64_t>>();
      }
      const BPlusTree& tree = it->second;
      std::vector<uint64_t> ids;
      auto add = [&](std::string_view, uint64_t v) -> Status {
        ids.push_back(v);
        return Status::OK();
      };
      const int64_t rhs = filter.int_rhs();
      // Translate the comparison into bounded key ranges.
      switch (filter.cmp_op()) {
        case CompareOp::kEq:
          NDQ_RETURN_IF_ERROR(tree.ScanEqual(
              EncodeIntKey(rhs),
              [&](uint64_t v) -> Status { return add("", v); }));
          break;
        case CompareOp::kLt:
          NDQ_RETURN_IF_ERROR(tree.ScanRange("", EncodeIntKey(rhs), add));
          break;
        case CompareOp::kLe:
          NDQ_RETURN_IF_ERROR(
              tree.ScanRange("", EncodeIntKey(rhs) + '\x01', add));
          break;
        case CompareOp::kGt:
          NDQ_RETURN_IF_ERROR(
              tree.ScanRange(EncodeIntKey(rhs) + '\x01', "", add));
          break;
        case CompareOp::kGe:
          NDQ_RETURN_IF_ERROR(tree.ScanRange(EncodeIntKey(rhs), "", add));
          break;
        case CompareOp::kNe:
          NDQ_RETURN_IF_ERROR(tree.ScanRange("", EncodeIntKey(rhs), add));
          NDQ_RETURN_IF_ERROR(
              tree.ScanRange(EncodeIntKey(rhs) + '\x01', "", add));
          break;
      }
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      return std::optional<std::vector<uint64_t>>(std::move(ids));
    }
    case Kind::kEquals: {
      const Value& rhs = filter.equals_rhs();
      std::vector<uint64_t> ids;
      bool answered = false;
      if (rhs.is_int()) {
        auto it_int = int_trees_.find(filter.attr());
        if (it_int != int_trees_.end()) {
          NDQ_RETURN_IF_ERROR(it_int->second.ScanEqual(
              EncodeIntKey(rhs.AsInt()), [&](uint64_t v) -> Status {
                ids.push_back(v);
                return Status::OK();
              }));
          answered = true;
        }
        // An int literal also matches its string spelling.
        auto it_trie = tries_.find(filter.attr());
        if (it_trie != tries_.end()) {
          std::vector<uint64_t> got = it_trie->second.Lookup(rhs.ToString());
          ids.insert(ids.end(), got.begin(), got.end());
          answered = true;
        }
      } else {
        auto it_trie = tries_.find(filter.attr());
        if (it_trie != tries_.end()) {
          std::vector<uint64_t> got = it_trie->second.Lookup(rhs.AsString());
          ids.insert(ids.end(), got.begin(), got.end());
          answered = true;
        }
        auto it_dn = dn_trees_.find(filter.attr());
        if (it_dn != dn_trees_.end()) {
          NDQ_RETURN_IF_ERROR(it_dn->second.ScanEqual(
              rhs.AsString(), [&](uint64_t v) -> Status {
                ids.push_back(v);
                return Status::OK();
              }));
          answered = true;
        }
      }
      if (!answered) return std::optional<std::vector<uint64_t>>();
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      return std::optional<std::vector<uint64_t>>(std::move(ids));
    }
    case Kind::kSubstring: {
      auto it = suffixes_.find(filter.attr());
      if (it == suffixes_.end()) {
        return std::optional<std::vector<uint64_t>>();
      }
      // Use the longest fixed fragment of the pattern as the needle; the
      // full wildcard match is re-verified against fetched entries.
      std::string longest;
      for (const std::string& part : filter.pattern_parts()) {
        if (part.size() > longest.size()) longest = part;
      }
      NDQ_ASSIGN_OR_RETURN(std::vector<uint64_t> ids,
                           it->second.Search(longest));
      return std::optional<std::vector<uint64_t>>(std::move(ids));
    }
  }
  return std::optional<std::vector<uint64_t>>();
}

Result<std::optional<Run>> AttributeIndexes::EvalAtomic(
    Disk* disk, const EntryStore& store, const Dn& base, Scope scope,
    const AtomicFilter& filter) const {
  NDQ_ASSIGN_OR_RETURN(std::optional<std::vector<uint64_t>> candidates,
                       Candidates(filter));
  if (!candidates.has_value()) {
    return std::optional<Run>();  // fall back to range scan
  }
  const std::string& base_key = base.HierKey();
  RunWriter writer(disk, RecordShape::kKeyed);
  for (uint64_t id : *candidates) {
    const std::string& key = keys_[id];
    switch (scope) {
      case Scope::kBase:
        if (key != base_key) continue;
        break;
      case Scope::kOne:
        if (key != base_key && !KeyIsParent(base_key, key)) continue;
        break;
      case Scope::kSub:
        if (!KeyInSubtree(base_key, key)) continue;
        break;
    }
    NDQ_ASSIGN_OR_RETURN(std::optional<Entry> entry, store.Get(key));
    if (!entry.has_value()) {
      return Status::Corruption("indexed key missing from store: " + key);
    }
    // Re-verify (needed for substring candidates; harmless otherwise).
    if (!filter.Matches(*entry)) continue;
    std::string record;
    SerializeEntry(*entry, &record);
    NDQ_RETURN_IF_ERROR(writer.Add(record));
  }
  return std::optional<Run>(writer.Finish().TakeValue());
}

}  // namespace ndq
