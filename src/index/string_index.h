// String indexes for atomic filters (Sec. 4.1): a trie for prefix
// patterns and a generalized suffix array for substring patterns.
//
// The paper cites "trie and suffix tree indices [23] for string filters";
// we use a suffix *array* — same query complexity for this workload,
// simpler and cache-friendly. Both map string values to the set of entry
// ordinals holding them.

#ifndef NDQ_INDEX_STRING_INDEX_H_
#define NDQ_INDEX_STRING_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"

namespace ndq {

/// \brief A map trie over attribute values; supports exact and prefix
/// lookups.
class Trie {
 public:
  Trie();

  /// Associates `value` (a string attribute value) with entry `id`.
  void Insert(std::string_view value, uint64_t id);

  /// Entry ids whose value equals `value` (sorted, deduplicated).
  std::vector<uint64_t> Lookup(std::string_view value) const;

  /// Entry ids with a value starting with `prefix` (sorted, dedup).
  std::vector<uint64_t> PrefixSearch(std::string_view prefix) const;

  size_t num_values() const { return num_values_; }
  size_t num_nodes() const { return num_nodes_; }

 private:
  struct Node {
    std::map<char, std::unique_ptr<Node>> children;
    std::vector<uint64_t> ids;  // ids of entries whose value ends here
  };

  static void Collect(const Node& node, std::vector<uint64_t>* out);

  std::unique_ptr<Node> root_;
  size_t num_values_ = 0;
  size_t num_nodes_ = 1;
};

/// \brief A generalized suffix array over all indexed values; supports
/// substring search — the workhorse behind "*jag*"-style filters.
class SuffixIndex {
 public:
  /// Adds a value owned by entry `id`. Call Build() after all Adds.
  void Add(std::string_view value, uint64_t id);

  /// Sorts the suffix array; required before Search.
  void Build();

  /// Entry ids having a value that contains `needle` (sorted, dedup).
  /// Requires Build().
  Result<std::vector<uint64_t>> Search(std::string_view needle) const;

  size_t num_suffixes() const { return suffixes_.size(); }

 private:
  struct Doc {
    std::string text;
    uint64_t id;
  };
  struct Suffix {
    uint32_t doc;
    uint32_t offset;
  };

  std::string_view SuffixText(const Suffix& s) const {
    return std::string_view(docs_[s.doc].text).substr(s.offset);
  }

  std::vector<Doc> docs_;
  std::vector<Suffix> suffixes_;
  bool built_ = false;
};

}  // namespace ndq

#endif  // NDQ_INDEX_STRING_INDEX_H_
