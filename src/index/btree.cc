#include "index/btree.h"

#include <algorithm>
#include <vector>

#include "storage/serde.h"

namespace ndq {

// Both delegate to the canonical order-preserving codec in storage/serde.h
// so the B+-tree and the page-format key encoding can never drift apart.
std::string EncodeIntKey(int64_t v) {
  std::string out;
  AppendOrderedInt64(v, &out);
  return out;
}

int64_t DecodeIntKey(std::string_view key) { return DecodeOrderedInt64(key); }

namespace {

// In-memory image of one node page.
struct Node {
  bool is_leaf = true;
  PageId link = kInvalidPage;  // leaf: next leaf; internal: leftmost child
  struct Item {
    std::string key;
    uint64_t payload;  // leaf: value; internal: child PageId
  };
  std::vector<Item> items;

  size_t SerializedSize() const {
    size_t n = 1 + 2 + 4 + 2;
    for (const Item& it : items) n += 2 + it.key.size() + 8;
    return n;
  }

  void Serialize(uint8_t* page, size_t page_size) const {
    std::string buf;
    buf.push_back(is_leaf ? 1 : 0);
    uint16_t count = static_cast<uint16_t>(items.size());
    buf.push_back(static_cast<char>(count & 0xff));
    buf.push_back(static_cast<char>(count >> 8));
    for (int i = 0; i < 4; ++i) {
      buf.push_back(static_cast<char>((link >> (8 * i)) & 0xff));
    }
    buf.push_back(0);
    buf.push_back(0);  // reserved
    for (const Item& it : items) {
      uint16_t klen = static_cast<uint16_t>(it.key.size());
      buf.push_back(static_cast<char>(klen & 0xff));
      buf.push_back(static_cast<char>(klen >> 8));
      buf += it.key;
      for (int i = 0; i < 8; ++i) {
        buf.push_back(static_cast<char>((it.payload >> (8 * i)) & 0xff));
      }
    }
    std::fill(page, page + page_size, 0);
    std::copy(buf.begin(), buf.end(), page);
  }

  static Result<Node> Parse(const uint8_t* page, size_t page_size) {
    Node node;
    size_t pos = 0;
    auto need = [&](size_t n) -> Status {
      if (pos + n > page_size) return Status::Corruption("btree node short");
      return Status::OK();
    };
    NDQ_RETURN_IF_ERROR(need(9));
    node.is_leaf = page[pos++] != 0;
    uint16_t count = static_cast<uint16_t>(page[pos] | (page[pos + 1] << 8));
    pos += 2;
    node.link = 0;
    for (int i = 0; i < 4; ++i) {
      node.link |= static_cast<PageId>(page[pos + i]) << (8 * i);
    }
    pos += 4;
    pos += 2;  // reserved
    node.items.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      NDQ_RETURN_IF_ERROR(need(2));
      uint16_t klen =
          static_cast<uint16_t>(page[pos] | (page[pos + 1] << 8));
      pos += 2;
      NDQ_RETURN_IF_ERROR(need(klen + 8));
      Node::Item item;
      item.key.assign(reinterpret_cast<const char*>(page + pos), klen);
      pos += klen;
      item.payload = 0;
      for (int b = 0; b < 8; ++b) {
        item.payload |= static_cast<uint64_t>(page[pos + b]) << (8 * b);
      }
      pos += 8;
      node.items.push_back(std::move(item));
    }
    return node;
  }
};

Result<Node> LoadNode(BufferPool* pool, PageId id) {
  NDQ_ASSIGN_OR_RETURN(PageHandle h, pool->Pin(id));
  return Node::Parse(h.data(), pool->disk()->page_size());
}

Status StoreNode(BufferPool* pool, PageId id, const Node& node) {
  NDQ_ASSIGN_OR_RETURN(PageHandle h, pool->Pin(id));
  node.Serialize(h.data(), pool->disk()->page_size());
  h.MarkDirty();
  return Status::OK();
}

// Index of the child covering `key` in an internal node: items[i] covers
// keys >= items[i].key; the leftmost link covers keys < items[0].key.
// Returns -1 for the leftmost link.
int ChildIndex(const Node& node, std::string_view key) {
  int lo = 0, hi = static_cast<int>(node.items.size());
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (node.items[mid].key <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo - 1;
}

PageId ChildAt(const Node& node, int idx) {
  return idx < 0 ? node.link
                 : static_cast<PageId>(node.items[idx].payload);
}

}  // namespace

Result<BPlusTree> BPlusTree::Create(BufferPool* pool) {
  BPlusTree tree(pool);
  NDQ_ASSIGN_OR_RETURN(PageHandle h, pool->New());
  Node root;
  root.is_leaf = true;
  root.Serialize(h.data(), pool->disk()->page_size());
  h.MarkDirty();
  tree.root_ = h.id();
  return tree;
}

Result<BPlusTree::SplitResult> BPlusTree::InsertRec(PageId node_id,
                                                    std::string_view key,
                                                    uint64_t value,
                                                    bool* inserted) {
  NDQ_ASSIGN_OR_RETURN(Node node, LoadNode(pool_, node_id));
  if (node.is_leaf) {
    Node::Item item{std::string(key), value};
    auto it = std::lower_bound(
        node.items.begin(), node.items.end(), item,
        [](const Node::Item& a, const Node::Item& b) {
          return a.key != b.key ? a.key < b.key : a.payload < b.payload;
        });
    if (it != node.items.end() && it->key == key && it->payload == value) {
      *inserted = false;
      return SplitResult{};
    }
    node.items.insert(it, std::move(item));
    *inserted = true;
  } else {
    int idx = ChildIndex(node, key);
    NDQ_ASSIGN_OR_RETURN(SplitResult child_split,
                         InsertRec(ChildAt(node, idx), key, value, inserted));
    if (!child_split.split) return SplitResult{};
    Node::Item item{child_split.sep_key,
                    static_cast<uint64_t>(child_split.right)};
    node.items.insert(node.items.begin() + (idx + 1), std::move(item));
  }

  if (node.SerializedSize() <= pool_->disk()->page_size()) {
    NDQ_RETURN_IF_ERROR(StoreNode(pool_, node_id, node));
    return SplitResult{};
  }

  // Split: move the upper half to a fresh right sibling.
  size_t mid = node.items.size() / 2;
  Node right;
  right.is_leaf = node.is_leaf;
  SplitResult result;
  result.split = true;
  if (node.is_leaf) {
    right.items.assign(node.items.begin() + mid, node.items.end());
    node.items.resize(mid);
    result.sep_key = right.items.front().key;
    NDQ_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
    right.link = node.link;
    node.link = rh.id();
    right.Serialize(rh.data(), pool_->disk()->page_size());
    rh.MarkDirty();
    result.right = rh.id();
  } else {
    // The middle key moves up; its child becomes the right node's
    // leftmost link.
    result.sep_key = node.items[mid].key;
    right.link = static_cast<PageId>(node.items[mid].payload);
    right.items.assign(node.items.begin() + mid + 1, node.items.end());
    node.items.resize(mid);
    NDQ_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
    right.Serialize(rh.data(), pool_->disk()->page_size());
    rh.MarkDirty();
    result.right = rh.id();
  }
  NDQ_RETURN_IF_ERROR(StoreNode(pool_, node_id, node));
  return result;
}

Status BPlusTree::Insert(std::string_view key, uint64_t value) {
  if (key.size() > pool_->disk()->page_size() / 4) {
    return Status::InvalidArgument("btree key too long for page size");
  }
  // Duplicate (key, value) pairs may live in a leaf left of the one insert
  // routing picks; detect them with an equal-range probe up front.
  bool exists = false;
  NDQ_RETURN_IF_ERROR(ScanEqual(key, [&](uint64_t v) -> Status {
    if (v == value) exists = true;
    return Status::OK();
  }));
  if (exists) return Status::OK();
  bool inserted = false;
  NDQ_ASSIGN_OR_RETURN(SplitResult split,
                       InsertRec(root_, key, value, &inserted));
  if (split.split) {
    Node new_root;
    new_root.is_leaf = false;
    new_root.link = root_;
    new_root.items.push_back(
        {split.sep_key, static_cast<uint64_t>(split.right)});
    NDQ_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
    new_root.Serialize(h.data(), pool_->disk()->page_size());
    h.MarkDirty();
    root_ = h.id();
    ++height_;
  }
  if (inserted) ++size_;
  return Status::OK();
}

Result<bool> BPlusTree::RemoveRec(PageId node_id, std::string_view key,
                                  uint64_t value) {
  NDQ_ASSIGN_OR_RETURN(Node node, LoadNode(pool_, node_id));
  if (!node.is_leaf) {
    // (key, value) pairs with equal keys may straddle several children:
    // every separator equal to `key` admits duplicates on its left, so
    // back up across them, then probe candidates left to right.
    int last = ChildIndex(node, key);
    int first = last;
    while (first >= 0 && node.items[first].key == key) --first;
    for (int i = first; i <= last; ++i) {
      NDQ_ASSIGN_OR_RETURN(bool removed,
                           RemoveRec(ChildAt(node, i), key, value));
      if (removed) return true;
    }
    return false;
  }
  for (auto it = node.items.begin(); it != node.items.end(); ++it) {
    if (it->key == key && it->payload == value) {
      node.items.erase(it);
      NDQ_RETURN_IF_ERROR(StoreNode(pool_, node_id, node));
      return true;
    }
    if (it->key > key) break;
  }
  return false;
}

Result<bool> BPlusTree::Remove(std::string_view key, uint64_t value) {
  NDQ_ASSIGN_OR_RETURN(bool removed, RemoveRec(root_, key, value));
  if (removed) --size_;
  return removed;
}

Result<PageId> BPlusTree::FindLeaf(std::string_view key) const {
  // Route to the LEFTMOST leaf that can contain `key`: separators equal to
  // the key admit duplicates in the child on their left, so back up over
  // them at every level (forward scanning via the leaf chain covers the
  // rest of the range).
  PageId cur = root_;
  while (true) {
    NDQ_ASSIGN_OR_RETURN(Node node, LoadNode(pool_, cur));
    if (node.is_leaf) return cur;
    int idx = ChildIndex(node, key);
    while (idx >= 0 && node.items[idx].key == key) --idx;
    cur = ChildAt(node, idx);
  }
}

Status BPlusTree::ScanRange(
    std::string_view lo, std::string_view hi,
    const std::function<Status(std::string_view, uint64_t)>& fn) const {
  NDQ_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(lo));
  while (leaf != kInvalidPage) {
    NDQ_ASSIGN_OR_RETURN(Node node, LoadNode(pool_, leaf));
    for (const Node::Item& it : node.items) {
      if (it.key < lo) continue;
      if (!hi.empty() && it.key >= hi) return Status::OK();
      NDQ_RETURN_IF_ERROR(fn(it.key, it.payload));
    }
    leaf = node.link;
  }
  return Status::OK();
}

Status BPlusTree::ScanEqual(
    std::string_view key, const std::function<Status(uint64_t)>& fn) const {
  std::string hi(key);
  hi.push_back('\0');
  return ScanRange(key, hi,
                   [&](std::string_view k, uint64_t v) -> Status {
                     (void)k;
                     return fn(v);
                   });
}

}  // namespace ndq
