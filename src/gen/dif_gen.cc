#include "gen/dif_gen.h"

#include <cassert>
#include <random>
#include <vector>

#include "gen/paper_data.h"

namespace ndq {
namespace gen {

namespace {

Rdn R(const std::string& attr, const std::string& value) {
  return Rdn::Single(attr, value).TakeValue();
}

void MustAdd(DirectoryInstance* inst, Entry entry) {
  Status s = inst->Add(std::move(entry));
  assert(s.ok() && "DIF generator produced an invalid entry");
  (void)s;
}

Entry DomainEntry(const Dn& dn, const std::string& dc) {
  Entry e(dn);
  e.AddClass("dcObject");
  e.AddString("dc", dc);
  return e;
}

Entry OuEntry(const Dn& dn, const std::string& ou) {
  Entry e(dn);
  e.AddClass("organizationalUnit");
  e.AddString("ou", ou);
  return e;
}

}  // namespace

DirectoryInstance GenerateDif(const DifOptions& opt) {
  std::mt19937 rng(opt.seed);
  DirectoryInstance inst(PaperSchema());

  Dn com = Dn::Make({R("dc", "com")}).TakeValue();
  MustAdd(&inst, DomainEntry(com, "com"));

  int sub_serial = 0;
  int64_t ca_serial = 0;
  for (int o = 0; o < opt.num_orgs; ++o) {
    std::string org = "org" + std::to_string(o);
    Dn org_dn = com.Child(R("dc", org));
    MustAdd(&inst, DomainEntry(org_dn, org));

    for (int s = 0; s < opt.subdomains_per_org; ++s) {
      std::string sub = "sub" + std::to_string(sub_serial++);
      Dn dom = org_dn.Child(R("dc", sub));
      MustAdd(&inst, DomainEntry(dom, sub));

      // ---- QoS subtree (Fig. 12 shape) ----
      Dn np = dom.Child(R("ou", "networkPolicies"));
      MustAdd(&inst, OuEntry(np, "networkPolicies"));
      Dn rules_ou = np.Child(R("ou", "SLAPolicyRules"));
      Dn tp_ou = np.Child(R("ou", "trafficProfile"));
      Dn pvp_ou = np.Child(R("ou", "policyValidityPeriod"));
      Dn act_ou = np.Child(R("ou", "SLADSAction"));
      MustAdd(&inst, OuEntry(rules_ou, "SLAPolicyRules"));
      MustAdd(&inst, OuEntry(tp_ou, "trafficProfile"));
      MustAdd(&inst, OuEntry(pvp_ou, "policyValidityPeriod"));
      MustAdd(&inst, OuEntry(act_ou, "SLADSAction"));

      std::vector<Dn> profiles, periods, actions, policies;
      for (int i = 0; i < opt.profiles_per_domain; ++i) {
        std::string name = "tp" + std::to_string(i);
        Dn dn = tp_ou.Child(R("TPName", name));
        Entry e(dn);
        e.AddClass("trafficProfile");
        e.AddString("TPName", name);
        if (i % 4 == 0) {
          e.AddString("SourceAddress", "*.*.*.*");  // catch-all profile
        } else {
          e.AddString("SourceAddress", std::to_string(200 + rng() % 20) +
                                           "." + std::to_string(rng() % 256) +
                                           ".*.*");
        }
        if (rng() % 3 != 0) {
          // Common well-known ports; port 25 (SMTP) appears regularly so
          // the Sec. 7 query has non-trivial answers at every scale.
          const int ports[] = {25, 80, 110, 443, 8080};
          e.AddInt("sourcePort", ports[rng() % 5]);
        }
        MustAdd(&inst, std::move(e));
        profiles.push_back(dn);
      }
      for (int i = 0; i < opt.periods_per_domain; ++i) {
        std::string name = "pvp" + std::to_string(i);
        Dn dn = pvp_ou.Child(R("PVPName", name));
        Entry e(dn);
        e.AddClass("policyValidityPeriod");
        e.AddString("PVPName", name);
        if (i % 3 == 0) {
          // Standing policy window: the whole year, every day.
          e.AddInt("PVStartTime", 19980101000000);
          e.AddInt("PVEndTime", 19981231235959);
        } else {
          int64_t start = 19980101000000 +
                          static_cast<int64_t>(rng() % 300) * 1000000;
          e.AddInt("PVStartTime", start);
          e.AddInt("PVEndTime", start + 86399);
          int ndays = 1 + rng() % 3;
          for (int d = 0; d < ndays; ++d) {
            e.AddInt("PVDayOfWeek", 1 + rng() % 7);
          }
        }
        MustAdd(&inst, std::move(e));
        periods.push_back(dn);
      }
      for (int i = 0; i < opt.actions_per_domain; ++i) {
        std::string name = "act" + std::to_string(i);
        Dn dn = act_ou.Child(R("DSActionName", name));
        Entry e(dn);
        e.AddClass("SLADSAction");
        e.AddString("DSActionName", name);
        e.AddString("DSPermission", (rng() % 2 == 0) ? "Deny" : "Allow");
        e.AddInt("DSInProfilePeakRate", 10 + rng() % 90);
        e.AddInt("DSDropPriority", 1 + rng() % 3);
        MustAdd(&inst, std::move(e));
        actions.push_back(dn);
      }
      for (int i = 0; i < opt.policies_per_domain; ++i) {
        std::string name = "pol" + std::to_string(i);
        Dn dn = rules_ou.Child(R("SLAPolicyName", name));
        policies.push_back(dn);
      }
      for (int i = 0; i < opt.policies_per_domain; ++i) {
        const Dn& dn = policies[i];
        Entry e(dn);
        e.AddClass("SLAPolicyRules");
        e.AddString("SLAPolicyName", "pol" + std::to_string(i));
        e.AddString("SLAPolicyScope", (rng() % 2 == 0) ? "DataTraffic"
                                                       : "SignalingTraffic");
        e.AddInt("SLARulePriority",
                 1 + static_cast<int64_t>(rng() % opt.priority_levels));
        for (int r = 0; r < opt.refs_per_policy && !profiles.empty(); ++r) {
          e.AddDnRef("SLATPRef", profiles[rng() % profiles.size()]);
        }
        for (int r = 0; r < opt.refs_per_policy && !periods.empty(); ++r) {
          e.AddDnRef("SLAPVPRef", periods[rng() % periods.size()]);
        }
        if (!actions.empty()) {
          e.AddDnRef("SLADSActRef", actions[rng() % actions.size()]);
        }
        if (opt.policies_per_domain > 1 &&
            std::uniform_real_distribution<double>(0, 1)(rng) <
                opt.exception_probability) {
          const Dn& exc = policies[rng() % policies.size()];
          if (!(exc == dn)) e.AddDnRef("SLAExceptionRef", exc);
        }
        MustAdd(&inst, std::move(e));
      }

      // ---- TOPS subtree (Fig. 11 shape) ----
      Dn up = dom.Child(R("ou", "userProfiles"));
      MustAdd(&inst, OuEntry(up, "userProfiles"));
      for (int u = 0; u < opt.subscribers_per_domain; ++u) {
        std::string uid = "user" + std::to_string(u);
        Dn udn = up.Child(R("uid", uid));
        Entry ue(udn);
        ue.AddClass("inetOrgPerson");
        ue.AddClass("TOPSSubscriber");
        ue.AddString("uid", uid);
        ue.AddString("surName", "sn" + std::to_string(rng() % 1000));
        ue.AddString("commonName", uid + " " + sub);
        MustAdd(&inst, std::move(ue));
        for (int q = 0; q < opt.qhps_per_subscriber; ++q) {
          std::string qname = "qhp" + std::to_string(q);
          Dn qdn = udn.Child(R("QHPName", qname));
          Entry qe(qdn);
          qe.AddClass("QHP");
          qe.AddString("QHPName", qname);
          qe.AddInt("priority", q + 1);  // lower value = higher priority
          if (rng() % 2 == 0) {
            int64_t start = 600 + static_cast<int64_t>(rng() % 6) * 100;
            qe.AddInt("startTime", start);
            qe.AddInt("endTime", start + 800 + rng() % 400);
          } else {
            qe.AddInt("daysOfWeek", 6);
            qe.AddInt("daysOfWeek", 7);
          }
          MustAdd(&inst, std::move(qe));
          for (int c = 0; c < opt.cas_per_qhp; ++c) {
            std::string number = "973" + std::to_string(1000000 + ca_serial++);
            Dn cdn = qdn.Child(R("CANumber", number));
            Entry ce(cdn);
            ce.AddClass("callAppearance");
            ce.AddString("CANumber", number);
            ce.AddInt("priority", c + 1);
            ce.AddInt("timeOut", 10 + static_cast<int64_t>(rng() % 30));
            MustAdd(&inst, std::move(ce));
          }
        }
      }
    }
  }
  return inst;
}

size_t ExpectedDifSize(const DifOptions& opt) {
  size_t per_domain =
      1 /*dom*/ + 5 /*ous*/ + 1 /*userProfiles ou*/ +
      static_cast<size_t>(opt.policies_per_domain) +
      static_cast<size_t>(opt.profiles_per_domain) +
      static_cast<size_t>(opt.periods_per_domain) +
      static_cast<size_t>(opt.actions_per_domain) +
      static_cast<size_t>(opt.subscribers_per_domain) *
          (1 + static_cast<size_t>(opt.qhps_per_subscriber) *
                   (1 + static_cast<size_t>(opt.cas_per_qhp)));
  return 1 /*dc=com*/ + static_cast<size_t>(opt.num_orgs) *
                            (1 + static_cast<size_t>(opt.subdomains_per_org) *
                                     per_domain);
}

}  // namespace gen
}  // namespace ndq
