// The paper's schema and sample data (Figures 1, 11 and 12), as reusable
// fixtures for tests, examples and benchmarks.

#ifndef NDQ_GEN_PAPER_DATA_H_
#define NDQ_GEN_PAPER_DATA_H_

#include "core/instance.h"

namespace ndq {
namespace gen {

/// The combined schema of the paper's examples: DNS-style domain entries,
/// organizational units, the QoS/SLA classes (after Chaudhury et al. [11])
/// and the TOPS classes.
Schema PaperSchema();

/// The directory fragments of Figures 1 (DNS levels), 11 (TOPS) and 12
/// (QoS policies), combined in one instance (23 entries).
DirectoryInstance PaperInstance();

/// Parses a DN, aborting on failure (test/bench convenience).
Dn MustDn(const std::string& text);

}  // namespace gen
}  // namespace ndq

#endif  // NDQ_GEN_PAPER_DATA_H_
