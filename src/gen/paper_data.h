// The paper's schema and sample data (Figures 1, 11 and 12), as reusable
// fixtures for tests, examples and benchmarks.
//
// Two flavors per fixture: the Try* functions propagate every failure as
// a Status/Result (library code and anything that must survive faults
// should use these), while the legacy assert-style wrappers keep the
// one-expression convenience for tests and benches — they fail LOUDLY in
// every build mode (message to stderr + abort), never silently continue
// with a half-built fixture the way `assert` in an NDEBUG build would.

#ifndef NDQ_GEN_PAPER_DATA_H_
#define NDQ_GEN_PAPER_DATA_H_

#include "core/instance.h"

namespace ndq {
namespace gen {

/// The combined schema of the paper's examples: DNS-style domain entries,
/// organizational units, the QoS/SLA classes (after Chaudhury et al. [11])
/// and the TOPS classes. Fails only if the schema tables reject a
/// definition (duplicate attribute/class, unknown attribute in a class).
Result<Schema> TryPaperSchema();

/// The directory fragments of Figures 1 (DNS levels), 11 (TOPS) and 12
/// (QoS policies), combined in one instance (23 entries). Every DN parse,
/// value parse and instance Add is checked and propagated.
Result<DirectoryInstance> TryPaperInstance();

/// Convenience wrappers over the Try* functions: abort with the failure
/// message on stderr if the fixture cannot be built (all build modes).
Schema PaperSchema();
DirectoryInstance PaperInstance();

/// Parses a DN, aborting loudly on failure (test/bench convenience).
Dn MustDn(const std::string& text);

}  // namespace gen
}  // namespace ndq

#endif  // NDQ_GEN_PAPER_DATA_H_
