// Random query generation for property testing (exec engine vs. the
// definitional reference evaluator) across all language levels.

#ifndef NDQ_GEN_RANDOM_QUERY_H_
#define NDQ_GEN_RANDOM_QUERY_H_

#include <random>

#include "core/instance.h"
#include "query/ast.h"

namespace ndq {
namespace gen {

struct RandomQueryOptions {
  /// Highest language allowed in the generated tree.
  Language max_language = Language::kL3;
  /// Maximum operator-tree depth (atomic leaves not counted).
  int max_depth = 3;
  /// Probability that a hierarchy/ER operator carries an aggregate
  /// selection filter (when the language allows).
  double agg_probability = 0.5;
};

/// Generates a random query against instances produced by RandomForest
/// (attributes objectClass/x/tag/ref). Bases are drawn from the
/// instance's dns (or null); every generated query parses back from its
/// ToString form.
QueryPtr RandomQuery(std::mt19937* rng, const DirectoryInstance& instance,
                     const RandomQueryOptions& options);

}  // namespace gen
}  // namespace ndq

#endif  // NDQ_GEN_RANDOM_QUERY_H_
