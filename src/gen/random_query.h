// Random query generation for property testing (exec engine vs. the
// definitional reference evaluator) across all language levels.

#ifndef NDQ_GEN_RANDOM_QUERY_H_
#define NDQ_GEN_RANDOM_QUERY_H_

#include <random>

#include "core/instance.h"
#include "query/ast.h"

namespace ndq {
namespace gen {

struct RandomQueryOptions {
  /// Highest language allowed in the generated tree.
  Language max_language = Language::kL3;
  /// Maximum operator-tree depth (atomic leaves not counted).
  int max_depth = 3;
  /// Probability that a hierarchy/ER operator carries an aggregate
  /// selection filter (when the language allows).
  double agg_probability = 0.5;
  /// Probability that an interior position becomes an atomic leaf anyway
  /// (controls tree size; depth 0 always forces a leaf).
  double leaf_probability = 0.35;
  /// Relative weights for operator classes at interior nodes, used only
  /// when the language level admits the class: boolean (L0+), plain
  /// hierarchy (L1+), constrained hierarchy (L1+), simple aggregation
  /// `g` (L2+), embedded reference (L3+). A zero weight disables the
  /// class — the fuzzer's shrinker uses that to localize a divergence to
  /// one operator family.
  int bool_weight = 1;
  int hierarchy_weight = 2;
  int constrained_weight = 1;
  int agg_weight = 1;
  int embedded_ref_weight = 2;
};

/// Generates a random query against instances produced by RandomForest
/// (attributes objectClass/x/tag/ref). Bases are drawn from the
/// instance's dns (or null); every generated query parses back from its
/// ToString form.
QueryPtr RandomQuery(std::mt19937* rng, const DirectoryInstance& instance,
                     const RandomQueryOptions& options);

}  // namespace gen
}  // namespace ndq

#endif  // NDQ_GEN_RANDOM_QUERY_H_
