// Random directory forests for property testing and algorithm benches.
//
// The generated instances are schema-light (validation off) but exercise
// every feature the operators care about: variable depth/fan-out, multi-
// valued attributes, multiple classes, int/string/dn-typed values, and
// DN-valued reference attributes ("ref") for the embedded-reference
// operators.

#ifndef NDQ_GEN_RANDOM_FOREST_H_
#define NDQ_GEN_RANDOM_FOREST_H_

#include <cstdint>
#include <random>

#include "core/instance.h"

namespace ndq {
namespace gen {

struct RandomForestOptions {
  uint32_t seed = 1;
  size_t num_entries = 200;
  size_t num_roots = 3;        ///< forest, not tree
  size_t max_children = 4;     ///< fan-out bound when growing
  int num_classes = 3;         ///< objectClass drawn from classA..classN
  int int_attr_range = 20;     ///< "x" values in [0, range)
  int num_tags = 8;            ///< "tag" values tag0..tagN
  double ref_probability = 0.4;  ///< chance an entry gets "ref" values
  int max_refs = 3;            ///< max "ref" values per entry
  /// Fuzzing hooks (default 0 so existing tests/benches are unchanged):
  /// chance an "x" value is drawn near ±INT64_MAX instead of
  /// [0, int_attr_range) — exercises the aggregate overflow paths.
  double extreme_int_probability = 0.0;
  /// Chance an RDN value is decorated with DN metacharacters
  /// (',', '=', '+', '\\', edge spaces) — exercises escaping round-trips.
  /// Serial numbers keep decorated values unique.
  double weird_rdn_probability = 0.0;
};

/// Generates a random forest instance. Entries have attributes:
///   objectClass (1-2 classes), x (1-2 int values), tag (string),
///   ref (0..max_refs DN references to random entries).
DirectoryInstance RandomForest(const RandomForestOptions& options);

}  // namespace gen
}  // namespace ndq

#endif  // NDQ_GEN_RANDOM_FOREST_H_
