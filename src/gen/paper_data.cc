#include "gen/paper_data.h"

#include <cassert>
#include <vector>

namespace ndq {
namespace gen {

Schema PaperSchema() {
  Schema s;
  auto must = [](const Status& st) {
    assert(st.ok());
    (void)st;
  };
  // Attributes.
  must(s.AddAttribute("dc", TypeKind::kString));
  must(s.AddAttribute("ou", TypeKind::kString));
  must(s.AddAttribute("commonName", TypeKind::kString));
  must(s.AddAttribute("surName", TypeKind::kString));
  must(s.AddAttribute("uid", TypeKind::kString));
  must(s.AddAttribute("telephoneNumber", TypeKind::kString));
  must(s.AddAttribute("description", TypeKind::kString));
  // TOPS.
  must(s.AddAttribute("QHPName", TypeKind::kString));
  must(s.AddAttribute("priority", TypeKind::kInt));
  must(s.AddAttribute("startTime", TypeKind::kInt));
  must(s.AddAttribute("endTime", TypeKind::kInt));
  must(s.AddAttribute("daysOfWeek", TypeKind::kInt));
  must(s.AddAttribute("CANumber", TypeKind::kString));
  must(s.AddAttribute("timeOut", TypeKind::kInt));
  must(s.AddAttribute("callerUid", TypeKind::kString));
  // QoS / SLA (schema after Chaudhury et al. [11]).
  must(s.AddAttribute("SLAPolicyName", TypeKind::kString));
  must(s.AddAttribute("SLAPolicyScope", TypeKind::kString));
  must(s.AddAttribute("SLARulePriority", TypeKind::kInt));
  must(s.AddAttribute("SLAExceptionRef", TypeKind::kDn));
  must(s.AddAttribute("SLATPRef", TypeKind::kDn));
  must(s.AddAttribute("SLAPVPRef", TypeKind::kDn));
  must(s.AddAttribute("SLADSActRef", TypeKind::kDn));
  must(s.AddAttribute("TPName", TypeKind::kString));
  must(s.AddAttribute("SourceAddress", TypeKind::kString));
  must(s.AddAttribute("DestAddress", TypeKind::kString));
  must(s.AddAttribute("sourcePort", TypeKind::kInt));
  must(s.AddAttribute("destPort", TypeKind::kInt));
  must(s.AddAttribute("protocol", TypeKind::kString));
  must(s.AddAttribute("PVPName", TypeKind::kString));
  must(s.AddAttribute("PVStartTime", TypeKind::kInt));
  must(s.AddAttribute("PVEndTime", TypeKind::kInt));
  must(s.AddAttribute("PVDayOfWeek", TypeKind::kInt));
  must(s.AddAttribute("DSActionName", TypeKind::kString));
  must(s.AddAttribute("DSPermission", TypeKind::kString));
  must(s.AddAttribute("DSInProfilePeakRate", TypeKind::kInt));
  must(s.AddAttribute("DSDropPriority", TypeKind::kInt));
  // Classes.
  must(s.AddClass("dcObject", {"dc"}));
  must(s.AddClass("domain", {"dc", "description"}));
  must(s.AddClass("organizationalUnit", {"ou", "description"}));
  must(s.AddClass("inetOrgPerson",
                  {"commonName", "surName", "uid", "telephoneNumber",
                   "description"}));
  must(s.AddClass("TOPSSubscriber", {"uid", "commonName", "surName"}));
  must(s.AddClass("QHP", {"QHPName", "priority", "startTime", "endTime",
                          "daysOfWeek", "callerUid"}));
  must(s.AddClass("callAppearance",
                  {"CANumber", "priority", "timeOut", "description"}));
  must(s.AddClass("SLAPolicyRules",
                  {"SLAPolicyName", "SLAPolicyScope", "SLARulePriority",
                   "SLAExceptionRef", "SLATPRef", "SLAPVPRef",
                   "SLADSActRef"}));
  must(s.AddClass("trafficProfile",
                  {"TPName", "SourceAddress", "DestAddress", "sourcePort",
                   "destPort", "protocol"}));
  must(s.AddClass("policyValidityPeriod",
                  {"PVPName", "PVStartTime", "PVEndTime", "PVDayOfWeek"}));
  must(s.AddClass("SLADSAction",
                  {"DSActionName", "DSPermission", "DSInProfilePeakRate",
                   "DSDropPriority"}));
  return s;
}

Dn MustDn(const std::string& text) {
  Result<Dn> r = Dn::Parse(text);
  assert(r.ok());
  return r.TakeValue();
}

/// Builds the directory fragments of Figures 1, 11 and 12 in one instance.
DirectoryInstance PaperInstance() {
  DirectoryInstance inst(PaperSchema());
  auto must = [](const Status& st) {
    assert(st.ok());
    (void)st;
  };
  auto add = [&](const std::string& dn_text,
                 const std::vector<std::string>& classes,
                 const std::vector<std::pair<std::string, std::string>>&
                     raw_pairs) {
    Entry e(MustDn(dn_text));
    for (const std::string& c : classes) e.AddClass(c);
    const Schema& s = inst.schema();
    for (const auto& [attr, text] : raw_pairs) {
      TypeKind t = s.AttributeType(attr).ValueOrDie();
      e.AddValue(attr, ParseValueAs(t, text).ValueOrDie());
    }
    // Satisfy rdn(r) subseteq val(r).
    for (const auto& [attr, text] : e.dn().rdn().pairs()) {
      TypeKind t = s.AttributeType(attr).ValueOrDie();
      e.AddValue(attr, ParseValueAs(t, text).ValueOrDie());
    }
    must(inst.Add(std::move(e)));
  };

  // Figure 1: higher levels of the DIF.
  add("dc=com", {"dcObject"}, {});
  add("dc=att, dc=com", {"dcObject", "domain"}, {});
  add("dc=research, dc=att, dc=com", {"dcObject"}, {});
  add("dc=corona, dc=research, dc=att, dc=com", {"dcObject"}, {});

  // Figure 11: TOPS fragments.
  add("ou=userProfiles, dc=research, dc=att, dc=com", {"organizationalUnit"},
      {});
  add("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com",
      {"inetOrgPerson", "TOPSSubscriber"},
      {{"commonName", "h jagadish"}, {"surName", "jagadish"}});
  add("QHPName=weekend, uid=jag, ou=userProfiles, dc=research, dc=att, "
      "dc=com",
      {"QHP"},
      {{"daysOfWeek", "6"}, {"daysOfWeek", "7"}, {"priority", "1"}});
  add("QHPName=workinghours, uid=jag, ou=userProfiles, dc=research, dc=att, "
      "dc=com",
      {"QHP"},
      {{"startTime", "830"}, {"endTime", "1730"}, {"priority", "2"}});
  add("CANumber=9733608750, QHPName=workinghours, uid=jag, ou=userProfiles, "
      "dc=research, dc=att, dc=com",
      {"callAppearance"}, {{"priority", "1"}, {"timeOut", "30"}});
  add("CANumber=9733608751, QHPName=workinghours, uid=jag, ou=userProfiles, "
      "dc=research, dc=att, dc=com",
      {"callAppearance"},
      {{"priority", "2"}, {"timeOut", "20"}, {"description", "secretary"}});

  // Figure 12: QoS policy fragments.
  add("ou=networkPolicies, dc=research, dc=att, dc=com",
      {"organizationalUnit"}, {});
  add("ou=SLAPolicyRules, ou=networkPolicies, dc=research, dc=att, dc=com",
      {"organizationalUnit"}, {});
  add("ou=trafficProfile, ou=networkPolicies, dc=research, dc=att, dc=com",
      {"organizationalUnit"}, {});
  add("ou=policyValidityPeriod, ou=networkPolicies, dc=research, dc=att, "
      "dc=com",
      {"organizationalUnit"}, {});
  add("ou=SLADSAction, ou=networkPolicies, dc=research, dc=att, dc=com",
      {"organizationalUnit"}, {});
  add("SLAPolicyName=dso, ou=SLAPolicyRules, ou=networkPolicies, "
      "dc=research, dc=att, dc=com",
      {"SLAPolicyRules"},
      {{"SLAPolicyScope", "DataTraffic"},
       {"SLARulePriority", "2"},
       {"SLAExceptionRef",
        "SLAPolicyName=fatt, ou=SLAPolicyRules, ou=networkPolicies, "
        "dc=research, dc=att, dc=com"},
       {"SLAExceptionRef",
        "SLAPolicyName=mail, ou=SLAPolicyRules, ou=networkPolicies, "
        "dc=research, dc=att, dc=com"},
       {"SLATPRef",
        "TPName=lsplitOff, ou=trafficProfile, ou=networkPolicies, "
        "dc=research, dc=att, dc=com"},
       {"SLATPRef",
        "TPName=csplitOff, ou=trafficProfile, ou=networkPolicies, "
        "dc=research, dc=att, dc=com"},
       {"SLAPVPRef",
        "PVPName=1998weekend, ou=policyValidityPeriod, ou=networkPolicies, "
        "dc=research, dc=att, dc=com"},
       {"SLAPVPRef",
        "PVPName=1998thanksgiving, ou=policyValidityPeriod, "
        "ou=networkPolicies, dc=research, dc=att, dc=com"},
       {"SLADSActRef",
        "DSActionName=denyAll, ou=SLADSAction, ou=networkPolicies, "
        "dc=research, dc=att, dc=com"}});
  add("SLAPolicyName=fatt, ou=SLAPolicyRules, ou=networkPolicies, "
      "dc=research, dc=att, dc=com",
      {"SLAPolicyRules"},
      {{"SLAPolicyScope", "DataTraffic"}, {"SLARulePriority", "1"}});
  add("SLAPolicyName=mail, ou=SLAPolicyRules, ou=networkPolicies, "
      "dc=research, dc=att, dc=com",
      {"SLAPolicyRules"},
      {{"SLAPolicyScope", "DataTraffic"}, {"SLARulePriority", "3"}});
  add("TPName=lsplitOff, ou=trafficProfile, ou=networkPolicies, "
      "dc=research, dc=att, dc=com",
      {"trafficProfile"},
      {{"SourceAddress", "204.178.16.*"}});
  add("TPName=csplitOff, ou=trafficProfile, ou=networkPolicies, "
      "dc=research, dc=att, dc=com",
      {"trafficProfile"},
      {{"SourceAddress", "207.140.*.*"}, {"sourcePort", "25"}});
  add("PVPName=1998weekend, ou=policyValidityPeriod, ou=networkPolicies, "
      "dc=research, dc=att, dc=com",
      {"policyValidityPeriod"},
      {{"PVStartTime", "19980101060000"},
       {"PVEndTime", "19981231180000"},
       {"PVDayOfWeek", "6"},
       {"PVDayOfWeek", "7"}});
  add("PVPName=1998thanksgiving, ou=policyValidityPeriod, "
      "ou=networkPolicies, dc=research, dc=att, dc=com",
      {"policyValidityPeriod"},
      {{"PVStartTime", "19981126000000"}, {"PVEndTime", "19981126235959"}});
  add("DSActionName=denyAll, ou=SLADSAction, ou=networkPolicies, "
      "dc=research, dc=att, dc=com",
      {"SLADSAction"},
      {{"DSPermission", "Deny"},
       {"DSInProfilePeakRate", "20"},
       {"DSDropPriority", "2"}});
  return inst;
}

}  // namespace gen
}  // namespace ndq
