#include "gen/paper_data.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace ndq {
namespace gen {

namespace {

[[noreturn]] void DieOnFixtureFailure(const char* what, const Status& st) {
  std::fprintf(stderr, "paper_data: %s failed: %s\n", what,
               st.ToString().c_str());
  std::abort();
}

}  // namespace

Result<Schema> TryPaperSchema() {
  Schema s;
  // Attributes.
  NDQ_RETURN_IF_ERROR(s.AddAttribute("dc", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("ou", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("commonName", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("surName", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("uid", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("telephoneNumber", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("description", TypeKind::kString));
  // TOPS.
  NDQ_RETURN_IF_ERROR(s.AddAttribute("QHPName", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("priority", TypeKind::kInt));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("startTime", TypeKind::kInt));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("endTime", TypeKind::kInt));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("daysOfWeek", TypeKind::kInt));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("CANumber", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("timeOut", TypeKind::kInt));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("callerUid", TypeKind::kString));
  // QoS / SLA (schema after Chaudhury et al. [11]).
  NDQ_RETURN_IF_ERROR(s.AddAttribute("SLAPolicyName", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("SLAPolicyScope", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("SLARulePriority", TypeKind::kInt));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("SLAExceptionRef", TypeKind::kDn));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("SLATPRef", TypeKind::kDn));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("SLAPVPRef", TypeKind::kDn));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("SLADSActRef", TypeKind::kDn));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("TPName", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("SourceAddress", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("DestAddress", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("sourcePort", TypeKind::kInt));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("destPort", TypeKind::kInt));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("protocol", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("PVPName", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("PVStartTime", TypeKind::kInt));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("PVEndTime", TypeKind::kInt));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("PVDayOfWeek", TypeKind::kInt));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("DSActionName", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("DSPermission", TypeKind::kString));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("DSInProfilePeakRate", TypeKind::kInt));
  NDQ_RETURN_IF_ERROR(s.AddAttribute("DSDropPriority", TypeKind::kInt));
  // Classes.
  NDQ_RETURN_IF_ERROR(s.AddClass("dcObject", {"dc"}));
  NDQ_RETURN_IF_ERROR(s.AddClass("domain", {"dc", "description"}));
  NDQ_RETURN_IF_ERROR(s.AddClass("organizationalUnit", {"ou", "description"}));
  NDQ_RETURN_IF_ERROR(s.AddClass(
      "inetOrgPerson",
      {"commonName", "surName", "uid", "telephoneNumber", "description"}));
  NDQ_RETURN_IF_ERROR(
      s.AddClass("TOPSSubscriber", {"uid", "commonName", "surName"}));
  NDQ_RETURN_IF_ERROR(s.AddClass("QHP", {"QHPName", "priority", "startTime",
                                         "endTime", "daysOfWeek",
                                         "callerUid"}));
  NDQ_RETURN_IF_ERROR(s.AddClass(
      "callAppearance", {"CANumber", "priority", "timeOut", "description"}));
  NDQ_RETURN_IF_ERROR(s.AddClass(
      "SLAPolicyRules",
      {"SLAPolicyName", "SLAPolicyScope", "SLARulePriority",
       "SLAExceptionRef", "SLATPRef", "SLAPVPRef", "SLADSActRef"}));
  NDQ_RETURN_IF_ERROR(s.AddClass(
      "trafficProfile", {"TPName", "SourceAddress", "DestAddress",
                         "sourcePort", "destPort", "protocol"}));
  NDQ_RETURN_IF_ERROR(s.AddClass(
      "policyValidityPeriod",
      {"PVPName", "PVStartTime", "PVEndTime", "PVDayOfWeek"}));
  NDQ_RETURN_IF_ERROR(s.AddClass(
      "SLADSAction", {"DSActionName", "DSPermission", "DSInProfilePeakRate",
                      "DSDropPriority"}));
  return s;
}

Schema PaperSchema() {
  Result<Schema> s = TryPaperSchema();
  if (!s.ok()) DieOnFixtureFailure("PaperSchema", s.status());
  return s.TakeValue();
}

Dn MustDn(const std::string& text) {
  Result<Dn> r = Dn::Parse(text);
  if (!r.ok()) DieOnFixtureFailure(("MustDn '" + text + "'").c_str(),
                                   r.status());
  return r.TakeValue();
}

/// Builds the directory fragments of Figures 1, 11 and 12 in one instance.
Result<DirectoryInstance> TryPaperInstance() {
  NDQ_ASSIGN_OR_RETURN(Schema schema, TryPaperSchema());
  DirectoryInstance inst(std::move(schema));
  auto add = [&](const std::string& dn_text,
                 const std::vector<std::string>& classes,
                 const std::vector<std::pair<std::string, std::string>>&
                     raw_pairs) -> Status {
    NDQ_ASSIGN_OR_RETURN(Dn dn, Dn::Parse(dn_text));
    Entry e(std::move(dn));
    for (const std::string& c : classes) e.AddClass(c);
    const Schema& s = inst.schema();
    for (const auto& [attr, text] : raw_pairs) {
      NDQ_ASSIGN_OR_RETURN(TypeKind t, s.AttributeType(attr));
      NDQ_ASSIGN_OR_RETURN(Value v, ParseValueAs(t, text));
      e.AddValue(attr, std::move(v));
    }
    // Satisfy rdn(r) subseteq val(r).
    for (const auto& [attr, text] : e.dn().rdn().pairs()) {
      NDQ_ASSIGN_OR_RETURN(TypeKind t, s.AttributeType(attr));
      NDQ_ASSIGN_OR_RETURN(Value v, ParseValueAs(t, text));
      e.AddValue(attr, std::move(v));
    }
    return inst.Add(std::move(e));
  };

  // Figure 1: higher levels of the DIF.
  NDQ_RETURN_IF_ERROR(add("dc=com", {"dcObject"}, {}));
  NDQ_RETURN_IF_ERROR(add("dc=att, dc=com", {"dcObject", "domain"}, {}));
  NDQ_RETURN_IF_ERROR(
      add("dc=research, dc=att, dc=com", {"dcObject"}, {}));
  NDQ_RETURN_IF_ERROR(
      add("dc=corona, dc=research, dc=att, dc=com", {"dcObject"}, {}));

  // Figure 11: TOPS fragments.
  NDQ_RETURN_IF_ERROR(add("ou=userProfiles, dc=research, dc=att, dc=com",
                          {"organizationalUnit"}, {}));
  NDQ_RETURN_IF_ERROR(
      add("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com",
          {"inetOrgPerson", "TOPSSubscriber"},
          {{"commonName", "h jagadish"}, {"surName", "jagadish"}}));
  NDQ_RETURN_IF_ERROR(
      add("QHPName=weekend, uid=jag, ou=userProfiles, dc=research, dc=att, "
          "dc=com",
          {"QHP"},
          {{"daysOfWeek", "6"}, {"daysOfWeek", "7"}, {"priority", "1"}}));
  NDQ_RETURN_IF_ERROR(
      add("QHPName=workinghours, uid=jag, ou=userProfiles, dc=research, "
          "dc=att, dc=com",
          {"QHP"},
          {{"startTime", "830"}, {"endTime", "1730"}, {"priority", "2"}}));
  NDQ_RETURN_IF_ERROR(
      add("CANumber=9733608750, QHPName=workinghours, uid=jag, "
          "ou=userProfiles, dc=research, dc=att, dc=com",
          {"callAppearance"}, {{"priority", "1"}, {"timeOut", "30"}}));
  NDQ_RETURN_IF_ERROR(
      add("CANumber=9733608751, QHPName=workinghours, uid=jag, "
          "ou=userProfiles, dc=research, dc=att, dc=com",
          {"callAppearance"},
          {{"priority", "2"},
           {"timeOut", "20"},
           {"description", "secretary"}}));

  // Figure 12: QoS policy fragments.
  NDQ_RETURN_IF_ERROR(
      add("ou=networkPolicies, dc=research, dc=att, dc=com",
          {"organizationalUnit"}, {}));
  NDQ_RETURN_IF_ERROR(
      add("ou=SLAPolicyRules, ou=networkPolicies, dc=research, dc=att, "
          "dc=com",
          {"organizationalUnit"}, {}));
  NDQ_RETURN_IF_ERROR(
      add("ou=trafficProfile, ou=networkPolicies, dc=research, dc=att, "
          "dc=com",
          {"organizationalUnit"}, {}));
  NDQ_RETURN_IF_ERROR(
      add("ou=policyValidityPeriod, ou=networkPolicies, dc=research, "
          "dc=att, dc=com",
          {"organizationalUnit"}, {}));
  NDQ_RETURN_IF_ERROR(
      add("ou=SLADSAction, ou=networkPolicies, dc=research, dc=att, dc=com",
          {"organizationalUnit"}, {}));
  NDQ_RETURN_IF_ERROR(
      add("SLAPolicyName=dso, ou=SLAPolicyRules, ou=networkPolicies, "
          "dc=research, dc=att, dc=com",
          {"SLAPolicyRules"},
          {{"SLAPolicyScope", "DataTraffic"},
           {"SLARulePriority", "2"},
           {"SLAExceptionRef",
            "SLAPolicyName=fatt, ou=SLAPolicyRules, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"},
           {"SLAExceptionRef",
            "SLAPolicyName=mail, ou=SLAPolicyRules, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"},
           {"SLATPRef",
            "TPName=lsplitOff, ou=trafficProfile, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"},
           {"SLATPRef",
            "TPName=csplitOff, ou=trafficProfile, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"},
           {"SLAPVPRef",
            "PVPName=1998weekend, ou=policyValidityPeriod, "
            "ou=networkPolicies, dc=research, dc=att, dc=com"},
           {"SLAPVPRef",
            "PVPName=1998thanksgiving, ou=policyValidityPeriod, "
            "ou=networkPolicies, dc=research, dc=att, dc=com"},
           {"SLADSActRef",
            "DSActionName=denyAll, ou=SLADSAction, ou=networkPolicies, "
            "dc=research, dc=att, dc=com"}}));
  NDQ_RETURN_IF_ERROR(
      add("SLAPolicyName=fatt, ou=SLAPolicyRules, ou=networkPolicies, "
          "dc=research, dc=att, dc=com",
          {"SLAPolicyRules"},
          {{"SLAPolicyScope", "DataTraffic"}, {"SLARulePriority", "1"}}));
  NDQ_RETURN_IF_ERROR(
      add("SLAPolicyName=mail, ou=SLAPolicyRules, ou=networkPolicies, "
          "dc=research, dc=att, dc=com",
          {"SLAPolicyRules"},
          {{"SLAPolicyScope", "DataTraffic"}, {"SLARulePriority", "3"}}));
  NDQ_RETURN_IF_ERROR(
      add("TPName=lsplitOff, ou=trafficProfile, ou=networkPolicies, "
          "dc=research, dc=att, dc=com",
          {"trafficProfile"}, {{"SourceAddress", "204.178.16.*"}}));
  NDQ_RETURN_IF_ERROR(
      add("TPName=csplitOff, ou=trafficProfile, ou=networkPolicies, "
          "dc=research, dc=att, dc=com",
          {"trafficProfile"},
          {{"SourceAddress", "207.140.*.*"}, {"sourcePort", "25"}}));
  NDQ_RETURN_IF_ERROR(
      add("PVPName=1998weekend, ou=policyValidityPeriod, "
          "ou=networkPolicies, dc=research, dc=att, dc=com",
          {"policyValidityPeriod"},
          {{"PVStartTime", "19980101060000"},
           {"PVEndTime", "19981231180000"},
           {"PVDayOfWeek", "6"},
           {"PVDayOfWeek", "7"}}));
  NDQ_RETURN_IF_ERROR(
      add("PVPName=1998thanksgiving, ou=policyValidityPeriod, "
          "ou=networkPolicies, dc=research, dc=att, dc=com",
          {"policyValidityPeriod"},
          {{"PVStartTime", "19981126000000"},
           {"PVEndTime", "19981126235959"}}));
  NDQ_RETURN_IF_ERROR(
      add("DSActionName=denyAll, ou=SLADSAction, ou=networkPolicies, "
          "dc=research, dc=att, dc=com",
          {"SLADSAction"},
          {{"DSPermission", "Deny"},
           {"DSInProfilePeakRate", "20"},
           {"DSDropPriority", "2"}}));
  return inst;
}

DirectoryInstance PaperInstance() {
  Result<DirectoryInstance> inst = TryPaperInstance();
  if (!inst.ok()) DieOnFixtureFailure("PaperInstance", inst.status());
  return inst.TakeValue();
}

}  // namespace gen
}  // namespace ndq
