#include "gen/random_forest.h"

#include <iterator>
#include <limits>
#include <string>
#include <vector>

namespace ndq {
namespace gen {

namespace {

// Adversarial decorations for RDN values: DN metacharacters and edge
// spaces that the escaping machinery must round-trip. '?', '(' and ')'
// are excluded — they are query-text delimiters, not DN syntax, and a
// base containing them cannot appear in parseable query text.
const char* const kWeirdPrefixes[] = {" ", ", ", "=", "+", "\\", "\\ ",
                                      "  ", "a=b,"};
const char* const kWeirdSuffixes[] = {" ", " ,", "=", "+x", "\\", " \\",
                                      "\\ ", "  "};

}  // namespace

DirectoryInstance RandomForest(const RandomForestOptions& options) {
  std::mt19937 rng(options.seed);
  DirectoryInstance inst(Schema(), /*validate=*/false);

  auto chance = [&](double p) {
    return p > 0 && std::uniform_real_distribution<double>(0, 1)(rng) < p;
  };

  // Grow the forest: keep a pool of prospective parents; each new entry
  // attaches under a random pool member (or becomes a root).
  std::vector<Dn> pool;
  size_t serial = 0;
  auto make_rdn = [&](const char* attr) {
    std::string value = "n" + std::to_string(serial++);
    if (chance(options.weird_rdn_probability)) {
      uint32_t mode = rng() % 3;  // 0=prefix 1=suffix 2=both
      if (mode != 1) {
        value = kWeirdPrefixes[rng() % std::size(kWeirdPrefixes)] + value;
      }
      if (mode != 0) {
        value += kWeirdSuffixes[rng() % std::size(kWeirdSuffixes)];
      }
    }
    return Rdn::Single(attr, value).TakeValue();
  };
  std::vector<Dn> all_dns;
  for (size_t i = 0; i < options.num_entries; ++i) {
    Dn dn;
    if (pool.size() < options.num_roots) {
      dn = Dn::Make({make_rdn("dc")}).TakeValue();
    } else {
      const Dn& parent = pool[rng() % pool.size()];
      const char* attr = (parent.depth() % 2 == 0) ? "ou" : "cn";
      dn = parent.Child(make_rdn(attr));
    }
    if (rng() % options.max_children != 0) pool.push_back(dn);
    all_dns.push_back(dn);
  }

  // Populate attributes; references point at any generated dn.
  for (const Dn& dn : all_dns) {
    Entry e(dn);
    e.AddClass("class" + std::to_string(rng() % options.num_classes));
    if (rng() % 4 == 0) {
      e.AddClass("class" + std::to_string(rng() % options.num_classes));
    }
    auto draw_x = [&]() -> int64_t {
      if (chance(options.extreme_int_probability)) {
        // Within a small offset of ±INT64_MAX so that two or three values
        // summed wrap an int64 accumulator.
        int64_t extreme =
            std::numeric_limits<int64_t>::max() - static_cast<int64_t>(rng() % 4);
        return (rng() % 2 == 0) ? extreme : -extreme;
      }
      return static_cast<int64_t>(rng() % options.int_attr_range);
    };
    e.AddInt("x", draw_x());
    if (rng() % 3 == 0) {
      e.AddInt("x", draw_x());
    }
    e.AddString("tag", "tag" + std::to_string(rng() % options.num_tags));
    // rdn(r) subseteq val(r).
    for (const auto& [attr, value] : dn.rdn().pairs()) {
      e.AddString(attr, value);
    }
    if (std::uniform_real_distribution<double>(0, 1)(rng) <
        options.ref_probability) {
      int nrefs = 1 + static_cast<int>(rng() % options.max_refs);
      for (int r = 0; r < nrefs; ++r) {
        e.AddDnRef("ref", all_dns[rng() % all_dns.size()]);
      }
    }
    Status s = inst.Add(std::move(e));
    (void)s;  // duplicate dns impossible: serial numbers are unique
  }
  return inst;
}

}  // namespace gen
}  // namespace ndq
