// Scalable synthetic DEN directory generator.
//
// The paper's applications (Sec. 2) use real AT&T data we do not have;
// this generator reproduces their *shape* at any scale: a DNS-style domain
// hierarchy (Fig. 1), a networkPolicies subtree per domain with
// SLAPolicyRules / trafficProfile / policyValidityPeriod / SLADSAction
// entries cross-linked by DN-valued reference attributes (Fig. 12), and a
// userProfiles subtree with TOPSSubscriber / QHP / callAppearance chains
// (Fig. 11). Sizes, fan-outs and reference densities are parameters, so
// the benchmark harness can sweep directory size while holding shape
// fixed.

#ifndef NDQ_GEN_DIF_GEN_H_
#define NDQ_GEN_DIF_GEN_H_

#include <cstdint>

#include "core/instance.h"

namespace ndq {
namespace gen {

struct DifOptions {
  uint32_t seed = 1;
  /// DNS levels: number of top-level orgs under dc=com, and subdomains per
  /// org (each subdomain owns a networkPolicies + userProfiles subtree).
  int num_orgs = 2;
  int subdomains_per_org = 2;
  /// QoS content per subdomain.
  int policies_per_domain = 8;
  int profiles_per_domain = 6;
  int periods_per_domain = 4;
  int actions_per_domain = 3;
  int refs_per_policy = 2;        ///< SLATPRef / SLAPVPRef fan-out
  double exception_probability = 0.3;  ///< chance of an SLAExceptionRef
  int priority_levels = 5;
  /// TOPS content per subdomain.
  int subscribers_per_domain = 10;
  int qhps_per_subscriber = 3;
  int cas_per_qhp = 2;
};

/// Generates the synthetic DEN directory (schema = PaperSchema()).
DirectoryInstance GenerateDif(const DifOptions& options);

/// Approximate entry count for the given options (exact for this
/// generator; useful for sizing sweeps).
size_t ExpectedDifSize(const DifOptions& options);

}  // namespace gen
}  // namespace ndq

#endif  // NDQ_GEN_DIF_GEN_H_
