#include "gen/random_query.h"

#include <vector>

namespace ndq {
namespace gen {

namespace {

class QueryGen {
 public:
  QueryGen(std::mt19937* rng, const DirectoryInstance& inst,
           const RandomQueryOptions& options)
      : rng_(*rng), options_(options) {
    for (const auto& [key, entry] : inst) {
      (void)entry;
      Result<Dn> dn = Dn::FromHierKey(key);
      if (dn.ok()) dns_.push_back(dn.TakeValue());
    }
  }

  QueryPtr Gen(int depth) {
    int lang = static_cast<int>(options_.max_language);
    // Weighted choice of node kind, bounded by depth and language.
    if (depth <= 0 || Chance(options_.leaf_probability)) return GenAtomic();
    std::vector<int> choices;  // 0=bool 1=hier 2=hierc 3=g 4=er
    auto add = [&](int kind, int weight) {
      for (int w = 0; w < weight; ++w) choices.push_back(kind);
    };
    if (lang >= 1) add(0, options_.bool_weight);
    if (lang >= 2) {
      add(1, options_.hierarchy_weight);
      add(2, options_.constrained_weight);
    }
    if (lang >= 3) add(3, options_.agg_weight);
    if (lang >= 4) add(4, options_.embedded_ref_weight);
    if (choices.empty()) return GenAtomic();
    switch (choices[rng_() % choices.size()]) {
      case 0: {
        QueryOp ops[] = {QueryOp::kAnd, QueryOp::kOr, QueryOp::kDiff};
        QueryOp op = ops[rng_() % 3];
        QueryPtr a = Gen(depth - 1);
        QueryPtr b = Gen(depth - 1);
        if (op == QueryOp::kAnd) return Query::And(a, b);
        if (op == QueryOp::kOr) return Query::Or(a, b);
        return Query::Diff(a, b);
      }
      case 1: {
        QueryOp ops[] = {QueryOp::kParents, QueryOp::kChildren,
                         QueryOp::kAncestors, QueryOp::kDescendants};
        return Query::Hierarchy(ops[rng_() % 4], Gen(depth - 1),
                                Gen(depth - 1), MaybeAgg(lang));
      }
      case 2: {
        QueryOp op = (rng_() % 2 == 0) ? QueryOp::kCoAncestors
                                       : QueryOp::kCoDescendants;
        return Query::HierarchyConstrained(op, Gen(depth - 1), Gen(depth - 1),
                                           Gen(depth - 1), MaybeAgg(lang));
      }
      case 3:
        return Query::SimpleAgg(Gen(depth - 1), RandomAggFilter(false));
      default: {
        QueryOp op =
            (rng_() % 2 == 0) ? QueryOp::kValueDn : QueryOp::kDnValue;
        return Query::EmbeddedRef(op, Gen(depth - 1), Gen(depth - 1), "ref",
                                  MaybeAgg(lang));
      }
    }
  }

 private:
  bool Chance(double p) {
    return std::uniform_real_distribution<double>(0, 1)(rng_) < p;
  }

  QueryPtr GenAtomic() {
    Dn base;
    // Mostly broad bases so operands overlap; sometimes a specific one.
    if (!dns_.empty() && Chance(0.5)) {
      const Dn& dn = dns_[rng_() % dns_.size()];
      // Walk up to a shallow ancestor most of the time.
      base = dn;
      while (base.depth() > 1 && Chance(0.6)) base = base.Parent();
    }
    Scope scopes[] = {Scope::kBase, Scope::kOne, Scope::kSub, Scope::kSub,
                      Scope::kSub};
    Scope scope = scopes[rng_() % 5];
    if (base.IsNull()) scope = Scope::kSub;
    return Query::Atomic(base, scope, RandomFilter());
  }

  AtomicFilter RandomFilter() {
    switch (rng_() % 7) {
      case 0:
        return AtomicFilter::True();
      case 1:
        return AtomicFilter::Presence("ref");
      case 2:
        return AtomicFilter::Equals(
            "objectClass", Value::String("class" + std::to_string(rng_() % 3)));
      case 3: {
        CompareOp ops[] = {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                           CompareOp::kGe, CompareOp::kEq, CompareOp::kNe};
        return AtomicFilter::IntCompare("x", ops[rng_() % 6],
                                        static_cast<int64_t>(rng_() % 20));
      }
      case 4:
        return AtomicFilter::Equals(
            "tag", Value::String("tag" + std::to_string(rng_() % 8)));
      case 5:
        // String equality whose rhs looks like an int: serializes with
        // the quoted syntax (x="5") and must stay distinct from the
        // int-typed x=5 everywhere (typed cache keys, rewrites, ...).
        return AtomicFilter::Equals(
            "x", Value::String(std::to_string(rng_() % 20)));
      default:
        return AtomicFilter::Substring("tag",
                                       "*" + std::to_string(rng_() % 10) +
                                           "*");
    }
  }

  std::optional<AggSelFilter> MaybeAgg(int lang) {
    if (lang < 3 || !Chance(options_.agg_probability)) return std::nullopt;
    return RandomAggFilter(true);
  }

  AggSelFilter RandomAggFilter(bool structural) {
    AggSelFilter f;
    f.lhs = RandomAggAttr(structural, /*allow_const=*/false);
    CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
    f.op = ops[rng_() % 6];
    f.rhs = RandomAggAttr(structural, /*allow_const=*/true);
    return f;
  }

  EntryAgg RandomEntryAgg(bool structural) {
    EntryAgg ea;
    AggFn fns[] = {AggFn::kMin, AggFn::kMax, AggFn::kSum, AggFn::kCount,
                   AggFn::kAvg};
    ea.fn = fns[rng_() % 5];
    if (structural && rng_() % 2 == 0) {
      if (rng_() % 3 == 0) {
        ea.fn = AggFn::kCount;
        ea.target = AggTarget::kWitnessCount;
      } else {
        ea.target = AggTarget::kWitnessAttr;
        ea.attr = "x";
      }
    } else {
      ea.target = AggTarget::kSelfAttr;
      ea.attr = (rng_() % 4 == 0) ? "ref" : "x";
    }
    return ea;
  }

  AggAttr RandomAggAttr(bool structural, bool allow_const) {
    int pick = rng_() % (allow_const ? 3 : 2);
    if (allow_const && pick == 2) {
      return AggAttr::Const(static_cast<int64_t>(rng_() % 25));
    }
    if (pick == 1 && rng_() % 2 == 0) {
      if (rng_() % 3 == 0) return AggAttr::CountSet(!structural);
      return AggAttr::EntrySet(
          (rng_() % 2 == 0) ? AggFn::kMin : AggFn::kMax,
          RandomEntryAgg(structural));
    }
    return AggAttr::Entry(RandomEntryAgg(structural));
  }

  std::mt19937& rng_;
  RandomQueryOptions options_;
  std::vector<Dn> dns_;
};

}  // namespace

QueryPtr RandomQuery(std::mt19937* rng, const DirectoryInstance& instance,
                     const RandomQueryOptions& options) {
  QueryGen gen(rng, instance, options);
  return gen.Gen(options.max_depth);
}

}  // namespace gen
}  // namespace ndq
