// The TOPS dial-by-name application of Example 2.2.
//
// A caller supplies the callee's logical name, their own identity and the
// time of day; the directory answers with the call appearances of the
// HIGHEST-priority query handling profile (QHP) whose constraints the call
// context satisfies — giving subscribers location/device independence and
// control over who can reach them when (Fig. 11).

#ifndef NDQ_APPS_TOPS_H_
#define NDQ_APPS_TOPS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace ndq {
namespace apps {

/// Caller-provided context for a dial-by-name lookup.
struct CallContext {
  std::string caller_uid;     ///< optional (empty = anonymous)
  int64_t time_of_day = 0;    ///< hhmm, e.g. 1430
  int64_t day_of_week = 1;    ///< 1..7
};

/// A resolved dial-by-name answer.
struct CallResolution {
  bool subscriber_found = false;
  std::optional<Entry> winning_qhp;
  /// Call appearances of the winning QHP, by ascending priority value.
  std::vector<Entry> appearances;
};

/// \brief Resolves subscribers within one domain's userProfiles subtree.
class TopsResolver {
 public:
  /// `domain` is the domain entry above "ou=userProfiles" (e.g.
  /// "dc=research, dc=att, dc=com"). The resolver opens its own Session
  /// on `engine` (which must outlive it) and shares the engine's pool and
  /// operand cache — the caller is responsible for
  /// Engine::InvalidateCaches() after store mutations.
  TopsResolver(Engine* engine, Dn domain);

  /// DEPRECATED shim: wires a private borrowing-mode Engine over
  /// (scratch, store) with the operand cache off (matching the historic
  /// uncached read-through semantics). Prefer the Engine constructor.
  TopsResolver(Disk* scratch, const EntrySource* store, Dn domain,
               ExecOptions options = {});

  /// Dial-by-name: resolve `callee_uid` under the configured domain.
  Result<CallResolution> Resolve(const std::string& callee_uid,
                                 const CallContext& ctx);

  /// All QHPs of a subscriber that match the context, best priority first
  /// (exposed for tests).
  Result<std::vector<Entry>> MatchingQhps(const Dn& subscriber,
                                          const CallContext& ctx);

 private:
  Result<std::vector<Entry>> Eval(const QueryPtr& query);

  Dn profiles_base_;  // ou=userProfiles, <domain>
  std::unique_ptr<Engine> owned_engine_;  // deprecated-shim mode only
  Session session_;
};

/// Whether one QHP entry admits the context (time window, days-of-week,
/// caller allowlist — absent attributes don't constrain; Sec. 3.5's
/// heterogeneity).
bool QhpMatches(const Entry& qhp, const CallContext& ctx);

}  // namespace apps
}  // namespace ndq

#endif  // NDQ_APPS_TOPS_H_
