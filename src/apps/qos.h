// The QoS / Service Level Agreement application of Example 2.1.
//
// Policy enforcement entities (hosts, routers, firewalls) present a packet
// profile and the current time; the directory answers with the actions of
// the policies that match, such that (a) no higher-priority policy applies
// and (b) the matching policies have no applicable exception of the same
// priority. Policies reference their traffic profiles, validity periods,
// exceptions and action through DN-valued attributes (Fig. 12), so the
// resolution pipeline is L3 work: matched profile/period sets are inserted
// into the query tree as unions of base-scoped atomic queries (the closure
// property of Sec. 4.1 in action), combined with vd/dv joins and a
// min-priority aggregate selection.

#ifndef NDQ_APPS_QOS_H_
#define NDQ_APPS_QOS_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace ndq {
namespace apps {

/// The packet profile + time an enforcement entity submits (Sec. 2.1).
struct PacketProfile {
  std::string source_address;  ///< dotted quad, e.g. "204.178.16.5"
  std::string dest_address;
  int64_t source_port = -1;  ///< -1 = unknown
  int64_t dest_port = -1;
  std::string protocol;       ///< e.g. "TCP"; empty = unknown
  int64_t timestamp = 0;      ///< yyyymmddhhmmss
  int64_t day_of_week = 0;    ///< 1..7
};

/// The outcome of a policy lookup.
struct PolicyDecision {
  /// The policies that won (same, highest priority, exceptions resolved).
  std::vector<Entry> policies;
  /// Their actions, deduplicated, in directory order.
  std::vector<Entry> actions;
  /// Diagnostics: how many policies matched before priority/exception
  /// resolution.
  size_t applicable_policies = 0;
};

/// \brief Answers packet-profile queries against one administrative
/// domain's networkPolicies subtree.
class QosPolicyEngine {
 public:
  /// `domain` is the domain entry above the "ou=networkPolicies" subtree
  /// (e.g. "dc=research, dc=att, dc=com"). Opens its own Session on
  /// `engine` (which must outlive it) and shares the engine's pool and
  /// operand cache — the caller is responsible for
  /// Engine::InvalidateCaches() after store mutations.
  QosPolicyEngine(Engine* engine, Dn domain);

  /// DEPRECATED shim: wires a private borrowing-mode Engine over
  /// (scratch, store) with the operand cache off (matching the historic
  /// uncached read-through semantics). Prefer the Engine constructor.
  QosPolicyEngine(Disk* scratch, const EntrySource* store, Dn domain,
                  ExecOptions options = {});

  /// Full resolution per Sec. 2.1.
  Result<PolicyDecision> Match(const PacketProfile& packet);

  /// The matching traffic profiles for a packet (exposed for tests).
  Result<std::vector<Entry>> MatchingProfiles(const PacketProfile& packet);
  /// The matching validity periods for a time (exposed for tests).
  Result<std::vector<Entry>> MatchingPeriods(const PacketProfile& packet);

 private:
  Result<std::vector<Entry>> Eval(const QueryPtr& query);

  Dn policies_base_;  // ou=networkPolicies, <domain>
  std::unique_ptr<Engine> owned_engine_;  // deprecated-shim mode only
  Session session_;
};

/// True iff a concrete dotted address matches a profile pattern such as
/// "204.178.16.*" or "207.140.*.*".
bool AddressMatches(const std::string& pattern, const std::string& address);

}  // namespace apps
}  // namespace ndq

#endif  // NDQ_APPS_QOS_H_
