#include "apps/qos.h"

#include <algorithm>
#include <map>
#include <set>

#include "filter/atomic_filter.h"

namespace ndq {
namespace apps {

namespace {

Rdn MustRdn(const std::string& attr, const std::string& value) {
  return Rdn::Single(attr, value).TakeValue();
}

/// A query selecting exactly the given entries: the union of base-scoped
/// atomic queries over their dns (empty set -> a query with no matches).
QueryPtr UnionOfBases(const std::vector<Entry>& entries, const Dn& domain) {
  QueryPtr q;
  for (const Entry& e : entries) {
    QueryPtr leaf =
        Query::Atomic(e.dn(), Scope::kBase, AtomicFilter::True());
    q = (q == nullptr) ? leaf : Query::Or(std::move(q), std::move(leaf));
  }
  if (q == nullptr) {
    // An unsatisfiable atomic query under the domain.
    q = Query::Atomic(domain, Scope::kBase,
                      AtomicFilter::Presence("SLAPolicyName"));
  }
  return q;
}

}  // namespace

bool AddressMatches(const std::string& pattern, const std::string& address) {
  // Split both into dotted components; '*' matches one component.
  auto split = [](const std::string& s) {
    std::vector<std::string> parts;
    std::string cur;
    for (char c : s) {
      if (c == '.') {
        parts.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    parts.push_back(cur);
    return parts;
  };
  std::vector<std::string> p = split(pattern);
  std::vector<std::string> a = split(address);
  if (p.size() != a.size()) return false;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] != "*" && p[i] != a[i]) return false;
  }
  return true;
}

QosPolicyEngine::QosPolicyEngine(Engine* engine, Dn domain)
    : policies_base_(domain.Child(MustRdn("ou", "networkPolicies"))),
      session_(engine->OpenSession()) {}

QosPolicyEngine::QosPolicyEngine(Disk* scratch, const EntrySource* store,
                                 Dn domain, ExecOptions options)
    : policies_base_(domain.Child(MustRdn("ou", "networkPolicies"))),
      owned_engine_(std::make_unique<Engine>(scratch, store, [&] {
        EngineOptions o;
        o.exec = options;
        // Uncached, like the historic Evaluator wiring: callers of this
        // shim mutate the store without engine-level invalidation.
        o.cache_capacity_pages = 0;
        return o;
      }())),
      session_(owned_engine_->OpenSession()) {}

Result<std::vector<Entry>> QosPolicyEngine::Eval(const QueryPtr& query) {
  QueryOutcome outcome = session_.Run(query);
  if (!outcome.ok()) return outcome.status;
  return std::move(outcome.entries);
}

Result<std::vector<Entry>> QosPolicyEngine::MatchingProfiles(
    const PacketProfile& packet) {
  // Narrow by port in the query where known; the address wildcard match
  // runs application-side (the *pattern* lives in the data).
  QueryPtr q = Query::Atomic(
      policies_base_, Scope::kSub,
      AtomicFilter::Equals(kObjectClassAttr,
                           Value::String("trafficProfile")));
  NDQ_ASSIGN_OR_RETURN(std::vector<Entry> profiles, Eval(q));
  std::vector<Entry> out;
  for (Entry& tp : profiles) {
    // Port constraints: a profile with a sourcePort only matches packets
    // with that port (heterogeneity: many profiles omit it).
    const std::vector<Value>* sp = tp.Values("sourcePort");
    if (sp != nullptr) {
      bool ok = packet.source_port >= 0 &&
                std::any_of(sp->begin(), sp->end(), [&](const Value& v) {
                  return v.is_int() && v.AsInt() == packet.source_port;
                });
      if (!ok) continue;
    }
    const std::vector<Value>* dp = tp.Values("destPort");
    if (dp != nullptr) {
      bool ok = packet.dest_port >= 0 &&
                std::any_of(dp->begin(), dp->end(), [&](const Value& v) {
                  return v.is_int() && v.AsInt() == packet.dest_port;
                });
      if (!ok) continue;
    }
    const std::vector<Value>* sa = tp.Values("SourceAddress");
    if (sa != nullptr && !packet.source_address.empty()) {
      bool ok = std::any_of(sa->begin(), sa->end(), [&](const Value& v) {
        return !v.is_int() &&
               AddressMatches(v.AsString(), packet.source_address);
      });
      if (!ok) continue;
    }
    const std::vector<Value>* da = tp.Values("DestAddress");
    if (da != nullptr && !packet.dest_address.empty()) {
      bool ok = std::any_of(da->begin(), da->end(), [&](const Value& v) {
        return !v.is_int() &&
               AddressMatches(v.AsString(), packet.dest_address);
      });
      if (!ok) continue;
    }
    out.push_back(std::move(tp));
  }
  return out;
}

Result<std::vector<Entry>> QosPolicyEngine::MatchingPeriods(
    const PacketProfile& packet) {
  // Time-window filtering pushes into the query; day-of-week set
  // membership is checked application-side.
  QueryPtr in_window = Query::And(
      Query::Atomic(policies_base_, Scope::kSub,
                    AtomicFilter::IntCompare("PVStartTime", CompareOp::kLe,
                                             packet.timestamp)),
      Query::Atomic(policies_base_, Scope::kSub,
                    AtomicFilter::IntCompare("PVEndTime", CompareOp::kGe,
                                             packet.timestamp)));
  QueryPtr q = Query::And(
      Query::Atomic(policies_base_, Scope::kSub,
                    AtomicFilter::Equals(
                        kObjectClassAttr,
                        Value::String("policyValidityPeriod"))),
      std::move(in_window));
  NDQ_ASSIGN_OR_RETURN(std::vector<Entry> periods, Eval(q));
  std::vector<Entry> out;
  for (Entry& pvp : periods) {
    const std::vector<Value>* days = pvp.Values("PVDayOfWeek");
    if (days != nullptr) {
      bool ok = std::any_of(days->begin(), days->end(), [&](const Value& v) {
        return v.is_int() && v.AsInt() == packet.day_of_week;
      });
      if (!ok) continue;
    }
    out.push_back(std::move(pvp));
  }
  return out;
}

Result<PolicyDecision> QosPolicyEngine::Match(const PacketProfile& packet) {
  NDQ_ASSIGN_OR_RETURN(std::vector<Entry> profiles,
                       MatchingProfiles(packet));
  NDQ_ASSIGN_OR_RETURN(std::vector<Entry> periods, MatchingPeriods(packet));

  PolicyDecision decision;
  if (profiles.empty()) return decision;

  // Applicable policies: reference >= 1 matching traffic profile, and
  // either reference >= 1 matching validity period or specify none.
  QueryPtr policies_q = Query::Atomic(
      policies_base_, Scope::kSub,
      AtomicFilter::Equals(kObjectClassAttr,
                           Value::String("SLAPolicyRules")));
  QueryPtr via_tp =
      Query::EmbeddedRef(QueryOp::kValueDn, policies_q,
                         UnionOfBases(profiles, policies_base_), "SLATPRef");
  // Policies with a matching period.
  QueryPtr via_pvp = Query::EmbeddedRef(
      QueryOp::kValueDn, via_tp, UnionOfBases(periods, policies_base_),
      "SLAPVPRef");
  // Policies with no period constraint at all: count(SLAPVPRef) = 0.
  NDQ_ASSIGN_OR_RETURN(AggSelFilter no_pvp,
                       ParseAggSelFilter("count(SLAPVPRef)=0"));
  QueryPtr unconstrained = Query::SimpleAgg(via_tp, no_pvp);
  QueryPtr applicable_q =
      Query::Or(std::move(via_pvp), std::move(unconstrained));

  NDQ_ASSIGN_OR_RETURN(std::vector<Entry> applicable, Eval(applicable_q));
  decision.applicable_policies = applicable.size();
  if (applicable.empty()) return decision;

  // Highest priority = smallest SLARulePriority among the applicable set
  // (the Sec. 7 aggregate idiom).
  NDQ_ASSIGN_OR_RETURN(
      AggSelFilter top,
      ParseAggSelFilter(
          "min(SLARulePriority)=min(min(SLARulePriority))"));
  QueryPtr winners_q = Query::SimpleAgg(
      UnionOfBases(applicable, policies_base_), top);
  NDQ_ASSIGN_OR_RETURN(std::vector<Entry> winners, Eval(winners_q));

  // Exception resolution: drop a winner if one of its exceptions is
  // itself applicable at the same priority.
  std::set<std::string> applicable_keys;
  for (const Entry& e : applicable) applicable_keys.insert(e.HierKey());
  auto priority_of = [](const Entry& e) -> int64_t {
    const std::vector<Value>* v = e.Values("SLARulePriority");
    return (v != nullptr && !v->empty() && (*v)[0].is_int())
               ? (*v)[0].AsInt()
               : INT64_MAX;
  };
  std::map<std::string, int64_t> applicable_priority;
  for (const Entry& e : applicable) {
    applicable_priority[e.dn().ToString()] = priority_of(e);
  }
  std::vector<Entry> surviving;
  for (Entry& w : winners) {
    bool vetoed = false;
    const std::vector<Value>* excs = w.Values("SLAExceptionRef");
    if (excs != nullptr) {
      for (const Value& exc : *excs) {
        auto it = applicable_priority.find(exc.AsString());
        if (it != applicable_priority.end() &&
            it->second == priority_of(w)) {
          vetoed = true;
          break;
        }
      }
    }
    if (!vetoed) surviving.push_back(std::move(w));
  }

  // Dereference the actions of the surviving policies (dv join).
  QueryPtr actions_q = Query::EmbeddedRef(
      QueryOp::kDnValue,
      Query::Atomic(policies_base_, Scope::kSub,
                    AtomicFilter::Equals(kObjectClassAttr,
                                         Value::String("SLADSAction"))),
      UnionOfBases(surviving, policies_base_), "SLADSActRef");
  NDQ_ASSIGN_OR_RETURN(decision.actions, Eval(actions_q));
  decision.policies = std::move(surviving);
  return decision;
}

}  // namespace apps
}  // namespace ndq
