#include "apps/tops.h"

#include <algorithm>

namespace ndq {
namespace apps {

namespace {

Rdn MustRdn(const std::string& attr, const std::string& value) {
  return Rdn::Single(attr, value).TakeValue();
}

int64_t PriorityOf(const Entry& e) {
  const std::vector<Value>* v = e.Values("priority");
  return (v != nullptr && !v->empty() && (*v)[0].is_int()) ? (*v)[0].AsInt()
                                                           : INT64_MAX;
}

}  // namespace

bool QhpMatches(const Entry& qhp, const CallContext& ctx) {
  const std::vector<Value>* start = qhp.Values("startTime");
  const std::vector<Value>* end = qhp.Values("endTime");
  if (start != nullptr && !start->empty() && (*start)[0].is_int() &&
      ctx.time_of_day < (*start)[0].AsInt()) {
    return false;
  }
  if (end != nullptr && !end->empty() && (*end)[0].is_int() &&
      ctx.time_of_day > (*end)[0].AsInt()) {
    return false;
  }
  const std::vector<Value>* days = qhp.Values("daysOfWeek");
  if (days != nullptr) {
    bool ok = std::any_of(days->begin(), days->end(), [&](const Value& v) {
      return v.is_int() && v.AsInt() == ctx.day_of_week;
    });
    if (!ok) return false;
  }
  const std::vector<Value>* callers = qhp.Values("callerUid");
  if (callers != nullptr) {
    bool ok = std::any_of(
        callers->begin(), callers->end(), [&](const Value& v) {
          return !v.is_int() && v.AsString() == ctx.caller_uid;
        });
    if (!ok) return false;
  }
  return true;
}

TopsResolver::TopsResolver(Engine* engine, Dn domain)
    : profiles_base_(domain.Child(MustRdn("ou", "userProfiles"))),
      session_(engine->OpenSession()) {}

TopsResolver::TopsResolver(Disk* scratch, const EntrySource* store,
                           Dn domain, ExecOptions options)
    : profiles_base_(domain.Child(MustRdn("ou", "userProfiles"))),
      owned_engine_(std::make_unique<Engine>(scratch, store, [&] {
        EngineOptions o;
        o.exec = options;
        // Uncached, like the historic Evaluator wiring: callers of this
        // shim mutate the store without engine-level invalidation.
        o.cache_capacity_pages = 0;
        return o;
      }())),
      session_(owned_engine_->OpenSession()) {}

Result<std::vector<Entry>> TopsResolver::Eval(const QueryPtr& query) {
  QueryOutcome outcome = session_.Run(query);
  if (!outcome.ok()) return outcome.status;
  return std::move(outcome.entries);
}

Result<std::vector<Entry>> TopsResolver::MatchingQhps(
    const Dn& subscriber, const CallContext& ctx) {
  // The subscriber's QHPs are the class-QHP entries whose parent is the
  // subscriber: (p <QHPs under subscriber> <subscriber>).
  QueryPtr q = Query::Hierarchy(
      QueryOp::kParents,
      Query::Atomic(subscriber, Scope::kSub,
                    AtomicFilter::Equals(kObjectClassAttr,
                                         Value::String("QHP"))),
      Query::Atomic(subscriber, Scope::kBase, AtomicFilter::True()));
  NDQ_ASSIGN_OR_RETURN(std::vector<Entry> qhps, Eval(q));
  std::vector<Entry> matching;
  for (Entry& qhp : qhps) {
    if (QhpMatches(qhp, ctx)) matching.push_back(std::move(qhp));
  }
  std::stable_sort(matching.begin(), matching.end(),
                   [](const Entry& a, const Entry& b) {
                     return PriorityOf(a) < PriorityOf(b);
                   });
  return matching;
}

Result<CallResolution> TopsResolver::Resolve(const std::string& callee_uid,
                                             const CallContext& ctx) {
  CallResolution res;
  // Locate the subscriber entry by uid.
  QueryPtr find = Query::And(
      Query::Atomic(profiles_base_, Scope::kSub,
                    AtomicFilter::Equals("uid", Value::String(callee_uid))),
      Query::Atomic(profiles_base_, Scope::kSub,
                    AtomicFilter::Equals(kObjectClassAttr,
                                         Value::String("TOPSSubscriber"))));
  NDQ_ASSIGN_OR_RETURN(std::vector<Entry> subs, Eval(find));
  if (subs.empty()) return res;
  res.subscriber_found = true;
  const Dn& subscriber = subs[0].dn();

  NDQ_ASSIGN_OR_RETURN(std::vector<Entry> qhps,
                       MatchingQhps(subscriber, ctx));
  if (qhps.empty()) return res;
  res.winning_qhp = qhps[0];

  // Call appearances = children of the winning QHP, by priority.
  QueryPtr ca_q = Query::Atomic(
      res.winning_qhp->dn(), Scope::kSub,
      AtomicFilter::Equals(kObjectClassAttr,
                           Value::String("callAppearance")));
  NDQ_ASSIGN_OR_RETURN(res.appearances, Eval(ca_q));
  std::stable_sort(res.appearances.begin(), res.appearances.end(),
                   [](const Entry& a, const Entry& b) {
                     return PriorityOf(a) < PriorityOf(b);
                   });
  return res;
}

}  // namespace apps
}  // namespace ndq
