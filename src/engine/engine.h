// The multi-query batch engine: one session-oriented front door for the
// whole evaluation stack.
//
// Everything below this layer is a component you wire by hand: disks,
// stores, evaluators, the operand cache, the thread pool, fault
// injection, tracing. ndq::Engine owns that wiring once — every frontend
// (ndqsh, the example apps, the benches, the fuzzer) opens a Session and
// submits queries, and gets the same semantics: canonicalized plans,
// admission control, per-query EXPLAIN ANALYZE traces, and — for batches
// — cross-query operand sharing.
//
// Cross-query sharing is the paper's physical design paying off at the
// workload level: operand lists are materialized in reverse-DN order, so
// a sub-plan's output is reusable by EVERY query in a batch that contains
// the same sub-plan, not just by later operators of one query. RunBatch
// canonicalizes the batch, runs a sharing census (query/fingerprint.h),
// materializes each maximal shared subtree exactly once, and lets every
// query copy the finished list out of the operand cache for ~2*out pages
// instead of re-evaluating the subtree.
//
// Admission control is deliberately graceful: a query the engine refuses
// (queue full, or its cost estimate exceeds the per-query page budget)
// still yields a QueryOutcome — status ResourceExhausted plus a
// DegradationWarning{source: "admission"} — never an abort, mirroring how
// the distributed layer degrades instead of failing (core/degradation.h).
//
// Threading: the engine owns ONE fleet-wide pool; every in-flight query's
// intra-query parallelism draws from it, so total concurrency is bounded
// no matter how many sessions are open. Sessions are driven by user
// threads; with parallelism 1 the pool has no workers and Submit runs the
// query inline (the degenerate sequential mode, same code path).

#ifndef NDQ_ENGINE_ENGINE_H_
#define NDQ_ENGINE_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/degradation.h"
#include "dist/distributed.h"
#include "exec/parallel_evaluator.h"
#include "index/attr_index.h"
#include "query/optimize.h"
#include "storage/fault_injector.h"
#include "store/directory_store.h"

namespace ndq {

/// What serves the entries behind an engine built from a
/// DirectoryInstance. Sessions are backend-agnostic: Submit/Run/RunBatch
/// behave identically either way (same plans, same results); only the
/// execution substrate — and the failure modes it can absorb — changes.
enum class EngineBackend {
  /// One bulk-loaded store + scratch disk in this process (default).
  kLocal,
  /// A fleet of replicated subtree shards plus a coordinator
  /// (dist/distributed.h), laid out by EngineOptions::topology. Queries
  /// scatter to the owning shards, fail over across replicas, and
  /// stream-merge at the coordinator.
  kDistributed,
};

/// Engine-wide configuration. Everything here is a default the engine is
/// constructed with; parallelism, fault policy and the page budget can be
/// changed later through the Set* methods (the changes survive across
/// queries — they are engine state, not per-call arguments).
struct EngineOptions {
  /// Execution substrate of the DirectoryInstance constructor; the other
  /// constructors are inherently local and ignore this.
  EngineBackend backend = EngineBackend::kLocal;
  /// Shard layout when backend == kDistributed (dist/topology.h). Its
  /// page_size governs the fleet's disks.
  TopologyConfig topology;
  /// Page size of engine-owned disks (schema-owning constructor only).
  size_t page_size = kDefaultPageSize;
  /// Backend of engine-owned disks (schema-owning constructor only):
  /// "sim" (default) = in-memory SimDisk, "file" = real-file FileDisk
  /// (storage/file_disk.h) under $NDQ_FILE_DISK_DIR (default /tmp).
  /// Empty = consult $NDQ_DISK_BACKEND, then fall back to "sim" — which
  /// is how CI runs the whole suite against the file backend without
  /// touching each test.
  std::string disk_backend;
  /// Async read io-depth applied to the engine's disks at construction
  /// (see Disk::SetIoDepth). 0 (default) = synchronous reads. Changeable
  /// later via SetIoDepth.
  size_t io_depth = 0;
  /// Evaluation knobs; `exec.parallelism` sizes the fleet-wide pool.
  ExecOptions exec;
  /// Operand cache capacity on the scratch disk. 0 disables the cache
  /// (and with it cross-query sharing) — useful for cold-I/O benches.
  size_t cache_capacity_pages = 4096;
  /// Admission defaults, inheritable per session (SessionOptions):
  /// at most `max_inflight` queries of one session evaluate at once...
  size_t max_inflight = 4;
  /// ...and at most `queue_depth` may be submitted-but-unfinished; the
  /// excess is rejected gracefully (ResourceExhausted + warning).
  size_t queue_depth = 16;
  /// Reject queries whose cost estimate exceeds this many pages
  /// (0 = unlimited). Estimates are upper bounds (exec/cost.h).
  uint64_t per_query_page_budget = 0;
  /// Fault-injection policy spec (storage/fault_injector.h Parse syntax),
  /// applied at construction; empty = off.
  std::string fault_spec;
  /// Canonicalize every submitted plan with RewriteQuery. Leave on:
  /// sharing detection fingerprints canonical forms.
  bool rewrite = true;
  /// Run the cost-based optimizer (query/optimize.h) on every submitted
  /// plan after canonicalization: short-circuits, operand reordering,
  /// filter pushdown, driven by the store's cardinality statistics.
  /// Overridable per process with $NDQ_OPTIMIZE=on|off (consulted at
  /// engine construction, like $NDQ_DISK_BACKEND), and at runtime with
  /// SetOptimize — which is how CI runs the whole suite both ways.
  bool optimize = true;
};

/// Everything one query produced. Rejected and failed queries carry their
/// status (and, for admission rejections, a warning) here — an outcome is
/// always delivered.
struct QueryOutcome {
  Status status = Status::OK();
  /// The result entries (empty on failure).
  std::vector<Entry> entries;
  /// Per-operator execution trace of `plan` (exec/trace.h); feed it to
  /// ExplainAnalyze / VerifyTheoremBounds. Default-constructed when the
  /// query never ran.
  OpTrace trace;
  /// Admission / degradation warnings ("admission" source = this engine).
  std::vector<DegradationWarning> warnings;
  /// The canonical plan that was (or would have been) evaluated —
  /// post-rewrite and post-optimization.
  QueryPtr plan;
  /// The cost model's page estimate for `plan` (exec/cost.h).
  double estimated_pages = 0;
  /// What the cost-based optimizer did to this plan (all zero when
  /// optimization is off or nothing applied); also mirrored in the root
  /// trace's plan_rewrites field.
  OptimizeStats optimizer;

  bool ok() const { return status.ok(); }
};

/// Per-session admission overrides. kInherit falls back to the engine's
/// EngineOptions value at the time of each submission.
struct SessionOptions {
  static constexpr size_t kInherit = static_cast<size_t>(-1);
  static constexpr uint64_t kInheritBudget = static_cast<uint64_t>(-1);

  size_t max_inflight = kInherit;
  size_t queue_depth = kInherit;
  uint64_t per_query_page_budget = kInheritBudget;
};

struct SessionStats {
  uint64_t submitted = 0;  ///< accepted into the session queue
  uint64_t completed = 0;  ///< outcomes delivered (including failures)
  uint64_t rejected = 0;   ///< admission rejections (not in submitted)
};

/// What one RunBatch did beyond the per-query outcomes.
struct BatchStats {
  /// Distinct sub-plans occurring >= 2 times across the batch.
  size_t shared_subtrees = 0;
  /// Total occurrences of those sub-plans (>= 2 * shared_subtrees).
  uint64_t shared_occurrences = 0;
  /// Operand-cache hit/miss deltas over the batch (engine-wide counters;
  /// exact when no other session runs concurrently).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Queries rejected by admission control.
  size_t rejected = 0;
};

struct BatchResult {
  /// One outcome per submitted query, in submission order.
  std::vector<QueryOutcome> outcomes;
  BatchStats stats;
};

/// One mutation of an update batch (Session::Apply).
struct UpdateOp {
  enum class Kind {
    kAdd,    ///< insert; fails with AlreadyExists if the dn is bound
    kPut,    ///< insert or replace
    kRemove  ///< delete; fails with NotFound / InvalidArgument (children)
  };
  Kind kind = Kind::kPut;
  Entry entry;  ///< kAdd / kPut payload
  Dn dn;        ///< kRemove target

  static UpdateOp Add(Entry e);
  static UpdateOp Put(Entry e);
  static UpdateOp Remove(Dn dn);
};

/// An ordered list of mutations. Each op is individually atomic (it either
/// fully applies or leaves the store untouched); the batch itself is NOT a
/// transaction — later ops still run after an earlier one fails, exactly
/// like a stream of LDAP updates.
struct UpdateBatch {
  std::vector<UpdateOp> ops;

  void Add(Entry e) { ops.push_back(UpdateOp::Add(std::move(e))); }
  void Put(Entry e) { ops.push_back(UpdateOp::Put(std::move(e))); }
  void Remove(Dn dn) { ops.push_back(UpdateOp::Remove(std::move(dn))); }
  bool empty() const { return ops.empty(); }
  size_t size() const { return ops.size(); }
};

struct UpdateResult {
  /// The first per-op error (OK when every op applied).
  Status status;
  /// Ops that took effect. Queries submitted after Apply returns observe
  /// all of them (snapshot isolation: queries already in flight keep
  /// their pinned pre-batch view).
  size_t applied = 0;
  /// Per-op status, in batch order.
  std::vector<Status> op_status;

  bool ok() const { return status.ok(); }
};

namespace internal {
struct TicketState;
class SessionImpl;
}  // namespace internal

/// A handle on one submitted query. Cheap to copy; Wait() blocks until
/// the outcome is ready (immediately so for rejected queries).
class QueryTicket {
 public:
  QueryTicket() = default;

  bool valid() const { return state_ != nullptr; }
  bool done() const;
  /// Blocks until the query finishes; the outcome stays owned by the
  /// ticket (valid while any copy of it lives).
  const QueryOutcome& Wait() const;

 private:
  friend class internal::SessionImpl;
  explicit QueryTicket(std::shared_ptr<internal::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::TicketState> state_;
};

class Engine;

/// A submission channel into the engine with its own admission state.
/// Sessions are movable/copyable handles; all copies share one queue.
/// Thread-compatible: drive one session from one thread (open several
/// sessions for concurrent submitters). Must not outlive its Engine.
class Session {
 public:
  Session() = default;

  /// Parses, canonicalizes, admission-checks and enqueues one query.
  /// Parse errors and admission rejections come back as already-done
  /// tickets carrying the status — Submit itself never fails.
  QueryTicket Submit(const std::string& query_text);
  QueryTicket Submit(const QueryPtr& plan);

  /// Submit + Wait.
  QueryOutcome Run(const std::string& query_text);
  QueryOutcome Run(const QueryPtr& plan);

  /// Convenience: just the entries (or the failure status).
  Result<std::vector<Entry>> Query(const std::string& query_text);

  /// The batch path: canonicalizes all plans, detects sub-plans shared
  /// across the batch, materializes each maximal shared subtree exactly
  /// once, then evaluates the queries with every shared subtree served
  /// from the operand cache. Results are byte-identical to running the
  /// queries one at a time. Blocks until every outcome is ready.
  BatchResult RunBatch(const std::vector<std::string>& query_texts);
  BatchResult RunBatch(const std::vector<QueryPtr>& plans);

  /// Applies a batch of mutations to the engine's store (owning mode
  /// only; borrowing-mode engines reject with InvalidArgument). Safe to
  /// call while queries are in flight — they keep their pinned snapshots;
  /// queries submitted after Apply returns see every applied op.
  UpdateResult Apply(const UpdateBatch& batch);

  /// Blocks until every query submitted on this session has finished.
  void Drain();

  SessionStats stats() const;

 private:
  friend class Engine;
  explicit Session(std::shared_ptr<internal::SessionImpl> impl)
      : impl_(std::move(impl)) {}

  BatchResult RunBatchParsed(std::vector<Result<QueryPtr>> parsed);

  std::shared_ptr<internal::SessionImpl> impl_;
};

/// \brief The engine: storage stack + thread pool + operand cache +
/// fault injection + admission, behind Sessions.
class Engine {
 public:
  /// Owning mode: the engine builds its own data disk, scratch disk and
  /// mutable DirectoryStore over `schema`. The interactive shell uses
  /// this; mutate through mutable_store() and call InvalidateCaches().
  explicit Engine(Schema schema, EngineOptions options = {});

  /// Borrowing mode: evaluate an existing store (e.g. a bulk-loaded
  /// EntryStore) using `scratch` for intermediates. `data_disk` is
  /// optional and only used to attach fault injection to the store's own
  /// device; both pointers must outlive the engine.
  Engine(Disk* scratch, const EntrySource* store,
         EngineOptions options = {}, Disk* data_disk = nullptr);

  /// Backend-selecting mode: loads `global` behind options.backend.
  /// kLocal bulk-loads one engine-owned EntryStore (read-only);
  /// kDistributed partitions `global` across options.topology's
  /// replicated shards and evaluates every query through the fleet —
  /// Sessions, admission, EXPLAIN ANALYZE and batch sharing all work
  /// unchanged. A failed build does not throw: init_status() carries the
  /// error and every submitted query completes with it.
  Engine(const DirectoryInstance& global, EngineOptions options = {});

  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Session OpenSession(SessionOptions options = {});

  /// Resizes the fleet-wide pool (1 = sequential). Waits for every
  /// in-flight query to finish first; the operand cache survives. The
  /// setting persists for all future queries of every session.
  void SetParallelism(size_t n);
  size_t parallelism() const;

  /// Installs (or, with "off" / "", clears) a fault-injection policy on
  /// the engine's disks; see FaultInjector::Parse for the spec syntax.
  /// Waits for in-flight queries; persists until the next SetFaults.
  Status SetFaults(const std::string& spec);

  /// Default per-query page budget for sessions that inherit it
  /// (0 = unlimited). Takes effect on the next submission.
  void SetPageBudget(uint64_t pages);

  /// Enables/disables the cost-based optimizer for future submissions
  /// (ndqsh's `.set optimize`). Takes effect on the next submission.
  void SetOptimize(bool on);
  bool optimize() const;

  /// Builds per-attribute indexes over the store and installs the
  /// index-probe access path: atomic leaves whose filter the statistics
  /// prove selective (ChooseAccessPath) are answered by index probes
  /// instead of range scans, byte-identically. Requires a bulk-loaded
  /// EntryStore (borrowing mode); the engine's mutable DirectoryStore is
  /// rejected — its merged view has no stable segment to index. Replaces
  /// any previously built indexes; waits for in-flight queries.
  Status BuildIndexes(const IndexSpec& spec);
  /// Null until BuildIndexes succeeds.
  const AttributeIndexes* indexes() const { return indexes_.get(); }

  /// Attaches (n > 0) or detaches (n == 0) the async read engine on the
  /// engine's disks: sequential run scans then keep up to `n` page reads
  /// in flight (storage/prefetcher.h). Waits for every in-flight query
  /// first (the async engine must not be swapped under a running scan);
  /// persists for all future queries. Page accounting is identical at any
  /// io-depth — only wall-clock changes.
  void SetIoDepth(size_t n);
  size_t io_depth() const;

  /// Applies a batch of mutations to the engine-owned DirectoryStore and
  /// invalidates the operand cache; what Session::Apply forwards to.
  /// Concurrent queries are snapshot-isolated (they pinned their store
  /// version at evaluation start). Borrowing mode → InvalidArgument.
  UpdateResult ApplyUpdates(const UpdateBatch& batch);

  /// Drops cached operand lists. Call after mutating the store: cached
  /// lists are snapshots of it.
  void InvalidateCaches();

  /// Blocks until no query is in flight on any session.
  void Drain();

  const EngineOptions& options() const { return options_; }
  /// OK, or why the DirectoryInstance constructor's build failed (bad
  /// topology, uncovered entries, bulk-load failure). Queries submitted
  /// to a failed engine complete gracefully with this status.
  const Status& init_status() const { return init_status_; }
  /// The shard fleet, or nullptr for local backends. For stats and fault
  /// injection (net_stats, ReplicaFailovers, set_down); evaluate through
  /// Sessions, not DistributedDirectory::Evaluate.
  DistributedDirectory* fleet() { return fleet_.get(); }
  const EntrySource& store() const { return *store_; }
  /// The engine-owned mutable store, or nullptr in borrowing mode.
  DirectoryStore* mutable_store() { return owned_store_.get(); }
  Disk* scratch() { return scratch_; }
  /// The data device: engine-owned in owning mode, the constructor's
  /// `data_disk` (possibly null) in borrowing mode.
  Disk* data_disk() { return data_disk_; }
  /// Null when cache_capacity_pages == 0.
  OperandCache* cache() { return cache_.get(); }
  /// Null when no fault policy is installed.
  FaultInjector* fault_injector() { return injector_.get(); }
  /// Cumulative evaluator statistics (exec/evaluator.h).
  EvalStats eval_stats() const;

 private:
  friend class internal::SessionImpl;

  /// Shared constructor tail: cache, pool, initial fault policy.
  void Init();
  /// Caller holds sched_mu_ with global_inflight_ == 0.
  void RebuildPoolLocked(size_t parallelism);

  /// Runs `body` as one pool task with engine-wide in-flight accounting
  /// (inline when the pool has no workers).
  void Dispatch(std::function<void()> body);

  /// Evaluates one canonical plan (filling entries/trace/estimate).
  /// `shared` may be null. `dist_cache` (null outside distributed
  /// batches) is the batch's coordinator-side operand cache. Runs on the
  /// dispatching task's thread.
  QueryOutcome ExecuteQuery(const QueryPtr& plan, const SharedOperands* shared,
                            OperandCache* dist_cache = nullptr);

  /// Materializes each plan in `roots` once, publishing it (and any
  /// nested shared subtree) to the operand cache; failures are absorbed
  /// (the queries recompute). Blocks until done.
  void PrecomputeShared(const std::vector<QueryPtr>& roots,
                        std::shared_ptr<const SharedOperands> shared);

  /// A consistent store view for planning and estimation: the pinned
  /// snapshot of a mutable store, or (aliased, non-owning) the store
  /// itself when it is immutable. Planning over the snapshot keeps
  /// statistics pointers stable while concurrent mutations publish new
  /// states.
  std::shared_ptr<const EntrySource> PinStore() const;

  uint64_t page_budget() const;
  bool rewrite() const { return options_.rewrite; }
  bool optimize_enabled() const;
  /// The IndexHook the evaluator should carry (empty when no indexes).
  IndexHook MakeIndexHook() const;

  void AttachInjector(FaultInjector* injector);

  // Storage (owning mode); declared first so everything above it can
  // refer to it during destruction. SimDisk or FileDisk per
  // EngineOptions::disk_backend.
  std::unique_ptr<Disk> owned_data_disk_;
  std::unique_ptr<Disk> owned_scratch_;
  std::unique_ptr<DirectoryStore> owned_store_;
  // DirectoryInstance constructor, kLocal: the bulk-loaded segment.
  std::unique_ptr<EntryStore> owned_entry_store_;
  // DirectoryInstance constructor, kDistributed: the shard fleet. Its
  // coordinator disk doubles as the engine's scratch.
  std::unique_ptr<DistributedDirectory> fleet_;
  // Stand-in store after a failed build, so planning never dereferences
  // null; init_status_ fails the queries themselves.
  std::unique_ptr<EntrySource> null_source_;
  Status init_status_;

  Disk* scratch_ = nullptr;
  Disk* data_disk_ = nullptr;  // may be null in borrowing mode
  const EntrySource* store_ = nullptr;

  EngineOptions options_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<OperandCache> cache_;

  // Attribute indexes (BuildIndexes); the pool backs the B+-trees and
  // must outlive them.
  std::unique_ptr<BufferPool> index_pool_;
  std::unique_ptr<AttributeIndexes> indexes_;
  const EntryStore* indexed_store_ = nullptr;

  // Pool / evaluator pair; rebuilt together by SetParallelism while the
  // engine is idle. The evaluator borrows the pool, so declaration order
  // (pool first) gives the right destruction order.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ThreadPool::TaskGroup> group_;
  std::unique_ptr<ParallelEvaluator> evaluator_;

  mutable std::mutex sched_mu_;
  std::condition_variable sched_cv_;
  size_t global_inflight_ = 0;  // dispatched, not yet finished
};

}  // namespace ndq

#endif  // NDQ_ENGINE_ENGINE_H_
